/**
 * @file
 * Bit-equality tests for the batched posterior engine. The contract
 * (gp/gaussian_process.h): for every kernel family, batch size, and
 * ragged tail, predictBatch must return exactly the doubles the
 * scalar predict() path returns — not "close", identical to the last
 * ULP — because the %.17g golden traces and the serial-vs-parallel
 * determinism suite pin the scalar numbers.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gp/gaussian_process.h"

namespace clite {
namespace gp {
namespace {

::testing::AssertionResult
bitEqual(double a, double b)
{
    if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " != " << b << " (bit patterns differ)";
}

/** Noisy additive objective used to generate training targets. */
double
objective(const linalg::Vector& x)
{
    double v = 0.0;
    for (size_t d = 0; d < x.size(); ++d)
        v += std::sin(3.0 * x[d] + double(d)) + 0.1 * x[d] * x[d];
    return v;
}

std::vector<linalg::Vector>
randomPoints(size_t count, size_t dims, Rng& rng)
{
    std::vector<linalg::Vector> pts(count, linalg::Vector(dims));
    for (auto& p : pts)
        for (double& v : p)
            v = rng.uniform(-2.0, 2.0);
    return pts;
}

GaussianProcess
makeFittedGp(const std::string& kernel_name, size_t dims, size_t n,
             bool ard, Rng& rng)
{
    auto kernel = makeKernel(kernel_name, dims, 0.7, 1.3);
    if (ard) {
        std::vector<double> p;
        p.push_back(std::log(1.3));
        for (size_t d = 0; d < dims; ++d)
            p.push_back(std::log(0.4 + 0.3 * double(d)));
        kernel->setLogParams(p);
    } else {
        kernel->setIsotropic(true);
    }
    GaussianProcess gp(std::move(kernel), 1e-6);
    std::vector<linalg::Vector> x = randomPoints(n, dims, rng);
    std::vector<double> y;
    for (const auto& xi : x)
        y.push_back(objective(xi));
    gp.fit(x, y);
    return gp;
}

void
expectBatchMatchesScalar(const GaussianProcess& gp,
                         const std::vector<linalg::Vector>& cands)
{
    std::vector<Prediction> batch = gp.predictBatch(cands);
    ASSERT_EQ(batch.size(), cands.size());
    for (size_t i = 0; i < cands.size(); ++i) {
        Prediction scalar = gp.predict(cands[i]);
        EXPECT_TRUE(bitEqual(batch[i].mean, scalar.mean))
            << "mean, candidate " << i;
        EXPECT_TRUE(bitEqual(batch[i].variance, scalar.variance))
            << "variance, candidate " << i;
    }
}

class PredictBatchKernels : public ::testing::TestWithParam<const char*>
{
};

TEST_P(PredictBatchKernels, BitIdenticalAcrossBatchSizes)
{
    // Batch sizes from the issue: 1, 7, 64, 256 — 7 and 256 exercise
    // the ragged tail against the internal block size.
    Rng rng(901);
    GaussianProcess gp = makeFittedGp(GetParam(), 3, 40, /*ard=*/false, rng);
    for (size_t count : {size_t(1), size_t(7), size_t(64), size_t(256)}) {
        std::vector<linalg::Vector> cands = randomPoints(count, 3, rng);
        expectBatchMatchesScalar(gp, cands);
    }
}

TEST_P(PredictBatchKernels, BitIdenticalWithArdLengthscales)
{
    Rng rng(902);
    GaussianProcess gp = makeFittedGp(GetParam(), 4, 33, /*ard=*/true, rng);
    expectBatchMatchesScalar(gp, randomPoints(71, 4, rng));
}

TEST_P(PredictBatchKernels, BitIdenticalAfterIncrementalAppend)
{
    // addSample takes the rank-append Cholesky path; the batch solve
    // must agree with scalar predictions against that factor too.
    Rng rng(903);
    GaussianProcess gp = makeFittedGp(GetParam(), 2, 20, /*ard=*/false, rng);
    for (int i = 0; i < 5; ++i) {
        linalg::Vector x = randomPoints(1, 2, rng)[0];
        gp.addSample(x, objective(x));
    }
    expectBatchMatchesScalar(gp, randomPoints(50, 2, rng));
}

INSTANTIATE_TEST_SUITE_P(AllKernels, PredictBatchKernels,
                         ::testing::Values("matern52", "matern32", "rbf"),
                         [](const auto& info) {
                             return std::string(info.param);
                         });

TEST(PredictBatch, SubrangeMatchesFullEvaluation)
{
    Rng rng(904);
    GaussianProcess gp = makeFittedGp("matern52", 3, 25, false, rng);
    std::vector<linalg::Vector> cands = randomPoints(90, 3, rng);

    std::vector<double> means(90, 0.0), vars(90, 0.0);
    // Evaluate in uneven chunks through the (begin, count) interface.
    size_t begin = 0;
    for (size_t chunk : {size_t(13), size_t(64), size_t(13)}) {
        gp.predictBatch(cands, begin, chunk, means.data() + begin,
                        vars.data() + begin);
        begin += chunk;
    }
    ASSERT_EQ(begin, cands.size());

    for (size_t i = 0; i < cands.size(); ++i) {
        Prediction scalar = gp.predict(cands[i]);
        EXPECT_TRUE(bitEqual(means[i], scalar.mean)) << i;
        EXPECT_TRUE(bitEqual(vars[i], scalar.variance)) << i;
    }
}

TEST(PredictBatch, SingleTrainingPoint)
{
    Rng rng(905);
    GaussianProcess gp = makeFittedGp("rbf", 2, 1, false, rng);
    expectBatchMatchesScalar(gp, randomPoints(9, 2, rng));
}

TEST(PredictBatch, ZeroCountIsANoop)
{
    Rng rng(906);
    GaussianProcess gp = makeFittedGp("matern32", 2, 8, false, rng);
    std::vector<linalg::Vector> cands = randomPoints(4, 2, rng);
    gp.predictBatch(cands, 2, 0, nullptr, nullptr);
}

} // namespace
} // namespace gp
} // namespace clite

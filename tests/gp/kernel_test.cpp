/**
 * @file
 * Unit and property tests for covariance kernels.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "gp/kernel.h"
#include "linalg/cholesky.h"

namespace clite {
namespace gp {
namespace {

std::vector<linalg::Vector>
randomPoints(size_t n, size_t dims, Rng& rng)
{
    std::vector<linalg::Vector> pts(n, linalg::Vector(dims));
    for (auto& p : pts)
        for (auto& v : p)
            v = rng.uniform(0.0, 1.0);
    return pts;
}

class KernelKindTest : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<Kernel>
    make(size_t dims = 3, double ls = 0.5, double sv = 2.0) const
    {
        return makeKernel(GetParam(), dims, ls, sv);
    }
};

TEST_P(KernelKindTest, SelfCovarianceIsSignalVariance)
{
    auto k = make();
    linalg::Vector x = {0.1, 0.7, 0.4};
    EXPECT_NEAR((*k)(x, x), 2.0, 1e-12);
}

TEST_P(KernelKindTest, Symmetry)
{
    auto k = make();
    Rng rng(3);
    auto pts = randomPoints(10, 3, rng);
    for (size_t i = 0; i < pts.size(); ++i)
        for (size_t j = 0; j < i; ++j)
            EXPECT_DOUBLE_EQ((*k)(pts[i], pts[j]), (*k)(pts[j], pts[i]));
}

TEST_P(KernelKindTest, DecaysWithDistance)
{
    auto k = make();
    linalg::Vector origin = {0.0, 0.0, 0.0};
    double prev = (*k)(origin, origin);
    for (double d : {0.1, 0.3, 0.6, 1.0, 2.0}) {
        linalg::Vector x = {d, 0.0, 0.0};
        double v = (*k)(origin, x);
        EXPECT_LT(v, prev);
        EXPECT_GT(v, 0.0);
        prev = v;
    }
}

TEST_P(KernelKindTest, GramMatrixIsPositiveDefinite)
{
    auto k = make(4);
    Rng rng(7);
    auto pts = randomPoints(20, 4, rng);
    linalg::Matrix gram(20, 20);
    for (size_t i = 0; i < 20; ++i)
        for (size_t j = 0; j < 20; ++j)
            gram(i, j) = (*k)(pts[i], pts[j]);
    gram.addDiagonal(1e-8);
    EXPECT_NO_THROW(linalg::Cholesky chol(gram));
}

TEST_P(KernelKindTest, LogParamRoundTrip)
{
    auto k = make();
    auto p = k->logParams();
    ASSERT_EQ(p.size(), k->numParams());
    p[0] = std::log(5.0);
    p[1] = std::log(0.25);
    k->setLogParams(p);
    EXPECT_NEAR(k->signalVariance(), 5.0, 1e-12);
    EXPECT_NEAR(k->lengthscale(0), 0.25, 1e-12);
}

TEST_P(KernelKindTest, IsotropicTiesLengthscales)
{
    auto k = make(3);
    k->setIsotropic(true);
    EXPECT_EQ(k->numParams(), 2u);
    k->setLogParams({std::log(1.0), std::log(0.7)});
    for (size_t d = 0; d < 3; ++d)
        EXPECT_NEAR(k->lengthscale(d), 0.7, 1e-12);
}

TEST_P(KernelKindTest, CloneIsIndependentDeepCopy)
{
    auto k = make();
    auto c = k->clone();
    auto p = k->logParams();
    p[0] += 1.0;
    k->setLogParams(p);
    EXPECT_NE(k->signalVariance(), c->signalVariance());
    EXPECT_EQ(c->name(), k->name());
}

TEST_P(KernelKindTest, DimensionMismatchThrows)
{
    auto k = make(3);
    linalg::Vector x2 = {0.1, 0.2};
    linalg::Vector x3 = {0.1, 0.2, 0.3};
    EXPECT_THROW((*k)(x2, x3), Error);
}

INSTANTIATE_TEST_SUITE_P(Kinds, KernelKindTest,
                         ::testing::Values("matern52", "matern32", "rbf"));

TEST(KernelFactory, UnknownNameThrows)
{
    EXPECT_THROW(makeKernel("spline", 2), Error);
}

TEST(Kernel, Matern52KnownValue)
{
    // r = 1 with unit lengthscale: sigma^2 (1+sqrt5+5/3) e^{-sqrt5}.
    Matern52Kernel k(1, 1.0, 1.0);
    double s = std::sqrt(5.0);
    double expect = (1.0 + s + 5.0 / 3.0) * std::exp(-s);
    EXPECT_NEAR(k({0.0}, {1.0}), expect, 1e-12);
}

TEST(Kernel, RbfKnownValue)
{
    RbfKernel k(1, 1.0, 1.0);
    EXPECT_NEAR(k({0.0}, {1.0}), std::exp(-0.5), 1e-12);
}

TEST(Kernel, Matern32KnownValue)
{
    Matern32Kernel k(1, 1.0, 1.0);
    double s = std::sqrt(3.0);
    EXPECT_NEAR(k({0.0}, {1.0}), (1.0 + s) * std::exp(-s), 1e-12);
}

TEST(Kernel, MaternRougherThanRbf)
{
    // At small distance the Matérn kernels decay faster than RBF
    // (less smoothness), the property the paper wants for the kinked
    // score surface.
    Matern52Kernel m52(1, 1.0, 1.0);
    RbfKernel rbf(1, 1.0, 1.0);
    EXPECT_LT(m52({0.0}, {0.3}), rbf({0.0}, {0.3}));
}

TEST(Kernel, ConstructorValidation)
{
    EXPECT_THROW(Matern52Kernel(0, 1.0, 1.0), Error);
    EXPECT_THROW(Matern52Kernel(2, 0.0, 1.0), Error);
    EXPECT_THROW(Matern52Kernel(2, 1.0, -1.0), Error);
}

} // namespace
} // namespace gp
} // namespace clite

/**
 * @file
 * Tests for the incremental surrogate-update path: addSample() must
 * agree with a from-scratch fit(), fitIncremental() must append only
 * on an exact prefix match, and — the fault-path regression — a
 * quarantined sample removed from the usable list must force a full
 * refit so it can never linger inside the incrementally-extended
 * factor.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "gp/gaussian_process.h"

namespace clite {
namespace gp {
namespace {

GaussianProcess
makeGp(size_t dims = 2, double noise = 1e-6)
{
    return GaussianProcess(std::make_unique<Matern52Kernel>(dims, 0.5, 1.0),
                           noise);
}

std::vector<linalg::Vector>
randomInputs(size_t n, size_t dims, Rng& rng)
{
    std::vector<linalg::Vector> xs;
    for (size_t i = 0; i < n; ++i) {
        linalg::Vector x(dims);
        for (size_t d = 0; d < dims; ++d)
            x[d] = rng.uniform(0.0, 1.0);
        xs.push_back(x);
    }
    return xs;
}

double
targetFn(const linalg::Vector& x)
{
    return std::sin(4.0 * x[0]) + 0.5 * x[1] * x[1];
}

void
expectSamePosterior(const GaussianProcess& a, const GaussianProcess& b,
                    const std::vector<linalg::Vector>& probes,
                    double tol = 1e-8)
{
    ASSERT_EQ(a.sampleCount(), b.sampleCount());
    for (const auto& p : probes) {
        Prediction pa = a.predict(p);
        Prediction pb = b.predict(p);
        EXPECT_NEAR(pa.mean, pb.mean, tol);
        EXPECT_NEAR(pa.variance, pb.variance, tol);
    }
    EXPECT_NEAR(a.logMarginalLikelihood(), b.logMarginalLikelihood(), 1e-6);
}

TEST(GpIncremental, AddSampleMatchesBatchFit)
{
    Rng rng(31);
    std::vector<linalg::Vector> xs = randomInputs(12, 2, rng);
    std::vector<double> ys;
    for (const auto& x : xs)
        ys.push_back(targetFn(x));

    // Incremental: fit the first 6, then add the rest one at a time.
    GaussianProcess inc = makeGp();
    inc.fit({xs.begin(), xs.begin() + 6}, {ys.begin(), ys.begin() + 6});
    for (size_t i = 6; i < xs.size(); ++i)
        inc.addSample(xs[i], ys[i]);

    GaussianProcess batch = makeGp();
    batch.fit(xs, ys);

    Rng probe_rng(32);
    expectSamePosterior(inc, batch, randomInputs(20, 2, probe_rng));
}

TEST(GpIncremental, AddSampleRequiresFittedModel)
{
    GaussianProcess gp = makeGp();
    EXPECT_THROW(gp.addSample({0.5, 0.5}, 1.0), Error);
}

TEST(GpIncremental, AddSampleSurvivesDuplicatePoint)
{
    // An exact duplicate makes the appended pivot non-positive; the
    // jittered full-refit fallback must keep the model usable.
    GaussianProcess gp = makeGp();
    Rng rng(33);
    std::vector<linalg::Vector> xs = randomInputs(5, 2, rng);
    std::vector<double> ys;
    for (const auto& x : xs)
        ys.push_back(targetFn(x));
    gp.fit(xs, ys);
    gp.addSample(xs[2], ys[2]);
    EXPECT_EQ(gp.sampleCount(), 6u);
    Prediction p = gp.predict(xs[2]);
    EXPECT_TRUE(std::isfinite(p.mean));
    EXPECT_TRUE(std::isfinite(p.variance));
    EXPECT_NEAR(p.mean, ys[2], 0.05);
}

TEST(GpIncremental, FitIncrementalAppendsOnExactPrefix)
{
    Rng rng(34);
    std::vector<linalg::Vector> xs = randomInputs(10, 2, rng);
    std::vector<double> ys;
    for (const auto& x : xs)
        ys.push_back(targetFn(x));

    GaussianProcess inc = makeGp();
    inc.fitIncremental({xs.begin(), xs.begin() + 7},
                       {ys.begin(), ys.begin() + 7});
    EXPECT_EQ(inc.sampleCount(), 7u);
    inc.fitIncremental(xs, ys); // 7-sample prefix unchanged: appends 3
    EXPECT_EQ(inc.sampleCount(), 10u);

    GaussianProcess batch = makeGp();
    batch.fit(xs, ys);
    Rng probe_rng(35);
    expectSamePosterior(inc, batch, randomInputs(20, 2, probe_rng));
}

/**
 * Fault-path regression (PR 1 quarantine + PR 2 incremental updates):
 * the control loop refits the surrogate from the *filtered* usable
 * sample list, so quarantining a previously-fitted sample shrinks or
 * reorders that list mid-sequence. fitIncremental must notice the
 * prefix divergence and rebuild from scratch — the quarantined sample
 * must never survive inside the incrementally-extended factor.
 */
TEST(GpIncremental, QuarantinedSampleNeverEntersIncrementalUpdate)
{
    Rng rng(36);
    std::vector<linalg::Vector> xs = randomInputs(8, 2, rng);
    std::vector<double> ys;
    for (const auto& x : xs)
        ys.push_back(targetFn(x));

    GaussianProcess gp = makeGp();
    gp.fitIncremental(xs, ys);
    ASSERT_EQ(gp.sampleCount(), 8u);

    // Sample 3 gets quarantined: the usable list drops it and later
    // gains a new observation, exactly what core::CliteController
    // passes after a mid-run fault.
    std::vector<linalg::Vector> usable_x;
    std::vector<double> usable_y;
    for (size_t i = 0; i < xs.size(); ++i) {
        if (i == 3)
            continue;
        usable_x.push_back(xs[i]);
        usable_y.push_back(ys[i]);
    }
    Rng rng2(37);
    linalg::Vector fresh = randomInputs(1, 2, rng2)[0];
    usable_x.push_back(fresh);
    usable_y.push_back(targetFn(fresh));

    gp.fitIncremental(usable_x, usable_y);
    EXPECT_EQ(gp.sampleCount(), 8u); // 7 survivors + 1 new, not 9

    // The refit model must be indistinguishable from one that never
    // saw the quarantined sample at all.
    GaussianProcess clean = makeGp();
    clean.fit(usable_x, usable_y);
    Rng probe_rng(38);
    expectSamePosterior(gp, clean, randomInputs(20, 2, probe_rng));

    // And it must differ from the pre-quarantine posterior at the
    // dropped point — proof the sample is really gone.
    GaussianProcess with_bad = makeGp();
    with_bad.fit(xs, ys);
    EXPECT_GT(gp.predict(xs[3]).variance,
              with_bad.predict(xs[3]).variance);
}

TEST(GpIncremental, FitIncrementalRefitsOnChangedTarget)
{
    // Same inputs, one historical y revised: not an append.
    Rng rng(39);
    std::vector<linalg::Vector> xs = randomInputs(6, 2, rng);
    std::vector<double> ys;
    for (const auto& x : xs)
        ys.push_back(targetFn(x));
    GaussianProcess gp = makeGp();
    gp.fitIncremental(xs, ys);
    ys[2] += 1.0;
    gp.fitIncremental(xs, ys);
    GaussianProcess batch = makeGp();
    batch.fit(xs, ys);
    Rng probe_rng(40);
    expectSamePosterior(gp, batch, randomInputs(10, 2, probe_rng));
}

TEST(GpIncremental, CachedLogMarginalLikelihoodMatchesDefinition)
{
    // logMarginalLikelihood() reads the cached standardized targets;
    // it must keep agreeing with a fresh fit after incremental growth.
    Rng rng(41);
    std::vector<linalg::Vector> xs = randomInputs(9, 2, rng);
    std::vector<double> ys;
    for (const auto& x : xs)
        ys.push_back(targetFn(x));
    GaussianProcess inc = makeGp();
    inc.fit({xs.begin(), xs.begin() + 4}, {ys.begin(), ys.begin() + 4});
    for (size_t i = 4; i < xs.size(); ++i)
        inc.addSample(xs[i], ys[i]);
    GaussianProcess batch = makeGp();
    batch.fit(xs, ys);
    EXPECT_NEAR(inc.logMarginalLikelihood(), batch.logMarginalLikelihood(),
                1e-6);
}

} // namespace
} // namespace gp
} // namespace clite

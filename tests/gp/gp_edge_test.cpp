/**
 * @file
 * Edge-case tests for the GP substrate: isotropic/ARD interplay,
 * cloning, refit behaviour, numerically awkward data.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "gp/gaussian_process.h"

namespace clite {
namespace gp {
namespace {

TEST(GpEdge, IsotropicSurvivesClone)
{
    Matern52Kernel k(3, 0.5, 1.0);
    k.setIsotropic(true);
    auto c = k.clone();
    EXPECT_TRUE(c->isotropic());
    EXPECT_EQ(c->numParams(), 2u);
    c->setLogParams({0.0, std::log(0.9)});
    for (size_t d = 0; d < 3; ++d)
        EXPECT_NEAR(c->lengthscale(d), 0.9, 1e-12);
    // The original is untouched.
    EXPECT_NEAR(k.lengthscale(0), 0.5, 1e-12);
}

TEST(GpEdge, SwitchingIsotropicOffKeepsScales)
{
    RbfKernel k(2, 0.4, 1.0);
    k.setIsotropic(true);
    k.setLogParams({0.0, std::log(0.7)});
    k.setIsotropic(false);
    EXPECT_EQ(k.numParams(), 3u);
    EXPECT_NEAR(k.lengthscale(0), 0.7, 1e-12);
    EXPECT_NEAR(k.lengthscale(1), 0.7, 1e-12);
    k.setLogParams({0.0, std::log(0.2), std::log(1.4)});
    EXPECT_NEAR(k.lengthscale(0), 0.2, 1e-12);
    EXPECT_NEAR(k.lengthscale(1), 1.4, 1e-12);
}

TEST(GpEdge, IsotropicParamCountEnforced)
{
    Matern32Kernel k(4, 0.5, 1.0);
    k.setIsotropic(true);
    EXPECT_THROW(k.setLogParams({0.0, 0.0, 0.0, 0.0, 0.0}), Error);
    k.setIsotropic(false);
    EXPECT_THROW(k.setLogParams({0.0, 0.0}), Error);
}

TEST(GpEdge, RefitReplacesData)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(1, 0.5, 1.0),
                       1e-6);
    gp.fit({{0.0}, {1.0}}, {0.0, 1.0});
    EXPECT_EQ(gp.sampleCount(), 2u);
    gp.fit({{0.0}, {0.5}, {1.0}}, {2.0, 2.0, 2.0});
    EXPECT_EQ(gp.sampleCount(), 3u);
    EXPECT_NEAR(gp.predict({0.25}).mean, 2.0, 1e-3);
}

TEST(GpEdge, ExtremeTargetMagnitudesAreStandardizedAway)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(1, 0.5, 1.0),
                       1e-6);
    gp.fit({{0.0}, {0.5}, {1.0}}, {1e8, 2e8, 1.5e8});
    Prediction p = gp.predict({0.5});
    EXPECT_NEAR(p.mean, 2e8, 1e6);
    EXPECT_TRUE(std::isfinite(gp.logMarginalLikelihood()));
}

TEST(GpEdge, TinyTargetSpreadStable)
{
    GaussianProcess gp(std::make_unique<Matern52Kernel>(1, 0.5, 1.0),
                       1e-4);
    gp.fit({{0.0}, {0.5}, {1.0}}, {0.5, 0.5 + 1e-9, 0.5 - 1e-9});
    Prediction p = gp.predict({0.25});
    EXPECT_NEAR(p.mean, 0.5, 1e-6);
}

TEST(GpEdge, HyperFitWithoutNoiseOptimization)
{
    Rng rng(3);
    GaussianProcess gp(std::make_unique<Matern52Kernel>(1, 0.5, 1.0),
                       1e-3);
    std::vector<linalg::Vector> x;
    std::vector<double> y;
    for (double t = 0.0; t <= 1.0; t += 0.1) {
        x.push_back({t});
        y.push_back(t * t);
    }
    gp.fit(x, y);
    GpFitOptions o;
    o.fit_noise = false;
    double before_noise = gp.noiseVariance();
    gp.optimizeHyperparameters(rng, o);
    EXPECT_DOUBLE_EQ(gp.noiseVariance(), before_noise);
}

TEST(GpEdge, MoveSemantics)
{
    GaussianProcess a(std::make_unique<Matern52Kernel>(1, 0.5, 1.0),
                      1e-6);
    a.fit({{0.0}, {1.0}}, {0.0, 1.0});
    GaussianProcess b = std::move(a);
    EXPECT_TRUE(b.fitted());
    EXPECT_NEAR(b.predict({1.0}).mean, 1.0, 1e-3);
}

} // namespace
} // namespace gp
} // namespace clite

/**
 * @file
 * Contracts of the fast hyper-fit probe tier (gp/fast_lml.h):
 *
 *  - the baseline-ISA and AVX2+FMA variants return bit-identical
 *    values (the header's cross-CPU reproducibility promise);
 *  - the fast objective agrees with the exact log-marginal-likelihood
 *    objective to roundoff;
 *  - optimizeHyperparameters is bit-identical for every thread count,
 *    i.e. the parallel Nelder-Mead restarts change wall-clock only,
 *    never the fitted model.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "gp/fast_lml.h"
#include "gp/gaussian_process.h"
#include "gp/kernel.h"

namespace clite {
namespace gp {
namespace {

bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

/** A random hyper-fit problem over its own backing storage. */
struct ProblemData
{
    std::vector<double> x_t;   // dims-major training inputs
    std::vector<double> sqd;   // pairwise squared distances
    std::vector<double> ys;
    FastLmlProblem problem;

    ProblemData(size_t n, size_t d, RadialForm form, bool isotropic,
                uint64_t seed)
        : x_t(d * n), sqd(n * (n - 1) / 2, 0.0), ys(n)
    {
        Rng rng(seed);
        for (auto& v : x_t)
            v = rng.uniform(-1.0, 1.0);
        for (auto& v : ys)
            v = rng.uniform(-1.0, 1.0);
        size_t pair = 0;
        for (size_t i = 0; i < n; ++i)
            for (size_t j = 0; j < i; ++j, ++pair)
                for (size_t k = 0; k < d; ++k) {
                    const double df = x_t[k * n + i] - x_t[k * n + j];
                    sqd[pair] += df * df;
                }
        problem.n = n;
        problem.dims = d;
        problem.isotropic = isotropic;
        problem.fit_noise = true;
        problem.form = form;
        problem.pair_sqdist = sqd.data();
        problem.x_t = x_t.data();
        problem.ys_std = ys.data();
    }
};

/**
 * Both ISA variants of the evaluator return the same bits for the
 * same probe — across all three radial forms, ARD and isotropic
 * modes, random in-domain probes, and the out-of-domain rejection
 * path. Skipped (trivially passing) on hosts without AVX2+FMA, where
 * only the baseline variant is callable.
 */
TEST(FastLml, BaseAndAvx2VariantsBitIdentical)
{
    if (!detail::avx2Supported())
        GTEST_SKIP() << "host lacks AVX2+FMA; single variant only";
    for (int form = 0; form < 3; ++form) {
        for (bool isotropic : {false, true}) {
            ProblemData data(61, 12, RadialForm(form), isotropic,
                             101 + uint64_t(form));
            const size_t np = isotropic ? 3 : 14;
            Rng rng(7 + uint64_t(form));
            FastLmlScratch sc_base, sc_avx2;
            for (int trial = 0; trial < 100; ++trial) {
                std::vector<double> p(np);
                for (auto& v : p)
                    v = rng.uniform(-2.0, 2.0);
                if (trial % 10 == 9)
                    p[0] = 13.0; // out-of-domain gate: both reject
                const double a = detail::fastNegLogMarginalBase(
                    data.problem, p.data(), np, sc_base);
                const double b = detail::fastNegLogMarginalAvx2(
                    data.problem, p.data(), np, sc_avx2);
                ASSERT_TRUE(sameBits(a, b))
                    << "form " << form << " iso " << isotropic
                    << " trial " << trial << ": " << a << " vs " << b;
            }
        }
    }
}

/**
 * The fast probe value matches the exact objective (the negated
 * logMarginalLikelihood the search re-applies to the winner) to
 * roundoff at the model's own fitted hyper-parameters.
 */
TEST(FastLml, AgreesWithExactObjective)
{
    const size_t n = 48, d = 12;
    Rng rng(211);
    std::vector<linalg::Vector> xs(n, linalg::Vector(d));
    std::vector<double> ys(n);
    for (auto& x : xs)
        for (auto& v : x)
            v = rng.uniform();
    for (auto& y : ys)
        y = rng.uniform();

    GaussianProcess g(std::make_unique<Matern52Kernel>(d, 0.3), 1e-4);
    g.fit(xs, ys);
    const double exact = g.logMarginalLikelihood();

    // Rebuild the same problem the optimizer hands the fast tier.
    // Targets must be standardized exactly as the model standardizes.
    double mean = 0.0;
    for (double y : ys)
        mean += y;
    mean /= double(n);
    double var = 0.0;
    for (double y : ys)
        var += (y - mean) * (y - mean);
    double scale = std::sqrt(var / double(n));
    if (scale <= 0.0)
        scale = 1.0;

    ProblemData data(n, d, RadialForm::Matern52, false, 0);
    for (size_t k = 0; k < d; ++k)
        for (size_t i = 0; i < n; ++i)
            data.x_t[k * n + i] = xs[i][k];
    std::fill(data.sqd.begin(), data.sqd.end(), 0.0);
    size_t pair = 0;
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < i; ++j, ++pair)
            for (size_t k = 0; k < d; ++k) {
                const double df = xs[i][k] - xs[j][k];
                data.sqd[pair] += df * df;
            }
    for (size_t i = 0; i < n; ++i)
        data.ys[i] = (ys[i] - mean) / scale;

    std::vector<double> p = g.kernel().logParams();
    p.push_back(std::log(g.noiseVariance()));
    FastLmlScratch sc;
    const double fast =
        fastNegLogMarginal(data.problem, p.data(), p.size(), sc);
    EXPECT_NEAR(-fast, exact, 1e-9 * (1.0 + std::fabs(exact)));
}

/**
 * optimizeHyperparameters fans its restarts out on the global pool;
 * the fitted result must not depend on how many workers ran them.
 * Pinned by refitting identical models under thread counts 1..8 and
 * comparing the achieved LML, the fitted log-params, and a posterior
 * prediction bit for bit against the serial run.
 */
TEST(FastLml, HyperFitBitIdenticalAcrossThreadCounts)
{
    const size_t n = 32, d = 6;
    Rng data_rng(31);
    std::vector<linalg::Vector> xs(n, linalg::Vector(d));
    std::vector<double> ys(n);
    for (auto& x : xs)
        for (auto& v : x)
            v = data_rng.uniform();
    for (auto& y : ys)
        y = data_rng.uniform();
    linalg::Vector q(d, 0.4);

    GpFitOptions fo;
    fo.restarts = 4;
    fo.max_iters = 25;

    auto fit_with_threads = [&](int threads, double& lml,
                                std::vector<double>& params,
                                Prediction& pred) {
        setGlobalThreadCount(threads);
        GaussianProcess g(std::make_unique<Matern52Kernel>(d, 0.3), 1e-4);
        g.fit(xs, ys);
        Rng rng(97); // same restart perturbations for every run
        lml = g.optimizeHyperparameters(rng, fo);
        params = g.kernel().logParams();
        pred = g.predict(q);
    };

    double lml1;
    std::vector<double> params1;
    Prediction pred1;
    fit_with_threads(1, lml1, params1, pred1);

    for (int threads : {2, 4, 8}) {
        double lml;
        std::vector<double> params;
        Prediction pred;
        fit_with_threads(threads, lml, params, pred);
        EXPECT_TRUE(sameBits(lml, lml1)) << "threads " << threads;
        ASSERT_EQ(params.size(), params1.size());
        for (size_t i = 0; i < params.size(); ++i)
            EXPECT_TRUE(sameBits(params[i], params1[i]))
                << "threads " << threads << " param " << i;
        EXPECT_TRUE(sameBits(pred.mean, pred1.mean))
            << "threads " << threads;
        EXPECT_TRUE(sameBits(pred.variance, pred1.variance))
            << "threads " << threads;
    }
    setGlobalThreadCount(ThreadPool::defaultThreadCount());
}

} // namespace
} // namespace gp
} // namespace clite

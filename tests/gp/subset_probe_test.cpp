/**
 * @file
 * Contracts of the large-history subset probe tier and the warm
 * simplex (gp/gaussian_process.cpp):
 *
 *  - above the subset threshold the fit engages the subset tier
 *    (lastFitStats().subset_used) and remains bit-identical for every
 *    thread count — the subset is deterministic in (seed, n), built
 *    serially, and the multi-start winner rule is order-stable;
 *  - the exact-objective guard means a subset-tier fit never regresses
 *    the exact log marginal likelihood;
 *  - a warm simplex that regresses on the subset objective falls back
 *    to the restart sweep and produces bits identical to a fit that
 *    never had a warm seed, leaving the caller's RNG stream in the
 *    same position either way;
 *  - a warm simplex seeded from a previously converged fit wins the
 *    probe outright (restarts skipped).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "gp/gaussian_process.h"
#include "gp/kernel.h"

namespace clite {
namespace gp {
namespace {

bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

/** A smooth random regression problem with n >= subset_threshold. */
void
makeLargeHistory(size_t n, size_t d, std::vector<linalg::Vector>& xs,
                 std::vector<double>& ys)
{
    Rng data_rng(53);
    xs.assign(n, linalg::Vector(d));
    ys.assign(n, 0.0);
    for (auto& x : xs)
        for (auto& v : x)
            v = data_rng.uniform();
    for (size_t i = 0; i < n; ++i) {
        double s = 0.0;
        for (size_t k = 0; k < d; ++k)
            s += std::sin(3.0 * xs[i][k]);
        ys[i] = s / double(d) + 0.05 * data_rng.uniform(-1.0, 1.0);
    }
}

TEST(SubsetProbe, EngagesAboveThresholdAndIsThreadCountInvariant)
{
    const size_t n = 128, d = 6;
    std::vector<linalg::Vector> xs;
    std::vector<double> ys;
    makeLargeHistory(n, d, xs, ys);
    linalg::Vector q(d, 0.4);

    GpFitOptions fo;
    fo.restarts = 2;
    fo.max_iters = 20;
    ASSERT_GE(n, fo.subset_threshold);
    ASSERT_LT(fo.subset_size, n);

    auto fit_with_threads = [&](int threads, double& lml,
                                std::vector<double>& params,
                                Prediction& pred, GpFitStats& stats) {
        setGlobalThreadCount(threads);
        GaussianProcess g(std::make_unique<Matern52Kernel>(d, 0.3), 1e-4);
        g.fit(xs, ys);
        Rng rng(97);
        lml = g.optimizeHyperparameters(rng, fo);
        params = g.kernel().logParams();
        pred = g.predict(q);
        stats = g.lastFitStats();
    };

    double lml1;
    std::vector<double> params1;
    Prediction pred1;
    GpFitStats stats1;
    fit_with_threads(1, lml1, params1, pred1, stats1);
    EXPECT_TRUE(stats1.subset_used);
    EXPECT_GT(stats1.probe_evals, 0u);

    for (int threads : {2, 4, 8}) {
        double lml;
        std::vector<double> params;
        Prediction pred;
        GpFitStats stats;
        fit_with_threads(threads, lml, params, pred, stats);
        EXPECT_TRUE(stats.subset_used) << "threads " << threads;
        EXPECT_EQ(stats.probe_evals, stats1.probe_evals)
            << "threads " << threads;
        EXPECT_TRUE(sameBits(lml, lml1)) << "threads " << threads;
        ASSERT_EQ(params.size(), params1.size());
        for (size_t i = 0; i < params.size(); ++i)
            EXPECT_TRUE(sameBits(params[i], params1[i]))
                << "threads " << threads << " param " << i;
        EXPECT_TRUE(sameBits(pred.mean, pred1.mean))
            << "threads " << threads;
        EXPECT_TRUE(sameBits(pred.variance, pred1.variance))
            << "threads " << threads;
    }
    setGlobalThreadCount(ThreadPool::defaultThreadCount());
}

TEST(SubsetProbe, NeverRegressesExactLogMarginalLikelihood)
{
    const size_t n = 128, d = 4;
    std::vector<linalg::Vector> xs;
    std::vector<double> ys;
    makeLargeHistory(n, d, xs, ys);

    GaussianProcess g(std::make_unique<Matern52Kernel>(d, 0.3), 1e-4);
    g.fit(xs, ys);
    const double entry = g.logMarginalLikelihood();

    GpFitOptions fo;
    fo.restarts = 2;
    fo.max_iters = 20;
    Rng rng(19);
    const double fitted = g.optimizeHyperparameters(rng, fo);
    EXPECT_TRUE(g.lastFitStats().subset_used);
    EXPECT_GE(fitted, entry); // exact-objective guard
    EXPECT_TRUE(sameBits(fitted, g.logMarginalLikelihood()));
}

TEST(SubsetProbe, RegressingWarmSimplexFallsBackToRestarts)
{
    const size_t n = 128, d = 4;
    std::vector<linalg::Vector> xs;
    std::vector<double> ys;
    makeLargeHistory(n, d, xs, ys);

    GpFitOptions fo;
    fo.restarts = 2;
    fo.max_iters = 20;

    // Reference: never warm-seeded.
    GaussianProcess fresh(std::make_unique<Matern52Kernel>(d, 0.3), 1e-4);
    fresh.fit(xs, ys);
    Rng fresh_rng(97);
    const double fresh_lml = fresh.optimizeHyperparameters(fresh_rng, fo);
    EXPECT_FALSE(fresh.lastFitStats().warm_hit);
    const double fresh_next_draw = fresh_rng.uniform();

    // Same fit, but seeded with an absurd warm vector (outside the
    // |v| <= 12 probe domain): every warm-probe evaluation is
    // rejected, the probe regresses, and the restart sweep runs.
    GaussianProcess warmed(std::make_unique<Matern52Kernel>(d, 0.3), 1e-4);
    warmed.fit(xs, ys);
    const size_t nparams = warmed.kernel().logParams().size() + 1;
    warmed.seedWarmStart(std::vector<double>(nparams, 20.0), 0.2);
    Rng warm_rng(97);
    const double warm_lml = warmed.optimizeHyperparameters(warm_rng, fo);

    EXPECT_TRUE(warmed.lastFitStats().subset_used);
    EXPECT_FALSE(warmed.lastFitStats().warm_hit);
    EXPECT_TRUE(sameBits(warm_lml, fresh_lml));
    const std::vector<double> pw = warmed.kernel().logParams();
    const std::vector<double> pf = fresh.kernel().logParams();
    ASSERT_EQ(pw.size(), pf.size());
    for (size_t i = 0; i < pw.size(); ++i)
        EXPECT_TRUE(sameBits(pw[i], pf[i])) << "param " << i;
    // The restart perturbations are drawn before the warm probe runs,
    // so the caller's stream position is branch-invariant.
    EXPECT_TRUE(sameBits(warm_rng.uniform(), fresh_next_draw));
}

TEST(SubsetProbe, ConvergedWarmSimplexWinsWithoutRestarts)
{
    const size_t n = 128, d = 4;
    std::vector<linalg::Vector> xs;
    std::vector<double> ys;
    makeLargeHistory(n, d, xs, ys);

    GpFitOptions fo;
    fo.restarts = 2;
    fo.max_iters = 25;

    // First fit converges through the restart sweep; its winning
    // hyper-vector is what a controller would persist.
    GaussianProcess first(std::make_unique<Matern52Kernel>(d, 0.3), 1e-4);
    first.fit(xs, ys);
    Rng rng1(97);
    first.optimizeHyperparameters(rng1, fo);
    ASSERT_TRUE(first.lastFitStats().subset_used);
    std::vector<double> winner = first.kernel().logParams();
    winner.push_back(std::log(1e-4)); // fit_noise defaults on

    // A fresh model (default hyper-parameters) seeded with that
    // winner: the warm probe descends from a converged point and must
    // beat the subset objective at the defaults.
    GaussianProcess second(std::make_unique<Matern52Kernel>(d, 0.3), 1e-4);
    second.fit(xs, ys);
    second.seedWarmStart(winner, 0.1);
    Rng rng2(97);
    const double lml = second.optimizeHyperparameters(rng2, fo);
    EXPECT_TRUE(second.lastFitStats().warm_hit);
    EXPECT_TRUE(std::isfinite(lml));
    // The warm probe spends a single descent, not restarts+1 of them:
    // strictly fewer probe evaluations than the fallback path burnt.
    EXPECT_LT(second.lastFitStats().probe_evals,
              first.lastFitStats().probe_evals);
}

} // namespace
} // namespace gp
} // namespace clite

/**
 * @file
 * Unit and property tests for the Gaussian-process surrogate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "gp/gaussian_process.h"

namespace clite {
namespace gp {
namespace {

GaussianProcess
makeGp(double noise = 1e-6, size_t dims = 1)
{
    return GaussianProcess(std::make_unique<Matern52Kernel>(dims, 0.5, 1.0),
                           noise);
}

TEST(GaussianProcess, InterpolatesTrainingPoints)
{
    GaussianProcess gp = makeGp();
    std::vector<linalg::Vector> x = {{0.0}, {0.5}, {1.0}};
    std::vector<double> y = {1.0, -0.5, 2.0};
    gp.fit(x, y);
    for (size_t i = 0; i < x.size(); ++i) {
        Prediction p = gp.predict(x[i]);
        EXPECT_NEAR(p.mean, y[i], 1e-3);
        EXPECT_LT(p.stddev(), 0.05);
    }
}

TEST(GaussianProcess, UncertaintyGrowsAwayFromData)
{
    GaussianProcess gp = makeGp();
    gp.fit({{0.0}, {1.0}}, {0.0, 1.0});
    double near = gp.predict({0.05}).variance;
    double mid = gp.predict({0.5}).variance;
    double far = gp.predict({3.0}).variance;
    EXPECT_LT(near, mid);
    EXPECT_LT(mid, far);
}

TEST(GaussianProcess, PriorVarianceRecoveredFarAway)
{
    GaussianProcess gp = makeGp();
    gp.fit({{0.0}}, {0.7});
    // Far from data the posterior reverts to the prior (scaled by the
    // target standardization, which is 1 for a single point).
    Prediction p = gp.predict({100.0});
    EXPECT_NEAR(p.variance, 1.0, 0.05);
}

TEST(GaussianProcess, RecoversSmoothFunction)
{
    GaussianProcess gp = makeGp(1e-5);
    std::vector<linalg::Vector> x;
    std::vector<double> y;
    for (double t = 0.0; t <= 1.001; t += 0.1) {
        x.push_back({t});
        y.push_back(std::sin(2.0 * M_PI * t));
    }
    gp.fit(x, y);
    for (double t = 0.05; t < 1.0; t += 0.1) {
        Prediction p = gp.predict({t});
        EXPECT_NEAR(p.mean, std::sin(2.0 * M_PI * t), 0.1)
            << "at t=" << t;
    }
}

TEST(GaussianProcess, HyperparameterFitImprovesLml)
{
    Rng rng(3);
    GaussianProcess gp = makeGp(1e-2, 1);
    std::vector<linalg::Vector> x;
    std::vector<double> y;
    for (double t = 0.0; t <= 1.001; t += 0.05) {
        x.push_back({t});
        y.push_back(std::sin(2.0 * M_PI * t) + rng.normal(0.0, 0.05));
    }
    gp.fit(x, y);
    double before = gp.logMarginalLikelihood();
    double after = gp.optimizeHyperparameters(rng);
    EXPECT_GE(after, before - 1e-9);
    EXPECT_DOUBLE_EQ(after, gp.logMarginalLikelihood());
}

TEST(GaussianProcess, ConstantTargetsHandled)
{
    GaussianProcess gp = makeGp();
    gp.fit({{0.0}, {0.5}, {1.0}}, {2.0, 2.0, 2.0});
    Prediction p = gp.predict({0.25});
    EXPECT_NEAR(p.mean, 2.0, 1e-6);
}

TEST(GaussianProcess, CopySemanticsIndependent)
{
    GaussianProcess a = makeGp();
    a.fit({{0.0}, {1.0}}, {0.0, 1.0});
    GaussianProcess b = a;
    b.fit({{0.0}, {1.0}}, {5.0, 5.0});
    EXPECT_NEAR(a.predict({0.0}).mean, 0.0, 1e-3);
    EXPECT_NEAR(b.predict({0.0}).mean, 5.0, 1e-3);
}

TEST(GaussianProcess, MultiDimensionalFit)
{
    GaussianProcess gp = makeGp(1e-5, 2);
    Rng rng(5);
    std::vector<linalg::Vector> x;
    std::vector<double> y;
    for (int i = 0; i < 30; ++i) {
        double a = rng.uniform(), b = rng.uniform();
        x.push_back({a, b});
        y.push_back(a * a + 0.5 * b);
    }
    gp.fit(x, y);
    Prediction p = gp.predict({0.5, 0.5});
    EXPECT_NEAR(p.mean, 0.5, 0.1);
}

TEST(GaussianProcess, Validation)
{
    GaussianProcess gp = makeGp();
    EXPECT_FALSE(gp.fitted());
    EXPECT_THROW(gp.predict({0.0}), Error);
    EXPECT_THROW(gp.logMarginalLikelihood(), Error);
    EXPECT_THROW(gp.fit({}, {}), Error);
    EXPECT_THROW(gp.fit({{0.0}}, {1.0, 2.0}), Error);
    EXPECT_THROW(gp.fit({{0.0, 1.0}}, {1.0}), Error); // dim mismatch
    gp.fit({{0.0}}, {1.0});
    EXPECT_TRUE(gp.fitted());
    EXPECT_THROW(gp.predict({0.0, 1.0}), Error);
    EXPECT_THROW(GaussianProcess(nullptr, 0.1), Error);
    EXPECT_THROW(GaussianProcess(std::make_unique<RbfKernel>(1), 0.0),
                 Error);
}

TEST(GaussianProcess, NoisyDuplicatePointsStayStable)
{
    // Duplicate inputs with different targets: the noise term must
    // keep the kernel matrix factorizable.
    GaussianProcess gp(std::make_unique<Matern52Kernel>(1, 0.5, 1.0),
                       1e-3);
    gp.fit({{0.5}, {0.5}, {0.5}}, {1.0, 1.2, 0.8});
    Prediction p = gp.predict({0.5});
    EXPECT_NEAR(p.mean, 1.0, 0.05);
}

} // namespace
} // namespace gp
} // namespace clite

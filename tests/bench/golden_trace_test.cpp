/**
 * @file
 * Golden-trace regression tests for the figure-driver cores.
 *
 * The figure benches (bench/fig06..fig16) are executables, so nothing
 * in the test suite noticed when their numbers drifted. These tests
 * recompute a compact core of three drivers — the Fig. 6 isolated
 * knee sweep, a Fig. 7 max-supported-load cell and a Fig. 13
 * BG-performance cell — and diff the %.9g-formatted trace against
 * goldens committed in tests/bench/golden/. Everything underneath is
 * deterministic (seeded noise, seeded BO, thread-count-invariant
 * pool), so the comparison is exact string equality: any change to
 * the numerics — kernels, score, model, search — shows up as a diff,
 * down to one ULP in a GP kernel.
 *
 * Regenerating after an INTENDED numerical change:
 *
 *     CLITE_REGEN_GOLDEN=1 ./tests/test_bench
 *
 * rewrites the golden files in the source tree (the build knows the
 * path via the CLITE_GOLDEN_DIR compile definition); commit the diff
 * together with the change that caused it.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/score.h"
#include "gp/gaussian_process.h"
#include "gp/kernel.h"
#include "harness/analysis.h"
#include "harness/knee.h"
#include "harness/maxload.h"
#include "harness/schemes.h"
#include "workloads/catalog.h"

#ifndef CLITE_GOLDEN_DIR
#error "CLITE_GOLDEN_DIR must point at tests/bench/golden"
#endif

namespace clite {
namespace harness {
namespace {

std::string
g17(double v)
{
    // Full double precision: pins a value to the last ULP.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
g(double v)
{
    // %.9g: enough digits that any behavioural drift shows, few
    // enough that the goldens stay readable. The searches underneath
    // are exactly reproducible, so even the last digit is stable.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

/** Compare @p trace to the golden file, or rewrite it under regen. */
void
checkGolden(const std::string& name, const std::string& trace)
{
    const std::string path =
        std::string(CLITE_GOLDEN_DIR) + "/" + name + ".txt";
    if (std::getenv("CLITE_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out << trace;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good())
        << "missing golden " << path
        << " (run with CLITE_REGEN_GOLDEN=1 to create it)";
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_EQ(buf.str(), trace)
        << "trace diverged from " << path << ". If the numerical "
        << "change is intended, regenerate with CLITE_REGEN_GOLDEN=1 "
        << "and commit the new golden.";
}

TEST(GoldenTrace, Fig06IsolatedKneeSweep)
{
    // The Fig. 6 core: isolated QPS/p95 sweeps. Model-only (no
    // search), covering the analytic latency model, the catalog and
    // the DES backend on one workload.
    std::ostringstream trace;
    const std::vector<double> loads = {0.2, 0.4, 0.6, 0.8, 1.0, 1.2};
    for (const std::string& name : {std::string("memcached"),
                                    std::string("xapian")}) {
        KneeCurve curve =
            sweepIsolatedLoad(name, loads, ModelBackend::Analytic);
        trace << "fig06 " << name << " qos_p95_ms=" << g(curve.qos_p95_ms)
              << " max_qps=" << g(curve.max_qps)
              << " knee=" << g(curve.measuredKneeLoad()) << "\n";
        for (const KneePoint& pt : curve.points)
            trace << "fig06 " << name << " load=" << g(pt.load_fraction)
                  << " qps=" << g(pt.qps) << " p95=" << g(pt.p95_ms)
                  << "\n";
    }
    KneeCurve des = sweepIsolatedLoad("memcached", {0.4, 0.8},
                                      ModelBackend::Des);
    for (const KneePoint& pt : des.points)
        trace << "fig06 memcached-des load=" << g(pt.load_fraction)
              << " p95=" << g(pt.p95_ms) << "\n";
    checkGolden("fig06_knee", trace.str());
}

TEST(GoldenTrace, Fig07MaxSupportedLoadCell)
{
    // One Fig. 7 heatmap cell: the highest memcached load CLITE can
    // co-locate next to xapian@40% + img-dnn@40%. Exercises the full
    // BO search (bootstrap, GP, acquisition) through the maxload
    // driver.
    MaxLoadQuery query;
    query.fixed_jobs = {workloads::lcJob("xapian", 0.4),
                        workloads::lcJob("img-dnn", 0.4)};
    query.probe_workload = "memcached";
    query.probe_loads = {0.2, 0.4, 0.6, 0.8};
    query.seed = 7;
    std::ostringstream trace;
    for (const std::string& scheme : {std::string("clite"),
                                      std::string("parties")})
        trace << "fig07 " << scheme
              << " max_load=" << g(maxSupportedLoad(scheme, query))
              << "\n";
    checkGolden("fig07_maxload", trace.str());
}

TEST(GoldenTrace, Fig13BgPerformanceCell)
{
    // One Fig. 13 cell per scheme: three LC jobs plus one BG job;
    // the trace pins the search outcome (samples, feasibility), the
    // ground-truth score and the BG normalized performance.
    ServerSpec spec;
    spec.jobs = {workloads::lcJob("memcached", 0.4),
                 workloads::lcJob("xapian", 0.4),
                 workloads::lcJob("img-dnn", 0.4),
                 workloads::bgJob("canneal")};
    spec.seed = 90;
    std::ostringstream trace;
    for (const std::string& scheme : {std::string("clite"),
                                      std::string("parties")}) {
        SchemeOutcome out = runScheme(scheme, spec, spec.seed);
        trace << "fig13 " << scheme << " samples=" << out.result.samples
              << " feasible=" << (out.result.feasible ? 1 : 0)
              << " score=" << g(out.truth.score)
              << " qos_met=" << (out.truth.all_qos_met ? 1 : 0)
              << " bg_perf=" << g(meanBgPerformance(out.truth_obs))
              << "\n";
    }
    checkGolden("fig13_bgperf", trace.str());
}

TEST(GoldenTrace, SurrogatePosteriorToTheLastUlp)
{
    // The three driver goldens pin search OUTCOMES, which are robust
    // to sub-noise numerical drift by design. This trace pins the BO
    // surrogate itself: GP posteriors on a fixed score dataset,
    // %.17g-formatted, so a single-ULP change anywhere in the kernel
    // or the Cholesky path flips the trace. The training targets come
    // from the analytic model (noise-free scores of fixed partitions),
    // tying the golden to the repo's numerics end to end.
    ServerSpec spec;
    spec.jobs = {workloads::lcJob("memcached", 0.4),
                 workloads::lcJob("xapian", 0.3),
                 workloads::bgJob("canneal")};
    spec.noise_sigma = 0.0;
    platform::SimulatedServer server = makeServer(spec);

    std::vector<linalg::Vector> x;
    std::vector<double> y;
    platform::Allocation alloc = platform::Allocation::equalShare(
        3, server.config());
    for (int step = 0; step < 6; ++step) {
        x.push_back(alloc.flattenNormalized());
        y.push_back(core::scoreObservations(
                        server.observeNoiseless(alloc))
                        .score);
        alloc.transferUnit(size_t(step % 3), size_t(step % 3),
                           size_t((step + 1) % 3));
    }

    std::ostringstream trace;
    for (const std::string& kname : {std::string("matern52"),
                                     std::string("rbf")}) {
        gp::GaussianProcess gp(gp::makeKernel(kname, x[0].size(), 0.3),
                               1e-4);
        gp.fit(x, y);
        for (const linalg::Vector& q : x) {
            gp::Prediction p = gp.predict(q);
            trace << "gp " << kname << " mean=" << g17(p.mean)
                  << " var=" << g17(p.variance) << "\n";
        }
    }
    checkGolden("gp_posterior", trace.str());
}

} // namespace
} // namespace harness
} // namespace clite

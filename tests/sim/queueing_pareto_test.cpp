/**
 * @file
 * Pins the ServiceModel entry points of the DES (sim/queueing.h):
 *
 *  - for the legacy kinds (Exponential, LogNormal, Fixed) the
 *    ServiceModel overload delegates to the sigma-selector entry point
 *    bit for bit, so existing perf-model results cannot move;
 *  - for BoundedPareto the fast path reproduces
 *    measureStationReference bit for bit across seeds and budgets;
 *  - bounded-Pareto service really is heavy-tailed (p99/mean well
 *    above the light-tailed kinds at the same utilization) and its
 *    sampler's moments match the closed form within tolerance;
 *  - invalid shape parameters throw.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "common/error.h"
#include "common/rng.h"
#include "sim/queueing.h"
#include "stats/distributions.h"

namespace clite {
namespace sim {
namespace {

/** Bitwise equality for doubles (NaN-safe, distinguishes -0.0). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

void
expectIdentical(const TailMeasurement& a, const TailMeasurement& b,
                uint64_t seed)
{
    EXPECT_TRUE(sameBits(a.p50, b.p50)) << "p50 seed " << seed;
    EXPECT_TRUE(sameBits(a.p95, b.p95)) << "p95 seed " << seed;
    EXPECT_TRUE(sameBits(a.p99, b.p99)) << "p99 seed " << seed;
    EXPECT_TRUE(sameBits(a.mean, b.mean)) << "mean seed " << seed;
    EXPECT_EQ(a.completed, b.completed) << "completed seed " << seed;
    EXPECT_TRUE(sameBits(a.throughput, b.throughput))
        << "throughput seed " << seed;
}

constexpr int kServers = 4;
constexpr double kArrivalRate = 2000.0;
constexpr double kMeanService = 0.0015;
constexpr double kWarmup = 0.5;
constexpr double kWindow = 2.0;

ServiceModel
model(ServiceModel::Kind kind)
{
    ServiceModel m;
    m.kind = kind;
    m.mean_service = kMeanService;
    return m;
}

TEST(ServiceModel, LegacyKindsDelegateBitIdentically)
{
    // (kind, equivalent legacy sigma selector): > 0 log-normal,
    // 0 fixed, < 0 exponential.
    const struct
    {
        ServiceModel::Kind kind;
        double sigma;
    } cases[] = {
        {ServiceModel::Kind::Exponential, -1.0},
        {ServiceModel::Kind::LogNormal, 0.45},
        {ServiceModel::Kind::Fixed, 0.0},
    };
    for (const auto& c : cases) {
        for (uint64_t seed : {1ull, 42ull, 977ull}) {
            ServiceModel m = model(c.kind);
            m.sigma = c.sigma > 0.0 ? c.sigma : m.sigma;
            Rng rng_model(seed), rng_legacy(seed);
            TailMeasurement via_model =
                measureStation(kServers, kArrivalRate, m, kWarmup,
                               kWindow, rng_model);
            TailMeasurement via_legacy =
                measureStation(kServers, kArrivalRate, kMeanService,
                               c.sigma, kWarmup, kWindow, rng_legacy);
            expectIdentical(via_model, via_legacy, seed);
            // The RNG streams must also end in the same state (same
            // number of draws), or downstream consumers would diverge.
            EXPECT_EQ(rng_model.next(), rng_legacy.next());
        }
    }
}

TEST(ServiceModel, ParetoFastPathMatchesReference)
{
    for (uint64_t seed : {3ull, 77ull, 5001ull}) {
        for (uint64_t budget : {uint64_t(0), uint64_t(500)}) {
            ServiceModel m = model(ServiceModel::Kind::BoundedPareto);
            Rng rng_fast(seed), rng_ref(seed);
            TailMeasurement fast =
                measureStation(kServers, kArrivalRate, m, kWarmup,
                               kWindow, rng_fast, budget);
            TailMeasurement ref = measureStationReference(
                kServers, kArrivalRate, m, kWarmup, kWindow, rng_ref,
                budget);
            expectIdentical(fast, ref, seed);
        }
    }
}

TEST(ServiceModel, BudgetedParetoEqualsShorterWindow)
{
    // A budgeted measurement is defined as the unbudgeted measurement
    // over effectiveWindow() — bit-identical, not merely close.
    const uint64_t budget = 800;
    ServiceModel m = model(ServiceModel::Kind::BoundedPareto);
    Rng rng_budget(9), rng_window(9);
    TailMeasurement budgeted =
        measureStation(kServers, kArrivalRate, m, kWarmup, kWindow,
                       rng_budget, budget);
    TailMeasurement windowed = measureStation(
        kServers, kArrivalRate, m, kWarmup,
        effectiveWindow(kWindow, kArrivalRate, budget), rng_window);
    expectIdentical(budgeted, windowed, 9);
    EXPECT_LE(budgeted.completed, size_t(budget + budget / 4));
}

TEST(ServiceModel, ParetoTailIsHeavierThanLightTailedKinds)
{
    // Same utilization, same mean service time: the heavy-tailed mix
    // must show a fatter p99-to-mean ratio than both light tails.
    auto p99OverMean = [](ServiceModel::Kind kind) {
        ServiceModel m;
        m.kind = kind;
        m.mean_service = kMeanService;
        m.pareto_alpha = 1.3;
        m.pareto_tail_ratio = 1000.0;
        Rng rng(4242);
        TailMeasurement t = measureStation(kServers, kArrivalRate, m,
                                           kWarmup, 4.0, rng);
        EXPECT_GT(t.completed, 0u);
        return t.p99 / t.mean;
    };
    double pareto = p99OverMean(ServiceModel::Kind::BoundedPareto);
    double lognormal = p99OverMean(ServiceModel::Kind::LogNormal);
    double exponential = p99OverMean(ServiceModel::Kind::Exponential);
    EXPECT_GT(pareto, lognormal);
    EXPECT_GT(pareto, exponential);
}

TEST(ServiceModel, ParetoValidation)
{
    Rng rng(1);
    ServiceModel m = model(ServiceModel::Kind::BoundedPareto);
    m.pareto_alpha = 1.0; // mean diverges as alpha -> 1
    EXPECT_THROW(measureStation(kServers, kArrivalRate, m, kWarmup,
                                kWindow, rng),
                 Error);
    m = model(ServiceModel::Kind::BoundedPareto);
    m.pareto_tail_ratio = 1.0; // degenerate support
    EXPECT_THROW(measureStation(kServers, kArrivalRate, m, kWarmup,
                                kWindow, rng),
                 Error);
    m = model(ServiceModel::Kind::LogNormal);
    m.sigma = 0.0; // LogNormal kind requires a positive sigma
    EXPECT_THROW(measureStation(kServers, kArrivalRate, m, kWarmup,
                                kWindow, rng),
                 Error);
}

TEST(BoundedPareto, SampledMomentsMatchClosedForm)
{
    // Drive the inverse CDF with a deterministic uniform grid: the
    // grid mean converges to the closed-form mean (midpoint rule over
    // the quantile function).
    const double alpha = 1.5;
    const double lower =
        stats::boundedParetoLowerForMean(kMeanService, alpha, 100.0);
    const double upper = lower * 100.0;
    const int n = 200000;
    double sum = 0.0;
    double max_seen = 0.0;
    for (int i = 0; i < n; ++i) {
        double u = (double(i) + 0.5) / double(n);
        double x = stats::boundedParetoQuantile(u, alpha, lower, upper);
        EXPECT_GE(x, lower);
        EXPECT_LE(x, upper * (1.0 + 1e-12));
        sum += x;
        max_seen = std::max(max_seen, x);
    }
    EXPECT_NEAR(sum / n, kMeanService, 0.01 * kMeanService);
    EXPECT_NEAR(sum / n, stats::boundedParetoMean(alpha, lower, upper),
                0.01 * kMeanService);
    // The tail really reaches toward H (heavy-tailedness is the point).
    EXPECT_GT(max_seen, 0.5 * upper);
    // And the mean-solver round-trips.
    EXPECT_NEAR(stats::boundedParetoMean(alpha, lower, upper),
                kMeanService, 1e-12);
}

} // namespace
} // namespace sim
} // namespace clite

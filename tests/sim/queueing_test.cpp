/**
 * @file
 * Unit and property tests for the queueing station, including the
 * cross-validation of the DES against the closed-form M/M/c results —
 * the consistency contract between the two performance-model backends.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "sim/queueing.h"
#include "stats/distributions.h"

namespace clite {
namespace sim {
namespace {

TEST(QueueingStation, NoArrivalsNoCompletions)
{
    Rng rng(3);
    TailMeasurement m = measureStation(2, 0.0, 0.01, -1.0, 0.5, 2.0, rng);
    EXPECT_EQ(m.completed, 0u);
    EXPECT_DOUBLE_EQ(m.throughput, 0.0);
}

TEST(QueueingStation, ThroughputMatchesOfferedLoadWhenStable)
{
    Rng rng(5);
    // lambda = 200/s, capacity = 4 / 0.01 = 400/s.
    TailMeasurement m = measureStation(4, 200.0, 0.01, -1.0, 2.0, 20.0,
                                       rng);
    EXPECT_NEAR(m.throughput, 200.0, 12.0);
}

TEST(QueueingStation, DeterministicServiceLowLoadLatencyIsService)
{
    Rng rng(7);
    TailMeasurement m = measureStation(8, 10.0, 0.02, 0.0, 1.0, 10.0, rng);
    // Almost no queueing at 2.5% utilization; all responses ~ 20ms.
    EXPECT_NEAR(m.p95, 0.02, 0.002);
    EXPECT_NEAR(m.p50, 0.02, 0.002);
}

struct MmcCase
{
    int servers;
    double rho;
};

class DesVsAnalytic : public ::testing::TestWithParam<MmcCase>
{
};

TEST_P(DesVsAnalytic, P95WithinTolerance)
{
    const MmcCase c = GetParam();
    const double mu = 100.0; // per-server rate
    const double lambda = c.rho * c.servers * mu;
    Rng rng(uint64_t(c.servers) * 100 + uint64_t(c.rho * 100));
    // Long window so the empirical percentile is tight.
    TailMeasurement m = measureStation(c.servers, lambda, 1.0 / mu, -1.0,
                                       5.0, 60.0, rng);
    double expect = stats::mmcResponseQuantile(c.servers, lambda, mu, 0.95);
    EXPECT_NEAR(m.p95, expect, 0.15 * expect)
        << "c=" << c.servers << " rho=" << c.rho;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DesVsAnalytic,
    ::testing::Values(MmcCase{1, 0.3}, MmcCase{1, 0.7}, MmcCase{2, 0.5},
                      MmcCase{4, 0.6}, MmcCase{8, 0.8}, MmcCase{10, 0.45}));

TEST(QueueingStation, OverloadGrowsLatency)
{
    Rng rng(11);
    TailMeasurement stable = measureStation(2, 100.0, 0.01, -1.0, 1.0, 10.0,
                                            rng);
    TailMeasurement overloaded = measureStation(2, 400.0, 0.01, -1.0, 1.0,
                                                10.0, rng);
    EXPECT_GT(overloaded.p95, 5.0 * stable.p95);
}

TEST(QueueingStation, ResetMeasurementsDiscardsWarmup)
{
    Rng rng(13);
    Simulator simulator;
    QueueingStation st(
        simulator, 1, 50.0, [](Rng& r) { return r.exponential(100.0); },
        rng);
    st.start();
    simulator.runUntil(1.0);
    size_t before = st.completedCount();
    EXPECT_GT(before, 0u);
    st.resetMeasurements();
    EXPECT_EQ(st.completedCount(), 0u);
    simulator.runUntil(2.0);
    EXPECT_GT(st.completedCount(), 0u);
}

TEST(QueueingStation, Validation)
{
    Rng rng(17);
    Simulator simulator;
    EXPECT_THROW(QueueingStation(simulator, 0, 1.0,
                                 [](Rng&) { return 0.1; }, rng),
                 Error);
    EXPECT_THROW(QueueingStation(simulator, 1, -1.0,
                                 [](Rng&) { return 0.1; }, rng),
                 Error);
    EXPECT_THROW(measureStation(1, 1.0, 0.0, -1.0, 0.0, 1.0, rng), Error);
    EXPECT_THROW(measureStation(1, 1.0, 0.1, -1.0, 0.0, 0.0, rng), Error);
}

} // namespace
} // namespace sim
} // namespace clite

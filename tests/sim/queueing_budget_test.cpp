/**
 * @file
 * Accuracy contract of the event-budgeted (coarse) measurement mode.
 *
 * A budget caps the expected number of measured requests per window by
 * shortening the measured span to min(window, budget / λ) — the
 * estimate stays unbiased (it is exactly an unbudgeted measurement of
 * the shorter window) but gets noisier as the budget shrinks. The
 * contract documented in docs/MODEL.md and pinned here:
 *
 *  - semantics: the budgeted result IS the full-window code path run
 *    over effectiveWindow(), bit for bit, and budgets below
 *    kMinEventBudget clamp up to it;
 *  - accuracy: at a 2000-request budget, the p95 of a stable station
 *    (utilization <= 0.9) stays within 25% of the unbudgeted p95 when
 *    both are averaged over 8 seeds — the tolerance QoS decisions in
 *    coarse mode are designed against;
 *  - sanity: a fig06-style QPS sweep under the coarse budget still
 *    produces the hockey-stick — tail latency non-decreasing-ish in
 *    load and exploding near saturation — so load curves ranked by a
 *    coarse model rank the same way as fine ones.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "sim/queueing.h"

namespace clite {
namespace sim {
namespace {

TEST(EventBudget, EffectiveWindowSemantics)
{
    // Unlimited budget or no arrivals: the full window.
    EXPECT_DOUBLE_EQ(effectiveWindow(2.0, 500.0, 0), 2.0);
    EXPECT_DOUBLE_EQ(effectiveWindow(2.0, 0.0, 1000), 2.0);
    // Budget above lambda * window: the full window.
    EXPECT_DOUBLE_EQ(effectiveWindow(2.0, 500.0, 10000), 2.0);
    // Binding budget: budget / lambda.
    EXPECT_DOUBLE_EQ(effectiveWindow(2.0, 500.0, 200), 0.4);
    // Budgets below the floor clamp up to kMinEventBudget.
    EXPECT_DOUBLE_EQ(effectiveWindow(2.0, 500.0, 1),
                     double(kMinEventBudget) / 500.0);
}

/**
 * A budgeted measurement is bit-identical to the unbudgeted
 * measurement of the effectiveWindow() span: coarse mode adds no
 * second code path, only a shorter window.
 */
TEST(EventBudget, BudgetedEqualsShorterUnbudgetedWindow)
{
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        const double lambda = 400.0, window = 2.0;
        const uint64_t budget = 256;
        Rng rng_budget(seed);
        Rng rng_short(seed);
        TailMeasurement budgeted = measureStation(
            3, lambda, 0.006, 0.5, 0.5, window, rng_budget, budget);
        TailMeasurement shorter = measureStation(
            3, lambda, 0.006, 0.5, 0.5,
            effectiveWindow(window, lambda, budget), rng_short);
        EXPECT_EQ(std::memcmp(&budgeted, &shorter, sizeof budgeted), 0)
            << "seed " << seed;
    }
}

/**
 * The documented coarse-mode accuracy: p95 under a 2000-request budget
 * within 25% of the unbudgeted p95, seed-averaged, for a stable
 * station at high-but-stable utilization.
 */
TEST(EventBudget, CoarseP95WithinDocumentedTolerance)
{
    const int servers = 4;
    const double mean_service = 0.010, sigma = 0.5;
    const double lambda = 360.0; // rho = 0.9
    const uint64_t budget = 2000;

    double fine_sum = 0.0, coarse_sum = 0.0;
    const int seeds = 8;
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
        Rng rng_fine(seed);
        Rng rng_coarse(seed);
        fine_sum += measureStation(servers, lambda, mean_service, sigma,
                                   1.0, 2.0, rng_fine)
                        .p95;
        coarse_sum += measureStation(servers, lambda, mean_service, sigma,
                                     1.0, 2.0, rng_coarse, budget)
                          .p95;
    }
    const double fine = fine_sum / seeds;
    const double coarse = coarse_sum / seeds;
    EXPECT_GT(fine, 0.0);
    EXPECT_NEAR(coarse, fine, 0.25 * fine)
        << "coarse p95 " << coarse << " vs fine " << fine;
}

/**
 * Fig. 6-style sanity sweep under the coarse budget: tail latency as a
 * function of offered QPS keeps the shape QoS reasoning relies on —
 * near-flat at low load, finite everywhere, and clearly exploding by
 * rho ~ 0.95 relative to the low-load tail.
 */
TEST(EventBudget, CoarseLoadSweepKeepsHockeyStick)
{
    const int servers = 4;
    const double mean_service = 0.010, sigma = 0.5;
    const double capacity = servers / mean_service; // 400/s
    const std::vector<double> rhos = {0.1, 0.3, 0.5, 0.7, 0.9, 0.95};
    std::vector<double> p95(rhos.size(), 0.0);
    const int seeds = 4;
    for (size_t i = 0; i < rhos.size(); ++i) {
        for (uint64_t seed = 1; seed <= seeds; ++seed) {
            Rng rng(seed);
            p95[i] += measureStation(servers, rhos[i] * capacity,
                                     mean_service, sigma, 1.0, 2.0, rng,
                                     2000)
                          .p95;
        }
        p95[i] /= seeds;
        EXPECT_GT(p95[i], 0.0) << "rho " << rhos[i];
        // Tail can never beat the pure service tail by much; guard
        // against degenerate (empty-window) measurements.
        EXPECT_GT(p95[i], 0.5 * mean_service) << "rho " << rhos[i];
    }
    // Monotone-ish: each step may wobble within seed noise, but the
    // curve must rise overall and the knee must be pronounced.
    EXPECT_GT(p95.back(), 2.0 * p95.front());
    EXPECT_GT(p95[4], p95[0]); // rho 0.9 above rho 0.1
}

} // namespace
} // namespace sim
} // namespace clite

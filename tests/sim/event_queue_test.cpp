/**
 * @file
 * Unit tests for the discrete-event simulation core.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "sim/event_queue.h"

namespace clite {
namespace sim {
namespace {

TEST(Simulator, ProcessesEventsInTimeOrder)
{
    Simulator s;
    std::vector<int> order;
    s.schedule(3.0, [&] { order.push_back(3); });
    s.schedule(1.0, [&] { order.push_back(1); });
    s.schedule(2.0, [&] { order.push_back(2); });
    s.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(s.now(), 3.0);
    EXPECT_EQ(s.eventsProcessed(), 3u);
}

TEST(Simulator, FifoTieBreakAtEqualTimes)
{
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        s.schedule(1.0, [&order, i] { order.push_back(i); });
    s.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive)
{
    Simulator s;
    int fired = 0;
    s.schedule(1.0, [&] { ++fired; });
    s.schedule(2.0, [&] { ++fired; });
    s.schedule(2.0001, [&] { ++fired; });
    s.runUntil(2.0);
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(s.now(), 2.0);
    EXPECT_EQ(s.pendingEvents(), 1u);
    s.runUntil(3.0);
    EXPECT_EQ(fired, 3);
    EXPECT_DOUBLE_EQ(s.now(), 3.0); // clock advances to the boundary
}

TEST(Simulator, CallbacksCanScheduleMoreEvents)
{
    Simulator s;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            s.schedule(1.0, chain);
    };
    s.schedule(1.0, chain);
    s.runToCompletion();
    EXPECT_EQ(depth, 5);
    EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Simulator, ScheduleAtAbsoluteTime)
{
    Simulator s;
    bool fired = false;
    s.scheduleAt(4.5, [&] { fired = true; });
    s.runUntil(4.0);
    EXPECT_FALSE(fired);
    s.runUntil(5.0);
    EXPECT_TRUE(fired);
}

TEST(Simulator, SchedulingIntoThePastThrows)
{
    Simulator s;
    s.schedule(1.0, [] {});
    s.runToCompletion();
    EXPECT_THROW(s.scheduleAt(0.5, [] {}), Error);
    EXPECT_THROW(s.schedule(-0.1, [] {}), Error);
}

TEST(Simulator, ClearPendingDropsEventsKeepsClock)
{
    Simulator s;
    int fired = 0;
    s.schedule(1.0, [&] { ++fired; });
    s.runUntil(1.0);
    s.schedule(1.0, [&] { ++fired; });
    s.clearPending();
    s.runToCompletion();
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(s.now(), 1.0);
    EXPECT_EQ(s.pendingEvents(), 0u);
}

TEST(Simulator, ClearKeepsCapacityResetsState)
{
    Simulator s;
    s.reserve(64);
    int fired = 0;
    s.schedule(2.0, [&] { ++fired; });
    s.runToCompletion();
    s.clear();
    EXPECT_DOUBLE_EQ(s.now(), 0.0);
    EXPECT_EQ(s.eventsProcessed(), 0u);
    EXPECT_EQ(s.pendingEvents(), 0u);
    s.schedule(0.5, [&] { ++fired; });
    s.runToCompletion();
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(s.now(), 0.5);
}

/**
 * The pooled slab/heap pop order must be exactly the (time, seq) order
 * of the std::priority_queue implementation it replaced. Random
 * schedules — with deliberate duplicate times to exercise the FIFO
 * tie-break, and events scheduled from inside callbacks to exercise
 * mid-run heap growth — are replayed against a reference priority
 * queue over the same (time, seq) keys.
 */
TEST(Simulator, PopOrderMatchesReferencePriorityQueue)
{
    struct Key
    {
        double time;
        uint64_t seq;
        int id;
    };
    struct After
    {
        // priority_queue is a max-heap; invert the (time, seq) order.
        bool operator()(const Key& a, const Key& b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    for (uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(seed);
        Simulator s;
        std::priority_queue<Key, std::vector<Key>, After> ref;
        std::vector<int> sim_order;
        uint64_t seq = 0;
        int next_id = 0;

        // A quarter of the delays are drawn from a coarse grid so many
        // events collide at the same timestamp.
        auto draw_delay = [&] {
            if (rng.uniform() < 0.25)
                return 0.125 * double(rng.uniformInt(0, 7));
            return rng.uniform();
        };

        // Initial batch, plus one chaining event that keeps scheduling
        // followers mid-run (heap grows while draining).
        std::function<void(int)> chain = [&](int remaining) {
            if (remaining <= 0)
                return;
            const double delay = draw_delay();
            const int id = next_id++;
            ref.push({s.now() + delay, seq++, id});
            s.schedule(delay, [&, id, remaining] {
                sim_order.push_back(id);
                chain(remaining - 1);
            });
        };
        for (int i = 0; i < 200; ++i) {
            const double delay = draw_delay();
            const int id = next_id++;
            ref.push({delay, seq++, id});
            s.schedule(delay, [&, id] { sim_order.push_back(id); });
        }
        chain(50);
        s.runToCompletion();

        std::vector<int> ref_order;
        while (!ref.empty()) {
            ref_order.push_back(ref.top().id);
            ref.pop();
        }
        ASSERT_EQ(sim_order.size(), ref_order.size()) << "seed " << seed;
        EXPECT_EQ(sim_order, ref_order) << "seed " << seed;
    }
}

} // namespace
} // namespace sim
} // namespace clite

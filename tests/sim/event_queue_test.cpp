/**
 * @file
 * Unit tests for the discrete-event simulation core.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/error.h"
#include "sim/event_queue.h"

namespace clite {
namespace sim {
namespace {

TEST(Simulator, ProcessesEventsInTimeOrder)
{
    Simulator s;
    std::vector<int> order;
    s.schedule(3.0, [&] { order.push_back(3); });
    s.schedule(1.0, [&] { order.push_back(1); });
    s.schedule(2.0, [&] { order.push_back(2); });
    s.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(s.now(), 3.0);
    EXPECT_EQ(s.eventsProcessed(), 3u);
}

TEST(Simulator, FifoTieBreakAtEqualTimes)
{
    Simulator s;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        s.schedule(1.0, [&order, i] { order.push_back(i); });
    s.runToCompletion();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, RunUntilStopsAtBoundaryInclusive)
{
    Simulator s;
    int fired = 0;
    s.schedule(1.0, [&] { ++fired; });
    s.schedule(2.0, [&] { ++fired; });
    s.schedule(2.0001, [&] { ++fired; });
    s.runUntil(2.0);
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(s.now(), 2.0);
    EXPECT_EQ(s.pendingEvents(), 1u);
    s.runUntil(3.0);
    EXPECT_EQ(fired, 3);
    EXPECT_DOUBLE_EQ(s.now(), 3.0); // clock advances to the boundary
}

TEST(Simulator, CallbacksCanScheduleMoreEvents)
{
    Simulator s;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 5)
            s.schedule(1.0, chain);
    };
    s.schedule(1.0, chain);
    s.runToCompletion();
    EXPECT_EQ(depth, 5);
    EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Simulator, ScheduleAtAbsoluteTime)
{
    Simulator s;
    bool fired = false;
    s.scheduleAt(4.5, [&] { fired = true; });
    s.runUntil(4.0);
    EXPECT_FALSE(fired);
    s.runUntil(5.0);
    EXPECT_TRUE(fired);
}

TEST(Simulator, SchedulingIntoThePastThrows)
{
    Simulator s;
    s.schedule(1.0, [] {});
    s.runToCompletion();
    EXPECT_THROW(s.scheduleAt(0.5, [] {}), Error);
    EXPECT_THROW(s.schedule(-0.1, [] {}), Error);
}

TEST(Simulator, ClearPendingDropsEventsKeepsClock)
{
    Simulator s;
    int fired = 0;
    s.schedule(1.0, [&] { ++fired; });
    s.runUntil(1.0);
    s.schedule(1.0, [&] { ++fired; });
    s.clearPending();
    s.runToCompletion();
    EXPECT_EQ(fired, 1);
    EXPECT_DOUBLE_EQ(s.now(), 1.0);
    EXPECT_EQ(s.pendingEvents(), 0u);
}

} // namespace
} // namespace sim
} // namespace clite

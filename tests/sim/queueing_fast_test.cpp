/**
 * @file
 * Determinism contract of the specialized measurement loop:
 * measureStation (the production fast path, no generic event queue)
 * must reproduce measureStationReference (QueueingStation on the
 * pooled-heap Simulator) bit for bit — same event order, same RNG draw
 * order, same summary — across seeds, service distributions, and event
 * budgets. sim/queueing.h names this file as the pin for that
 * contract, and for the percentile selection matching a full-sort
 * stats::percentile.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "sim/queueing.h"
#include "stats/summary.h"

namespace clite {
namespace sim {
namespace {

/** Bitwise equality for doubles (NaN-safe, distinguishes -0.0). */
bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

void
expectIdentical(const TailMeasurement& fast, const TailMeasurement& ref,
                uint64_t seed, double sigma)
{
    EXPECT_TRUE(sameBits(fast.p50, ref.p50))
        << "p50 seed " << seed << " sigma " << sigma;
    EXPECT_TRUE(sameBits(fast.p95, ref.p95))
        << "p95 seed " << seed << " sigma " << sigma;
    EXPECT_TRUE(sameBits(fast.p99, ref.p99))
        << "p99 seed " << seed << " sigma " << sigma;
    EXPECT_TRUE(sameBits(fast.mean, ref.mean))
        << "mean seed " << seed << " sigma " << sigma;
    EXPECT_TRUE(sameBits(fast.throughput, ref.throughput))
        << "throughput seed " << seed << " sigma " << sigma;
    EXPECT_EQ(fast.completed, ref.completed)
        << "completed seed " << seed << " sigma " << sigma;
}

/**
 * Ten seeds, three service distributions (log-normal, deterministic,
 * exponential): every summary field bit-identical between the fast
 * loop and the simulator-based reference.
 */
TEST(QueueingFastPath, BitIdenticalToReferenceAcrossSeeds)
{
    const double sigmas[] = {0.5, 0.0, -1.0};
    for (double sigma : sigmas) {
        for (uint64_t seed = 1; seed <= 10; ++seed) {
            Rng rng_fast(seed);
            Rng rng_ref(seed);
            TailMeasurement fast = measureStation(
                3, 180.0, 0.012, sigma, 0.5, 1.5, rng_fast);
            TailMeasurement ref = measureStationReference(
                3, 180.0, 0.012, sigma, 0.5, 1.5, rng_ref);
            expectIdentical(fast, ref, seed, sigma);
            // The RNG streams must also end in the same state: any
            // skipped or extra draw desynchronizes later windows even
            // if this one happened to agree.
            EXPECT_EQ(rng_fast.uniform(), rng_ref.uniform())
                << "rng state seed " << seed << " sigma " << sigma;
        }
    }
}

/** The identity holds under an event budget (shortened window) too. */
TEST(QueueingFastPath, BitIdenticalToReferenceUnderBudget)
{
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng_fast(seed);
        Rng rng_ref(seed);
        TailMeasurement fast = measureStation(2, 300.0, 0.005, 0.5, 0.5,
                                              2.0, rng_fast, 128);
        TailMeasurement ref = measureStationReference(
            2, 300.0, 0.005, 0.5, 0.5, 2.0, rng_ref, 128);
        expectIdentical(fast, ref, seed, 0.5);
    }
}

/**
 * The rank-selected percentiles the fast loop reports are exactly the
 * full-sort stats::percentile values — pinned through the reference
 * path, whose QueueingStation exposes the raw response times.
 */
TEST(QueueingFastPath, SelectedPercentilesMatchFullSort)
{
    for (uint64_t seed = 1; seed <= 5; ++seed) {
        const int servers = 3;
        const double lambda = 180.0, mean_service = 0.012, sigma = 0.5;
        const double warmup = 0.5, window = 1.5;

        Rng rng_fast(seed);
        TailMeasurement fast = measureStation(
            servers, lambda, mean_service, sigma, warmup, window, rng_fast);

        // Re-run the same measurement through the raw station to
        // harvest the measured window's response times.
        Rng rng_raw(seed);
        Simulator sim;
        QueueingStation st(
            sim, servers, lambda,
            [&](Rng& r) { return r.logNormalMean(mean_service, sigma); },
            rng_raw);
        st.start();
        sim.runUntil(warmup);
        st.resetMeasurements();
        sim.runUntil(warmup + window);
        std::vector<double> responses = st.responseTimes();
        ASSERT_EQ(responses.size(), fast.completed);

        EXPECT_TRUE(sameBits(fast.p50, stats::percentile(responses, 0.50)));
        EXPECT_TRUE(sameBits(fast.p95, stats::percentile(responses, 0.95)));
        EXPECT_TRUE(sameBits(fast.p99, stats::percentile(responses, 0.99)));
    }
}

} // namespace
} // namespace sim
} // namespace clite

/**
 * @file
 * White-box tests of individual CLITE mechanisms beyond the
 * end-to-end behaviour covered in clite_test.cpp: the polish phase,
 * validation windows, bootstrap variants, and the constraint
 * machinery under the 6-resource server.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/error.h"
#include "core/clite.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace core {
namespace {

platform::SimulatedServer
makeServer(double noise = 0.02, uint64_t seed = 5)
{
    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("img-dnn", 0.3),
        workloads::lcJob("memcached", 0.3),
        workloads::lcJob("masstree", 0.3),
        workloads::bgJob("streamcluster"),
    };
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), jobs,
        std::make_unique<workloads::AnalyticModel>(), seed, noise);
}

TEST(ClitePolish, SlowImprovesBgPerformancePastFirstFeasible)
{
    // The Fig. 15b claim: the score of the final configuration beats
    // the score at the moment QoS was first met.
    CliteOptions o;
    o.seed = 9;
    CliteController clite(o);
    auto server = makeServer(0.02, 9);
    ControllerResult r = clite.run(server);
    int first = r.firstFeasibleSample();
    ASSERT_GE(first, 0);
    double truth_first = score(
        server.observeNoiseless(r.trace[size_t(first)].alloc));
    double truth_final = score(server.observeNoiseless(*r.best));
    EXPECT_GE(truth_final, truth_first);
}

TEST(ClitePolish, SlowDisablingItReducesQuality)
{
    // Averaged over seeds, the polish phase must pay for itself.
    double with_sum = 0.0, without_sum = 0.0;
    for (uint64_t seed : {3u, 14u, 25u, 36u}) {
        CliteOptions with;
        with.seed = seed;
        CliteOptions without = with;
        without.polish_iterations = 0;
        auto s1 = makeServer(0.02, seed);
        auto r1 = CliteController(with).run(s1);
        with_sum += score(s1.observeNoiseless(*r1.best));
        auto s2 = makeServer(0.02, seed);
        auto r2 = CliteController(without).run(s2);
        without_sum += score(s2.observeNoiseless(*r2.best));
    }
    EXPECT_GE(with_sum, without_sum);
}

TEST(CliteValidation, SlowChosenConfigurationIsTrulyFeasible)
{
    // With sizeable measurement noise, the validation windows must
    // prevent a truly-infeasible configuration from being selected on
    // every tested seed.
    for (uint64_t seed : {11u, 22u, 33u, 44u, 55u}) {
        CliteOptions o;
        o.seed = seed;
        auto server = makeServer(0.05, seed);
        ControllerResult r = CliteController(o).run(server);
        if (r.feasible) {
            auto truth = scoreObservations(server.observeNoiseless(*r.best));
            EXPECT_TRUE(truth.all_qos_met) << "seed " << seed;
        }
    }
}

TEST(CliteBootstrap, RandomBootstrapSkipsInfeasibilityCheck)
{
    // With informed_bootstrap off there are no extremum samples, so
    // infeasibility cannot be proven (only suspected).
    CliteOptions o;
    o.informed_bootstrap = false;
    o.max_iterations = 6;
    o.polish_iterations = 0;
    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("img-dnn", 1.0),
        workloads::lcJob("masstree", 1.0),
        workloads::lcJob("memcached", 1.0),
    };
    platform::SimulatedServer server(
        platform::ServerConfig::xeonSilver4114(), jobs,
        std::make_unique<workloads::AnalyticModel>(), 3, 0.02);
    ControllerResult r = CliteController(o).run(server);
    EXPECT_FALSE(r.infeasible_detected);
    EXPECT_FALSE(r.feasible);
}

TEST(CliteConstraints, SixResourceAllocationsAlwaysValid)
{
    CliteOptions o;
    o.max_iterations = 15;
    o.polish_iterations = 4;
    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("xapian", 0.4),
        workloads::lcJob("memcached", 0.3),
        workloads::bgJob("canneal"),
        workloads::bgJob("swaptions"),
    };
    platform::SimulatedServer server(
        platform::ServerConfig::xeonSilver4114AllResources(), jobs,
        std::make_unique<workloads::AnalyticModel>(), 3, 0.02);
    ControllerResult r = CliteController(o).run(server);
    for (const auto& rec : r.trace) {
        EXPECT_TRUE(rec.alloc.valid());
        EXPECT_EQ(rec.alloc.resources(), 6u);
    }
}

TEST(CliteTermination, SlowPatienceExtendsSearch)
{
    CliteOptions impatient;
    impatient.seed = 5;
    impatient.termination_patience = 1;
    impatient.polish_iterations = 0;
    impatient.validation_windows = 0;
    CliteOptions patient = impatient;
    patient.termination_patience = 4;

    auto s1 = makeServer(0.02, 5);
    int n1 = CliteController(impatient).run(s1).samples;
    auto s2 = makeServer(0.02, 5);
    int n2 = CliteController(patient).run(s2).samples;
    EXPECT_GE(n2, n1);
}

TEST(CliteTwoJobMix, DropoutInactiveButSearchWorks)
{
    // njobs < 3 disables dropout-copy; everything else still works.
    CliteOptions o;
    o.max_iterations = 12;
    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("memcached", 0.5),
        workloads::bgJob("freqmine"),
    };
    platform::SimulatedServer server(
        platform::ServerConfig::xeonSilver4114(), jobs,
        std::make_unique<workloads::AnalyticModel>(), 3, 0.02);
    ControllerResult r = CliteController(o).run(server);
    EXPECT_TRUE(r.feasible);
    EXPECT_GT(r.best_score, 0.5);
}

TEST(CliteSamples, TraceMatchesSampleCount)
{
    auto server = makeServer();
    CliteController clite;
    ControllerResult r = clite.run(server);
    EXPECT_EQ(size_t(r.samples), r.trace.size());
    // Every configuration the server applied beyond the trace came
    // from validation re-measurement or the final re-apply.
    EXPECT_GE(server.applyCount(), uint64_t(r.samples));
}

} // namespace
} // namespace core
} // namespace clite

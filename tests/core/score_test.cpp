/**
 * @file
 * Unit tests for the Eq. 3 score function — the contract that shapes
 * the whole search.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "core/score.h"

namespace clite {
namespace core {
namespace {

platform::JobObservation
lcObs(double p95, double target, double iso = 1.0)
{
    platform::JobObservation ob;
    ob.is_lc = true;
    ob.job_name = "lc";
    ob.p95_ms = p95;
    ob.qos_target_ms = target;
    ob.iso_p95_ms = iso;
    return ob;
}

platform::JobObservation
bgObs(double thr, double iso)
{
    platform::JobObservation ob;
    ob.is_lc = false;
    ob.job_name = "bg";
    ob.throughput = thr;
    ob.iso_throughput = iso;
    return ob;
}

TEST(Score, Mode1WhenAnyQosMissed)
{
    // One LC job at 2x its target, BG at full speed: mode 1, and the
    // BG performance must NOT lift the score (Eq. 3's first branch
    // ignores BG jobs entirely).
    auto sb = scoreObservations({lcObs(10.0, 5.0), bgObs(1000.0, 1000.0)});
    EXPECT_FALSE(sb.all_qos_met);
    EXPECT_NEAR(sb.score, 0.5 * 0.5, 1e-12); // 0.5 * min(1, 5/10)
    EXPECT_LE(sb.score, 0.5);
}

TEST(Score, Mode2WhenAllQosMet)
{
    auto sb = scoreObservations({lcObs(4.0, 5.0), bgObs(600.0, 1000.0)});
    EXPECT_TRUE(sb.all_qos_met);
    EXPECT_NEAR(sb.score, 0.5 + 0.5 * 0.6, 1e-12);
    EXPECT_GT(sb.score, 0.5);
}

TEST(Score, PerfectScoreIsOne)
{
    auto sb = scoreObservations({lcObs(4.0, 5.0), bgObs(1000.0, 1000.0)});
    EXPECT_NEAR(sb.score, 1.0, 1e-12);
}

TEST(Score, Mode1IsMeanOverLcJobs)
{
    // Two LC jobs at ratios 0.5 and 0.125 -> mean 0.3125 -> 0.15625.
    auto sb = scoreObservations({lcObs(10.0, 5.0), lcObs(8.0, 1.0)});
    EXPECT_NEAR(sb.score, 0.5 * 0.3125, 1e-9);
}

TEST(Score, QosRatiosCapAtOneInMode1)
{
    // One job misses (ratio .5), the other has huge headroom (ratio
    // capped at 1): the cap stops the good job from hiding the miss.
    auto sb = scoreObservations({lcObs(10.0, 5.0), lcObs(0.1, 5.0)});
    EXPECT_NEAR(sb.score, 0.5 * 0.75, 1e-9);
}

TEST(Score, AllLcMixUsesLcPerformanceInMode2)
{
    // Paper: with no BG jobs, N_BG -> N_LC; perf = iso_p95/p95.
    auto sb = scoreObservations(
        {lcObs(4.0, 5.0, 2.0), lcObs(2.0, 5.0, 1.0)});
    EXPECT_TRUE(sb.all_qos_met);
    EXPECT_NEAR(sb.perf_component, 0.5, 1e-12); // mean(0.5, 0.5)
    EXPECT_NEAR(sb.score, 0.75, 1e-12);
}

TEST(Score, BoundsHoldOnExtremes)
{
    // Catastrophic latency still gives score > 0 (smoothness floor).
    auto bad = scoreObservations({lcObs(1e9, 1.0)});
    EXPECT_GT(bad.score, 0.0);
    EXPECT_LT(bad.score, 0.01);
    // Mode boundary: meeting exactly the target counts as met.
    auto edge = scoreObservations({lcObs(5.0, 5.0, 5.0)});
    EXPECT_TRUE(edge.all_qos_met);
    EXPECT_GE(edge.score, 0.5);
}

TEST(Score, ImprovingLatencyNeverLowersScore)
{
    double prev = 0.0;
    for (double p95 : {20.0, 10.0, 6.0, 5.0, 3.0, 2.0}) {
        auto sb = scoreObservations({lcObs(p95, 5.0, 2.0)});
        EXPECT_GE(sb.score, prev);
        prev = sb.score;
    }
}

TEST(Score, BreakdownCountsJobs)
{
    auto sb = scoreObservations(
        {lcObs(4.0, 5.0), bgObs(1.0, 2.0), bgObs(1.0, 2.0)});
    EXPECT_EQ(sb.lc_jobs, 1);
    EXPECT_EQ(sb.bg_jobs, 2);
}

TEST(Score, EmptyObservationsRejected)
{
    EXPECT_THROW(scoreObservations({}), Error);
}

} // namespace
} // namespace core
} // namespace clite

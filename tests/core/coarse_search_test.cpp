/**
 * @file
 * Coarse-mode search probes (CliteOptions::search_event_budget):
 *
 *  - with the DES backend, a positive budget measures search probe
 *    windows coarse (counted in ControllerResult::coarse_windows) and
 *    is restored to 0 before validation and on every exit path, so
 *    windows observed after the search — monitoring ticks, checkpoint
 *    references — always measure fine;
 *  - the analytic backend has no event bill: the knob is refused and
 *    the search is bit-identical with it on or off;
 *  - an unbudgeted run never counts a coarse window.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/clite.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace core {
namespace {

platform::SimulatedServer
makeDesServer(std::vector<workloads::JobSpec> jobs, uint64_t seed = 5)
{
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), std::move(jobs),
        std::make_unique<workloads::QueueingSimModel>(0.2, 2.0), seed,
        0.02);
}

platform::SimulatedServer
makeAnalyticServer(std::vector<workloads::JobSpec> jobs, uint64_t seed = 5)
{
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), std::move(jobs),
        std::make_unique<workloads::AnalyticModel>(), seed, 0.02);
}

CliteOptions
fastOptions()
{
    CliteOptions o;
    o.max_iterations = 8;
    o.polish_iterations = 2;
    o.acquisition_starts = 4;
    return o;
}

TEST(CoarseSearch, DesSearchCountsCoarseWindowsAndRestoresFineMode)
{
    auto server = makeDesServer({workloads::lcJob("img-dnn", 0.4),
                                 workloads::bgJob("streamcluster")});
    CliteOptions o = fastOptions();
    o.search_event_budget = 2000;
    CliteController controller(o);
    ControllerResult result = controller.run(server);

    // Every search probe (and nothing else) measured coarse: the
    // validation re-measurements happen after the guard releases and
    // never enter the trace.
    EXPECT_EQ(result.coarse_windows, uint64_t(result.samples));
    EXPECT_GT(result.coarse_windows, 0u);
    // The budget is restored on exit — monitoring windows observed
    // from here on are fine-mode.
    EXPECT_EQ(server.measurementEventBudget(), 0u);
    EXPECT_TRUE(result.best.has_value());
}

TEST(CoarseSearch, UnbudgetedDesSearchCountsNothingCoarse)
{
    auto server = makeDesServer({workloads::lcJob("img-dnn", 0.4),
                                 workloads::bgJob("streamcluster")});
    CliteController controller(fastOptions());
    ControllerResult result = controller.run(server);
    EXPECT_EQ(result.coarse_windows, 0u);
    EXPECT_EQ(server.measurementEventBudget(), 0u);
}

TEST(CoarseSearch, AnalyticBackendRefusesBudgetAndIsBitIdentical)
{
    auto plain_server =
        makeAnalyticServer({workloads::lcJob("img-dnn", 0.3),
                            workloads::bgJob("streamcluster")});
    CliteController plain(fastOptions());
    ControllerResult plain_result = plain.run(plain_server);

    auto budget_server =
        makeAnalyticServer({workloads::lcJob("img-dnn", 0.3),
                            workloads::bgJob("streamcluster")});
    CliteOptions o = fastOptions();
    o.search_event_budget = 2000;
    CliteController budgeted(o);
    ControllerResult budget_result = budgeted.run(budget_server);

    EXPECT_FALSE(budget_server.setMeasurementEventBudget(2000));
    EXPECT_EQ(budget_result.coarse_windows, 0u);
    EXPECT_EQ(budget_result.samples, plain_result.samples);
    EXPECT_EQ(budget_result.best_score, plain_result.best_score);
    ASSERT_TRUE(budget_result.best.has_value());
    ASSERT_TRUE(plain_result.best.has_value());
    EXPECT_TRUE(*budget_result.best == *plain_result.best);
}

TEST(CoarseSearch, RefitCountersAreFilled)
{
    auto server = makeAnalyticServer({workloads::lcJob("img-dnn", 0.3),
                                      workloads::bgJob("streamcluster")});
    CliteController controller(fastOptions());
    ControllerResult result = controller.run(server);
    // The historical cadence refits at iteration 0, so any completed
    // search performed at least one refit and burnt probe evals.
    EXPECT_GE(result.refits, 1u);
    EXPECT_GT(result.probe_evals, 0u);
    // Small-history searches never reach the subset tier, so the warm
    // simplex never engages here.
    EXPECT_EQ(result.warm_probe_hits, 0u);
}

} // namespace
} // namespace core
} // namespace clite

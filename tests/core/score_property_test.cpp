/**
 * @file
 * Property tests for the Eq. 3 score on randomized observations: the
 * bounds and monotonicity guarantees the BO search relies on.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/score.h"

namespace clite {
namespace core {
namespace {

platform::JobObservation
randomLc(Rng& rng)
{
    platform::JobObservation ob;
    ob.is_lc = true;
    ob.job_name = "lc";
    ob.qos_target_ms = rng.uniform(1.0, 20.0);
    ob.p95_ms = ob.qos_target_ms * rng.uniform(0.2, 5.0);
    ob.iso_p95_ms = ob.qos_target_ms * rng.uniform(0.2, 0.9);
    return ob;
}

platform::JobObservation
randomBg(Rng& rng)
{
    platform::JobObservation ob;
    ob.is_lc = false;
    ob.job_name = "bg";
    ob.iso_throughput = rng.uniform(100.0, 10000.0);
    ob.throughput = ob.iso_throughput * rng.uniform(0.05, 1.0);
    return ob;
}

class ScorePropertyTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(ScorePropertyTest, ScoreAlwaysInUnitInterval)
{
    Rng rng(GetParam());
    for (int rep = 0; rep < 200; ++rep) {
        std::vector<platform::JobObservation> obs;
        int nlc = int(rng.uniformInt(1, 4));
        int nbg = int(rng.uniformInt(0, 3));
        for (int i = 0; i < nlc; ++i)
            obs.push_back(randomLc(rng));
        for (int i = 0; i < nbg; ++i)
            obs.push_back(randomBg(rng));
        ScoreBreakdown sb = scoreObservations(obs);
        EXPECT_GE(sb.score, 0.0);
        EXPECT_LE(sb.score, 1.0);
        EXPECT_EQ(sb.lc_jobs, nlc);
        EXPECT_EQ(sb.bg_jobs, nbg);
    }
}

TEST_P(ScorePropertyTest, ModeBoundaryAtOneHalf)
{
    // Mode 1 <= 0.5 < mode 2, always.
    Rng rng(GetParam() * 31);
    for (int rep = 0; rep < 200; ++rep) {
        std::vector<platform::JobObservation> obs = {randomLc(rng),
                                                     randomBg(rng)};
        ScoreBreakdown sb = scoreObservations(obs);
        if (sb.all_qos_met)
            EXPECT_GT(sb.score, 0.5);
        else
            EXPECT_LE(sb.score, 0.5);
    }
}

TEST_P(ScorePropertyTest, LoweringAnyLatencyNeverLowersScore)
{
    Rng rng(GetParam() * 57 + 1);
    for (int rep = 0; rep < 100; ++rep) {
        std::vector<platform::JobObservation> obs = {
            randomLc(rng), randomLc(rng), randomBg(rng)};
        ScoreBreakdown before = scoreObservations(obs);
        size_t which = size_t(rng.uniformInt(0, 1));
        obs[which].p95_ms *= rng.uniform(0.5, 0.99);
        ScoreBreakdown after = scoreObservations(obs);
        EXPECT_GE(after.score, before.score - 1e-12);
    }
}

TEST_P(ScorePropertyTest, RaisingBgThroughputHelpsOnlyWhenFeasible)
{
    Rng rng(GetParam() * 91 + 2);
    for (int rep = 0; rep < 100; ++rep) {
        std::vector<platform::JobObservation> obs = {randomLc(rng),
                                                     randomBg(rng)};
        ScoreBreakdown before = scoreObservations(obs);
        obs[1].throughput = std::min(obs[1].iso_throughput,
                                     obs[1].throughput * 1.3);
        ScoreBreakdown after = scoreObservations(obs);
        if (before.all_qos_met)
            EXPECT_GE(after.score, before.score - 1e-12);
        else
            // Mode 1 ignores BG jobs entirely (Eq. 3 first branch).
            EXPECT_NEAR(after.score, before.score, 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScorePropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

} // namespace
} // namespace core
} // namespace clite

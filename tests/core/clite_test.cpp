/**
 * @file
 * Unit and integration tests for the CLITE controller.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "common/error.h"
#include "core/clite.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace core {
namespace {

platform::SimulatedServer
makeServer(std::vector<workloads::JobSpec> jobs, uint64_t seed = 5,
           double noise = 0.02)
{
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), std::move(jobs),
        std::make_unique<workloads::AnalyticModel>(), seed, noise);
}

CliteOptions
fastOptions()
{
    CliteOptions o;
    o.max_iterations = 25;
    o.acquisition_starts = 6;
    return o;
}

TEST(Clite, FindsFeasibleConfigurationOnEasyMix)
{
    auto server = makeServer({workloads::lcJob("img-dnn", 0.2),
                              workloads::lcJob("memcached", 0.2),
                              workloads::bgJob("swaptions")});
    CliteController clite(fastOptions());
    ControllerResult r = clite.run(server);
    ASSERT_TRUE(r.best.has_value());
    EXPECT_TRUE(r.feasible);
    EXPECT_GT(r.best_score, 0.5);
    // Ground truth agrees (the search wasn't fooled by noise).
    auto truth = server.observeNoiseless(*r.best);
    EXPECT_TRUE(scoreObservations(truth).all_qos_met);
}

TEST(Clite, BootstrapContainsEqualShareAndExtrema)
{
    auto server = makeServer({workloads::lcJob("img-dnn", 0.2),
                              workloads::lcJob("memcached", 0.2),
                              workloads::bgJob("swaptions")});
    CliteController clite(fastOptions());
    ControllerResult r = clite.run(server);
    ASSERT_GE(r.trace.size(), 4u);
    platform::Allocation equal =
        platform::Allocation::equalShare(3, server.config());
    EXPECT_TRUE(r.trace[0].alloc == equal);
    for (size_t j = 0; j < 3; ++j) {
        platform::Allocation ext =
            platform::Allocation::maxFor(j, 3, server.config());
        EXPECT_TRUE(r.trace[1 + j].alloc == ext) << "extremum " << j;
    }
}

TEST(Clite, NeverSamplesTheSameConfigurationTwice)
{
    auto server = makeServer({workloads::lcJob("img-dnn", 0.3),
                              workloads::lcJob("masstree", 0.3),
                              workloads::bgJob("streamcluster")});
    CliteController clite(fastOptions());
    ControllerResult r = clite.run(server);
    std::set<std::string> keys;
    for (const auto& rec : r.trace)
        EXPECT_TRUE(keys.insert(rec.alloc.key()).second)
            << "duplicate sample: " << rec.alloc.key();
}

TEST(Clite, EverySampledAllocationIsValid)
{
    auto server = makeServer({workloads::lcJob("memcached", 0.4),
                              workloads::lcJob("xapian", 0.3),
                              workloads::bgJob("canneal")});
    CliteController clite(fastOptions());
    ControllerResult r = clite.run(server);
    for (const auto& rec : r.trace)
        EXPECT_TRUE(rec.alloc.valid());
}

TEST(Clite, DetectsInfeasibleColocationFromExtrema)
{
    // Three LC jobs at full load can never fit together: the per-job
    // maximum-allocation bootstrap samples expose that immediately.
    auto server = makeServer({workloads::lcJob("img-dnn", 1.0),
                              workloads::lcJob("masstree", 1.0),
                              workloads::lcJob("memcached", 1.0)});
    CliteController clite(fastOptions());
    ControllerResult r = clite.run(server);
    EXPECT_TRUE(r.infeasible_detected);
    EXPECT_FALSE(r.feasible);
    // No BO cycles wasted: bootstrap samples only.
    EXPECT_LE(r.samples, 4);
}

TEST(Clite, SingleJobGetsEverything)
{
    auto server = makeServer({workloads::lcJob("specjbb", 0.5)});
    CliteController clite(fastOptions());
    ControllerResult r = clite.run(server);
    ASSERT_TRUE(r.best.has_value());
    EXPECT_TRUE(r.feasible);
    // Best possible: the job owns the machine (maxFor(0) == all).
    platform::Allocation all =
        platform::Allocation::maxFor(0, 1, server.config());
    EXPECT_TRUE(*r.best == all);
}

TEST(Clite, RespectsIterationCap)
{
    auto server = makeServer({workloads::lcJob("img-dnn", 0.3),
                              workloads::lcJob("memcached", 0.3),
                              workloads::bgJob("freqmine")});
    CliteOptions o = fastOptions();
    o.max_iterations = 5;
    o.min_iterations = 0;
    o.polish_iterations = 2;
    CliteController clite(o);
    ControllerResult r = clite.run(server);
    // Bootstrap (4) + at most 5 BO samples + 2 polish samples.
    EXPECT_LE(r.samples, 11);
}

TEST(Clite, ServerLeftRunningBestConfiguration)
{
    auto server = makeServer({workloads::lcJob("img-dnn", 0.2),
                              workloads::lcJob("memcached", 0.2),
                              workloads::bgJob("swaptions")});
    CliteController clite(fastOptions());
    ControllerResult r = clite.run(server);
    EXPECT_TRUE(server.currentAllocation() == *r.best);
}

TEST(Clite, ReoptimizeSeedsWithIncumbent)
{
    auto server = makeServer({workloads::lcJob("img-dnn", 0.1),
                              workloads::lcJob("memcached", 0.1),
                              workloads::bgJob("fluidanimate")});
    CliteController clite(fastOptions());
    ControllerResult first = clite.run(server);
    ASSERT_TRUE(first.feasible);

    server.setLoad(1, 0.3);
    ControllerResult second = clite.reoptimize(server, *first.best);
    ASSERT_TRUE(second.best.has_value());
    // The incumbent is the first sample of the re-optimization.
    EXPECT_TRUE(second.trace[0].alloc == *first.best);
    EXPECT_TRUE(second.feasible);
}

TEST(Clite, AblationsRunEndToEnd)
{
    for (auto tweak : {0, 1, 2, 3}) {
        CliteOptions o = fastOptions();
        o.max_iterations = 10;
        switch (tweak) {
          case 0: o.dropout = false; break;
          case 1: o.informed_bootstrap = false; break;
          case 2: o.kernel = "rbf"; break;
          case 3: o.acquisition = "ucb"; break;
        }
        auto server = makeServer({workloads::lcJob("img-dnn", 0.2),
                                  workloads::lcJob("memcached", 0.2),
                                  workloads::bgJob("swaptions")});
        CliteController clite(o);
        ControllerResult r = clite.run(server);
        EXPECT_TRUE(r.best.has_value()) << "tweak " << tweak;
    }
}

TEST(Clite, OptionValidation)
{
    CliteOptions bad;
    bad.max_iterations = -1;
    EXPECT_THROW(CliteController c(bad), Error);
    bad = CliteOptions{};
    bad.termination_threshold = -0.1;
    EXPECT_THROW(CliteController c(bad), Error);
    bad = CliteOptions{};
    bad.acquisition_starts = 0;
    EXPECT_THROW(CliteController c(bad), Error);
    bad = CliteOptions{};
    bad.dropout_random_prob = 1.5;
    EXPECT_THROW(CliteController c(bad), Error);
}

TEST(ControllerResult, FirstFeasibleSampleIndex)
{
    auto server = makeServer({workloads::lcJob("img-dnn", 0.2),
                              workloads::lcJob("memcached", 0.2),
                              workloads::bgJob("swaptions")});
    CliteController clite(fastOptions());
    ControllerResult r = clite.run(server);
    int idx = r.firstFeasibleSample();
    ASSERT_GE(idx, 0);
    EXPECT_TRUE(r.trace[size_t(idx)].all_qos_met);
    for (int i = 0; i < idx; ++i)
        EXPECT_FALSE(r.trace[size_t(i)].all_qos_met);
}

} // namespace
} // namespace core
} // namespace clite

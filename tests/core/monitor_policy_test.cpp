/**
 * @file
 * Tests for the transient-vs-sustained reoptimization policy and the
 * percentile-over-time QoS bookkeeping (core/monitor.h):
 *
 *  - ReoptPolicy::Immediate is the legacy behaviour — the hysteresis
 *    counters stay zero and the effective patience is unchanged;
 *  - RideTransients absorbs load blips that decay within the ride
 *    window (no re-optimization, transientsRidden() counts them) but
 *    still re-optimizes for sustained shifts (sustainedShifts());
 *  - every tick lands one WindowQos entry in qosTimeline(), and
 *    violatingWindowFraction() is violating / assessed over fault-free
 *    windows.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "core/monitor.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace core {
namespace {

platform::SimulatedServer
makeServer(uint64_t seed = 5)
{
    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("img-dnn", 0.1),
        workloads::lcJob("memcached", 0.1),
        workloads::bgJob("fluidanimate"),
    };
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), jobs,
        std::make_unique<workloads::AnalyticModel>(), seed, 0.02);
}

CliteOptions
fastClite()
{
    CliteOptions o;
    o.max_iterations = 12;
    o.polish_iterations = 3;
    return o;
}

MonitorOptions
ridingOptions(int ride = 3)
{
    MonitorOptions o;
    o.violation_patience = 1;
    o.drift_patience = 1;
    o.reopt_policy = ReoptPolicy::RideTransients;
    o.transient_ride_windows = ride;
    return o;
}

TEST(ReoptPolicy, ImmediateKeepsHysteresisCountersAtZero)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    manager.initialize();

    // Steady state, then a sustained step that forces a reoptimization
    // — under Immediate nothing is ever "ridden".
    for (int w = 0; w < 4; ++w)
        manager.tick();
    server.setLoad(1, 0.4);
    for (int w = 0; w < 6; ++w)
        manager.tick();
    EXPECT_GE(manager.reoptimizations(), 1);
    EXPECT_EQ(manager.transientsRidden(), 0);
    EXPECT_EQ(manager.sustainedShifts(), 0);
}

TEST(ReoptPolicy, RideTransientsAbsorbsAShortBlip)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite(), ridingOptions());
    manager.initialize();
    for (int w = 0; w < 3; ++w)
        manager.tick();
    ASSERT_EQ(manager.reoptimizations(), 0);

    // One-window load spike, then back to normal: the streak passes
    // the Immediate threshold (patience 1) but decays inside the ride
    // window, so the incumbent is kept and the blip is counted.
    server.setLoad(1, 0.5);
    manager.tick();
    server.setLoad(1, 0.1);
    for (int w = 0; w < 4; ++w)
        manager.tick();
    EXPECT_EQ(manager.reoptimizations(), 0);
    EXPECT_GE(manager.transientsRidden(), 1);
    EXPECT_EQ(manager.sustainedShifts(), 0);
}

TEST(ReoptPolicy, RideTransientsStillCatchesSustainedShifts)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite(), ridingOptions());
    manager.initialize();
    for (int w = 0; w < 2; ++w)
        manager.tick();

    // A step that stays: the streak outlasts patience + ride windows
    // and the manager re-optimizes, attributing a sustained shift.
    server.setLoad(1, 0.4);
    bool reoptimized = false;
    std::string reason;
    for (int w = 0; w < 10 && !reoptimized; ++w) {
        OnlineManager::Tick t = manager.tick();
        reoptimized = t.reoptimized;
        reason = t.reason;
    }
    EXPECT_TRUE(reoptimized);
    EXPECT_TRUE(reason == "load-drift" || reason == "qos-violation")
        << reason;
    EXPECT_GE(manager.sustainedShifts(), 1);
    // The hysteresis delays the trigger past the Immediate patience:
    // at least patience + ride windows of streak were accumulated.
    EXPECT_GE(manager.windows(), 1 + 3);
}

TEST(ReoptPolicy, RideWindowsExtendEffectivePatience)
{
    // Same sustained step, Immediate vs riding: the riding manager
    // must trigger strictly later (the ride windows are real delay,
    // not just bookkeeping).
    auto windowsUntilReopt = [](MonitorOptions mo) {
        auto server = makeServer();
        OnlineManager manager(server, fastClite(), mo);
        manager.initialize();
        server.setLoad(1, 0.4);
        for (int w = 1; w <= 12; ++w)
            if (manager.tick().reoptimized)
                return w;
        return 99;
    };
    MonitorOptions naive;
    naive.violation_patience = 1;
    naive.drift_patience = 1;
    int immediate = windowsUntilReopt(naive);
    int riding = windowsUntilReopt(ridingOptions(3));
    ASSERT_LT(immediate, 99);
    ASSERT_LT(riding, 99);
    EXPECT_EQ(riding, immediate + 3);
}

TEST(QosTimeline, OneEntryPerWindowWithConsistentFraction)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    manager.initialize();
    const int windows = 8;
    for (int w = 0; w < windows; ++w)
        manager.tick();

    ASSERT_EQ(manager.qosTimeline().size(), size_t(windows));
    int violated = 0;
    for (const WindowQos& w : manager.qosTimeline()) {
        EXPECT_FALSE(w.faulted); // no faults injected here
        EXPECT_GT(w.worst_p95_ratio, 0.0);
        EXPECT_GT(w.worst_p99_ratio, 0.0);
        // p99 of the same distribution cannot sit below p95.
        EXPECT_GE(w.worst_p99_ratio, w.worst_p95_ratio - 1e-12);
        EXPECT_EQ(w.violated, w.worst_p95_ratio > 1.0);
        violated += w.violated ? 1 : 0;
    }
    EXPECT_EQ(manager.qosWindows(), windows);
    EXPECT_EQ(manager.violatingWindows(), violated);
    EXPECT_DOUBLE_EQ(manager.violatingWindowFraction(),
                     double(violated) / double(windows));
}

TEST(QosTimeline, EmptyBeforeAnyWindow)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    manager.initialize();
    EXPECT_TRUE(manager.qosTimeline().empty());
    EXPECT_EQ(manager.qosWindows(), 0);
    EXPECT_DOUBLE_EQ(manager.violatingWindowFraction(), 0.0);
}

TEST(ReoptPolicy, NegativeRideWindowsRejected)
{
    auto server = makeServer();
    MonitorOptions bad = ridingOptions(-1);
    EXPECT_THROW(OnlineManager m(server, fastClite(), bad), Error);
}

} // namespace
} // namespace core
} // namespace clite

/**
 * @file
 * Tests for the online monitoring / re-invocation loop (Sec. 4's
 * steady-state behaviour).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "core/monitor.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace core {
namespace {

platform::SimulatedServer
makeServer(uint64_t seed = 5)
{
    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("img-dnn", 0.1),
        workloads::lcJob("memcached", 0.1),
        workloads::bgJob("fluidanimate"),
    };
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), jobs,
        std::make_unique<workloads::AnalyticModel>(), seed, 0.02);
}

CliteOptions
fastClite()
{
    CliteOptions o;
    o.max_iterations = 12;
    o.polish_iterations = 3;
    return o;
}

TEST(OnlineManager, SteadyStateDoesNotReoptimize)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    const ControllerResult& init = manager.initialize();
    ASSERT_TRUE(init.feasible);

    for (int w = 0; w < 10; ++w) {
        OnlineManager::Tick t = manager.tick();
        EXPECT_FALSE(t.reoptimized) << "window " << w << ": " << t.reason;
    }
    EXPECT_EQ(manager.reoptimizations(), 0);
    EXPECT_EQ(manager.windows(), 10);
}

TEST(OnlineManager, LoadStepTriggersReoptimization)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    manager.initialize();

    // Triple memcached's load: observed completion rate departs from
    // the incumbent's reference; after drift_patience windows the
    // manager re-optimizes.
    server.setLoad(1, 0.3);
    bool reoptimized = false;
    std::string reason;
    for (int w = 0; w < 6 && !reoptimized; ++w) {
        OnlineManager::Tick t = manager.tick();
        reoptimized = t.reoptimized;
        reason = t.reason;
    }
    EXPECT_TRUE(reoptimized);
    // Either detector may fire first (the step can also violate QoS).
    EXPECT_TRUE(reason == "load-drift" || reason == "qos-violation")
        << reason;
    EXPECT_EQ(manager.reoptimizations(), 1);

    // And the system re-stabilizes: no further triggers.
    for (int w = 0; w < 5; ++w)
        EXPECT_FALSE(manager.tick().reoptimized);
}

TEST(OnlineManager, MixChangeTriggersFullSearch)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    manager.initialize();
    size_t before = server.jobCount();

    server.addJob(workloads::bgJob("swaptions"));
    manager.notifyMixChange();
    OnlineManager::Tick t = manager.tick();
    EXPECT_TRUE(t.reoptimized);
    EXPECT_EQ(t.reason, "mix-change");
    EXPECT_EQ(server.jobCount(), before + 1);
    EXPECT_EQ(manager.incumbent().jobs(), before + 1);
}

TEST(OnlineManager, JobDepartureFreesResources)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    manager.initialize();

    server.removeJob(0); // img-dnn leaves
    manager.notifyMixChange();
    OnlineManager::Tick t = manager.tick();
    EXPECT_TRUE(t.reoptimized);
    EXPECT_EQ(manager.incumbent().jobs(), 2u);
    EXPECT_TRUE(manager.lastResult().feasible);
}

TEST(OnlineManager, TickBeforeInitializeThrows)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    EXPECT_THROW(manager.tick(), Error);
    EXPECT_THROW(manager.incumbent(), Error);
    EXPECT_THROW(manager.lastResult(), Error);
}

TEST(OnlineManager, OptionValidation)
{
    auto server = makeServer();
    MonitorOptions bad;
    bad.violation_patience = 0;
    EXPECT_THROW(OnlineManager m(server, {}, bad), Error);
    bad = MonitorOptions{};
    bad.load_drift_threshold = 0.0;
    EXPECT_THROW(OnlineManager m(server, {}, bad), Error);
}

TEST(SimulatedServer, AddRemoveJobInvariants)
{
    auto server = makeServer();
    size_t idx = server.addJob(workloads::bgJob("canneal"));
    EXPECT_EQ(idx, 3u);
    EXPECT_EQ(server.jobCount(), 4u);
    EXPECT_TRUE(server.currentAllocation().valid());
    EXPECT_EQ(server.currentAllocation().jobs(), 4u);

    server.removeJob(1);
    EXPECT_EQ(server.jobCount(), 3u);
    EXPECT_EQ(server.job(1).profile.name, "fluidanimate");
    EXPECT_TRUE(server.currentAllocation().valid());

    EXPECT_THROW(server.removeJob(9), Error);
    // Cannot exceed the per-resource unit budget (10 cores -> max 10).
    for (int i = 0; i < 7; ++i)
        server.addJob(workloads::bgJob("swaptions"));
    EXPECT_THROW(server.addJob(workloads::bgJob("swaptions")), Error);
}

} // namespace
} // namespace core
} // namespace clite

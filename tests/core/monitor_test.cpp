/**
 * @file
 * Tests for the online monitoring / re-invocation loop (Sec. 4's
 * steady-state behaviour).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "core/monitor.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace core {
namespace {

platform::SimulatedServer
makeServer(uint64_t seed = 5)
{
    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("img-dnn", 0.1),
        workloads::lcJob("memcached", 0.1),
        workloads::bgJob("fluidanimate"),
    };
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), jobs,
        std::make_unique<workloads::AnalyticModel>(), seed, 0.02);
}

CliteOptions
fastClite()
{
    CliteOptions o;
    o.max_iterations = 12;
    o.polish_iterations = 3;
    return o;
}

TEST(OnlineManager, SteadyStateDoesNotReoptimize)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    const ControllerResult& init = manager.initialize();
    ASSERT_TRUE(init.feasible);

    for (int w = 0; w < 10; ++w) {
        OnlineManager::Tick t = manager.tick();
        EXPECT_FALSE(t.reoptimized) << "window " << w << ": " << t.reason;
    }
    EXPECT_EQ(manager.reoptimizations(), 0);
    EXPECT_EQ(manager.windows(), 10);
}

TEST(OnlineManager, LoadStepTriggersReoptimization)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    manager.initialize();

    // Triple memcached's load: observed completion rate departs from
    // the incumbent's reference; after drift_patience windows the
    // manager re-optimizes.
    server.setLoad(1, 0.3);
    bool reoptimized = false;
    std::string reason;
    for (int w = 0; w < 6 && !reoptimized; ++w) {
        OnlineManager::Tick t = manager.tick();
        reoptimized = t.reoptimized;
        reason = t.reason;
    }
    EXPECT_TRUE(reoptimized);
    // Either detector may fire first (the step can also violate QoS).
    EXPECT_TRUE(reason == "load-drift" || reason == "qos-violation")
        << reason;
    EXPECT_EQ(manager.reoptimizations(), 1);

    // And the system re-stabilizes: no further triggers.
    for (int w = 0; w < 5; ++w)
        EXPECT_FALSE(manager.tick().reoptimized);
}

TEST(OnlineManager, MixChangeTriggersFullSearch)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    manager.initialize();
    size_t before = server.jobCount();

    server.addJob(workloads::bgJob("swaptions"));
    manager.notifyMixChange();
    OnlineManager::Tick t = manager.tick();
    EXPECT_TRUE(t.reoptimized);
    EXPECT_EQ(t.reason, "mix-change");
    EXPECT_EQ(server.jobCount(), before + 1);
    EXPECT_EQ(manager.incumbent().jobs(), before + 1);
}

TEST(OnlineManager, JobDepartureFreesResources)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    manager.initialize();

    server.removeJob(0); // img-dnn leaves
    manager.notifyMixChange();
    OnlineManager::Tick t = manager.tick();
    EXPECT_TRUE(t.reoptimized);
    EXPECT_EQ(manager.incumbent().jobs(), 2u);
    EXPECT_TRUE(manager.lastResult().feasible);
}

TEST(OnlineManager, TickBeforeInitializeThrows)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    EXPECT_THROW(manager.tick(), Error);
    EXPECT_THROW(manager.incumbent(), Error);
    EXPECT_THROW(manager.lastResult(), Error);
}

TEST(OnlineManager, OptionValidation)
{
    auto server = makeServer();
    MonitorOptions bad;
    bad.violation_patience = 0;
    EXPECT_THROW(OnlineManager m(server, {}, bad), Error);
    bad = MonitorOptions{};
    bad.load_drift_threshold = 0.0;
    EXPECT_THROW(OnlineManager m(server, {}, bad), Error);
}

TEST(OnlineManager, MixChangeNotifiedBeforeFirstTick)
{
    // notifyMixChange() is valid at any time after construction; a
    // change notified between initialize() and the first tick() (or
    // even before initialize()) is honoured by the first tick.
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    manager.initialize();
    server.addJob(workloads::bgJob("swaptions"));
    manager.notifyMixChange();

    OnlineManager::Tick t = manager.tick();
    EXPECT_TRUE(t.reoptimized);
    EXPECT_EQ(t.reason, "mix-change");
    EXPECT_EQ(manager.incumbent().jobs(), 4u);
    EXPECT_EQ(manager.windows(), 1);
}

TEST(OnlineManager, StreaksResetAfterReoptimization)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    manager.initialize();

    // Overload memcached far past the incumbent's operating point;
    // streaks build until a re-optimization fires, which must reset
    // them to zero.
    server.setLoad(1, 0.9);
    bool reoptimized = false;
    for (int w = 0; w < 8 && !reoptimized; ++w) {
        OnlineManager::Tick t = manager.tick();
        reoptimized = t.reoptimized;
        if (!reoptimized) {
            EXPECT_GE(manager.violationStreak() + manager.driftStreak(), 1);
        }
    }
    ASSERT_TRUE(reoptimized);
    EXPECT_EQ(manager.violationStreak(), 0);
    EXPECT_EQ(manager.driftStreak(), 0);
}

TEST(OnlineManager, FaultedWindowsAreQuarantined)
{
    // Total measurement dropout: every window is quarantined, so no
    // streak advances and no spurious re-optimization fires even
    // though the faulted telemetry reads as a QoS violation.
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    manager.initialize();

    platform::FaultPlan plan;
    plan.dropout_prob = 1.0;
    server.setFaultInjector(
        std::make_shared<platform::FaultInjector>(plan, 9));

    for (int w = 0; w < 5; ++w) {
        OnlineManager::Tick t = manager.tick();
        EXPECT_TRUE(t.faulted);
        EXPECT_FALSE(t.reoptimized);
    }
    EXPECT_EQ(manager.faultedWindows(), 5);
    EXPECT_EQ(manager.violationStreak(), 0);
    EXPECT_EQ(manager.reoptimizations(), 0);
}

TEST(OnlineManager, WatchdogFallsBackAfterRepeatedApplyFailures)
{
    auto server = makeServer();
    MonitorOptions mopts;
    mopts.violation_patience = 100; // isolate the watchdog
    mopts.drift_patience = 100;
    mopts.apply_fail_patience = 2;
    mopts.apply_retries = 1;
    OnlineManager manager(server, fastClite(), mopts);
    manager.initialize();

    // Knock the server off the incumbent with a clean apply, then make
    // every further apply fail: the watchdog detects the mismatch,
    // retries, and after apply_fail_patience windows degrades to the
    // equal share (no known-good configuration was recorded yet).
    platform::Allocation other = manager.incumbent();
    bool moved = false;
    for (size_t j = 0; j < other.jobs() && !moved; ++j)
        if (other.get(j, 0) > 1)
            moved = other.transferUnit(0, j, (j + 1) % other.jobs());
    ASSERT_TRUE(moved);
    server.apply(other);

    platform::FaultPlan plan;
    plan.apply_fail_prob = 1.0;
    server.setFaultInjector(
        std::make_shared<platform::FaultInjector>(plan, 9));

    OnlineManager::Tick t1 = manager.tick();
    EXPECT_FALSE(t1.fallback);
    OnlineManager::Tick t2 = manager.tick();
    EXPECT_TRUE(t2.fallback);
    EXPECT_EQ(manager.fallbacks(), 1);
    EXPECT_TRUE(manager.incumbent() ==
                platform::Allocation::equalShare(server.jobCount(),
                                                 server.config()));
}

TEST(OnlineManager, JobCrashHoldsTriggersAndRecapturesReference)
{
    auto server = makeServer();
    OnlineManager manager(server, fastClite());
    manager.initialize();

    // Script a crash covering the 2nd and 3rd monitoring windows.
    platform::FaultPlan plan;
    plan.crashes.push_back({server.observeCount() + 1, 1, 2});
    server.setFaultInjector(
        std::make_shared<platform::FaultInjector>(plan, 9));

    EXPECT_FALSE(manager.tick().faulted);  // window before the crash
    EXPECT_TRUE(manager.tick().faulted);   // down
    EXPECT_TRUE(manager.tick().faulted);   // still down
    OnlineManager::Tick after = manager.tick(); // restarted
    EXPECT_FALSE(after.faulted);
    EXPECT_EQ(manager.faultedWindows(), 2);
    // No partition change can fix a dead process: nothing re-optimized.
    EXPECT_EQ(manager.reoptimizations(), 0);
    // The restart re-captured references: streaks are clean.
    EXPECT_EQ(manager.violationStreak(), 0);
    EXPECT_EQ(manager.driftStreak(), 0);
}

TEST(SimulatedServer, AddRemoveJobInvariants)
{
    auto server = makeServer();
    size_t idx = server.addJob(workloads::bgJob("canneal"));
    EXPECT_EQ(idx, 3u);
    EXPECT_EQ(server.jobCount(), 4u);
    EXPECT_TRUE(server.currentAllocation().valid());
    EXPECT_EQ(server.currentAllocation().jobs(), 4u);

    server.removeJob(1);
    EXPECT_EQ(server.jobCount(), 3u);
    EXPECT_EQ(server.job(1).profile.name, "fluidanimate");
    EXPECT_TRUE(server.currentAllocation().valid());

    EXPECT_THROW(server.removeJob(9), Error);
    // Cannot exceed the per-resource unit budget (10 cores -> max 10).
    for (int i = 0; i < 7; ++i)
        server.addJob(workloads::bgJob("swaptions"));
    EXPECT_THROW(server.addJob(workloads::bgJob("swaptions")), Error);
}

} // namespace
} // namespace core
} // namespace clite

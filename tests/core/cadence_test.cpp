/**
 * @file
 * Contracts of the adaptive hyper-refit cadence (core/cadence.h):
 *
 *  - below the stretch threshold the schedule is bit-for-bit the
 *    historical iter % base == 0 one (goldens depend on this);
 *  - the gap between refits never exceeds k(n) at the history size of
 *    the firing step;
 *  - a surprise forces a refit once at least base iterations have
 *    passed since the previous one — never earlier, so the refit rate
 *    stays bounded above by the original cadence.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/cadence.h"

namespace clite {
namespace core {
namespace {

TEST(RefitCadence, BelowThresholdMatchesHistoricalSchedule)
{
    for (int base : {1, 2, 3, 5}) {
        RefitCadence cadence(base, 96);
        for (int iter = 0; iter < 40; ++iter) {
            // History grows one sample per iteration but stays below
            // the threshold throughout.
            const size_t history = size_t(10 + iter);
            const bool fired = cadence.step(history, false);
            EXPECT_EQ(fired, iter % base == 0)
                << "base " << base << " iter " << iter;
        }
    }
}

TEST(RefitCadence, FirstStepAlwaysFires)
{
    RefitCadence cadence(7, 96);
    EXPECT_TRUE(cadence.step(500, false));
}

TEST(RefitCadence, PeriodStretchesWithHistoryAndSaturates)
{
    RefitCadence cadence(3, 96);
    EXPECT_EQ(cadence.period(0), 3);
    EXPECT_EQ(cadence.period(95), 3);
    EXPECT_EQ(cadence.period(96), 6);   // 3 * (1 + 96/96)
    EXPECT_EQ(cadence.period(192), 9);  // 3 * (1 + 192/96)
    EXPECT_EQ(cadence.period(288), 12); // 3 * min(4, 1 + 288/96)
    EXPECT_EQ(cadence.period(100000), 12); // saturated at 4x
}

TEST(RefitCadence, ZeroThresholdDisablesStretching)
{
    RefitCadence cadence(3, 0);
    EXPECT_EQ(cadence.period(100000), 3);
}

TEST(RefitCadence, GapNeverExceedsPeriodUnderRandomSurprises)
{
    Rng rng(41);
    for (int trial = 0; trial < 5; ++trial) {
        RefitCadence cadence(3, 96);
        int gap = 0;
        for (int iter = 0; iter < 600; ++iter) {
            const size_t history = size_t(iter); // grows past 4x
            const bool surprise = rng.uniform() < 0.1;
            ++gap;
            if (cadence.step(history, surprise))
                gap = 0;
            EXPECT_LE(gap, cadence.period(history))
                << "trial " << trial << " iter " << iter;
        }
    }
}

TEST(RefitCadence, SurpriseForcesEarlyRefitButNotBeforeBase)
{
    // History deep in the stretched regime: period 12, base 3.
    const size_t history = 300;
    RefitCadence cadence(3, 96);
    ASSERT_TRUE(cadence.step(history, false)); // initial refit
    ASSERT_EQ(cadence.period(history), 12);

    // A surprise within base iterations of the last refit must NOT
    // fire (rate bound), even repeated.
    EXPECT_FALSE(cadence.step(history, true)); // since 1
    EXPECT_FALSE(cadence.step(history, true)); // since 2
    // At base iterations the pending surprise fires, 9 iterations
    // before the stretched period would have.
    EXPECT_TRUE(cadence.step(history, true)); // since 3 == base

    // Without surprises the stretched period governs: 11 quiet steps,
    // then the 12th fires.
    for (int i = 0; i < 11; ++i)
        EXPECT_FALSE(cadence.step(history, false)) << "step " << i;
    EXPECT_TRUE(cadence.step(history, false));
}

} // namespace
} // namespace core
} // namespace clite

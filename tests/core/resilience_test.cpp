/**
 * @file
 * Tests for the fault-tolerant control path: the zero-fault no-op
 * guarantee (fault machinery disabled => byte-identical search),
 * bounded retry on transient apply failure, sample quarantine, and
 * the well-formed empty/all-quarantined finalizeResult outcomes.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "core/clite.h"
#include "platform/faults.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace core {
namespace {

platform::SimulatedServer
makeServer(uint64_t seed = 5)
{
    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("img-dnn", 0.1),
        workloads::lcJob("memcached", 0.1),
        workloads::bgJob("fluidanimate"),
    };
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), jobs,
        std::make_unique<workloads::AnalyticModel>(), seed, 0.02);
}

platform::SimulatedServer
makeThreeLcServer(uint64_t seed = 5)
{
    // The Fig. 7 three-LC mix at moderate load.
    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("masstree", 0.3),
        workloads::lcJob("img-dnn", 0.3),
        workloads::lcJob("memcached", 0.3),
    };
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), jobs,
        std::make_unique<workloads::AnalyticModel>(), seed, 0.02);
}

CliteOptions
fastClite()
{
    CliteOptions o;
    o.max_iterations = 12;
    o.polish_iterations = 3;
    return o;
}

void
expectIdenticalTraces(const ControllerResult& a, const ControllerResult& b)
{
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_TRUE(a.trace[i].alloc == b.trace[i].alloc) << "sample " << i;
        EXPECT_EQ(a.trace[i].score, b.trace[i].score) << "sample " << i;
        EXPECT_EQ(a.trace[i].all_qos_met, b.trace[i].all_qos_met);
        EXPECT_EQ(a.trace[i].status, b.trace[i].status);
        EXPECT_EQ(a.trace[i].apply_retries, b.trace[i].apply_retries);
    }
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best.has_value()) {
        EXPECT_TRUE(*a.best == *b.best);
    }
    EXPECT_EQ(a.best_score, b.best_score);
    EXPECT_EQ(a.feasible, b.feasible);
}

TEST(ZeroFaultNoOp, EmptyPlanInjectorIsIdenticalToNoInjector)
{
    auto plain = makeServer();
    CliteController a(fastClite());
    ControllerResult ra = a.run(plain);

    auto wired = makeServer();
    wired.setFaultInjector(
        std::make_shared<platform::FaultInjector>(platform::FaultPlan{}));
    CliteController b(fastClite());
    ControllerResult rb = b.run(wired);

    expectIdenticalTraces(ra, rb);
}

TEST(ZeroFaultNoOp, ResilientFlagInertWithoutFaults)
{
    auto s1 = makeServer();
    CliteOptions on = fastClite();
    on.resilient = true;
    ControllerResult ra = CliteController(on).run(s1);

    auto s2 = makeServer();
    CliteOptions off = fastClite();
    off.resilient = false;
    ControllerResult rb = CliteController(off).run(s2);

    expectIdenticalTraces(ra, rb);
    for (const auto& rec : ra.trace) {
        EXPECT_EQ(rec.status, SampleStatus::Ok);
        EXPECT_EQ(rec.apply_retries, 0);
    }
    EXPECT_EQ(ra.wastedSamples(), 0);
}

TEST(Resilience, TenPercentApplyFailureStillFeasible)
{
    // Acceptance criterion: under a 10% transient-apply-failure plan
    // CLITE still reaches a QoS-feasible configuration on the
    // three-LC mix.
    auto server = makeThreeLcServer();
    platform::FaultPlan plan;
    plan.apply_fail_prob = 0.10;
    server.setFaultInjector(
        std::make_shared<platform::FaultInjector>(plan, 21));

    ControllerResult r = CliteController(fastClite()).run(server);
    ASSERT_TRUE(r.best.has_value());
    EXPECT_TRUE(r.feasible);

    ScoreBreakdown truth =
        scoreObservations(server.observeNoiseless(*r.best));
    EXPECT_TRUE(truth.all_qos_met);
}

TEST(Resilience, QuarantinedSamplesNeverWin)
{
    // Heavy dropout: many windows deliver no telemetry. The winner
    // must come from a clean window and the quarantined samples must
    // be counted as wasted.
    auto server = makeServer();
    platform::FaultPlan plan;
    plan.dropout_prob = 0.4;
    server.setFaultInjector(
        std::make_shared<platform::FaultInjector>(plan, 11));

    ControllerResult r = CliteController(fastClite()).run(server);
    int quarantined = 0;
    for (const auto& rec : r.trace)
        if (!rec.usable())
            ++quarantined;
    EXPECT_GT(quarantined, 0);
    EXPECT_GE(r.wastedSamples(), quarantined);
    ASSERT_TRUE(r.best.has_value());
    // The winner's score must belong to a usable sample.
    bool winner_usable = false;
    for (const auto& rec : r.trace)
        if (rec.usable() && rec.alloc == *r.best &&
            rec.score == r.best_score)
            winner_usable = true;
    EXPECT_TRUE(winner_usable);
}

TEST(EvaluateSampleResilient, PermanentFailureExhaustsRetries)
{
    auto server = makeServer();
    platform::FaultPlan plan;
    plan.apply_fail_prob = 1.0;
    server.setFaultInjector(
        std::make_shared<platform::FaultInjector>(plan, 9));

    platform::Allocation alloc = server.currentAllocation();
    SampleRecord rec = evaluateSampleResilient(server, alloc, 3, 8.0);
    EXPECT_EQ(rec.status, SampleStatus::ApplyFailed);
    EXPECT_EQ(rec.apply_retries, 3);
    // Exponential back-off: 8 + 16 + 32.
    EXPECT_DOUBLE_EQ(rec.backoff_ms, 56.0);
    EXPECT_FALSE(rec.usable());
}

TEST(EvaluateSampleResilient, TransientFailureRecovers)
{
    auto server = makeServer();
    platform::FaultPlan plan;
    plan.apply_fail_prob = 0.5;
    server.setFaultInjector(
        std::make_shared<platform::FaultInjector>(plan, 13));

    // With 10 retries at p=0.5 some attempt succeeds (deterministic
    // for this seed), and the record reflects the clean attempt.
    platform::Allocation alloc = server.currentAllocation();
    SampleRecord rec = evaluateSampleResilient(server, alloc, 10, 8.0);
    EXPECT_EQ(rec.status, SampleStatus::Ok);
    EXPECT_LE(rec.apply_retries, 10);
    EXPECT_TRUE(rec.usable());
}

TEST(EvaluateSampleResilient, RejectsNegativeRetryBudget)
{
    auto server = makeServer();
    platform::Allocation alloc = server.currentAllocation();
    EXPECT_THROW(evaluateSampleResilient(server, alloc, -1), Error);
}

TEST(FinalizeResult, EmptyTraceIsWellFormedInfeasible)
{
    auto server = makeServer();
    uint64_t applies_before = server.applyCount();
    ControllerResult r = finalizeResult(server, {});
    EXPECT_FALSE(r.best.has_value());
    EXPECT_EQ(r.best_score, 0.0);
    EXPECT_FALSE(r.feasible);
    EXPECT_FALSE(r.infeasible_detected);
    EXPECT_EQ(r.samples, 0);
    EXPECT_EQ(r.firstFeasibleSample(), -1);
    EXPECT_EQ(r.wastedSamples(), 0);
    // The server was left untouched.
    EXPECT_EQ(server.applyCount(), applies_before);
}

TEST(FinalizeResult, AllQuarantinedTraceYieldsNoWinner)
{
    auto server = makeServer();
    platform::Allocation alloc = server.currentAllocation();

    std::vector<SampleRecord> trace;
    for (int i = 0; i < 3; ++i) {
        SampleRecord rec(alloc, 1.0 + i, true, {});
        rec.status = i == 0 ? SampleStatus::ApplyFailed
                            : (i == 1 ? SampleStatus::Dropout
                                      : SampleStatus::Crashed);
        trace.push_back(std::move(rec));
    }
    uint64_t applies_before = server.applyCount();
    ControllerResult r = finalizeResult(server, std::move(trace));
    EXPECT_FALSE(r.best.has_value());
    EXPECT_FALSE(r.feasible);
    EXPECT_EQ(r.samples, 3);
    // Quarantined QoS bits never count as feasibility evidence.
    EXPECT_EQ(r.firstFeasibleSample(), -1);
    EXPECT_EQ(r.wastedSamples(), 3);
    EXPECT_EQ(server.applyCount(), applies_before);
}

TEST(FinalizeResult, MixedTracePicksBestUsable)
{
    auto server = makeServer();
    platform::Allocation alloc = server.currentAllocation();

    std::vector<SampleRecord> trace;
    SampleRecord bad(alloc, 9.0, true, {});
    bad.status = SampleStatus::Stale; // highest score but quarantined
    trace.push_back(bad);
    trace.emplace_back(alloc, 2.0, true, std::vector<platform::JobObservation>{});
    trace.emplace_back(alloc, 3.0, false, std::vector<platform::JobObservation>{});

    ControllerResult r = finalizeResult(server, std::move(trace));
    ASSERT_TRUE(r.best.has_value());
    EXPECT_DOUBLE_EQ(r.best_score, 3.0);
    EXPECT_TRUE(r.feasible); // from the usable sample at index 1
    EXPECT_EQ(r.firstFeasibleSample(), 1);
    EXPECT_EQ(r.wastedSamples(), 1);
}

TEST(Resilience, DeadKnobCollapsesDimension)
{
    // Kill one resource knob from the start: the search must still
    // complete, never abort, and the winner's dead column must match
    // what is actually programmed (the construction-time equal share).
    auto server = makeServer();
    platform::Allocation initial = server.currentAllocation();
    platform::FaultPlan plan;
    plan.knob_losses.push_back({0, 2});
    server.setFaultInjector(
        std::make_shared<platform::FaultInjector>(plan, 9));

    ControllerResult r = CliteController(fastClite()).run(server);
    ASSERT_TRUE(r.best.has_value());
    const platform::Allocation& cur = server.currentAllocation();
    for (size_t j = 0; j < cur.jobs(); ++j)
        EXPECT_EQ(cur.get(j, 2), initial.get(j, 2)) << "job " << j;
}

} // namespace
} // namespace core
} // namespace clite

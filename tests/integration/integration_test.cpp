/**
 * @file
 * End-to-end integration tests reproducing the paper's headline
 * claims on fixed seeds:
 *
 *  - CLITE meets QoS where it is feasible and lands near ORACLE
 *    (Sec. 5.2: "within 5% of the oracle scheme").
 *  - CLITE beats PARTIES on BG performance (Fig. 13: "more than 40%
 *    gap" in the paper's setups; we assert a conservative margin).
 *  - CLITE converges in a modest number of samples (<30 paper, <45
 *    here including bootstrap).
 *  - The DES backend agrees with the analytic backend end-to-end.
 */

#include <gtest/gtest.h>

#include "core/score.h"
#include "harness/analysis.h"
#include "harness/schemes.h"
#include "workloads/catalog.h"

namespace clite {
namespace {

harness::ServerSpec
paperMix()
{
    // The Fig. 9a mix: img-dnn + memcached + masstree + streamcluster.
    harness::ServerSpec spec;
    spec.jobs = {workloads::lcJob("img-dnn", 0.3),
                 workloads::lcJob("memcached", 0.3),
                 workloads::lcJob("masstree", 0.3),
                 workloads::bgJob("streamcluster")};
    spec.seed = 42;
    return spec;
}

TEST(Integration, CliteMeetsQosAndApproachesOracle)
{
    harness::SchemeOutcome oracle =
        harness::runScheme("oracle", paperMix());
    harness::SchemeOutcome clite = harness::runScheme("clite", paperMix());

    ASSERT_TRUE(oracle.truth.all_qos_met)
        << "mix must be feasible for this test to be meaningful";
    EXPECT_TRUE(clite.truth.all_qos_met);
    // Paper: within 5% of ORACLE on their testbed. Across seeds our
    // CLITE lands at 87-100% of ORACLE on this mix while always
    // meeting QoS (see EXPERIMENTS.md); assert a floor robust to the
    // seed.
    EXPECT_GT(clite.truth.score, 0.85 * oracle.truth.score);
}

TEST(Integration, CliteBeatsPartiesOnBgPerformance)
{
    harness::SchemeOutcome clite = harness::runScheme("clite", paperMix());
    harness::SchemeOutcome parties =
        harness::runScheme("parties", paperMix());

    double clite_bg = harness::meanBgPerformance(clite.truth_obs);
    double parties_bg = harness::meanBgPerformance(parties.truth_obs);
    // PARTIES stops at QoS; CLITE keeps optimizing the BG job.
    EXPECT_GT(clite_bg, parties_bg);
}

TEST(Integration, CliteConvergesInModestSampleCount)
{
    // Bootstrap (5) + BO iterations (<=40) + polish (<=10).
    harness::SchemeOutcome clite = harness::runScheme("clite", paperMix());
    EXPECT_LE(clite.result.samples, 55);
    EXPECT_GE(clite.result.samples, 5); // bootstrap at minimum
}

TEST(Integration, SchemeOrderingOnTruthScore)
{
    // The paper's quality ordering on a feasible mix:
    // ORACLE >= CLITE > {PARTIES, Heracles}.
    double oracle = harness::runScheme("oracle", paperMix()).truth.score;
    double clite = harness::runScheme("clite", paperMix()).truth.score;
    double parties = harness::runScheme("parties", paperMix()).truth.score;
    double heracles =
        harness::runScheme("heracles", paperMix()).truth.score;

    EXPECT_GE(oracle, clite - 1e-9);
    EXPECT_GT(clite, parties);
    EXPECT_GT(clite, heracles);
}

TEST(Integration, SlowCliteWorksOnDesBackend)
{
    harness::ServerSpec spec;
    spec.jobs = {workloads::lcJob("memcached", 0.3),
                 workloads::lcJob("img-dnn", 0.2),
                 workloads::bgJob("swaptions")};
    spec.backend = harness::ModelBackend::Des;
    spec.seed = 9;
    harness::SchemeOutcome clite = harness::runScheme("clite", spec, 9);
    // End-to-end on the discrete-event backend the controller still
    // finds a feasible configuration.
    EXPECT_TRUE(clite.truth.all_qos_met);
}

TEST(Integration, SlowSixResourceServerEndToEnd)
{
    harness::ServerSpec spec;
    spec.jobs = {workloads::lcJob("xapian", 0.3),
                 workloads::lcJob("memcached", 0.3),
                 workloads::bgJob("canneal")};
    spec.all_resources = true;
    spec.seed = 17;
    harness::SchemeOutcome clite = harness::runScheme("clite", spec, 17);
    ASSERT_TRUE(clite.result.best.has_value());
    EXPECT_EQ(clite.result.best->resources(), 6u);
    EXPECT_TRUE(clite.truth.all_qos_met);
}

TEST(Integration, AllLcMixOptimizesPastQos)
{
    // With no BG jobs CLITE keeps improving LC performance after QoS
    // is met (score mode 2 with N_BG -> N_LC).
    harness::ServerSpec spec;
    spec.jobs = {workloads::lcJob("img-dnn", 0.2),
                 workloads::lcJob("memcached", 0.2),
                 workloads::lcJob("masstree", 0.2)};
    spec.seed = 23;
    harness::SchemeOutcome clite = harness::runScheme("clite", spec, 23);
    EXPECT_TRUE(clite.truth.all_qos_met);
    EXPECT_GT(clite.truth.score, 0.5);
    EXPECT_GT(clite.truth.perf_component, 0.0);
}

} // namespace
} // namespace clite

/**
 * @file
 * Property tests for the traffic subsystem (workloads/traffic): every
 * generator must be seed-reproducible, evaluation-order independent,
 * and bounded in (0, 1]; CSV replay must round-trip bit-exactly; the
 * trace/profile helpers must stamp the identities the signature layer
 * hashes.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/error.h"
#include "common/thread_pool.h"
#include "workloads/traffic/traffic.h"

namespace clite {
namespace workloads {
namespace traffic {
namespace {

/** Sample @p trace on a fixed grid. */
std::vector<double>
sample(const LoadTrace& trace, double horizon = 240.0, double step = 0.7)
{
    std::vector<double> out;
    for (double t = 0.0; t < horizon; t += step)
        out.push_back(trace.loadAt(t));
    return out;
}

void
expectInBounds(const std::vector<double>& loads)
{
    for (double v : loads) {
        EXPECT_GT(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(HashUniform, DeterministicAndBounded)
{
    for (uint64_t c = 0; c < 1000; ++c) {
        double v = hashUniform(7, c);
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
        EXPECT_EQ(v, hashUniform(7, c));
    }
    // Different seeds and counters decorrelate.
    EXPECT_NE(hashUniform(7, 3), hashUniform(8, 3));
    EXPECT_NE(hashUniform(7, 3), hashUniform(7, 4));
}

TEST(SurgeProcess, SameSeedSameTimeline)
{
    SurgeProcess a(11), b(11), c(12);
    EXPECT_EQ(a.onsets(), b.onsets());
    EXPECT_EQ(a.magnitudes(), b.magnitudes());
    EXPECT_NE(a.onsets(), c.onsets());
}

TEST(SurgeProcess, OnsetsAscendWithinHorizon)
{
    SurgeProcess::Options o;
    o.horizon_seconds = 500.0;
    o.mean_interarrival_s = 25.0;
    SurgeProcess p(3, o);
    EXPECT_FALSE(p.onsets().empty());
    EXPECT_TRUE(std::is_sorted(p.onsets().begin(), p.onsets().end()));
    for (double t : p.onsets()) {
        EXPECT_GE(t, 0.0);
        EXPECT_LT(t, o.horizon_seconds);
    }
    for (double m : p.magnitudes())
        EXPECT_GT(m, 0.0);
}

TEST(SurgeProcess, SpikesAtOnsetThenDecays)
{
    SurgeProcess::Options o;
    o.decay_seconds = 5.0;
    SurgeProcess p(21, o);
    ASSERT_FALSE(p.onsets().empty());
    double t0 = p.onsets().front();
    if (t0 > 0.5) {
        EXPECT_DOUBLE_EQ(p.surgeAt(t0 * 0.5), 0.0); // quiet before onset
    }
    EXPECT_GE(p.surgeAt(t0), p.magnitudes().front());
    // Between onsets the surge strictly decays.
    double next = p.onsets().size() > 1 ? p.onsets()[1]
                                        : o.horizon_seconds + 1000.0;
    if (next > t0 + 1.0) {
        EXPECT_LT(p.surgeAt(t0 + 1.0), p.surgeAt(t0));
    }
    EXPECT_GE(p.surgeAt(t0 + 1000.0), 0.0);
}

TEST(SurgeProcess, Validation)
{
    SurgeProcess::Options o;
    o.horizon_seconds = 0.0;
    EXPECT_THROW(SurgeProcess(1, o), Error);
    o = SurgeProcess::Options();
    o.mean_interarrival_s = -1.0;
    EXPECT_THROW(SurgeProcess(1, o), Error);
    o = SurgeProcess::Options();
    o.decay_seconds = 0.0;
    EXPECT_THROW(SurgeProcess(1, o), Error);
    o = SurgeProcess::Options();
    o.mean_magnitude = 0.0;
    EXPECT_THROW(SurgeProcess(1, o), Error);
}

TEST(JitteredDiurnalTrace, DeterministicPerSeedAndOrderIndependent)
{
    JitteredDiurnalTrace a(5), b(5), c(6);
    EXPECT_EQ(sample(a), sample(b));
    EXPECT_NE(sample(a), sample(c));
    // Evaluation order must not matter: reading the trace backwards
    // reproduces the forward values bit for bit (no hidden sequential
    // RNG state). Index the grid so both passes query identical times.
    const int n = 343;
    std::vector<double> fwd, rev;
    for (int i = 0; i < n; ++i)
        fwd.push_back(a.loadAt(double(i) * 0.7));
    for (int i = n - 1; i >= 0; --i)
        rev.push_back(a.loadAt(double(i) * 0.7));
    std::reverse(rev.begin(), rev.end());
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(fwd[size_t(i)], rev[size_t(i)]);
    EXPECT_EQ(a.name(), "jittered-diurnal");
}

TEST(JitteredDiurnalTrace, StaysInBoundsAndTracksTheSine)
{
    JitteredDiurnalTrace::Options o;
    o.base = 0.5;
    o.amplitude = 0.4;
    o.period_seconds = 100.0;
    o.jitter = 0.08;
    JitteredDiurnalTrace trace(9, o);
    std::vector<double> loads = sample(trace, 300.0, 0.5);
    expectInBounds(loads);
    // The jitter ribbon is bounded: every sample within jitter of the
    // clean sine (before clamping effects at the extremes).
    for (double t = 0.0; t < 300.0; t += 0.5) {
        double clean = o.base + o.amplitude *
                                    std::sin(2.0 * M_PI * t /
                                             o.period_seconds);
        double lo = std::max(0.01, std::min(clean - o.jitter, 1.0));
        double hi = std::min(1.0, std::max(clean + o.jitter, 0.01));
        double v = trace.loadAt(t);
        EXPECT_GE(v, lo - 1e-12);
        EXPECT_LE(v, hi + 1e-12);
    }
}

TEST(JitteredDiurnalTrace, Validation)
{
    JitteredDiurnalTrace::Options o;
    o.period_seconds = 0.0;
    EXPECT_THROW(JitteredDiurnalTrace(1, o), Error);
    o = JitteredDiurnalTrace::Options();
    o.base = 0.0;
    EXPECT_THROW(JitteredDiurnalTrace(1, o), Error);
    o = JitteredDiurnalTrace::Options();
    o.jitter = -0.1;
    EXPECT_THROW(JitteredDiurnalTrace(1, o), Error);
    o = JitteredDiurnalTrace::Options();
    o.jitter_interval_s = 0.0;
    EXPECT_THROW(JitteredDiurnalTrace(1, o), Error);
}

TEST(FlashCrowdTrace, BaseBetweenCrowdsSpikesAtOnsets)
{
    FlashCrowdTrace trace(31, 0.2);
    std::vector<double> loads = sample(trace, 600.0, 1.0);
    expectInBounds(loads);
    // Before the first onset the load is exactly the base.
    ASSERT_FALSE(trace.surge().onsets().empty());
    double first = trace.surge().onsets().front();
    if (first > 1.0) {
        EXPECT_DOUBLE_EQ(trace.loadAt(first / 2.0), 0.2);
    }
    // At an onset the load strictly exceeds the base.
    EXPECT_GT(trace.loadAt(first), 0.2);
    EXPECT_EQ(trace.name(), "flash-crowd");
    EXPECT_THROW(FlashCrowdTrace(1, 0.0), Error);
    EXPECT_THROW(FlashCrowdTrace(1, 1.5), Error);
}

TEST(CorrelatedTrace, SubscribersSpikeTogether)
{
    auto surge = std::make_shared<SurgeProcess>(77);
    auto base_a = std::make_shared<DiurnalTrace>(0.3, 0.1, 200.0);
    auto base_b = std::make_shared<DiurnalTrace>(0.5, 0.05, 300.0);
    CorrelatedTrace a(base_a, surge, 1.0);
    CorrelatedTrace b(base_b, surge, 0.5);
    ASSERT_FALSE(surge->onsets().empty());
    double t0 = surge->onsets().front();
    // Both jobs see the same crowd at the same moment, scaled by gain.
    EXPECT_GT(a.loadAt(t0), base_a->loadAt(t0));
    EXPECT_GT(b.loadAt(t0), base_b->loadAt(t0));
    expectInBounds(sample(a));
    expectInBounds(sample(b));
    // Gain 0 decouples from the surge entirely.
    CorrelatedTrace quiet(base_a, surge, 0.0);
    for (double t = 0.0; t < 100.0; t += 3.0)
        EXPECT_DOUBLE_EQ(quiet.loadAt(t),
                         clampLoadFraction(base_a->loadAt(t)));
    EXPECT_THROW(CorrelatedTrace(nullptr, surge), Error);
    EXPECT_THROW(CorrelatedTrace(base_a, nullptr), Error);
    EXPECT_THROW(CorrelatedTrace(base_a, surge, -1.0), Error);
}

TEST(CompositeTrace, WeightedSumClamped)
{
    auto d = std::make_shared<DiurnalTrace>(0.4, 0.1, 100.0);
    auto f = std::make_shared<FlashCrowdTrace>(5, 0.2);
    CompositeTrace mix({{d, 0.5}, {f, 0.5}});
    for (double t = 0.0; t < 200.0; t += 2.5)
        EXPECT_DOUBLE_EQ(mix.loadAt(t),
                         clampLoadFraction(0.5 * d->loadAt(t) +
                                           0.5 * f->loadAt(t)));
    expectInBounds(sample(mix));
    EXPECT_EQ(mix.name(), "composite");
    EXPECT_THROW(CompositeTrace({}), Error);
    EXPECT_THROW(CompositeTrace({{nullptr, 1.0}}), Error);
    EXPECT_THROW(CompositeTrace({{d, -0.5}}), Error);
}

TEST(CsvReplayTrace, InterpolatesAndHoldsEnds)
{
    CsvReplayTrace trace({{0.0, 0.2}, {10.0, 0.4}, {20.0, 0.3}});
    EXPECT_DOUBLE_EQ(trace.loadAt(-5.0), 0.2); // held before first
    EXPECT_DOUBLE_EQ(trace.loadAt(0.0), 0.2);
    EXPECT_DOUBLE_EQ(trace.loadAt(5.0), 0.3);  // linear midpoint
    EXPECT_DOUBLE_EQ(trace.loadAt(10.0), 0.4);
    EXPECT_DOUBLE_EQ(trace.loadAt(15.0), 0.35);
    EXPECT_DOUBLE_EQ(trace.loadAt(99.0), 0.3); // held after last
    EXPECT_EQ(trace.name(), "csv-replay");
}

TEST(CsvReplayTrace, RoundTripsBitExactly)
{
    // Awkward doubles: %.17g must reproduce them exactly.
    CsvReplayTrace trace({{0.0, 1.0 / 3.0},
                          {1.1, 0.123456789012345678},
                          {2.7, 1.0},
                          {1e6, 0.0001}});
    CsvReplayTrace back = CsvReplayTrace::fromCsvString(trace.toCsvString());
    ASSERT_EQ(back.samples().size(), trace.samples().size());
    for (size_t i = 0; i < trace.samples().size(); ++i) {
        EXPECT_EQ(back.samples()[i].t_seconds,
                  trace.samples()[i].t_seconds);
        EXPECT_EQ(back.samples()[i].load, trace.samples()[i].load);
    }
}

TEST(CsvReplayTrace, ParsesCommentsAndBlanksNamesBadLines)
{
    CsvReplayTrace trace = CsvReplayTrace::fromCsvString(
        "# header\n\n0.0, 0.25\n  10.5 , 0.75\n");
    ASSERT_EQ(trace.samples().size(), 2u);
    EXPECT_DOUBLE_EQ(trace.samples()[1].t_seconds, 10.5);
    EXPECT_DOUBLE_EQ(trace.samples()[1].load, 0.75);

    try {
        CsvReplayTrace::fromCsvString("0,0.2\nnot-a-row\n");
        FAIL() << "expected a parse error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"),
                  std::string::npos);
    }
    EXPECT_THROW(CsvReplayTrace::fromCsvString("0,0.2,extra\n"), Error);
    EXPECT_THROW(CsvReplayTrace::fromCsvFile("/nonexistent/trace.csv"),
                 Error);
}

TEST(CsvReplayTrace, Validation)
{
    EXPECT_THROW(CsvReplayTrace({}), Error);
    EXPECT_THROW(CsvReplayTrace({{0.0, 0.0}}), Error);
    EXPECT_THROW(CsvReplayTrace({{0.0, 1.5}}), Error);
    try {
        CsvReplayTrace({{0.0, 0.2}, {5.0, 0.3}, {5.0, 0.4}});
        FAIL() << "expected a time-order error";
    } catch (const Error& e) {
        // The error names both offending samples.
        std::string msg = e.what();
        EXPECT_NE(msg.find("sample 2"), std::string::npos);
        EXPECT_NE(msg.find("sample 1"), std::string::npos);
    }
}

TEST(TraceMeanLoad, MatchesConstantAndSine)
{
    StepTrace flat({{0.0, 0.42}});
    EXPECT_NEAR(traceMeanLoad(flat, 100.0), 0.42, 1e-12);
    // A full-period sine averages back to its base.
    DiurnalTrace sine(0.5, 0.3, 100.0);
    EXPECT_NEAR(traceMeanLoad(sine, 100.0, 0.01), 0.5, 1e-3);
    EXPECT_THROW(traceMeanLoad(flat, 0.0), Error);
    EXPECT_THROW(traceMeanLoad(flat, 10.0, 0.0), Error);
}

TEST(WithTrace, StampsIdentity)
{
    JobSpec spec;
    spec.profile.name = "memcached";
    spec.profile.qos_p95_ms = 5.0;
    spec.load_fraction = 0.9;
    JitteredDiurnalTrace trace(4);
    JobSpec traced = withTrace(spec, trace, 120.0);
    EXPECT_EQ(traced.trace_kind, "jittered-diurnal");
    EXPECT_GT(traced.trace_mean_load, 0.0);
    EXPECT_DOUBLE_EQ(traced.load_fraction, traced.trace_mean_load);
}

TEST(HeavyTailed, SwitchesTheServiceDistribution)
{
    JobSpec spec;
    JobSpec heavy = heavyTailed(spec, 1.3, 50.0);
    EXPECT_EQ(heavy.profile.service_distribution,
              ServiceDistribution::BoundedPareto);
    EXPECT_DOUBLE_EQ(heavy.profile.pareto_alpha, 1.3);
    EXPECT_DOUBLE_EQ(heavy.profile.pareto_tail_ratio, 50.0);
    EXPECT_THROW(heavyTailed(spec, 1.0, 50.0), Error);
    EXPECT_THROW(heavyTailed(spec, 1.5, 1.0), Error);
}

TEST(TrafficTraces, ThreadCountDoesNotChangeValues)
{
    // loadAt is a pure function, so the configured pool width cannot
    // matter; pin it anyway — this is the contract fleet replays rely
    // on for bit-identical runs at CLITE_THREADS=1 vs 8.
    JitteredDiurnalTrace trace(13);
    FlashCrowdTrace flash(13, 0.3);
    const int restore = ThreadPool::defaultThreadCount();
    setGlobalThreadCount(1);
    std::vector<double> one = sample(trace);
    std::vector<double> one_f = sample(flash);
    setGlobalThreadCount(8);
    EXPECT_EQ(one, sample(trace));
    EXPECT_EQ(one_f, sample(flash));
    setGlobalThreadCount(restore);
}

TEST(TrafficSweepSlow, SlowAllGeneratorsStayInBoundsAcrossSeeds)
{
    for (uint64_t seed = 0; seed < 25; ++seed) {
        JitteredDiurnalTrace::Options o;
        o.base = 0.2 + 0.06 * double(seed % 10);
        o.amplitude = 0.5;
        o.jitter = 0.2;
        expectInBounds(sample(JitteredDiurnalTrace(seed, o), 1200.0, 1.3));
        expectInBounds(sample(FlashCrowdTrace(seed, 0.15), 1200.0, 1.3));
        auto surge = std::make_shared<SurgeProcess>(seed);
        auto base = std::make_shared<DiurnalTrace>(0.4, 0.3, 170.0);
        expectInBounds(
            sample(CorrelatedTrace(base, surge, 2.0), 1200.0, 1.3));
    }
}

} // namespace
} // namespace traffic
} // namespace workloads
} // namespace clite

/**
 * @file
 * Unit and property tests for the workload catalog and the
 * performance-model backends — the fidelity contracts of the
 * simulated testbed (DESIGN.md Sec. 5).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace workloads {
namespace {

platform::ServerConfig
testbed()
{
    return platform::ServerConfig::xeonSilver4114();
}

std::vector<int>
fullUnits(const platform::ServerConfig& cfg)
{
    std::vector<int> u(cfg.resourceCount());
    for (size_t r = 0; r < cfg.resourceCount(); ++r)
        u[r] = cfg.resource(r).units;
    return u;
}

TEST(Catalog, Table3Contents)
{
    EXPECT_EQ(lcWorkloadNames().size(), 5u);
    EXPECT_EQ(bgWorkloadNames().size(), 6u);
    for (const char* n : {"img-dnn", "masstree", "memcached", "specjbb",
                          "xapian"})
        EXPECT_TRUE(lcWorkload(n).isLatencyCritical()) << n;
    for (const char* n : {"blackscholes", "canneal", "fluidanimate",
                          "freqmine", "streamcluster", "swaptions"})
        EXPECT_FALSE(bgWorkload(n).isLatencyCritical()) << n;
    EXPECT_THROW(lcWorkload("streamcluster"), Error);
    EXPECT_THROW(bgWorkload("memcached"), Error);
    EXPECT_EQ(workloadByName("xapian").name, "xapian");
    EXPECT_EQ(workloadByName("canneal").name, "canneal");
    EXPECT_THROW(workloadByName("doom"), Error);
}

class LcWorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(LcWorkloadTest, MeetsQosAtFullLoadInIsolation)
{
    // Calibration contract: at 100% load with the whole machine, the
    // QoS target is met (it was derived there with a margin).
    auto cfg = testbed();
    JobSpec job{lcWorkload(GetParam()), 1.0};
    AnalyticModel model;
    Rng rng(0);
    JobMeasurement m = model.measure(job, fullUnits(cfg), cfg, rng);
    EXPECT_LE(m.p95_ms, job.profile.qos_p95_ms);
    EXPECT_FALSE(m.saturated);
}

TEST_P(LcWorkloadTest, ViolatesQosBeyondSaturation)
{
    // Past the knee the curve blows up (Fig. 6's defining shape). The
    // knee sits at kKneeUtilization of machine capacity, so ~2.5x the
    // max load is past saturation for every profile.
    auto cfg = testbed();
    JobSpec job{lcWorkload(GetParam()), 2.5};
    AnalyticModel model;
    Rng rng(0);
    JobMeasurement m = model.measure(job, fullUnits(cfg), cfg, rng);
    EXPECT_GT(m.p95_ms, job.profile.qos_p95_ms);
}

TEST_P(LcWorkloadTest, LatencyMonotoneInLoad)
{
    auto cfg = testbed();
    AnalyticModel model;
    Rng rng(0);
    double prev = 0.0;
    for (double load : {0.2, 0.5, 0.8, 1.0}) {
        JobSpec job{lcWorkload(GetParam()), load};
        JobMeasurement m = model.measure(job, fullUnits(cfg), cfg, rng);
        EXPECT_GE(m.p95_ms, prev);
        prev = m.p95_ms;
    }
}

TEST_P(LcWorkloadTest, MoreCoresNeverHurt)
{
    auto cfg = testbed();
    AnalyticModel model;
    Rng rng(0);
    JobSpec job{lcWorkload(GetParam()), 0.4};
    double prev = 1e100;
    for (int cores = 2; cores <= 10; cores += 2) {
        std::vector<int> u = fullUnits(cfg);
        u[cfg.indexOf(platform::Resource::Cores)] = cores;
        JobMeasurement m = model.measure(job, u, cfg, rng);
        EXPECT_LE(m.p95_ms, prev * (1.0 + 1e-9)) << cores << " cores";
        prev = m.p95_ms;
    }
}

TEST_P(LcWorkloadTest, DesAgreesWithAnalytic)
{
    // The two backends must tell the same story (DESIGN.md: DES
    // cross-validates the closed form).
    auto cfg = testbed();
    JobSpec job{lcWorkload(GetParam()), 0.5};
    AnalyticModel analytic;
    QueueingSimModel des(2.0, 10.0);
    Rng rng(123);
    JobMeasurement ma = analytic.measure(job, fullUnits(cfg), cfg, rng);
    JobMeasurement md = des.measure(job, fullUnits(cfg), cfg, rng);
    EXPECT_NEAR(md.p95_ms, ma.p95_ms, 0.20 * ma.p95_ms);
}

INSTANTIATE_TEST_SUITE_P(Apps, LcWorkloadTest,
                         ::testing::ValuesIn(lcWorkloadNames()));

class BgWorkloadTest : public ::testing::TestWithParam<std::string>
{
};

TEST_P(BgWorkloadTest, ThroughputMonotoneInEveryResource)
{
    auto cfg = testbed();
    AnalyticModel model;
    Rng rng(0);
    JobSpec job{bgWorkload(GetParam()), 1.0};
    for (size_t vary = 0; vary < cfg.resourceCount(); ++vary) {
        double prev = 0.0;
        for (int units = 1; units <= cfg.resource(vary).units; ++units) {
            std::vector<int> u(cfg.resourceCount(), 2);
            u[vary] = units;
            JobMeasurement m = model.measure(job, u, cfg, rng);
            EXPECT_GE(m.throughput, prev * (1.0 - 1e-9))
                << "resource " << vary << " units " << units;
            prev = m.throughput;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Apps, BgWorkloadTest,
                         ::testing::ValuesIn(bgWorkloadNames()));

TEST(PerfModel, CacheSensitivityOrdering)
{
    // streamcluster (LLC-hungry) must gain more from ways than
    // blackscholes (CPU-bound) — the diversity Fig. 9a exploits.
    auto cfg = testbed();
    AnalyticModel model;
    Rng rng(0);
    auto gain = [&](const std::string& name) {
        JobSpec job{bgWorkload(name), 1.0};
        std::vector<int> few = {4, 1, 5};
        std::vector<int> many = {4, 9, 5};
        double t_few = model.measure(job, few, cfg, rng).throughput;
        double t_many = model.measure(job, many, cfg, rng).throughput;
        return t_many / t_few;
    };
    EXPECT_GT(gain("streamcluster"), 1.5 * gain("blackscholes"));
}

TEST(PerfModel, BandwidthContentionRaisesServiceTime)
{
    // masstree at high load with starved bandwidth must stall.
    auto cfg = testbed();
    JobSpec job{lcWorkload("masstree"), 1.0};
    std::vector<int> starved = {10, 11, 1};
    ServiceCost tight = deriveServiceCost(job, starved, cfg,
                                          job.offeredQps());
    std::vector<int> fed = {10, 11, 10};
    ServiceCost ok = deriveServiceCost(job, fed, cfg, job.offeredQps());
    EXPECT_GT(tight.bw_stall, 1.2);
    EXPECT_NEAR(ok.bw_stall, 1.0, 0.3);
    EXPECT_GT(tight.service_ms, ok.service_ms);
}

TEST(PerfModel, CacheWaysShedBandwidthDemand)
{
    // The equivalence-class interaction: with more ways (fewer
    // misses), the same bandwidth allocation stalls less.
    auto cfg = testbed();
    JobSpec job{lcWorkload("masstree"), 1.0};
    std::vector<int> few_ways = {10, 1, 2};
    std::vector<int> many_ways = {10, 11, 2};
    ServiceCost a = deriveServiceCost(job, few_ways, cfg,
                                      job.offeredQps());
    ServiceCost b = deriveServiceCost(job, many_ways, cfg,
                                      job.offeredQps());
    EXPECT_GT(a.miss_ratio, b.miss_ratio);
    EXPECT_GE(a.bw_stall, b.bw_stall);
}

TEST(PerfModel, CapacityPressureOnExtendedServer)
{
    auto cfg = platform::ServerConfig::xeonSilver4114AllResources();
    JobSpec job{bgWorkload("canneal"), 1.0}; // 8 GB working set
    std::vector<int> u(cfg.resourceCount(), 5);
    size_t cap = cfg.indexOf(platform::Resource::MemCapacity);
    u[cap] = 1; // 4.6 GB < 8 GB working set -> paging
    ServiceCost starved = deriveServiceCost(job, u, cfg, 0.0);
    u[cap] = 10;
    ServiceCost fed = deriveServiceCost(job, u, cfg, 0.0);
    EXPECT_GT(starved.paging, 1.5);
    EXPECT_DOUBLE_EQ(fed.paging, 1.0);
}

TEST(PerfModel, DiskThrottlingAffectsXapian)
{
    auto cfg = platform::ServerConfig::xeonSilver4114AllResources();
    JobSpec job{lcWorkload("xapian"), 0.3};
    AnalyticModel model;
    Rng rng(0);
    std::vector<int> u(cfg.resourceCount(), 5);
    u[cfg.indexOf(platform::Resource::Cores)] = 5;
    size_t disk = cfg.indexOf(platform::Resource::DiskBandwidth);
    u[disk] = 1;
    double slow = model.measure(job, u, cfg, rng).p95_ms;
    u[disk] = 10;
    double fast = model.measure(job, u, cfg, rng).p95_ms;
    EXPECT_GT(slow, fast);
}

TEST(PerfModel, SaturationFlagAndFiniteLatency)
{
    auto cfg = testbed();
    AnalyticModel model;
    Rng rng(0);
    JobSpec job{lcWorkload("img-dnn"), 1.0};
    std::vector<int> tiny = {1, 1, 1};
    JobMeasurement m = model.measure(job, tiny, cfg, rng);
    EXPECT_TRUE(m.saturated);
    EXPECT_TRUE(std::isfinite(m.p95_ms));
    EXPECT_GT(m.p95_ms, job.profile.qos_p95_ms);
}

TEST(PerfModel, JobSpecHelpers)
{
    JobSpec lc = lcJob("img-dnn", 0.3);
    EXPECT_NEAR(lc.offeredQps(), 0.3 * lc.profile.max_qps, 1e-9);
    EXPECT_EQ(lc.label(), "img-dnn@30%");
    JobSpec bg = bgJob("canneal");
    EXPECT_EQ(bg.label(), "canneal");
    EXPECT_THROW(lcJob("img-dnn", 0.0), Error);
    EXPECT_THROW(lcJob("img-dnn", 1.5), Error);
}

TEST(PerfModel, MeasureJobExtractsCorrectRow)
{
    auto cfg = testbed();
    std::vector<JobSpec> jobs = {lcJob("memcached", 0.3),
                                 bgJob("swaptions")};
    platform::Allocation a = platform::Allocation::maxFor(0, 2, cfg);
    AnalyticModel model;
    Rng rng(0);
    JobMeasurement via_matrix = model.measureJob(jobs, 0, a, cfg, rng);
    std::vector<int> units = {9, 10, 9};
    JobMeasurement direct = model.measure(jobs[0], units, cfg, rng);
    EXPECT_DOUBLE_EQ(via_matrix.p95_ms, direct.p95_ms);
}

} // namespace
} // namespace workloads
} // namespace clite

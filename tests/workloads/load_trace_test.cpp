/**
 * @file
 * Tests for the load-trace generators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "workloads/load_trace.h"

namespace clite {
namespace workloads {
namespace {

TEST(StepTrace, HoldsEachStepUntilTheNext)
{
    StepTrace trace({{0.0, 0.1}, {10.0, 0.2}, {20.0, 0.3}});
    EXPECT_DOUBLE_EQ(trace.loadAt(0.0), 0.1);
    EXPECT_DOUBLE_EQ(trace.loadAt(9.99), 0.1);
    EXPECT_DOUBLE_EQ(trace.loadAt(10.0), 0.2);
    EXPECT_DOUBLE_EQ(trace.loadAt(19.0), 0.2);
    EXPECT_DOUBLE_EQ(trace.loadAt(25.0), 0.3);
    EXPECT_DOUBLE_EQ(trace.loadAt(1e9), 0.3);
    EXPECT_EQ(trace.name(), "step");
}

TEST(StepTrace, Validation)
{
    EXPECT_THROW(StepTrace({}), Error);
    EXPECT_THROW(StepTrace({{5.0, 0.1}}), Error); // must start at 0
    EXPECT_THROW(StepTrace({{0.0, 0.1}, {10.0, 0.2}, {5.0, 0.3}}), Error);
    EXPECT_THROW(StepTrace({{0.0, 0.0}}), Error);
    EXPECT_THROW(StepTrace({{0.0, 1.5}}), Error);
}

TEST(StepTrace, ReturnsValidatedLoadsExactly)
{
    // The (0, 1] contract: loads below the generators' 0.01 clamp
    // floor are documented-legal and must be replayed bit-exactly,
    // never silently clamped.
    StepTrace trace({{0.0, 0.005}, {10.0, 1.0}, {20.0, 0.0001}});
    EXPECT_EQ(trace.loadAt(0.0), 0.005);
    EXPECT_EQ(trace.loadAt(9.0), 0.005);
    EXPECT_EQ(trace.loadAt(15.0), 1.0);
    EXPECT_EQ(trace.loadAt(1e9), 0.0001);
    // Equal-time steps are allowed (non-decreasing): the later one
    // wins from that instant on.
    StepTrace dup({{0.0, 0.2}, {10.0, 0.3}, {10.0, 0.4}});
    EXPECT_EQ(dup.loadAt(10.0), 0.4);
}

TEST(StepTrace, ErrorsNameTheOffendingStep)
{
    try {
        StepTrace({{0.0, 0.1}, {10.0, 0.2}, {5.0, 0.3}});
        FAIL() << "expected a time-order error";
    } catch (const Error& e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("step 2"), std::string::npos) << msg;
        EXPECT_NE(msg.find("step 1"), std::string::npos) << msg;
    }
    try {
        StepTrace({{0.0, 0.1}, {10.0, 1.5}});
        FAIL() << "expected a load-range error";
    } catch (const Error& e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("step 1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("(0, 1]"), std::string::npos) << msg;
    }
}

TEST(DiurnalTrace, OscillatesAroundBase)
{
    DiurnalTrace trace(0.5, 0.3, 100.0);
    EXPECT_NEAR(trace.loadAt(0.0), 0.5, 1e-12);
    EXPECT_NEAR(trace.loadAt(25.0), 0.8, 1e-12); // quarter period peak
    EXPECT_NEAR(trace.loadAt(75.0), 0.2, 1e-12); // trough
    EXPECT_NEAR(trace.loadAt(100.0), 0.5, 1e-9); // full period
}

TEST(DiurnalTrace, ClampsToValidRange)
{
    DiurnalTrace trace(0.9, 0.5, 50.0);
    for (double t = 0.0; t < 50.0; t += 1.0) {
        double v = trace.loadAt(t);
        EXPECT_GT(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
    EXPECT_DOUBLE_EQ(trace.loadAt(12.5), 1.0); // clamped peak
}

TEST(DiurnalTrace, Validation)
{
    EXPECT_THROW(DiurnalTrace(0.5, 0.2, 0.0), Error);
    EXPECT_THROW(DiurnalTrace(0.0, 0.2, 10.0), Error);
    EXPECT_THROW(DiurnalTrace(0.5, -0.1, 10.0), Error);
}

TEST(BurstTrace, PeriodicRectangularBursts)
{
    BurstTrace trace(0.2, 0.8, 5.0, 20.0);
    EXPECT_DOUBLE_EQ(trace.loadAt(0.0), 0.8);  // in burst
    EXPECT_DOUBLE_EQ(trace.loadAt(4.99), 0.8);
    EXPECT_DOUBLE_EQ(trace.loadAt(5.0), 0.2);  // after burst
    EXPECT_DOUBLE_EQ(trace.loadAt(19.0), 0.2);
    EXPECT_DOUBLE_EQ(trace.loadAt(21.0), 0.8); // next period's burst
    EXPECT_DOUBLE_EQ(trace.loadAt(-1.0), 0.8); // negative time clamps
}

TEST(BurstTrace, Validation)
{
    EXPECT_THROW(BurstTrace(0.2, 0.8, 25.0, 20.0), Error);
    EXPECT_THROW(BurstTrace(0.2, 0.8, 5.0, 0.0), Error);
    EXPECT_THROW(BurstTrace(0.0, 0.8, 5.0, 20.0), Error);
}

TEST(ClampLoadFraction, Bounds)
{
    EXPECT_DOUBLE_EQ(clampLoadFraction(-3.0), 0.01);
    EXPECT_DOUBLE_EQ(clampLoadFraction(0.5), 0.5);
    EXPECT_DOUBLE_EQ(clampLoadFraction(7.0), 1.0);
}

} // namespace
} // namespace workloads
} // namespace clite

/**
 * @file
 * Property tests for the performance model — the global guarantees
 * every optimizer implicitly relies on, swept across the whole
 * workload catalog with TEST_P.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace workloads {
namespace {

platform::ServerConfig
testbed()
{
    return platform::ServerConfig::xeonSilver4114();
}

class LcProperty : public ::testing::TestWithParam<std::string>
{
  protected:
    AnalyticModel model_;
    Rng rng_{0};
};

TEST_P(LcProperty, P95DecreasesInEveryResource)
{
    // More of ANY resource never hurts tail latency.
    auto cfg = testbed();
    JobSpec job{lcWorkload(GetParam()), 0.5};
    for (size_t vary = 0; vary < cfg.resourceCount(); ++vary) {
        double prev = 1e100;
        for (int units = 1; units <= cfg.resource(vary).units; ++units) {
            std::vector<int> u = {4, 4, 4};
            u[vary] = units;
            double p95 = model_.measure(job, u, cfg, rng_).p95_ms;
            EXPECT_LE(p95, prev * (1.0 + 1e-9))
                << GetParam() << " resource " << vary << " units "
                << units;
            prev = p95;
        }
    }
}

TEST_P(LcProperty, SaturatedFlagConsistentWithCapacity)
{
    // saturated == offered load exceeds the allocation's capacity,
    // and implies a large latency.
    auto cfg = testbed();
    JobSpec job{lcWorkload(GetParam()), 1.0};
    for (int cores = 1; cores <= 10; cores += 3) {
        std::vector<int> u = {cores, 6, 5};
        JobMeasurement m = model_.measure(job, u, cfg, rng_);
        if (m.saturated)
            EXPECT_GT(m.p95_ms, job.profile.qos_p95_ms);
        EXPECT_TRUE(std::isfinite(m.p95_ms));
    }
}

TEST_P(LcProperty, MeanBelowP95)
{
    auto cfg = testbed();
    JobSpec job{lcWorkload(GetParam()), 0.6};
    std::vector<int> u = {5, 6, 5};
    JobMeasurement m = model_.measure(job, u, cfg, rng_);
    if (!m.saturated)
        EXPECT_LT(m.mean_ms, m.p95_ms);
}

TEST_P(LcProperty, MissRatioWithinBoundsAndDecreasing)
{
    auto cfg = testbed();
    JobSpec job{lcWorkload(GetParam()), 0.5};
    double prev = 1.1;
    for (int ways = 1; ways <= 11; ++ways) {
        std::vector<int> u = {5, ways, 5};
        ServiceCost c = deriveServiceCost(job, u, cfg, job.offeredQps());
        EXPECT_GT(c.miss_ratio, 0.0);
        EXPECT_LE(c.miss_ratio, 1.0);
        EXPECT_LT(c.miss_ratio, prev);
        prev = c.miss_ratio;
    }
}

TEST_P(LcProperty, ZeroLoadHasFiniteBaseline)
{
    auto cfg = testbed();
    JobSpec job{lcWorkload(GetParam()), 1.0};
    job.load_fraction = 0.0; // no arrivals at all
    std::vector<int> u = {2, 2, 2};
    JobMeasurement m = model_.measure(job, u, cfg, rng_);
    EXPECT_GT(m.p95_ms, 0.0);
    EXPECT_TRUE(std::isfinite(m.p95_ms));
    EXPECT_DOUBLE_EQ(m.throughput, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Catalog, LcProperty,
                         ::testing::ValuesIn(lcWorkloadNames()));

class BgProperty : public ::testing::TestWithParam<std::string>
{
  protected:
    AnalyticModel model_;
    Rng rng_{0};
};

TEST_P(BgProperty, CoreScalingIsConcave)
{
    // Marginal gain of each extra core never increases (Amdahl).
    auto cfg = testbed();
    JobSpec job{bgWorkload(GetParam()), 1.0};
    std::vector<double> rate(11, 0.0);
    for (int c = 1; c <= 10; ++c) {
        std::vector<int> u = {c, 11, 10}; // ample cache/bw
        rate[size_t(c)] = model_.measure(job, u, cfg, rng_).throughput;
    }
    for (int c = 2; c <= 9; ++c) {
        double gain_here = rate[size_t(c)] - rate[size_t(c - 1)];
        double gain_next = rate[size_t(c + 1)] - rate[size_t(c)];
        EXPECT_LE(gain_next, gain_here + 1e-6)
            << GetParam() << " at " << c << " cores";
    }
}

TEST_P(BgProperty, BandwidthBoundThroughputIsFlatInCores)
{
    // Once the memory channel is the bottleneck, extra cores cannot
    // reduce throughput (the regression the monotonicity fix covers).
    auto cfg = testbed();
    JobSpec job{bgWorkload(GetParam()), 1.0};
    double prev = 0.0;
    for (int c = 1; c <= 10; ++c) {
        std::vector<int> u = {c, 2, 1}; // starved cache + bandwidth
        double thr = model_.measure(job, u, cfg, rng_).throughput;
        EXPECT_GE(thr, prev * (1.0 - 1e-9)) << GetParam() << " " << c;
        prev = thr;
    }
}

TEST_P(BgProperty, DesAgreesWithAnalyticOnThroughputScale)
{
    auto cfg = testbed();
    JobSpec job{bgWorkload(GetParam()), 1.0};
    QueueingSimModel des(0.2, 2.0);
    Rng rng(77);
    std::vector<int> u = {4, 5, 4};
    double a = model_.measure(job, u, cfg, rng).throughput;
    double d = des.measure(job, u, cfg, rng).throughput;
    EXPECT_NEAR(d, a, 0.15 * a) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Catalog, BgProperty,
                         ::testing::ValuesIn(bgWorkloadNames()));

TEST(PerfModelProperty, LcLatencyMonotoneInLoadEverywhere)
{
    // Not just at full allocation: at random partial allocations too.
    auto cfg = testbed();
    Rng rng(5);
    AnalyticModel model;
    for (int rep = 0; rep < 30; ++rep) {
        std::string name = workloads::lcWorkloadNames()[size_t(
            rng.uniformInt(0, 4))];
        std::vector<int> u = {int(rng.uniformInt(2, 8)),
                              int(rng.uniformInt(2, 9)),
                              int(rng.uniformInt(2, 8))};
        double prev = 0.0;
        for (double load : {0.1, 0.3, 0.5, 0.7, 0.9}) {
            JobSpec job{lcWorkload(name), load};
            double p95 = model.measure(job, u, cfg, rng).p95_ms;
            EXPECT_GE(p95, prev * (1.0 - 1e-9))
                << name << " load " << load;
            prev = p95;
        }
    }
}

} // namespace
} // namespace workloads
} // namespace clite

/**
 * @file
 * Tests for the static reference policies.
 */

#include <gtest/gtest.h>

#include <memory>

#include "baselines/static_policies.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace baselines {
namespace {

platform::SimulatedServer
makeServer()
{
    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("memcached", 0.2),
        workloads::lcJob("img-dnn", 0.2),
        workloads::bgJob("canneal"),
    };
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), jobs,
        std::make_unique<workloads::AnalyticModel>(), 3, 0.0);
}

TEST(EqualShare, SingleSampleEqualDivision)
{
    auto server = makeServer();
    EqualShareController ctl;
    core::ControllerResult r = ctl.run(server);
    EXPECT_EQ(r.samples, 1);
    ASSERT_TRUE(r.best.has_value());
    platform::Allocation equal =
        platform::Allocation::equalShare(3, server.config());
    EXPECT_TRUE(*r.best == equal);
    EXPECT_EQ(ctl.name(), "equal-share");
}

TEST(EqualShare, ScoreConsistentWithDirectEvaluation)
{
    auto server = makeServer();
    EqualShareController ctl;
    core::ControllerResult r = ctl.run(server);
    double direct = core::score(server.observeNoiseless(*r.best));
    EXPECT_NEAR(r.best_score, direct, 1e-9); // noise disabled
}

} // namespace
} // namespace baselines
} // namespace clite

/**
 * @file
 * Unit tests for the comparison policies (ORACLE, PARTIES, Heracles,
 * RAND+, GENETIC).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "baselines/genetic.h"
#include "baselines/heracles.h"
#include "baselines/oracle.h"
#include "baselines/parties.h"
#include "baselines/random_plus.h"
#include "common/error.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace baselines {
namespace {

platform::SimulatedServer
makeServer(std::vector<workloads::JobSpec> jobs, uint64_t seed = 5,
           double noise = 0.02)
{
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), std::move(jobs),
        std::make_unique<workloads::AnalyticModel>(), seed, noise);
}

std::vector<workloads::JobSpec>
easyMix()
{
    return {workloads::lcJob("img-dnn", 0.2),
            workloads::lcJob("memcached", 0.2),
            workloads::bgJob("swaptions")};
}

TEST(Oracle, MatchesDirectExhaustiveSearchOnTinySpace)
{
    // 2 jobs on the testbed: 9*10*9 = 810 configurations; verify the
    // memoized oracle against a plain scan.
    auto jobs = std::vector<workloads::JobSpec>{
        workloads::lcJob("memcached", 0.4), workloads::bgJob("canneal")};
    auto server = makeServer(jobs, 7, 0.0);

    OracleController oracle;
    core::ControllerResult r = oracle.run(server);
    EXPECT_EQ(r.samples, 810);

    double best = -1.0;
    platform::Allocation cur(2, server.config());
    for (int c = 1; c <= 9; ++c)
        for (int w = 1; w <= 10; ++w)
            for (int b = 1; b <= 9; ++b) {
                cur.set(0, 0, c);
                cur.set(1, 0, 10 - c);
                cur.set(0, 1, w);
                cur.set(1, 1, 11 - w);
                cur.set(0, 2, b);
                cur.set(1, 2, 10 - b);
                double s =
                    core::score(server.observeNoiseless(cur));
                best = std::max(best, s);
            }
    EXPECT_NEAR(r.best_score, best, 1e-9);
}

TEST(Oracle, EnumerationCapEnforced)
{
    OracleOptions o;
    o.max_configurations = 100;
    OracleController oracle(o);
    auto server = makeServer(easyMix());
    EXPECT_THROW(oracle.run(server), Error);
}

TEST(Oracle, NoBgMixOptimizesLcPerformance)
{
    auto server = makeServer({workloads::lcJob("img-dnn", 0.2),
                              workloads::lcJob("memcached", 0.2)},
                             3, 0.0);
    OracleController oracle;
    core::ControllerResult r = oracle.run(server);
    EXPECT_TRUE(r.feasible);
    EXPECT_GT(r.best_score, 0.5);
}

TEST(Parties, ReachesQosOnEasyMix)
{
    auto server = makeServer(easyMix());
    PartiesController parties;
    core::ControllerResult r = parties.run(server);
    ASSERT_TRUE(r.best.has_value());
    EXPECT_TRUE(r.feasible);
}

TEST(Parties, StartsFromEqualShare)
{
    auto server = makeServer(easyMix());
    PartiesController parties;
    core::ControllerResult r = parties.run(server);
    platform::Allocation equal =
        platform::Allocation::equalShare(3, server.config());
    ASSERT_FALSE(r.trace.empty());
    EXPECT_TRUE(r.trace[0].alloc == equal);
}

TEST(Parties, SingleResourceStepsBetweenSamples)
{
    // PARTIES is coordinate descent: successive configurations differ
    // by at most one unit moved within one resource.
    auto server = makeServer({workloads::lcJob("img-dnn", 0.4),
                              workloads::lcJob("masstree", 0.4),
                              workloads::bgJob("streamcluster")});
    PartiesController parties;
    core::ControllerResult r = parties.run(server);
    for (size_t i = 1; i < r.trace.size(); ++i) {
        int diff_units = 0;
        for (size_t j = 0; j < 3; ++j)
            for (size_t res = 0; res < 3; ++res)
                diff_units += std::abs(r.trace[i].alloc.get(j, res) -
                                       r.trace[i - 1].alloc.get(j, res));
        EXPECT_LE(diff_units, 2) << "step " << i;
    }
}

TEST(Parties, RespectsSampleBudget)
{
    PartiesOptions o;
    o.max_samples = 17;
    auto server = makeServer({workloads::lcJob("img-dnn", 0.9),
                              workloads::lcJob("masstree", 0.9),
                              workloads::lcJob("memcached", 0.9)});
    PartiesController parties(o);
    core::ControllerResult r = parties.run(server);
    EXPECT_LE(r.samples, 17);
}

TEST(Heracles, ServesPrimaryLcJobOnly)
{
    // Primary (first LC) gets its QoS; the second LC job is treated as
    // best-effort and typically starves at a demanding load.
    auto server = makeServer({workloads::lcJob("img-dnn", 0.5),
                              workloads::lcJob("masstree", 0.6),
                              workloads::bgJob("swaptions")},
                             11, 0.0);
    HeraclesController heracles;
    core::ControllerResult r = heracles.run(server);
    ASSERT_TRUE(r.best.has_value());
    auto truth = server.observeNoiseless(*r.best);
    EXPECT_TRUE(truth[0].qosMet());
    EXPECT_FALSE(truth[1].qosMet());
}

TEST(Heracles, NeedsAnLcJob)
{
    auto server = makeServer({workloads::bgJob("canneal"),
                              workloads::bgJob("swaptions")});
    HeraclesController heracles;
    EXPECT_THROW(heracles.run(server), Error);
}

TEST(RandomPlus, HonoursBudgetAndDistanceFilter)
{
    RandomPlusOptions o;
    o.budget = 30;
    o.min_distance = 0.05;
    auto server = makeServer(easyMix());
    RandomPlusController rp(o);
    core::ControllerResult r = rp.run(server);
    EXPECT_EQ(r.samples, 30);
    // Pairwise distances respect the filter (allowing the documented
    // relaxation fallback: count violations, expect none here).
    int violations = 0;
    for (size_t i = 0; i < r.trace.size(); ++i)
        for (size_t j = 0; j < i; ++j) {
            auto a = r.trace[i].alloc.flattenNormalized();
            auto b = r.trace[j].alloc.flattenNormalized();
            double d2 = 0.0;
            for (size_t k = 0; k < a.size(); ++k)
                d2 += (a[k] - b[k]) * (a[k] - b[k]);
            if (std::sqrt(d2) < o.min_distance)
                ++violations;
        }
    EXPECT_EQ(violations, 0);
}

TEST(Genetic, HonoursBudgetAndImprovesOverInit)
{
    GeneticOptions o;
    o.budget = 40;
    o.population = 8;
    auto server = makeServer(easyMix());
    GeneticController ga(o);
    core::ControllerResult r = ga.run(server);
    EXPECT_EQ(r.samples, 40);
    double best_init = 0.0;
    for (int i = 0; i < o.population; ++i)
        best_init = std::max(best_init, r.trace[size_t(i)].score);
    EXPECT_GE(r.best_score, best_init);
}

TEST(Genetic, ChildrenAreValidAllocations)
{
    auto server = makeServer(easyMix());
    GeneticController ga;
    core::ControllerResult r = ga.run(server);
    for (const auto& rec : r.trace)
        EXPECT_TRUE(rec.alloc.valid());
}

TEST(Baselines, OptionValidation)
{
    PartiesOptions p;
    p.max_samples = 0;
    EXPECT_THROW(PartiesController c(p), Error);
    RandomPlusOptions rp;
    rp.budget = 0;
    EXPECT_THROW(RandomPlusController c(rp), Error);
    GeneticOptions g;
    g.population = 1;
    EXPECT_THROW(GeneticController c(g), Error);
    g = GeneticOptions{};
    g.budget = 2;
    EXPECT_THROW(GeneticController c(g), Error);
    HeraclesOptions h;
    h.max_samples = 0;
    EXPECT_THROW(HeraclesController c(h), Error);
}

TEST(Baselines, OracleDominatesEveryHeuristicOnTruth)
{
    // The defining property of ORACLE: nothing beats it on the
    // noise-free score (tested on a small mix for speed).
    auto jobs = std::vector<workloads::JobSpec>{
        workloads::lcJob("memcached", 0.3), workloads::bgJob("freqmine")};

    auto server_oracle = makeServer(jobs, 3, 0.0);
    double oracle_score = OracleController().run(server_oracle).best_score;

    for (int which = 0; which < 3; ++which) {
        auto server = makeServer(jobs, 3, 0.02);
        std::unique_ptr<core::Controller> ctl;
        if (which == 0)
            ctl = std::make_unique<PartiesController>();
        else if (which == 1)
            ctl = std::make_unique<RandomPlusController>();
        else
            ctl = std::make_unique<GeneticController>();
        core::ControllerResult r = ctl->run(server);
        double truth = core::score(server.observeNoiseless(*r.best));
        EXPECT_LE(truth, oracle_score + 1e-9) << ctl->name();
    }
}

} // namespace
} // namespace baselines
} // namespace clite

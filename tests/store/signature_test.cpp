/**
 * @file
 * Job-mix signature tests: order independence, structural sensitivity,
 * the distance metric, and stable key formatting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "platform/server.h"
#include "store/signature.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace store {
namespace {

std::vector<workloads::JobSpec>
mixA()
{
    return {
        workloads::lcJob("img-dnn", 0.3),
        workloads::lcJob("memcached", 0.2),
        workloads::bgJob("fluidanimate"),
    };
}

TEST(MixSignature, JobOrderDoesNotMatter)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    std::vector<workloads::JobSpec> jobs = mixA();
    MixSignature a = MixSignature::of(config, jobs);
    std::reverse(jobs.begin(), jobs.end());
    MixSignature b = MixSignature::of(config, jobs);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.key(), b.key());
    EXPECT_EQ(MixSignature::distance(a, b), 0.0);
}

TEST(MixSignature, ServerAndConfigPathsAgree)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    std::vector<workloads::JobSpec> jobs = mixA();
    platform::SimulatedServer server(
        config, jobs, std::make_unique<workloads::AnalyticModel>(), 7, 0.0);
    EXPECT_TRUE(MixSignature::of(server) == MixSignature::of(config, jobs));
}

TEST(MixSignature, EveryDescriptorFieldChangesTheHash)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    MixSignature base = MixSignature::of(config, mixA());

    std::vector<workloads::JobSpec> other = mixA();
    other[0] = workloads::lcJob("xapian", 0.3); // name
    EXPECT_NE(base.hash(), MixSignature::of(config, other).hash());

    other = mixA();
    other[0].load_fraction = 0.31; // load level
    EXPECT_NE(base.hash(), MixSignature::of(config, other).hash());

    other = mixA();
    other[0].profile.qos_p95_ms *= 2.0; // QoS target
    EXPECT_NE(base.hash(), MixSignature::of(config, other).hash());

    // Knob space: the 6-resource config is a different signature even
    // for the identical job multiset.
    platform::ServerConfig all6 =
        platform::ServerConfig::xeonSilver4114AllResources();
    EXPECT_NE(base.hash(), MixSignature::of(all6, mixA()).hash());
}

TEST(MixSignature, DistanceSumsLoadDeltasOverCanonicalPairing)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    MixSignature a = MixSignature::of(config, mixA());

    std::vector<workloads::JobSpec> drifted = mixA();
    drifted[0].load_fraction = 0.4; // +0.1
    drifted[1].load_fraction = 0.15; // -0.05
    MixSignature b = MixSignature::of(config, drifted);
    EXPECT_NEAR(MixSignature::distance(a, b), 0.15, 1e-12);
    EXPECT_NEAR(MixSignature::distance(b, a), 0.15, 1e-12);
}

TEST(MixSignature, StructuralMismatchIsInfinitelyFar)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    MixSignature a = MixSignature::of(config, mixA());
    const double inf = std::numeric_limits<double>::infinity();

    std::vector<workloads::JobSpec> other = mixA();
    other[0] = workloads::lcJob("xapian", 0.3);
    EXPECT_EQ(MixSignature::distance(a, MixSignature::of(config, other)),
              inf);

    other = mixA();
    other.push_back(workloads::bgJob("canneal"));
    EXPECT_EQ(MixSignature::distance(a, MixSignature::of(config, other)),
              inf);

    platform::ServerConfig all6 =
        platform::ServerConfig::xeonSilver4114AllResources();
    EXPECT_EQ(MixSignature::distance(a, MixSignature::of(all6, mixA())),
              inf);
}

TEST(MixSignature, KeyIsFixedWidthHex)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    MixSignature a = MixSignature::of(config, mixA());
    EXPECT_EQ(a.key().size(), 16u);
    EXPECT_EQ(a.key().find_first_not_of("0123456789abcdef"),
              std::string::npos);
    EXPECT_FALSE(a.describe().empty());
}

TEST(MixSignature, EmptyTraceKindLeavesStaticHashesUntouched)
{
    // The trace fields are folded into the hash only when set: a
    // static mix hashes identically whatever trace_mean_load happens
    // to hold, so every pre-trace store key and golden is preserved.
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    MixSignature base = MixSignature::of(config, mixA());
    std::vector<workloads::JobSpec> stale = mixA();
    stale[0].trace_mean_load = 0.77; // ignored without a trace_kind
    EXPECT_EQ(base.hash(), MixSignature::of(config, stale).hash());
    EXPECT_TRUE(base == MixSignature::of(config, stale));
}

TEST(MixSignature, TracedJobsGetDistinctKeysPerTraceShape)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    MixSignature untraced = MixSignature::of(config, mixA());

    std::vector<workloads::JobSpec> flash = mixA();
    flash[0].trace_kind = "flash-crowd";
    flash[0].trace_mean_load = 0.3;
    std::vector<workloads::JobSpec> diurnal = mixA();
    diurnal[0].trace_kind = "jittered-diurnal";
    diurnal[0].trace_mean_load = 0.3;

    MixSignature f = MixSignature::of(config, flash);
    MixSignature d = MixSignature::of(config, diurnal);
    EXPECT_NE(untraced.hash(), f.hash());
    EXPECT_NE(untraced.hash(), d.hash());
    EXPECT_NE(f.hash(), d.hash());
    EXPECT_NE(untraced.key(), f.key());
}

TEST(MixSignature, TracedIdentityIsTheTraceMeanNotTheInstantaneousLoad)
{
    // Mid-replay the window load differs from admission: the signature
    // must key on the stable trace mean, or one recurring trace-driven
    // mix would shatter into a distinct store key per window.
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    std::vector<workloads::JobSpec> at_peak = mixA();
    at_peak[0].trace_kind = "flash-crowd";
    at_peak[0].trace_mean_load = 0.3;
    at_peak[0].load_fraction = 0.95; // riding a crowd right now
    std::vector<workloads::JobSpec> at_trough = mixA();
    at_trough[0].trace_kind = "flash-crowd";
    at_trough[0].trace_mean_load = 0.3;
    at_trough[0].load_fraction = 0.1;
    EXPECT_TRUE(MixSignature::of(config, at_peak) ==
                MixSignature::of(config, at_trough));
}

TEST(MixSignature, TraceKindMismatchIsInfinitelyFar)
{
    const double inf = std::numeric_limits<double>::infinity();
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    std::vector<workloads::JobSpec> flash = mixA();
    flash[0].trace_kind = "flash-crowd";
    flash[0].trace_mean_load = 0.3;
    std::vector<workloads::JobSpec> diurnal = flash;
    diurnal[0].trace_kind = "jittered-diurnal";

    // Static vs traced and trace vs trace are structural mismatches;
    // same trace kind at drifted mean load is an ordinary load delta.
    EXPECT_EQ(MixSignature::distance(MixSignature::of(config, mixA()),
                                     MixSignature::of(config, flash)),
              inf);
    EXPECT_EQ(MixSignature::distance(MixSignature::of(config, flash),
                                     MixSignature::of(config, diurnal)),
              inf);
    std::vector<workloads::JobSpec> drifted = flash;
    drifted[0].trace_mean_load = 0.45;
    EXPECT_NEAR(MixSignature::distance(MixSignature::of(config, flash),
                                       MixSignature::of(config, drifted)),
                0.15, 1e-12);
}

} // namespace
} // namespace store
} // namespace clite

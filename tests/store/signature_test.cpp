/**
 * @file
 * Job-mix signature tests: order independence, structural sensitivity,
 * the distance metric, and stable key formatting.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "platform/server.h"
#include "store/signature.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace store {
namespace {

std::vector<workloads::JobSpec>
mixA()
{
    return {
        workloads::lcJob("img-dnn", 0.3),
        workloads::lcJob("memcached", 0.2),
        workloads::bgJob("fluidanimate"),
    };
}

TEST(MixSignature, JobOrderDoesNotMatter)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    std::vector<workloads::JobSpec> jobs = mixA();
    MixSignature a = MixSignature::of(config, jobs);
    std::reverse(jobs.begin(), jobs.end());
    MixSignature b = MixSignature::of(config, jobs);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.key(), b.key());
    EXPECT_EQ(MixSignature::distance(a, b), 0.0);
}

TEST(MixSignature, ServerAndConfigPathsAgree)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    std::vector<workloads::JobSpec> jobs = mixA();
    platform::SimulatedServer server(
        config, jobs, std::make_unique<workloads::AnalyticModel>(), 7, 0.0);
    EXPECT_TRUE(MixSignature::of(server) == MixSignature::of(config, jobs));
}

TEST(MixSignature, EveryDescriptorFieldChangesTheHash)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    MixSignature base = MixSignature::of(config, mixA());

    std::vector<workloads::JobSpec> other = mixA();
    other[0] = workloads::lcJob("xapian", 0.3); // name
    EXPECT_NE(base.hash(), MixSignature::of(config, other).hash());

    other = mixA();
    other[0].load_fraction = 0.31; // load level
    EXPECT_NE(base.hash(), MixSignature::of(config, other).hash());

    other = mixA();
    other[0].profile.qos_p95_ms *= 2.0; // QoS target
    EXPECT_NE(base.hash(), MixSignature::of(config, other).hash());

    // Knob space: the 6-resource config is a different signature even
    // for the identical job multiset.
    platform::ServerConfig all6 =
        platform::ServerConfig::xeonSilver4114AllResources();
    EXPECT_NE(base.hash(), MixSignature::of(all6, mixA()).hash());
}

TEST(MixSignature, DistanceSumsLoadDeltasOverCanonicalPairing)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    MixSignature a = MixSignature::of(config, mixA());

    std::vector<workloads::JobSpec> drifted = mixA();
    drifted[0].load_fraction = 0.4; // +0.1
    drifted[1].load_fraction = 0.15; // -0.05
    MixSignature b = MixSignature::of(config, drifted);
    EXPECT_NEAR(MixSignature::distance(a, b), 0.15, 1e-12);
    EXPECT_NEAR(MixSignature::distance(b, a), 0.15, 1e-12);
}

TEST(MixSignature, StructuralMismatchIsInfinitelyFar)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    MixSignature a = MixSignature::of(config, mixA());
    const double inf = std::numeric_limits<double>::infinity();

    std::vector<workloads::JobSpec> other = mixA();
    other[0] = workloads::lcJob("xapian", 0.3);
    EXPECT_EQ(MixSignature::distance(a, MixSignature::of(config, other)),
              inf);

    other = mixA();
    other.push_back(workloads::bgJob("canneal"));
    EXPECT_EQ(MixSignature::distance(a, MixSignature::of(config, other)),
              inf);

    platform::ServerConfig all6 =
        platform::ServerConfig::xeonSilver4114AllResources();
    EXPECT_EQ(MixSignature::distance(a, MixSignature::of(all6, mixA())),
              inf);
}

TEST(MixSignature, KeyIsFixedWidthHex)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    MixSignature a = MixSignature::of(config, mixA());
    EXPECT_EQ(a.key().size(), 16u);
    EXPECT_EQ(a.key().find_first_not_of("0123456789abcdef"),
              std::string::npos);
    EXPECT_FALSE(a.describe().empty());
}

} // namespace
} // namespace store
} // namespace clite

/**
 * @file
 * Snapshot wire-format tests: bit-exact round trips, the JSON debug
 * dump, the committed-golden format-compatibility check, and the
 * robustness fuzz suite — every truncation, every single-bit flip, a
 * version bump and a zero-length buffer must all yield std::nullopt
 * (clean cold start), never a crash or a partial decode. The fuzz
 * tests run under the ASan/UBSan CI job, so an out-of-bounds read in
 * the decoder fails loudly there.
 *
 * Regenerating the golden after an INTENDED format change (bump
 * kSnapshotVersion first):
 *
 *     CLITE_REGEN_GOLDEN=1 ./tests/test_store
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "store/snapshot.h"

#ifndef CLITE_STORE_GOLDEN_DIR
#error "CLITE_STORE_GOLDEN_DIR must point at tests/store/golden"
#endif

namespace clite {
namespace store {
namespace {

/** A fully-populated snapshot with awkward values (negatives, NaN-free
 *  extremes, empty-name-adjacent strings) to exercise the format. */
Snapshot
makeSnapshot()
{
    Snapshot s;
    s.jobs = {
        {"memcached", true, 1.5, 0.35},
        {"img-dnn", true, 3.0, 0.6},
        {"fluidanimate", false, 0.0, 0.0},
    };
    s.knob_kinds = {0, 1, 2};
    s.knob_units = {10, 11, 2};
    SnapshotSample a;
    a.cells = {4, 4, 1, 3, 4, 1, 3, 3, 1};
    a.score = 1.2345678901234567;
    a.all_qos_met = true;
    SnapshotSample b;
    b.cells = {8, 2, 1, 1, 8, 1, 1, 1, 1};
    b.score = -0.25;
    b.all_qos_met = false;
    s.samples = {a, b};
    s.incumbent = {4, 4, 1, 3, 4, 1, 3, 3, 1};
    s.phase = ControllerPhase::Steady;
    s.incumbent_qos_met = true;
    s.windows = 12345678901ull;
    return s;
}

void
expectEqual(const Snapshot& a, const Snapshot& b)
{
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    for (size_t j = 0; j < a.jobs.size(); ++j) {
        EXPECT_EQ(a.jobs[j].name, b.jobs[j].name);
        EXPECT_EQ(a.jobs[j].is_lc, b.jobs[j].is_lc);
        EXPECT_EQ(a.jobs[j].qos_p95_ms, b.jobs[j].qos_p95_ms);
        EXPECT_EQ(a.jobs[j].load_fraction, b.jobs[j].load_fraction);
    }
    EXPECT_EQ(a.knob_kinds, b.knob_kinds);
    EXPECT_EQ(a.knob_units, b.knob_units);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].cells, b.samples[i].cells);
        EXPECT_EQ(a.samples[i].score, b.samples[i].score);
        EXPECT_EQ(a.samples[i].all_qos_met, b.samples[i].all_qos_met);
    }
    EXPECT_EQ(a.incumbent, b.incumbent);
    EXPECT_EQ(a.phase, b.phase);
    EXPECT_EQ(a.incumbent_qos_met, b.incumbent_qos_met);
    EXPECT_EQ(a.windows, b.windows);
    EXPECT_EQ(a.signature().hash(), b.signature().hash());
}

TEST(Snapshot, RoundTripIsBitExact)
{
    Snapshot s = makeSnapshot();
    std::vector<uint8_t> bytes = encode(s);
    std::optional<Snapshot> back = decode(bytes);
    ASSERT_TRUE(back.has_value());
    expectEqual(s, *back);
    // Re-encoding the decoded snapshot reproduces the bytes exactly —
    // the format has one canonical encoding per snapshot.
    EXPECT_EQ(encode(*back), bytes);
}

TEST(Snapshot, MinimalSnapshotRoundTrips)
{
    Snapshot s;
    s.jobs = {{"memcached", true, 1.5, 0.1}};
    s.knob_kinds = {0};
    s.knob_units = {10};
    std::vector<uint8_t> bytes = encode(s);
    std::optional<Snapshot> back = decode(bytes);
    ASSERT_TRUE(back.has_value());
    expectEqual(s, *back);
}

TEST(Snapshot, JsonDumpMentionsTheInterestingFields)
{
    std::string json = toJson(makeSnapshot());
    EXPECT_NE(json.find("memcached"), std::string::npos);
    EXPECT_NE(json.find("signature"), std::string::npos);
    EXPECT_NE(json.find("samples"), std::string::npos);
    EXPECT_NE(json.find("incumbent"), std::string::npos);
}

TEST(Snapshot, ZeroLengthAndGarbageAreRejected)
{
    EXPECT_FALSE(decode(nullptr, 0).has_value());
    std::vector<uint8_t> junk(3, 0xAB);
    EXPECT_FALSE(decode(junk).has_value());
    junk.assign(64, 0x00);
    EXPECT_FALSE(decode(junk).has_value());
}

TEST(Snapshot, EveryTruncationIsRejected)
{
    std::vector<uint8_t> bytes = encode(makeSnapshot());
    for (size_t len = 0; len < bytes.size(); ++len)
        ASSERT_FALSE(decode(bytes.data(), len).has_value())
            << "truncation to " << len << " of " << bytes.size()
            << " bytes decoded";
}

TEST(Snapshot, EverySingleBitFlipIsRejected)
{
    std::vector<uint8_t> bytes = encode(makeSnapshot());
    for (size_t byte = 0; byte < bytes.size(); ++byte)
        for (int bit = 0; bit < 8; ++bit) {
            std::vector<uint8_t> flipped = bytes;
            flipped[byte] ^= uint8_t(1u << bit);
            ASSERT_FALSE(decode(flipped).has_value())
                << "flip of byte " << byte << " bit " << bit << " decoded";
        }
}

TEST(Snapshot, UnknownVersionIsRejected)
{
    std::vector<uint8_t> bytes = encode(makeSnapshot());
    // Bytes 4..7 are the little-endian version field.
    bytes[4] = uint8_t(kSnapshotVersion + 1);
    EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Snapshot, TrailingGarbageIsRejected)
{
    std::vector<uint8_t> bytes = encode(makeSnapshot());
    bytes.push_back(0x00);
    EXPECT_FALSE(decode(bytes).has_value());
}

// The committed golden pins the wire format: a decoder or encoder
// change that silently breaks compatibility with snapshots written by
// earlier builds fails here, not in production restores.
TEST(Snapshot, CommittedGoldenStillDecodes)
{
    const std::string path =
        std::string(CLITE_STORE_GOLDEN_DIR) + "/snapshot_v1.snap";
    Snapshot expected = makeSnapshot();
    std::vector<uint8_t> bytes = encode(expected);

    if (std::getenv("CLITE_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(out.good()) << "cannot write " << path;
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  std::streamsize(bytes.size()));
        ASSERT_TRUE(out.good());
        GTEST_SKIP() << "regenerated " << path;
    }

    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in.good()) << "missing golden " << path
                           << " (regenerate with CLITE_REGEN_GOLDEN=1)";
    std::vector<uint8_t> golden{std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>()};
    // Byte-identical: today's encoder writes exactly the committed
    // format...
    EXPECT_EQ(golden, bytes);
    // ...and today's decoder reads the committed bytes back losslessly.
    std::optional<Snapshot> back = decode(golden);
    ASSERT_TRUE(back.has_value());
    expectEqual(expected, *back);
}

} // namespace
} // namespace store
} // namespace clite

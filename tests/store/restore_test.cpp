/**
 * @file
 * OnlineManager ⇄ ProfileStore integration: checkpoint-on-window,
 * warm restore on restart (the crash-recovery path), similar-mix
 * seeding, and the cold-start guarantee when the store holds nothing
 * usable. These tests drive the REAL control loop — the same wiring
 * the fleet and the warm_start bench use.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/monitor.h"
#include "store/profile_store.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace store {
namespace {

std::vector<workloads::JobSpec>
mixA(double load0 = 0.3)
{
    return {
        workloads::lcJob("img-dnn", load0),
        workloads::lcJob("memcached", 0.2),
        workloads::bgJob("fluidanimate"),
    };
}

platform::SimulatedServer
makeServer(std::vector<workloads::JobSpec> jobs, uint64_t seed = 5)
{
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), std::move(jobs),
        std::make_unique<workloads::AnalyticModel>(), seed, 0.02);
}

core::CliteOptions
fastClite(uint64_t seed = 1)
{
    core::CliteOptions o;
    o.max_iterations = 12;
    o.polish_iterations = 3;
    o.seed = seed;
    return o;
}

TEST(ManagerStore, CheckpointOnInitializeAndEveryWindow)
{
    ProfileStore store;
    auto server = makeServer(mixA());
    core::OnlineManager manager(server, fastClite(), {}, &store);
    manager.initialize();
    EXPECT_EQ(std::string(manager.warmSource()), "cold");
    EXPECT_EQ(store.size(), 1u);

    std::optional<Snapshot> after_init =
        store.find(MixSignature::of(server));
    ASSERT_TRUE(after_init.has_value());
    EXPECT_EQ(after_init->windows, 0u);

    for (int w = 0; w < 3; ++w)
        manager.tick();
    std::optional<Snapshot> after_ticks =
        store.find(MixSignature::of(server));
    ASSERT_TRUE(after_ticks.has_value());
    EXPECT_EQ(after_ticks->windows, 3u);
    EXPECT_EQ(store.size(), 1u) << "same mix must stay one entry";
}

TEST(ManagerStore, RestartRestoresFromCheckpointAndConvergesFaster)
{
    ProfileStore store;

    // First life: learn the mix and settle.
    auto server1 = makeServer(mixA(), 5);
    core::OnlineManager first(server1, fastClite(1), {}, &store);
    const core::ControllerResult& cold = first.initialize();
    ASSERT_TRUE(cold.feasible);
    for (int w = 0; w < 3; ++w)
        first.tick();

    // "Crash": the manager object is gone; only the store survives.
    // Second life on the same mix (fresh server, different seeds).
    auto server2 = makeServer(mixA(), 6);
    core::OnlineManager second(server2, fastClite(2), {}, &store);
    const core::ControllerResult& warm = second.initialize();
    EXPECT_EQ(std::string(second.warmSource()), "exact");
    ASSERT_TRUE(warm.feasible);

    // The restored incumbent is the first configuration re-evaluated,
    // so the warm run proves feasibility no later than the cold run —
    // typically at its very first sample.
    EXPECT_LE(warm.firstFeasibleSample(), cold.firstFeasibleSample());
    EXPECT_EQ(warm.firstFeasibleSample(), 0);
}

TEST(ManagerStore, SimilarMixSeedsWhenLoadsDrifted)
{
    ProfileStore store;
    auto server1 = makeServer(mixA(0.3), 5);
    core::OnlineManager first(server1, fastClite(1), {}, &store);
    first.initialize();

    // Same jobs at a drifted load: inside the default max_distance.
    auto server2 = makeServer(mixA(0.4), 6);
    core::OnlineManager second(server2, fastClite(2), {}, &store);
    second.initialize();
    EXPECT_EQ(std::string(second.warmSource()), "similar");

    // Far outside the distance bound: cold.
    auto server3 = makeServer(mixA(0.9), 7);
    core::OnlineManager third(server3, fastClite(3), {}, &store);
    third.initialize();
    EXPECT_EQ(std::string(third.warmSource()), "cold");
}

TEST(ManagerStore, ForeignOrNoStoreMeansColdStart)
{
    // No store attached.
    auto server1 = makeServer(mixA(), 5);
    core::OnlineManager bare(server1, fastClite());
    bare.initialize();
    EXPECT_EQ(std::string(bare.warmSource()), "cold");

    // A store holding only an unrelated mix.
    ProfileStore store;
    auto other = makeServer({workloads::lcJob("xapian", 0.5),
                             workloads::bgJob("canneal")},
                            9);
    core::OnlineManager seed_mgr(other, fastClite(1), {}, &store);
    seed_mgr.initialize();

    auto server2 = makeServer(mixA(), 6);
    core::OnlineManager manager(server2, fastClite(2), {}, &store);
    manager.initialize();
    EXPECT_EQ(std::string(manager.warmSource()), "cold");
}

TEST(ManagerStore, PersistedStoreSurvivesProcessRestartShape)
{
    // The full durability path: checkpoint → saveDir → fresh store →
    // loadDir → warm restore, as a restarted process would run it.
    const std::string dir = testing::TempDir() + "clite_restore_test";
    ProfileStore store;
    auto server1 = makeServer(mixA(), 5);
    core::OnlineManager first(server1, fastClite(1), {}, &store);
    first.initialize();
    ASSERT_EQ(store.saveDir(dir), 1u);

    ProfileStore reloaded;
    ASSERT_EQ(reloaded.loadDir(dir), 1u);
    auto server2 = makeServer(mixA(), 6);
    core::OnlineManager second(server2, fastClite(2), {}, &reloaded);
    second.initialize();
    EXPECT_EQ(std::string(second.warmSource()), "exact");
}

TEST(ManagerStore, MixChangeConsultsTheStoreForTheNewMix)
{
    ProfileStore store;

    // Teach the store the FOUR-job mix first.
    std::vector<workloads::JobSpec> four = mixA();
    four.push_back(workloads::bgJob("canneal"));
    auto teacher = makeServer(four, 5);
    core::OnlineManager teach_mgr(teacher, fastClite(1), {}, &store);
    teach_mgr.initialize();

    // A three-job manager grows to the four-job mix: the mix-change
    // re-optimization finds the taught prior.
    auto server = makeServer(mixA(), 6);
    core::OnlineManager manager(server, fastClite(2), {}, &store);
    manager.initialize();
    EXPECT_EQ(std::string(manager.warmSource()), "cold");

    server.addJob(workloads::bgJob("canneal"));
    manager.notifyMixChange();
    core::OnlineManager::Tick t = manager.tick();
    EXPECT_TRUE(t.reoptimized);
    EXPECT_EQ(t.reason, "mix-change");
    EXPECT_EQ(std::string(manager.warmSource()), "exact");
}

TEST(ManagerStore, CrashRecaptureUnderFaultsRestoresFromCheckpoint)
{
    // The fault-tolerant loop keeps checkpointing through glitchy
    // telemetry, and a controller rebuilt after a crash restores from
    // the last checkpoint even when its first life's windows were
    // partly quarantined.
    ProfileStore store;
    auto server = makeServer(mixA(), 5);
    platform::FaultPlan plan;
    plan.dropout_prob = 0.3;
    plan.spike_prob = 0.2;
    server.setFaultInjector(
        std::make_shared<platform::FaultInjector>(plan, 77));

    core::OnlineManager first(server, fastClite(1), {}, &store);
    first.initialize();
    for (int w = 0; w < 6; ++w)
        first.tick();
    ASSERT_EQ(store.size(), 1u);

    auto server2 = makeServer(mixA(), 6);
    core::OnlineManager second(server2, fastClite(2), {}, &store);
    second.initialize();
    EXPECT_EQ(std::string(second.warmSource()), "exact");
}

} // namespace
} // namespace store
} // namespace clite

/**
 * @file
 * Checkpoint-on-window vs the budget layer's mid-window early-abort:
 * an aborted (partial) window must never poison the snapshot. The
 * partial reading proves a violation well enough to cancel the
 * window and advance the violation streak, but it is NOT a completed
 * observation of the incumbent — the checkpointed incumbent QoS
 * state has to keep its last full-window value, exactly as the
 * faulted-window quarantine (restore_test.cpp) already guarantees
 * for dropped/stale telemetry.
 */

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <vector>

#include "core/monitor.h"
#include "store/profile_store.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace store {
namespace {

std::vector<workloads::JobSpec>
mixA(double load0 = 0.3)
{
    return {
        workloads::lcJob("img-dnn", load0),
        workloads::lcJob("memcached", 0.2),
        workloads::bgJob("fluidanimate"),
    };
}

platform::SimulatedServer
makeServer(std::vector<workloads::JobSpec> jobs, uint64_t seed = 5)
{
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), std::move(jobs),
        std::make_unique<workloads::AnalyticModel>(), seed, 0.02);
}

core::CliteOptions
budgetedClite(uint64_t seed = 1)
{
    core::CliteOptions o;
    o.max_iterations = 12;
    o.polish_iterations = 3;
    o.seed = seed;
    o.budget.budget_seconds = 200.0; // roomy: aborts, never exhausts
    return o;
}

/** The store's snapshot for the server's CURRENT mix signature. */
std::optional<Snapshot>
currentSnapshot(ProfileStore& store, platform::SimulatedServer& server)
{
    return store.find(MixSignature::of(server));
}

TEST(BudgetCheckpoint, AbortedWindowDoesNotPoisonSnapshotQos)
{
    ProfileStore store;
    auto server = makeServer(mixA());
    core::MonitorOptions mon;
    mon.violation_patience = 100; // isolate the abort from reoptimize
    core::OnlineManager manager(server, budgetedClite(), mon, &store);
    manager.initialize();

    // Settle one healthy full window: the checkpointed state now says
    // the incumbent met QoS.
    core::OnlineManager::Tick ok = manager.tick();
    ASSERT_TRUE(ok.all_qos_met);
    ASSERT_FALSE(ok.aborted);
    {
        auto snap = currentSnapshot(store, server);
        ASSERT_TRUE(snap.has_value());
        EXPECT_TRUE(snap->incumbent_qos_met);
    }

    // Load spike: the incumbent's partition now violates hard enough
    // that the partial counters prove it a quarter-window in.
    server.setLoad(0, 0.95);
    core::OnlineManager::Tick spike = manager.tick();
    EXPECT_TRUE(spike.aborted);
    EXPECT_FALSE(spike.all_qos_met);
    EXPECT_LT(spike.score, 0.5); // mode-1 partial score
    EXPECT_FALSE(spike.reoptimized);
    EXPECT_EQ(manager.abortedWindows(), 1);

    // The regression: the checkpoint written after the aborted window
    // must still carry the PRE-abort incumbent QoS state. A partial
    // window is not a completed observation — snapshotting its
    // verdict would teach every future warm start that this
    // incumbent fails QoS on the strength of a quarter of a window.
    auto snap = currentSnapshot(store, server);
    ASSERT_TRUE(snap.has_value());
    EXPECT_TRUE(snap->incumbent_qos_met)
        << "early-aborted window poisoned the checkpoint";
}

TEST(BudgetCheckpoint, AbortedWindowsStillDriveReoptimization)
{
    // The abort must not blind the monitor either: consecutive
    // aborted windows advance the violation streak and trigger the
    // qos-violation re-optimization at normal patience.
    ProfileStore store;
    auto server = makeServer(mixA());
    core::MonitorOptions mon;
    mon.violation_patience = 2;
    core::OnlineManager manager(server, budgetedClite(), mon, &store);
    manager.initialize();
    ASSERT_TRUE(manager.tick().all_qos_met);

    // Milder spike than the poison test's: hard enough that the old
    // incumbent's partial tail clearly violates, light enough that a
    // re-optimized partition can serve it.
    server.setLoad(0, 0.7);
    core::OnlineManager::Tick first = manager.tick();
    EXPECT_TRUE(first.aborted);
    EXPECT_FALSE(first.reoptimized);
    core::OnlineManager::Tick second = manager.tick();
    EXPECT_TRUE(second.aborted);
    EXPECT_TRUE(second.reoptimized);
    EXPECT_EQ(second.reason, "qos-violation");
    EXPECT_GT(second.search_samples, 0);
    EXPECT_EQ(manager.reoptimizations(), 1);

    // The re-optimized incumbent handles the spike: the next full
    // window completes and checkpoints honestly.
    core::OnlineManager::Tick after = manager.tick();
    EXPECT_FALSE(after.aborted);
    auto snap = currentSnapshot(store, server);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->incumbent_qos_met, after.all_qos_met);
}

TEST(BudgetCheckpoint, FullViolatingWindowStillUpdatesSnapshotQos)
{
    // Contrast case: WITHOUT the budget layer the same load spike is
    // observed for the full window, and that completed observation
    // legitimately flips the checkpointed QoS state to false. (Proves
    // the abort path above is what preserves it, not some general
    // refusal to record violations.)
    ProfileStore store;
    auto server = makeServer(mixA());
    core::MonitorOptions mon;
    mon.violation_patience = 100;
    core::CliteOptions unbudgeted = budgetedClite();
    unbudgeted.budget.budget_seconds = 0.0;
    core::OnlineManager manager(server, unbudgeted, mon, &store);
    manager.initialize();
    ASSERT_TRUE(manager.tick().all_qos_met);

    server.setLoad(0, 0.95);
    core::OnlineManager::Tick spike = manager.tick();
    EXPECT_FALSE(spike.aborted);
    EXPECT_FALSE(spike.all_qos_met);
    EXPECT_EQ(manager.abortedWindows(), 0);
    EXPECT_EQ(server.partialObserveCount(), 0u);

    auto snap = currentSnapshot(store, server);
    ASSERT_TRUE(snap.has_value());
    EXPECT_FALSE(snap->incumbent_qos_met);
}

} // namespace
} // namespace store
} // namespace clite

/**
 * @file
 * Snapshot ⇄ controller bridge tests: capture fidelity, job-index
 * remapping across differently-ordered servers, the trusted_feasible
 * rules, and the defensive cold-start fallback on every shape
 * mismatch.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/clite.h"
#include "platform/server.h"
#include "store/warm_start.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace store {
namespace {

platform::SimulatedServer
makeServer(std::vector<workloads::JobSpec> jobs, uint64_t seed = 3)
{
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), std::move(jobs),
        std::make_unique<workloads::AnalyticModel>(), seed, 0.0);
}

std::vector<workloads::JobSpec>
mixA()
{
    return {
        workloads::lcJob("img-dnn", 0.3),
        workloads::lcJob("memcached", 0.2),
        workloads::bgJob("fluidanimate"),
    };
}

core::CliteOptions
fastClite()
{
    core::CliteOptions o;
    o.max_iterations = 10;
    o.polish_iterations = 2;
    return o;
}

/** Run a real search and capture its snapshot. */
Snapshot
learnedSnapshot(platform::SimulatedServer& server,
                core::ControllerResult* result_out = nullptr)
{
    core::CliteController clite(fastClite());
    core::ControllerResult result = clite.run(server);
    Snapshot snap = captureSnapshot(server, result, *result.best,
                                    ControllerPhase::Steady,
                                    /*incumbent_qos_met=*/true,
                                    /*windows=*/7, /*max_samples=*/64);
    if (result_out != nullptr)
        *result_out = std::move(result);
    return snap;
}

TEST(WarmStartBridge, CaptureRecordsIncumbentAndUsableSamples)
{
    auto server = makeServer(mixA());
    core::ControllerResult result;
    Snapshot snap = learnedSnapshot(server, &result);

    EXPECT_EQ(snap.jobs.size(), 3u);
    EXPECT_EQ(snap.knob_kinds.size(),
              server.config().resourceCount());
    EXPECT_FALSE(snap.incumbent.empty());
    EXPECT_FALSE(snap.samples.empty());
    EXPECT_LE(snap.samples.size(), result.trace.size());
    EXPECT_EQ(snap.windows, 7u);
    // Best-score-first ordering.
    for (size_t i = 1; i < snap.samples.size(); ++i)
        EXPECT_GE(snap.samples[i - 1].score, snap.samples[i].score);
    EXPECT_EQ(snap.signature().hash(), MixSignature::of(server).hash());
}

TEST(WarmStartBridge, SampleCapKeepsTheBestAndTheIncumbent)
{
    auto server = makeServer(mixA());
    core::CliteController clite(fastClite());
    core::ControllerResult result = clite.run(server);
    Snapshot snap = captureSnapshot(server, result, *result.best,
                                    ControllerPhase::Steady, true, 1,
                                    /*max_samples=*/2);
    EXPECT_LE(snap.samples.size(), 2u);
    EXPECT_FALSE(snap.incumbent.empty());
}

TEST(WarmStartBridge, ExactHitOnSameMixIsTrusted)
{
    auto server = makeServer(mixA());
    Snapshot snap = learnedSnapshot(server);

    core::WarmStart warm =
        warmStartFromSnapshot(snap, server, {}, /*exact=*/true);
    ASSERT_FALSE(warm.empty());
    ASSERT_TRUE(warm.incumbent.has_value());
    EXPECT_TRUE(warm.trusted_feasible);
    EXPECT_LE(int(warm.configs.size()), WarmStartOptions{}.max_configs);
    for (const platform::Allocation& a : warm.configs) {
        EXPECT_TRUE(a.valid());
        EXPECT_NE(a.key(), warm.incumbent->key()); // deduped
    }
}

TEST(WarmStartBridge, RemappingFollowsJobsAcrossServerOrder)
{
    auto server = makeServer(mixA());
    Snapshot snap = learnedSnapshot(server);

    // The same mix hosted in a different server order: rows must
    // follow the jobs, not the indices.
    std::vector<workloads::JobSpec> shuffled = {
        workloads::bgJob("fluidanimate"),
        workloads::lcJob("memcached", 0.2),
        workloads::lcJob("img-dnn", 0.3),
    };
    auto other = makeServer(shuffled, 11);
    core::WarmStart warm =
        warmStartFromSnapshot(snap, other, {}, /*exact=*/true);
    ASSERT_TRUE(warm.incumbent.has_value());

    // snapshot job j lives at server row j on the original server;
    // find each job's new row by descriptor and compare cell-for-cell.
    const platform::Allocation& inc = *warm.incumbent;
    for (size_t sj = 0; sj < snap.jobs.size(); ++sj) {
        size_t row = size_t(-1);
        for (size_t j = 0; j < other.jobCount(); ++j)
            if (other.job(j).profile.name == snap.jobs[sj].name)
                row = j;
        ASSERT_NE(row, size_t(-1));
        for (size_t r = 0; r < inc.resources(); ++r) {
            const size_t nres = inc.resources();
            EXPECT_EQ(inc.get(row, r), snap.incumbent[sj * nres + r])
                << "job " << snap.jobs[sj].name << " knob " << r;
        }
    }
}

TEST(WarmStartBridge, SimilarMixSeedsConfigsButIsNeverTrusted)
{
    auto server = makeServer(mixA());
    Snapshot snap = learnedSnapshot(server);

    std::vector<workloads::JobSpec> drifted = mixA();
    drifted[0].load_fraction = 0.35;
    auto other = makeServer(drifted, 13);
    core::WarmStart warm =
        warmStartFromSnapshot(snap, other, {}, /*exact=*/false);
    ASSERT_FALSE(warm.empty());
    EXPECT_FALSE(warm.trusted_feasible);
}

TEST(WarmStartBridge, NonSteadyOrViolatingPriorsAreNeverTrusted)
{
    auto server = makeServer(mixA());
    Snapshot snap = learnedSnapshot(server);

    Snapshot searching = snap;
    searching.phase = ControllerPhase::Search;
    EXPECT_FALSE(warmStartFromSnapshot(searching, server, {}, true)
                     .trusted_feasible);

    Snapshot degraded = snap;
    degraded.phase = ControllerPhase::Degraded;
    EXPECT_FALSE(warmStartFromSnapshot(degraded, server, {}, true)
                     .trusted_feasible);

    Snapshot violating = snap;
    violating.incumbent_qos_met = false;
    EXPECT_FALSE(warmStartFromSnapshot(violating, server, {}, true)
                     .trusted_feasible);
}

TEST(WarmStartBridge, ShapeMismatchesFallBackToColdStart)
{
    auto server = makeServer(mixA());
    Snapshot snap = learnedSnapshot(server);

    // Different job multiset.
    std::vector<workloads::JobSpec> other_jobs = mixA();
    other_jobs[1] = workloads::lcJob("xapian", 0.2);
    auto swapped = makeServer(other_jobs, 17);
    EXPECT_TRUE(warmStartFromSnapshot(snap, swapped, {}, true).empty());

    // Different job count.
    std::vector<workloads::JobSpec> bigger = mixA();
    bigger.push_back(workloads::bgJob("canneal"));
    auto grown = makeServer(bigger, 19);
    EXPECT_TRUE(warmStartFromSnapshot(snap, grown, {}, true).empty());

    // Different knob space.
    platform::SimulatedServer all6(
        platform::ServerConfig::xeonSilver4114AllResources(), mixA(),
        std::make_unique<workloads::AnalyticModel>(), 23, 0.0);
    EXPECT_TRUE(warmStartFromSnapshot(snap, all6, {}, true).empty());

    // Cells corrupted out of range: that allocation is dropped rather
    // than seeded.
    Snapshot bad = snap;
    bad.incumbent.assign(bad.incumbent.size(), 1000000);
    core::WarmStart warm = warmStartFromSnapshot(bad, server, {}, true);
    EXPECT_FALSE(warm.incumbent.has_value());
    EXPECT_FALSE(warm.trusted_feasible);
}

TEST(WarmStartBridge, WarmSeedsAreAcceptedByTheController)
{
    auto server = makeServer(mixA());
    Snapshot snap = learnedSnapshot(server);
    core::WarmStart warm =
        warmStartFromSnapshot(snap, server, {}, /*exact=*/true);
    ASSERT_FALSE(warm.empty());

    core::CliteController clite(fastClite());
    core::ControllerResult warm_result = clite.runWarm(server, warm);
    EXPECT_TRUE(warm_result.best.has_value());
}

} // namespace
} // namespace store
} // namespace clite

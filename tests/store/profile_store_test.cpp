/**
 * @file
 * ProfileStore tests: exact and k-nearest lookup determinism,
 * last-writer-wins replacement, and directory persistence with
 * corrupt files skipped (never fatal).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <string>
#include <vector>

#include "store/profile_store.h"

namespace clite {
namespace store {
namespace {

/** A synthetic single-LC-job snapshot at @p load on a 2-knob space. */
Snapshot
makeSnapshot(double load, uint64_t windows = 1)
{
    Snapshot s;
    s.jobs = {{"memcached", true, 1.5, load}};
    s.knob_kinds = {0, 1};
    s.knob_units = {10, 11};
    s.incumbent = {5, 6};
    s.phase = ControllerPhase::Steady;
    s.incumbent_qos_met = true;
    s.windows = windows;
    return s;
}

class TempDir
{
  public:
    TempDir()
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("clite_store_test_" + std::to_string(::getpid())))
                    .string();
        std::filesystem::remove_all(path_);
    }
    ~TempDir() { std::filesystem::remove_all(path_); }
    const std::string& path() const { return path_; }

  private:
    std::string path_;
};

TEST(ProfileStore, FindReturnsExactHitOnly)
{
    ProfileStore store;
    Snapshot a = makeSnapshot(0.3);
    store.put(a);
    EXPECT_EQ(store.size(), 1u);

    EXPECT_TRUE(store.find(a.signature()).has_value());
    EXPECT_FALSE(store.find(makeSnapshot(0.4).signature()).has_value());
}

TEST(ProfileStore, PutReplacesTheSameMix)
{
    ProfileStore store;
    store.put(makeSnapshot(0.3, 1));
    store.put(makeSnapshot(0.3, 99));
    EXPECT_EQ(store.size(), 1u);
    std::optional<Snapshot> got = store.find(makeSnapshot(0.3).signature());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->windows, 99u);
}

TEST(ProfileStore, NearestRanksByDistanceAndSkipsForeignMixes)
{
    ProfileStore store;
    store.put(makeSnapshot(0.30));
    store.put(makeSnapshot(0.50));
    store.put(makeSnapshot(0.90));
    Snapshot foreign;
    foreign.jobs = {{"xapian", true, 8.0, 0.4}};
    foreign.knob_kinds = {0, 1};
    foreign.knob_units = {10, 11};
    store.put(foreign);

    MixSignature query = makeSnapshot(0.45).signature();
    std::vector<Neighbor> near = store.nearest(query, 10);
    ASSERT_EQ(near.size(), 3u) << "foreign mix must not be a neighbor";
    EXPECT_NEAR(near[0].distance, 0.05, 1e-12);
    EXPECT_NEAR(near[1].distance, 0.15, 1e-12);
    EXPECT_NEAR(near[2].distance, 0.45, 1e-12);
    EXPECT_EQ(near[0].snapshot.jobs[0].load_fraction, 0.50);

    // k truncates after ranking.
    EXPECT_EQ(store.nearest(query, 1).size(), 1u);
    EXPECT_NEAR(store.nearest(query, 1)[0].distance, 0.05, 1e-12);

    // An exact hit ranks first at distance 0.
    store.put(makeSnapshot(0.45));
    EXPECT_EQ(store.nearest(query, 1)[0].distance, 0.0);
}

TEST(ProfileStore, SaveAndLoadDirectoryRoundTrips)
{
    TempDir dir;
    ProfileStore store;
    store.put(makeSnapshot(0.3, 5));
    store.put(makeSnapshot(0.6, 6));
    EXPECT_EQ(store.saveDir(dir.path()), 2u);

    ProfileStore loaded;
    EXPECT_EQ(loaded.loadDir(dir.path()), 2u);
    EXPECT_EQ(loaded.size(), 2u);
    std::optional<Snapshot> got =
        loaded.find(makeSnapshot(0.3).signature());
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->windows, 5u);
    EXPECT_EQ(loaded.corruptRejected(), 0u);
}

TEST(ProfileStore, CorruptFilesAreSkippedAndCounted)
{
    TempDir dir;
    ProfileStore store;
    store.put(makeSnapshot(0.3, 5));
    ASSERT_EQ(store.saveDir(dir.path()), 1u);

    // One truncated copy, one garbage file alongside the good one.
    {
        std::ifstream in(dir.path() + "/" +
                             makeSnapshot(0.3).signature().key() + ".snap",
                         std::ios::binary);
        std::vector<char> bytes{std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>()};
        std::ofstream trunc(dir.path() + "/0000000000000001.snap",
                            std::ios::binary);
        trunc.write(bytes.data(), std::streamsize(bytes.size() / 2));
        std::ofstream junk(dir.path() + "/0000000000000002.snap",
                           std::ios::binary);
        junk << "not a snapshot";
    }

    ProfileStore loaded;
    EXPECT_EQ(loaded.loadDir(dir.path()), 1u);
    EXPECT_EQ(loaded.size(), 1u);
    EXPECT_EQ(loaded.corruptRejected(), 2u);
}

TEST(ProfileStore, MissingDirectoryLoadsNothing)
{
    ProfileStore store;
    EXPECT_EQ(store.loadDir("/nonexistent/clite/store/dir"), 0u);
    EXPECT_EQ(store.size(), 0u);
}

// --- Lifecycle: LRU cap and staleness decay ------------------------

TEST(ProfileStore, CapEvictsLeastRecentlyPut)
{
    ProfileStoreOptions options;
    options.max_entries = 2;
    ProfileStore store(options);
    Snapshot a = makeSnapshot(0.2);
    Snapshot b = makeSnapshot(0.3);
    Snapshot c = makeSnapshot(0.4);
    store.put(a);
    store.put(b);
    store.put(c); // cap 2: the oldest put (a) must go
    EXPECT_EQ(store.size(), 2u);
    EXPECT_EQ(store.evictions(), 1u);
    EXPECT_FALSE(store.find(a.signature()).has_value());
    EXPECT_TRUE(store.find(b.signature()).has_value());
    EXPECT_TRUE(store.find(c.signature()).has_value());
}

TEST(ProfileStore, RePutRefreshesRecency)
{
    ProfileStoreOptions options;
    options.max_entries = 2;
    ProfileStore store(options);
    Snapshot a = makeSnapshot(0.2);
    Snapshot b = makeSnapshot(0.3);
    store.put(a);
    store.put(b);
    store.put(a); // refresh: b is now the coldest
    store.put(makeSnapshot(0.4));
    EXPECT_TRUE(store.find(a.signature()).has_value());
    EXPECT_FALSE(store.find(b.signature()).has_value());
}

TEST(ProfileStore, ReadsDoNotRefreshRecency)
{
    // LRU on writes only: a read must not promote an entry, or the
    // parallel-phase reads of the fleet would make eviction order (and
    // therefore warm-start state) depend on thread scheduling.
    ProfileStoreOptions options;
    options.max_entries = 2;
    ProfileStore store(options);
    Snapshot a = makeSnapshot(0.2);
    Snapshot b = makeSnapshot(0.3);
    store.put(a);
    store.put(b);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(store.find(a.signature()).has_value());
    store.put(makeSnapshot(0.4)); // a is still the coldest
    EXPECT_FALSE(store.find(a.signature()).has_value());
    EXPECT_TRUE(store.find(b.signature()).has_value());
}

TEST(ProfileStore, StalenessDemotesTrustedSteadyToSearch)
{
    ProfileStoreOptions options;
    options.trust_staleness = 2;
    ProfileStore store(options);
    Snapshot a = makeSnapshot(0.2);
    ASSERT_EQ(a.phase, ControllerPhase::Steady);
    store.put(a);
    // One write later the entry is within its trust horizon.
    store.put(makeSnapshot(0.3));
    EXPECT_EQ(store.find(a.signature())->phase, ControllerPhase::Steady);
    // Two more writes push it past the horizon: served demoted, so
    // warm starts keep the samples but lose trusted_feasible.
    store.put(makeSnapshot(0.4));
    store.put(makeSnapshot(0.5));
    EXPECT_EQ(store.find(a.signature())->phase, ControllerPhase::Search);
    // The stored entry itself is untouched: a re-put restores trust.
    store.put(a);
    EXPECT_EQ(store.find(a.signature())->phase, ControllerPhase::Steady);
}

TEST(ProfileStore, ZeroOptionsPreserveLegacyBehavior)
{
    ProfileStore store; // max_entries = 0, trust_staleness = 0
    Snapshot a = makeSnapshot(0.2);
    store.put(a);
    for (double load : {0.3, 0.4, 0.5, 0.6, 0.7})
        store.put(makeSnapshot(load));
    EXPECT_EQ(store.size(), 6u);
    EXPECT_EQ(store.evictions(), 0u);
    EXPECT_EQ(store.find(a.signature())->phase, ControllerPhase::Steady);
}

TEST(ProfileStore, ClearResetsLifecycleCounters)
{
    ProfileStoreOptions options;
    options.max_entries = 1;
    ProfileStore store(options);
    store.put(makeSnapshot(0.2));
    store.put(makeSnapshot(0.3));
    EXPECT_EQ(store.evictions(), 1u);
    store.clear();
    EXPECT_EQ(store.size(), 0u);
    EXPECT_EQ(store.evictions(), 0u);
}

} // namespace
} // namespace store
} // namespace clite

/**
 * @file
 * Unit tests for the projected-gradient constrained maximizer (the
 * SLSQP stand-in that optimizes CLITE's acquisition under Eq. 5–6).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "opt/projected_gradient.h"

namespace clite {
namespace opt {
namespace {

SimplexBlock
block(std::vector<size_t> idx, double total, double lo, double hi)
{
    SimplexBlock b;
    b.indices = std::move(idx);
    b.total = total;
    b.lo.assign(b.indices.size(), lo);
    b.hi.assign(b.indices.size(), hi);
    return b;
}

TEST(ProjectedGradient, MaximizesConcaveQuadraticOnSimplex)
{
    // maximize -(x0-3)^2 - (x1-1)^2 subject to x0+x1 = 4, 0.5<=xi<=3.5.
    // Unconstrained optimum (3,1) lies on the constraint: optimal.
    ProjectedGradientOptimizer opt({block({0, 1}, 4.0, 0.5, 3.5)}, 2);
    auto f = [](const std::vector<double>& x) {
        return -(x[0] - 3.0) * (x[0] - 3.0) - (x[1] - 1.0) * (x[1] - 1.0);
    };
    PgResult r = opt.maximize(f, {2.0, 2.0});
    EXPECT_NEAR(r.x[0], 3.0, 1e-2);
    EXPECT_NEAR(r.x[1], 1.0, 1e-2);
}

TEST(ProjectedGradient, ActiveConstraintOptimum)
{
    // maximize x0 subject to x0+x1 = 4, 1<=xi<=3: optimum x0=3.
    ProjectedGradientOptimizer opt({block({0, 1}, 4.0, 1.0, 3.0)}, 2);
    auto f = [](const std::vector<double>& x) { return x[0]; };
    PgResult r = opt.maximize(f, {2.0, 2.0});
    EXPECT_NEAR(r.x[0], 3.0, 1e-3);
    EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(ProjectedGradient, TwoIndependentBlocks)
{
    // Two resources: block {0,1} sums to 4, block {2,3} sums to 6.
    ProjectedGradientOptimizer opt(
        {block({0, 1}, 4.0, 1.0, 3.0), block({2, 3}, 6.0, 1.0, 5.0)}, 4);
    auto f = [](const std::vector<double>& x) {
        return -(x[0] - 2.5) * (x[0] - 2.5) - (x[2] - 4.5) * (x[2] - 4.5);
    };
    PgResult r = opt.maximize(f, {1.0, 3.0, 1.0, 5.0});
    EXPECT_NEAR(r.x[0], 2.5, 1e-2);
    EXPECT_NEAR(r.x[1], 1.5, 1e-2);
    EXPECT_NEAR(r.x[2], 4.5, 1e-2);
    EXPECT_NEAR(r.x[3], 1.5, 1e-2);
}

TEST(ProjectedGradient, UncoveredCoordinatesHeldFixed)
{
    // Coordinate 2 is in no block: must stay at its start value.
    ProjectedGradientOptimizer opt({block({0, 1}, 4.0, 1.0, 3.0)}, 3);
    auto f = [](const std::vector<double>& x) {
        return x[0] + 10.0 * x[2];
    };
    PgResult r = opt.maximize(f, {2.0, 2.0, 0.7});
    EXPECT_DOUBLE_EQ(r.x[2], 0.7);
}

TEST(ProjectedGradient, ProjectMakesArbitraryPointFeasible)
{
    ProjectedGradientOptimizer opt({block({0, 1, 2}, 9.0, 1.0, 5.0)}, 3);
    auto x = opt.project({100.0, -50.0, 3.0});
    EXPECT_NEAR(x[0] + x[1] + x[2], 9.0, 1e-7);
    for (double v : x) {
        EXPECT_GE(v, 1.0 - 1e-9);
        EXPECT_LE(v, 5.0 + 1e-9);
    }
}

TEST(ProjectedGradient, MultiStartKeepsBest)
{
    // Bimodal objective on the segment x0+x1=4: peaks at x0=1 (h=1)
    // and x0=3 (h=2). Multi-start from both basins must find x0=3.
    ProjectedGradientOptimizer opt({block({0, 1}, 4.0, 0.5, 3.5)}, 2);
    auto f = [](const std::vector<double>& x) {
        double p1 = std::exp(-10.0 * (x[0] - 1.0) * (x[0] - 1.0));
        double p2 = 2.0 * std::exp(-10.0 * (x[0] - 3.0) * (x[0] - 3.0));
        return p1 + p2;
    };
    PgResult r = opt.maximizeMultiStart(
        f, {{1.0, 3.0}, {3.0, 1.0}, {2.0, 2.0}});
    EXPECT_NEAR(r.x[0], 3.0, 0.05);
    EXPECT_GT(r.value, 1.9);
}

TEST(ProjectedGradient, ValidationErrors)
{
    // Overlapping blocks.
    EXPECT_THROW(ProjectedGradientOptimizer(
                     {block({0, 1}, 4.0, 1.0, 3.0),
                      block({1, 2}, 4.0, 1.0, 3.0)},
                     3),
                 Error);
    // Index out of dimension.
    EXPECT_THROW(ProjectedGradientOptimizer({block({5}, 1.0, 0.0, 2.0)}, 2),
                 Error);
    // Infeasible block.
    EXPECT_THROW(ProjectedGradientOptimizer({block({0, 1}, 10.0, 1.0, 3.0)},
                                            2),
                 Error);
    // Empty multistart.
    ProjectedGradientOptimizer ok({block({0, 1}, 4.0, 1.0, 3.0)}, 2);
    auto f = [](const std::vector<double>&) { return 0.0; };
    EXPECT_THROW(ok.maximizeMultiStart(f, {}), Error);
}

} // namespace
} // namespace opt
} // namespace clite

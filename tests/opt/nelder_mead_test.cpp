/**
 * @file
 * Unit tests for the Nelder-Mead minimizer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "opt/nelder_mead.h"

namespace clite {
namespace opt {
namespace {

TEST(NelderMead, MinimizesShiftedQuadratic)
{
    auto f = [](const std::vector<double>& x) {
        double a = x[0] - 2.0, b = x[1] + 1.0;
        return a * a + 3.0 * b * b + 5.0;
    };
    NmResult r = nelderMeadMinimize(f, {0.0, 0.0});
    EXPECT_NEAR(r.x[0], 2.0, 1e-3);
    EXPECT_NEAR(r.x[1], -1.0, 1e-3);
    EXPECT_NEAR(r.value, 5.0, 1e-5);
    EXPECT_GT(r.evaluations, 0);
}

TEST(NelderMead, MinimizesRosenbrock)
{
    auto rosen = [](const std::vector<double>& x) {
        double a = 1.0 - x[0];
        double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
    };
    NmOptions opts;
    opts.max_iters = 2000;
    NmResult r = nelderMeadMinimize(rosen, {-1.2, 1.0}, opts);
    EXPECT_NEAR(r.x[0], 1.0, 1e-2);
    EXPECT_NEAR(r.x[1], 1.0, 2e-2);
}

TEST(NelderMead, OneDimensional)
{
    auto f = [](const std::vector<double>& x) {
        return std::cosh(x[0] - 0.5);
    };
    NmResult r = nelderMeadMinimize(f, {3.0});
    EXPECT_NEAR(r.x[0], 0.5, 1e-3);
}

TEST(NelderMead, HandlesInfiniteRegions)
{
    // Objective is +inf outside |x| < 2; optimum at 1.
    auto f = [](const std::vector<double>& x) {
        if (std::fabs(x[0]) >= 2.0)
            return 1e18;
        double d = x[0] - 1.0;
        return d * d;
    };
    NmResult r = nelderMeadMinimize(f, {0.0});
    EXPECT_NEAR(r.x[0], 1.0, 1e-3);
}

TEST(NelderMead, ConvergesFlagOnEasyProblem)
{
    auto f = [](const std::vector<double>& x) { return x[0] * x[0]; };
    NmOptions opts;
    opts.max_iters = 500;
    NmResult r = nelderMeadMinimize(f, {5.0}, opts);
    EXPECT_TRUE(r.converged);
}

TEST(NelderMead, EmptyStartRejected)
{
    auto f = [](const std::vector<double>&) { return 0.0; };
    EXPECT_THROW(nelderMeadMinimize(f, {}), Error);
}

TEST(NelderMead, RespectsIterationCap)
{
    auto f = [](const std::vector<double>& x) {
        return std::sin(x[0] * 13.0) + x[0] * x[0] * 0.01;
    };
    NmOptions opts;
    opts.max_iters = 3;
    NmResult r = nelderMeadMinimize(f, {10.0}, opts);
    EXPECT_LE(r.iterations, 3);
}

} // namespace
} // namespace opt
} // namespace clite

/**
 * @file
 * Unit and property tests for the simplex-box projection and integer
 * rounding (the Eq. 5–6 constraint machinery).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/error.h"
#include "common/rng.h"
#include "opt/simplex.h"

namespace clite {
namespace opt {
namespace {

double
sum(const std::vector<double>& v)
{
    return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(SimplexFeasible, DetectsEmptyAndNonEmptySets)
{
    EXPECT_TRUE(simplexBoxFeasible(5.0, {1, 1, 1}, {3, 3, 3}));
    EXPECT_TRUE(simplexBoxFeasible(3.0, {1, 1, 1}, {3, 3, 3})); // all-lo
    EXPECT_TRUE(simplexBoxFeasible(9.0, {1, 1, 1}, {3, 3, 3})); // all-hi
    EXPECT_FALSE(simplexBoxFeasible(2.0, {1, 1, 1}, {3, 3, 3}));
    EXPECT_FALSE(simplexBoxFeasible(10.0, {1, 1, 1}, {3, 3, 3}));
}

TEST(Projection, FeasiblePointIsFixed)
{
    std::vector<double> y = {2.0, 1.5, 1.5};
    auto x = projectSimplexBox(y, 5.0, {1, 1, 1}, {3, 3, 3});
    for (size_t i = 0; i < 3; ++i)
        EXPECT_NEAR(x[i], y[i], 1e-9);
}

TEST(Projection, SatisfiesConstraints)
{
    Rng rng(3);
    for (int rep = 0; rep < 200; ++rep) {
        size_t n = size_t(rng.uniformInt(2, 6));
        std::vector<double> y(n), lo(n, 1.0), hi(n);
        double total = 0.0;
        for (size_t i = 0; i < n; ++i) {
            y[i] = rng.uniform(-5.0, 15.0);
            hi[i] = rng.uniform(2.0, 8.0);
        }
        total = rng.uniform(sum(lo), sum(hi));
        auto x = projectSimplexBox(y, total, lo, hi);
        EXPECT_NEAR(sum(x), total, 1e-7);
        for (size_t i = 0; i < n; ++i) {
            EXPECT_GE(x[i], lo[i] - 1e-9);
            EXPECT_LE(x[i], hi[i] + 1e-9);
        }
    }
}

TEST(Projection, IsIdempotent)
{
    Rng rng(5);
    std::vector<double> y = {9.0, -3.0, 4.0, 0.0};
    std::vector<double> lo(4, 1.0), hi(4, 6.0);
    auto x1 = projectSimplexBox(y, 12.0, lo, hi);
    auto x2 = projectSimplexBox(x1, 12.0, lo, hi);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(x2[i], x1[i], 1e-8);
}

TEST(Projection, IsNearestPointVersusGridSearch)
{
    // 2-D case: check optimality against a dense grid on the segment
    // x0 + x1 = 4, 1 <= xi <= 3.
    std::vector<double> y = {3.5, 0.2};
    auto x = projectSimplexBox(y, 4.0, {1, 1}, {3, 3});
    double best = 1e100;
    double best_x0 = 0.0;
    for (double x0 = 1.0; x0 <= 3.0; x0 += 1e-4) {
        double x1 = 4.0 - x0;
        if (x1 < 1.0 || x1 > 3.0)
            continue;
        double d = (x0 - y[0]) * (x0 - y[0]) + (x1 - y[1]) * (x1 - y[1]);
        if (d < best) {
            best = d;
            best_x0 = x0;
        }
    }
    EXPECT_NEAR(x[0], best_x0, 1e-3);
}

TEST(Projection, RejectsInfeasibleOrMalformed)
{
    EXPECT_THROW(projectSimplexBox({1.0, 1.0}, 10.0, {1, 1}, {3, 3}),
                 Error);
    EXPECT_THROW(projectSimplexBox({1.0, 1.0}, 4.0, {1, 1, 1}, {3, 3}),
                 Error);
    EXPECT_THROW(projectSimplexBox({1.0, 1.0}, 4.0, {3, 1}, {1, 3}),
                 Error);
}

class RoundingTest : public ::testing::TestWithParam<int>
{
};

TEST_P(RoundingTest, SumAndBoundsPreserved)
{
    int total = GetParam();
    Rng rng{uint64_t(total)};
    for (int rep = 0; rep < 100; ++rep) {
        size_t n = size_t(rng.uniformInt(2, 5));
        if (total < int(n))
            continue;
        std::vector<int> lo(n, 1), hi(n, total - int(n) + 1);
        // Start from a feasible continuous point plus noise.
        std::vector<double> x(n);
        double remaining = double(total);
        for (size_t i = 0; i < n; ++i) {
            x[i] = remaining / double(n - i) + rng.uniform(-0.4, 0.4);
            remaining -= x[i];
        }
        std::vector<int> out = roundToIntegerComposition(x, total, lo, hi);
        EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), total);
        for (size_t i = 0; i < n; ++i) {
            EXPECT_GE(out[i], lo[i]);
            EXPECT_LE(out[i], hi[i]);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Totals, RoundingTest,
                         ::testing::Values(4, 7, 10, 11, 20));

TEST(Rounding, ExactIntegersPassThrough)
{
    std::vector<double> x = {3.0, 4.0, 3.0};
    auto out = roundToIntegerComposition(x, 10, {1, 1, 1}, {8, 8, 8});
    EXPECT_EQ(out, (std::vector<int>{3, 4, 3}));
}

TEST(Rounding, PinnedCoordinateRespected)
{
    // lo == hi pins a coordinate (dropout-copy's mechanism).
    std::vector<double> x = {2.7, 4.0, 3.3};
    auto out = roundToIntegerComposition(x, 10, {1, 4, 1}, {8, 4, 8});
    EXPECT_EQ(out[1], 4);
    EXPECT_EQ(out[0] + out[1] + out[2], 10);
}

TEST(Rounding, InfeasibleBoxThrows)
{
    std::vector<double> x = {1.0, 1.0};
    EXPECT_THROW(roundToIntegerComposition(x, 10, {1, 1}, {3, 3}), Error);
    EXPECT_THROW(roundToIntegerComposition(x, 1, {1, 1}, {3, 3}), Error);
}

} // namespace
} // namespace opt
} // namespace clite

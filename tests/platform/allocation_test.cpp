/**
 * @file
 * Unit and property tests for the Allocation configuration matrix.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "platform/allocation.h"
#include "stats/sampling.h"

namespace clite {
namespace platform {
namespace {

ServerConfig
testbed()
{
    return ServerConfig::xeonSilver4114();
}

class AllocationJobCount : public ::testing::TestWithParam<size_t>
{
};

TEST_P(AllocationJobCount, EqualShareIsValidAndBalanced)
{
    const size_t njobs = GetParam();
    Allocation a = Allocation::equalShare(njobs, testbed());
    EXPECT_TRUE(a.valid());
    for (size_t r = 0; r < a.resources(); ++r) {
        int lo = a.get(0, r), hi = a.get(0, r);
        for (size_t j = 1; j < njobs; ++j) {
            lo = std::min(lo, a.get(j, r));
            hi = std::max(hi, a.get(j, r));
        }
        EXPECT_LE(hi - lo, 1) << "resource " << r;
    }
}

TEST_P(AllocationJobCount, MaxForGivesExtremumShape)
{
    const size_t njobs = GetParam();
    if (njobs < 2)
        return;
    Allocation a = Allocation::maxFor(1, njobs, testbed());
    EXPECT_TRUE(a.valid());
    for (size_t r = 0; r < a.resources(); ++r) {
        for (size_t j = 0; j < njobs; ++j) {
            if (j == 1)
                EXPECT_EQ(a.get(j, r),
                          a.resourceUnits(r) - int(njobs) + 1);
            else
                EXPECT_EQ(a.get(j, r), 1);
        }
    }
}

TEST_P(AllocationJobCount, FlattenRoundTrip)
{
    const size_t njobs = GetParam();
    Rng rng(njobs * 13);
    Allocation a(njobs, testbed());
    for (size_t r = 0; r < a.resources(); ++r) {
        auto parts = stats::sampleComposition(a.resourceUnits(r),
                                              int(njobs), rng, 1);
        for (size_t j = 0; j < njobs; ++j)
            a.set(j, r, parts[j]);
    }
    a.validate();
    Allocation back = Allocation::fromFlatNormalized(
        a.flattenNormalized(), njobs, testbed());
    EXPECT_TRUE(back == a);
}

INSTANTIATE_TEST_SUITE_P(JobCounts, AllocationJobCount,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Allocation, ValidityDetectsBadSumsAndZeroRows)
{
    Allocation a = Allocation::equalShare(2, testbed());
    EXPECT_TRUE(a.valid());
    a.set(0, 0, a.get(0, 0) + 1); // breaks the column sum
    EXPECT_FALSE(a.valid());
    EXPECT_THROW(a.validate(), Error);
    a.set(0, 0, a.get(0, 0) - 1);
    a.set(1, 1, 0); // below one unit
    a.set(0, 1, a.resourceUnits(1)); // restore sum
    EXPECT_FALSE(a.valid());
}

TEST(Allocation, TransferUnitSemantics)
{
    Allocation a = Allocation::equalShare(2, testbed());
    int before0 = a.get(0, 0), before1 = a.get(1, 0);
    EXPECT_TRUE(a.transferUnit(0, 0, 1));
    EXPECT_EQ(a.get(0, 0), before0 - 1);
    EXPECT_EQ(a.get(1, 0), before1 + 1);
    EXPECT_TRUE(a.valid());

    // Drain job 0 to one unit; further transfers must refuse.
    while (a.get(0, 0) > 1)
        a.transferUnit(0, 0, 1);
    EXPECT_FALSE(a.transferUnit(0, 0, 1));
    EXPECT_TRUE(a.valid());
}

TEST(Allocation, KeyIsCanonicalAndEqualityConsistent)
{
    Allocation a = Allocation::equalShare(2, testbed());
    Allocation b = Allocation::equalShare(2, testbed());
    EXPECT_TRUE(a == b);
    EXPECT_EQ(a.key(), b.key());
    b.transferUnit(0, 0, 1);
    EXPECT_FALSE(a == b);
    EXPECT_NE(a.key(), b.key());
}

TEST(Allocation, FromFlatRepairsNonIntegerPoints)
{
    // A continuous point off the lattice must round to a valid
    // allocation with exact column sums.
    std::vector<double> flat = {0.33, 0.44, 0.21, 0.67, 0.56, 0.79};
    Allocation a = Allocation::fromFlatNormalized(flat, 2, testbed());
    EXPECT_TRUE(a.valid());
}

TEST(Allocation, TooManyJobsRejected)
{
    EXPECT_THROW(Allocation(11, testbed()), Error);
    EXPECT_THROW(Allocation(0, testbed()), Error);
}

TEST(Allocation, FromFlatWrongLengthRejected)
{
    std::vector<double> flat(5, 0.3);
    EXPECT_THROW(Allocation::fromFlatNormalized(flat, 2, testbed()),
                 Error);
}

TEST(Allocation, MaxForOutOfRangeRejected)
{
    EXPECT_THROW(Allocation::maxFor(3, 3, testbed()), Error);
}

TEST(Allocation, WithJobAddedPreservesShapeKnowledge)
{
    // The newcomer takes roughly its fair share from the richest
    // incumbents; existing relative order is preserved and the result
    // satisfies the Eq. 4-6 invariants.
    Allocation a = Allocation::maxFor(0, 3, testbed());
    Allocation b = a.withJobAdded();
    EXPECT_EQ(b.jobs(), 4u);
    EXPECT_TRUE(b.valid());
    for (size_t r = 0; r < b.resources(); ++r) {
        EXPECT_GE(b.get(3, r), 1);
        // Units came out of the favoured job 0, not the 1-unit jobs.
        EXPECT_EQ(b.get(1, r), a.get(1, r));
        EXPECT_EQ(b.get(2, r), a.get(2, r));
    }
}

TEST(Allocation, WithJobRemovedRedistributesToPoorest)
{
    Allocation a = Allocation::maxFor(1, 3, testbed());
    Allocation b = a.withJobRemoved(1);
    EXPECT_EQ(b.jobs(), 2u);
    EXPECT_TRUE(b.valid());
    // All of job 1's units went back to the survivors.
    for (size_t r = 0; r < b.resources(); ++r)
        EXPECT_EQ(b.get(0, r) + b.get(1, r), b.resourceUnits(r));
}

TEST(Allocation, WithJobRemovedKeepsRelativeOrder)
{
    Allocation a = Allocation::equalShare(4, testbed());
    a.transferUnit(0, 0, 3); // make rows distinguishable
    Allocation b = a.withJobRemoved(1);
    EXPECT_EQ(b.jobs(), 3u);
    EXPECT_TRUE(b.valid());
    // Row 0 keeps its (possibly topped-up) units; old rows 2,3 slide
    // down to 1,2 with at least their previous units.
    for (size_t r = 0; r < b.resources(); ++r) {
        EXPECT_GE(b.get(1, r), a.get(2, r));
        EXPECT_GE(b.get(2, r), a.get(3, r));
    }
}

TEST(Allocation, WithJobRemovedRejectsBadIndex)
{
    Allocation a = Allocation::equalShare(2, testbed());
    EXPECT_THROW(a.withJobRemoved(2), Error);
    Allocation single = Allocation::equalShare(1, testbed());
    EXPECT_THROW(single.withJobRemoved(0), Error);
}

TEST(Allocation, AddRemoveRoundTripStaysValid)
{
    Rng rng(77);
    Allocation a = Allocation::equalShare(3, testbed());
    for (int step = 0; step < 30; ++step) {
        Allocation grown = a.withJobAdded();
        ASSERT_TRUE(grown.valid());
        size_t victim =
            size_t(rng.uniformInt(0, int64_t(grown.jobs()) - 1));
        a = grown.withJobRemoved(victim);
        ASSERT_TRUE(a.valid());
        ASSERT_EQ(a.jobs(), 3u);
    }
}

} // namespace
} // namespace platform
} // namespace clite

/**
 * @file
 * Unit tests for the simulated server (apply/observe contract,
 * counters, isolation baselines, noise behaviour).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "platform/server.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace platform {
namespace {

SimulatedServer
makeServer(double noise = 0.0, uint64_t seed = 1)
{
    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("img-dnn", 0.2),
        workloads::lcJob("memcached", 0.2),
        workloads::bgJob("streamcluster"),
    };
    return SimulatedServer(ServerConfig::xeonSilver4114(), jobs,
                           std::make_unique<workloads::AnalyticModel>(),
                           seed, noise);
}

TEST(SimulatedServer, JobClassification)
{
    SimulatedServer s = makeServer();
    EXPECT_EQ(s.jobCount(), 3u);
    EXPECT_EQ(s.lcJobs(), (std::vector<size_t>{0, 1}));
    EXPECT_EQ(s.bgJobs(), (std::vector<size_t>{2}));
    EXPECT_EQ(s.modelName(), "analytic");
}

TEST(SimulatedServer, ObservationShapeAndFields)
{
    SimulatedServer s = makeServer();
    auto obs = s.observe();
    ASSERT_EQ(obs.size(), 3u);
    EXPECT_TRUE(obs[0].is_lc);
    EXPECT_EQ(obs[0].job_name, "img-dnn");
    EXPECT_GT(obs[0].p95_ms, 0.0);
    EXPECT_GT(obs[0].qos_target_ms, 0.0);
    EXPECT_GT(obs[0].iso_p95_ms, 0.0);
    EXPECT_FALSE(obs[2].is_lc);
    EXPECT_GT(obs[2].throughput, 0.0);
    EXPECT_GT(obs[2].iso_throughput, 0.0);
}

TEST(SimulatedServer, CountersTrackApplyAndObserve)
{
    SimulatedServer s = makeServer();
    EXPECT_EQ(s.applyCount(), 0u);
    Allocation a = Allocation::equalShare(3, s.config());
    s.apply(a);
    EXPECT_EQ(s.applyCount(), 1u);
    s.evaluate(a);
    EXPECT_EQ(s.applyCount(), 2u);
    EXPECT_GE(s.observeCount(), 1u);
    EXPECT_GT(s.totalApplyLatencyMs(), 0.0);
    // Paper: partition-apply overhead < 100 ms per decision.
    EXPECT_LT(s.totalApplyLatencyMs() / double(s.applyCount()), 100.0);
}

TEST(SimulatedServer, NoiselessObservationIsDeterministicAndPure)
{
    SimulatedServer s = makeServer(0.05, 9);
    Allocation a = Allocation::equalShare(3, s.config());
    uint64_t applies = s.applyCount();
    auto o1 = s.observeNoiseless(a);
    auto o2 = s.observeNoiseless(a);
    EXPECT_EQ(s.applyCount(), applies); // no side effects
    for (size_t j = 0; j < o1.size(); ++j) {
        EXPECT_DOUBLE_EQ(o1[j].p95_ms, o2[j].p95_ms);
        EXPECT_DOUBLE_EQ(o1[j].throughput, o2[j].throughput);
    }
}

TEST(SimulatedServer, NoiseVariesAcrossWindowsAndIsUnbiased)
{
    SimulatedServer s = makeServer(0.05, 11);
    Allocation a = Allocation::equalShare(3, s.config());
    s.apply(a);
    double base = s.observeNoiseless(a)[0].p95_ms;
    double sum = 0.0;
    bool varies = false;
    double prev = -1.0;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
        double v = s.observe()[0].p95_ms;
        sum += v;
        if (prev >= 0.0 && v != prev)
            varies = true;
        prev = v;
    }
    EXPECT_TRUE(varies);
    EXPECT_NEAR(sum / n, base, 0.03 * base);
}

TEST(SimulatedServer, PerfNormAndQosSemantics)
{
    JobObservation lc;
    lc.is_lc = true;
    lc.p95_ms = 4.0;
    lc.qos_target_ms = 5.0;
    lc.iso_p95_ms = 3.0;
    EXPECT_TRUE(lc.qosMet());
    EXPECT_NEAR(lc.qosRatio(), 1.25, 1e-12);
    EXPECT_NEAR(lc.perfNorm(), 0.75, 1e-12);
    lc.p95_ms = 6.0;
    EXPECT_FALSE(lc.qosMet());

    JobObservation bg;
    bg.is_lc = false;
    bg.throughput = 400.0;
    bg.iso_throughput = 1000.0;
    EXPECT_TRUE(bg.qosMet()); // BG jobs have no QoS
    EXPECT_NEAR(bg.perfNorm(), 0.4, 1e-12);
}

TEST(SimulatedServer, IsolationBaselineIsMaxAllocationPerf)
{
    SimulatedServer s = makeServer();
    // The baseline equals measuring the job under its maxFor extremum.
    Allocation ext = Allocation::maxFor(2, 3, s.config());
    auto obs = s.observeNoiseless(ext);
    EXPECT_NEAR(s.isolationBaseline(2).throughput, obs[2].throughput,
                1e-9);
}

TEST(SimulatedServer, SetLoadRefreshesBaseline)
{
    SimulatedServer s = makeServer();
    double iso_low = s.isolationBaseline(0).p95_ms;
    s.setLoad(0, 0.9);
    double iso_high = s.isolationBaseline(0).p95_ms;
    EXPECT_GT(iso_high, iso_low);
    EXPECT_THROW(s.setLoad(2, 0.5), Error); // BG job
    EXPECT_THROW(s.setLoad(0, 0.0), Error);
    EXPECT_THROW(s.setLoad(9, 0.5), Error);
}

TEST(SimulatedServer, IsolationSettingsExposeDriverState)
{
    SimulatedServer s = makeServer();
    auto settings = s.isolationSettings(0);
    ASSERT_EQ(settings.size(), s.config().resourceCount());
    EXPECT_NE(settings[0].find("taskset"), std::string::npos);
    EXPECT_NE(settings[1].find("CAT"), std::string::npos);
    EXPECT_NE(settings[2].find("MBA"), std::string::npos);
}

TEST(SimulatedServer, RejectsMalformedApplications)
{
    SimulatedServer s = makeServer();
    Allocation wrong_jobs = Allocation::equalShare(2, s.config());
    EXPECT_THROW(s.apply(wrong_jobs), Error);
    Allocation bad = Allocation::equalShare(3, s.config());
    bad.set(0, 0, bad.get(0, 0) + 1);
    EXPECT_THROW(s.apply(bad), Error);
}

TEST(SimulatedServer, DesBackendWorksEndToEnd)
{
    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("memcached", 0.2),
        workloads::bgJob("swaptions"),
    };
    SimulatedServer s(ServerConfig::xeonSilver4114(), jobs,
                      std::make_unique<workloads::QueueingSimModel>(0.2,
                                                                    0.5),
                      3, 0.0);
    EXPECT_EQ(s.modelName(), "des");
    auto obs = s.observe();
    EXPECT_GT(obs[0].p95_ms, 0.0);
    EXPECT_GT(obs[1].throughput, 0.0);
}

} // namespace
} // namespace platform
} // namespace clite

/**
 * @file
 * Unit tests for the simulated isolation drivers (Table 1 semantics):
 * disjoint covering core ranges, contiguous disjoint CAT masks, MBA
 * percentages, cgroup/qdisc limits.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "platform/isolation.h"

namespace clite {
namespace platform {
namespace {

ServerConfig
full()
{
    return ServerConfig::xeonSilver4114AllResources();
}

TEST(CoreAffinityDriver, RangesAreDisjointAndCoverAllCores)
{
    ServerConfig cfg = full();
    Allocation a = Allocation::equalShare(3, cfg);
    CoreAffinityDriver d;
    d.apply(a, cfg.indexOf(Resource::Cores));
    ASSERT_EQ(d.jobCount(), 3u);
    int next = 0;
    int total = 0;
    for (size_t j = 0; j < 3; ++j) {
        EXPECT_EQ(d.firstCore(j), next);
        next += d.coreCount(j);
        total += d.coreCount(j);
        EXPECT_EQ(d.coreCount(j), a.get(j, cfg.indexOf(Resource::Cores)));
    }
    EXPECT_EQ(total, 10);
    EXPECT_EQ(d.tool(), "taskset");
    EXPECT_NE(d.settingFor(0).find("taskset -c 0-"), std::string::npos);
}

TEST(CacheWayDriver, MasksAreContiguousDisjointAndCover)
{
    ServerConfig cfg = full();
    Allocation a = Allocation::equalShare(4, cfg);
    CacheWayDriver d;
    size_t r = cfg.indexOf(Resource::LlcWays);
    d.apply(a, r);

    uint32_t combined = 0;
    for (size_t j = 0; j < 4; ++j) {
        uint32_t m = d.mask(j);
        EXPECT_NE(m, 0u);
        // Contiguity: m >> trailing zeros is all-ones.
        uint32_t shifted = m >> __builtin_ctz(m);
        EXPECT_EQ((shifted & (shifted + 1)), 0u) << "mask not contiguous";
        EXPECT_EQ(combined & m, 0u) << "masks overlap";
        combined |= m;
        EXPECT_EQ(__builtin_popcount(m), a.get(j, r));
    }
    EXPECT_EQ(__builtin_popcount(combined), 11);
}

TEST(MembwDriver, PercentagesMatchUnits)
{
    ServerConfig cfg = full();
    Allocation a = Allocation::equalShare(2, cfg);
    MembwDriver d;
    size_t r = cfg.indexOf(Resource::MemBandwidth);
    d.apply(a, r);
    EXPECT_EQ(d.percent(0), a.get(0, r) * 10);
    EXPECT_EQ(d.percent(1), a.get(1, r) * 10);
    EXPECT_NE(d.settingFor(0).find("MBA"), std::string::npos);
}

TEST(LimitDriver, LimitsScaleWithUnits)
{
    ServerConfig cfg = full();
    Allocation a = Allocation::equalShare(2, cfg);
    size_t r = cfg.indexOf(Resource::MemCapacity);
    LimitDriver d(Resource::MemCapacity, cfg.resource(r).unit_value, "GB");
    d.apply(a, r);
    EXPECT_DOUBLE_EQ(d.limit(0), a.get(0, r) * 4.6);
    EXPECT_NE(d.settingFor(0).find("memory.limit"), std::string::npos);
}

TEST(LimitDriver, RejectsWrongKinds)
{
    EXPECT_THROW(LimitDriver(Resource::Cores, 1.0, "core"), Error);
    EXPECT_THROW(LimitDriver(Resource::MemCapacity, 0.0, "GB"), Error);
}

TEST(DriverFactory, BuildsMatchingDriverPerResource)
{
    ServerConfig cfg = full();
    for (size_t r = 0; r < cfg.resourceCount(); ++r) {
        auto d = makeDriver(cfg.resource(r));
        ASSERT_NE(d, nullptr);
        EXPECT_EQ(d->resource(), cfg.resource(r).kind);
        EXPECT_EQ(d->tool(), isolationTool(cfg.resource(r).kind));
        EXPECT_GT(d->applyLatencyMs(), 0.0);
    }
}

TEST(Drivers, QueryBeforeApplyThrows)
{
    CoreAffinityDriver cores;
    EXPECT_THROW(cores.settingFor(0), Error);
    CacheWayDriver cat;
    EXPECT_THROW(cat.mask(0), Error);
    MembwDriver mba;
    EXPECT_THROW(mba.percent(0), Error);
}

} // namespace
} // namespace platform
} // namespace clite

/**
 * @file
 * Tests for the fault-injection subsystem: determinism of the
 * counter-keyed decisions, plan validation, and the server-level
 * fault semantics (dropout, frozen counters, spikes, apply failure,
 * knob loss, job crash).
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/error.h"
#include "platform/faults.h"
#include "platform/server.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace platform {
namespace {

SimulatedServer
makeServer(uint64_t seed = 5)
{
    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("img-dnn", 0.2),
        workloads::lcJob("memcached", 0.2),
        workloads::bgJob("fluidanimate"),
    };
    return SimulatedServer(ServerConfig::xeonSilver4114(), jobs,
                           std::make_unique<workloads::AnalyticModel>(),
                           seed, 0.0);
}

FaultPlan
mixedPlan()
{
    FaultPlan plan;
    plan.dropout_prob = 0.2;
    plan.freeze_prob = 0.15;
    plan.spike_prob = 0.25;
    plan.apply_fail_prob = 0.3;
    plan.crash_prob = 0.05;
    return plan;
}

TEST(FaultInjector, SameSeedSamePlanIdenticalSequence)
{
    FaultInjector a(mixedPlan(), 99);
    FaultInjector b(mixedPlan(), 99);
    for (uint64_t i = 0; i < 500; ++i) {
        EXPECT_EQ(a.applyFails(i), b.applyFails(i)) << i;
        EXPECT_EQ(a.windowDropout(i), b.windowDropout(i)) << i;
        EXPECT_EQ(a.windowFrozen(i), b.windowFrozen(i)) << i;
        for (size_t j = 0; j < 3; ++j) {
            EXPECT_EQ(a.latencySpike(i, j), b.latencySpike(i, j)) << i;
            EXPECT_EQ(a.jobDown(i, j), b.jobDown(i, j)) << i;
        }
    }
}

TEST(FaultInjector, DecisionsAreQueryOrderIndependent)
{
    // Counter-keyed hashing: re-querying or reordering must not change
    // any decision (a retry sees the same world it failed in).
    FaultInjector a(mixedPlan(), 7);
    FaultInjector b(mixedPlan(), 7);
    std::vector<bool> forward, backward;
    for (uint64_t i = 0; i < 200; ++i) {
        forward.push_back(a.applyFails(i));
        forward.push_back(a.applyFails(i)); // re-query
    }
    for (uint64_t i = 200; i-- > 0;) {
        backward.push_back(b.applyFails(i));
        backward.push_back(b.applyFails(i));
    }
    for (uint64_t i = 0; i < 200; ++i)
        EXPECT_EQ(forward[2 * i], backward[2 * (199 - i)]) << i;
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    FaultInjector a(mixedPlan(), 1);
    FaultInjector b(mixedPlan(), 2);
    int differences = 0;
    for (uint64_t i = 0; i < 500; ++i)
        if (a.applyFails(i) != b.applyFails(i) ||
            a.windowDropout(i) != b.windowDropout(i))
            ++differences;
    EXPECT_GT(differences, 0);
}

TEST(FaultInjector, ProbabilitiesRoughlyRespected)
{
    FaultPlan plan;
    plan.apply_fail_prob = 0.3;
    FaultInjector inj(plan, 42);
    int fails = 0;
    const int n = 4000;
    for (uint64_t i = 0; i < n; ++i)
        fails += inj.applyFails(i) ? 1 : 0;
    double rate = double(fails) / n;
    EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(FaultInjector, ZeroPlanInjectsNothing)
{
    FaultPlan plan;
    EXPECT_FALSE(plan.any());
    FaultInjector inj(plan, 3);
    for (uint64_t i = 0; i < 100; ++i) {
        EXPECT_FALSE(inj.applyFails(i));
        EXPECT_FALSE(inj.windowDropout(i));
        EXPECT_FALSE(inj.windowFrozen(i));
        EXPECT_FALSE(inj.latencySpike(i, 0));
        EXPECT_FALSE(inj.jobDown(i, 0));
    }
}

TEST(FaultInjector, PlanValidation)
{
    FaultPlan plan;
    plan.dropout_prob = 1.5;
    EXPECT_THROW(FaultInjector{plan}, Error);
    plan = FaultPlan{};
    plan.apply_fail_prob = -0.1;
    EXPECT_THROW(FaultInjector{plan}, Error);
    plan = FaultPlan{};
    plan.spike_prob = 0.1;
    plan.spike_factor = 0.5; // a "spike" must make latency worse
    EXPECT_THROW(FaultInjector{plan}, Error);
    plan = FaultPlan{};
    plan.crash_prob = 0.1;
    plan.crash_down_windows = 0;
    EXPECT_THROW(FaultInjector{plan}, Error);
}

TEST(FaultInjector, ScriptedCrashWindows)
{
    FaultPlan plan;
    plan.crashes.push_back({10, 1, 3});
    FaultInjector inj(plan, 5);
    for (uint64_t w = 0; w < 20; ++w) {
        bool down = w >= 10 && w < 13;
        EXPECT_EQ(inj.jobDown(w, 1), down) << "window " << w;
        EXPECT_FALSE(inj.jobDown(w, 0)) << "window " << w;
    }
}

TEST(FaultInjector, EventLog)
{
    FaultInjector inj(mixedPlan(), 5);
    inj.record(FaultKind::ApplyFailure, 3);
    inj.record(FaultKind::LatencySpike, 4, 1);
    EXPECT_EQ(inj.events().size(), 2u);
    EXPECT_EQ(inj.count(FaultKind::ApplyFailure), 1u);
    EXPECT_EQ(inj.count(FaultKind::LatencySpike), 1u);
    EXPECT_EQ(inj.count(FaultKind::JobCrash), 0u);
    EXPECT_EQ(inj.events()[1].subject, 1u);
    inj.clearEvents();
    EXPECT_TRUE(inj.events().empty());
}

TEST(FaultKindNames, AllDistinct)
{
    EXPECT_STREQ(faultKindName(FaultKind::MeasurementDropout),
                 "measurement-dropout");
    EXPECT_STRNE(faultKindName(FaultKind::ApplyFailure),
                 faultKindName(FaultKind::KnobLoss));
}

// --- Fleet-engine fault kinds --------------------------------------

TEST(FaultInjector, WorkerLossProbabilisticAndOrderIndependent)
{
    FaultPlan plan;
    plan.worker_loss_prob = 0.25;
    FaultInjector inj(plan, 11);
    int lost = 0;
    const int n = 4000;
    for (uint64_t a = 0; a < n; ++a)
        lost += inj.workerLost(a, a % 4) ? 1 : 0;
    EXPECT_NEAR(double(lost) / n, 0.25, 0.05);
    // Pure counter-keyed decisions: re-asking (a retry inspecting the
    // world it failed in) sees the same answer.
    for (uint64_t a = 0; a < 50; ++a)
        EXPECT_EQ(inj.workerLost(a, 1), inj.workerLost(a, 1));
    // Probabilistic losses are transient, never scripted-permanent.
    for (uint64_t a = 0; a < 50; ++a)
        EXPECT_FALSE(inj.workerDeathScripted(a, 1));
}

TEST(FaultInjector, ScriptedWorkerDeathIsPermanent)
{
    FaultPlan plan;
    FaultPlan::WorkerDeath death;
    death.at_assignment = 10;
    death.worker = 2;
    plan.worker_deaths.push_back(death);
    EXPECT_TRUE(plan.any());
    FaultInjector inj(plan, 7);
    for (uint64_t a = 0; a < 30; ++a) {
        EXPECT_EQ(inj.workerLost(a, 2), a >= 10) << "assignment " << a;
        EXPECT_EQ(inj.workerDeathScripted(a, 2), a >= 10);
        EXPECT_FALSE(inj.workerLost(a, 1)) << "assignment " << a;
    }
}

TEST(FaultInjector, TaskFailureProbabilisticPerAttempt)
{
    FaultPlan plan;
    plan.task_fail_prob = 0.2;
    FaultInjector inj(plan, 13);
    int failed = 0;
    const int n = 4000;
    for (uint64_t e = 0; e < n; ++e)
        failed += inj.taskFails(e % 8, e, 0) ? 1 : 0;
    EXPECT_NEAR(double(failed) / n, 0.2, 0.05);
    // A retry is a fresh attempt with its own fate — otherwise a
    // transient failure would be sticky and retries pointless.
    bool differs = false;
    for (uint64_t e = 0; e < 200 && !differs; ++e)
        differs = inj.taskFails(0, e, 0) != inj.taskFails(0, e, 1);
    EXPECT_TRUE(differs);
}

TEST(FaultInjector, ScriptedNodeBreakFailsEveryAttempt)
{
    FaultPlan plan;
    FaultPlan::NodeBreak broke;
    broke.node = 3;
    broke.after_epoch = 5;
    plan.node_breaks.push_back(broke);
    EXPECT_TRUE(plan.any());
    FaultInjector inj(plan, 9);
    for (uint64_t e = 0; e < 10; ++e)
        for (int attempt = 0; attempt < 3; ++attempt) {
            EXPECT_EQ(inj.taskFails(3, e, attempt), e >= 5)
                << "epoch " << e << " attempt " << attempt;
            EXPECT_FALSE(inj.taskFails(2, e, attempt));
        }
}

TEST(FaultInjector, EnginePlanValidation)
{
    FaultPlan plan;
    plan.worker_loss_prob = 1.2;
    EXPECT_THROW(FaultInjector{plan}, Error);
    plan = FaultPlan{};
    plan.task_fail_prob = -0.5;
    EXPECT_THROW(FaultInjector{plan}, Error);
}

// --- Server-level fault semantics ----------------------------------

TEST(ServerFaults, NoInjectorMeansFaultsDisabled)
{
    auto server = makeServer();
    EXPECT_FALSE(server.faultsEnabled());
    EXPECT_TRUE(server.lastApplyOk());
    EXPECT_TRUE(server.deadResources().empty());

    // An attached injector with an empty plan is also disabled.
    server.setFaultInjector(std::make_shared<FaultInjector>(FaultPlan{}));
    EXPECT_FALSE(server.faultsEnabled());
}

TEST(ServerFaults, ApplyFailureKeepsOldPartition)
{
    auto server = makeServer();
    FaultPlan plan;
    plan.apply_fail_prob = 1.0;
    auto inj = std::make_shared<FaultInjector>(plan, 9);
    server.setFaultInjector(inj);

    Allocation before = server.currentAllocation();
    Allocation other = before;
    // Find a movable unit to build a genuinely different allocation.
    bool moved = false;
    for (size_t j = 0; j < other.jobs() && !moved; ++j)
        if (other.get(j, 0) > 1)
            moved = other.transferUnit(0, j, (j + 1) % other.jobs());
    ASSERT_TRUE(moved);

    server.apply(other);
    EXPECT_FALSE(server.lastApplyOk());
    EXPECT_TRUE(server.currentAllocation() == before);
    EXPECT_GE(inj->count(FaultKind::ApplyFailure), 1u);
}

TEST(ServerFaults, DropoutWindowInvalidatesObservations)
{
    auto server = makeServer();
    FaultPlan plan;
    plan.dropout_prob = 1.0;
    server.setFaultInjector(std::make_shared<FaultInjector>(plan, 9));

    std::vector<JobObservation> obs = server.observe();
    ASSERT_EQ(obs.size(), server.jobCount());
    for (const auto& ob : obs)
        EXPECT_FALSE(ob.valid);
}

TEST(ServerFaults, FrozenWindowRepeatsPreviousTelemetry)
{
    auto server = makeServer();
    FaultPlan plan;
    plan.freeze_prob = 1.0;
    server.setFaultInjector(std::make_shared<FaultInjector>(plan, 9));

    // Window 0 cannot freeze (nothing to repeat yet) and is delivered
    // fresh; every later window repeats it, flagged stale.
    std::vector<JobObservation> first = server.observe();
    for (const auto& ob : first)
        EXPECT_FALSE(ob.stale);
    std::vector<JobObservation> second = server.observe();
    ASSERT_EQ(second.size(), first.size());
    for (size_t j = 0; j < second.size(); ++j) {
        EXPECT_TRUE(second[j].stale);
        EXPECT_DOUBLE_EQ(second[j].throughput, first[j].throughput);
        EXPECT_DOUBLE_EQ(second[j].p95_ms, first[j].p95_ms);
    }
}

TEST(ServerFaults, LatencySpikeMultipliesLcTail)
{
    auto server = makeServer(); // noise disabled: deterministic values
    std::vector<JobObservation> clean = server.observe();

    FaultPlan plan;
    plan.spike_prob = 1.0;
    plan.spike_factor = 8.0;
    server.setFaultInjector(std::make_shared<FaultInjector>(plan, 9));
    std::vector<JobObservation> spiked = server.observe();
    for (size_t j = 0; j < spiked.size(); ++j) {
        if (!spiked[j].is_lc)
            continue;
        EXPECT_NEAR(spiked[j].p95_ms, clean[j].p95_ms * 8.0,
                    clean[j].p95_ms * 0.01);
        // Spikes are NOT flagged: they look like real measurements and
        // must be rejected statistically, not via metadata.
        EXPECT_TRUE(spiked[j].valid);
        EXPECT_FALSE(spiked[j].stale);
    }
}

TEST(ServerFaults, KnobLossFreezesDeadColumn)
{
    auto server = makeServer();
    FaultPlan plan;
    plan.knob_losses.push_back({0, 1}); // resource 1 dead from the start
    server.setFaultInjector(std::make_shared<FaultInjector>(plan, 9));

    Allocation before = server.currentAllocation();
    std::vector<size_t> dead = server.deadResources();
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead[0], 1u);

    Allocation req = before;
    bool moved = false;
    for (size_t j = 0; j < req.jobs() && !moved; ++j) {
        if (req.get(j, 0) > 1)
            moved = req.transferUnit(0, j, (j + 1) % req.jobs());
    }
    ASSERT_TRUE(moved);
    for (size_t j = 0; j < req.jobs(); ++j)
        if (req.get(j, 1) > 1) {
            req.transferUnit(1, j, (j + 1) % req.jobs());
            break;
        }

    server.apply(req);
    EXPECT_TRUE(server.lastApplyOk());
    const Allocation& cur = server.currentAllocation();
    for (size_t j = 0; j < cur.jobs(); ++j) {
        // Live column programmed as requested; dead column unchanged.
        EXPECT_EQ(cur.get(j, 0), req.get(j, 0));
        EXPECT_EQ(cur.get(j, 1), before.get(j, 1));
    }
}

TEST(ServerFaults, CrashedJobObservation)
{
    auto server = makeServer();
    FaultPlan plan;
    plan.crashes.push_back({0, 0, 2}); // job 0 down for windows 0-1
    server.setFaultInjector(std::make_shared<FaultInjector>(plan, 9));

    std::vector<JobObservation> obs = server.observe();
    EXPECT_TRUE(obs[0].crashed);
    EXPECT_DOUBLE_EQ(obs[0].throughput, 0.0);
    EXPECT_FALSE(obs[1].crashed);

    server.observe(); // window 1: still down
    std::vector<JobObservation> after = server.observe(); // window 2
    EXPECT_FALSE(after[0].crashed); // restarted
    EXPECT_GT(after[0].throughput, 0.0);
}

TEST(ServerFaults, SlotReconfigurationBypassesFaults)
{
    auto server = makeServer();
    FaultPlan plan;
    plan.apply_fail_prob = 1.0;
    server.setFaultInjector(std::make_shared<FaultInjector>(plan, 9));

    // addJob/removeJob are offline slot reconfigurations: they must
    // succeed (and keep shapes consistent) even when every online
    // apply fails.
    size_t idx = server.addJob(workloads::bgJob("swaptions"));
    EXPECT_EQ(idx, 3u);
    EXPECT_EQ(server.currentAllocation().jobs(), 4u);
    EXPECT_NO_THROW(server.observe());

    server.removeJob(idx);
    EXPECT_EQ(server.currentAllocation().jobs(), 3u);
    EXPECT_NO_THROW(server.observe());
}

} // namespace
} // namespace platform
} // namespace clite

/**
 * @file
 * Unit tests for the resource inventory (Tables 1 and 2).
 */

#include <gtest/gtest.h>

#include <limits>

#include "common/error.h"
#include "platform/resource.h"

namespace clite {
namespace platform {
namespace {

TEST(Resource, Table1NamesAndTools)
{
    EXPECT_EQ(resourceName(Resource::Cores), "cores");
    EXPECT_EQ(isolationTool(Resource::Cores), "taskset");
    EXPECT_EQ(isolationTool(Resource::LlcWays), "Intel CAT");
    EXPECT_EQ(isolationTool(Resource::MemBandwidth), "Intel MBA");
    EXPECT_EQ(isolationTool(Resource::MemCapacity),
              "Linux memory cgroups");
    EXPECT_EQ(isolationTool(Resource::DiskBandwidth),
              "Linux blkio cgroups");
    EXPECT_EQ(isolationTool(Resource::NetBandwidth), "Linux qdisc");
    EXPECT_EQ(allocationMethod(Resource::LlcWays), "Way Partitioning");
}

TEST(ServerConfig, Table2Testbed)
{
    ServerConfig c = ServerConfig::xeonSilver4114();
    EXPECT_EQ(c.physical_cores, 10);
    EXPECT_EQ(c.l3_ways, 11);
    EXPECT_EQ(c.resourceCount(), 3u);
    EXPECT_EQ(c.resource(c.indexOf(Resource::Cores)).units, 10);
    EXPECT_EQ(c.resource(c.indexOf(Resource::LlcWays)).units, 11);
    EXPECT_EQ(c.resource(c.indexOf(Resource::MemBandwidth)).units, 10);
    EXPECT_TRUE(c.has(Resource::Cores));
    EXPECT_FALSE(c.has(Resource::DiskBandwidth));
    EXPECT_THROW(c.indexOf(Resource::DiskBandwidth), Error);
}

TEST(ServerConfig, AllResourcesVariantExposesSix)
{
    ServerConfig c = ServerConfig::xeonSilver4114AllResources();
    EXPECT_EQ(c.resourceCount(), 6u);
    for (Resource r : {Resource::Cores, Resource::LlcWays,
                       Resource::MemBandwidth, Resource::MemCapacity,
                       Resource::DiskBandwidth, Resource::NetBandwidth})
        EXPECT_TRUE(c.has(r));
}

TEST(ServerConfig, PhysicalTotals)
{
    ServerConfig c = ServerConfig::xeonSilver4114();
    size_t bw = c.indexOf(Resource::MemBandwidth);
    EXPECT_DOUBLE_EQ(c.physicalTotal(bw), 20000.0);
    size_t cores = c.indexOf(Resource::Cores);
    EXPECT_DOUBLE_EQ(c.physicalTotal(cores), 10.0);
}

TEST(ServerConfig, ConfigurationCountMatchesPaperExample)
{
    // Sec. 2: 4 jobs, 3 resources with 10 units each -> 592,704.
    ServerConfig c({{Resource::Cores, 10, 1.0, "core"},
                    {Resource::MemBandwidth, 10, 1.0, "u"},
                    {Resource::MemCapacity, 10, 1.0, "u"}});
    EXPECT_EQ(c.configurationCount(4), 592704u);
}

TEST(ServerConfig, ConfigurationCountTestbedThreeJobs)
{
    // 10 cores / 11 ways / 10 bw units for 3 jobs:
    // C(9,2)*C(10,2)*C(9,2) = 36*45*36 = 58320 (Sec. 5.2's "58320
    // configurations" example for the 2 LC + 1 BG scenario).
    ServerConfig c = ServerConfig::xeonSilver4114();
    EXPECT_EQ(c.configurationCount(3), 58320u);
}

TEST(ServerConfig, ConfigurationCountEdgeCases)
{
    ServerConfig c = ServerConfig::xeonSilver4114();
    EXPECT_EQ(c.configurationCount(1), 1u);
    // 11 jobs cannot each get a core from 10 cores.
    EXPECT_EQ(c.configurationCount(11), 0u);
    EXPECT_THROW(c.configurationCount(0), Error);
}

TEST(ServerConfig, RejectsMalformedInventories)
{
    EXPECT_THROW(ServerConfig({}), Error);
    EXPECT_THROW(ServerConfig({{Resource::Cores, 0, 1.0, "core"}}), Error);
    EXPECT_THROW(ServerConfig({{Resource::Cores, 4, 1.0, "core"},
                               {Resource::Cores, 4, 1.0, "core"}}),
                 Error);
}

} // namespace
} // namespace platform
} // namespace clite

/**
 * @file
 * Property tests for Allocation on the 6-resource server and under
 * randomized round-trips — the lattice the whole search walks on.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "platform/allocation.h"
#include "stats/sampling.h"

namespace clite {
namespace platform {
namespace {

class AllocationPropertyTest : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(AllocationPropertyTest, RandomTransferChainsPreserveValidity)
{
    Rng rng(GetParam());
    ServerConfig cfg = ServerConfig::xeonSilver4114AllResources();
    size_t njobs = size_t(rng.uniformInt(2, 6));
    Allocation a = Allocation::equalShare(njobs, cfg);
    for (int step = 0; step < 500; ++step) {
        size_t r = size_t(rng.uniformInt(0, int64_t(a.resources()) - 1));
        size_t from = size_t(rng.uniformInt(0, int64_t(njobs) - 1));
        size_t to = size_t(rng.uniformInt(0, int64_t(njobs) - 1));
        if (from != to)
            a.transferUnit(r, from, to);
        ASSERT_TRUE(a.valid()) << "step " << step;
    }
}

TEST_P(AllocationPropertyTest, FlattenRoundTripOnSixResources)
{
    Rng rng(GetParam() * 7 + 1);
    ServerConfig cfg = ServerConfig::xeonSilver4114AllResources();
    size_t njobs = size_t(rng.uniformInt(2, 5));
    for (int rep = 0; rep < 50; ++rep) {
        Allocation a(njobs, cfg);
        for (size_t r = 0; r < a.resources(); ++r) {
            auto parts = stats::sampleComposition(a.resourceUnits(r),
                                                  int(njobs), rng, 1);
            for (size_t j = 0; j < njobs; ++j)
                a.set(j, r, parts[j]);
        }
        Allocation back = Allocation::fromFlatNormalized(
            a.flattenNormalized(), njobs, cfg);
        EXPECT_TRUE(back == a);
    }
}

TEST_P(AllocationPropertyTest, PerturbedFlatVectorsAlwaysRepair)
{
    // fromFlatNormalized must produce a valid allocation from any
    // perturbation of a feasible point (how CLITE rounds acquisition
    // optima back onto the lattice).
    Rng rng(GetParam() * 13 + 2);
    ServerConfig cfg = ServerConfig::xeonSilver4114();
    size_t njobs = 4;
    for (int rep = 0; rep < 100; ++rep) {
        Allocation a = Allocation::equalShare(njobs, cfg);
        std::vector<double> flat = a.flattenNormalized();
        for (double& v : flat)
            v = std::max(0.0, v + rng.uniform(-0.3, 0.3));
        Allocation repaired =
            Allocation::fromFlatNormalized(flat, njobs, cfg);
        EXPECT_TRUE(repaired.valid());
    }
}

TEST_P(AllocationPropertyTest, KeyIsInjectiveOnRandomPairs)
{
    Rng rng(GetParam() * 17 + 3);
    ServerConfig cfg = ServerConfig::xeonSilver4114();
    for (int rep = 0; rep < 100; ++rep) {
        Allocation a(3, cfg), b(3, cfg);
        for (size_t r = 0; r < a.resources(); ++r) {
            auto pa = stats::sampleComposition(a.resourceUnits(r), 3, rng);
            auto pb = stats::sampleComposition(b.resourceUnits(r), 3, rng);
            for (size_t j = 0; j < 3; ++j) {
                a.set(j, r, pa[j]);
                b.set(j, r, pb[j]);
            }
        }
        EXPECT_EQ(a == b, a.key() == b.key());
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocationPropertyTest,
                         ::testing::Values(1u, 2u, 3u));

} // namespace
} // namespace platform
} // namespace clite

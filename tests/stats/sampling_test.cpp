/**
 * @file
 * Unit and property tests for sampling utilities.
 */

#include <gtest/gtest.h>

#include <map>
#include <numeric>
#include <set>

#include "common/error.h"
#include "stats/sampling.h"

namespace clite {
namespace stats {
namespace {

TEST(LatinHypercube, StratificationProperty)
{
    Rng rng(3);
    const size_t count = 16, dims = 3;
    auto pts = latinHypercube(count, dims, rng);
    ASSERT_EQ(pts.size(), count);
    for (size_t d = 0; d < dims; ++d) {
        std::set<size_t> strata;
        for (const auto& p : pts) {
            EXPECT_GE(p[d], 0.0);
            EXPECT_LT(p[d], 1.0);
            strata.insert(size_t(p[d] * double(count)));
        }
        // Each of the `count` strata hit exactly once.
        EXPECT_EQ(strata.size(), count);
    }
}

TEST(LatinHypercube, RejectsDegenerateArguments)
{
    Rng rng(5);
    EXPECT_THROW(latinHypercube(0, 2, rng), Error);
    EXPECT_THROW(latinHypercube(4, 0, rng), Error);
}

TEST(CompositionCount, MatchesBinomialFormula)
{
    // C(total-1, parts-1) with min 1 per part.
    EXPECT_EQ(compositionCount(10, 3), 36u);
    EXPECT_EQ(compositionCount(11, 3), 45u);
    EXPECT_EQ(compositionCount(10, 4), 84u);
    EXPECT_EQ(compositionCount(5, 1), 1u);
    EXPECT_EQ(compositionCount(5, 5), 1u);
    EXPECT_EQ(compositionCount(4, 5), 0u);
}

TEST(CompositionCount, PaperExampleNconf)
{
    // Sec. 2: four jobs, three resources of 10 units each ->
    // C(9,3)^3 = 84^3 = 592,704 total configurations.
    uint64_t per_resource = compositionCount(10, 4);
    EXPECT_EQ(per_resource * per_resource * per_resource, 592704u);
}

TEST(CompositionCount, MinPerPartZero)
{
    // Weak compositions of 3 into 2 parts: 4.
    EXPECT_EQ(compositionCount(3, 2, 0), 4u);
}

TEST(CompositionCount, MatchesEnumeration)
{
    for (int total : {5, 8, 11}) {
        for (int parts : {2, 3, 4}) {
            uint64_t enumerated = 0;
            forEachComposition(total, parts,
                               [&](const std::vector<int>&) {
                                   ++enumerated;
                                   return true;
                               });
            EXPECT_EQ(enumerated, compositionCount(total, parts))
                << "total=" << total << " parts=" << parts;
        }
    }
}

class SampleCompositionTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(SampleCompositionTest, SumAndBoundsInvariants)
{
    auto [total, parts] = GetParam();
    Rng rng(uint64_t(total) * 31 + uint64_t(parts));
    for (int rep = 0; rep < 200; ++rep) {
        std::vector<int> c = sampleComposition(total, parts, rng);
        ASSERT_EQ(c.size(), size_t(parts));
        EXPECT_EQ(std::accumulate(c.begin(), c.end(), 0), total);
        for (int v : c)
            EXPECT_GE(v, 1);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SampleCompositionTest,
    ::testing::Values(std::pair{3, 3}, std::pair{10, 3}, std::pair{11, 4},
                      std::pair{10, 1}, std::pair{20, 7}));

TEST(SampleComposition, ApproximatelyUniform)
{
    // Compositions of 4 into 2 parts: (1,3), (2,2), (3,1) - each 1/3.
    Rng rng(11);
    std::map<int, int> first_part_counts;
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        ++first_part_counts[sampleComposition(4, 2, rng)[0]];
    for (int v : {1, 2, 3})
        EXPECT_NEAR(double(first_part_counts[v]) / n, 1.0 / 3.0, 0.02);
}

TEST(SampleComposition, InfeasibleThrows)
{
    Rng rng(13);
    EXPECT_THROW(sampleComposition(2, 3, rng), Error);
}

TEST(ForEachComposition, LexicographicOrderAndEarlyStop)
{
    std::vector<std::vector<int>> seen;
    forEachComposition(4, 2, [&](const std::vector<int>& c) {
        seen.push_back(c);
        return true;
    });
    ASSERT_EQ(seen.size(), 3u);
    EXPECT_EQ(seen[0], (std::vector<int>{1, 3}));
    EXPECT_EQ(seen[1], (std::vector<int>{2, 2}));
    EXPECT_EQ(seen[2], (std::vector<int>{3, 1}));

    int visits = 0;
    bool completed = forEachComposition(4, 2, [&](const std::vector<int>&) {
        return ++visits < 2;
    });
    EXPECT_FALSE(completed);
    EXPECT_EQ(visits, 2);
}

TEST(ForEachComposition, EmptySpaceIsComplete)
{
    int visits = 0;
    bool completed = forEachComposition(2, 3, [&](const std::vector<int>&) {
        ++visits;
        return true;
    });
    EXPECT_TRUE(completed);
    EXPECT_EQ(visits, 0);
}

} // namespace
} // namespace stats
} // namespace clite

/**
 * @file
 * Tests for the bootstrap confidence interval (the Fig. 11 error
 * bars).
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "stats/summary.h"

namespace clite {
namespace stats {
namespace {

TEST(BootstrapCI, PointEstimateIsSampleMean)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    ConfidenceInterval ci = bootstrapMeanCI(xs, 0.95, 500, 3);
    EXPECT_DOUBLE_EQ(ci.point, 2.5);
}

TEST(BootstrapCI, IntervalContainsPointEstimate)
{
    Rng rng(7);
    std::vector<double> xs;
    for (int i = 0; i < 20; ++i)
        xs.push_back(rng.normal(10.0, 2.0));
    ConfidenceInterval ci = bootstrapMeanCI(xs, 0.95, 1000, 11);
    EXPECT_LE(ci.lo, ci.point);
    EXPECT_GE(ci.hi, ci.point);
    EXPECT_LT(ci.lo, ci.hi);
}

TEST(BootstrapCI, WiderConfidenceGivesWiderInterval)
{
    Rng rng(13);
    std::vector<double> xs;
    for (int i = 0; i < 15; ++i)
        xs.push_back(rng.uniform(0.0, 1.0));
    ConfidenceInterval narrow = bootstrapMeanCI(xs, 0.80, 2000, 5);
    ConfidenceInterval wide = bootstrapMeanCI(xs, 0.99, 2000, 5);
    EXPECT_LE(wide.lo, narrow.lo + 1e-12);
    EXPECT_GE(wide.hi, narrow.hi - 1e-12);
}

TEST(BootstrapCI, ShrinksWithSampleSize)
{
    Rng rng(17);
    std::vector<double> small, large;
    for (int i = 0; i < 400; ++i) {
        double x = rng.normal(5.0, 1.0);
        if (i < 8)
            small.push_back(x);
        large.push_back(x);
    }
    ConfidenceInterval s = bootstrapMeanCI(small, 0.95, 2000, 3);
    ConfidenceInterval l = bootstrapMeanCI(large, 0.95, 2000, 3);
    EXPECT_LT(l.hi - l.lo, s.hi - s.lo);
}

TEST(BootstrapCI, CoversTrueMeanUsually)
{
    // Property check: across repetitions, the 95% CI covers the true
    // mean far more often than not (exact coverage needs far more
    // repetitions than a unit test should run).
    Rng rng(23);
    int covered = 0;
    const int reps = 40;
    for (int r = 0; r < reps; ++r) {
        std::vector<double> xs;
        for (int i = 0; i < 25; ++i)
            xs.push_back(rng.normal(3.0, 1.5));
        ConfidenceInterval ci =
            bootstrapMeanCI(xs, 0.95, 500, 100 + uint64_t(r));
        if (ci.lo <= 3.0 && 3.0 <= ci.hi)
            ++covered;
    }
    EXPECT_GE(covered, reps * 3 / 4);
}

TEST(BootstrapCI, DeterministicForSameSeed)
{
    std::vector<double> xs = {1.0, 5.0, 2.0, 8.0, 3.0};
    ConfidenceInterval a = bootstrapMeanCI(xs, 0.9, 300, 42);
    ConfidenceInterval b = bootstrapMeanCI(xs, 0.9, 300, 42);
    EXPECT_DOUBLE_EQ(a.lo, b.lo);
    EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapCI, Validation)
{
    EXPECT_THROW(bootstrapMeanCI({1.0}, 0.95), Error);
    std::vector<double> ok = {1.0, 2.0};
    EXPECT_THROW(bootstrapMeanCI(ok, 0.0), Error);
    EXPECT_THROW(bootstrapMeanCI(ok, 1.0), Error);
    EXPECT_THROW(bootstrapMeanCI(ok, 0.9, 5), Error);
}

} // namespace
} // namespace stats
} // namespace clite

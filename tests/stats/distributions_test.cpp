/**
 * @file
 * Unit and property tests for distribution functions and queueing
 * formulas.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.h"
#include "stats/distributions.h"

namespace clite {
namespace stats {
namespace {

TEST(Normal, PdfKnownValues)
{
    EXPECT_NEAR(normalPdf(0.0), 0.3989422804014327, 1e-12);
    EXPECT_NEAR(normalPdf(1.0), 0.24197072451914337, 1e-12);
    EXPECT_DOUBLE_EQ(normalPdf(1.0), normalPdf(-1.0));
}

TEST(Normal, CdfKnownValues)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.0), 0.8413447460685429, 1e-10);
    EXPECT_NEAR(normalCdf(-1.96), 0.024997895148220435, 1e-9);
}

class NormalQuantileRoundTrip : public ::testing::TestWithParam<double>
{
};

TEST_P(NormalQuantileRoundTrip, CdfOfQuantileIsIdentity)
{
    double p = GetParam();
    EXPECT_NEAR(normalCdf(normalQuantile(p)), p, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, NormalQuantileRoundTrip,
                         ::testing::Values(1e-6, 0.001, 0.025, 0.1, 0.5,
                                           0.9, 0.95, 0.975, 0.999,
                                           1.0 - 1e-6));

TEST(Normal, QuantileRejectsOutOfRange)
{
    EXPECT_THROW(normalQuantile(0.0), Error);
    EXPECT_THROW(normalQuantile(1.0), Error);
    EXPECT_THROW(normalQuantile(-0.5), Error);
}

TEST(ErlangC, SingleServerEqualsUtilization)
{
    // For M/M/1, P(wait) = rho.
    for (double rho : {0.1, 0.3, 0.5, 0.8, 0.95})
        EXPECT_NEAR(erlangC(1, rho), rho, 1e-12);
}

TEST(ErlangC, BoundaryCases)
{
    EXPECT_DOUBLE_EQ(erlangC(4, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(erlangC(4, 4.0), 1.0);
    EXPECT_DOUBLE_EQ(erlangC(4, 5.0), 1.0);
}

TEST(ErlangC, KnownMultiServerValue)
{
    // c=2, a=1 (rho=0.5): ErlangB = (1/2)/(1+1+1/2) = 0.2;
    // ErlangC = 0.2/(1-0.5+0.5*0.2) = 1/3.
    EXPECT_NEAR(erlangC(2, 1.0), 1.0 / 3.0, 1e-12);
}

TEST(ErlangC, DecreasesWithMoreServers)
{
    // At fixed offered load, more servers -> less waiting.
    double prev = 1.0;
    for (int c = 2; c <= 8; ++c) {
        double now = erlangC(c, 1.5);
        EXPECT_LT(now, prev);
        prev = now;
    }
}

TEST(Mmc, SingleServerQuantileMatchesClosedForm)
{
    // M/M/1 sojourn time ~ Exp(mu - lambda):
    // q-quantile = -ln(1-q)/(mu-lambda).
    double mu = 10.0, lambda = 6.0, q = 0.95;
    double expect = -std::log(1.0 - q) / (mu - lambda);
    EXPECT_NEAR(mmcResponseQuantile(1, lambda, mu, q), expect, 1e-9);
}

TEST(Mmc, ZeroLoadQuantileIsServiceQuantile)
{
    // With no arrivals, sojourn = service ~ Exp(mu).
    double mu = 4.0, q = 0.9;
    double expect = -std::log(1.0 - q) / mu;
    EXPECT_NEAR(mmcResponseQuantile(3, 0.0, mu, q), expect, 1e-9);
}

TEST(Mmc, UnstableQueueReturnsInfinity)
{
    EXPECT_TRUE(std::isinf(mmcResponseQuantile(2, 25.0, 10.0, 0.95)));
    EXPECT_TRUE(std::isinf(mmcMeanResponse(2, 25.0, 10.0)));
}

TEST(Mmc, MeanResponseMatchesClosedFormSingleServer)
{
    // M/M/1 mean sojourn = 1/(mu - lambda).
    EXPECT_NEAR(mmcMeanResponse(1, 6.0, 10.0), 0.25, 1e-12);
}

class MmcMonotoneLoad : public ::testing::TestWithParam<int>
{
};

TEST_P(MmcMonotoneLoad, QuantileIncreasesWithLoad)
{
    int servers = GetParam();
    double mu = 5.0;
    double prev = 0.0;
    for (double frac : {0.1, 0.3, 0.5, 0.7, 0.9, 0.97}) {
        double lambda = frac * servers * mu;
        double p95 = mmcResponseQuantile(servers, lambda, mu, 0.95);
        EXPECT_GT(p95, prev);
        prev = p95;
    }
}

INSTANTIATE_TEST_SUITE_P(ServerCounts, MmcMonotoneLoad,
                         ::testing::Values(1, 2, 4, 8, 10, 16));

TEST(Mmc, QuantileMonotoneInQ)
{
    double prev = 0.0;
    for (double q : {0.5, 0.75, 0.9, 0.95, 0.99}) {
        double v = mmcResponseQuantile(4, 15.0, 5.0, q);
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(Mmc, ParameterValidation)
{
    EXPECT_THROW(mmcResponseQuantile(1, -1.0, 5.0, 0.95), Error);
    EXPECT_THROW(mmcResponseQuantile(1, 1.0, 0.0, 0.95), Error);
    EXPECT_THROW(mmcResponseQuantile(1, 1.0, 5.0, 1.0), Error);
    EXPECT_THROW(erlangC(0, 1.0), Error);
}

} // namespace
} // namespace stats
} // namespace clite

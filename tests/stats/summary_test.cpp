/**
 * @file
 * Unit tests for summary statistics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "stats/summary.h"

namespace clite {
namespace stats {
namespace {

TEST(RunningStats, MatchesDirectComputation)
{
    std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    RunningStats rs;
    for (double x : xs)
        rs.add(x);
    EXPECT_EQ(rs.count(), xs.size());
    EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
    // Unbiased sample variance of this classic set is 32/7.
    EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(rs.min(), 2.0);
    EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, EmptyAndSingle)
{
    RunningStats rs;
    EXPECT_EQ(rs.count(), 0u);
    EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    rs.add(3.0);
    EXPECT_DOUBLE_EQ(rs.mean(), 3.0);
    EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
    EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential)
{
    Rng rng(3);
    RunningStats whole, a, b;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.normal(2.0, 3.0);
        whole.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-8);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmptySides)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    RunningStats a_copy = a;
    a.merge(b); // empty rhs: no-op
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    b.merge(a_copy); // empty lhs adopts rhs
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, CoefficientOfVariation)
{
    RunningStats rs;
    rs.add(9.0);
    rs.add(11.0);
    // mean 10, sample stddev sqrt(2) -> CoV = sqrt(2)/10.
    EXPECT_NEAR(rs.coefficientOfVariation(), std::sqrt(2.0) / 10.0, 1e-12);
}

TEST(Percentile, KnownValues)
{
    std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 2.5);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.25), 1.75);
}

TEST(Percentile, UnsortedInputHandled)
{
    std::vector<double> xs = {9.0, 1.0, 5.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 5.0);
}

TEST(Percentile, SingleAndEmpty)
{
    EXPECT_DOUBLE_EQ(percentile({42.0}, 0.95), 42.0);
    EXPECT_TRUE(std::isnan(percentile({}, 0.5)));
}

TEST(Percentile, RejectsOutOfRangeQuantile)
{
    EXPECT_THROW(percentile({1.0}, 1.5), Error);
    EXPECT_THROW(percentile({1.0}, -0.1), Error);
}

TEST(GeometricMean, KnownValuesAndNeutralElement)
{
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geometricMean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(geometricMean({}), 1.0);
}

TEST(GeometricMean, BoundedByArithmeticMean)
{
    Rng rng(7);
    for (int rep = 0; rep < 20; ++rep) {
        std::vector<double> xs;
        double sum = 0.0;
        for (int i = 0; i < 5; ++i) {
            xs.push_back(rng.uniform(0.1, 10.0));
            sum += xs.back();
        }
        EXPECT_LE(geometricMean(xs), sum / 5.0 + 1e-12);
    }
}

TEST(GeometricMean, RejectsNonPositive)
{
    EXPECT_THROW(geometricMean({1.0, 0.0}), Error);
    EXPECT_THROW(geometricMean({-1.0}), Error);
}

} // namespace
} // namespace stats
} // namespace clite

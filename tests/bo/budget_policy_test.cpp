/**
 * @file
 * Property tests for the budget-bounded search policy (bo/budget.h):
 * the accounting invariants (monotone charging that can never exceed
 * the configured budget, aborted windows charged exactly their
 * elapsed cost), the acquisition transform, the lookahead cutoff,
 * and — the load-bearing guarantee — that an unlimited budget
 * reproduces the EI-threshold controller's stopping decisions
 * bit-for-bit, keeping every unbudgeted golden byte-identical.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "bo/budget.h"
#include "common/error.h"
#include "common/rng.h"
#include "core/clite.h"
#include "platform/server.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace bo {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

BudgetOptions
activeOptions(double budget = 20.0)
{
    BudgetOptions o;
    o.budget_seconds = budget;
    return o;
}

// ---- Accounting invariants -------------------------------------------

TEST(BudgetPolicy, ChargedIsMonotoneAndNeverExceedsBudget)
{
    // Property: under ANY random charge sequence — full windows,
    // aborted fractions (including garbage fractions), far past the
    // point of exhaustion — charged() never decreases and never
    // exceeds the configured budget.
    Rng rng(17);
    for (int trial = 0; trial < 50; ++trial) {
        BudgetOptions o = activeOptions(rng.uniform(0.5, 30.0));
        BudgetPolicy p(o);
        double prev = p.charged();
        for (int step = 0; step < 64; ++step) {
            switch (rng.uniformInt(0, 3)) {
            case 0:
                p.chargeWindow(/*qos_met=*/true);
                break;
            case 1:
                p.chargeWindow(/*qos_met=*/false);
                break;
            case 2:
                p.chargeAborted(rng.uniform(0.0, 1.0));
                break;
            default:
                // Hostile fractions must charge garbage-free.
                p.chargeAborted(step % 2 ? kNan : -3.0);
                break;
            }
            EXPECT_GE(p.charged(), prev);
            EXPECT_LE(p.charged(), p.budget());
            EXPECT_GE(p.remaining(), 0.0);
            EXPECT_NEAR(p.remaining(), p.budget() - p.charged(), 1e-12);
            EXPECT_LE(p.violatingSeconds(), p.charged() + 1e-12);
            prev = p.charged();
        }
        // Saturation: after enough windows the budget is exactly used.
        EXPECT_DOUBLE_EQ(p.charged(), p.budget());
        EXPECT_FALSE(p.canAffordWindow());
    }
}

TEST(BudgetPolicy, AbortedWindowChargesExactlyElapsedCost)
{
    BudgetOptions o = activeOptions(100.0);
    Rng rng(5);
    for (int i = 0; i < 32; ++i) {
        BudgetPolicy p(o);
        const double f = rng.uniform(0.0, 1.0);
        p.chargeAborted(f);
        EXPECT_DOUBLE_EQ(p.charged(), f * o.window_seconds);
        // Aborted windows are by definition QoS-violating time.
        EXPECT_DOUBLE_EQ(p.violatingSeconds(), f * o.window_seconds);
        EXPECT_EQ(p.abortedWindows(), 1);
    }
}

TEST(BudgetPolicy, FullWindowChargesWindowSecondsAndTracksViolation)
{
    BudgetPolicy p(activeOptions(10.0));
    p.chargeWindow(/*qos_met=*/true);
    EXPECT_DOUBLE_EQ(p.charged(), 2.0);
    EXPECT_DOUBLE_EQ(p.violatingSeconds(), 0.0);
    p.chargeWindow(/*qos_met=*/false);
    EXPECT_DOUBLE_EQ(p.charged(), 4.0);
    EXPECT_DOUBLE_EQ(p.violatingSeconds(), 2.0);
}

TEST(BudgetPolicy, InertWhenBudgetUnlimited)
{
    for (double b : {0.0, -1.0, kInf, kNan}) {
        BudgetOptions o;
        o.budget_seconds = b;
        EXPECT_FALSE(o.enabled()) << "budget=" << b;
        BudgetPolicy p(o);
        EXPECT_FALSE(p.active());
        EXPECT_TRUE(p.canAffordWindow());
        EXPECT_EQ(p.budget(), kInf);
        EXPECT_EQ(p.remaining(), kInf);
        // The acquisition transform must be the identity: the inert
        // policy may not perturb the EI-threshold search in any way.
        EXPECT_DOUBLE_EQ(p.normalize(0.37, 1.5), 0.37);
        EXPECT_DOUBLE_EQ(p.costAwareAcquisition(0.37, 0.9), 0.37);
        EXPECT_FALSE(p.lookaheadExhausted(0.0));
        // Charging still accumulates (for accounting) but unlimited.
        p.chargeWindow(false);
        EXPECT_DOUBLE_EQ(p.charged(), o.window_seconds);
        EXPECT_TRUE(p.canAffordWindow());
    }
}

TEST(BudgetPolicy, ConstructorRejectsUnsafeKnobs)
{
    BudgetOptions o;
    o.abort_margin = kMaxPartialOvershoot - 0.01; // could kill feasible
    EXPECT_THROW(BudgetPolicy{o}, Error);
    o = {};
    o.window_seconds = 0.0;
    EXPECT_THROW(BudgetPolicy{o}, Error);
    o = {};
    o.abort_check_fraction = 1.0;
    EXPECT_THROW(BudgetPolicy{o}, Error);
    o = {};
    o.lookahead_min_gain = -1.0;
    EXPECT_THROW(BudgetPolicy{o}, Error);
}

// ---- Acquisition transform -------------------------------------------

TEST(BudgetPolicy, ExpectedWindowCostInterpolatesAbortSavings)
{
    BudgetOptions o = activeOptions();
    BudgetPolicy p(o);
    const double w = o.window_seconds;
    EXPECT_DOUBLE_EQ(p.expectedWindowCost(0.0), w);
    EXPECT_DOUBLE_EQ(p.expectedWindowCost(1.0),
                     o.abort_check_fraction * w);
    // Monotone decreasing in the violation probability; clamped and
    // NaN-safe.
    EXPECT_GT(p.expectedWindowCost(0.2), p.expectedWindowCost(0.8));
    EXPECT_DOUBLE_EQ(p.expectedWindowCost(kNan), w);
    EXPECT_DOUBLE_EQ(p.expectedWindowCost(7.0), p.expectedWindowCost(1.0));

    // Without early-abort no window ever ends early: cost is flat.
    BudgetOptions no_abort = activeOptions();
    no_abort.early_abort = false;
    BudgetPolicy q(no_abort);
    EXPECT_DOUBLE_EQ(q.expectedWindowCost(0.0), w);
    EXPECT_DOUBLE_EQ(q.expectedWindowCost(1.0), w);
}

TEST(BudgetPolicy, CostAwareAcquisitionPenalizesLikelyViolators)
{
    // The feasibility weight must dominate the cost discount: a
    // candidate that is MORE likely to violate must always score
    // LOWER, never higher because its window aborts cheaply. (This is
    // the property whose absence steered probes into the violating
    // region.)
    BudgetPolicy p(activeOptions());
    const double ei = 0.42;
    double prev = p.costAwareAcquisition(ei, 0.0);
    EXPECT_DOUBLE_EQ(prev, ei / p.options().window_seconds);
    for (double pv = 0.1; pv <= 1.0 + 1e-9; pv += 0.1) {
        const double cur = p.costAwareAcquisition(ei, pv);
        EXPECT_LT(cur, prev) << "p_violate=" << pv;
        prev = cur;
    }
    EXPECT_DOUBLE_EQ(p.costAwareAcquisition(ei, 1.0), 0.0);
    // NaN probability degrades to plain cost-normalized EI.
    EXPECT_DOUBLE_EQ(p.costAwareAcquisition(ei, kNan),
                     ei / p.options().window_seconds);
}

TEST(BudgetPolicy, NormalizeFloorsDegenerateCosts)
{
    BudgetOptions o = activeOptions();
    BudgetPolicy p(o);
    const double floor = o.abort_check_fraction * o.window_seconds;
    EXPECT_DOUBLE_EQ(p.normalize(1.0, 0.0), 1.0 / floor);
    EXPECT_DOUBLE_EQ(p.normalize(1.0, kNan), 1.0 / floor);
    EXPECT_DOUBLE_EQ(p.normalize(1.0, o.window_seconds),
                     1.0 / o.window_seconds);
}

// ---- Lookahead cutoff ------------------------------------------------

TEST(BudgetPolicy, LookaheadCutsWhenResidualBudgetCannotMatter)
{
    BudgetOptions o = activeOptions(10.0); // 5 windows
    BudgetPolicy p(o);
    // 5 windows x EI 1e-3 = 5e-3 >= min_gain: keep searching.
    EXPECT_FALSE(p.lookaheadExhausted(1e-3));
    // 5 windows x EI 1e-5 < 1e-3: nothing left can matter.
    EXPECT_TRUE(p.lookaheadExhausted(1e-5));
    // A broken EI estimate must never end the search.
    EXPECT_FALSE(p.lookaheadExhausted(kNan));
    // No affordable window left: exhausted regardless of EI.
    for (int i = 0; i < 5; ++i)
        p.chargeWindow(true);
    EXPECT_TRUE(p.lookaheadExhausted(100.0));
}

// ---- Unlimited budget == EI-threshold baseline, bit for bit ----------

platform::SimulatedServer
makeServer(uint64_t seed)
{
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(),
        {workloads::lcJob("img-dnn", 0.4), workloads::lcJob("memcached", 0.3),
         workloads::bgJob("fluidanimate")},
        std::make_unique<workloads::AnalyticModel>(), seed, 0.02);
}

core::CliteOptions
fastClite(uint64_t seed)
{
    core::CliteOptions o;
    o.max_iterations = 10;
    o.polish_iterations = 3;
    o.seed = seed;
    return o;
}

void
expectBitIdentical(const core::ControllerResult& a,
                   const core::ControllerResult& b)
{
    ASSERT_EQ(a.samples, b.samples);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (size_t i = 0; i < a.trace.size(); ++i) {
        const core::SampleRecord& ra = a.trace[i];
        const core::SampleRecord& rb = b.trace[i];
        EXPECT_TRUE(ra.alloc == rb.alloc) << "sample " << i;
        EXPECT_EQ(ra.score, rb.score) << "sample " << i;
        EXPECT_EQ(ra.all_qos_met, rb.all_qos_met) << "sample " << i;
        EXPECT_EQ(ra.status, rb.status) << "sample " << i;
        EXPECT_EQ(ra.cost_seconds, rb.cost_seconds) << "sample " << i;
    }
    EXPECT_EQ(a.best_score, b.best_score);
    EXPECT_EQ(a.feasible, b.feasible);
    ASSERT_EQ(a.best.has_value(), b.best.has_value());
    if (a.best.has_value()) {
        EXPECT_TRUE(*a.best == *b.best);
    }
    EXPECT_EQ(a.budget_exhausted, b.budget_exhausted);
}

TEST(BudgetPolicy, UnlimitedBudgetReproducesBaselineBitForBit)
{
    // The inert-at-infinity guarantee across 10 seeds: every stopping
    // decision, every probe, every recorded bit of the trace must
    // match the EI-threshold baseline when budget_seconds is 0 (the
    // default), infinite, or negative. This is what keeps the
    // unbudgeted goldens byte-identical.
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        auto base_server = makeServer(seed);
        core::CliteController base_ctl(fastClite(seed));
        core::ControllerResult base = base_ctl.run(base_server);
        EXPECT_FALSE(base.budget_exhausted);

        for (double b : {kInf, -5.0}) {
            core::CliteOptions o = fastClite(seed);
            o.budget.budget_seconds = b;
            auto server = makeServer(seed);
            core::CliteController ctl(o);
            core::ControllerResult r = ctl.run(server);
            expectBitIdentical(base, r);
            // The inert policy must also leave the server's partial-
            // window peek machinery untouched.
            EXPECT_EQ(server.partialObserveCount(), 0u);
        }
    }
}

// ---- Budgeted controller end-to-end invariants -----------------------

TEST(BudgetPolicy, BudgetedRunStopsWithinBudgetAndFlagsIt)
{
    // A budget that bites mid-search: the trace's charged seconds stay
    // within the budget (every window is affordability-checked before
    // it starts) and the result reports the budget stop. The
    // unbudgeted twin runs longer.
    auto server = makeServer(3);
    core::CliteOptions o = fastClite(3);
    o.max_iterations = 40;
    core::CliteController unbounded(o);
    core::ControllerResult full = unbounded.run(server);

    core::CliteOptions ob = fastClite(3);
    ob.max_iterations = 40;
    ob.budget.budget_seconds = 30.0;
    auto bserver = makeServer(3);
    core::CliteController bounded(ob);
    core::ControllerResult r = bounded.run(bserver);

    EXPECT_LE(r.chargedSeconds(), 30.0 + 1e-9);
    EXPECT_LT(r.samples, full.samples);
    EXPECT_TRUE(r.budget_exhausted);
    EXPECT_TRUE(r.best.has_value());
    // The violating-seconds accounting never exceeds the total.
    EXPECT_LE(r.violatingSampleSeconds(), r.chargedSeconds() + 1e-9);
}

} // namespace
} // namespace bo
} // namespace clite

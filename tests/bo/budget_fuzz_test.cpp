/**
 * @file
 * Fuzz layer for the mid-window early-abort predicate
 * (BudgetPolicy::shouldAbort). The predicate sits between raw
 * platform counters and a decision to throw away a paid-for window,
 * so it gets the adversarial treatment: randomized partial-counter
 * streams full of NaN/∞/zero-load/negative garbage must never crash
 * it (the suite runs under ASan/UBSan in CI) or extract an abort
 * without a legitimate witness, and — the safety contract — no
 * window that would have ended feasible may ever be aborted, both
 * synthetically (partials anywhere inside the kMaxPartialOvershoot
 * envelope) and in deterministic replay against the real platform's
 * partial-window model.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "bo/budget.h"
#include "common/rng.h"
#include "core/score.h"
#include "platform/server.h"
#include "stats/sampling.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace bo {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/**
 * Draw a hostile value: garbage often enough to stress every guard,
 * clean often enough that genuine aborts still occur.
 */
double
hostile(Rng& rng, double lo, double hi)
{
    switch (rng.uniformInt(0, 7)) {
    case 0:
        return kNan;
    case 1:
        return kInf;
    case 2:
        return -kInf;
    case 3:
        return -rng.uniform(0.0, 100.0);
    case 4:
        return 0.0;
    default:
        return rng.uniform(lo, hi);
    }
}

BudgetOptions
randomOptions(Rng& rng)
{
    BudgetOptions o;
    o.budget_seconds = rng.uniform(1.0, 100.0);
    o.abort_margin = kMaxPartialOvershoot + rng.uniform(0.0, 2.0);
    o.abort_check_fraction = rng.uniform(0.05, 0.95);
    o.abort_min_fraction = rng.uniform(0.0, 0.5);
    o.early_abort = rng.uniform() < 0.9;
    return o;
}

TEST(BudgetFuzz, ShouldAbortSurvivesHostileStreamsAndNeedsAWitness)
{
    // 2000 randomized streams of up to 8 samples, most fields drawn
    // from a garbage-heavy distribution. The predicate must return a
    // decision (no crash, no UB) and every `true` must be justified
    // by a clean witness sample: valid LC, finite positive latency
    // and target, trustworthy fraction, and a genuine margin breach.
    Rng rng(2024);
    int aborts = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        const BudgetOptions o = randomOptions(rng);
        std::vector<PartialTailSample> stream(
            size_t(rng.uniformInt(0, 8)));
        for (PartialTailSample& s : stream) {
            s.p95_ms = hostile(rng, 0.1, 50.0);
            s.target_ms = hostile(rng, 0.5, 20.0);
            s.fraction = hostile(rng, 0.0, 1.0);
            s.is_lc = rng.uniform() < 0.7;
            s.valid = rng.uniform() < 0.8;
        }
        const bool abort = BudgetPolicy::shouldAbort(stream, o);
        if (!abort)
            continue;
        ++aborts;
        EXPECT_TRUE(o.early_abort) << "trial " << trial;
        bool witness = false;
        for (const PartialTailSample& s : stream) {
            if (s.is_lc && s.valid && std::isfinite(s.p95_ms) &&
                s.p95_ms > 0.0 && std::isfinite(s.target_ms) &&
                s.target_ms > 0.0 && std::isfinite(s.fraction) &&
                s.fraction >= o.abort_min_fraction &&
                s.p95_ms > s.target_ms * o.abort_margin)
                witness = true;
        }
        EXPECT_TRUE(witness) << "abort without witness, trial " << trial;
    }
    // The fuzz distribution must actually exercise both branches.
    EXPECT_GT(aborts, 20);
}

TEST(BudgetFuzz, AllViolatingCleanStreamAborts)
{
    // The all-violating extreme: every sample is a clean LC reading
    // far past the margin — the predicate must fire.
    BudgetOptions o;
    o.budget_seconds = 10.0;
    std::vector<PartialTailSample> stream(3);
    for (PartialTailSample& s : stream) {
        s.p95_ms = 50.0;
        s.target_ms = 5.0;
        s.fraction = 0.25;
    }
    EXPECT_TRUE(BudgetPolicy::shouldAbort(stream, o));
    // ... but not with early_abort off, and not on BG-only streams.
    o.early_abort = false;
    EXPECT_FALSE(BudgetPolicy::shouldAbort(stream, o));
    o.early_abort = true;
    for (PartialTailSample& s : stream)
        s.is_lc = false;
    EXPECT_FALSE(BudgetPolicy::shouldAbort(stream, o));
    EXPECT_FALSE(BudgetPolicy::shouldAbort({}, o));
}

TEST(BudgetFuzz, NeverAbortsInsideThePartialOvershootEnvelope)
{
    // Safety property, synthetic form: a window that ENDS feasible
    // (full-window p95 <= target) whose partial reading lies anywhere
    // inside the kMaxPartialOvershoot envelope can never be aborted,
    // for any legal margin — the constructor-enforced
    // abort_margin >= kMaxPartialOvershoot makes the predicate's
    // threshold unreachable from inside the envelope.
    Rng rng(77);
    for (int trial = 0; trial < 5000; ++trial) {
        BudgetOptions o;
        o.budget_seconds = rng.uniform(1.0, 50.0);
        o.abort_margin = kMaxPartialOvershoot + rng.uniform(0.0, 3.0);
        o.abort_min_fraction = rng.uniform(0.0, 0.3);
        std::vector<PartialTailSample> stream(
            size_t(rng.uniformInt(1, 6)));
        for (PartialTailSample& s : stream) {
            const double target = rng.uniform(1.0, 20.0);
            const double full_p95 = target * rng.uniform(0.0, 1.0);
            s.target_ms = target;
            s.p95_ms =
                full_p95 * rng.uniform(0.5, kMaxPartialOvershoot);
            s.fraction = rng.uniform(0.0, 1.0);
        }
        EXPECT_FALSE(BudgetPolicy::shouldAbort(stream, o))
            << "aborted a feasible window, trial " << trial;
    }
}

TEST(BudgetFuzz, NeverAbortsWindowsThatEndFeasibleInReplay)
{
    // Safety property against the REAL partial-window model: sample
    // random valid allocations, peek mid-window exactly as the
    // budgeted controller does, then let the same window run to
    // completion. Whenever the full window ends with every QoS met,
    // the peek must not have aborted it. (Deterministic replay: the
    // peek is side-effect-free, so the full observation is the very
    // window the predicate judged.)
    platform::SimulatedServer server(
        platform::ServerConfig::xeonSilver4114(),
        {workloads::lcJob("img-dnn", 0.5), workloads::lcJob("xapian", 0.4),
         workloads::bgJob("canneal")},
        std::make_unique<workloads::AnalyticModel>(), 9, 0.02);
    const platform::ServerConfig& config = server.config();
    BudgetOptions o;
    o.budget_seconds = 100.0;

    Rng rng(41);
    int feasible_windows = 0;
    for (int trial = 0; trial < 200; ++trial) {
        // Random valid allocation: every resource column is a random
        // composition with every job getting at least one unit.
        platform::Allocation alloc(server.jobCount(), config);
        for (size_t r = 0; r < config.resources().size(); ++r) {
            std::vector<int> parts = stats::sampleComposition(
                config.resource(r).units, int(server.jobCount()), rng, 1);
            for (size_t j = 0; j < server.jobCount(); ++j)
                alloc.set(j, r, parts[j]);
        }
        server.apply(alloc);

        std::vector<platform::JobObservation> partial =
            server.observePartialWindow(o.abort_check_fraction);
        std::vector<PartialTailSample> tails;
        for (const auto& ob : partial) {
            PartialTailSample t;
            t.p95_ms = ob.p95_ms;
            t.target_ms = ob.qos_target_ms;
            t.is_lc = ob.is_lc;
            t.valid = ob.valid && !ob.stale;
            t.fraction = ob.window_fraction;
            tails.push_back(t);
        }
        const bool aborted = BudgetPolicy::shouldAbort(tails, o);

        core::ScoreBreakdown sb =
            core::scoreObservations(server.observe());
        if (sb.all_qos_met) {
            ++feasible_windows;
            EXPECT_FALSE(aborted)
                << "aborted a window that ended feasible, trial "
                << trial;
        }
    }
    // The sweep must contain real feasible windows or the property is
    // vacuous.
    EXPECT_GT(feasible_windows, 10);
}

} // namespace
} // namespace bo
} // namespace clite

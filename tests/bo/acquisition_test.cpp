/**
 * @file
 * Unit tests for acquisition functions (Eq. 2 and alternatives).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bo/acquisition.h"
#include "common/error.h"
#include "stats/distributions.h"

namespace clite {
namespace bo {
namespace {

gp::GaussianProcess
fittedGp()
{
    gp::GaussianProcess gp(std::make_unique<gp::Matern52Kernel>(1, 0.4,
                                                                1.0),
                           1e-6);
    gp.fit({{0.0}, {0.5}, {1.0}}, {0.2, 0.8, 0.1});
    return gp;
}

TEST(ExpectedImprovement, MatchesClosedFormFromPosterior)
{
    gp::GaussianProcess gp = fittedGp();
    ExpectedImprovement ei(0.01);
    linalg::Vector x = {0.3};
    gp::Prediction p = gp.predict(x);
    double incumbent = 0.8;
    double improve = p.mean - incumbent - 0.01;
    double z = improve / p.stddev();
    double expect = improve * stats::normalCdf(z) +
                    p.stddev() * stats::normalPdf(z);
    EXPECT_NEAR(ei.evaluate(gp, x, incumbent), expect, 1e-12);
}

TEST(ExpectedImprovement, ZeroAtZeroVariance)
{
    // At a training point of a near-noiseless GP, sigma ~ 0 -> EI ~ 0
    // (Eq. 2's second branch).
    gp::GaussianProcess gp = fittedGp();
    ExpectedImprovement ei(0.01);
    EXPECT_LT(ei.evaluate(gp, {0.5}, 0.8), 1e-3);
}

TEST(ExpectedImprovement, NonNegativeEverywhere)
{
    gp::GaussianProcess gp = fittedGp();
    ExpectedImprovement ei(0.01);
    for (double t = -0.5; t <= 1.5; t += 0.05)
        EXPECT_GE(ei.evaluate(gp, {t}, 0.8), 0.0) << "at " << t;
}

TEST(ExpectedImprovement, HigherZetaMeansMoreExploration)
{
    // Larger zeta discounts exploitation near the incumbent, shifting
    // relative preference toward uncertain regions.
    gp::GaussianProcess gp = fittedGp();
    ExpectedImprovement small(0.0), big(0.3);
    linalg::Vector near_best = {0.52};
    linalg::Vector unexplored = {1.6};
    double ratio_small = small.evaluate(gp, unexplored, 0.8) /
                         (small.evaluate(gp, near_best, 0.8) + 1e-12);
    double ratio_big = big.evaluate(gp, unexplored, 0.8) /
                       (big.evaluate(gp, near_best, 0.8) + 1e-12);
    EXPECT_GT(ratio_big, ratio_small);
}

TEST(ProbabilityOfImprovement, IsAProbability)
{
    gp::GaussianProcess gp = fittedGp();
    ProbabilityOfImprovement pi(0.01);
    for (double t = -0.5; t <= 1.5; t += 0.1) {
        double v = pi.evaluate(gp, {t}, 0.5);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(UpperConfidenceBound, EqualsMeanPlusKappaSigma)
{
    gp::GaussianProcess gp = fittedGp();
    UpperConfidenceBound ucb(2.0);
    linalg::Vector x = {0.25};
    gp::Prediction p = gp.predict(x);
    EXPECT_NEAR(ucb.evaluate(gp, x, 0.0), p.mean + 2.0 * p.stddev(),
                1e-12);
}

TEST(AcquisitionFactory, NamesAndValidation)
{
    EXPECT_EQ(makeAcquisition("ei", 0.01)->name(), "ei");
    EXPECT_EQ(makeAcquisition("pi", 0.01)->name(), "pi");
    EXPECT_EQ(makeAcquisition("ucb", 2.0)->name(), "ucb");
    EXPECT_THROW(makeAcquisition("thompson"), Error);
    EXPECT_THROW(ExpectedImprovement(-0.1), Error);
}

} // namespace
} // namespace bo
} // namespace clite

/**
 * @file
 * Unit tests for acquisition functions (Eq. 2 and alternatives).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>

#include "bo/acquisition.h"
#include "common/arena.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "stats/distributions.h"

namespace clite {
namespace bo {
namespace {

gp::GaussianProcess
fittedGp()
{
    gp::GaussianProcess gp(std::make_unique<gp::Matern52Kernel>(1, 0.4,
                                                                1.0),
                           1e-6);
    gp.fit({{0.0}, {0.5}, {1.0}}, {0.2, 0.8, 0.1});
    return gp;
}

TEST(ExpectedImprovement, MatchesClosedFormFromPosterior)
{
    gp::GaussianProcess gp = fittedGp();
    ExpectedImprovement ei(0.01);
    linalg::Vector x = {0.3};
    gp::Prediction p = gp.predict(x);
    double incumbent = 0.8;
    double improve = p.mean - incumbent - 0.01;
    double z = improve / p.stddev();
    double expect = improve * stats::normalCdf(z) +
                    p.stddev() * stats::normalPdf(z);
    EXPECT_NEAR(ei.evaluate(gp, x, incumbent), expect, 1e-12);
}

TEST(ExpectedImprovement, ZeroAtZeroVariance)
{
    // At a training point of a near-noiseless GP, sigma ~ 0 -> EI ~ 0
    // (Eq. 2's second branch).
    gp::GaussianProcess gp = fittedGp();
    ExpectedImprovement ei(0.01);
    EXPECT_LT(ei.evaluate(gp, {0.5}, 0.8), 1e-3);
}

TEST(ExpectedImprovement, NonNegativeEverywhere)
{
    gp::GaussianProcess gp = fittedGp();
    ExpectedImprovement ei(0.01);
    for (double t = -0.5; t <= 1.5; t += 0.05)
        EXPECT_GE(ei.evaluate(gp, {t}, 0.8), 0.0) << "at " << t;
}

TEST(ExpectedImprovement, HigherZetaMeansMoreExploration)
{
    // Larger zeta discounts exploitation near the incumbent, shifting
    // relative preference toward uncertain regions.
    gp::GaussianProcess gp = fittedGp();
    ExpectedImprovement small(0.0), big(0.3);
    linalg::Vector near_best = {0.52};
    linalg::Vector unexplored = {1.6};
    double ratio_small = small.evaluate(gp, unexplored, 0.8) /
                         (small.evaluate(gp, near_best, 0.8) + 1e-12);
    double ratio_big = big.evaluate(gp, unexplored, 0.8) /
                       (big.evaluate(gp, near_best, 0.8) + 1e-12);
    EXPECT_GT(ratio_big, ratio_small);
}

TEST(ProbabilityOfImprovement, IsAProbability)
{
    gp::GaussianProcess gp = fittedGp();
    ProbabilityOfImprovement pi(0.01);
    for (double t = -0.5; t <= 1.5; t += 0.1) {
        double v = pi.evaluate(gp, {t}, 0.5);
        EXPECT_GE(v, 0.0);
        EXPECT_LE(v, 1.0);
    }
}

TEST(UpperConfidenceBound, EqualsMeanPlusKappaSigma)
{
    gp::GaussianProcess gp = fittedGp();
    UpperConfidenceBound ucb(2.0);
    linalg::Vector x = {0.25};
    gp::Prediction p = gp.predict(x);
    EXPECT_NEAR(ucb.evaluate(gp, x, 0.0), p.mean + 2.0 * p.stddev(),
                1e-12);
}

::testing::AssertionResult
bitEqual(double a, double b)
{
    if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " != " << b << " (bit patterns differ)";
}

gp::GaussianProcess
fittedGp3d(size_t n)
{
    Rng rng(512);
    gp::GaussianProcess gp(std::make_unique<gp::Matern52Kernel>(3, 0.6,
                                                                1.0),
                           1e-6);
    std::vector<linalg::Vector> x(n, linalg::Vector(3));
    std::vector<double> y;
    for (auto& xi : x) {
        for (double& v : xi)
            v = rng.uniform(-1.0, 1.0);
        y.push_back(std::sin(3.0 * xi[0]) + 0.5 * xi[1] - xi[2] * xi[2]);
    }
    gp.fit(x, y);
    return gp;
}

std::vector<linalg::Vector>
candidates3d(size_t count, uint64_t seed)
{
    Rng rng(seed);
    std::vector<linalg::Vector> cands(count, linalg::Vector(3));
    for (auto& c : cands)
        for (double& v : c)
            v = rng.uniform(-1.5, 1.5);
    return cands;
}

TEST(AcquisitionBatch, BatchBitIdenticalToScalarForAllFunctions)
{
    gp::GaussianProcess gp = fittedGp3d(30);
    std::vector<linalg::Vector> cands = candidates3d(97, 77);
    const double incumbent = 0.9;
    for (const char* name : {"ei", "pi", "ucb"}) {
        auto acq = makeAcquisition(name, name == std::string("ucb") ? 2.0
                                                                    : 0.01);
        std::vector<double> batch(cands.size(), 0.0);
        acq->evaluateBatch(gp, cands, 0, cands.size(), incumbent,
                           batch.data());
        for (size_t i = 0; i < cands.size(); ++i)
            EXPECT_TRUE(bitEqual(batch[i],
                                 acq->evaluate(gp, cands[i], incumbent)))
                << name << " candidate " << i;
    }
}

TEST(AcquisitionBatch, ScoreCandidatesSerialVsParallelBitIdentical)
{
    gp::GaussianProcess gp = fittedGp3d(25);
    std::vector<linalg::Vector> cands = candidates3d(300, 99);
    ExpectedImprovement ei(0.01);

    setGlobalThreadCount(1);
    std::vector<double> serial(cands.size(), 0.0);
    scoreCandidates(ei, gp, cands, 0.9, serial.data());

    setGlobalThreadCount(4);
    std::vector<double> parallel(cands.size(), 0.0);
    scoreCandidates(ei, gp, cands, 0.9, parallel.data());
    setGlobalThreadCount(ThreadPool::defaultThreadCount());

    for (size_t i = 0; i < cands.size(); ++i)
        EXPECT_TRUE(bitEqual(serial[i], parallel[i])) << "candidate " << i;
}

TEST(AcquisitionBatch, SmallRoundsFallBackWithIdenticalResults)
{
    // Below 2x the thread count scoreCandidates must not fan out; the
    // observable contract is that scores still match the direct batch
    // evaluation bit-for-bit for sizes around the block boundary.
    gp::GaussianProcess gp = fittedGp3d(20);
    ExpectedImprovement ei(0.01);
    for (size_t count : {size_t(1), size_t(3), size_t(63), size_t(65)}) {
        std::vector<linalg::Vector> cands = candidates3d(count, 40 + count);
        std::vector<double> scored(count, 0.0), direct(count, 0.0);
        scoreCandidates(ei, gp, cands, 0.5, scored.data());
        ei.evaluateBatch(gp, cands, 0, count, 0.5, direct.data());
        for (size_t i = 0; i < count; ++i)
            EXPECT_TRUE(bitEqual(scored[i], direct[i]))
                << "count=" << count << " i=" << i;
    }
}

TEST(AcquisitionBatch, SecondIdenticalRoundIsAllocationFreeWithSameDigest)
{
    gp::GaussianProcess gp = fittedGp3d(30);
    std::vector<linalg::Vector> cands = candidates3d(256, 123);
    ExpectedImprovement ei(0.01);

    auto round = [&] {
        std::vector<double> out(cands.size(), 0.0);
        ei.evaluateBatch(gp, cands, 0, cands.size(), 0.9, out.data());
        uint64_t digest = 1469598103934665603ull; // FNV-1a over the bits
        for (double v : out) {
            digest ^= std::bit_cast<uint64_t>(v);
            digest *= 1099511628211ull;
        }
        return digest;
    };

    uint64_t first = round();
    round(); // let the arena coalesce into its steady-state chunk
    ScratchArena& arena = ScratchArena::forCurrentThread();
    size_t grows = arena.growCount();
    uint64_t again = round();
    EXPECT_EQ(arena.growCount(), grows)
        << "steady-state acquisition round touched the heap";
    EXPECT_EQ(first, again);
}

TEST(AcquisitionFactory, NamesAndValidation)
{
    EXPECT_EQ(makeAcquisition("ei", 0.01)->name(), "ei");
    EXPECT_EQ(makeAcquisition("pi", 0.01)->name(), "pi");
    EXPECT_EQ(makeAcquisition("ucb", 2.0)->name(), "ucb");
    EXPECT_THROW(makeAcquisition("thompson"), Error);
    EXPECT_THROW(ExpectedImprovement(-0.1), Error);
}

} // namespace
} // namespace bo
} // namespace clite

/**
 * @file
 * Determinism of the budget-bounded search: the budget layer adds
 * mid-window peeks, cost-normalized acquisition, and extra stopping
 * rules, and NONE of them may depend on the thread pool. A budgeted
 * run must be bit-identical across thread counts 1..8 (1 = serial
 * path, >1 = pooled acquisition), sample for sample, charge for
 * charge — the same invariant the unbudgeted controller already
 * holds.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/thread_pool.h"
#include "core/clite.h"
#include "platform/server.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace bo {
namespace {

platform::SimulatedServer
makeServer()
{
    // Loaded enough that the search spends violating windows and the
    // early-abort machinery actually fires.
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(),
        {workloads::lcJob("xapian", 0.7), workloads::lcJob("memcached", 0.7),
         workloads::bgJob("canneal")},
        std::make_unique<workloads::AnalyticModel>(), 3, 0.02);
}

core::ControllerResult
runBudgeted(int threads)
{
    setGlobalThreadCount(threads);
    core::CliteOptions o;
    o.seed = 11;
    o.max_iterations = 14;
    o.polish_iterations = 3;
    o.budget.budget_seconds = 50.0;
    auto server = makeServer();
    core::CliteController ctl(o);
    return ctl.run(server);
}

TEST(BudgetDeterminism, BudgetedSearchBitIdenticalAcrossThreadCounts)
{
    const core::ControllerResult serial = runBudgeted(1);
    // The run must actually exercise the budget machinery, otherwise
    // the property is the (already-tested) unbudgeted one.
    bool any_aborted = false;
    for (const auto& rec : serial.trace)
        if (rec.status == core::SampleStatus::Aborted)
            any_aborted = true;
    EXPECT_TRUE(any_aborted || serial.budget_exhausted)
        << "budget layer never engaged; scenario too easy";

    for (int threads = 2; threads <= 8; ++threads) {
        const core::ControllerResult par = runBudgeted(threads);
        ASSERT_EQ(par.samples, serial.samples) << "threads=" << threads;
        ASSERT_EQ(par.trace.size(), serial.trace.size())
            << "threads=" << threads;
        for (size_t i = 0; i < serial.trace.size(); ++i) {
            const core::SampleRecord& a = serial.trace[i];
            const core::SampleRecord& b = par.trace[i];
            EXPECT_TRUE(a.alloc == b.alloc)
                << "threads=" << threads << " sample=" << i;
            EXPECT_EQ(a.score, b.score)
                << "threads=" << threads << " sample=" << i;
            EXPECT_EQ(a.status, b.status)
                << "threads=" << threads << " sample=" << i;
            EXPECT_EQ(a.all_qos_met, b.all_qos_met)
                << "threads=" << threads << " sample=" << i;
            EXPECT_EQ(a.cost_seconds, b.cost_seconds)
                << "threads=" << threads << " sample=" << i;
        }
        EXPECT_EQ(par.best_score, serial.best_score)
            << "threads=" << threads;
        ASSERT_EQ(par.best.has_value(), serial.best.has_value());
        if (serial.best.has_value()) {
            EXPECT_TRUE(*par.best == *serial.best)
                << "threads=" << threads;
        }
        EXPECT_EQ(par.budget_exhausted, serial.budget_exhausted)
            << "threads=" << threads;
        EXPECT_EQ(par.chargedSeconds(), serial.chargedSeconds())
            << "threads=" << threads;
        EXPECT_EQ(par.violatingSampleSeconds(),
                  serial.violatingSampleSeconds())
            << "threads=" << threads;
    }
    setGlobalThreadCount(1);
}

} // namespace
} // namespace bo
} // namespace clite

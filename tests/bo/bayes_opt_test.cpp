/**
 * @file
 * Unit tests for the generic Bayesian-optimization driver
 * (Algorithm 1).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "bo/bayes_opt.h"
#include "common/error.h"
#include "common/thread_pool.h"

namespace clite {
namespace bo {
namespace {

BayesOptOptions
fastOptions()
{
    BayesOptOptions o;
    o.initial_samples = 5;
    o.max_iterations = 20;
    o.candidates = 256;
    o.hyper_fit_every = 5;
    return o;
}

TEST(BayesOpt, Maximizes1dSmoothFunction)
{
    BayesOpt bo({0.0}, {1.0}, std::make_unique<ExpectedImprovement>(0.01),
                fastOptions());
    Rng rng(3);
    auto f = [](const linalg::Vector& x) {
        return -(x[0] - 0.73) * (x[0] - 0.73);
    };
    BayesOptResult r = bo.maximize(f, rng);
    EXPECT_NEAR(r.best_x[0], 0.73, 0.05);
    EXPECT_GT(r.best_y, -0.01);
}

TEST(BayesOpt, BeatsItsOwnSeedSamples)
{
    BayesOpt bo({-2.0, -2.0}, {2.0, 2.0},
                std::make_unique<ExpectedImprovement>(0.01), fastOptions());
    Rng rng(7);
    auto f = [](const linalg::Vector& x) {
        return std::exp(-(x[0] * x[0] + x[1] * x[1]));
    };
    BayesOptResult r = bo.maximize(f, rng);
    // Best of the seed phase vs final best: BO must improve.
    double best_seed = -1e100;
    for (int i = 0; i < 5; ++i)
        best_seed = std::max(best_seed, r.history[size_t(i)].y);
    EXPECT_GE(r.best_y, best_seed);
    EXPECT_GT(r.best_y, 0.8); // near the peak value 1.0
}

TEST(BayesOpt, HistoryRecordsEveryEvaluation)
{
    BayesOptOptions o = fastOptions();
    o.max_iterations = 7;
    BayesOpt bo({0.0}, {1.0}, std::make_unique<ExpectedImprovement>(0.01),
                o);
    Rng rng(11);
    int calls = 0;
    auto f = [&](const linalg::Vector& x) {
        ++calls;
        return x[0];
    };
    BayesOptResult r = bo.maximize(f, rng);
    EXPECT_EQ(int(r.history.size()), calls);
    EXPECT_LE(int(r.history.size()), 5 + 7);
}

TEST(BayesOpt, EiTerminationStopsEarly)
{
    BayesOptOptions o = fastOptions();
    o.max_iterations = 50;
    o.ei_termination = 0.5; // absurdly high: stop almost immediately
    BayesOpt bo({0.0}, {1.0}, std::make_unique<ExpectedImprovement>(0.01),
                o);
    Rng rng(13);
    auto f = [](const linalg::Vector& x) { return x[0]; };
    BayesOptResult r = bo.maximize(f, rng);
    EXPECT_TRUE(r.terminated_early);
    EXPECT_LT(r.iterations, 50);
}

TEST(BayesOpt, WorksWithAlternativeAcquisitions)
{
    for (const char* name : {"pi", "ucb"}) {
        BayesOpt bo({0.0}, {1.0}, makeAcquisition(name, 0.05),
                    fastOptions());
        Rng rng(17);
        auto f = [](const linalg::Vector& x) {
            return -(x[0] - 0.4) * (x[0] - 0.4);
        };
        BayesOptResult r = bo.maximize(f, rng);
        EXPECT_NEAR(r.best_x[0], 0.4, 0.15) << name;
    }
}

TEST(BayesOpt, ConstructionValidation)
{
    EXPECT_THROW(BayesOpt({}, {}, std::make_unique<ExpectedImprovement>()),
                 Error);
    EXPECT_THROW(BayesOpt({0.0}, {0.0, 1.0},
                          std::make_unique<ExpectedImprovement>()),
                 Error);
    EXPECT_THROW(BayesOpt({1.0}, {0.0},
                          std::make_unique<ExpectedImprovement>()),
                 Error);
    EXPECT_THROW(BayesOpt({0.0}, {1.0}, nullptr), Error);
    BayesOptOptions bad;
    bad.initial_samples = 1;
    EXPECT_THROW(BayesOpt({0.0}, {1.0},
                          std::make_unique<ExpectedImprovement>(), bad),
                 Error);
}

TEST(BayesOpt, ParallelAcquisitionBitIdenticalToSerial)
{
    // Candidates are drawn serially from the caller's RNG and only
    // their acquisition evaluations fan out, so a parallel run must be
    // bit-identical to a serial one — same best point, same value,
    // same history, down to the last bit.
    auto run = [](int threads) {
        setGlobalThreadCount(threads);
        BayesOpt bo({-1.0, -1.0}, {1.0, 1.0},
                    std::make_unique<ExpectedImprovement>(0.01),
                    fastOptions());
        Rng rng(11);
        auto f = [](const linalg::Vector& x) {
            return std::cos(3.0 * x[0]) * std::exp(-x[1] * x[1]);
        };
        return bo.maximize(f, rng);
    };

    BayesOptResult serial = run(1);
    for (int threads : {2, 4}) {
        BayesOptResult par = run(threads);
        ASSERT_EQ(par.history.size(), serial.history.size())
            << "threads=" << threads;
        for (size_t i = 0; i < serial.history.size(); ++i) {
            ASSERT_EQ(par.history[i].x.size(), serial.history[i].x.size());
            for (size_t d = 0; d < serial.history[i].x.size(); ++d)
                EXPECT_EQ(par.history[i].x[d], serial.history[i].x[d])
                    << "threads=" << threads << " sample=" << i;
            EXPECT_EQ(par.history[i].y, serial.history[i].y)
                << "threads=" << threads << " sample=" << i;
        }
        for (size_t d = 0; d < serial.best_x.size(); ++d)
            EXPECT_EQ(par.best_x[d], serial.best_x[d]);
        EXPECT_EQ(par.best_y, serial.best_y);
        EXPECT_EQ(par.iterations, serial.iterations);
        EXPECT_EQ(par.terminated_early, serial.terminated_early);
    }
    setGlobalThreadCount(1);
}

} // namespace
} // namespace bo
} // namespace clite

/**
 * @file
 * Tests for the resilience harness: scaled fault plans, single runs
 * under faults, and the fault-rate sweep's shape and baselines.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "harness/resilience.h"
#include "workloads/catalog.h"

namespace clite {
namespace harness {
namespace {

ServerSpec
smallSpec()
{
    ServerSpec spec;
    spec.jobs = {
        workloads::lcJob("img-dnn", 0.1),
        workloads::lcJob("memcached", 0.1),
    };
    return spec;
}

TEST(ScaledFaultPlan, ZeroRateIsClean)
{
    platform::FaultPlan plan = scaledFaultPlan(0.0);
    EXPECT_FALSE(plan.any());
}

TEST(ScaledFaultPlan, RatesScaleTogether)
{
    platform::FaultPlan plan = scaledFaultPlan(0.2);
    EXPECT_TRUE(plan.any());
    EXPECT_DOUBLE_EQ(plan.apply_fail_prob, 0.2);
    EXPECT_DOUBLE_EQ(plan.dropout_prob, 0.1);
    EXPECT_DOUBLE_EQ(plan.spike_prob, 0.1);
    EXPECT_DOUBLE_EQ(plan.freeze_prob, 0.05);
    EXPECT_TRUE(plan.crashes.empty());
    EXPECT_TRUE(plan.knob_losses.empty());
}

TEST(ScaledFaultPlan, RejectsOutOfRangeRate)
{
    EXPECT_THROW(scaledFaultPlan(-0.1), Error);
    EXPECT_THROW(scaledFaultPlan(1.5), Error);
}

TEST(RunResilient, CleanPlanMatchesOrdinaryRun)
{
    ResilienceSpec spec;
    spec.server = smallSpec();
    spec.scheme = "equal-share";
    ResilienceOutcome out = runResilient(spec);
    EXPECT_TRUE(out.found_config);
    EXPECT_GT(out.truth_score, 0.0);
    EXPECT_EQ(out.wasted_samples, 0);
    EXPECT_EQ(out.fault_events, 0);
    EXPECT_EQ(out.samples, out.result.samples);
}

TEST(RunResilient, ReportsNoConfigInsteadOfThrowing)
{
    // Every apply fails forever: the single-sample scheme can never
    // program anything, so the run reports found_config = false — a
    // measured outcome, not an error.
    ResilienceSpec spec;
    spec.server = smallSpec();
    spec.scheme = "equal-share";
    spec.plan.apply_fail_prob = 1.0;
    ResilienceOutcome out = runResilient(spec);
    EXPECT_FALSE(out.found_config);
    EXPECT_DOUBLE_EQ(out.truth_score, 0.0);
    EXPECT_GT(out.fault_events, 0);
    EXPECT_GT(out.wasted_samples, 0);
}

TEST(FaultRateSweep, RowsOrderedWithCleanBaseline)
{
    std::vector<ResilienceSweepRow> rows = faultRateSweep(
        {"equal-share"}, smallSpec(), {0.0, 0.3});
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[0].scheme, "equal-share");
    EXPECT_DOUBLE_EQ(rows[0].fault_rate, 0.0);
    EXPECT_DOUBLE_EQ(rows[0].score_degradation, 0.0);
    EXPECT_DOUBLE_EQ(rows[1].fault_rate, 0.3);
    // Degradation is measured against the clean row's truth score.
    EXPECT_DOUBLE_EQ(rows[1].score_degradation,
                     rows[0].outcome.truth_score -
                         rows[1].outcome.truth_score);
}

} // namespace
} // namespace harness
} // namespace clite

/**
 * @file
 * Trace replays driven by the traffic subsystem: the percentile-over-
 * time QoS plumbing, the reoptimization-policy counters, and the
 * bit-identical-across-thread-counts contract the fleet benches
 * (bench/fig_traffic) rely on.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/thread_pool.h"
#include "harness/dynamic.h"
#include "workloads/catalog.h"
#include "workloads/traffic/traffic.h"

namespace clite {
namespace harness {
namespace {

ServerSpec
replaySpec()
{
    ServerSpec spec;
    spec.jobs = {workloads::lcJob("memcached", 0.1),
                 workloads::lcJob("img-dnn", 0.1),
                 workloads::bgJob("swaptions")};
    spec.seed = 61;
    return spec;
}

core::CliteOptions
fastClite()
{
    core::CliteOptions o;
    o.max_iterations = 10;
    o.polish_iterations = 2;
    return o;
}

bool
sameBits(double a, double b)
{
    return std::memcmp(&a, &b, sizeof a) == 0;
}

TEST(TrafficReplay, TimelineCarriesPercentileRatios)
{
    workloads::traffic::JitteredDiurnalTrace::Options o;
    o.base = 0.2;
    o.amplitude = 0.1;
    o.period_seconds = 40.0;
    o.jitter_interval_s = 2.0;
    workloads::traffic::JitteredDiurnalTrace trace(7, o);
    TraceReplayResult r = replayLoadTrace(replaySpec(), 0, trace, 40.0,
                                          2.0, fastClite());
    ASSERT_EQ(r.windows.size(), 20u);
    int violating = 0;
    for (const ReplayWindow& w : r.windows) {
        EXPECT_GT(w.worst_p95_ratio, 0.0);
        EXPECT_GE(w.worst_p99_ratio, w.worst_p95_ratio - 1e-12);
        violating += w.worst_p95_ratio > 1.0 ? 1 : 0;
    }
    // No faults are injected here, so the violating fraction is just
    // violating / total over the same windows the timeline shows.
    EXPECT_NEAR(r.violating_window_fraction,
                double(violating) / double(r.windows.size()), 1e-12);
    EXPECT_EQ(r.transients_ridden, 0);  // Immediate policy
    EXPECT_EQ(r.sustained_shifts, 0);
}

TEST(TrafficReplay, RidingPolicyAvoidsFlashCrowdSearches)
{
    workloads::traffic::SurgeProcess::Options so;
    so.horizon_seconds = 60.0;
    so.mean_interarrival_s = 15.0;
    so.decay_seconds = 2.5;
    so.mean_magnitude = 0.35;
    workloads::traffic::FlashCrowdTrace trace(301, 0.25, so);

    core::MonitorOptions naive;
    naive.violation_patience = 1;
    naive.drift_patience = 1;
    core::MonitorOptions riding = naive;
    riding.reopt_policy = core::ReoptPolicy::RideTransients;
    riding.transient_ride_windows = 3;

    TraceReplayResult n = replayLoadTrace(replaySpec(), 0, trace, 60.0,
                                          2.0, fastClite(), naive);
    TraceReplayResult r = replayLoadTrace(replaySpec(), 0, trace, 60.0,
                                          2.0, fastClite(), riding);
    EXPECT_GE(n.reoptimizations, 1); // crowds do provoke the naive arm
    EXPECT_LT(r.reoptimizations, n.reoptimizations);
    EXPECT_GE(r.transients_ridden, 1);
}

TEST(TrafficReplay, BitIdenticalAcrossThreadCounts)
{
    workloads::traffic::FlashCrowdTrace trace(77, 0.2);
    auto run = [&trace](int threads) {
        setGlobalThreadCount(threads);
        return replayLoadTrace(replaySpec(), 0, trace, 30.0, 2.0,
                               fastClite());
    };
    const int restore = ThreadPool::defaultThreadCount();
    TraceReplayResult one = run(1);
    TraceReplayResult eight = run(8);
    setGlobalThreadCount(restore);

    ASSERT_EQ(one.windows.size(), eight.windows.size());
    for (size_t i = 0; i < one.windows.size(); ++i) {
        const ReplayWindow& a = one.windows[i];
        const ReplayWindow& b = eight.windows[i];
        EXPECT_TRUE(sameBits(a.load, b.load)) << "window " << i;
        EXPECT_TRUE(sameBits(a.score, b.score)) << "window " << i;
        EXPECT_TRUE(sameBits(a.worst_p95_ratio, b.worst_p95_ratio))
            << "window " << i;
        EXPECT_TRUE(sameBits(a.worst_p99_ratio, b.worst_p99_ratio))
            << "window " << i;
        EXPECT_EQ(a.all_qos_met, b.all_qos_met) << "window " << i;
        EXPECT_EQ(a.reoptimized, b.reoptimized) << "window " << i;
    }
    EXPECT_EQ(one.reoptimizations, eight.reoptimizations);
    EXPECT_TRUE(sameBits(one.violating_window_fraction,
                         eight.violating_window_fraction));
    EXPECT_EQ(one.transients_ridden, eight.transients_ridden);
    EXPECT_EQ(one.sustained_shifts, eight.sustained_shifts);
}

} // namespace
} // namespace harness
} // namespace clite

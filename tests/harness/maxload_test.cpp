/**
 * @file
 * Tests for the max-supported-load probe behind the Figs. 7/8/12
 * heatmaps.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "harness/maxload.h"
#include "workloads/catalog.h"

namespace clite {
namespace harness {
namespace {

TEST(MaxLoad, ZeroWhenNothingFits)
{
    // Two saturating LC jobs leave no room for any memcached load.
    MaxLoadQuery q;
    q.fixed_jobs = {workloads::lcJob("img-dnn", 1.0),
                    workloads::lcJob("masstree", 1.0)};
    q.probe_workload = "memcached";
    q.noise_sigma = 0.0;
    EXPECT_DOUBLE_EQ(maxSupportedLoad("oracle", q), 0.0);
}

TEST(MaxLoad, FullWhenCompanionsAreTiny)
{
    // With two 10% companions the probe fits even at its own max.
    MaxLoadQuery q;
    q.fixed_jobs = {workloads::lcJob("img-dnn", 0.1),
                    workloads::lcJob("xapian", 0.1)};
    q.probe_workload = "memcached";
    q.noise_sigma = 0.0;
    EXPECT_GE(maxSupportedLoad("oracle", q), 0.7);
}

TEST(MaxLoad, ReturnsOnlyProbeLoadsFromTheGrid)
{
    MaxLoadQuery q;
    q.fixed_jobs = {workloads::lcJob("img-dnn", 0.5),
                    workloads::lcJob("masstree", 0.5)};
    q.probe_workload = "memcached";
    q.probe_loads = {0.25, 0.5, 0.75};
    q.noise_sigma = 0.0;
    double v = maxSupportedLoad("oracle", q);
    EXPECT_TRUE(v == 0.0 || v == 0.25 || v == 0.5 || v == 0.75) << v;
}

TEST(MaxLoad, OracleDominatesEqualShare)
{
    MaxLoadQuery q;
    q.fixed_jobs = {workloads::lcJob("img-dnn", 0.3),
                    workloads::lcJob("masstree", 0.3)};
    q.probe_workload = "memcached";
    q.noise_sigma = 0.0;
    double oracle = maxSupportedLoad("oracle", q);
    double equal = maxSupportedLoad("equal-share", q);
    EXPECT_GE(oracle, equal);
}

TEST(MaxLoad, EmptyProbeGridRejected)
{
    MaxLoadQuery q;
    q.fixed_jobs = {workloads::lcJob("img-dnn", 0.3)};
    q.probe_workload = "memcached";
    q.probe_loads = {};
    EXPECT_THROW(maxSupportedLoad("oracle", q), Error);
}

TEST(MaxLoadHeatmap, ShapeAndMonotonicityForOracle)
{
    std::vector<double> grid = {0.2, 0.6};
    LoadHeatmap map = maxLoadHeatmap("oracle", "masstree", "img-dnn",
                                     grid, "memcached", {}, 0.0);
    ASSERT_EQ(map.cell.size(), 2u);
    ASSERT_EQ(map.cell[0].size(), 2u);
    EXPECT_EQ(map.scheme, "oracle");
    // ORACLE's supported load cannot grow when companions' loads grow.
    EXPECT_GE(map.cell[0][0], map.cell[1][0]); // img-dnn 20% vs 60%
    EXPECT_GE(map.cell[0][0], map.cell[0][1]); // masstree 20% vs 60%
    EXPECT_GE(map.cell[0][0], map.cell[1][1]); // both heavier
}

TEST(MaxLoadHeatmap, EmptyGridRejected)
{
    EXPECT_THROW(maxLoadHeatmap("oracle", "masstree", "img-dnn", {},
                                "memcached"),
                 Error);
}

} // namespace
} // namespace harness
} // namespace clite

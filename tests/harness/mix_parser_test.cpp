/**
 * @file
 * Tests for the mix-specification parser behind the CLI driver.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "harness/mix_parser.h"

namespace clite {
namespace harness {
namespace {

TEST(MixParser, ParsesLcAndBgTerms)
{
    auto jobs = parseMix("img-dnn@30%,memcached@0.4,streamcluster");
    ASSERT_EQ(jobs.size(), 3u);
    EXPECT_EQ(jobs[0].profile.name, "img-dnn");
    EXPECT_TRUE(jobs[0].isLatencyCritical());
    EXPECT_NEAR(jobs[0].load_fraction, 0.3, 1e-12);
    EXPECT_NEAR(jobs[1].load_fraction, 0.4, 1e-12);
    EXPECT_EQ(jobs[2].profile.name, "streamcluster");
    EXPECT_FALSE(jobs[2].isLatencyCritical());
}

TEST(MixParser, ToleratesWhitespace)
{
    auto jobs = parseMix("  masstree @ 50% ,  canneal ");
    ASSERT_EQ(jobs.size(), 2u);
    EXPECT_EQ(jobs[0].profile.name, "masstree");
    EXPECT_NEAR(jobs[0].load_fraction, 0.5, 1e-12);
    EXPECT_EQ(jobs[1].profile.name, "canneal");
}

TEST(MixParser, PercentAndFractionAgree)
{
    auto a = parseMix("xapian@75%");
    auto b = parseMix("xapian@0.75");
    EXPECT_DOUBLE_EQ(a[0].load_fraction, b[0].load_fraction);
}

TEST(MixParser, FullLoadBoundary)
{
    EXPECT_NEAR(parseMix("specjbb@100%")[0].load_fraction, 1.0, 1e-12);
    EXPECT_THROW(parseMix("specjbb@101%"), Error);
    EXPECT_THROW(parseMix("specjbb@0%"), Error);
}

TEST(MixParser, RejectsMalformedSpecs)
{
    EXPECT_THROW(parseMix(""), Error);
    EXPECT_THROW(parseMix(","), Error);
    EXPECT_THROW(parseMix("unicorn@50%"), Error);
    EXPECT_THROW(parseMix("img-dnn"), Error);          // LC needs load
    EXPECT_THROW(parseMix("streamcluster@50%"), Error); // BG takes none
    EXPECT_THROW(parseMix("img-dnn@"), Error);
    EXPECT_THROW(parseMix("img-dnn@half"), Error);
    EXPECT_THROW(parseMix("img-dnn@30%x"), Error);
}

TEST(MixParser, FormatRoundTrips)
{
    std::string text = "img-dnn@30%,memcached@40%,streamcluster";
    auto jobs = parseMix(text);
    EXPECT_EQ(formatMix(jobs), text);
    auto again = parseMix(formatMix(jobs));
    ASSERT_EQ(again.size(), jobs.size());
    for (size_t i = 0; i < jobs.size(); ++i) {
        EXPECT_EQ(again[i].profile.name, jobs[i].profile.name);
        EXPECT_NEAR(again[i].load_fraction, jobs[i].load_fraction, 0.005);
    }
}

} // namespace
} // namespace harness
} // namespace clite

/**
 * @file
 * Tests for the evaluation harness: knee analysis, QoS regions,
 * max-load probing, variability, convergence and dynamic adaptation.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "harness/analysis.h"
#include "harness/dynamic.h"
#include "harness/knee.h"
#include "harness/maxload.h"
#include "harness/qos_region.h"
#include "workloads/catalog.h"

namespace clite {
namespace harness {
namespace {

TEST(Schemes, RegistryCoversAllNames)
{
    for (const auto& name : allSchemeNames()) {
        auto ctl = makeScheme(name, 3);
        ASSERT_NE(ctl, nullptr);
        EXPECT_EQ(ctl->name(), name);
    }
    EXPECT_THROW(makeScheme("skynet"), Error);
}

TEST(Schemes, RunSchemeProducesTruthfulOutcome)
{
    ServerSpec spec;
    spec.jobs = {workloads::lcJob("memcached", 0.2),
                 workloads::bgJob("swaptions")};
    SchemeOutcome out = runScheme("parties", spec, 5);
    EXPECT_TRUE(out.result.best.has_value());
    EXPECT_EQ(out.truth_obs.size(), 2u);
    EXPECT_GT(out.samples_applied, 0u);
}

TEST(Knee, CurveShapeMatchesFig6)
{
    KneeCurve curve = sweepIsolatedLoad(
        "img-dnn", {0.2, 0.4, 0.6, 0.8, 1.0, 1.2, 1.4});
    ASSERT_EQ(curve.points.size(), 7u);
    // Latency is monotone in load...
    for (size_t i = 1; i < curve.points.size(); ++i)
        EXPECT_GE(curve.points[i].p95_ms, curve.points[i - 1].p95_ms);
    // ...the knee sits at the calibrated max load...
    EXPECT_NEAR(curve.measuredKneeLoad(), 1.0, 1e-9);
    // ...and the blow-up beyond the knee is dramatic.
    EXPECT_GT(curve.points.back().p95_ms, 3.0 * curve.points[4].p95_ms);
}

TEST(Knee, AllLcWorkloadsShareTheContract)
{
    for (const auto& name : workloads::lcWorkloadNames()) {
        KneeCurve c = sweepIsolatedLoad(name, {0.5, 1.0, 1.3});
        EXPECT_LE(c.points[1].p95_ms, c.qos_p95_ms) << name;
        EXPECT_GT(c.points[2].p95_ms, c.qos_p95_ms) << name;
    }
}

TEST(QosRegion, ImgDnnShowsResourceEquivalence)
{
    // Fig. 1's point: multiple (cores, ways) mixes are QoS-safe, and
    // they trade off against each other.
    QosRegion region = mapQosRegion("img-dnn", 0.5,
                                    platform::Resource::Cores,
                                    platform::Resource::LlcWays);
    EXPECT_GT(region.safeCount(), 4u);
    EXPECT_TRUE(region.hasEquivalenceTradeoff());
}

TEST(QosRegion, SafetyMonotoneInBothResources)
{
    QosRegion region = mapQosRegion("masstree", 0.4,
                                    platform::Resource::Cores,
                                    platform::Resource::MemBandwidth);
    // If (a, b) is safe then (a+1, b) and (a, b+1) are safe.
    for (size_t bi = 0; bi < region.safe.size(); ++bi)
        for (size_t ai = 0; ai < region.safe[bi].size(); ++ai) {
            if (!region.safe[bi][ai])
                continue;
            if (ai + 1 < region.safe[bi].size())
                EXPECT_TRUE(region.safe[bi][ai + 1]);
            if (bi + 1 < region.safe.size())
                EXPECT_TRUE(region.safe[bi + 1][ai]);
        }
}

TEST(QosRegion, RejectsIdenticalResources)
{
    EXPECT_THROW(mapQosRegion("img-dnn", 0.5, platform::Resource::Cores,
                              platform::Resource::Cores),
                 Error);
}

TEST(MaxLoad, OracleFrontierIsSensible)
{
    MaxLoadQuery q;
    q.fixed_jobs = {workloads::lcJob("img-dnn", 0.1),
                    workloads::lcJob("masstree", 0.1)};
    q.probe_workload = "memcached";
    q.noise_sigma = 0.0;
    double light = maxSupportedLoad("oracle", q);
    EXPECT_GT(light, 0.2); // plenty of room at 10%/10%

    q.fixed_jobs = {workloads::lcJob("img-dnn", 0.9),
                    workloads::lcJob("masstree", 0.9)};
    double heavy = maxSupportedLoad("oracle", q);
    EXPECT_LT(heavy, light);
}

TEST(MaxLoad, HeraclesCannotColocateMultipleLcJobs)
{
    // Fig. 7a: Heracles supports no memcached load against two other
    // LC jobs at moderate loads.
    MaxLoadQuery q;
    q.fixed_jobs = {workloads::lcJob("img-dnn", 0.5),
                    workloads::lcJob("masstree", 0.5)};
    q.probe_workload = "memcached";
    EXPECT_DOUBLE_EQ(maxSupportedLoad("heracles", q), 0.0);
}

TEST(Analysis, MeanPerformanceHelpers)
{
    platform::JobObservation lc;
    lc.is_lc = true;
    lc.p95_ms = 2.0;
    lc.iso_p95_ms = 1.0;
    lc.qos_target_ms = 3.0;
    platform::JobObservation bg;
    bg.is_lc = false;
    bg.throughput = 300.0;
    bg.iso_throughput = 1000.0;
    std::vector<platform::JobObservation> obs = {lc, bg};
    EXPECT_NEAR(meanLcPerformance(obs), 0.5, 1e-12);
    EXPECT_NEAR(meanBgPerformance(obs), 0.3, 1e-12);
}

TEST(Analysis, VariabilityAcrossTrials)
{
    ServerSpec spec;
    spec.jobs = {workloads::lcJob("memcached", 0.3),
                 workloads::bgJob("swaptions")};
    VariabilityResult v = runVariability("rand+", spec, 4);
    EXPECT_EQ(v.trials, 4);
    EXPECT_GT(v.mean_perf, 0.0);
    EXPECT_GE(v.cov_percent, 0.0);
}

TEST(Analysis, ConvergenceTraceMatchesRun)
{
    ServerSpec spec;
    spec.jobs = {workloads::lcJob("img-dnn", 0.2),
                 workloads::lcJob("memcached", 0.2),
                 workloads::bgJob("fluidanimate")};
    ConvergenceTrace t = traceConvergence("clite", spec, 11);
    ASSERT_FALSE(t.steps.empty());
    EXPECT_EQ(t.steps.front().sample, 1);
    EXPECT_EQ(t.steps.back().sample, int(t.steps.size()));
    EXPECT_EQ(t.allocations.size(), t.steps.size());
    ASSERT_GT(t.first_feasible, 0);
    EXPECT_TRUE(t.steps[size_t(t.first_feasible - 1)].all_qos_met);
}

TEST(Dynamic, AdaptsToLoadStepsAndRestabilizes)
{
    ServerSpec spec;
    spec.jobs = {workloads::lcJob("img-dnn", 0.1),
                 workloads::lcJob("memcached", 0.1),
                 workloads::lcJob("masstree", 0.1),
                 workloads::bgJob("fluidanimate")};
    core::CliteOptions fast;
    fast.max_iterations = 15;
    DynamicResult r = runDynamicScenario(spec, 1, {0.1, 0.2, 0.3}, 3,
                                         fast);
    // Three phases, each with a search + settle segment.
    EXPECT_EQ(r.stabilization_samples.size(), 3u);
    EXPECT_TRUE(r.all_phases_feasible);
    // Load recorded on the timeline steps through the schedule.
    EXPECT_DOUBLE_EQ(r.timeline.front().changed_load, 0.1);
    EXPECT_DOUBLE_EQ(r.timeline.back().changed_load, 0.3);
    // Settle windows are non-exploring.
    EXPECT_FALSE(r.timeline.back().exploring);
}

TEST(Dynamic, ValidatesArguments)
{
    ServerSpec spec;
    spec.jobs = {workloads::lcJob("img-dnn", 0.1),
                 workloads::bgJob("swaptions")};
    EXPECT_THROW(runDynamicScenario(spec, 1, {0.1, 0.2}), Error);
    EXPECT_THROW(runDynamicScenario(spec, 0, {0.1}), Error);
    EXPECT_THROW(runDynamicScenario(spec, 5, {0.1, 0.2}), Error);
}

} // namespace
} // namespace harness
} // namespace clite

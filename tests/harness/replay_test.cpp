/**
 * @file
 * Tests for the trace-replay harness (OnlineManager under diurnal /
 * step / burst load).
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "harness/dynamic.h"
#include "workloads/catalog.h"

namespace clite {
namespace harness {
namespace {

ServerSpec
replaySpec()
{
    ServerSpec spec;
    spec.jobs = {workloads::lcJob("memcached", 0.1),
                 workloads::lcJob("img-dnn", 0.1),
                 workloads::bgJob("swaptions")};
    spec.seed = 61;
    return spec;
}

core::CliteOptions
fastClite()
{
    core::CliteOptions o;
    o.max_iterations = 10;
    o.polish_iterations = 2;
    return o;
}

TEST(TraceReplay, ConstantLoadNeverReoptimizes)
{
    workloads::StepTrace trace({{0.0, 0.1}});
    TraceReplayResult r = replayLoadTrace(replaySpec(), 0, trace, 20.0,
                                          2.0, fastClite());
    EXPECT_EQ(r.windows.size(), 10u);
    EXPECT_EQ(r.reoptimizations, 0);
    EXPECT_GT(r.qos_met_fraction, 0.9);
}

TEST(TraceReplay, StepTraceReoptimizesOncePerStep)
{
    workloads::StepTrace trace({{0.0, 0.1}, {20.0, 0.4}});
    TraceReplayResult r = replayLoadTrace(replaySpec(), 0, trace, 40.0,
                                          2.0, fastClite());
    EXPECT_GE(r.reoptimizations, 1);
    EXPECT_LE(r.reoptimizations, 3);
    // The step is visible in the recorded loads.
    EXPECT_DOUBLE_EQ(r.windows.front().load, 0.1);
    EXPECT_DOUBLE_EQ(r.windows.back().load, 0.4);
    // After re-stabilizing, QoS holds again at the end.
    EXPECT_TRUE(r.windows.back().all_qos_met);
}

TEST(TraceReplay, BurstTraceRecoversAfterBursts)
{
    workloads::BurstTrace trace(0.1, 0.5, 6.0, 30.0);
    TraceReplayResult r = replayLoadTrace(replaySpec(), 0, trace, 60.0,
                                          2.0, fastClite());
    EXPECT_GE(r.reoptimizations, 1);
    EXPECT_GT(r.qos_met_fraction, 0.5);
}

TEST(TraceReplay, Validation)
{
    workloads::StepTrace trace({{0.0, 0.1}});
    EXPECT_THROW(replayLoadTrace(replaySpec(), 2, trace, 10.0), Error);
    EXPECT_THROW(replayLoadTrace(replaySpec(), 9, trace, 10.0), Error);
    EXPECT_THROW(replayLoadTrace(replaySpec(), 0, trace, 0.0), Error);
}

} // namespace
} // namespace harness
} // namespace clite

/**
 * @file
 * Thread-count invariance of the fleet: a lockstep window fans node
 * evaluations out on the global pool, and the result must be
 * bit-identical to the serial run — same placements, same programmed
 * allocations, same scores — for any worker count. The digest
 * compares %.17g-formatted doubles, so "identical" here means to the
 * last ULP.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/fleet.h"
#include "common/thread_pool.h"
#include "workloads/catalog.h"

namespace clite {
namespace cluster {
namespace {

/** Run a small churny scenario and return per-window digests. */
std::vector<std::string>
runScenario(uint64_t seed, int threads)
{
    setGlobalThreadCount(threads);

    FleetOptions options;
    options.nodes = 4;
    options.seed = seed;
    options.clite.max_iterations = 8;
    options.clite.acquisition_starts = 2;
    Fleet fleet(options);

    const std::vector<std::string>& lc = workloads::lcWorkloadNames();
    const std::vector<std::string>& bg = workloads::bgWorkloadNames();

    std::vector<std::string> digests;
    for (int w = 0; w < 6; ++w) {
        // Two arrivals a window, seed-dependent mix; one hot tenant to
        // force an eviction somewhere in the run.
        size_t k = size_t(seed) + size_t(w);
        fleet.admit(workloads::lcJob(lc[k % lc.size()],
                                     w == 3 ? 1.0 : 0.3));
        fleet.admit(workloads::bgJob(bg[k % bg.size()]));
        fleet.tick();
        digests.push_back(fleet.digest());
    }
    return digests;
}

TEST(FleetDeterminism, SlowParallelTicksMatchSerialAcrossTenSeeds)
{
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        std::vector<std::string> serial = runScenario(seed, 1);
        std::vector<std::string> parallel = runScenario(seed, 8);
        ASSERT_EQ(serial.size(), parallel.size());
        for (size_t w = 0; w < serial.size(); ++w)
            EXPECT_EQ(serial[w], parallel[w])
                << "seed " << seed << ", window " << w + 1
                << ": parallel fleet tick diverged from serial";
    }
    setGlobalThreadCount(ThreadPool::defaultThreadCount());
}

TEST(FleetDeterminism, RepeatedRunsAreIdentical)
{
    std::vector<std::string> a = runScenario(5, 4);
    std::vector<std::string> b = runScenario(5, 4);
    EXPECT_EQ(a, b);
    setGlobalThreadCount(ThreadPool::defaultThreadCount());
}

TEST(FleetDeterminism, DifferentSeedsDiverge)
{
    // Guards against a digest that ignores the interesting state: two
    // different fleets must not collapse to the same fingerprint.
    std::vector<std::string> a = runScenario(1, 1);
    std::vector<std::string> b = runScenario(2, 1);
    EXPECT_NE(a.back(), b.back());
    setGlobalThreadCount(ThreadPool::defaultThreadCount());
}

} // namespace
} // namespace cluster
} // namespace clite

/**
 * @file
 * Property tests for cluster placement: random fleets and job mixes,
 * checked against the invariants that must survive any schedule —
 * every placed job on exactly one node, every node's programmed
 * allocation satisfying the Eq. 4-6 sum constraints, and rescheduling
 * never dropping or duplicating a job.
 */

#include <gtest/gtest.h>

#include <set>

#include "cluster/fleet.h"
#include "common/rng.h"
#include "workloads/catalog.h"

namespace clite {
namespace cluster {
namespace {

workloads::JobSpec
randomJob(Rng& rng)
{
    const std::vector<std::string>& lc = workloads::lcWorkloadNames();
    const std::vector<std::string>& bg = workloads::bgWorkloadNames();
    if (rng.uniform() < 0.6) {
        std::string name = lc[size_t(
            rng.uniformInt(0, int64_t(lc.size()) - 1))];
        // Mostly servable loads with an occasional hot tenant.
        double load = rng.uniform() < 0.15
                          ? 1.0
                          : rng.uniform(0.1, 0.5);
        return workloads::lcJob(name, load);
    }
    return workloads::bgJob(
        bg[size_t(rng.uniformInt(0, int64_t(bg.size()) - 1))]);
}

/** The fleet-wide partition invariant plus per-node Eq. 4-6 checks. */
void
checkInvariants(const Fleet& fleet)
{
    std::set<uint64_t> hosted;
    for (size_t n = 0; n < fleet.nodeCount(); ++n) {
        const platform::SimulatedServer* server = fleet.nodeServer(n);
        const std::vector<uint64_t>& ids = fleet.nodeJobIds(n);
        if (server == nullptr) {
            ASSERT_TRUE(ids.empty());
            continue;
        }
        ASSERT_EQ(server->jobCount(), ids.size());
        for (uint64_t id : ids) {
            ASSERT_TRUE(hosted.insert(id).second)
                << "job " << id << " on two nodes";
            ASSERT_EQ(fleet.job(id).state, JobState::Placed);
            ASSERT_EQ(fleet.job(id).node, int(n));
        }
        // Eq. 4-6 on the partition actually programmed: every job at
        // least one unit of every resource, every unit assigned.
        const platform::Allocation& alloc = server->currentAllocation();
        ASSERT_TRUE(alloc.valid()) << "node " << n;
        ASSERT_EQ(alloc.jobs(), ids.size());
        for (size_t r = 0; r < alloc.resources(); ++r) {
            int sum = 0;
            for (size_t j = 0; j < alloc.jobs(); ++j) {
                ASSERT_GE(alloc.get(j, r), 1);
                sum += alloc.get(j, r);
            }
            ASSERT_EQ(sum, alloc.resourceUnits(r));
        }
    }
    // Non-placed jobs are nowhere; placed jobs are somewhere.
    size_t placed = 0;
    for (const FleetJob& job : fleet.jobs()) {
        if (job.state == JobState::Placed) {
            ++placed;
            ASSERT_EQ(hosted.count(job.id), 1u);
        } else {
            ASSERT_EQ(hosted.count(job.id), 0u);
        }
    }
    ASSERT_EQ(placed, hosted.size());
}

class PlacementProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PlacementProperty, SlowRandomChurnPreservesInvariants)
{
    const uint64_t seed = GetParam();
    Rng rng(seed * 1000003);

    FleetOptions options;
    options.nodes = int(rng.uniformInt(2, 6));
    options.seed = seed;
    options.max_moves = 2;
    options.clite.max_iterations = 8;
    options.clite.acquisition_starts = 2;
    // Exercise all three policies across the seed sweep.
    options.placement.policy =
        seed % 3 == 0 ? PlacementPolicy::BestFitHeadroom
                      : (seed % 3 == 1 ? PlacementPolicy::LeastLoaded
                                       : PlacementPolicy::RoundRobin);
    Fleet fleet(options);

    size_t admitted = 0;
    for (int w = 0; w < 10; ++w) {
        size_t arrivals = size_t(rng.uniformInt(0, 3));
        for (size_t k = 0; k < arrivals; ++k, ++admitted)
            fleet.admit(randomJob(rng));
        // Occasionally shake a placed job's load to provoke drift
        // re-optimizations (and through them evictions).
        if (admitted > 0 && rng.uniform() < 0.3) {
            uint64_t id = uint64_t(
                rng.uniformInt(1, int64_t(fleet.jobs().size())));
            if (fleet.job(id).state == JobState::Placed &&
                fleet.job(id).spec.isLatencyCritical())
                fleet.setJobLoad(id, rng.uniform() < 0.5
                                         ? 1.0
                                         : rng.uniform(0.1, 0.5));
        }
        fleet.tick();
        checkInvariants(fleet);
    }

    FleetSummary s = fleet.summarize();
    EXPECT_EQ(s.jobs_admitted, int(admitted));
    EXPECT_EQ(s.jobs_placed + s.jobs_pending + s.jobs_parked,
              int(admitted));
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacementProperty,
                         ::testing::Range(uint64_t(1), uint64_t(9)));

TEST(ClusterScheduler, NeverPlacesOnAFullNode)
{
    Rng rng(42);
    ClusterScheduler scheduler;
    for (int trial = 0; trial < 200; ++trial) {
        size_t nodes = size_t(rng.uniformInt(1, 8));
        size_t capacity = size_t(rng.uniformInt(1, 5));
        std::vector<NodeSnapshot> snaps(nodes);
        bool any_free = false;
        for (size_t n = 0; n < nodes; ++n) {
            snaps[n].node = n;
            snaps[n].capacity = capacity;
            snaps[n].job_count =
                size_t(rng.uniformInt(0, int64_t(capacity)));
            snaps[n].lc_load_sum = rng.uniform(0.0, 2.0);
            any_free = any_free || snaps[n].canHost();
        }
        int pick = scheduler.place(workloads::lcJob("memcached", 0.3),
                                   snaps, -1);
        if (!any_free) {
            EXPECT_EQ(pick, -1);
        } else {
            ASSERT_GE(pick, 0);
            ASSERT_LT(size_t(pick), nodes);
            EXPECT_TRUE(snaps[size_t(pick)].canHost());
        }
    }
}

TEST(ClusterScheduler, ExcludedNodeAvoidedUnlessSoleOption)
{
    ClusterScheduler scheduler;
    std::vector<NodeSnapshot> snaps(2);
    for (size_t n = 0; n < 2; ++n) {
        snaps[n].node = n;
        snaps[n].capacity = 4;
        snaps[n].job_count = 1;
    }
    // Node 0 excluded and node 1 free: must pick 1 even though 0 ties.
    EXPECT_EQ(scheduler.place(workloads::bgJob("canneal"), snaps, 0), 1);
    // Node 1 full: the excluded node is the only host left.
    snaps[1].job_count = 4;
    EXPECT_EQ(scheduler.place(workloads::bgJob("canneal"), snaps, 0), 0);
    // Everything full: nowhere.
    snaps[0].job_count = 4;
    EXPECT_EQ(scheduler.place(workloads::bgJob("canneal"), snaps, 0), -1);
}

TEST(ClusterScheduler, LeastLoadedPrefersLightestThenFewestThenLowest)
{
    PlacementOptions options;
    options.policy = PlacementPolicy::LeastLoaded;
    ClusterScheduler scheduler(options);
    std::vector<NodeSnapshot> snaps(3);
    for (size_t n = 0; n < 3; ++n) {
        snaps[n].node = n;
        snaps[n].capacity = 10;
    }
    snaps[0].lc_load_sum = 0.5;
    snaps[1].lc_load_sum = 0.2;
    snaps[2].lc_load_sum = 0.2;
    snaps[1].job_count = 3;
    snaps[2].job_count = 2;
    EXPECT_EQ(scheduler.place(workloads::lcJob("xapian", 0.3), snaps, -1),
              2);
}

TEST(HeadroomModel, PredictsOnlyWithEnoughWindowsAndTracksScores)
{
    PlacementOptions options;
    options.min_model_samples = 3;
    HeadroomModel model(options);

    NodeSnapshot busy;
    busy.node = 0;
    busy.capacity = 10;
    busy.job_count = 6;
    busy.lc_jobs = 5;
    busy.lc_load_sum = 2.5;
    busy.bg_jobs = 1;
    busy.last_score = 0.3;

    NodeSnapshot idle;
    idle.node = 1;
    idle.capacity = 10;
    idle.job_count = 1;
    idle.lc_jobs = 1;
    idle.lc_load_sum = 0.2;
    idle.last_score = 0.95;

    EXPECT_FALSE(model.ready(0));
    for (int w = 0; w < 4; ++w) {
        model.observe(busy);
        model.observe(idle);
    }
    ASSERT_TRUE(model.ready(0));
    ASSERT_TRUE(model.ready(1));
    EXPECT_FALSE(model.ready(2));

    // The surrogate reproduces what it was taught: the idle node
    // predicts a clearly higher score at its own operating point.
    double p_busy = model.predictScore(busy);
    double p_idle = model.predictScore(idle);
    EXPECT_GT(p_idle, p_busy);
    EXPECT_NEAR(p_idle, 0.95, 0.1);
}

} // namespace
} // namespace cluster
} // namespace clite

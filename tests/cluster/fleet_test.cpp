/**
 * @file
 * End-to-end tests for the multi-node Fleet: admission, placement,
 * infeasibility-driven rescheduling, parking and metrics.
 *
 * The load levels used here are calibrated against the analytic
 * model: masstree@100% misses QoS co-located with anything (even when
 * every neighbor sits at one unit of each resource) but is feasible
 * with a node to itself — the perfect probe for the reschedule path.
 */

#include <gtest/gtest.h>

#include <set>

#include "cluster/fleet.h"
#include "common/error.h"
#include "workloads/catalog.h"

namespace clite {
namespace cluster {
namespace {

FleetOptions
fastFleet(int nodes, uint64_t seed = 3)
{
    FleetOptions o;
    o.nodes = nodes;
    o.seed = seed;
    o.clite.max_iterations = 15;
    o.clite.acquisition_starts = 4;
    return o;
}

/** Every admitted job is in exactly one of: a node, the queue, the
 *  parked set — and each placed id appears on exactly one node. */
void
expectRegistryConsistent(const Fleet& fleet)
{
    std::set<uint64_t> on_nodes;
    for (size_t n = 0; n < fleet.nodeCount(); ++n) {
        for (uint64_t id : fleet.nodeJobIds(n)) {
            EXPECT_TRUE(on_nodes.insert(id).second)
                << "job " << id << " hosted twice";
            EXPECT_EQ(fleet.job(id).state, JobState::Placed);
            EXPECT_EQ(fleet.job(id).node, int(n));
        }
        const platform::SimulatedServer* server = fleet.nodeServer(n);
        if (server == nullptr)
            EXPECT_TRUE(fleet.nodeJobIds(n).empty());
        else
            EXPECT_EQ(server->jobCount(), fleet.nodeJobIds(n).size());
    }
    for (const FleetJob& job : fleet.jobs()) {
        if (job.state == JobState::Placed)
            EXPECT_EQ(on_nodes.count(job.id), 1u)
                << "placed job " << job.id << " hosted nowhere";
        else
            EXPECT_EQ(on_nodes.count(job.id), 0u)
                << jobStateName(job.state) << " job " << job.id
                << " still hosted";
    }
}

TEST(Fleet, AdmissionQueuesUntilTheNextWindow)
{
    Fleet fleet(fastFleet(2));
    uint64_t id = fleet.admit(workloads::lcJob("memcached", 0.3));
    EXPECT_EQ(fleet.job(id).state, JobState::Pending);

    FleetWindow w = fleet.tick();
    EXPECT_EQ(w.placed, 1);
    EXPECT_EQ(w.pending, 0);
    EXPECT_EQ(fleet.job(id).state, JobState::Placed);
    ASSERT_NE(fleet.nodeServer(size_t(fleet.job(id).node)), nullptr);
    expectRegistryConsistent(fleet);
}

TEST(Fleet, ColdStartSpreadsJobsAcrossNodes)
{
    Fleet fleet(fastFleet(3));
    fleet.admit(workloads::lcJob("memcached", 0.3));
    fleet.admit(workloads::lcJob("xapian", 0.3));
    fleet.admit(workloads::lcJob("img-dnn", 0.3));
    fleet.tick();

    // Least-loaded cold start: one job per node.
    for (size_t n = 0; n < fleet.nodeCount(); ++n)
        EXPECT_EQ(fleet.nodeJobIds(n).size(), 1u) << "node " << n;
    expectRegistryConsistent(fleet);
}

TEST(Fleet, EmptyFleetTicksAreHarmless)
{
    Fleet fleet(fastFleet(2));
    FleetWindow w = fleet.tick();
    EXPECT_EQ(w.placed, 0);
    EXPECT_EQ(w.reoptimizations, 0);
    EXPECT_DOUBLE_EQ(w.qos_met_fraction, 1.0);
    EXPECT_DOUBLE_EQ(w.mean_bg_perf, 0.0);
    EXPECT_EQ(fleet.summarize().jobs_admitted, 0);
}

TEST(Fleet, InfeasibleJobIsRescheduledToAnIdleNode)
{
    // Warm node 0's headroom surrogate while node 1 stays empty; the
    // best-fit policy then co-locates the newcomer on node 0 (an
    // empty node has no surrogate and cannot bid). Driving the
    // newcomer's load to 100% makes it provably infeasible there —
    // the search's extremum check fires — and the fleet must move it
    // to the idle node, where it is feasible alone.
    Fleet fleet(fastFleet(2));
    uint64_t anchor = fleet.admit(workloads::lcJob("memcached", 0.3));
    for (int w = 0; w < 5; ++w)
        fleet.tick();
    ASSERT_TRUE(fleet.scheduler().model().ready(0));

    uint64_t probe = fleet.admit(workloads::lcJob("masstree", 0.1));
    fleet.tick();
    ASSERT_EQ(fleet.job(probe).node, fleet.job(anchor).node)
        << "best-fit should have co-located the probe on the warm node";

    fleet.setJobLoad(probe, 1.0);
    bool moved = false;
    for (int w = 0; w < 10 && !moved; ++w) {
        fleet.tick();
        moved = fleet.job(probe).state == JobState::Placed &&
                fleet.job(probe).node != fleet.job(anchor).node;
    }
    EXPECT_TRUE(moved) << "infeasible job was never rescheduled";
    EXPECT_GE(fleet.summarize().evictions, 1);

    // Settled: both nodes meet QoS again (masstree has its node to
    // itself; the drift re-optimization on the source node healed it).
    for (int w = 0; w < 4; ++w)
        fleet.tick();
    EXPECT_DOUBLE_EQ(fleet.history().back().qos_met_fraction, 1.0);
    expectRegistryConsistent(fleet);
}

TEST(Fleet, UnservableJobIsParkedAfterMoveBudget)
{
    // With every node occupied, a job infeasible next to anything
    // ping-pongs between nodes; the move budget must stop the thrash
    // by parking it — still registered, never dropped.
    FleetOptions options = fastFleet(2);
    options.max_moves = 2;
    Fleet fleet(options);
    uint64_t a = fleet.admit(workloads::lcJob("memcached", 0.2));
    uint64_t b = fleet.admit(workloads::lcJob("xapian", 0.2));
    uint64_t probe = fleet.admit(workloads::lcJob("masstree", 0.1));
    fleet.tick();
    ASSERT_EQ(fleet.job(a).state, JobState::Placed);
    ASSERT_EQ(fleet.job(b).state, JobState::Placed);
    ASSERT_EQ(fleet.job(probe).state, JobState::Placed);

    fleet.setJobLoad(probe, 1.0);
    for (int w = 0; w < 20 && fleet.job(probe).state != JobState::Parked;
         ++w)
        fleet.tick();

    EXPECT_EQ(fleet.job(probe).state, JobState::Parked);
    EXPECT_GT(fleet.job(probe).moves, options.max_moves);
    // The bystanders were never lost and QoS recovers without the
    // unservable tenant.
    EXPECT_EQ(fleet.job(a).state, JobState::Placed);
    EXPECT_EQ(fleet.job(b).state, JobState::Placed);
    for (int w = 0; w < 4; ++w)
        fleet.tick();
    EXPECT_DOUBLE_EQ(fleet.history().back().qos_met_fraction, 1.0);
    expectRegistryConsistent(fleet);
}

TEST(Fleet, SetJobLoadRequiresAPlacedJob)
{
    Fleet fleet(fastFleet(2));
    uint64_t id = fleet.admit(workloads::lcJob("memcached", 0.3));
    EXPECT_THROW(fleet.setJobLoad(id, 0.5), Error);
    EXPECT_THROW(fleet.setJobLoad(99, 0.5), Error);
    EXPECT_THROW(fleet.job(0), Error);
}

TEST(Fleet, SummaryCountsAndMetricsAccumulate)
{
    Fleet fleet(fastFleet(2));
    fleet.admit(workloads::lcJob("memcached", 0.3));
    fleet.admit(workloads::bgJob("canneal"));
    for (int w = 0; w < 3; ++w)
        fleet.tick();

    FleetSummary s = fleet.summarize();
    EXPECT_EQ(s.windows, 3);
    EXPECT_EQ(s.jobs_admitted, 2);
    EXPECT_EQ(s.jobs_placed, 2);
    EXPECT_EQ(size_t(s.windows), fleet.history().size());
    EXPECT_EQ(s.qos_met_fraction.count(), 3u);
    EXPECT_GT(s.bg_perf.mean(), 0.0);
    EXPECT_FALSE(fleet.digest().empty());
}

TEST(Fleet, SlowSixtyFourNodeFleetLosesNoJobs)
{
    // The acceptance-scale scenario: 64 nodes, a stream of arrivals
    // (including unservable tenants), windows with admissions,
    // evictions and rescheduling — and at every window the registry
    // partition invariant holds: each job on exactly one node, or
    // queued, or parked; nothing lost, nothing duplicated.
    FleetOptions options = fastFleet(64, 17);
    options.clite.max_iterations = 6;
    options.clite.acquisition_starts = 2;
    Fleet fleet(options);

    const std::vector<std::string>& lc = workloads::lcWorkloadNames();
    const std::vector<std::string>& bg = workloads::bgWorkloadNames();
    size_t admitted = 0;
    for (int w = 0; w < 12; ++w) {
        // 16 arrivals per window for the first 8 windows: 128 jobs on
        // 64 nodes forces widespread co-location.
        if (w < 8) {
            for (int k = 0; k < 16; ++k, ++admitted) {
                if (admitted % 3 == 2) {
                    fleet.admit(workloads::bgJob(
                        bg[admitted % bg.size()]));
                } else {
                    // Every 10th LC arrival is a full-load masstree:
                    // infeasible wherever it is co-located.
                    const std::string& name = lc[admitted % lc.size()];
                    double load = admitted % 10 == 9 ? 1.0 : 0.3;
                    fleet.admit(workloads::lcJob(
                        load == 1.0 ? "masstree" : name, load));
                }
            }
        }
        fleet.tick();
        expectRegistryConsistent(fleet);
    }

    FleetSummary s = fleet.summarize();
    EXPECT_EQ(s.jobs_admitted, int(admitted));
    EXPECT_EQ(s.jobs_placed + s.jobs_pending + s.jobs_parked,
              int(admitted));
    // The fleet actually exercised the reschedule machinery.
    EXPECT_GE(s.evictions, 1);
    EXPECT_GT(s.jobs_placed, 100);
    // Sanity floor on QoS: with max_iterations=6 the per-node
    // searches are deliberately starved, so this is not the paper's
    // QoS-met rate — it only guards against the fleet degenerating
    // into mass violation.
    EXPECT_GE(fleet.history().back().qos_met_fraction, 0.6);
}

} // namespace
} // namespace cluster
} // namespace clite

/**
 * @file
 * Chaos and property tests for the async manager-worker engine.
 *
 * The engine's robustness claims are properties, not anecdotes, and
 * they are tested as such across seeds:
 *
 *  - **Zero job loss.** Whatever workers die, every admitted job is in
 *    exactly one of {a node, the queue, the parked set} afterwards.
 *  - **Exactly-once windows.** Each node commits each observation
 *    window at most once, and commits + failures + sheds account for
 *    every window the run owed.
 *  - **Retry completeness.** With a retry budget that covers the
 *    injected loss rate, every lost task's window is eventually
 *    committed by a resubmission — no window silently vanishes.
 *  - **Reproducibility.** Same seed + same worker count => identical
 *    digest, identical robustness counters, at any thread count of the
 *    underlying pool.
 *
 * The 10-seed sweeps are the long variants ("Slow" => ctest label
 * slow); the fast variants here keep the tier-1 gate cheap.
 */

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cluster/manager.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "workloads/catalog.h"

namespace clite {
namespace cluster {
namespace {

FleetOptions
fastFleet(int nodes, uint64_t seed = 3)
{
    FleetOptions o;
    o.nodes = nodes;
    o.seed = seed;
    o.clite.max_iterations = 8;
    o.clite.acquisition_starts = 2;
    return o;
}

/** Admit a deterministic co-locatable mix: per node one light LC and
 *  one BG job (feasible everywhere, so QoS converges). */
void
admitMix(Fleet& fleet, int jobs_per_node = 2)
{
    const std::vector<std::string>& lc = workloads::lcWorkloadNames();
    const std::vector<std::string>& bg = workloads::bgWorkloadNames();
    const int total = int(fleet.nodeCount()) * jobs_per_node;
    for (int i = 0; i < total; ++i) {
        if (i % 2 == 0)
            fleet.admit(workloads::lcJob(lc[size_t(i) % lc.size()], 0.3));
        else
            fleet.admit(workloads::bgJob(bg[size_t(i) % bg.size()]));
    }
}

/** Every admitted job is in exactly one place; no job was lost. */
void
expectNoJobLoss(const Fleet& fleet)
{
    std::set<uint64_t> on_nodes;
    for (size_t n = 0; n < fleet.nodeCount(); ++n)
        for (uint64_t id : fleet.nodeJobIds(n)) {
            EXPECT_TRUE(on_nodes.insert(id).second)
                << "job " << id << " hosted twice";
            EXPECT_EQ(fleet.job(id).state, JobState::Placed);
            EXPECT_EQ(fleet.job(id).node, int(n));
        }
    for (const FleetJob& job : fleet.jobs()) {
        const bool hosted = on_nodes.count(job.id) == 1;
        if (job.state == JobState::Placed)
            EXPECT_TRUE(hosted)
                << "placed job " << job.id << " hosted nowhere";
        else
            EXPECT_FALSE(hosted) << jobStateName(job.state) << " job "
                                 << job.id << " still hosted";
    }
}

/** Committed + failed + shed must cover everything the run owed. */
void
expectWindowAccounting(const AsyncFleetEngine& engine, const Fleet& fleet,
                       int epochs)
{
    const FleetMetrics& m = engine.metrics();
    uint64_t committed = 0;
    for (size_t n = 0; n < fleet.nodeCount(); ++n) {
        EXPECT_LE(engine.windowsCommitted(n), uint64_t(epochs))
            << "node " << n << " committed more windows than scheduled";
        committed += engine.windowsCommitted(n);
    }
    EXPECT_EQ(committed, m.tasks_committed);
    EXPECT_LE(m.tasks_committed + m.windows_failed + m.windows_dropped,
              uint64_t(epochs) * fleet.nodeCount());
    EXPECT_GE(m.tasks_dispatched,
              m.tasks_committed + m.task_failures);
}

// ---------------------------------------------------------------------
// Fault-free baseline
// ---------------------------------------------------------------------

TEST(AsyncEngine, CleanRunCommitsEveryWindow)
{
    Fleet fleet(fastFleet(4));
    admitMix(fleet);
    AsyncOptions o;
    o.workers = 4;
    o.straggler_prob = 0.0;
    AsyncFleetEngine engine(fleet, o);
    const FleetMetrics& m = engine.run(6);

    for (size_t n = 0; n < fleet.nodeCount(); ++n)
        EXPECT_EQ(engine.windowsCommitted(n), 6u) << "node " << n;
    EXPECT_EQ(m.tasks_committed, 24u);
    EXPECT_EQ(m.tasks_retried, 0u);
    EXPECT_EQ(m.workers_lost, 0u);
    EXPECT_EQ(m.windows_failed, 0u);
    EXPECT_EQ(m.windows_dropped, 0u);
    EXPECT_EQ(m.nodes_quarantined, 0u);
    EXPECT_FALSE(m.stalled);
    EXPECT_GT(engine.virtualTime(), 0.0);
    expectNoJobLoss(fleet);
    // The feasible mix converges: every LC job ends with QoS met.
    EXPECT_EQ(engine.qosMetFraction(), 1.0);
    EXPECT_GT(engine.meanBgPerf(), 0.0);
}

// ---------------------------------------------------------------------
// Lost-worker recovery
// ---------------------------------------------------------------------

TEST(AsyncEngine, WorkerChurnLosesNoJobsAndRetriesComplete)
{
    for (uint64_t seed : {7ull, 11ull}) {
        Fleet fleet(fastFleet(4, seed));
        admitMix(fleet);
        AsyncOptions o;
        o.workers = 4;
        o.max_retries = 6; // generous: churn must never exhaust it
        o.faults.worker_loss_prob = 0.2;
        o.fault_seed = seed;
        AsyncFleetEngine engine(fleet, o);
        const FleetMetrics& m = engine.run(6);

        EXPECT_GT(m.workers_lost, 0u) << "seed " << seed
                                      << ": churn did not materialize";
        EXPECT_GT(m.tasks_retried, 0u) << "seed " << seed;
        EXPECT_EQ(m.workers_lost, m.workers_rejoined) << "seed " << seed;
        // Every lost task was resubmitted within the budget: no window
        // failed, every node finished its schedule.
        EXPECT_EQ(m.windows_failed, 0u) << "seed " << seed;
        for (size_t n = 0; n < fleet.nodeCount(); ++n)
            EXPECT_EQ(engine.windowsCommitted(n), 6u)
                << "seed " << seed << ", node " << n;
        expectNoJobLoss(fleet);
        expectWindowAccounting(engine, fleet, 6);
        EXPECT_EQ(engine.qosMetFraction(), 1.0) << "seed " << seed;
    }
}

TEST(AsyncEngine, SlowChaosSweepTenSeedsTwentyPercentLoss)
{
    for (uint64_t seed = 1; seed <= 10; ++seed) {
        Fleet fleet(fastFleet(8, seed));
        admitMix(fleet);
        AsyncOptions o;
        o.workers = 6;
        o.max_retries = 6;
        o.faults.worker_loss_prob = 0.2;
        o.faults.task_fail_prob = 0.05;
        o.fault_seed = seed * 1000003ull;
        AsyncFleetEngine engine(fleet, o);
        const FleetMetrics& m = engine.run(8);

        EXPECT_GT(m.workers_lost, 0u) << "seed " << seed;
        expectNoJobLoss(fleet);
        expectWindowAccounting(engine, fleet, 8);
        // Retry budget covers a 20% loss rate: windows fail only
        // through repeated *task* failures, never worker churn alone.
        EXPECT_LE(m.windows_failed, m.task_failures) << "seed " << seed;
        // The mix is feasible: whatever the churn did, every node that
        // is still serviceable converged to all-QoS-met.
        EXPECT_EQ(engine.qosMetFraction(), 1.0) << "seed " << seed;
    }
}

// ---------------------------------------------------------------------
// Reproducibility
// ---------------------------------------------------------------------

struct ChaosOutcome
{
    std::string digest;
    uint64_t committed = 0;
    uint64_t retried = 0;
    uint64_t lost = 0;
    uint64_t hedges = 0;
    double virtual_time = 0.0;
};

ChaosOutcome
runChaos(uint64_t seed, int workers, int threads)
{
    setGlobalThreadCount(threads);
    Fleet fleet(fastFleet(4, 3));
    admitMix(fleet);
    AsyncOptions o;
    o.workers = workers;
    o.max_retries = 6;
    o.straggler_prob = 0.1;
    o.faults.worker_loss_prob = 0.15;
    o.faults.task_fail_prob = 0.05;
    o.fault_seed = seed;
    AsyncFleetEngine engine(fleet, o);
    const FleetMetrics& m = engine.run(6);
    ChaosOutcome out;
    out.digest = fleet.digest();
    out.committed = m.tasks_committed;
    out.retried = m.tasks_retried;
    out.lost = m.workers_lost;
    out.hedges = m.hedges_launched;
    out.virtual_time = engine.virtualTime();
    setGlobalThreadCount(ThreadPool::defaultThreadCount());
    return out;
}

TEST(AsyncEngine, SameSeedSameWorkerCountReproducible)
{
    ChaosOutcome a = runChaos(42, 4, 4);
    ChaosOutcome b = runChaos(42, 4, 4);
    EXPECT_EQ(a.digest, b.digest);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.retried, b.retried);
    EXPECT_EQ(a.lost, b.lost);
    EXPECT_EQ(a.hedges, b.hedges);
    EXPECT_EQ(a.virtual_time, b.virtual_time);
}

TEST(AsyncEngine, ChaosRunIsThreadCountInvariant)
{
    // The async schedule lives in virtual time; the real pool only
    // fans out the node steps. Serial and parallel pools must agree
    // bit-for-bit.
    ChaosOutcome serial = runChaos(42, 4, 1);
    ChaosOutcome parallel = runChaos(42, 4, 8);
    EXPECT_EQ(serial.digest, parallel.digest);
    EXPECT_EQ(serial.committed, parallel.committed);
    EXPECT_EQ(serial.retried, parallel.retried);
    EXPECT_EQ(serial.virtual_time, parallel.virtual_time);
}

TEST(AsyncEngine, DifferentFaultSeedsDiverge)
{
    ChaosOutcome a = runChaos(1, 4, 4);
    ChaosOutcome b = runChaos(2, 4, 4);
    // Different chaos, different schedule; the controller outcome may
    // coincide, the robustness trace practically never does.
    EXPECT_TRUE(a.retried != b.retried || a.lost != b.lost ||
                a.virtual_time != b.virtual_time);
}

// ---------------------------------------------------------------------
// Straggler hedging
// ---------------------------------------------------------------------

TEST(AsyncEngine, HedgesRescueStragglers)
{
    Fleet fleet(fastFleet(4));
    admitMix(fleet);
    AsyncOptions o;
    o.workers = 6;
    o.straggler_prob = 0.3;
    o.straggler_factor = 10.0;
    o.lease = 50.0; // leases out of the picture: hedges do the rescue
    o.hedge_delay = 2.0;
    AsyncFleetEngine engine(fleet, o);
    const FleetMetrics& m = engine.run(6);

    EXPECT_GT(m.hedges_launched, 0u);
    EXPECT_GT(m.hedges_won, 0u) << "no hedge ever beat its straggler";
    // First result wins, loser cancelled: every launched hedge either
    // won or was cancelled (none can be pending after run()).
    EXPECT_EQ(m.hedges_launched, m.hedges_won + m.hedges_cancelled);
    for (size_t n = 0; n < fleet.nodeCount(); ++n)
        EXPECT_EQ(engine.windowsCommitted(n), 6u) << "node " << n;
    expectNoJobLoss(fleet);
}

TEST(AsyncEngine, HedgingOffNeverSpeculates)
{
    Fleet fleet(fastFleet(2));
    admitMix(fleet);
    AsyncOptions o;
    o.workers = 4;
    o.hedging = false;
    o.straggler_prob = 0.3;
    o.straggler_factor = 4.0; // < lease: stragglers finish on their own
    AsyncFleetEngine engine(fleet, o);
    const FleetMetrics& m = engine.run(4);
    EXPECT_EQ(m.hedges_launched, 0u);
    EXPECT_EQ(m.tasks_committed, 8u);
}

// ---------------------------------------------------------------------
// Node quarantine
// ---------------------------------------------------------------------

TEST(AsyncEngine, BrokenNodeIsQuarantinedAndJobsRescheduled)
{
    Fleet fleet(fastFleet(3));
    admitMix(fleet);
    AsyncOptions o;
    o.workers = 3;
    o.max_retries = 1;
    o.quarantine_failures = 2;
    platform::FaultPlan::NodeBreak broke;
    broke.node = 0;
    broke.after_epoch = 0;
    o.faults.node_breaks.push_back(broke);
    AsyncFleetEngine engine(fleet, o);
    const FleetMetrics& m = engine.run(8);

    EXPECT_TRUE(engine.quarantined(0));
    EXPECT_EQ(engine.quarantinedCount(), 1u);
    EXPECT_EQ(m.nodes_quarantined, 1u);
    EXPECT_GE(m.windows_failed, 2u);
    EXPECT_GT(m.task_failures, 0u);
    EXPECT_EQ(engine.windowsCommitted(0), 0u)
        << "a broken node must never commit";
    // The node was drained and its jobs rescheduled elsewhere without
    // being charged a move (the node failed, not the job): nothing may
    // be parked because of the quarantine.
    EXPECT_TRUE(fleet.nodeJobIds(0).empty());
    expectNoJobLoss(fleet);
    for (const FleetJob& job : fleet.jobs())
        EXPECT_NE(job.node, 0) << "job " << job.id
                               << " still points at the quarantined node";
    // Healthy nodes were never disturbed.
    EXPECT_GT(engine.windowsCommitted(1), 0u);
    EXPECT_GT(engine.windowsCommitted(2), 0u);
}

// ---------------------------------------------------------------------
// Graceful degradation
// ---------------------------------------------------------------------

TEST(AsyncEngine, DegradedPoolServesCriticalNodesFirst)
{
    Fleet fleet(fastFleet(2));
    // One QoS-critical node (LC job) and one BG-only node.
    fleet.admit(workloads::lcJob("memcached", 0.3));
    fleet.admit(workloads::bgJob("canneal"));
    AsyncOptions o;
    o.workers = 2;
    o.degrade_below = 1.0; // any loss at all degrades the pool
    platform::FaultPlan::WorkerDeath death;
    death.at_assignment = 2; // let both nodes start, then lose slot 1
    death.worker = 1;
    o.faults.worker_deaths.push_back(death);
    AsyncFleetEngine engine(fleet, o);
    const FleetMetrics& m = engine.run(8);

    // Placement spread the two jobs over the two nodes (least-loaded
    // fallback) — the scenario needs a BG-only node to exist.
    ASSERT_EQ(fleet.nodeJobIds(0).size(), 1u);
    ASSERT_EQ(fleet.nodeJobIds(1).size(), 1u);
    size_t lc_node =
        fleet.job(fleet.nodeJobIds(0)[0]).spec.isLatencyCritical() ? 0 : 1;
    size_t bg_node = 1 - lc_node;

    EXPECT_EQ(m.workers_lost, 1u);
    EXPECT_EQ(m.workers_rejoined, 0u) << "scripted deaths are permanent";
    EXPECT_GT(m.degraded_dispatches, 0u);
    EXPECT_GT(m.windows_dropped, 0u)
        << "the BG-only node should have shed windows";
    EXPECT_EQ(engine.windowsCommitted(lc_node), 8u)
        << "the QoS-critical node must finish its full schedule";
    EXPECT_LT(engine.windowsCommitted(bg_node), 8u);
    expectNoJobLoss(fleet);
}

TEST(AsyncEngine, TotalWorkerLossStallsVisiblyWithoutJobLoss)
{
    Fleet fleet(fastFleet(2));
    admitMix(fleet);
    AsyncOptions o;
    o.workers = 2;
    for (size_t w = 0; w < 2; ++w) {
        platform::FaultPlan::WorkerDeath death;
        death.at_assignment = 4;
        death.worker = w;
        o.faults.worker_deaths.push_back(death);
    }
    AsyncFleetEngine engine(fleet, o);
    const FleetMetrics& m = engine.run(8);

    EXPECT_TRUE(m.stalled);
    EXPECT_EQ(engine.aliveWorkers(), 0);
    EXPECT_EQ(m.workers_lost, 2u);
    EXPECT_LT(m.tasks_committed, 16u);
    expectNoJobLoss(fleet);
}

// ---------------------------------------------------------------------
// Lockstep coexistence
// ---------------------------------------------------------------------

TEST(AsyncEngine, LockstepDigestUnchangedByEngineRefactor)
{
    // The async engine shares Fleet's placement/eviction substrate;
    // this guards the refactor: a pure lockstep run must be identical
    // whether or not the engine code exists in the binary (compared
    // against a second fleet driven the same way).
    FleetOptions fo = fastFleet(3, 17);
    Fleet a(fo);
    Fleet b(fo);
    for (Fleet* f : {&a, &b}) {
        admitMix(*f);
        for (int w = 0; w < 4; ++w)
            f->tick();
    }
    EXPECT_EQ(a.digest(), b.digest());
}

} // namespace
} // namespace cluster
} // namespace clite

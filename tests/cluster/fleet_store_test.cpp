/**
 * @file
 * Fleet-wide warm-start store tests: nodes seed their searches from
 * fleet-shared priors, the store only grows from the serial phase (so
 * its content is thread-count invariant), and turning sharing off
 * leaves the store inert.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/fleet.h"
#include "common/thread_pool.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

namespace clite {
namespace cluster {
namespace {

FleetOptions
fastOptions(int nodes, uint64_t seed = 1)
{
    FleetOptions options;
    options.nodes = nodes;
    options.seed = seed;
    options.clite.max_iterations = 8;
    options.clite.acquisition_starts = 2;
    return options;
}

TEST(FleetStore, SharedStoreAccumulatesNodeCheckpoints)
{
    Fleet fleet(fastOptions(2));
    fleet.admit(workloads::lcJob("memcached", 0.2));
    fleet.admit(workloads::lcJob("img-dnn", 0.3));
    fleet.tick();
    // Two occupied nodes (or one hosting both mixes): every initialized
    // node checkpointed its mix this window.
    EXPECT_GE(fleet.profileStore().size(), 1u);
    size_t after_one = fleet.profileStore().size();
    fleet.tick();
    EXPECT_GE(fleet.profileStore().size(), after_one);
}

TEST(FleetStore, SharingOffKeepsTheStoreEmpty)
{
    FleetOptions options = fastOptions(2);
    options.shared_store = false;
    Fleet fleet(options);
    fleet.admit(workloads::lcJob("memcached", 0.2));
    fleet.tick();
    EXPECT_EQ(fleet.profileStore().size(), 0u);
    ASSERT_NE(fleet.nodeManager(0), nullptr);
    EXPECT_EQ(fleet.nodeManager(0)->profileStore(), nullptr);
}

TEST(FleetStore, NodeWarmStartsFromPreSeededStore)
{
    Fleet fleet(fastOptions(1));

    // Teach the fleet store the mix with a standalone controller on
    // the same server configuration (what another fleet — or an
    // earlier life of this one — would have checkpointed).
    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("memcached", 0.2)};
    platform::SimulatedServer teacher(
        platform::ServerConfig::xeonSilver4114(), jobs,
        std::make_unique<workloads::AnalyticModel>(), 42, 0.02);
    core::CliteOptions clite;
    clite.max_iterations = 8;
    clite.acquisition_starts = 2;
    core::OnlineManager teach_mgr(teacher, clite, {},
                                  &fleet.profileStore());
    teach_mgr.initialize();
    ASSERT_EQ(fleet.profileStore().size(), 1u);

    // The same mix arriving in the fleet warm-starts its node.
    fleet.admit(workloads::lcJob("memcached", 0.2));
    fleet.tick();
    ASSERT_NE(fleet.nodeManager(0), nullptr);
    EXPECT_EQ(std::string(fleet.nodeManager(0)->warmSource()), "exact");
}

/** Dump a store to a directory and collect filename → bytes. */
std::map<std::string, std::string>
storeFiles(const store::ProfileStore& store, const std::string& dir)
{
    std::filesystem::remove_all(dir);
    store.saveDir(dir);
    std::map<std::string, std::string> files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        std::ifstream in(entry.path(), std::ios::binary);
        files[entry.path().filename().string()] =
            std::string(std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>());
    }
    std::filesystem::remove_all(dir);
    return files;
}

TEST(FleetStore, SlowStoreContentIsThreadCountInvariant)
{
    // Same churny scenario at 1 and 8 workers: because pool threads
    // only READ the store and all writes happen serially in node-index
    // order, the stored snapshots must be byte-identical.
    auto run = [](int threads) {
        setGlobalThreadCount(threads);
        Fleet fleet(fastOptions(4, 3));
        const std::vector<std::string>& lc = workloads::lcWorkloadNames();
        const std::vector<std::string>& bg = workloads::bgWorkloadNames();
        for (int w = 0; w < 5; ++w) {
            size_t k = size_t(3 + w);
            fleet.admit(
                workloads::lcJob(lc[k % lc.size()], w == 3 ? 1.0 : 0.3));
            fleet.admit(workloads::bgJob(bg[k % bg.size()]));
            fleet.tick();
        }
        return storeFiles(fleet.profileStore(),
                          testing::TempDir() + "clite_fleet_store_" +
                              std::to_string(threads));
    };
    std::map<std::string, std::string> serial = run(1);
    std::map<std::string, std::string> parallel = run(8);
    setGlobalThreadCount(ThreadPool::defaultThreadCount());
    ASSERT_FALSE(serial.empty());
    EXPECT_EQ(serial.size(), parallel.size());
    EXPECT_TRUE(serial == parallel)
        << "fleet store content diverged between serial and parallel";
}

} // namespace
} // namespace cluster
} // namespace clite

/**
 * @file
 * Unit tests for the engine's passive pieces: the two-class TaskQueue
 * (priority ordering, lazy cancellation, degradation shedding) and the
 * WorkerPool slot lifecycle.
 */

#include <gtest/gtest.h>

#include <set>

#include "cluster/task_queue.h"
#include "cluster/worker.h"
#include "common/error.h"

namespace clite {
namespace cluster {
namespace {

WindowTask
task(uint64_t id, bool critical, bool hedge = false)
{
    WindowTask t;
    t.id = id;
    t.critical = critical;
    t.hedge = hedge;
    return t;
}

const std::function<bool(uint64_t)> all_alive = [](uint64_t) {
    return true;
};

TEST(TaskQueue, CriticalClassDispatchesFirst)
{
    TaskQueue q;
    q.push(task(1, false));
    q.push(task(2, true));
    q.push(task(3, false));
    q.push(task(4, true));
    EXPECT_EQ(q.criticalSize(), 2u);
    EXPECT_EQ(q.normalSize(), 2u);

    EXPECT_EQ(q.pop(false, all_alive), 2u);
    EXPECT_EQ(q.pop(false, all_alive), 4u);
    EXPECT_EQ(q.pop(false, all_alive), 1u);
    EXPECT_EQ(q.pop(false, all_alive), 3u);
    EXPECT_FALSE(q.pop(false, all_alive).has_value());
}

TEST(TaskQueue, CriticalOnlyLeavesNormalBacklogQueued)
{
    TaskQueue q;
    q.push(task(1, false));
    q.push(task(2, true));
    EXPECT_EQ(q.pop(true, all_alive), 2u);
    EXPECT_FALSE(q.pop(true, all_alive).has_value());
    EXPECT_EQ(q.normalSize(), 1u); // still there for better times
    EXPECT_EQ(q.pop(false, all_alive), 1u);
}

TEST(TaskQueue, PushFrontJumpsItsClass)
{
    TaskQueue q;
    q.push(task(1, true));
    q.pushFront(task(2, true)); // a retry is late already
    q.push(task(3, false));
    q.pushFront(task(4, false));
    EXPECT_EQ(q.pop(false, all_alive), 2u);
    EXPECT_EQ(q.pop(false, all_alive), 1u);
    EXPECT_EQ(q.pop(false, all_alive), 4u);
    EXPECT_EQ(q.pop(false, all_alive), 3u);
}

TEST(TaskQueue, LazilyCancelledTasksAreSkipped)
{
    TaskQueue q;
    q.push(task(1, true));
    q.push(task(2, true));
    q.push(task(3, true));
    const auto alive = [](uint64_t id) { return id != 1 && id != 2; };
    EXPECT_EQ(q.pop(false, alive), 3u);
    EXPECT_TRUE(q.empty());
}

TEST(TaskQueue, DropNormalShedsOnlyTheNormalClass)
{
    TaskQueue q;
    q.push(task(1, false));
    q.push(task(2, true));
    q.push(task(3, false));
    std::vector<uint64_t> shed = q.dropNormal();
    EXPECT_EQ(shed, (std::vector<uint64_t>{1, 3}));
    EXPECT_EQ(q.normalSize(), 0u);
    EXPECT_EQ(q.pop(false, all_alive), 2u);
}

TEST(TaskStateNames, AllDistinct)
{
    std::set<std::string> names;
    for (TaskState s :
         {TaskState::Queued, TaskState::Running, TaskState::Committed,
          TaskState::Superseded, TaskState::Lost, TaskState::Failed,
          TaskState::Dropped})
        names.insert(taskStateName(s));
    EXPECT_EQ(names.size(), 7u);
}

TEST(WorkerPool, AssignReleaseLifecycle)
{
    WorkerPool pool(3);
    EXPECT_EQ(pool.size(), 3);
    EXPECT_EQ(pool.aliveCount(), 3);
    EXPECT_EQ(pool.idleCount(), 3);

    int w = pool.findIdle();
    EXPECT_EQ(w, 0);
    pool.assign(w, 42);
    EXPECT_EQ(pool.worker(w).state, WorkerState::Busy);
    EXPECT_EQ(pool.worker(w).current_task, 42u);
    EXPECT_EQ(pool.findIdle(), 1);
    EXPECT_EQ(pool.idleCount(), 2);

    pool.release(w);
    EXPECT_EQ(pool.worker(w).state, WorkerState::Idle);
    EXPECT_EQ(pool.worker(w).assignments, 1u);
}

TEST(WorkerPool, DoubleAssignIsAnError)
{
    WorkerPool pool(1);
    pool.assign(0, 1);
    EXPECT_THROW(pool.assign(0, 2), Error);
}

TEST(WorkerPool, KillAndReviveCycle)
{
    WorkerPool pool(2);
    pool.assign(0, 7);
    pool.kill(0); // died holding task 7
    EXPECT_EQ(pool.worker(0).state, WorkerState::Dead);
    EXPECT_EQ(pool.aliveCount(), 1);
    EXPECT_EQ(pool.worker(0).losses, 1u);

    // Releasing a dead worker's forfeited task is a safe no-op.
    pool.release(0);
    EXPECT_EQ(pool.worker(0).state, WorkerState::Dead);

    pool.revive(0);
    EXPECT_EQ(pool.worker(0).state, WorkerState::Idle);
    EXPECT_EQ(pool.aliveCount(), 2);

    // Reviving an alive worker is a no-op.
    pool.assign(0, 8);
    pool.revive(0);
    EXPECT_EQ(pool.worker(0).state, WorkerState::Busy);
}

TEST(WorkerPool, ClampsNonPositiveSizes)
{
    WorkerPool pool(0);
    EXPECT_EQ(pool.size(), 1);
}

} // namespace
} // namespace cluster
} // namespace clite

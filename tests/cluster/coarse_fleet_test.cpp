/**
 * @file
 * Coarse DES as the fleet search default: with the DES backend, node
 * searches measure their probe windows under
 * FleetOptions::search_event_budget while validation and monitoring
 * windows stay fine-mode. The coarse fleet must land inside the
 * documented 25% p95 accuracy band (docs/MODEL.md, pinned at the
 * station level by tests/sim/queueing_budget_test.cpp) of the
 * fine-mode fleet on the aggregate QoS and BG-performance outcomes,
 * and the refit/coarse counters must surface through FleetMetrics.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cluster/fleet.h"
#include "cluster/manager.h"
#include "workloads/catalog.h"

namespace clite {
namespace cluster {
namespace {

FleetOptions
desFleet(uint64_t budget)
{
    FleetOptions o;
    o.nodes = 2;
    o.seed = 17;
    o.backend = harness::ModelBackend::Des;
    o.search_event_budget = budget;
    o.clite.max_iterations = 8;
    o.clite.polish_iterations = 2;
    o.clite.acquisition_starts = 4;
    return o;
}

void
admitMix(Fleet& fleet)
{
    fleet.admit(workloads::lcJob("img-dnn", 0.4));
    fleet.admit(workloads::bgJob("streamcluster"));
    fleet.admit(workloads::lcJob("masstree", 0.3));
}

struct EngineRun
{
    FleetMetrics metrics;
    double qos_met = 0.0;
    double bg_perf = 0.0;
};

EngineRun
runEngine(Fleet& fleet, int windows)
{
    AsyncOptions o;
    o.workers = 2;
    o.straggler_prob = 0.0;
    AsyncFleetEngine engine(fleet, o);
    EngineRun r;
    r.metrics = engine.run(windows);
    r.qos_met = engine.qosMetFraction();
    r.bg_perf = engine.meanBgPerf();
    return r;
}

TEST(CoarseFleet, CoarseSearchStaysInsideAccuracyBandOfFine)
{
    Fleet fine_fleet(desFleet(0));
    admitMix(fine_fleet);
    const EngineRun fine = runEngine(fine_fleet, 3);
    EXPECT_EQ(fine.metrics.coarse_windows, 0u);
    EXPECT_GE(fine.metrics.refits, 1u);
    EXPECT_GT(fine.metrics.probe_evals, 0u);

    Fleet coarse_fleet(desFleet(2000));
    admitMix(coarse_fleet);
    const EngineRun coarse = runEngine(coarse_fleet, 3);
    EXPECT_GT(coarse.metrics.coarse_windows, 0u);
    EXPECT_GE(coarse.metrics.refits, 1u);

    // Aggregate QoS attainment within the 25% band (absolute on a
    // [0, 1] fraction — the coarse search may converge to a different
    // but comparably good partition).
    EXPECT_LE(std::fabs(fine.qos_met - coarse.qos_met), 0.25);
    // Mean BG performance within 25% relative of the fine fleet.
    ASSERT_GT(fine.bg_perf, 0.0);
    EXPECT_LE(std::fabs(coarse.bg_perf - fine.bg_perf) / fine.bg_perf,
              0.25);
}

TEST(CoarseFleet, AnalyticBackendNeverMeasuresCoarse)
{
    // The default FleetOptions budget is live, but the analytic
    // backend has no event bill: nothing measures coarse.
    FleetOptions o;
    o.nodes = 2;
    o.seed = 17;
    o.clite.max_iterations = 8;
    o.clite.polish_iterations = 2;
    o.clite.acquisition_starts = 4;
    ASSERT_GT(o.search_event_budget, 0u);
    Fleet fleet(o);
    admitMix(fleet);
    const EngineRun r = runEngine(fleet, 2);
    EXPECT_EQ(r.metrics.coarse_windows, 0u);
    EXPECT_GE(r.metrics.refits, 1u);
}

} // namespace
} // namespace cluster
} // namespace clite

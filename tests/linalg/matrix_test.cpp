/**
 * @file
 * Unit and property tests for the dense matrix substrate.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace clite {
namespace linalg {
namespace {

Matrix
randomMatrix(size_t rows, size_t cols, Rng& rng)
{
    Matrix m(rows, cols);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            m(r, c) = rng.uniform(-2.0, 2.0);
    return m;
}

TEST(Matrix, ConstructionAndAccess)
{
    Matrix m(2, 3, 1.5);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m(1, 2), 1.5);
    m(0, 1) = -4.0;
    EXPECT_DOUBLE_EQ(m(0, 1), -4.0);
}

TEST(Matrix, InitializerListAndRaggedRejection)
{
    Matrix m{{1, 2}, {3, 4}};
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
    EXPECT_THROW((Matrix{{1, 2}, {3}}), Error);
}

TEST(Matrix, IdentityBehavesAsNeutralElement)
{
    Rng rng(5);
    Matrix a = randomMatrix(4, 4, rng);
    Matrix i = Matrix::identity(4);
    Matrix prod = a * i;
    EXPECT_LT((prod - a).maxAbs(), 1e-12);
}

TEST(Matrix, ProductMatchesHandComputedExample)
{
    Matrix a{{1, 2}, {3, 4}};
    Matrix b{{5, 6}, {7, 8}};
    Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, ProductShapeMismatchThrows)
{
    Matrix a(2, 3), b(2, 3);
    EXPECT_THROW(a * b, Error);
}

TEST(Matrix, TransposeProductProperty)
{
    // (AB)^T == B^T A^T for random matrices.
    Rng rng(9);
    Matrix a = randomMatrix(3, 5, rng);
    Matrix b = randomMatrix(5, 2, rng);
    Matrix lhs = (a * b).transposed();
    Matrix rhs = b.transposed() * a.transposed();
    EXPECT_LT((lhs - rhs).maxAbs(), 1e-12);
}

TEST(Matrix, MatVecMatchesMatMat)
{
    Rng rng(11);
    Matrix a = randomMatrix(4, 3, rng);
    Vector v = {1.0, -2.0, 0.5};
    Vector got = a * v;
    Matrix vm(3, 1);
    for (size_t i = 0; i < 3; ++i)
        vm(i, 0) = v[i];
    Matrix expect = a * vm;
    for (size_t i = 0; i < 4; ++i)
        EXPECT_NEAR(got[i], expect(i, 0), 1e-12);
}

TEST(Matrix, RowColExtraction)
{
    Matrix m{{1, 2, 3}, {4, 5, 6}};
    EXPECT_EQ(m.row(1), (Vector{4, 5, 6}));
    EXPECT_EQ(m.col(2), (Vector{3, 6}));
    EXPECT_THROW(m.row(2), Error);
    EXPECT_THROW(m.col(3), Error);
}

TEST(Matrix, AddDiagonalRequiresSquare)
{
    Matrix sq(3, 3, 1.0);
    sq.addDiagonal(0.5);
    EXPECT_DOUBLE_EQ(sq(0, 0), 1.5);
    EXPECT_DOUBLE_EQ(sq(0, 1), 1.0);
    Matrix rect(2, 3);
    EXPECT_THROW(rect.addDiagonal(1.0), Error);
}

TEST(VectorOps, DotNormAddSubScaleAxpy)
{
    Vector a = {3.0, 4.0};
    Vector b = {1.0, -1.0};
    EXPECT_DOUBLE_EQ(dot(a, b), -1.0);
    EXPECT_DOUBLE_EQ(norm2(a), 5.0);
    EXPECT_EQ(add(a, b), (Vector{4.0, 3.0}));
    EXPECT_EQ(sub(a, b), (Vector{2.0, 5.0}));
    EXPECT_EQ(scale(a, 2.0), (Vector{6.0, 8.0}));
    Vector c = a;
    axpy(c, 2.0, b);
    EXPECT_EQ(c, (Vector{5.0, 2.0}));
}

TEST(VectorOps, SizeMismatchThrows)
{
    Vector a = {1.0};
    Vector b = {1.0, 2.0};
    EXPECT_THROW(dot(a, b), Error);
    EXPECT_THROW(add(a, b), Error);
    EXPECT_THROW(sub(a, b), Error);
    Vector c = a;
    EXPECT_THROW(axpy(c, 1.0, b), Error);
}

} // namespace
} // namespace linalg
} // namespace clite

/**
 * @file
 * Tests for the blocked triangular panel solver (linalg/trsm.h) and
 * the allocation-free Cholesky entry points it rides with. The load-
 * bearing property is bit-exactness: the panel solve must equal B
 * independent Cholesky::solveLower calls to the last ULP, including
 * sizes that straddle the internal row-block boundary and ragged
 * column counts — this is what lets the batched GP posterior keep the
 * %.17g golden byte-identical.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/trsm.h"

namespace clite {
namespace linalg {
namespace {

/** Exact bit equality (EXPECT_EQ would conflate +0/-0 and fail NaN). */
::testing::AssertionResult
bitEqual(double a, double b)
{
    if (std::bit_cast<uint64_t>(a) == std::bit_cast<uint64_t>(b))
        return ::testing::AssertionSuccess();
    return ::testing::AssertionFailure()
           << a << " != " << b << " (bit patterns differ)";
}

Matrix
randomSpd(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Matrix b(n, n);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            b(r, c) = rng.uniform(-1.0, 1.0);
    Matrix a = b * b.transposed();
    a.addDiagonal(double(n) * 0.1);
    return a;
}

TEST(SolveLowerPanel, BitIdenticalToPerColumnSolves)
{
    // Sizes on both sides of the 48-row internal block, with ragged
    // tails; column counts spanning one candidate to a full block.
    for (size_t n : {size_t(1), size_t(5), size_t(47), size_t(48),
                     size_t(49), size_t(100), size_t(147)}) {
        Cholesky chol(randomSpd(n, 11 + n));
        for (size_t ncols : {size_t(1), size_t(7), size_t(64)}) {
            Rng rng(3 * n + ncols);
            // Column-major logical systems laid out row-major n×ncols.
            std::vector<double> panel(n * ncols);
            for (double& v : panel)
                v = rng.uniform(-2.0, 2.0);
            std::vector<Vector> rhs(ncols, Vector(n));
            for (size_t c = 0; c < ncols; ++c)
                for (size_t i = 0; i < n; ++i)
                    rhs[c][i] = panel[i * ncols + c];

            solveLowerPanel(chol.factor(), panel.data(), ncols);

            for (size_t c = 0; c < ncols; ++c) {
                Vector y = chol.solveLower(rhs[c]);
                for (size_t i = 0; i < n; ++i)
                    EXPECT_TRUE(bitEqual(panel[i * ncols + c], y[i]))
                        << "n=" << n << " ncols=" << ncols << " col=" << c
                        << " row=" << i;
            }
        }
    }
}

TEST(SolveLowerPanel, EmptyPanelIsANoop)
{
    Cholesky chol(randomSpd(4, 5));
    solveLowerPanel(chol.factor(), nullptr, 0);
}

TEST(PanelReductions, MatchDotProducts)
{
    const size_t n = 53, ncols = 9;
    Rng rng(77);
    std::vector<double> panel(n * ncols);
    for (double& v : panel)
        v = rng.uniform(-1.0, 1.0);
    Vector alpha(n);
    for (double& v : alpha)
        v = rng.uniform(-1.0, 1.0);

    std::vector<double> dots(ncols), norms(ncols);
    panelDotRows(panel.data(), n, ncols, alpha.data(), dots.data());
    panelColumnSquaredNorms(panel.data(), n, ncols, norms.data());

    for (size_t c = 0; c < ncols; ++c) {
        Vector col(n);
        for (size_t i = 0; i < n; ++i)
            col[i] = panel[i * ncols + c];
        EXPECT_TRUE(bitEqual(dots[c], dot(col, alpha))) << "col " << c;
        EXPECT_TRUE(bitEqual(norms[c], dot(col, col))) << "col " << c;
    }
}

TEST(CholeskySolveInPlace, MatchesSolve)
{
    for (size_t n : {size_t(1), size_t(8), size_t(33)}) {
        Cholesky chol(randomSpd(n, 200 + n));
        Rng rng(n);
        Vector b(n);
        for (double& v : b)
            v = rng.uniform(-1.0, 1.0);
        Vector expect = chol.solve(b);
        Vector inplace = b;
        chol.solveInPlace(inplace);
        for (size_t i = 0; i < n; ++i)
            EXPECT_TRUE(bitEqual(inplace[i], expect[i])) << "i=" << i;
    }
}

TEST(CholeskyRefactor, MatchesFreshFactorizationAndReusesStorage)
{
    Matrix a1 = randomSpd(24, 31);
    Matrix a2 = randomSpd(24, 32);
    Cholesky fresh(a2);
    Cholesky reused(a1);
    const double* storage_before = reused.factor().data().data();
    reused.refactor(a2);
    EXPECT_EQ(reused.factor().data().data(), storage_before)
        << "same-size refactor should reuse the factor's storage";
    for (size_t i = 0; i < 24; ++i)
        for (size_t j = 0; j <= i; ++j)
            EXPECT_TRUE(bitEqual(reused.factor()(i, j),
                                 fresh.factor()(i, j)))
                << "(" << i << "," << j << ")";
    EXPECT_EQ(reused.appliedJitter(), fresh.appliedJitter());
}

TEST(CholeskyRefactor, CanChangeSize)
{
    Cholesky chol(randomSpd(8, 41));
    chol.refactor(randomSpd(20, 42));
    EXPECT_EQ(chol.size(), 20u);
    Cholesky fresh(randomSpd(20, 42));
    for (size_t i = 0; i < 20; ++i)
        EXPECT_TRUE(bitEqual(chol.factor()(i, i), fresh.factor()(i, i)));
}

} // namespace
} // namespace linalg
} // namespace clite

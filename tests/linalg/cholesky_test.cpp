/**
 * @file
 * Unit and property tests for the Cholesky factorization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/cholesky.h"

namespace clite {
namespace linalg {
namespace {

/** Random SPD matrix A = B Bᵀ + n·I. */
Matrix
randomSpd(size_t n, Rng& rng)
{
    Matrix b(n, n);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            b(r, c) = rng.uniform(-1.0, 1.0);
    Matrix a = b * b.transposed();
    a.addDiagonal(double(n) * 0.1);
    return a;
}

TEST(Cholesky, FactorReconstructsMatrix)
{
    Rng rng(3);
    Matrix a = randomSpd(6, rng);
    Cholesky chol(a);
    Matrix recon = chol.factor() * chol.factor().transposed();
    EXPECT_LT((recon - a).maxAbs(), 1e-9);
    EXPECT_DOUBLE_EQ(chol.appliedJitter(), 0.0);
}

TEST(Cholesky, FactorIsLowerTriangular)
{
    Rng rng(5);
    Matrix a = randomSpd(5, rng);
    Cholesky chol(a);
    for (size_t r = 0; r < 5; ++r)
        for (size_t c = r + 1; c < 5; ++c)
            EXPECT_DOUBLE_EQ(chol.factor()(r, c), 0.0);
}

class CholeskySolveTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(CholeskySolveTest, SolveRecoversKnownSolution)
{
    const size_t n = GetParam();
    Rng rng(7 + n);
    Matrix a = randomSpd(n, rng);
    Vector x_true(n);
    for (size_t i = 0; i < n; ++i)
        x_true[i] = rng.uniform(-3.0, 3.0);
    Vector b = a * x_true;
    Cholesky chol(a);
    Vector x = chol.solve(b);
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySolveTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Cholesky, TriangularSolvesComposeToFullSolve)
{
    Rng rng(11);
    Matrix a = randomSpd(4, rng);
    Cholesky chol(a);
    Vector b = {1.0, -2.0, 0.5, 3.0};
    Vector via_parts = chol.solveUpper(chol.solveLower(b));
    Vector direct = chol.solve(b);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(via_parts[i], direct[i]);
}

TEST(Cholesky, LogDetMatchesKnownDiagonalMatrix)
{
    Matrix a(3, 3, 0.0);
    a(0, 0) = 2.0;
    a(1, 1) = 3.0;
    a(2, 2) = 4.0;
    Cholesky chol(a);
    EXPECT_NEAR(chol.logDet(), std::log(24.0), 1e-12);
}

TEST(Cholesky, AppendRowMatchesBatchFactor)
{
    // Factor the leading (n-1)x(n-1) block, append the last row/column
    // incrementally, and compare against factoring the full matrix.
    Rng rng(17);
    const size_t n = 8;
    Matrix a = randomSpd(n, rng);
    Matrix leading(n - 1, n - 1);
    for (size_t r = 0; r + 1 < n; ++r)
        for (size_t c = 0; c + 1 < n; ++c)
            leading(r, c) = a(r, c);
    Cholesky inc(leading);
    Vector b(n - 1);
    for (size_t r = 0; r + 1 < n; ++r)
        b[r] = a(r, n - 1);
    ASSERT_TRUE(inc.appendRow(b, a(n - 1, n - 1)));
    ASSERT_EQ(inc.size(), n);

    Cholesky batch(a);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c <= r; ++c)
            EXPECT_NEAR(inc.factor()(r, c), batch.factor()(r, c), 1e-10)
                << "entry (" << r << "," << c << ")";
}

TEST(Cholesky, AppendRowGrowsFromScalar)
{
    // Build the factor of a 5x5 SPD matrix one row at a time and check
    // the solve against the batch factorization.
    Rng rng(19);
    const size_t n = 5;
    Matrix a = randomSpd(n, rng);
    Matrix first(1, 1);
    first(0, 0) = a(0, 0);
    Cholesky inc(first);
    for (size_t k = 1; k < n; ++k) {
        Vector b(k);
        for (size_t r = 0; r < k; ++r)
            b[r] = a(r, k);
        ASSERT_TRUE(inc.appendRow(b, a(k, k))) << "append " << k;
    }
    Vector x_true(n);
    for (size_t i = 0; i < n; ++i)
        x_true[i] = rng.uniform(-2.0, 2.0);
    Vector rhs = a * x_true;
    Vector x = inc.solve(rhs);
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-8);
}

TEST(Cholesky, AppendRowMatchesBatchAfterJitter)
{
    // A singular base engages the jitter path; the appended factor
    // must match a batch factorization of the grown matrix with the
    // same jitter added, row for row.
    // The new column must be consistent with the base's rank
    // deficiency (b[0] == b[1]); an inconsistent column correctly
    // drives the pivot negative and appendRow refuses.
    Matrix a{{1.0, 1.0}, {1.0, 1.0}};
    Cholesky inc(a);
    ASSERT_GT(inc.appliedJitter(), 0.0);
    Vector b = {0.5, 0.5};
    ASSERT_TRUE(inc.appendRow(b, 2.0));

    Matrix grown{{1.0, 1.0, 0.5}, {1.0, 1.0, 0.5}, {0.5, 0.5, 2.0}};
    grown.addDiagonal(inc.appliedJitter());
    Cholesky batch(grown);
    ASSERT_DOUBLE_EQ(batch.appliedJitter(), 0.0);
    for (size_t r = 0; r < 3; ++r)
        for (size_t c = 0; c <= r; ++c)
            EXPECT_NEAR(inc.factor()(r, c), batch.factor()(r, c), 1e-9)
                << "entry (" << r << "," << c << ")";
}

TEST(Cholesky, AppendRowRejectsDuplicatePointAndKeepsFactor)
{
    // Appending an exact duplicate of an existing point makes the new
    // pivot zero: appendRow must refuse and leave the factor intact.
    Matrix a{{1.0, 0.0}, {0.0, 1.0}};
    Cholesky chol(a);
    Matrix before = chol.factor();
    Vector dup = {1.0, 0.0};
    EXPECT_FALSE(chol.appendRow(dup, 1.0));
    EXPECT_EQ(chol.size(), 2u);
    EXPECT_DOUBLE_EQ((chol.factor() - before).maxAbs(), 0.0);
}

TEST(Cholesky, AppendRowSizeMismatchThrows)
{
    Rng rng(23);
    Matrix a = randomSpd(3, rng);
    Cholesky chol(a);
    Vector wrong = {1.0, 2.0};
    EXPECT_THROW(chol.appendRow(wrong, 5.0), Error);
}

TEST(Cholesky, JitterRescuesSingularMatrix)
{
    // Rank-1 PSD matrix (singular): jitter path must engage.
    Matrix a{{1.0, 1.0}, {1.0, 1.0}};
    Cholesky chol(a);
    EXPECT_GT(chol.appliedJitter(), 0.0);
    EXPECT_EQ(chol.size(), 2u);
}

TEST(Cholesky, IndefiniteMatrixThrows)
{
    Matrix a{{1.0, 0.0}, {0.0, -5.0}};
    EXPECT_THROW(Cholesky c(a), Error);
}

TEST(Cholesky, NonSquareThrows)
{
    Matrix a(2, 3, 1.0);
    EXPECT_THROW(Cholesky c(a), Error);
}

TEST(Cholesky, SolveSizeMismatchThrows)
{
    Rng rng(13);
    Matrix a = randomSpd(3, rng);
    Cholesky chol(a);
    Vector wrong = {1.0, 2.0};
    EXPECT_THROW(chol.solve(wrong), Error);
}

} // namespace
} // namespace linalg
} // namespace clite

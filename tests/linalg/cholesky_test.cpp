/**
 * @file
 * Unit and property tests for the Cholesky factorization.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/cholesky.h"

namespace clite {
namespace linalg {
namespace {

/** Random SPD matrix A = B Bᵀ + n·I. */
Matrix
randomSpd(size_t n, Rng& rng)
{
    Matrix b(n, n);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            b(r, c) = rng.uniform(-1.0, 1.0);
    Matrix a = b * b.transposed();
    a.addDiagonal(double(n) * 0.1);
    return a;
}

TEST(Cholesky, FactorReconstructsMatrix)
{
    Rng rng(3);
    Matrix a = randomSpd(6, rng);
    Cholesky chol(a);
    Matrix recon = chol.factor() * chol.factor().transposed();
    EXPECT_LT((recon - a).maxAbs(), 1e-9);
    EXPECT_DOUBLE_EQ(chol.appliedJitter(), 0.0);
}

TEST(Cholesky, FactorIsLowerTriangular)
{
    Rng rng(5);
    Matrix a = randomSpd(5, rng);
    Cholesky chol(a);
    for (size_t r = 0; r < 5; ++r)
        for (size_t c = r + 1; c < 5; ++c)
            EXPECT_DOUBLE_EQ(chol.factor()(r, c), 0.0);
}

class CholeskySolveTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(CholeskySolveTest, SolveRecoversKnownSolution)
{
    const size_t n = GetParam();
    Rng rng(7 + n);
    Matrix a = randomSpd(n, rng);
    Vector x_true(n);
    for (size_t i = 0; i < n; ++i)
        x_true[i] = rng.uniform(-3.0, 3.0);
    Vector b = a * x_true;
    Cholesky chol(a);
    Vector x = chol.solve(b);
    for (size_t i = 0; i < n; ++i)
        EXPECT_NEAR(x[i], x_true[i], 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySolveTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(Cholesky, TriangularSolvesComposeToFullSolve)
{
    Rng rng(11);
    Matrix a = randomSpd(4, rng);
    Cholesky chol(a);
    Vector b = {1.0, -2.0, 0.5, 3.0};
    Vector via_parts = chol.solveUpper(chol.solveLower(b));
    Vector direct = chol.solve(b);
    for (size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(via_parts[i], direct[i]);
}

TEST(Cholesky, LogDetMatchesKnownDiagonalMatrix)
{
    Matrix a(3, 3, 0.0);
    a(0, 0) = 2.0;
    a(1, 1) = 3.0;
    a(2, 2) = 4.0;
    Cholesky chol(a);
    EXPECT_NEAR(chol.logDet(), std::log(24.0), 1e-12);
}

TEST(Cholesky, JitterRescuesSingularMatrix)
{
    // Rank-1 PSD matrix (singular): jitter path must engage.
    Matrix a{{1.0, 1.0}, {1.0, 1.0}};
    Cholesky chol(a);
    EXPECT_GT(chol.appliedJitter(), 0.0);
    EXPECT_EQ(chol.size(), 2u);
}

TEST(Cholesky, IndefiniteMatrixThrows)
{
    Matrix a{{1.0, 0.0}, {0.0, -5.0}};
    EXPECT_THROW(Cholesky c(a), Error);
}

TEST(Cholesky, NonSquareThrows)
{
    Matrix a(2, 3, 1.0);
    EXPECT_THROW(Cholesky c(a), Error);
}

TEST(Cholesky, SolveSizeMismatchThrows)
{
    Rng rng(13);
    Matrix a = randomSpd(3, rng);
    Cholesky chol(a);
    Vector wrong = {1.0, 2.0};
    EXPECT_THROW(chol.solve(wrong), Error);
}

} // namespace
} // namespace linalg
} // namespace clite

/**
 * @file
 * Tests for the per-thread scratch arena (common/arena.h). The
 * property the hot paths rely on: after one warm-up round, repeating
 * the same allocation pattern under a Frame performs zero heap
 * allocations (growCount stable) and hands back the same memory.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "common/arena.h"

namespace clite {
namespace {

TEST(ScratchArena, AllocationsAreAligned)
{
    ScratchArena arena;
    ScratchArena::Frame frame(arena);
    for (size_t n : {size_t(1), size_t(3), size_t(17), size_t(1000)}) {
        double* p = arena.doubles(n);
        ASSERT_NE(p, nullptr);
        EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 64, 0u) << "n=" << n;
        p[0] = 1.0;
        p[n - 1] = 2.0; // touch both ends; ASan would flag overflow
    }
}

TEST(ScratchArena, FrameRestoresUsage)
{
    ScratchArena arena;
    {
        ScratchArena::Frame outer(arena);
        double* a = arena.doubles(100);
        double* b = nullptr;
        {
            ScratchArena::Frame inner(arena);
            b = arena.doubles(50);
            EXPECT_NE(a, b);
        }
        // After the inner frame pops, the same bytes come back.
        double* c = arena.doubles(50);
        EXPECT_EQ(b, c);
    }
    EXPECT_EQ(arena.depth(), 0u);
}

TEST(ScratchArena, SteadyStateIsAllocationFree)
{
    ScratchArena arena;
    auto round = [&] {
        ScratchArena::Frame frame(arena);
        double* a = arena.doubles(300);
        double* b = arena.doubles(7);
        double* c = arena.doubles(4096);
        a[0] = b[0] = c[0] = 0.0;
    };
    round(); // warm-up: grows + coalesces
    round(); // coalesced chunk may itself be a fresh grow
    size_t grows = arena.growCount();
    for (int i = 0; i < 10; ++i)
        round();
    EXPECT_EQ(arena.growCount(), grows)
        << "repeated identical rounds must not touch the heap";
    EXPECT_GE(arena.capacity(), 300u + 7u + 4096u);
}

TEST(ScratchArena, GrowthNeverMovesLiveAllocations)
{
    ScratchArena arena;
    ScratchArena::Frame frame(arena);
    double* a = arena.doubles(8);
    a[0] = 42.0;
    // Force several growth events while `a` is live.
    for (int i = 0; i < 6; ++i)
        arena.doubles(1 << (12 + i))[0] = double(i);
    EXPECT_EQ(a[0], 42.0);
}

TEST(ScratchArena, PerThreadInstancesAreDistinct)
{
    ScratchArena* main_arena = &ScratchArena::forCurrentThread();
    ScratchArena* other = nullptr;
    std::thread t([&] { other = &ScratchArena::forCurrentThread(); });
    t.join();
    EXPECT_NE(main_arena, other);
    // And repeated calls on one thread return the same instance.
    EXPECT_EQ(main_arena, &ScratchArena::forCurrentThread());
}

} // namespace
} // namespace clite

/**
 * @file
 * Tests for the deterministic thread pool: full index coverage,
 * bit-identical results regardless of pool size and completion order,
 * reentrancy (nested parallelFor), and exception propagation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"

namespace clite {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    const size_t n = 137;
    std::vector<std::atomic<int>> hits(n);
    pool.parallelFor(n, [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ZeroAndSingleTaskEdgeCases)
{
    ThreadPool pool(3);
    int calls = 0;
    pool.parallelFor(0, [&](size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    pool.parallelFor(1, [&](size_t i) { calls += int(i) + 1; });
    EXPECT_EQ(calls, 1);
}

/**
 * The determinism contract: each task derives its own RNG stream from
 * its index and writes only its own slot, so the result vector must be
 * bit-identical across pool sizes — and to a plain serial loop — even
 * though task completion order is shuffled by variable task durations.
 */
TEST(ThreadPool, BitIdenticalAcrossPoolSizesUnderShuffledCompletion)
{
    const size_t n = 64;
    auto task = [](size_t i) {
        Rng rng = Rng(9001).split(uint64_t(i));
        // Variable amount of work per index so threads finish out of
        // order: index i draws i+1 samples and folds them together.
        double acc = 0.0;
        for (size_t k = 0; k <= i; ++k)
            acc += std::sin(rng.uniform(-3.0, 3.0)) * double(k + 1);
        return acc;
    };

    std::vector<double> serial(n);
    for (size_t i = 0; i < n; ++i)
        serial[i] = task(i);

    for (int threads : {1, 2, 4, 7}) {
        ThreadPool pool(threads);
        std::vector<double> out = pool.parallelMap(n, task);
        ASSERT_EQ(out.size(), n);
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(out[i], serial[i])
                << "threads=" << threads << " index=" << i;
    }
}

TEST(ThreadPool, NestedParallelForCompletes)
{
    // Outer cells each run an inner parallelFor on the same pool; the
    // caller-participates design must complete this without deadlock
    // even when every worker is busy with outer cells.
    ThreadPool pool(2);
    const size_t outer = 6, inner = 10;
    std::vector<std::vector<int>> result(outer);
    pool.parallelFor(outer, [&](size_t i) {
        std::vector<int> local(inner);
        pool.parallelFor(inner,
                         [&](size_t j) { local[j] = int(i * 100 + j); });
        result[i] = std::move(local);
    });
    for (size_t i = 0; i < outer; ++i)
        for (size_t j = 0; j < inner; ++j)
            EXPECT_EQ(result[i][j], int(i * 100 + j));
}

TEST(ThreadPool, LowestIndexExceptionPropagates)
{
    ThreadPool pool(4);
    try {
        pool.parallelFor(16, [&](size_t i) {
            if (i % 2 == 1)
                throw std::runtime_error("task " + std::to_string(i));
        });
        FAIL() << "expected parallelFor to rethrow";
    } catch (const std::runtime_error& e) {
        // Index 1 is the lowest thrower and must win regardless of
        // which worker hit its exception first.
        EXPECT_STREQ(e.what(), "task 1");
    }
}

TEST(ThreadPool, SerialPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> ids(8);
    pool.parallelFor(8, [&](size_t i) { ids[i] = std::this_thread::get_id(); });
    for (const auto& id : ids)
        EXPECT_EQ(id, caller);
}

TEST(ThreadPool, ClampsNonPositiveThreadCounts)
{
    EXPECT_EQ(ThreadPool(0).threadCount(), 1);
    EXPECT_EQ(ThreadPool(-3).threadCount(), 1);
}

TEST(ThreadPool, GlobalPoolOverride)
{
    setGlobalThreadCount(3);
    EXPECT_EQ(globalPool().threadCount(), 3);
    setGlobalThreadCount(1);
    EXPECT_EQ(globalPool().threadCount(), 1);
}

TEST(ThreadPool, IndicesVariantCoversExactlyTheGivenSet)
{
    // The sparse fan-out used by the async fleet engine: a scattered
    // subset of distinct indices, each visited exactly once, results
    // written only to index-owned slots.
    ThreadPool pool(4);
    std::vector<size_t> indices = {7, 1, 12, 3, 9};
    std::vector<int> hits(16, 0);
    pool.parallelForIndices(indices,
                            [&](size_t i) { hits[i] += 1; });
    for (size_t i = 0; i < hits.size(); ++i) {
        bool expected = std::find(indices.begin(), indices.end(), i) !=
                        indices.end();
        EXPECT_EQ(hits[i], expected ? 1 : 0) << "index " << i;
    }
    // Empty set is a no-op, not an error.
    pool.parallelForIndices({}, [&](size_t i) { hits.at(i) += 100; });
}

} // namespace
} // namespace clite

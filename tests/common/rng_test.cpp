/**
 * @file
 * Unit tests for the deterministic RNG substrate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"
#include "common/rng.h"

namespace clite {
namespace {

TEST(SplitMix64, KnownSequenceFromZeroSeed)
{
    // Reference values of SplitMix64 seeded with 0.
    SplitMix64 sm(0);
    EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFull);
    EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ull);
    EXPECT_EQ(sm.next(), 0x06C45D188009454Full);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(13);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingletonRange)
{
    Rng rng(17);
    EXPECT_EQ(rng.uniformInt(42, 42), 42);
}

TEST(Rng, UniformIntRejectsInvertedBounds)
{
    Rng rng(19);
    EXPECT_THROW(rng.uniformInt(5, 4), Error);
}

TEST(Rng, NormalMomentsMatch)
{
    Rng rng(23);
    const int n = 200000;
    double sum = 0.0, sum2 = 0.0;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal();
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.01);
    EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

TEST(Rng, LogNormalMeanParameterization)
{
    Rng rng(29);
    const int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.logNormalMean(3.5, 0.4);
    EXPECT_NEAR(sum / n, 3.5, 0.05);
}

TEST(Rng, LogNormalRejectsNonPositiveMean)
{
    Rng rng(31);
    EXPECT_THROW(rng.logNormalMean(0.0, 0.5), Error);
}

TEST(Rng, ExponentialMeanMatchesRate)
{
    Rng rng(37);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate)
{
    Rng rng(41);
    EXPECT_THROW(rng.exponential(0.0), Error);
}

TEST(Rng, BernoulliExtremes)
{
    Rng rng(43);
    for (int i = 0; i < 50; ++i) {
        EXPECT_FALSE(rng.bernoulli(0.0));
        EXPECT_TRUE(rng.bernoulli(1.0));
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(47);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights)
{
    Rng rng(53);
    std::vector<double> w = {1.0, 0.0, 3.0};
    std::vector<int> counts(3, 0);
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.categorical(w)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(double(counts[0]) / n, 0.25, 0.02);
    EXPECT_NEAR(double(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsDegenerateWeights)
{
    Rng rng(59);
    std::vector<double> zero = {0.0, 0.0};
    EXPECT_THROW(rng.categorical(zero), Error);
    std::vector<double> negative = {1.0, -0.5};
    EXPECT_THROW(rng.categorical(negative), Error);
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng rng(61);
    std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
    std::vector<int> orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Rng, SplitStreamsAreDecorrelated)
{
    Rng parent(67);
    Rng a = parent.split(1);
    Rng b = parent.split(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 4);
}

} // namespace
} // namespace clite

/**
 * @file
 * Unit tests for error handling and logging.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "common/log.h"

namespace clite {
namespace {

TEST(Error, ThrowMacroThrowsWithMessage)
{
    try {
        CLITE_THROW("value was " << 42);
        FAIL() << "CLITE_THROW did not throw";
    } catch (const Error& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("value was 42"), std::string::npos);
        EXPECT_NE(what.find("error_test.cpp"), std::string::npos);
    }
}

TEST(Error, CheckPassesOnTrueCondition)
{
    EXPECT_NO_THROW(CLITE_CHECK(1 + 1 == 2, "math broke"));
}

TEST(Error, CheckThrowsWithConditionText)
{
    try {
        int x = 3;
        CLITE_CHECK(x > 5, "x is " << x);
        FAIL() << "CLITE_CHECK did not throw";
    } catch (const Error& e) {
        std::string what = e.what();
        EXPECT_NE(what.find("x > 5"), std::string::npos);
        EXPECT_NE(what.find("x is 3"), std::string::npos);
    }
}

TEST(Error, IsARuntimeError)
{
    EXPECT_THROW(CLITE_THROW("boom"), std::runtime_error);
}

TEST(Log, LevelGating)
{
    LogLevel orig = Log::level();
    Log::setLevel(LogLevel::Warn);
    EXPECT_FALSE(Log::enabled(LogLevel::Debug));
    EXPECT_FALSE(Log::enabled(LogLevel::Info));
    EXPECT_TRUE(Log::enabled(LogLevel::Warn));
    Log::setLevel(LogLevel::Debug);
    EXPECT_TRUE(Log::enabled(LogLevel::Debug));
    Log::setLevel(LogLevel::Off);
    EXPECT_FALSE(Log::enabled(LogLevel::Warn));
    Log::setLevel(orig);
}

} // namespace
} // namespace clite

/**
 * @file
 * Unit tests for the table/CSV emitters.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/table.h"

namespace clite {
namespace {

TEST(TextTable, RowArityIsEnforced)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), Error);
    EXPECT_NO_THROW(t.addRow({"1", "2"}));
    EXPECT_EQ(t.rows(), 1u);
    EXPECT_EQ(t.columns(), 2u);
}

TEST(TextTable, EmptyHeaderRejected)
{
    EXPECT_THROW(TextTable t({}), Error);
}

TEST(TextTable, NumberFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(3.0, 0), "3");
    EXPECT_EQ(TextTable::num(static_cast<long long>(-12)), "-12");
    EXPECT_EQ(TextTable::percent(0.875, 1), "87.5%");
    EXPECT_EQ(TextTable::num(std::nan(""), 2), "nan");
}

TEST(TextTable, PrintAlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1.00"});
    t.addRow({"longer", "23.50"});
    std::ostringstream oss;
    t.print(oss);
    std::string out = oss.str();
    // Numeric cells right-aligned: "1.00" padded to width of "23.50".
    EXPECT_NE(out.find("  1.00"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Separator line present.
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, CsvEscapesSpecialCharacters)
{
    TextTable t({"a", "b"});
    t.addRow({"plain", "has,comma"});
    t.addRow({"has\"quote", "x"});
    std::ostringstream oss;
    t.printCsv(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
    EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTable, WriteCsvRejectsBadPath)
{
    TextTable t({"a"});
    EXPECT_THROW(t.writeCsv("/nonexistent-dir/x.csv"), Error);
}

TEST(Banner, ContainsTitle)
{
    std::ostringstream oss;
    printBanner(oss, "Figure 7");
    EXPECT_NE(oss.str().find("== Figure 7 =="), std::string::npos);
}

} // namespace
} // namespace clite

/**
 * @file
 * Command-line driver: run any co-location policy on any mix.
 *
 * Usage:
 *   clite_cli [--scheme NAME] [--mix SPEC] [--seed N] [--noise SIGMA]
 *             [--all-resources] [--des] [--list]
 *
 *   --scheme   clite | oracle | parties | heracles | rand+ | genetic |
 *              equal-share                     (default: clite)
 *   --mix      e.g. "img-dnn@30%,memcached@40%,streamcluster"
 *              (default: that example mix)
 *   --seed     RNG seed                         (default: 1)
 *   --noise    measurement-noise sigma          (default: 0.03)
 *   --all-resources   use the 6-resource server (adds memory
 *              capacity, disk and network bandwidth)
 *   --des      use the discrete-event backend instead of the
 *              analytic queueing model
 *   --list     print the workload catalog and exit
 */

#include <cstring>
#include <iostream>
#include <string>

#include "common/error.h"
#include "common/table.h"
#include "harness/analysis.h"
#include "harness/mix_parser.h"
#include "harness/schemes.h"
#include "workloads/catalog.h"

using namespace clite;

namespace {

void
printCatalog()
{
    std::cout << "latency-critical workloads (use NAME@LOAD):\n";
    for (const auto& n : workloads::lcWorkloadNames())
        std::cout << "  " << n << " — "
                  << workloads::lcWorkload(n).description << "\n";
    std::cout << "background workloads (use NAME):\n";
    for (const auto& n : workloads::bgWorkloadNames())
        std::cout << "  " << n << " — "
                  << workloads::bgWorkload(n).description << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    std::string scheme = "clite";
    std::string mix = "img-dnn@30%,memcached@40%,streamcluster";
    uint64_t seed = 1;
    double noise = 0.03;
    bool all_resources = false;
    bool des = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << "missing value for " << arg << "\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--scheme")
            scheme = next();
        else if (arg == "--mix")
            mix = next();
        else if (arg == "--seed")
            seed = std::stoull(next());
        else if (arg == "--noise")
            noise = std::stod(next());
        else if (arg == "--all-resources")
            all_resources = true;
        else if (arg == "--des")
            des = true;
        else if (arg == "--list") {
            printCatalog();
            return 0;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            return 2;
        }
    }

    try {
        harness::ServerSpec spec;
        spec.jobs = harness::parseMix(mix);
        spec.seed = seed;
        spec.noise_sigma = noise;
        spec.all_resources = all_resources;
        spec.backend = des ? harness::ModelBackend::Des
                           : harness::ModelBackend::Analytic;

        std::cout << "scheme: " << scheme << "\n"
                  << "mix:    " << harness::formatMix(spec.jobs) << "\n\n";

        harness::SchemeOutcome out = harness::runScheme(scheme, spec, seed);

        TextTable t({"Job", "Kind", "p95 / throughput", "Target / iso",
                     "Status"});
        for (const auto& ob : out.truth_obs) {
            if (ob.is_lc)
                t.addRow({ob.job_name, "LC",
                          TextTable::num(ob.p95_ms, 3) + " ms",
                          TextTable::num(ob.qos_target_ms, 3) + " ms",
                          ob.qosMet() ? "QoS met" : "QoS MISSED"});
            else
                t.addRow({ob.job_name, "BG",
                          TextTable::num(ob.throughput, 0) + " ops/s",
                          TextTable::num(ob.iso_throughput, 0) + " ops/s",
                          TextTable::percent(ob.perfNorm(), 1) +
                              " of isolated"});
        }
        t.print(std::cout);

        std::cout << "\nscore (Eq. 3): "
                  << TextTable::num(out.truth.score, 4)
                  << "   configurations sampled: " << out.result.samples
                  << "\n";
        if (out.result.infeasible_detected)
            std::cout << "NOTE: some LC job misses QoS even with the "
                         "maximum allocation;\nthis co-location is "
                         "impossible - schedule it elsewhere.\n";
        return out.truth.all_qos_met ? 0 : 1;
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
    }
}

/**
 * @file
 * Scenario: a warehouse-scale-computer node over a day.
 *
 * The motivating workflow from the paper's introduction: a node hosts
 * three latency-critical services whose load follows a diurnal
 * pattern, plus a best-effort analytics job soaking up the leftovers.
 * The operator re-invokes CLITE whenever load drifts; the node admits
 * the batch work without ever violating the services' tail-latency
 * SLOs, and batch throughput breathes inversely with the diurnal load.
 */

#include <iostream>
#include <memory>

#include "core/clite.h"
#include "harness/analysis.h"
#include "platform/server.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

int
main()
{
    using namespace clite;

    // Diurnal load profile of the front-end service (fraction of its
    // max load at 4-hour marks).
    const std::vector<std::pair<const char*, double>> day = {
        {"00:00", 0.10}, {"04:00", 0.10}, {"08:00", 0.30},
        {"12:00", 0.50}, {"16:00", 0.40}, {"20:00", 0.20},
    };

    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("memcached", day[0].second), // front-end cache
        workloads::lcJob("xapian", 0.2),              // search backend
        workloads::lcJob("masstree", 0.15),           // storage layer
        workloads::bgJob("freqmine"),                 // nightly analytics
    };
    platform::SimulatedServer server(
        platform::ServerConfig::xeonSilver4114(), jobs,
        std::make_unique<workloads::AnalyticModel>(), 2026, 0.03);

    core::CliteController clite;
    core::ControllerResult result = clite.run(server);
    platform::Allocation incumbent = *result.best;

    std::cout << "time   memcached  search-window  QoS   batch-perf  "
                 "samples\n";
    std::cout << "------------------------------------------------------"
                 "---\n";
    for (size_t phase = 0; phase < day.size(); ++phase) {
        if (phase > 0) {
            server.setLoad(0, day[phase].second);
            result = clite.reoptimize(server, incumbent);
            incumbent = *result.best;
        }
        auto truth = server.observeNoiseless(incumbent);
        bool qos = true;
        for (const auto& ob : truth)
            qos = qos && ob.qosMet();
        double batch = harness::meanBgPerformance(truth);
        std::cout << day[phase].first << "   "
                  << 100.0 * day[phase].second << "%       "
                  << result.samples << " cfgs       "
                  << (qos ? "met " : "MISS") << "  "
                  << 100.0 * batch << "%\n";
    }

    std::cout << "\nThe batch job's share breathes with the diurnal "
                 "load while every\nservice keeps its p95 SLO - the "
                 "utilization win the paper motivates.\n";
    return 0;
}

/**
 * @file
 * Quickstart: co-locate two latency-critical jobs and one background
 * job on the simulated Xeon testbed and let CLITE find a resource
 * partition that meets both QoS targets while maximizing the
 * background job's throughput.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>
#include <memory>

#include "core/clite.h"
#include "platform/server.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

int
main()
{
    using namespace clite;

    // 1. Describe the machine (the paper's Xeon Silver 4114: 10 cores,
    //    11 LLC ways via Intel CAT, 10 MBA bandwidth steps).
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();

    // 2. Pick the co-located jobs: two latency-critical services at a
    //    fraction of their max load, one throughput-oriented batch job.
    std::vector<workloads::JobSpec> jobs = {
        workloads::lcJob("memcached", 0.4), // 40% of its max QPS
        workloads::lcJob("img-dnn", 0.3),   // 30% of its max QPS
        workloads::bgJob("streamcluster"),  // best-effort batch
    };

    // 3. Stand up the simulated server (analytic queueing backend,
    //    3% measurement noise) and the CLITE controller.
    platform::SimulatedServer server(
        config, jobs, std::make_unique<workloads::AnalyticModel>(),
        /*seed=*/1, /*noise_sigma=*/0.03);
    core::CliteController clite;

    // 4. Search. CLITE bootstraps with its informed sample set, then
    //    runs Bayesian optimization over resource partitions until the
    //    expected improvement dries up.
    core::ControllerResult result = clite.run(server);

    // 5. Inspect the outcome.
    std::cout << "configurations sampled: " << result.samples << "\n";
    std::cout << "QoS satisfiable: " << (result.feasible ? "yes" : "no")
              << "\n\n";

    const platform::Allocation& best = *result.best;
    for (size_t j = 0; j < server.jobCount(); ++j) {
        std::cout << server.job(j).label() << ":\n";
        for (size_t r = 0; r < config.resourceCount(); ++r)
            std::cout << "  " << platform::resourceName(
                             config.resource(r).kind)
                      << ": " << best.get(j, r) << "/"
                      << config.resource(r).units << " units  ("
                      << server.isolationSettings(j)[r] << ")\n";
    }

    std::cout << "\nfinal observation (noise-free):\n";
    for (const auto& ob : server.observeNoiseless(best)) {
        if (ob.is_lc)
            std::cout << "  " << ob.job_name << ": p95 " << ob.p95_ms
                      << " ms vs target " << ob.qos_target_ms << " ms ("
                      << (ob.qosMet() ? "met" : "MISSED") << ")\n";
        else
            std::cout << "  " << ob.job_name << ": "
                      << 100.0 * ob.perfNorm()
                      << "% of isolated throughput\n";
    }
    return 0;
}

/**
 * @file
 * Scenario: a small cluster, not just one node.
 *
 * Runs a 4-node Fleet through a job-arrival trace: latency-critical
 * and batch jobs stream in, the ClusterScheduler places each on the
 * node predicted to keep the most QoS headroom, every node's
 * OnlineManager partitions its own resources with CLITE, and jobs a
 * node proves infeasible (QoS missed even at the max-allocation
 * extremum) are evicted and rescheduled onto nodes that still have
 * room. Prints one line per window plus a final fleet summary.
 *
 * A second act replays the same arrival trace through the async
 * manager-worker engine with faults injected — lost workers, task
 * failures, stragglers — and prints the robustness counters showing
 * the chaos being absorbed without losing a job.
 *
 * Flags:
 *   --trace=none|diurnal|flash|composite   drive the first LC job's
 *       load from a workloads/traffic generator during the async act
 *   --trace-seed=N    seed of the traffic generator (default 42)
 *   --policy=immediate|ride   per-node reoptimization policy
 */

#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "cluster/fleet.h"
#include "cluster/manager.h"
#include "workloads/catalog.h"
#include "workloads/traffic/traffic.h"

namespace {

std::unique_ptr<clite::workloads::LoadTrace>
makeTrace(const std::string& kind, uint64_t seed)
{
    using namespace clite::workloads::traffic;
    if (kind == "none")
        return nullptr;
    if (kind == "diurnal") {
        JitteredDiurnalTrace::Options o;
        o.base = 0.5;
        o.amplitude = 0.25;
        o.period_seconds = 30.0;
        o.jitter_interval_s = 2.0;
        return std::make_unique<JitteredDiurnalTrace>(seed, o);
    }
    SurgeProcess::Options so;
    so.horizon_seconds = 60.0;
    so.mean_interarrival_s = 12.0;
    so.decay_seconds = 4.0;
    so.mean_magnitude = 0.35;
    if (kind == "flash")
        return std::make_unique<FlashCrowdTrace>(seed, 0.4, so);
    if (kind == "composite") {
        JitteredDiurnalTrace::Options d;
        d.base = 0.4;
        d.amplitude = 0.2;
        d.period_seconds = 30.0;
        d.jitter_interval_s = 2.0;
        std::vector<CompositeTrace::Component> parts;
        parts.push_back(
            {std::make_shared<JitteredDiurnalTrace>(seed, d), 1.0});
        parts.push_back(
            {std::make_shared<FlashCrowdTrace>(seed + 17, 0.01, so), 1.0});
        return std::make_unique<CompositeTrace>(std::move(parts));
    }
    std::cerr << "unknown --trace kind '" << kind
              << "' (none|diurnal|flash|composite)\n";
    std::exit(2);
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace clite;

    std::string trace_kind = "none";
    std::string policy = "immediate";
    uint64_t trace_seed = 42;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--trace=", 8) == 0)
            trace_kind = argv[i] + 8;
        else if (std::strncmp(argv[i], "--trace-seed=", 13) == 0)
            trace_seed = std::stoull(argv[i] + 13);
        else if (std::strncmp(argv[i], "--policy=", 9) == 0)
            policy = argv[i] + 9;
    }

    cluster::FleetOptions options;
    options.nodes = 4;
    options.seed = 11;
    if (policy == "ride") {
        options.monitor.reopt_policy = core::ReoptPolicy::RideTransients;
        options.monitor.transient_ride_windows = 3;
    } else if (policy != "immediate") {
        std::cerr << "unknown --policy '" << policy
                  << "' (immediate|ride)\n";
        return 2;
    }
    cluster::Fleet fleet(options);

    // The arrival trace: window -> jobs submitted at its start. Loads
    // are high enough that the fleet has to spread LC jobs out (one
    // node cannot hold them all and keep QoS).
    struct Arrival
    {
        int window;
        workloads::JobSpec spec;
    };
    const std::vector<Arrival> arrivals = {
        {1, workloads::lcJob("memcached", 0.6)},
        {1, workloads::bgJob("freqmine")},
        {2, workloads::lcJob("xapian", 0.5)},
        {3, workloads::lcJob("img-dnn", 0.5)},
        {4, workloads::bgJob("canneal")},
        {6, workloads::lcJob("masstree", 0.4)},
        {8, workloads::lcJob("memcached", 0.7)},
        {10, workloads::bgJob("streamcluster")},
        {12, workloads::lcJob("specjbb", 0.4)},
    };

    std::cout << "policy: "
              << cluster::placementPolicyName(
                     fleet.options().placement.policy)
              << ", nodes: " << fleet.nodeCount() << "\n\n";
    std::cout << "win  placed  resched  qos-met  bg-perf  pending\n";
    std::cout << "------------------------------------------------\n";

    const int windows = 20;
    size_t next = 0;
    for (int w = 1; w <= windows; ++w) {
        while (next < arrivals.size() && arrivals[next].window <= w) {
            uint64_t id = fleet.admit(arrivals[next].spec);
            std::cout << "  -> submit job " << id << " ("
                      << arrivals[next].spec.label() << ")\n";
            ++next;
        }
        cluster::FleetWindow win = fleet.tick();
        std::printf("%3d  %6d  %7d  %6.0f%%  %7.3f  %7d\n", win.window,
                    win.placed, win.rescheduled,
                    100.0 * win.qos_met_fraction, win.mean_bg_perf,
                    win.pending);
    }

    cluster::FleetSummary s = fleet.summarize();
    std::cout << "\nfleet summary over " << s.windows << " windows:\n";
    std::cout << "  jobs admitted/placed/pending/parked: "
              << s.jobs_admitted << "/" << s.jobs_placed << "/"
              << s.jobs_pending << "/" << s.jobs_parked << "\n";
    std::cout << "  evictions: " << s.evictions
              << ", re-optimizations: " << s.reoptimizations << "\n";
    std::printf("  QoS-met fraction: mean %.3f (min %.3f)\n",
                s.qos_met_fraction.mean(), s.qos_met_fraction.min());
    std::printf("  BG performance:   mean %.3f\n", s.bg_perf.mean());

    std::cout << "\nfinal placement:\n";
    for (size_t n = 0; n < fleet.nodeCount(); ++n) {
        std::cout << "  node " << n << ":";
        if (fleet.nodeJobIds(n).empty())
            std::cout << " (empty)";
        for (uint64_t id : fleet.nodeJobIds(n))
            std::cout << " " << fleet.job(id).spec.label();
        std::cout << "\n";
    }

    // ---- Act two: the same trace under the async engine with chaos.
    // Three logical workers serve four nodes while 15% of assignments
    // lose their worker mid-task and 5% of node steps fail outright;
    // leases, retries and hedging have to absorb all of it.
    std::cout << "\n== async manager-worker engine, faults on ==\n";
    cluster::Fleet async_fleet(options);
    uint64_t traced_id = 0;
    for (const Arrival& a : arrivals) {
        uint64_t id = async_fleet.admit(a.spec);
        if (traced_id == 0 && a.spec.isLatencyCritical())
            traced_id = id;
    }

    cluster::AsyncOptions ao;
    ao.workers = 3;
    ao.faults.worker_loss_prob = 0.15;
    ao.faults.task_fail_prob = 0.05;
    ao.max_retries = 6;
    cluster::AsyncFleetEngine engine(async_fleet, ao);

    // With a traffic trace selected, the first LC job's offered load
    // follows it epoch by epoch (one epoch ~ one 2 s window): the
    // node's drift/violation triggers — filtered by the chosen
    // reoptimization policy — see realistic diurnal/flash-crowd load,
    // not just the admission level.
    std::unique_ptr<workloads::LoadTrace> trace =
        makeTrace(trace_kind, trace_seed);
    if (trace != nullptr) {
        std::cout << "traced job " << traced_id << " follows '"
                  << trace->name() << "' (seed " << trace_seed
                  << "), policy " << policy << "\n";
        for (int w = 1; w <= windows; ++w) {
            if (async_fleet.job(traced_id).state ==
                cluster::JobState::Placed)
                async_fleet.setJobLoad(traced_id,
                                       trace->loadAt(2.0 * w));
            engine.run(1);
        }
    } else {
        engine.run(windows);
    }
    const cluster::FleetMetrics& m = engine.metrics();

    std::printf("virtual time %.1f, %llu/%llu tasks committed, "
                "QoS-met %.0f%%, BG perf %.3f\n",
                engine.virtualTime(),
                (unsigned long long)m.tasks_committed,
                (unsigned long long)m.tasks_dispatched,
                100.0 * engine.qosMetFraction(), engine.meanBgPerf());
    std::cout << "robustness counters:\n";
    std::printf("  workers lost/rejoined:      %llu/%llu\n",
                (unsigned long long)m.workers_lost,
                (unsigned long long)m.workers_rejoined);
    std::printf("  lease expiries -> retries:  %llu -> %llu\n",
                (unsigned long long)m.lease_expiries,
                (unsigned long long)m.tasks_retried);
    std::printf("  task failures:              %llu\n",
                (unsigned long long)m.task_failures);
    std::printf("  hedges launched/won:        %llu/%llu\n",
                (unsigned long long)m.hedges_launched,
                (unsigned long long)m.hedges_won);
    std::printf("  windows failed/dropped:     %llu/%llu\n",
                (unsigned long long)m.windows_failed,
                (unsigned long long)m.windows_dropped);
    std::printf("  nodes quarantined:          %llu\n",
                (unsigned long long)m.nodes_quarantined);
    std::printf("  degraded dispatches:        %llu\n",
                (unsigned long long)m.degraded_dispatches);
    std::cout << "refit observability:\n";
    std::printf("  GP hyper-refits:            %llu\n",
                (unsigned long long)m.refits);
    std::printf("  probe evaluations:          %llu\n",
                (unsigned long long)m.probe_evals);
    std::printf("  warm-simplex probe wins:    %llu\n",
                (unsigned long long)m.warm_probe_hits);
    std::printf("  coarse (budgeted) windows:  %llu\n",
                (unsigned long long)m.coarse_windows);
    std::cout << "percentile-over-time QoS:\n";
    std::printf("  violating/assessed windows: %llu/%llu (%.1f%%)\n",
                (unsigned long long)m.violating_windows,
                (unsigned long long)m.qos_windows,
                m.qos_windows > 0
                    ? 100.0 * double(m.violating_windows) /
                          double(m.qos_windows)
                    : 0.0);
    std::printf("  transients ridden:          %llu\n",
                (unsigned long long)m.transients_ridden);
    std::printf("  sustained shifts:           %llu\n",
                (unsigned long long)m.sustained_shifts);
    std::cout << (m.stalled ? "  engine STALLED (all workers dead)\n"
                            : "  no stall: every window was served\n");
    return 0;
}

/**
 * @file
 * Scenario: bringing your own workload and your own machine.
 *
 * The public API is not tied to the built-in catalog: this example
 * defines a custom latency-critical "rpc-gateway" service and a
 * custom "log-compactor" batch job from first principles (CPU time,
 * LLC working set, DRAM traffic, scalability), a custom 4-resource
 * server, and runs CLITE on the 6-resource extended configuration to
 * show disk-bandwidth partitioning in action.
 */

#include <iostream>
#include <memory>

#include "core/clite.h"
#include "platform/server.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

int
main()
{
    using namespace clite;

    // --- A custom latency-critical service -------------------------
    workloads::WorkloadProfile rpc;
    rpc.name = "rpc-gateway";
    rpc.description = "Custom RPC fan-out gateway";
    rpc.job_class = workloads::JobClass::LatencyCritical;
    rpc.cpu_ms = 0.8;               // CPU time per request
    rpc.mem_ms = 0.4;               // memory stalls at 100% LLC misses
    rpc.llc_half_ways = 3.0;        // each +3 ways halves the misses
    rpc.llc_miss_floor = 0.2;       // compulsory misses
    rpc.traffic_mb_per_query = 1.2; // DRAM bytes per request
    rpc.mem_capacity_gb = 5.0;      // resident working set
    rpc.net_mb_per_query = 0.06;    // answers leave over the NIC
    rpc.max_useful_cores = 6;       // internal dispatch bottleneck
    rpc.max_qps = 4000.0;           // knee load (measure yours!)
    rpc.qos_p95_ms = 12.0;          // the SLO your SRE team set

    // --- A custom background job -----------------------------------
    workloads::WorkloadProfile compactor;
    compactor.name = "log-compactor";
    compactor.description = "Custom LSM compaction worker";
    compactor.job_class = workloads::JobClass::Background;
    compactor.cpu_ms = 0.5;
    compactor.mem_ms = 0.6;
    compactor.llc_half_ways = 4.0;
    compactor.llc_miss_floor = 0.3;
    compactor.traffic_mbps_per_core = 1800.0;
    compactor.parallel_fraction = 0.9;
    compactor.mem_capacity_gb = 6.0;
    compactor.disk_mb_per_query = 0.4; // heavy disk I/O per op

    std::vector<workloads::JobSpec> jobs = {
        workloads::JobSpec{rpc, 0.5},
        workloads::lcJob("memcached", 0.3), // mixing with the catalog
        workloads::JobSpec{compactor, 1.0},
    };

    // The 6-resource server partitions disk bandwidth too (blkio).
    platform::SimulatedServer server(
        platform::ServerConfig::xeonSilver4114AllResources(), jobs,
        std::make_unique<workloads::AnalyticModel>(), 99, 0.03);

    core::CliteOptions options;
    options.max_iterations = 50; // 18-dimensional space: search longer
    core::CliteController clite(options);
    core::ControllerResult result = clite.run(server);

    std::cout << "sampled " << result.samples << " of "
              << server.config().configurationCount(int(jobs.size()))
              << " possible configurations\n\n";
    for (size_t j = 0; j < server.jobCount(); ++j) {
        std::cout << server.job(j).label() << ":\n";
        for (const auto& setting : server.isolationSettings(j))
            std::cout << "    " << setting << "\n";
    }
    std::cout << "\n";
    for (const auto& ob : server.observeNoiseless(*result.best)) {
        if (ob.is_lc)
            std::cout << ob.job_name << ": p95 " << ob.p95_ms
                      << " ms (target " << ob.qos_target_ms << " ms, "
                      << (ob.qosMet() ? "met" : "MISSED") << ")\n";
        else
            std::cout << ob.job_name << ": "
                      << 100.0 * ob.perfNorm()
                      << "% of isolated throughput\n";
    }
    return 0;
}

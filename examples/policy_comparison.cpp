/**
 * @file
 * Scenario: evaluating a scheduling policy before deploying it.
 *
 * Uses the harness the way the paper's evaluation does: run every
 * co-location policy on the same mix, compare ground-truth QoS,
 * background throughput, score, and search cost. This is the
 * decision an operator would make when choosing a node-level
 * controller.
 */

#include <iostream>

#include "common/table.h"
#include "harness/analysis.h"
#include "harness/schemes.h"
#include "workloads/catalog.h"

int
main()
{
    using namespace clite;

    harness::ServerSpec spec;
    spec.jobs = {workloads::lcJob("img-dnn", 0.3),
                 workloads::lcJob("memcached", 0.3),
                 workloads::lcJob("masstree", 0.3),
                 workloads::bgJob("streamcluster")};
    spec.seed = 42;

    std::cout << "mix:";
    for (const auto& j : spec.jobs)
        std::cout << " " << j.label();
    std::cout << "\n\n";

    TextTable t({"Policy", "Samples", "QoS (truth)", "BG perf",
                 "Score (Eq. 3)", "vs ORACLE"});
    double oracle_score = 0.0;
    for (const auto& scheme : harness::allSchemeNames()) {
        harness::SchemeOutcome out = harness::runScheme(scheme, spec, 42);
        if (scheme == "oracle")
            oracle_score = out.truth.score;
        t.addRow({scheme,
                  TextTable::num(
                      static_cast<long long>(out.result.samples)),
                  out.truth.all_qos_met ? "met" : "MISSED",
                  TextTable::percent(
                      harness::meanBgPerformance(out.truth_obs), 1),
                  TextTable::num(out.truth.score, 4),
                  oracle_score > 0.0
                      ? TextTable::percent(out.truth.score / oracle_score,
                                           1)
                      : "-"});
    }
    t.print(std::cout);

    std::cout << "\nORACLE is an offline yardstick (it samples the whole "
                 "space). CLITE\nreaches the best quality-per-sample of "
                 "the online policies: it meets\nevery QoS target in a "
                 "few dozen adaptive samples, while RAND+/GENETIC\nneed "
                 "their full preset budgets and PARTIES/Heracles/"
                 "equal-share leave\nQoS or throughput on the table "
                 "(run fig11_variability for the\nrun-to-run spread "
                 "behind a single-seed table like this one).\n";
    return 0;
}

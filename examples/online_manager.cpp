/**
 * @file
 * Scenario: the production control loop.
 *
 * Runs CLITE the way a node agent would: an OnlineManager owns the
 * controller, observes every window, and re-invokes the search when
 * the world changes. The example exercises all three triggers —
 * a diurnal load swing (load drift), a latency regression from a
 * noisy neighbor arriving (mix change), and the neighbor departing
 * again.
 */

#include <iostream>
#include <memory>

#include "core/monitor.h"
#include "platform/server.h"
#include "workloads/catalog.h"
#include "workloads/load_trace.h"
#include "workloads/perf_model.h"

int
main()
{
    using namespace clite;

    platform::SimulatedServer server(
        platform::ServerConfig::xeonSilver4114(),
        {workloads::lcJob("memcached", 0.3), // matches the trace at t=0
         workloads::lcJob("xapian", 0.2),
         workloads::bgJob("freqmine")},
        std::make_unique<workloads::AnalyticModel>(), 7, 0.03);

    core::OnlineManager manager(server);
    const core::ControllerResult& init = manager.initialize();
    std::cout << "initial optimization: " << init.samples
              << " samples, QoS " << (init.feasible ? "met" : "NOT met")
              << "\n\n";

    // A slow diurnal swing on memcached; every tick is one 2 s window.
    workloads::DiurnalTrace diurnal(0.3, 0.25, 120.0);
    std::cout << "window  load   score  event\n";
    std::cout << "-----------------------------------------\n";
    for (int w = 0; w < 40; ++w) {
        double t = 2.0 * w;
        server.setLoad(0, diurnal.loadAt(t));

        // At window 15 a batch tenant lands on the node; at window 30
        // it finishes and leaves.
        if (w == 15) {
            server.addJob(workloads::bgJob("canneal"));
            manager.notifyMixChange();
        }
        if (w == 30) {
            server.removeJob(server.jobCount() - 1);
            manager.notifyMixChange();
        }

        core::OnlineManager::Tick tick = manager.tick();
        if (tick.reoptimized || w % 5 == 0) {
            std::cout << "  " << w << "    "
                      << 100.0 * diurnal.loadAt(t) << "%   " << tick.score
                      << "  "
                      << (tick.reoptimized
                              ? "re-optimized (" + tick.reason + ", " +
                                    std::to_string(tick.search_samples) +
                                    " samples)"
                              : std::string(tick.all_qos_met ? "ok"
                                                             : "violation"))
                      << "\n";
        }
    }

    std::cout << "\nwindows observed: " << manager.windows()
              << ", re-optimizations: " << manager.reoptimizations()
              << "\n";
    return 0;
}

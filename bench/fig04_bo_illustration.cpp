/**
 * @file
 * Regenerates Figures 3/4: how Bayesian optimization explores — the
 * surrogate's posterior mean/confidence band and the acquisition
 * function over a 1-D objective, iteration by iteration, showing the
 * explore/exploit alternation and the shrinking uncertainty.
 */

#include <cmath>
#include <iostream>

#include "bo/bayes_opt.h"
#include "common/table.h"

using namespace clite;

namespace {

/** The "unknown" objective of the illustration. */
double
objective(double x)
{
    return std::sin(3.0 * x) + 0.6 * std::cos(7.0 * x) - 0.2 * x;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figures 3/4: BO surrogate + acquisition illustration "
                "(1-D objective)");

    Rng rng(2024);
    std::vector<linalg::Vector> xs;
    std::vector<double> ys;
    for (double x : {0.1, 0.8, 1.9}) { // 3 seed samples, as in Fig. 4
        xs.push_back({x});
        ys.push_back(objective(x));
    }

    gp::GaussianProcess surrogate(
        std::make_unique<gp::Matern52Kernel>(1, 0.4, 1.0), 1e-6);
    bo::ExpectedImprovement ei(0.01);

    for (int iter = 0; iter <= 4; ++iter) {
        surrogate.fit(xs, ys);
        double incumbent = *std::max_element(ys.begin(), ys.end());

        TextTable t({"x", "f(x)", "mu(x)", "sigma(x)", "EI(x)"});
        double best_acq = -1.0, best_x = 0.0;
        for (double x = 0.0; x <= 2.0001; x += 0.2) {
            gp::Prediction p = surrogate.predict({x});
            double a = ei.evaluate(surrogate, {x}, incumbent);
            if (a > best_acq) {
                best_acq = a;
                best_x = x;
            }
            t.addRow({TextTable::num(x, 1),
                      TextTable::num(objective(x), 3),
                      TextTable::num(p.mean, 3),
                      TextTable::num(p.stddev(), 3),
                      TextTable::num(a, 4)});
        }
        std::cout << "step " << iter << " (samples=" << xs.size()
                  << ", incumbent=" << TextTable::num(incumbent, 3)
                  << "):\n";
        t.print(std::cout);
        std::cout << "  -> acquisition max at x=" << TextTable::num(best_x, 1)
                  << " (EI=" << TextTable::num(best_acq, 4)
                  << "); sampling it\n\n";

        // Evaluate the chosen point with a finer-grained argmax.
        double fine_best = best_x;
        double fine_acq = best_acq;
        for (double x = 0.0; x <= 2.0001; x += 0.01) {
            double a = ei.evaluate(surrogate, {x}, incumbent);
            if (a > fine_acq) {
                fine_acq = a;
                fine_best = x;
            }
        }
        xs.push_back({fine_best});
        ys.push_back(objective(fine_best));
    }

    double best = *std::max_element(ys.begin(), ys.end());
    std::cout << "best objective found: " << TextTable::num(best, 4)
              << " (true optimum on [0,2] is ~1.43)\n";
    (void)rng;
    return 0;
}

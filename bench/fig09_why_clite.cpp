/**
 * @file
 * Regenerates Figure 9: why CLITE out-performs PARTIES.
 *
 *  (a) The final per-job resource allocations of PARTIES vs CLITE on
 *      the img-dnn + memcached + masstree + streamcluster mix: both
 *      meet QoS, but CLITE redistributes resources (e.g. LLC ways to
 *      the cache-hungry BG job) and reaps far more BG throughput.
 *  (b) The allocation/score trajectory over configuration samples on
 *      a harder mix (with blackscholes): PARTIES cycles through its
 *      FSM without converging while CLITE stabilizes quickly.
 */

#include <iostream>

#include "common/table.h"
#include "harness/analysis.h"
#include "workloads/catalog.h"

using namespace clite;

namespace {

void
printAllocations(const std::string& scheme,
                 const harness::SchemeOutcome& out,
                 const std::vector<workloads::JobSpec>& jobs,
                 const platform::ServerConfig& config)
{
    std::cout << scheme << " final allocation (QoS met: "
              << (out.truth.all_qos_met ? "yes" : "NO") << ", BG perf: "
              << TextTable::percent(
                     harness::meanBgPerformance(out.truth_obs), 1)
              << " of isolated):\n";
    std::vector<std::string> headers = {"Job"};
    for (const auto& spec : config.resources())
        headers.push_back(platform::resourceName(spec.kind));
    TextTable t(headers);
    const platform::Allocation& alloc = *out.result.best;
    for (size_t j = 0; j < jobs.size(); ++j) {
        std::vector<std::string> row = {jobs[j].label()};
        for (size_t r = 0; r < config.resourceCount(); ++r) {
            int units = config.resource(r).units;
            row.push_back(
                TextTable::num(
                    static_cast<long long>(alloc.get(j, r))) +
                " (" +
                TextTable::percent(double(alloc.get(j, r)) / units, 0) +
                ")");
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();

    // ---- (a) final allocations.
    printBanner(std::cout,
                "Figure 9(a): final allocations, PARTIES vs CLITE "
                "(img-dnn + memcached + masstree + streamcluster @30%)");
    harness::ServerSpec spec_a;
    spec_a.jobs = {workloads::lcJob("img-dnn", 0.3),
                   workloads::lcJob("memcached", 0.3),
                   workloads::lcJob("masstree", 0.3),
                   workloads::bgJob("streamcluster")};
    spec_a.seed = 42;
    for (const char* scheme : {"parties", "clite"}) {
        harness::SchemeOutcome out = harness::runScheme(scheme, spec_a, 42);
        printAllocations(scheme, out, spec_a.jobs, config);
    }

    // ---- (b) convergence over samples on a harder mix.
    printBanner(std::cout,
                "Figure 9(b): configuration samples over time "
                "(img-dnn@60% + memcached@40% + masstree@30% + "
                "blackscholes; ORACLE-feasible)");
    harness::ServerSpec spec_b;
    spec_b.jobs = {workloads::lcJob("img-dnn", 0.6),
                   workloads::lcJob("memcached", 0.4),
                   workloads::lcJob("masstree", 0.3),
                   workloads::bgJob("blackscholes")};
    spec_b.seed = 7;
    for (const char* scheme : {"parties", "clite"}) {
        harness::ConvergenceTrace trace =
            harness::traceConvergence(scheme, spec_b, 7);
        std::cout << scheme << ": " << trace.steps.size() << " samples, "
                  << (trace.first_feasible > 0
                          ? "QoS first met at sample " +
                                std::to_string(trace.first_feasible)
                          : std::string("QoS NEVER met"))
                  << "\n";
        TextTable t({"Sample", "img-dnn cores", "img-dnn ways",
                     "img-dnn bw", "Score", "QoS"});
        for (const auto& step : trace.steps) {
            if (step.sample % 5 != 1 && !step.all_qos_met &&
                step.sample != int(trace.steps.size()))
                continue; // print every 5th sample plus notable ones
            t.addRow({TextTable::num(
                          static_cast<long long>(step.sample)),
                      TextTable::num(
                          static_cast<long long>(step.alloc_row0[0])),
                      TextTable::num(
                          static_cast<long long>(step.alloc_row0[1])),
                      TextTable::num(
                          static_cast<long long>(step.alloc_row0[2])),
                      TextTable::num(step.score, 3),
                      step.all_qos_met ? "met" : "-"});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    return 0;
}

/**
 * @file
 * Regenerates Figure 7: the maximum memcached load each scheme can
 * co-locate with masstree (x) and img-dnn (y) at varying loads, with
 * no BG job. Expected shape (paper): Heracles supports nothing,
 * PARTIES a patchy subset, CLITE close to ORACLE everywhere.
 */

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "harness/maxload.h"

using namespace clite;

int
main(int argc, char** argv)
{
    bench::applyThreadFlag(argc, argv);
    printBanner(std::cout,
                "Figure 7: max memcached load when co-located with "
                "masstree (x) and img-dnn (y), no BG job");

    std::vector<double> grid = bench::standardGrid();
    TextTable summary({"Scheme", "Mean supported memcached load"});
    for (const char* scheme : {"heracles", "parties", "clite", "oracle"}) {
        harness::LoadHeatmap map = harness::maxLoadHeatmap(
            scheme, "masstree", "img-dnn", grid, "memcached");
        bench::printHeatmap(std::cout, map, "masstree", "img-dnn");
        bench::maybeWriteCsv(bench::heatmapTable(map, "masstree", "img-dnn"),
                             std::string("fig07_") + scheme);
        summary.addRow({scheme,
                        TextTable::percent(bench::heatmapMean(map), 1)});
    }
    summary.print(std::cout);
    return 0;
}

/**
 * @file
 * Regenerates Figure 6: the isolated QPS vs p95 tail-latency curve of
 * every LC workload, the QoS target (the knee latency) and the
 * corresponding maximum load. Both model backends are reported so the
 * analytic/DES agreement is visible.
 */

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "harness/knee.h"
#include "workloads/catalog.h"

using namespace clite;

int
main()
{
    printBanner(std::cout,
                "Figure 6: QPS vs p95 tail latency (isolated, whole "
                "machine); knee = QoS target & max load");

    std::vector<double> loads;
    for (double l = 0.1; l <= 1.4001; l += 0.1)
        loads.push_back(l);

    for (const auto& name : workloads::lcWorkloadNames()) {
        harness::KneeCurve analytic = harness::sweepIsolatedLoad(
            name, loads, harness::ModelBackend::Analytic);
        harness::KneeCurve des = harness::sweepIsolatedLoad(
            name, loads, harness::ModelBackend::Des);

        std::cout << name << "  (QoS p95 = "
                  << TextTable::num(analytic.qos_p95_ms, 3)
                  << " ms, max load = "
                  << TextTable::num(analytic.max_qps, 0) << " QPS)\n";
        TextTable t({"Load", "QPS", "p95 analytic (ms)", "p95 DES (ms)",
                     "QoS met"});
        for (size_t i = 0; i < analytic.points.size(); ++i) {
            const auto& pt = analytic.points[i];
            t.addRow({TextTable::percent(pt.load_fraction, 0),
                      TextTable::num(pt.qps, 0),
                      TextTable::num(pt.p95_ms, 3),
                      TextTable::num(des.points[i].p95_ms, 3),
                      pt.p95_ms <= analytic.qos_p95_ms ? "yes" : "NO"});
        }
        t.print(std::cout);
        bench::maybeWriteCsv(t, "fig06_" + name);
        std::cout << "measured knee: "
                  << TextTable::percent(analytic.measuredKneeLoad(), 0)
                  << " of max load\n\n";
    }
    return 0;
}

/**
 * @file
 * Regenerates Figure 2: why coordinate descent (one resource at a
 * time, small steps — the PARTIES exploration pattern) can fail even
 * in a tiny 2-job / 2-resource space.
 *
 * Three synthetic scenarios mirror the paper's panels:
 *  (a) a wide joint-QoS region around the equal division — coordinate
 *      descent succeeds from the standard starting point;
 *  (b) a region reachable only from a corner start — success depends
 *      on the (unknowable) initial point;
 *  (c) a diagonal region that single-dimension moves cannot enter
 *      from any axis-aligned path — joint multi-dimension exploration
 *      (what CLITE's BO does) is required.
 *
 * Allocations: job A gets (x, y) of resources 1 and 2 (out of N
 * units each); job B gets the remainder. A cell is "safe" when both
 * jobs' synthetic QoS predicates hold.
 */

#include <functional>
#include <iostream>
#include <vector>

#include "common/table.h"

using namespace clite;

namespace {

constexpr int kUnits = 20;

using SafePredicate = std::function<bool(int x, int y)>;

/** Exhaustive scan: does any safe cell exist? */
bool
anySafe(const SafePredicate& safe)
{
    for (int x = 1; x < kUnits; ++x)
        for (int y = 1; y < kUnits; ++y)
            if (safe(x, y))
                return true;
    return false;
}

/**
 * Coordinate descent as PARTIES performs it: adjust ONE resource by
 * one unit at a time, keeping a move only if it reduces the number of
 * violated QoS predicates (never allowing it to rise); alternate
 * resources when stuck.
 */
bool
coordinateDescent(const SafePredicate& safe_a, const SafePredicate& safe_b,
                  int x, int y, int budget = 200)
{
    auto violations = [&](int xx, int yy) {
        return int(!safe_a(xx, yy)) + int(!safe_b(xx, yy));
    };
    int dim = 0;
    int stuck = 0;
    for (int step = 0; step < budget; ++step) {
        if (violations(x, y) == 0)
            return true;
        int best_delta = 0;
        int v0 = violations(x, y);
        int best_v = v0;
        for (int delta : {-1, +1}) {
            int xx = x + (dim == 0 ? delta : 0);
            int yy = y + (dim == 1 ? delta : 0);
            if (xx < 1 || xx >= kUnits || yy < 1 || yy >= kUnits)
                continue;
            int v = violations(xx, yy);
            if (v < best_v) {
                best_v = v;
                best_delta = delta;
            }
        }
        if (best_delta == 0) {
            dim = 1 - dim; // switch resource (the FSM transition)
            if (++stuck > 2)
                return false; // cycling: PARTIES gives up
            continue;
        }
        stuck = 0;
        if (dim == 0)
            x += best_delta;
        else
            y += best_delta;
    }
    return false;
}

struct Scenario
{
    const char* label;
    SafePredicate safe_a;
    SafePredicate safe_b;
};

} // namespace

int
main()
{
    // Job A is happier with more of both resources; job B with the
    // complement. The overlap geometry changes per panel.
    std::vector<Scenario> scenarios = {
        {"(a) wide overlap",
         [](int x, int y) { return x >= 6 && y >= 6; },
         [](int x, int y) { return x <= 14 && y <= 14; }},
        {"(b) corner overlap",
         [](int x, int y) { return x >= 16 && y <= 4; },
         [](int x, int y) { return x >= 15 && y <= 5; }},
        {"(c) diagonal band",
         // Safe only on a narrow off-center anti-diagonal band that
         // intersects NEITHER the x=10 nor the y=10 slice: from the
         // equal division, no sequence of accepted single-dimension
         // moves reaches it (the violation count is flat there).
         [](int x, int y) { return x + y >= 26 && x + y <= 27 &&
                                   x >= 5 && y >= 5; },
         [](int x, int y) { return x + y >= 26 && x + y <= 27 &&
                                   x <= 15 && y <= 15; }},
    };

    printBanner(std::cout,
                "Figure 2: coordinate descent vs joint exploration "
                "(2 jobs, 2 resources, 20 units each)");

    TextTable t({"Scenario", "Feasible (exhaustive)",
                 "Coord. descent from equal split",
                 "Coord. descent from corner",
                 "Best of 4 corner starts"});
    for (const auto& s : scenarios) {
        bool feasible = anySafe([&](int x, int y) {
            return s.safe_a(x, y) && s.safe_b(x, y);
        });
        bool from_equal =
            coordinateDescent(s.safe_a, s.safe_b, kUnits / 2, kUnits / 2);
        bool from_corner = coordinateDescent(s.safe_a, s.safe_b, kUnits - 1,
                                             1);
        bool any_corner = false;
        for (int cx : {1, kUnits - 1})
            for (int cy : {1, kUnits - 1})
                any_corner =
                    any_corner ||
                    coordinateDescent(s.safe_a, s.safe_b, cx, cy);
        t.addRow({s.label, feasible ? "yes" : "no",
                  from_equal ? "finds QoS" : "stuck",
                  from_corner ? "finds QoS" : "stuck",
                  any_corner ? "finds QoS" : "stuck"});
    }
    t.print(std::cout);

    std::cout << "\nPanel (c) is the paper's point: the joint region is\n"
                 "non-empty but unreachable by one-dimension-at-a-time\n"
                 "moves from generic starts; CLITE's BO explores both\n"
                 "dimensions simultaneously and has no such blind spot.\n";
    return 0;
}

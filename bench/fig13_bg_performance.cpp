/**
 * @file
 * Regenerates Figure 13: performance of each BG workload when
 * co-located with sets of three LC jobs, per scheme, normalized to
 * isolated performance (0 when the scheme cannot meet the LC jobs'
 * QoS, as the paper marks it). Paper result: CLITE > 75% of ORACLE's
 * BG performance on average; other schemes often below 30%.
 */

#include <functional>
#include <iostream>
#include <map>

#include "bench_util.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "harness/analysis.h"
#include "stats/summary.h"
#include "workloads/catalog.h"

using namespace clite;

namespace {

void
runLcMix(const std::string& label,
         const std::vector<workloads::JobSpec>& lc_jobs,
         std::map<std::string, stats::RunningStats>& per_scheme)
{
    std::cout << label << "\n";
    std::vector<std::string> headers = {"BG job"};
    std::vector<std::string> schemes = {"oracle", "clite", "parties",
                                        "rand+", "genetic"};
    for (const auto& s : schemes)
        headers.push_back(s);
    TextTable t(headers);

    // Every (BG job, scheme) cell is an independent seeded search:
    // fan out on the pool, then accumulate serially in the fixed
    // bg-major order so the summary stats match a serial run exactly.
    const std::vector<std::string> bgs = workloads::bgWorkloadNames();
    std::vector<double> perf = globalPool().parallelMap(
        bgs.size() * schemes.size(), [&](size_t idx) {
            const std::string& bg = bgs[idx / schemes.size()];
            const std::string& scheme = schemes[idx % schemes.size()];
            harness::ServerSpec spec;
            spec.jobs = lc_jobs;
            spec.jobs.push_back(workloads::bgJob(bg));
            spec.seed = 90 + std::hash<std::string>{}(bg + scheme) % 97;
            harness::SchemeOutcome out =
                harness::runScheme(scheme, spec, spec.seed);
            return out.truth.all_qos_met
                       ? harness::meanBgPerformance(out.truth_obs)
                       : 0.0;
        });

    for (size_t b = 0; b < bgs.size(); ++b) {
        std::vector<std::string> row = {bgs[b]};
        for (size_t s = 0; s < schemes.size(); ++s) {
            double p = perf[b * schemes.size() + s];
            per_scheme[schemes[s]].add(p);
            row.push_back(TextTable::percent(p, 0));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::applyThreadFlag(argc, argv);
    printBanner(std::cout,
                "Figure 13: BG-job performance (vs isolated) under "
                "different 3-LC-job mixes; 0% = QoS not met");

    std::map<std::string, stats::RunningStats> per_scheme;
    runLcMix("LC mix: img-dnn@30% + xapian@30% + memcached@30%",
             {workloads::lcJob("img-dnn", 0.3),
              workloads::lcJob("xapian", 0.3),
              workloads::lcJob("memcached", 0.3)},
             per_scheme);
    runLcMix("LC mix: specjbb@30% + masstree@30% + memcached@30%",
             {workloads::lcJob("specjbb", 0.3),
              workloads::lcJob("masstree", 0.3),
              workloads::lcJob("memcached", 0.3)},
             per_scheme);

    TextTable summary({"Scheme", "Mean BG perf", "vs ORACLE"});
    double oracle_mean = per_scheme["oracle"].mean();
    for (const auto& [scheme, rs] : per_scheme)
        summary.addRow({scheme, TextTable::percent(rs.mean(), 1),
                        oracle_mean > 0.0
                            ? TextTable::percent(rs.mean() / oracle_mean, 1)
                            : "-"});
    summary.print(std::cout);
    return 0;
}

/**
 * @file
 * Regenerates Figure 13: performance of each BG workload when
 * co-located with sets of three LC jobs, per scheme, normalized to
 * isolated performance (0 when the scheme cannot meet the LC jobs'
 * QoS, as the paper marks it). Paper result: CLITE > 75% of ORACLE's
 * BG performance on average; other schemes often below 30%.
 */

#include <functional>
#include <iostream>
#include <map>

#include "common/table.h"
#include "harness/analysis.h"
#include "stats/summary.h"
#include "workloads/catalog.h"

using namespace clite;

namespace {

void
runLcMix(const std::string& label,
         const std::vector<workloads::JobSpec>& lc_jobs,
         std::map<std::string, stats::RunningStats>& per_scheme)
{
    std::cout << label << "\n";
    std::vector<std::string> headers = {"BG job"};
    std::vector<std::string> schemes = {"oracle", "clite", "parties",
                                        "rand+", "genetic"};
    for (const auto& s : schemes)
        headers.push_back(s);
    TextTable t(headers);

    for (const auto& bg : workloads::bgWorkloadNames()) {
        std::vector<std::string> row = {bg};
        for (const auto& scheme : schemes) {
            harness::ServerSpec spec;
            spec.jobs = lc_jobs;
            spec.jobs.push_back(workloads::bgJob(bg));
            spec.seed = 90 + std::hash<std::string>{}(bg + scheme) % 97;
            harness::SchemeOutcome out =
                harness::runScheme(scheme, spec, spec.seed);
            double perf = out.truth.all_qos_met
                              ? harness::meanBgPerformance(out.truth_obs)
                              : 0.0;
            per_scheme[scheme].add(perf);
            row.push_back(TextTable::percent(perf, 0));
        }
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 13: BG-job performance (vs isolated) under "
                "different 3-LC-job mixes; 0% = QoS not met");

    std::map<std::string, stats::RunningStats> per_scheme;
    runLcMix("LC mix: img-dnn@30% + xapian@30% + memcached@30%",
             {workloads::lcJob("img-dnn", 0.3),
              workloads::lcJob("xapian", 0.3),
              workloads::lcJob("memcached", 0.3)},
             per_scheme);
    runLcMix("LC mix: specjbb@30% + masstree@30% + memcached@30%",
             {workloads::lcJob("specjbb", 0.3),
              workloads::lcJob("masstree", 0.3),
              workloads::lcJob("memcached", 0.3)},
             per_scheme);

    TextTable summary({"Scheme", "Mean BG perf", "vs ORACLE"});
    double oracle_mean = per_scheme["oracle"].mean();
    for (const auto& [scheme, rs] : per_scheme)
        summary.addRow({scheme, TextTable::percent(rs.mean(), 1),
                        oracle_mean > 0.0
                            ? TextTable::percent(rs.mean() / oracle_mean, 1)
                            : "-"});
    summary.print(std::cout);
    return 0;
}

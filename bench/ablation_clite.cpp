/**
 * @file
 * Ablation bench for the design choices DESIGN.md Sec. 6 calls out
 * (the paper's "benefits are not sensitive to parameter-tuning"
 * analysis, Sec. 5.2): each CLITE mechanism is toggled and the final
 * truth score / sample count on a fixed mix is reported, averaged
 * over a few seeds.
 */

#include <iostream>

#include "common/table.h"
#include "core/clite.h"
#include "harness/analysis.h"
#include "stats/summary.h"
#include "workloads/catalog.h"

using namespace clite;

namespace {

struct Variant
{
    std::string label;
    core::CliteOptions options;
};

} // namespace

int
main()
{
    printBanner(std::cout,
                "CLITE ablations (img-dnn@30% + memcached@30% + "
                "masstree@30% + streamcluster, 4 seeds)");

    std::vector<Variant> variants;
    {
        Variant v;
        v.label = "default (Matern-5/2, EI zeta=0.01, dropout, informed "
                  "bootstrap)";
        variants.push_back(v);
    }
    {
        Variant v;
        v.label = "no dropout-copy";
        v.options.dropout = false;
        variants.push_back(v);
    }
    {
        Variant v;
        v.label = "random bootstrap (no informed set)";
        v.options.informed_bootstrap = false;
        variants.push_back(v);
    }
    {
        Variant v;
        v.label = "RBF kernel (smoothness assumption)";
        v.options.kernel = "rbf";
        variants.push_back(v);
    }
    {
        Variant v;
        v.label = "EI without exploration factor (zeta=0)";
        v.options.ei_zeta = 0.0;
        variants.push_back(v);
    }
    {
        Variant v;
        v.label = "PI acquisition (paper's rejected alternative)";
        v.options.acquisition = "pi";
        variants.push_back(v);
    }
    {
        Variant v;
        v.label = "no polish phase";
        v.options.polish_iterations = 0;
        variants.push_back(v);
    }
    {
        Variant v;
        v.label = "ARD lengthscales (overfits at this sample count)";
        v.options.ard = true;
        variants.push_back(v);
    }
    {
        Variant v;
        v.label = "loose termination (threshold x5)";
        v.options.termination_threshold = 0.05;
        variants.push_back(v);
    }

    TextTable t({"Variant", "Mean truth score", "QoS met (of 4)",
                 "Mean samples"});
    for (const auto& v : variants) {
        stats::RunningStats score, samples;
        int qos_met = 0;
        for (uint64_t seed : {11u, 22u, 33u, 44u}) {
            harness::ServerSpec spec;
            spec.jobs = {workloads::lcJob("img-dnn", 0.3),
                         workloads::lcJob("memcached", 0.3),
                         workloads::lcJob("masstree", 0.3),
                         workloads::bgJob("streamcluster")};
            spec.seed = seed;
            platform::SimulatedServer server = harness::makeServer(spec);
            core::CliteOptions o = v.options;
            o.seed = seed * 31;
            core::CliteController clite(o);
            core::ControllerResult r = clite.run(server);
            auto truth =
                core::scoreObservations(server.observeNoiseless(*r.best));
            score.add(truth.score);
            samples.add(double(r.samples));
            qos_met += truth.all_qos_met ? 1 : 0;
        }
        t.addRow({v.label, TextTable::num(score.mean(), 4),
                  TextTable::num(static_cast<long long>(qos_met)),
                  TextTable::num(samples.mean(), 1)});
    }
    t.print(std::cout);
    return 0;
}

/**
 * @file
 * Regenerates Figure 15: the search overhead of each technique.
 *
 *  (a) Configurations sampled before settling, as the number of
 *      co-located jobs grows. Paper: RAND+/GENETIC pay a preset (and
 *      highest) budget, CLITE samples modestly more than PARTIES
 *      (<30-ish even at high job counts) but with far better result
 *      quality; ORACLE's exhaustive count is shown for scale.
 *  (b) BG-job (fluidanimate) performance over sample number: PARTIES
 *      stops improving once QoS is met; CLITE keeps optimizing.
 * Also reports the decision/partition-apply overhead (<100 ms per
 * decision on the paper's testbed; modeled here by the drivers).
 */

#include <iostream>

#include "common/table.h"
#include "harness/analysis.h"
#include "workloads/catalog.h"

using namespace clite;

int
main()
{
    printBanner(std::cout,
                "Figure 15(a): configurations sampled vs number of "
                "co-located jobs");

    std::vector<std::vector<workloads::JobSpec>> mixes = {
        {workloads::lcJob("memcached", 0.3), workloads::bgJob("swaptions")},
        {workloads::lcJob("memcached", 0.3), workloads::lcJob("img-dnn", 0.3),
         workloads::bgJob("swaptions")},
        {workloads::lcJob("memcached", 0.3), workloads::lcJob("img-dnn", 0.3),
         workloads::lcJob("masstree", 0.3), workloads::bgJob("swaptions")},
        {workloads::lcJob("memcached", 0.2), workloads::lcJob("img-dnn", 0.2),
         workloads::lcJob("masstree", 0.2), workloads::bgJob("swaptions"),
         workloads::bgJob("fluidanimate")},
    };

    TextTable t({"Jobs", "clite", "parties", "rand+", "genetic",
                 "oracle (exhaustive)", "clite score", "parties score"});
    for (const auto& jobs : mixes) {
        std::vector<std::string> row = {
            TextTable::num(static_cast<long long>(jobs.size()))};
        double clite_score = 0.0, parties_score = 0.0;
        for (const char* scheme : {"clite", "parties", "rand+", "genetic"}) {
            harness::ServerSpec spec;
            spec.jobs = jobs;
            spec.seed = 31 + jobs.size();
            harness::SchemeOutcome out =
                harness::runScheme(scheme, spec, spec.seed);
            row.push_back(TextTable::num(
                static_cast<long long>(out.result.samples)));
            if (std::string(scheme) == "clite")
                clite_score = out.truth.score;
            if (std::string(scheme) == "parties")
                parties_score = out.truth.score;
        }
        platform::ServerConfig config =
            platform::ServerConfig::xeonSilver4114();
        row.push_back(TextTable::num(static_cast<long long>(
            config.configurationCount(int(jobs.size())))));
        row.push_back(TextTable::num(clite_score, 3));
        row.push_back(TextTable::num(parties_score, 3));
        t.addRow(row);
    }
    t.print(std::cout);

    printBanner(std::cout,
                "Figure 15(b): BG (fluidanimate) performance over "
                "samples — CLITE keeps improving past QoS");
    harness::ServerSpec spec;
    spec.jobs = {workloads::lcJob("img-dnn", 0.2),
                 workloads::lcJob("memcached", 0.2),
                 workloads::lcJob("masstree", 0.2),
                 workloads::bgJob("fluidanimate")};
    spec.seed = 19;
    for (const char* scheme : {"parties", "clite"}) {
        harness::ConvergenceTrace trace =
            harness::traceConvergence(scheme, spec, 19);
        std::cout << scheme << " (QoS first met at sample "
                  << trace.first_feasible << "):\n";
        TextTable tb({"Sample", "BG perf", "best-so-far BG perf @QoS",
                      "QoS"});
        double best_bg = 0.0;
        for (const auto& step : trace.steps) {
            if (step.all_qos_met)
                best_bg = std::max(best_bg, step.bg_perf);
            if (step.sample % 4 != 1 &&
                step.sample != int(trace.steps.size()))
                continue;
            tb.addRow({TextTable::num(
                           static_cast<long long>(step.sample)),
                       TextTable::percent(step.bg_perf, 0),
                       TextTable::percent(best_bg, 0),
                       step.all_qos_met ? "met" : "-"});
        }
        tb.print(std::cout);
        std::cout << "\n";
    }

    printBanner(std::cout,
                "Decision overhead: modeled partition reprogramming "
                "latency per decision (paper: <100 ms, off the "
                "critical path)");
    harness::ServerSpec spec2;
    spec2.jobs = {workloads::lcJob("img-dnn", 0.3),
                  workloads::lcJob("memcached", 0.3),
                  workloads::bgJob("streamcluster")};
    platform::SimulatedServer server = harness::makeServer(spec2);
    auto clite = harness::makeScheme("clite", 3);
    clite->run(server);
    TextTable ov({"Metric", "Value"});
    ov.addRow({"partitions applied",
               TextTable::num(
                   static_cast<long long>(server.applyCount()))});
    ov.addRow({"total reprogram latency",
               TextTable::num(server.totalApplyLatencyMs(), 1) + " ms"});
    ov.addRow({"per decision",
               TextTable::num(server.totalApplyLatencyMs() /
                                  double(server.applyCount()),
                              1) +
                   " ms"});
    ov.print(std::cout);
    return 0;
}

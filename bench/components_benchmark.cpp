/**
 * @file
 * google-benchmark microbenchmarks for the substrate components,
 * backing the Sec. 5.2 overhead discussion: GP fit/predict at CLITE's
 * sample counts, acquisition evaluation and constrained maximization,
 * score evaluation, the analytic and DES model backends, and the
 * memoized ORACLE enumeration rate.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/oracle.h"
#include "bo/acquisition.h"
#include "core/clite.h"
#include "core/score.h"
#include "gp/gaussian_process.h"
#include "harness/schemes.h"
#include "opt/projected_gradient.h"
#include "stats/sampling.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

using namespace clite;

namespace {

std::vector<linalg::Vector>
randomInputs(size_t n, size_t dim, Rng& rng)
{
    std::vector<linalg::Vector> xs(n, linalg::Vector(dim));
    for (auto& x : xs)
        for (auto& v : x)
            v = rng.uniform();
    return xs;
}

void
BM_GpFit(benchmark::State& state)
{
    const size_t n = size_t(state.range(0)), dim = 12;
    Rng rng(3);
    auto xs = randomInputs(n, dim, rng);
    std::vector<double> ys(n);
    for (auto& y : ys)
        y = rng.uniform();
    gp::GaussianProcess gp(std::make_unique<gp::Matern52Kernel>(dim, 0.3),
                           1e-4);
    for (auto _ : state) {
        gp.fit(xs, ys);
        benchmark::DoNotOptimize(gp.sampleCount());
    }
}
BENCHMARK(BM_GpFit)->Arg(10)->Arg(30)->Arg(50);

void
BM_GpPredict(benchmark::State& state)
{
    const size_t n = 40, dim = 12;
    Rng rng(5);
    auto xs = randomInputs(n, dim, rng);
    std::vector<double> ys(n);
    for (auto& y : ys)
        y = rng.uniform();
    gp::GaussianProcess gp(std::make_unique<gp::Matern52Kernel>(dim, 0.3),
                           1e-4);
    gp.fit(xs, ys);
    linalg::Vector q(dim, 0.4);
    for (auto _ : state)
        benchmark::DoNotOptimize(gp.predict(q).mean);
}
BENCHMARK(BM_GpPredict);

void
BM_AcquisitionEval(benchmark::State& state)
{
    const size_t n = 40, dim = 12;
    Rng rng(7);
    auto xs = randomInputs(n, dim, rng);
    std::vector<double> ys(n);
    for (auto& y : ys)
        y = rng.uniform();
    gp::GaussianProcess gp(std::make_unique<gp::Matern52Kernel>(dim, 0.3),
                           1e-4);
    gp.fit(xs, ys);
    bo::ExpectedImprovement ei(0.01);
    linalg::Vector q(dim, 0.4);
    for (auto _ : state)
        benchmark::DoNotOptimize(ei.evaluate(gp, q, 0.6));
}
BENCHMARK(BM_AcquisitionEval);

void
BM_AnalyticModelMeasure(benchmark::State& state)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    workloads::JobSpec job = workloads::lcJob("img-dnn", 0.4);
    workloads::AnalyticModel model;
    Rng rng(9);
    std::vector<int> units = {4, 5, 3};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            model.measure(job, units, config, rng).p95_ms);
}
BENCHMARK(BM_AnalyticModelMeasure);

void
BM_DesModelMeasure(benchmark::State& state)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    workloads::JobSpec job = workloads::lcJob("img-dnn", 0.4);
    workloads::QueueingSimModel model(0.5, 2.0);
    Rng rng(11);
    std::vector<int> units = {4, 5, 3};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            model.measure(job, units, config, rng).p95_ms);
}
BENCHMARK(BM_DesModelMeasure);

void
BM_ScoreEvaluation(benchmark::State& state)
{
    harness::ServerSpec spec;
    spec.jobs = {workloads::lcJob("img-dnn", 0.3),
                 workloads::lcJob("memcached", 0.3),
                 workloads::bgJob("streamcluster")};
    platform::SimulatedServer server = harness::makeServer(spec);
    auto obs = server.observe();
    for (auto _ : state)
        benchmark::DoNotOptimize(core::score(obs));
}
BENCHMARK(BM_ScoreEvaluation);

void
BM_OracleThreeJobs(benchmark::State& state)
{
    // Full memoized exhaustive search over 58,320 configurations.
    for (auto _ : state) {
        harness::ServerSpec spec;
        spec.jobs = {workloads::lcJob("img-dnn", 0.3),
                     workloads::lcJob("memcached", 0.3),
                     workloads::bgJob("streamcluster")};
        spec.noise_sigma = 0.0;
        platform::SimulatedServer server = harness::makeServer(spec);
        baselines::OracleController oracle;
        benchmark::DoNotOptimize(oracle.run(server).best_score);
    }
}
BENCHMARK(BM_OracleThreeJobs)->Unit(benchmark::kMillisecond);

void
BM_CliteFullSearch(benchmark::State& state)
{
    // One complete CLITE decision process (the paper's end-to-end
    // controller overhead, minus the 2 s observation windows that
    // dominate on a real machine).
    for (auto _ : state) {
        harness::ServerSpec spec;
        spec.jobs = {workloads::lcJob("img-dnn", 0.3),
                     workloads::lcJob("memcached", 0.3),
                     workloads::bgJob("streamcluster")};
        platform::SimulatedServer server = harness::makeServer(spec);
        core::CliteController clite;
        benchmark::DoNotOptimize(clite.run(server).best_score);
    }
}
BENCHMARK(BM_CliteFullSearch)->Unit(benchmark::kMillisecond);

void
BM_CompositionEnumeration(benchmark::State& state)
{
    for (auto _ : state) {
        uint64_t count = 0;
        stats::forEachComposition(11, 4, [&](const std::vector<int>&) {
            ++count;
            return true;
        });
        benchmark::DoNotOptimize(count);
    }
}
BENCHMARK(BM_CompositionEnumeration);

void
BM_ProjectedGradientAcqStep(benchmark::State& state)
{
    const size_t njobs = 4, nres = 3, dim = njobs * nres;
    Rng rng(13);
    auto xs = randomInputs(36, dim, rng);
    std::vector<double> ys(36);
    for (auto& y : ys)
        y = rng.uniform();
    gp::GaussianProcess gp(std::make_unique<gp::Matern52Kernel>(dim, 0.3),
                           1e-4);
    gp.fit(xs, ys);
    bo::ExpectedImprovement ei(0.01);

    std::vector<opt::SimplexBlock> blocks;
    for (size_t r = 0; r < nres; ++r) {
        opt::SimplexBlock b;
        b.total = 1.0;
        for (size_t j = 0; j < njobs; ++j) {
            b.indices.push_back(j * nres + r);
            b.lo.push_back(0.1);
            b.hi.push_back(0.7);
        }
        blocks.push_back(std::move(b));
    }
    opt::PgOptions pg;
    pg.max_iters = 40;
    opt::ProjectedGradientOptimizer optimizer(blocks, dim, pg);
    std::vector<double> start(dim, 0.25);
    for (auto _ : state) {
        auto r = optimizer.maximize(
            [&](const std::vector<double>& x) {
                return ei.evaluate(gp, x, 0.6);
            },
            start);
        benchmark::DoNotOptimize(r.value);
    }
}
BENCHMARK(BM_ProjectedGradientAcqStep)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();

/**
 * @file
 * google-benchmark microbenchmarks for the substrate components,
 * backing the Sec. 5.2 overhead discussion: GP fit/predict at CLITE's
 * sample counts, acquisition evaluation and constrained maximization,
 * score evaluation, the analytic and DES model backends, and the
 * memoized ORACLE enumeration rate.
 *
 * This binary doubles as the repo's perf-baseline harness: the
 * surrogate-maintenance hot paths are timed in incremental vs
 * from-scratch pairs (Cholesky append vs refactor, GP addSample vs
 * refit) at n = 16 / 64 / 256 samples, plus serial vs pooled
 * acquisition rounds and the end-to-end BO loop. Set CLITE_BENCH_JSON
 * to a path (or pass the usual --benchmark_out flags) to emit the
 * machine-readable BENCH_components.json that CI archives per commit;
 * docs/PERF.md explains how to read it. --threads=N sizes the global
 * pool (--threads=1 is the serial escape hatch).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "baselines/oracle.h"
#include "bo/acquisition.h"
#include "bo/bayes_opt.h"
#include "common/thread_pool.h"
#include "core/clite.h"
#include "core/score.h"
#include "gp/gaussian_process.h"
#include "harness/schemes.h"
#include "linalg/cholesky.h"
#include "opt/projected_gradient.h"
#include "stats/sampling.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

using namespace clite;

namespace {

constexpr size_t kDim = 12; // 4 jobs x 3 resources, CLITE's usual box

std::vector<linalg::Vector>
randomInputs(size_t n, size_t dim, Rng& rng)
{
    std::vector<linalg::Vector> xs(n, linalg::Vector(dim));
    for (auto& x : xs)
        for (auto& v : x)
            v = rng.uniform();
    return xs;
}

/** Random SPD matrix shaped like a kernel Gram matrix. */
linalg::Matrix
randomSpd(size_t n, Rng& rng)
{
    linalg::Matrix b(n, n);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            b(r, c) = rng.uniform(-1.0, 1.0);
    linalg::Matrix a = b * b.transposed();
    a.addDiagonal(double(n) * 0.1);
    return a;
}

/** A GP fitted to n random samples, shared base for the extend pair. */
gp::GaussianProcess
fittedGp(size_t n, uint64_t seed)
{
    Rng rng(seed);
    auto xs = randomInputs(n, kDim, rng);
    std::vector<double> ys(n);
    for (auto& y : ys)
        y = rng.uniform();
    gp::GaussianProcess g(std::make_unique<gp::Matern52Kernel>(kDim, 0.3),
                          1e-4);
    g.fit(xs, ys);
    return g;
}

double
elapsedSeconds(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
}

// ---- Surrogate-extension pair: the cost of growing the sample set by
// one point, from scratch vs incrementally. The ratio between the two
// at n = 256 is the headline number of this harness (target >= 5x).

void
BM_CholeskyFactor(benchmark::State& state)
{
    const size_t n = size_t(state.range(0));
    Rng rng(17);
    linalg::Matrix a = randomSpd(n, rng);
    for (auto _ : state) {
        linalg::Cholesky chol(a);
        benchmark::DoNotOptimize(chol.factor().rows());
    }
}
BENCHMARK(BM_CholeskyFactor)->Arg(16)->Arg(64)->Arg(256);

void
BM_CholeskyAppendRow(benchmark::State& state)
{
    const size_t n = size_t(state.range(0));
    Rng rng(17);
    linalg::Matrix a = randomSpd(n + 1, rng);
    linalg::Matrix head(n, n);
    for (size_t r = 0; r < n; ++r)
        for (size_t c = 0; c < n; ++c)
            head(r, c) = a(r, c);
    linalg::Vector b(n);
    for (size_t r = 0; r < n; ++r)
        b[r] = a(n, r);
    const double c = a(n, n);
    linalg::Cholesky base(head);
    for (auto _ : state) {
        // The copy restores the pre-append factor; only the append is
        // timed (manual time), so the pair is comparable.
        linalg::Cholesky chol = base;
        auto t0 = std::chrono::steady_clock::now();
        bool ok = chol.appendRow(b, c);
        state.SetIterationTime(elapsedSeconds(t0));
        benchmark::DoNotOptimize(ok);
    }
}
BENCHMARK(BM_CholeskyAppendRow)->Arg(16)->Arg(64)->Arg(256)->UseManualTime();

void
BM_SurrogateExtendFullRefit(benchmark::State& state)
{
    const size_t n = size_t(state.range(0));
    Rng rng(23);
    auto xs = randomInputs(n + 1, kDim, rng);
    std::vector<double> ys(n + 1);
    for (auto& y : ys)
        y = rng.uniform();
    gp::GaussianProcess g(std::make_unique<gp::Matern52Kernel>(kDim, 0.3),
                          1e-4);
    for (auto _ : state) {
        g.fit(xs, ys);
        benchmark::DoNotOptimize(g.sampleCount());
    }
}
BENCHMARK(BM_SurrogateExtendFullRefit)->Arg(16)->Arg(64)->Arg(256);

void
BM_SurrogateExtendIncremental(benchmark::State& state)
{
    const size_t n = size_t(state.range(0));
    gp::GaussianProcess base = fittedGp(n, 23);
    Rng rng(29);
    linalg::Vector xq(kDim);
    for (auto& v : xq)
        v = rng.uniform();
    const double yq = rng.uniform();
    for (auto _ : state) {
        gp::GaussianProcess g = base; // untimed: restore n samples
        auto t0 = std::chrono::steady_clock::now();
        g.addSample(xq, yq);
        state.SetIterationTime(elapsedSeconds(t0));
        benchmark::DoNotOptimize(g.sampleCount());
    }
}
BENCHMARK(BM_SurrogateExtendIncremental)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->UseManualTime();

// ---- Hyper-parameter probe: one LML evaluation under fresh Matérn
// log-length-scales, i.e. the Nelder-Mead inner loop that the
// stationary-distance cache accelerates.

void
BM_GpHyperparameterProbe(benchmark::State& state)
{
    const size_t n = size_t(state.range(0));
    gp::GaussianProcess g = fittedGp(n, 31);
    Rng rng(37);
    gp::GpFitOptions fo;
    fo.restarts = 0;
    fo.max_iters = 8;
    for (auto _ : state)
        benchmark::DoNotOptimize(g.optimizeHyperparameters(rng, fo));
}
BENCHMARK(BM_GpHyperparameterProbe)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(512)
    ->Unit(benchmark::kMillisecond);

// ---- Acquisition rounds: one BO iteration's worth of candidate
// evaluations, serial vs fanned out on the pool.

void
acquisitionRound(benchmark::State& state, bool parallel)
{
    const size_t n = size_t(state.range(0)), candidates = 512;
    gp::GaussianProcess g = fittedGp(n, 41);
    bo::ExpectedImprovement ei(0.01);
    Rng rng(43);
    std::vector<linalg::Vector> cands =
        randomInputs(candidates, kDim, rng);
    std::vector<double> acq(candidates);
    for (auto _ : state) {
        if (parallel) {
            globalPool().parallelFor(candidates, [&](size_t c) {
                acq[c] = ei.evaluate(g, cands[c], 0.6);
            });
        } else {
            for (size_t c = 0; c < candidates; ++c)
                acq[c] = ei.evaluate(g, cands[c], 0.6);
        }
        benchmark::DoNotOptimize(acq.data());
    }
}

void
BM_AcquisitionRoundSerial(benchmark::State& state)
{
    acquisitionRound(state, false);
}
BENCHMARK(BM_AcquisitionRoundSerial)->Arg(16)->Arg(64)->Arg(256);

void
BM_AcquisitionRoundParallel(benchmark::State& state)
{
    acquisitionRound(state, true);
}
BENCHMARK(BM_AcquisitionRoundParallel)->Arg(16)->Arg(64)->Arg(256);

// ---- Batched acquisition rounds: same 512-candidate work as the
// serial/parallel pair above, but scored through the SoA posterior
// engine (one kernel panel + blocked TRSM per candidate block instead
// of 512 independent predict() calls). Batched vs RoundSerial is the
// headline ratio of the batched engine (target >= 3x); the Parallel
// variant fans candidate blocks out on the pool and only separates
// from the serial-batch number when the machine has >= 2 cores.

void
acquisitionRoundBatched(benchmark::State& state, bool parallel)
{
    const size_t n = size_t(state.range(0)), candidates = 512;
    gp::GaussianProcess g = fittedGp(n, 41);
    bo::ExpectedImprovement ei(0.01);
    Rng rng(43);
    std::vector<linalg::Vector> cands =
        randomInputs(candidates, kDim, rng);
    std::vector<double> acq(candidates);
    for (auto _ : state) {
        if (parallel) {
            bo::scoreCandidates(ei, g, cands, 0.6, acq.data());
        } else {
            for (size_t b = 0; b < candidates; b += bo::kAcquisitionBlock) {
                size_t count = candidates - b < bo::kAcquisitionBlock
                                   ? candidates - b
                                   : bo::kAcquisitionBlock;
                ei.evaluateBatch(g, cands, b, count, 0.6, acq.data() + b);
            }
        }
        benchmark::DoNotOptimize(acq.data());
    }
}

void
BM_AcquisitionRoundBatched(benchmark::State& state)
{
    acquisitionRoundBatched(state, false);
}
BENCHMARK(BM_AcquisitionRoundBatched)->Arg(16)->Arg(64)->Arg(256);

void
BM_AcquisitionRoundBatchedParallel(benchmark::State& state)
{
    acquisitionRoundBatched(state, true);
}
BENCHMARK(BM_AcquisitionRoundBatchedParallel)->Arg(16)->Arg(64)->Arg(256);

// Raw posterior throughput of the batched engine vs the scalar path:
// 512 predictions against an n-sample surrogate, per-iteration time.

void
BM_GpPredictBatch512(benchmark::State& state)
{
    const size_t n = size_t(state.range(0)), candidates = 512;
    gp::GaussianProcess g = fittedGp(n, 53);
    Rng rng(59);
    std::vector<linalg::Vector> cands =
        randomInputs(candidates, kDim, rng);
    std::vector<double> means(candidates), vars(candidates);
    for (auto _ : state) {
        g.predictBatch(cands, 0, candidates, means.data(), vars.data());
        benchmark::DoNotOptimize(means.data());
    }
}
BENCHMARK(BM_GpPredictBatch512)->Arg(16)->Arg(64)->Arg(256);

void
BM_GpPredictScalar512(benchmark::State& state)
{
    const size_t n = size_t(state.range(0)), candidates = 512;
    gp::GaussianProcess g = fittedGp(n, 53);
    Rng rng(59);
    std::vector<linalg::Vector> cands =
        randomInputs(candidates, kDim, rng);
    std::vector<double> means(candidates);
    for (auto _ : state) {
        for (size_t c = 0; c < candidates; ++c)
            means[c] = g.predict(cands[c]).mean;
        benchmark::DoNotOptimize(means.data());
    }
}
BENCHMARK(BM_GpPredictScalar512)->Arg(16)->Arg(64)->Arg(256);

// ---- End-to-end BO decision loop at a given sample budget
// (surrogate extension + acquisition per iteration; hyper-fitting is
// timed separately above).

void
BM_BayesOptLoop(benchmark::State& state)
{
    const int budget = int(state.range(0));
    bo::BayesOptOptions o;
    o.initial_samples = 4;
    o.max_iterations = budget - o.initial_samples;
    o.candidates = 128;
    o.fit_hyperparameters = false;
    o.ei_termination = -1.0; // never stop early: fixed work per run
    auto f = [](const linalg::Vector& x) {
        double s = 0.0;
        for (double v : x)
            s -= (v - 0.37) * (v - 0.37);
        return s;
    };
    for (auto _ : state) {
        bo::BayesOpt bo(linalg::Vector(kDim, 0.0),
                        linalg::Vector(kDim, 1.0),
                        std::make_unique<bo::ExpectedImprovement>(0.01), o);
        Rng rng(47);
        benchmark::DoNotOptimize(bo.maximize(f, rng).best_y);
    }
}
BENCHMARK(BM_BayesOptLoop)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Unit(benchmark::kMillisecond);

void
BM_GpFit(benchmark::State& state)
{
    const size_t n = size_t(state.range(0)), dim = 12;
    Rng rng(3);
    auto xs = randomInputs(n, dim, rng);
    std::vector<double> ys(n);
    for (auto& y : ys)
        y = rng.uniform();
    gp::GaussianProcess gp(std::make_unique<gp::Matern52Kernel>(dim, 0.3),
                           1e-4);
    for (auto _ : state) {
        gp.fit(xs, ys);
        benchmark::DoNotOptimize(gp.sampleCount());
    }
}
BENCHMARK(BM_GpFit)->Arg(10)->Arg(30)->Arg(50);

void
BM_GpPredict(benchmark::State& state)
{
    const size_t n = 40, dim = 12;
    Rng rng(5);
    auto xs = randomInputs(n, dim, rng);
    std::vector<double> ys(n);
    for (auto& y : ys)
        y = rng.uniform();
    gp::GaussianProcess gp(std::make_unique<gp::Matern52Kernel>(dim, 0.3),
                           1e-4);
    gp.fit(xs, ys);
    linalg::Vector q(dim, 0.4);
    for (auto _ : state)
        benchmark::DoNotOptimize(gp.predict(q).mean);
}
BENCHMARK(BM_GpPredict);

void
BM_AcquisitionEval(benchmark::State& state)
{
    const size_t n = 40, dim = 12;
    Rng rng(7);
    auto xs = randomInputs(n, dim, rng);
    std::vector<double> ys(n);
    for (auto& y : ys)
        y = rng.uniform();
    gp::GaussianProcess gp(std::make_unique<gp::Matern52Kernel>(dim, 0.3),
                           1e-4);
    gp.fit(xs, ys);
    bo::ExpectedImprovement ei(0.01);
    linalg::Vector q(dim, 0.4);
    for (auto _ : state)
        benchmark::DoNotOptimize(ei.evaluate(gp, q, 0.6));
}
BENCHMARK(BM_AcquisitionEval);

void
BM_AnalyticModelMeasure(benchmark::State& state)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    workloads::JobSpec job = workloads::lcJob("img-dnn", 0.4);
    workloads::AnalyticModel model;
    Rng rng(9);
    std::vector<int> units = {4, 5, 3};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            model.measure(job, units, config, rng).p95_ms);
}
BENCHMARK(BM_AnalyticModelMeasure);

void
BM_DesModelMeasure(benchmark::State& state)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    workloads::JobSpec job = workloads::lcJob("img-dnn", 0.4);
    workloads::QueueingSimModel model(0.5, 2.0);
    Rng rng(11);
    std::vector<int> units = {4, 5, 3};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            model.measure(job, units, config, rng).p95_ms);
}
BENCHMARK(BM_DesModelMeasure);

/**
 * Same observation window under the coarse event budget (2000
 * measured requests per LC window — the accuracy/latency trade
 * documented in docs/MODEL.md and pinned by
 * tests/sim/queueing_budget_test.cpp). At this job's arrival rate the
 * budget barely binds, so the value should track BM_DesModelMeasure;
 * a widening gap means the budgeted code path drifted from the fast
 * path, a shrinking measurement means the budget started binding.
 */
void
BM_DesModelMeasureCoarse(benchmark::State& state)
{
    platform::ServerConfig config = platform::ServerConfig::xeonSilver4114();
    workloads::JobSpec job = workloads::lcJob("img-dnn", 0.4);
    workloads::QueueingSimModel model(0.5, 2.0, 2000);
    Rng rng(11);
    std::vector<int> units = {4, 5, 3};
    for (auto _ : state)
        benchmark::DoNotOptimize(
            model.measure(job, units, config, rng).p95_ms);
}
BENCHMARK(BM_DesModelMeasureCoarse);

void
BM_ScoreEvaluation(benchmark::State& state)
{
    harness::ServerSpec spec;
    spec.jobs = {workloads::lcJob("img-dnn", 0.3),
                 workloads::lcJob("memcached", 0.3),
                 workloads::bgJob("streamcluster")};
    platform::SimulatedServer server = harness::makeServer(spec);
    auto obs = server.observe();
    for (auto _ : state)
        benchmark::DoNotOptimize(core::score(obs));
}
BENCHMARK(BM_ScoreEvaluation);

void
BM_OracleThreeJobs(benchmark::State& state)
{
    // Full memoized exhaustive search over 58,320 configurations.
    for (auto _ : state) {
        harness::ServerSpec spec;
        spec.jobs = {workloads::lcJob("img-dnn", 0.3),
                     workloads::lcJob("memcached", 0.3),
                     workloads::bgJob("streamcluster")};
        spec.noise_sigma = 0.0;
        platform::SimulatedServer server = harness::makeServer(spec);
        baselines::OracleController oracle;
        benchmark::DoNotOptimize(oracle.run(server).best_score);
    }
}
BENCHMARK(BM_OracleThreeJobs)->Unit(benchmark::kMillisecond);

void
BM_CliteFullSearch(benchmark::State& state)
{
    // One complete CLITE decision process (the paper's end-to-end
    // controller overhead, minus the 2 s observation windows that
    // dominate on a real machine).
    for (auto _ : state) {
        harness::ServerSpec spec;
        spec.jobs = {workloads::lcJob("img-dnn", 0.3),
                     workloads::lcJob("memcached", 0.3),
                     workloads::bgJob("streamcluster")};
        platform::SimulatedServer server = harness::makeServer(spec);
        core::CliteController clite;
        benchmark::DoNotOptimize(clite.run(server).best_score);
    }
}
BENCHMARK(BM_CliteFullSearch)->Unit(benchmark::kMillisecond);

void
BM_CompositionEnumeration(benchmark::State& state)
{
    for (auto _ : state) {
        uint64_t count = 0;
        stats::forEachComposition(11, 4, [&](const std::vector<int>&) {
            ++count;
            return true;
        });
        benchmark::DoNotOptimize(count);
    }
}
BENCHMARK(BM_CompositionEnumeration);

void
BM_ProjectedGradientAcqStep(benchmark::State& state)
{
    const size_t njobs = 4, nres = 3, dim = njobs * nres;
    Rng rng(13);
    auto xs = randomInputs(36, dim, rng);
    std::vector<double> ys(36);
    for (auto& y : ys)
        y = rng.uniform();
    gp::GaussianProcess gp(std::make_unique<gp::Matern52Kernel>(dim, 0.3),
                           1e-4);
    gp.fit(xs, ys);
    bo::ExpectedImprovement ei(0.01);

    std::vector<opt::SimplexBlock> blocks;
    for (size_t r = 0; r < nres; ++r) {
        opt::SimplexBlock b;
        b.total = 1.0;
        for (size_t j = 0; j < njobs; ++j) {
            b.indices.push_back(j * nres + r);
            b.lo.push_back(0.1);
            b.hi.push_back(0.7);
        }
        blocks.push_back(std::move(b));
    }
    opt::PgOptions pg;
    pg.max_iters = 40;
    opt::ProjectedGradientOptimizer optimizer(blocks, dim, pg);
    std::vector<double> start(dim, 0.25);
    for (auto _ : state) {
        auto r = optimizer.maximize(
            [&](const std::vector<double>& x) {
                return ei.evaluate(gp, x, 0.6);
            },
            start);
        benchmark::DoNotOptimize(r.value);
    }
}
BENCHMARK(BM_ProjectedGradientAcqStep)->Unit(benchmark::kMillisecond);

} // namespace

namespace {

/**
 * True when this binary was compiled with assertions enabled (no
 * NDEBUG) — timings from such a build are meaningless as baselines.
 * Note this tracks the *repo's* build type; the `library_build_type`
 * context google-benchmark emits describes how the preinstalled
 * benchmark library itself was compiled and may say "debug" even for
 * a Release build of clite.
 */
constexpr bool
debugBuild()
{
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
}

/**
 * Refuse to emit a baseline-looking JSON from a debug build: stamp
 * ".DEBUG" into the file name (BENCH_components.json ->
 * BENCH_components.DEBUG.json) so it can never be mistaken for, or
 * committed as, the Release baseline.
 */
std::string
stampDebugSuffix(const std::string& path)
{
    size_t dot = path.find_last_of('.');
    size_t slash = path.find_last_of("/\\");
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash))
        return path + ".DEBUG";
    return path.substr(0, dot) + ".DEBUG" + path.substr(dot);
}

} // namespace

/**
 * BENCHMARK_MAIN plus two conveniences: --threads=N resizes the global
 * pool before anything runs, and CLITE_BENCH_JSON=<path> injects the
 * --benchmark_out flags so CI emits BENCH_components.json without
 * quoting games. Debug builds get their JSON renamed with a .DEBUG
 * stamp (see stampDebugSuffix) and a clite_build_type context key
 * records the repo build type either way.
 */
int
main(int argc, char** argv)
{
    std::vector<std::string> keep;
    keep.reserve(size_t(argc) + 2);
    keep.emplace_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--threads=", 10) == 0) {
            int n = std::atoi(argv[i] + 10);
            if (n >= 1)
                setGlobalThreadCount(n);
        } else {
            keep.emplace_back(argv[i]);
        }
    }
    benchmark::AddCustomContext("clite_build_type",
                                debugBuild() ? "debug" : "release");
    if (const char* path = std::getenv("CLITE_BENCH_JSON")) {
        if (*path != '\0') {
            std::string out = path;
            if (debugBuild()) {
                out = stampDebugSuffix(out);
                std::fprintf(stderr,
                             "components_benchmark: built without NDEBUG; "
                             "refusing to write %s, emitting %s instead. "
                             "Reconfigure with -DCMAKE_BUILD_TYPE=Release "
                             "to regenerate the baseline.\n",
                             path, out.c_str());
            }
            keep.push_back("--benchmark_out=" + out);
            keep.emplace_back("--benchmark_out_format=json");
        }
    }
    std::vector<char*> args;
    args.reserve(keep.size());
    for (auto& s : keep)
        args.push_back(s.data());
    int filtered_argc = int(args.size());
    benchmark::Initialize(&filtered_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

/**
 * @file
 * Regenerates Figure 10: mean LC-job performance (normalized to
 * ORACLE) for two sets of three co-located LC jobs, as the third
 * job's load sweeps and the other two sit at 10%. Paper result:
 * CLITE ~96-98% of ORACLE, PARTIES 74-85%, RAND+/GENETIC below 80%,
 * with CLITE's advantage growing at higher loads.
 */

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "harness/analysis.h"
#include "workloads/catalog.h"

using namespace clite;

namespace {

void
runMix(const std::string& a, const std::string& b, const std::string& swept)
{
    std::cout << a << "@10% + " << b << "@10% + " << swept
              << " (load swept)\n";
    TextTable t({"Load of " + swept, "oracle (abs)", "clite", "parties",
                 "rand+", "genetic"});
    std::vector<double> ratios_clite, ratios_parties;
    for (double load : {0.2, 0.4, 0.6, 0.8}) {
        harness::ServerSpec spec;
        spec.jobs = {workloads::lcJob(a, 0.1), workloads::lcJob(b, 0.1),
                     workloads::lcJob(swept, load)};
        spec.seed = 40 + uint64_t(load * 10);

        double oracle_perf = 0.0;
        std::vector<std::string> row = {TextTable::percent(load, 0)};
        for (const char* scheme :
             {"oracle", "clite", "parties", "rand+", "genetic"}) {
            harness::SchemeOutcome out =
                harness::runScheme(scheme, spec, spec.seed);
            double perf = harness::meanLcPerformance(out.truth_obs);
            if (!out.truth.all_qos_met)
                perf = 0.0; // the paper reports 0 when QoS is unmet
            if (std::string(scheme) == "oracle") {
                oracle_perf = perf;
                row.push_back(TextTable::num(perf, 3));
            } else {
                row.push_back(oracle_perf > 0.0
                                  ? TextTable::percent(perf / oracle_perf,
                                                       1)
                                  : "-");
            }
        }
        t.addRow(row);
    }
    t.print(std::cout);
    bench::maybeWriteCsv(t, "fig10_" + swept);
    std::cout << "\n";
}

} // namespace

namespace {

/**
 * Supplementary sweep: the same experiment with a BG job present.
 * With BG resources contended, the Eq. 3 objective discriminates the
 * schemes much more sharply than the LC-only sweep (see
 * EXPERIMENTS.md's note on Fig. 10).
 */
void
runMixWithBg(const std::string& a, const std::string& b,
             const std::string& swept, const std::string& bg)
{
    std::cout << a << "@10% + " << b << "@10% + " << swept
              << " (load swept) + " << bg << " [BG perf vs ORACLE]\n";
    TextTable t({"Load of " + swept, "oracle BG perf", "clite", "parties",
                 "rand+", "genetic"});
    for (double load : {0.2, 0.4, 0.6, 0.8}) {
        harness::ServerSpec spec;
        spec.jobs = {workloads::lcJob(a, 0.1), workloads::lcJob(b, 0.1),
                     workloads::lcJob(swept, load), workloads::bgJob(bg)};
        spec.seed = 60 + uint64_t(load * 10);

        double oracle_perf = 0.0;
        std::vector<std::string> row = {TextTable::percent(load, 0)};
        for (const char* scheme :
             {"oracle", "clite", "parties", "rand+", "genetic"}) {
            // Average over a few seeds: a single stochastic search per
            // cell scatters too much to read (Fig. 11 quantifies it).
            double perf = 0.0;
            const int reps = 3;
            for (int rep = 0; rep < reps; ++rep) {
                harness::ServerSpec rspec = spec;
                rspec.seed = spec.seed + uint64_t(rep) * 1009;
                harness::SchemeOutcome out =
                    harness::runScheme(scheme, rspec, rspec.seed);
                perf += out.truth.all_qos_met
                            ? harness::meanBgPerformance(out.truth_obs)
                            : 0.0;
            }
            perf /= reps;
            if (std::string(scheme) == "oracle") {
                oracle_perf = perf;
                row.push_back(TextTable::percent(perf, 1));
            } else {
                row.push_back(oracle_perf > 0.0
                                  ? TextTable::percent(perf / oracle_perf,
                                                       1)
                                  : "-");
            }
        }
        t.addRow(row);
    }
    t.print(std::cout);
    bench::maybeWriteCsv(t, "fig10_bg_" + swept);
    std::cout << "\n";
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 10: mean LC performance normalized to ORACLE "
                "(three co-located LC jobs)");
    runMix("img-dnn", "xapian", "memcached");
    runMix("specjbb", "masstree", "xapian");

    printBanner(std::cout,
                "Figure 10 (supplementary): the same sweep with a BG "
                "job, where the schemes separate");
    runMixWithBg("img-dnn", "xapian", "memcached", "streamcluster");
    return 0;
}

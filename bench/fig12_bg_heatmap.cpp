/**
 * @file
 * Regenerates Figure 12: normalized performance of a BG job
 * (streamcluster) co-located with xapian (x) and memcached (y) at
 * varying loads, per scheme. Paper result: CLITE within ~5% of
 * ORACLE for most loads and far ahead of PARTIES (darker is better).
 */

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "harness/analysis.h"
#include "workloads/catalog.h"

using namespace clite;

int
main()
{
    printBanner(std::cout,
                "Figure 12: streamcluster performance (vs isolated) when "
                "co-located with xapian (x) and memcached (y)");

    std::vector<double> grid = bench::standardGrid();
    TextTable summary({"Scheme", "Mean BG perf", "Cells with QoS met"});

    for (const char* scheme : {"parties", "clite", "oracle"}) {
        std::cout << scheme << " (cell: BG perf % of isolated; '-' = QoS "
                     "unmet)\n";
        std::vector<std::string> headers = {"memcached \\ xapian"};
        for (double x : grid)
            headers.push_back(TextTable::percent(x, 0));
        TextTable t(headers);

        double sum = 0.0;
        int met = 0;
        for (size_t yi = grid.size(); yi-- > 0;) {
            std::vector<std::string> row = {
                TextTable::percent(grid[yi], 0)};
            for (size_t xi = 0; xi < grid.size(); ++xi) {
                harness::ServerSpec spec;
                spec.jobs = {workloads::lcJob("xapian", grid[xi]),
                             workloads::lcJob("memcached", grid[yi]),
                             workloads::bgJob("streamcluster")};
                spec.seed = 700 + yi * grid.size() + xi;
                harness::SchemeOutcome out =
                    harness::runScheme(scheme, spec, spec.seed);
                if (out.truth.all_qos_met) {
                    double perf =
                        harness::meanBgPerformance(out.truth_obs);
                    sum += perf;
                    ++met;
                    row.push_back(TextTable::percent(perf, 0));
                } else {
                    row.push_back("-");
                }
            }
            t.addRow(row);
        }
        t.print(std::cout);
        std::cout << "\n";
        summary.addRow({scheme,
                        met ? TextTable::percent(sum / met, 1) : "-",
                        TextTable::num(static_cast<long long>(met)) + "/" +
                            TextTable::num(static_cast<long long>(
                                grid.size() * grid.size()))});
    }
    summary.print(std::cout);
    return 0;
}

/**
 * @file
 * Resource-dimensionality scaling (Sec. 4: "CLITE is agnostic to the
 * number of resources, number of jobs, and job characteristics for
 * better scalability and portability"): the same job mix partitioned
 * over the 3-resource testbed vs the full 6-resource server (adding
 * memory capacity, disk and network bandwidth — Table 1's complete
 * set). Reports search cost and result quality per scheme; the
 * 18-dimensional space is where the dropout-copy and constrained-
 * acquisition machinery earn their keep (exhaustive search is already
 * 2.7 billion configurations there).
 */

#include <iostream>

#include "common/table.h"
#include "harness/analysis.h"
#include "harness/schemes.h"
#include "workloads/catalog.h"

using namespace clite;

int
main()
{
    printBanner(std::cout,
                "Resource-count scaling: xapian@40% + memcached@30% + "
                "canneal on 3 vs 6 partitionable resources");

    for (bool all_resources : {false, true}) {
        platform::ServerConfig config =
            all_resources
                ? platform::ServerConfig::xeonSilver4114AllResources()
                : platform::ServerConfig::xeonSilver4114();
        std::cout << config.resourceCount() << " resources ("
                  << TextTable::num(static_cast<long long>(
                         config.configurationCount(3)))
                  << " configurations, "
                  << 3 * config.resourceCount() << " dimensions)\n";

        TextTable t({"Scheme", "Samples", "QoS (truth)", "BG perf",
                     "Score"});
        for (const char* scheme :
             {"clite", "parties", "rand+", "genetic"}) {
            harness::ServerSpec spec;
            spec.jobs = {workloads::lcJob("xapian", 0.4),
                         workloads::lcJob("memcached", 0.3),
                         workloads::bgJob("canneal")};
            spec.all_resources = all_resources;
            spec.seed = 17;
            harness::SchemeOutcome out =
                harness::runScheme(scheme, spec, 17);
            t.addRow({scheme,
                      TextTable::num(static_cast<long long>(
                          out.result.samples)),
                      out.truth.all_qos_met ? "met" : "MISSED",
                      TextTable::percent(
                          harness::meanBgPerformance(out.truth_obs), 1),
                      TextTable::num(out.truth.score, 4)});
        }
        t.print(std::cout);
        std::cout << "\n";
    }
    std::cout << "CLITE's sample count grows modestly with the added\n"
                 "dimensions while QoS stays satisfied - the paper's\n"
                 "portability claim for the full Table 1 resource set.\n";
    return 0;
}

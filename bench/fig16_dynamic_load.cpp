/**
 * @file
 * Regenerates Figure 16: dynamic adaptation. memcached's load steps
 * 10% -> 20% -> 30% while img-dnn and masstree stay at 10% and
 * fluidanimate runs in the background; CLITE is re-invoked on each
 * step, re-partitions, and stabilizes to a new configuration with the
 * BG job's stable performance decreasing as memcached takes more
 * resources.
 */

#include <iostream>

#include "common/table.h"
#include "harness/dynamic.h"
#include "workloads/catalog.h"

using namespace clite;

int
main()
{
    printBanner(std::cout,
                "Figure 16: CLITE adaptation to memcached load steps "
                "10% -> 20% -> 30% (img-dnn, masstree @10%; "
                "fluidanimate BG)");

    harness::ServerSpec spec;
    spec.jobs = {workloads::lcJob("img-dnn", 0.1),
                 workloads::lcJob("memcached", 0.1),
                 workloads::lcJob("masstree", 0.1),
                 workloads::bgJob("fluidanimate")};
    spec.seed = 77;

    harness::DynamicResult r =
        harness::runDynamicScenario(spec, 1, {0.1, 0.2, 0.3}, 6);

    TextTable t({"Window", "memcached load", "Phase", "memcached cores",
                 "memcached ways", "memcached bw", "BG perf", "QoS"});
    for (const auto& step : r.timeline) {
        // Print exploration sparsely, stable windows fully.
        if (step.exploring && step.sample % 6 != 1)
            continue;
        t.addRow({TextTable::num(static_cast<long long>(step.sample)),
                  TextTable::percent(step.changed_load, 0),
                  step.exploring ? "search" : "stable",
                  TextTable::num(static_cast<long long>(step.alloc[1][0])),
                  TextTable::num(static_cast<long long>(step.alloc[1][1])),
                  TextTable::num(static_cast<long long>(step.alloc[1][2])),
                  TextTable::percent(step.bg_perf, 0),
                  step.all_qos_met ? "met" : "-"});
    }
    t.print(std::cout);

    TextTable s({"Phase", "Samples to re-stabilize"});
    for (size_t i = 0; i < r.stabilization_samples.size(); ++i)
        s.addRow({"load " + TextTable::percent(0.1 * double(i + 1), 0),
                  TextTable::num(static_cast<long long>(
                      r.stabilization_samples[i]))});
    std::cout << "\n";
    s.print(std::cout);
    std::cout << "\nall stable phases met QoS: "
              << (r.all_phases_feasible ? "yes" : "NO") << "\n";
    return 0;
}

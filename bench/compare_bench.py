#!/usr/bin/env python3
"""Compare two benchmark JSON files and flag regressions.

Usage:
    python3 bench/compare_bench.py BASELINE.json CANDIDATE.json \
        [--threshold 1.25] [--families acquisition,cholesky] [--strict]
    python3 bench/compare_bench.py --mode warmstart \
        BENCH_warmstart.json NEW_warmstart.json [--strict]
    python3 bench/compare_bench.py --mode fleet \
        FLEET_scaling.json NEW_fleet.json [--strict]

The default mode compares google-benchmark output. `--mode components`
is the same comparison hardened for the committed component baseline
(BENCH_components.json): the observation-window hot paths
(hyper-parameter probe, DES measure) join the watched families, the
hyper-fit probe families must additionally meet absolute time
ceilings (PROBE_CEILINGS_MS — the subset-tier 3x floor survives
baseline regeneration), and a
candidate produced by a non-Release build — a ".DEBUG"-stamped file
name or a `clite_build_type` context other than "release" — fails the
run outright instead of warning, so a debug JSON can never slip in as
the baseline. `--mode warmstart`
compares two bench/warm_start emissions (BENCH_warmstart.json)
instead: it checks that warm starts still converge no slower than the
committed baseline and that the exact-hit improvement over cold stays
above the floor the warm-start design promises (30% fewer windows).
`--mode fleet` compares two bench/fleet_scaling emissions
(FLEET_scaling.json): points are matched by (mode, nodes) across both
fleet engines, final QoS-met fraction must not regress, ms/window
must stay within the threshold ratio, and at every node count with
both DES rows the coarse-search fleet must beat fine-mode on
ms/window while staying inside the 25% QoS accuracy band. `--mode budget` compares two
bench/budget_sweep emissions (BENCH_budget.json): the budgeted
controller must keep reducing QoS-violating sample-seconds by at
least the design floor (30% vs the EI-threshold baseline) and its
final ground-truth score must stay within tolerance of the
baseline's. `--mode traffic` compares two bench/fig_traffic emissions
(BENCH_traffic.json): on the flash-crowd trace the transient-riding
policy must keep avoiding at least 50% of the naive arm's
re-optimizations while its violating-window fraction rises by at most
two points.

Matches benchmarks by name, prints a ratio table (candidate / baseline
real time), and emits a warning for every benchmark in the watched
families whose time regressed by more than the threshold. Warnings use
GitHub Actions' `::warning::` syntax so they surface as annotations in
CI without failing the job — microbenchmark numbers from shared
runners are too noisy for a hard gate by default; pass --strict to
turn regressions into a nonzero exit instead.

Only needs the standard library (CI images have no pip step).
"""

import argparse
import json
import sys

# Benchmark-name substrings (lowercased) watched for regressions by
# default: the surrogate-maintenance and acquisition hot paths that
# docs/PERF.md tracks.
DEFAULT_FAMILIES = ["acquisition", "cholesky", "predictbatch"]

# Additional families `--mode components` watches: the observation-
# window pipeline (GP hyper-fit probes and the DES measurement).
COMPONENT_FAMILIES = DEFAULT_FAMILIES + ["hyperparameterprobe",
                                         "desmodelmeasure"]

# Absolute real-time ceilings (ms) the candidate must meet in
# `--mode components`, independent of the ratio check. The committed
# baseline regenerates with the fast subset-tier numbers, so a
# relative threshold alone cannot hold the 3x floor the subset probe
# tier bought (docs/PERF.md): each ceiling is one third of the
# pre-subset exact-fit cost at that history size — 23.19 ms measured
# at n=256, ~185 ms O(n^3)-extrapolated at n=512.
PROBE_CEILINGS_MS = {
    "BM_GpHyperparameterProbe/256": 7.0,
    "BM_GpHyperparameterProbe/512": 62.0,
}


def load_benchmarks(path):
    """Return {name: real_time_ns} for a google-benchmark JSON file."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for bench in data.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        unit = bench.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            continue
        out[bench["name"]] = float(bench["real_time"]) * scale
    return out, data.get("context", {})


# Minimum acceptable exact-hit improvement over cold (fraction of
# windows saved); matches the warm-start design target in docs/STORE.md.
WARMSTART_IMPROVEMENT_FLOOR = 0.30


def compare_warmstart(args):
    """Diff two bench/warm_start JSON files (BENCH_warmstart.json)."""
    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.candidate) as f:
        cand = json.load(f)
    problems = []

    print(f"{'metric':<24}  {'base':>10}  {'cand':>10}")
    for key in ("cold_windows_mean", "exact_windows_mean",
                "similar_windows_mean", "exact_improvement",
                "similar_improvement"):
        b = base.get("overall", {}).get(key)
        c = cand.get("overall", {}).get(key)
        print(f"{key:<24}  {b!s:>10}  {c!s:>10}")

    improvement = cand.get("overall", {}).get("exact_improvement", 0.0)
    if improvement < WARMSTART_IMPROVEMENT_FLOOR:
        problems.append(
            f"exact-hit improvement {improvement:.2f} fell below the "
            f"{WARMSTART_IMPROVEMENT_FLOOR:.2f} floor")
    base_exact = base.get("overall", {}).get("exact_windows_mean")
    cand_exact = cand.get("overall", {}).get("exact_windows_mean")
    if base_exact and cand_exact and cand_exact > base_exact * args.threshold:
        problems.append(
            f"exact-hit windows regressed: {cand_exact} vs committed "
            f"{base_exact} (threshold {args.threshold:.2f}x)")

    for p in problems:
        print(f"::warning::warm-start regression: {p}")
    if problems:
        return 1 if args.strict else 0
    print("warm-start convergence matches the committed baseline")
    return 0


# Minimum acceptable reduction in QoS-violating sample-seconds of the
# budgeted arm over the EI-threshold baseline (fraction); matches the
# budget-policy design target in docs/BUDGET.md.
BUDGET_REDUCTION_FLOOR = 0.30

# Largest tolerated final ground-truth score deficit of the budgeted
# arm vs the baseline (Eq. 3 scale): "reached the same final score".
BUDGET_SCORE_GAP_TOLERANCE = 0.02


def compare_budget(args):
    """Diff two bench/budget_sweep JSON files (BENCH_budget.json)."""
    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.candidate) as f:
        cand = json.load(f)
    problems = []

    print(f"{'metric':<26}  {'base':>10}  {'cand':>10}")
    for key in ("baseline_violating_mean", "budget_violating_mean",
                "reduction", "score_gap", "budget_aborted_windows"):
        b = base.get("overall", {}).get(key)
        c = cand.get("overall", {}).get(key)
        print(f"{key:<26}  {b!s:>10}  {c!s:>10}")

    overall = cand.get("overall", {})
    reduction = overall.get("reduction", 0.0)
    if reduction < BUDGET_REDUCTION_FLOOR:
        problems.append(
            f"violating-seconds reduction {reduction:.2f} fell below "
            f"the {BUDGET_REDUCTION_FLOOR:.2f} floor")
    score_gap = overall.get("score_gap", 0.0)
    if score_gap > BUDGET_SCORE_GAP_TOLERANCE:
        problems.append(
            f"budgeted final score trails the baseline by "
            f"{score_gap:.4f} (> {BUDGET_SCORE_GAP_TOLERANCE} "
            f"tolerance): not reaching the same final score")
    base_vio = base.get("overall", {}).get("budget_violating_mean")
    cand_vio = overall.get("budget_violating_mean")
    if base_vio and cand_vio and cand_vio > base_vio * args.threshold:
        problems.append(
            f"budgeted violating seconds regressed: {cand_vio} vs "
            f"committed {base_vio} (threshold {args.threshold:.2f}x)")
    # The sweep must exercise the early-abort machinery it claims to
    # measure: zero aborted windows means the feature is dark.
    if overall.get("budget_aborted_windows", 0) <= 0:
        problems.append("budgeted sweep aborted zero windows: "
                        "early-abort looks disabled")

    for p in problems:
        print(f"::warning::budget regression: {p}")
    if problems:
        return 1 if args.strict else 0
    print("budget-bounded search matches the committed baseline")
    return 0


# Minimum acceptable fraction of naive re-optimizations the
# transient-riding policy avoids on the flash-crowd shape; matches the
# traffic-policy design target in docs/TRAFFIC.md.
TRAFFIC_REOPT_REDUCTION_FLOOR = 0.50

# Largest tolerated increase in the violating-window fraction the
# riding policy may pay for those avoided searches (absolute, on a
# [0, 1] fraction — 0.02 = two points).
TRAFFIC_VIOLATING_INCREASE_TOLERANCE = 0.02


def compare_traffic(args):
    """Diff two bench/fig_traffic JSON files (BENCH_traffic.json)."""
    with open(args.baseline) as f:
        base = json.load(f)
    with open(args.candidate) as f:
        cand = json.load(f)
    problems = []

    print(f"{'metric':<26}  {'base':>10}  {'cand':>10}")
    for key in ("naive_reopts_mean", "riding_reopts_mean",
                "reopt_reduction", "violating_increase",
                "transients_ridden_mean"):
        b = base.get("flash_crowd", {}).get(key)
        c = cand.get("flash_crowd", {}).get(key)
        print(f"{key:<26}  {b!s:>10}  {c!s:>10}")

    flash = cand.get("flash_crowd", {})
    # The sweep must actually provoke the naive arm: a flash-crowd
    # trace that never triggers a search measures nothing.
    if flash.get("naive_reopts_mean", 0.0) <= 0.0:
        problems.append("naive arm ran zero re-optimizations: the "
                        "flash-crowd trace is not provoking searches")
    reduction = flash.get("reopt_reduction", 0.0)
    if reduction < TRAFFIC_REOPT_REDUCTION_FLOOR:
        problems.append(
            f"flash-crowd reopt reduction {reduction:.2f} fell below "
            f"the {TRAFFIC_REOPT_REDUCTION_FLOOR:.2f} floor")
    increase = flash.get("violating_increase", 0.0)
    if increase > TRAFFIC_VIOLATING_INCREASE_TOLERANCE:
        problems.append(
            f"riding policy's violating-window fraction rose by "
            f"{increase:.3f} (> "
            f"{TRAFFIC_VIOLATING_INCREASE_TOLERANCE} tolerance)")
    # Riding must be exercised, not merely configured: zero ridden
    # transients means the hysteresis is dark.
    if flash.get("transients_ridden_mean", 0.0) <= 0.0:
        problems.append("riding arm rode zero transients: the "
                        "RideTransients hysteresis looks disabled")

    for p in problems:
        print(f"::warning::traffic regression: {p}")
    if problems:
        return 1 if args.strict else 0
    print("traffic-policy sweep matches the committed baseline")
    return 0


# Absolute QoS-met-fraction drop (candidate vs baseline, per point)
# tolerated before a fleet point is flagged: placement is seeded but a
# changed controller legitimately shifts a window or two.
FLEET_QOS_TOLERANCE = 0.02

# Fleet rows faster than this (ms/window, baseline side) skip the
# ms/window ratio check: at sub-millisecond windows a 25% ratio is
# scheduler jitter, not signal (a 1-node lockstep row can swing
# 0.1 ms run to run). The QoS check still applies to every row.
FLEET_TIME_FLOOR_MS = 2.0

# Accuracy band for the coarse-search DES rows: the coarse fleet's
# final QoS-met fraction may differ from the fine-mode fleet at the
# same node count by at most this much (absolute, on a [0, 1]
# fraction) — the 25% p95 band docs/MODEL.md documents for the
# event-budgeted measurement.
FLEET_COARSE_QOS_BAND = 0.25


def compare_fleet(args):
    """Diff two bench/fleet_scaling JSON files (FLEET_scaling.json)."""
    def load_points(path):
        with open(path) as f:
            data = json.load(f)
        return {(p.get("mode", "lockstep"), p["nodes"]): p
                for p in data.get("points", [])}

    base = load_points(args.baseline)
    cand = load_points(args.candidate)
    common = sorted(set(base) & set(cand))
    if not common:
        print("::warning::no common (mode, nodes) fleet points between "
              f"{args.baseline} and {args.candidate}")
        return 1
    for key in sorted(set(base) - set(cand)):
        print(f"  (baseline only) {key[0]}@{key[1]} nodes")
    for key in sorted(set(cand) - set(base)):
        print(f"  (candidate only) {key[0]}@{key[1]} nodes")

    problems = []
    print(f"{'point':<16}  {'qos base':>9}  {'qos cand':>9}  "
          f"{'ms base':>9}  {'ms cand':>9}  ratio")
    for key in common:
        b, c = base[key], cand[key]
        label = f"{key[0]}@{key[1]}"
        qos_b = b.get("qos_met_final", 0.0)
        qos_c = c.get("qos_met_final", 0.0)
        ms_b = b.get("ms_per_window", 0.0)
        ms_c = c.get("ms_per_window", 0.0)
        ratio = ms_c / ms_b if ms_b > 0 else float("inf")
        flag = ""
        if qos_c < qos_b - FLEET_QOS_TOLERANCE:
            problems.append(
                f"{label}: final QoS-met fell {qos_b:.3f} -> {qos_c:.3f}")
            flag = "  <-- QOS"
        if ratio > args.threshold and ms_b >= FLEET_TIME_FLOOR_MS:
            problems.append(
                f"{label}: ms/window is {ratio:.2f}x the baseline "
                f"(threshold {args.threshold:.2f}x)")
            flag += "  <-- TIME"
        print(f"{label:<16}  {qos_b:>9.3f}  {qos_c:>9.3f}  "
              f"{ms_b:>9.2f}  {ms_c:>9.2f}  {ratio:5.2f}{flag}")

    # Coarse-search gate: wherever the sweep measured both DES rows at
    # a node count, coarse search probes must actually buy wall time —
    # ms/window strictly below the fine-mode row — while the final
    # QoS-met fraction stays inside the documented accuracy band. The
    # gate runs on the candidate alone so a regenerated baseline can
    # never grandfather in a coarse mode that stopped paying off.
    des_nodes = sorted(n for (m, n) in cand
                       if m == "async-des-fine"
                       and ("async-des-coarse", n) in cand)
    base_des = sorted({k for k in base
                       if k[0] in ("async-des-fine", "async-des-coarse")})
    if base_des and not des_nodes:
        problems.append("baseline has DES coarse/fine fleet rows but "
                        "the candidate measured none")
    for n in des_nodes:
        fine = cand[("async-des-fine", n)]
        coarse = cand[("async-des-coarse", n)]
        ms_f = fine.get("ms_per_window", 0.0)
        ms_c = coarse.get("ms_per_window", 0.0)
        if ms_f <= 0 or ms_c >= ms_f:
            problems.append(
                f"async-des@{n}: coarse search is not faster than fine "
                f"({ms_c:.2f} vs {ms_f:.2f} ms/window)")
        else:
            print(f"  coarse win @{n} nodes: {ms_f:.2f} -> {ms_c:.2f} "
                  f"ms/window ({ms_f / ms_c:.2f}x)")
        qos_gap = abs(coarse.get("qos_met_final", 0.0)
                      - fine.get("qos_met_final", 0.0))
        if qos_gap > FLEET_COARSE_QOS_BAND:
            problems.append(
                f"async-des@{n}: coarse QoS-met strays {qos_gap:.3f} "
                f"from fine-mode (band {FLEET_COARSE_QOS_BAND:.2f})")

    # The async engine's robustness counters must show the chaos was
    # absorbed, not absent: the sweep injects worker churn, so a
    # candidate with zero retries is not running the chaos it claims.
    async_points = [cand[k] for k in cand if k[0] == "async"]
    if async_points and not any(p.get("tasks_retried", 0) > 0
                                for p in async_points):
        problems.append("async sweep shows zero retries: fault "
                        "injection looks disabled")

    for p in problems:
        print(f"::warning::fleet regression: {p}")
    if problems:
        return 1 if args.strict else 0
    print("fleet scaling matches the committed baseline "
          f"({len(common)} points)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--threshold", type=float, default=1.25,
                        help="warn when candidate/baseline exceeds this "
                             "(default 1.25 = 25%% slower)")
    parser.add_argument("--families", default=",".join(DEFAULT_FAMILIES),
                        help="comma-separated name substrings to watch "
                             "(case-insensitive)")
    parser.add_argument("--mode",
                        choices=["benchmark", "components", "warmstart",
                                 "fleet", "budget", "traffic"],
                        default="benchmark",
                        help="input format: google-benchmark JSON "
                             "(default; 'components' adds the "
                             "observation-window families and makes a "
                             "non-Release candidate a hard error), "
                             "bench/warm_start JSON, "
                             "bench/fleet_scaling JSON, "
                             "bench/budget_sweep JSON, or "
                             "bench/fig_traffic JSON")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any watched family regresses")
    args = parser.parse_args()

    if args.mode == "warmstart":
        return compare_warmstart(args)
    if args.mode == "fleet":
        return compare_fleet(args)
    if args.mode == "budget":
        return compare_budget(args)
    if args.mode == "traffic":
        return compare_traffic(args)
    if (args.mode == "components"
            and args.families == ",".join(DEFAULT_FAMILIES)):
        args.families = ",".join(COMPONENT_FAMILIES)

    base, base_ctx = load_benchmarks(args.baseline)
    cand, cand_ctx = load_benchmarks(args.candidate)
    families = [f.strip().lower() for f in args.families.split(",")
                if f.strip()]

    for label, ctx, path in (("baseline", base_ctx, args.baseline),
                             ("candidate", cand_ctx, args.candidate)):
        build = ctx.get("clite_build_type")
        debug_named = ".DEBUG" in path
        if args.mode == "components" and (debug_named or
                                          (build and build != "release")):
            # A debug-stamped or debug-built JSON can never serve as
            # (or be compared against) the committed component
            # baseline: fail loudly, --strict or not.
            print(f"::error::{label} {path} is not a Release "
                  f"components baseline (clite_build_type="
                  f"{build or 'missing'}"
                  f"{', .DEBUG-stamped name' if debug_named else ''})")
            return 1
        if build and build != "release":
            print(f"::warning::{label} benchmark JSON came from a "
                  f"'{build}' build of clite; ratios are unreliable")

    common = sorted(set(base) & set(cand))
    if not common:
        print("::warning::no common benchmark names between "
              f"{args.baseline} and {args.candidate}")
        return 1

    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    for name in only_base:
        print(f"  (baseline only) {name}")
    for name in only_cand:
        print(f"  (candidate only) {name}")

    width = max(len(n) for n in common)
    print(f"{'benchmark':<{width}}  {'base':>12}  {'cand':>12}  ratio")
    regressions = []
    for name in common:
        ratio = cand[name] / base[name] if base[name] > 0 else float("inf")
        watched = any(f in name.lower() for f in families)
        flag = ""
        if watched and ratio > args.threshold:
            regressions.append((name, ratio))
            flag = "  <-- REGRESSION"
        print(f"{name:<{width}}  {base[name]:>10.0f}ns  "
              f"{cand[name]:>10.0f}ns  {ratio:5.2f}{flag}")

    # Candidate-side absolute ceilings: the probe families must keep
    # the subset-tier speedup even after the committed baseline is
    # regenerated with the fast numbers (a pure ratio check would let
    # the floor erode one 1.25x step per regeneration).
    ceiling_problems = []
    if args.mode == "components":
        for name, ceiling_ms in sorted(PROBE_CEILINGS_MS.items()):
            got = cand.get(name)
            if got is None:
                ceiling_problems.append(
                    f"{name} is missing from the candidate; the probe "
                    f"family must stay measured")
            elif got > ceiling_ms * 1e6:
                ceiling_problems.append(
                    f"{name} took {got / 1e6:.2f} ms, above the "
                    f"{ceiling_ms:.1f} ms absolute ceiling")
            else:
                print(f"  ceiling ok: {name} {got / 1e6:.2f} ms "
                      f"<= {ceiling_ms:.1f} ms")

    for name, ratio in regressions:
        print(f"::warning::perf regression: {name} is {ratio:.2f}x the "
              f"committed baseline (threshold {args.threshold:.2f}x)")
    for p in ceiling_problems:
        print(f"::warning::probe ceiling: {p}")
    if regressions or ceiling_problems:
        if regressions:
            print(f"{len(regressions)} regression(s) in watched families "
                  f"({', '.join(families)})", file=sys.stderr)
        if ceiling_problems:
            print(f"{len(ceiling_problems)} probe-ceiling failure(s)",
                  file=sys.stderr)
        return 1 if args.strict else 0
    print("no regressions above "
          f"{args.threshold:.2f}x in watched families")
    return 0


if __name__ == "__main__":
    sys.exit(main())

/**
 * @file
 * Regenerates Figure 8: the Figure 7 experiment with one
 * throughput-oriented BG job (blackscholes) added — max supported
 * memcached load drops everywhere (more X cells), and CLITE still
 * tracks ORACLE while beating PARTIES.
 */

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "harness/maxload.h"

using namespace clite;

int
main(int argc, char** argv)
{
    bench::applyThreadFlag(argc, argv);
    printBanner(std::cout,
                "Figure 8: max memcached load with masstree (x), "
                "img-dnn (y) and blackscholes (BG)");

    std::vector<double> grid = bench::standardGrid();
    TextTable summary({"Scheme", "Mean supported memcached load"});
    for (const char* scheme : {"parties", "clite", "oracle"}) {
        harness::LoadHeatmap map = harness::maxLoadHeatmap(
            scheme, "masstree", "img-dnn", grid, "memcached",
            {"blackscholes"});
        bench::printHeatmap(std::cout, map, "masstree", "img-dnn");
        bench::maybeWriteCsv(bench::heatmapTable(map, "masstree", "img-dnn"),
                             std::string("fig08_") + scheme);
        summary.addRow({scheme,
                        TextTable::percent(bench::heatmapMean(map), 1)});
    }
    summary.print(std::cout);
    return 0;
}

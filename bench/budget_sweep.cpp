/**
 * @file
 * Budget sweep: QoS-violating sample-seconds to reach the baseline's
 * final score, EI-threshold controller vs the budget-bounded one
 * (bo/budget.h: finite window-second budget, cost-normalized
 * acquisition, lookahead cutoff, mid-window early-abort).
 *
 * Every search sample costs real observation-window time at degraded
 * service; samples whose window was not a clean all-QoS-met
 * measurement are time some LC job spent violating its target. The
 * headline metric charges each run the violating sample-seconds it
 * accumulated up to the point its best usable sample first reached
 * the baseline's final score (less a small tolerance) — "how much
 * QoS damage did reaching this quality cost". The budgeted
 * controller aborts clearly-violating windows a quarter of the way
 * in and steers probes by EI-per-expected-cost, so it should reach
 * the same quality for >= 30% fewer violating seconds (the gate
 * bench/compare_bench.py --mode budget enforces), while its final
 * ground-truth score stays within tolerance of the baseline's.
 *
 * Everything underneath is deterministic (seeded noise, seeded BO,
 * thread-count-invariant pool), so the emitted JSON is byte-stable
 * across machines: `--json=PATH` writes BENCH_budget.json, which is
 * committed and diffed in CI. Regenerate after an intended behaviour
 * change with:
 *
 *     ./bench/budget_sweep --json=BENCH_budget.json
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/clite.h"
#include "core/score.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

using namespace clite;

namespace {

struct Mix
{
    const char* label;
    double load0; ///< First LC job's load.
    double load1; ///< Second LC job's load.
};

// The warm-start sweep's loaded two-LC-plus-BG mixes: heavy enough
// that the equal-share bootstrap point violates at least one QoS
// target (so the search actually spends violating windows), light
// enough to be feasible.
const Mix kMixes[] = {
    {"img-dnn+memcached+fluidanimate", 0.60, 0.70},
    {"xapian+memcached+canneal", 0.70, 0.70},
    {"img-dnn+xapian+canneal", 0.90, 0.50},
};

constexpr int kSeeds = 5;

/** Window-second budget handed to the budgeted arm (30 windows). */
constexpr double kBudgetSeconds = 80.0;

/** "Same final score" tolerance on the Eq. 3 scale. */
constexpr double kScoreTolerance = 0.005;

std::vector<workloads::JobSpec>
makeJobs(const Mix& mix)
{
    std::string lc0 = mix.label;
    std::string rest = lc0.substr(lc0.find('+') + 1);
    lc0 = lc0.substr(0, lc0.find('+'));
    std::string lc1 = rest.substr(0, rest.find('+'));
    std::string bg = rest.substr(rest.find('+') + 1);
    return {
        workloads::lcJob(lc0, mix.load0),
        workloads::lcJob(lc1, mix.load1),
        workloads::bgJob(bg),
    };
}

platform::SimulatedServer
makeServer(const Mix& mix, uint64_t seed)
{
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), makeJobs(mix),
        std::make_unique<workloads::AnalyticModel>(), seed, 0.02);
}

/**
 * Violating sample-seconds accumulated until the run's best usable
 * sample first reaches @p target (the whole run's violating cost when
 * it never does; @p reached reports which).
 */
double
violatingSecondsToTarget(const core::ControllerResult& r, double target,
                         bool* reached)
{
    double vio = 0.0;
    for (const auto& rec : r.trace) {
        if (!(rec.usable() && rec.all_qos_met))
            vio += rec.cost_seconds;
        if (rec.usable() && rec.score >= target) {
            if (reached != nullptr)
                *reached = true;
            return vio;
        }
    }
    if (reached != nullptr)
        *reached = false;
    return vio;
}

/** Ground-truth (noise-free) score of the run's final incumbent. */
double
truthScore(platform::SimulatedServer& server,
           const core::ControllerResult& r)
{
    if (!r.best.has_value())
        return 0.0;
    return core::scoreObservations(server.observeNoiseless(*r.best)).score;
}

struct ArmStats
{
    double violating_sum = 0.0; ///< Violating seconds to target.
    double charged_sum = 0.0;   ///< Total window-seconds spent.
    double truth_sum = 0.0;     ///< Ground-truth final score.
    double samples_sum = 0.0;   ///< Samples per run.
    int aborted = 0;            ///< Early-aborted windows.
    int reached = 0;            ///< Runs that reached the target.
    int runs = 0;

    double violatingMean() const
    {
        return runs ? violating_sum / runs : 0.0;
    }
    double truthMean() const { return runs ? truth_sum / runs : 0.0; }
    double chargedMean() const { return runs ? charged_sum / runs : 0.0; }
    double samplesMean() const { return runs ? samples_sum / runs : 0.0; }
};

struct MixResult
{
    std::string label;
    ArmStats baseline, budget;
};

MixResult
runMix(const Mix& mix)
{
    MixResult out;
    out.label = mix.label;
    for (int s = 0; s < kSeeds; ++s) {
        const uint64_t noise_seed = 100 + uint64_t(s);
        const uint64_t bo_seed = 200 + uint64_t(s);

        // EI-threshold baseline: default (inert) budget.
        core::CliteOptions base_opts;
        base_opts.seed = bo_seed;
        auto base_server = makeServer(mix, noise_seed);
        core::CliteController base_ctl(base_opts);
        core::ControllerResult base = base_ctl.run(base_server);

        // Both arms chase the baseline's own final quality.
        const double target = base.best_score - kScoreTolerance;
        bool reached = false;
        out.baseline.violating_sum +=
            violatingSecondsToTarget(base, target, &reached);
        out.baseline.reached += reached ? 1 : 0;
        out.baseline.charged_sum += base.chargedSeconds();
        out.baseline.truth_sum += truthScore(base_server, base);
        out.baseline.samples_sum += base.samples;
        ++out.baseline.runs;

        // Budget-bounded arm: same seeds, fresh identical server.
        core::CliteOptions bud_opts;
        bud_opts.seed = bo_seed;
        bud_opts.budget.budget_seconds = kBudgetSeconds;
        auto bud_server = makeServer(mix, noise_seed);
        core::CliteController bud_ctl(bud_opts);
        core::ControllerResult bud = bud_ctl.run(bud_server);

        out.budget.violating_sum +=
            violatingSecondsToTarget(bud, target, &reached);
        out.budget.reached += reached ? 1 : 0;
        out.budget.charged_sum += bud.chargedSeconds();
        out.budget.truth_sum += truthScore(bud_server, bud);
        out.budget.samples_sum += bud.samples;
        for (const auto& rec : bud.trace)
            if (rec.status == core::SampleStatus::Aborted)
                ++out.budget.aborted;
        ++out.budget.runs;
    }
    return out;
}

std::string
g(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

void
writeJson(const std::vector<MixResult>& results, const std::string& path)
{
    ArmStats baseline, budget;
    for (const MixResult& r : results) {
        baseline.violating_sum += r.baseline.violating_sum;
        baseline.charged_sum += r.baseline.charged_sum;
        baseline.truth_sum += r.baseline.truth_sum;
        baseline.reached += r.baseline.reached;
        baseline.runs += r.baseline.runs;
        budget.violating_sum += r.budget.violating_sum;
        budget.charged_sum += r.budget.charged_sum;
        budget.truth_sum += r.budget.truth_sum;
        budget.aborted += r.budget.aborted;
        budget.reached += r.budget.reached;
        budget.runs += r.budget.runs;
    }
    const double reduction =
        1.0 - budget.violatingMean() / baseline.violatingMean();
    const double score_gap = baseline.truthMean() - budget.truthMean();

    std::ofstream out(path, std::ios::trunc);
    if (!out.good()) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    out << "{\n  \"bench\": \"budget_sweep\",\n";
    out << "  \"metric\": \"QoS-violating sample-seconds to reach the "
           "baseline's final score\",\n";
    out << "  \"budget_seconds\": " << g(kBudgetSeconds) << ",\n";
    out << "  \"seeds_per_mix\": " << kSeeds << ",\n  \"mixes\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const MixResult& r = results[i];
        const double mix_reduction =
            1.0 - r.budget.violatingMean() / r.baseline.violatingMean();
        out << "    {\"mix\": \"" << r.label << "\",\n"
            << "     \"baseline_violating_mean\": "
            << g(r.baseline.violatingMean())
            << ", \"budget_violating_mean\": "
            << g(r.budget.violatingMean())
            << ", \"reduction\": " << g(mix_reduction) << ",\n"
            << "     \"baseline_truth_mean\": "
            << g(r.baseline.truthMean())
            << ", \"budget_truth_mean\": " << g(r.budget.truthMean())
            << ", \"budget_aborted_windows\": " << r.budget.aborted
            << ", \"budget_reached\": " << r.budget.reached
            << ", \"runs\": " << r.budget.runs << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"overall\": {\n";
    out << "    \"baseline_violating_mean\": "
        << g(baseline.violatingMean()) << ",\n";
    out << "    \"budget_violating_mean\": " << g(budget.violatingMean())
        << ",\n";
    out << "    \"reduction\": " << g(reduction) << ",\n";
    out << "    \"baseline_truth_mean\": " << g(baseline.truthMean())
        << ",\n";
    out << "    \"budget_truth_mean\": " << g(budget.truthMean()) << ",\n";
    out << "    \"score_gap\": " << g(score_gap) << ",\n";
    out << "    \"baseline_charged_mean\": " << g(baseline.chargedMean())
        << ",\n";
    out << "    \"budget_charged_mean\": " << g(budget.chargedMean())
        << ",\n";
    out << "    \"budget_aborted_windows\": " << budget.aborted << "\n";
    out << "  }\n}\n";
    std::cout << "[json written to " << path << "]\n";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::applyThreadFlag(argc, argv);
    std::string json_path;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;

    std::vector<MixResult> results;
    for (const Mix& mix : kMixes)
        results.push_back(runMix(mix));

    std::printf("%-34s %12s %12s %10s %10s\n",
                "mix (violating s to base score)", "baseline", "budgeted",
                "reduction", "truth gap");
    ArmStats baseline, budget;
    for (const MixResult& r : results) {
        std::printf("%-34s %12.1f %12.1f %9.1f%% %10.4f\n",
                    r.label.c_str(), r.baseline.violatingMean(),
                    r.budget.violatingMean(),
                    100.0 * (1.0 - r.budget.violatingMean() /
                                       r.baseline.violatingMean()),
                    r.baseline.truthMean() - r.budget.truthMean());
        baseline.violating_sum += r.baseline.violating_sum;
        baseline.truth_sum += r.baseline.truth_sum;
        baseline.runs += r.baseline.runs;
        budget.violating_sum += r.budget.violating_sum;
        budget.truth_sum += r.budget.truth_sum;
        budget.aborted += r.budget.aborted;
        budget.runs += r.budget.runs;
    }
    std::printf("%-34s %12.1f %12.1f %9.1f%% %10.4f\n", "overall",
                baseline.violatingMean(), budget.violatingMean(),
                100.0 * (1.0 - budget.violatingMean() /
                                   baseline.violatingMean()),
                baseline.truthMean() - budget.truthMean());
    std::printf("early-aborted windows (budgeted): %d\n", budget.aborted);

    if (!json_path.empty())
        writeJson(results, json_path);
    return 0;
}

/**
 * @file
 * Fleet scaling sweep: QoS-met fraction, BG performance and
 * scheduling activity as the cluster grows — in both fleet engines.
 *
 * Every fleet size runs the same admission pressure per node (two
 * jobs per node, ~60% latency-critical, including a slice of hot
 * full-load tenants that are infeasible wherever they are
 * co-located), so the sweep isolates the effect of scale on the
 * scheduler: more nodes mean more rescheduling destinations and a
 * better chance of absorbing an unservable-in-place job.
 *
 * Two modes run side by side:
 *
 *  - **lockstep** (Fleet::tick): the barrier-synchronized window loop,
 *    swept to 64 nodes — the determinism-golden configuration.
 *  - **async** (AsyncFleetEngine): the manager-worker engine with its
 *    default chaos (stragglers + hedging) plus a 5% worker-loss rate,
 *    swept to 1024 nodes — no barrier, so one slow node never stalls
 *    the fleet, and the robustness counters (retries, hedges,
 *    quarantines, sheds) are reported per point.
 *
 * Wall time per window fans node evaluations out on the global thread
 * pool (--threads=N, bit-identical results at any worker count).
 *
 * With CLITE_FLEET_JSON=<path> the per-size series is also written as
 * JSON (like BENCH_components.json for the component benchmarks), so
 * scaling regressions are visible across commits
 * (bench/compare_bench.py --mode fleet).
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "cluster/fleet.h"
#include "cluster/manager.h"
#include "common/table.h"
#include "workloads/catalog.h"

using namespace clite;

namespace {

struct ScalePoint
{
    const char* mode = "lockstep";
    int nodes = 0;
    int jobs = 0;
    double qos_met_mean = 0.0;
    double qos_met_final = 0.0;
    double bg_perf_mean = 0.0;
    int evictions = 0;
    int parked = 0;
    int pending = 0;
    double ms_per_window = 0.0;
    // Robustness counters (async mode; zero under lockstep).
    uint64_t retried = 0;
    uint64_t hedges_won = 0;
    uint64_t workers_lost = 0;
    uint64_t quarantined = 0;
    uint64_t dropped = 0;
};

cluster::FleetOptions
fleetOptions(int nodes)
{
    cluster::FleetOptions options;
    options.nodes = nodes;
    options.seed = 29;
    // Modest per-node search budgets: the sweep measures the fleet
    // layer, not per-node search quality.
    options.clite.max_iterations = 8;
    options.clite.acquisition_starts = 2;
    return options;
}

/** Admit this window's slice of the arrival schedule. */
int
admitWindow(cluster::Fleet& fleet, int w, int windows, int total_jobs,
            int admitted)
{
    const std::vector<std::string>& lc = workloads::lcWorkloadNames();
    const std::vector<std::string>& bg = workloads::bgWorkloadNames();
    int target = std::min(total_jobs,
                          (w + 1) * (2 * total_jobs / windows + 1));
    for (; admitted < target; ++admitted) {
        if (admitted % 10 == 9)
            fleet.admit(workloads::lcJob("masstree", 1.0));
        else if (admitted % 3 == 2)
            fleet.admit(workloads::bgJob(bg[size_t(admitted) % bg.size()]));
        else
            fleet.admit(workloads::lcJob(
                lc[size_t(admitted) % lc.size()], 0.3));
    }
    return admitted;
}

ScalePoint
runLockstep(int nodes, int windows)
{
    cluster::Fleet fleet(fleetOptions(nodes));
    const int total_jobs = nodes * 2;

    int admitted = 0;
    auto start = std::chrono::steady_clock::now();
    for (int w = 0; w < windows; ++w) {
        admitted = admitWindow(fleet, w, windows, total_jobs, admitted);
        fleet.tick();
    }
    auto elapsed = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);

    cluster::FleetSummary s = fleet.summarize();
    ScalePoint p;
    p.mode = "lockstep";
    p.nodes = nodes;
    p.jobs = admitted;
    p.qos_met_mean = s.qos_met_fraction.mean();
    p.qos_met_final = fleet.history().back().qos_met_fraction;
    p.bg_perf_mean = s.bg_perf.mean();
    p.evictions = s.evictions;
    p.parked = s.jobs_parked;
    p.pending = s.jobs_pending;
    p.ms_per_window = elapsed.count() / windows;
    return p;
}

/**
 * @param backend Per-node model backend. The DES rows measure the
 *     simulated-event bill directly, so they are where the coarse
 *     search budget (FleetOptions::search_event_budget) shows up as
 *     an end-to-end windows/s win; the analytic rows keep the
 *     historical sweep comparable across commits.
 * @param search_event_budget DES search probe budget (0 = fine-mode
 *     searches; ignored by the analytic backend).
 * @param mode Row label; (mode, nodes) keys the compare_bench gate.
 */
ScalePoint
runAsync(int nodes, int windows,
         harness::ModelBackend backend = harness::ModelBackend::Analytic,
         uint64_t search_event_budget = 0, const char* mode = "async")
{
    cluster::FleetOptions options = fleetOptions(nodes);
    options.backend = backend;
    options.search_event_budget = search_event_budget;
    cluster::Fleet fleet(options);
    const int total_jobs = nodes * 2;

    cluster::AsyncOptions ao;
    // The logical worker pool scales with the fleet; chaos on: default
    // stragglers + hedging, plus worker churn worth recovering from.
    ao.workers = std::max(4, nodes / 4);
    ao.max_retries = 6;
    ao.faults.worker_loss_prob = 0.05;
    ao.fault_seed = 29;
    cluster::AsyncFleetEngine engine(fleet, ao);

    // Same admission cadence as lockstep: one arrival slice, then one
    // observation window per node (run(1) == the async tick analogue).
    int admitted = 0;
    auto start = std::chrono::steady_clock::now();
    for (int w = 0; w < windows; ++w) {
        admitted = admitWindow(fleet, w, windows, total_jobs, admitted);
        engine.run(1);
    }
    auto elapsed = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);

    cluster::FleetSummary s = fleet.summarize();
    const cluster::FleetMetrics& m = engine.metrics();
    ScalePoint p;
    p.mode = mode;
    p.nodes = nodes;
    p.jobs = admitted;
    p.qos_met_mean = engine.qosHistory().mean();
    p.qos_met_final = engine.qosMetFraction();
    p.bg_perf_mean = engine.meanBgPerf();
    p.evictions = s.evictions;
    p.parked = s.jobs_parked;
    p.pending = s.jobs_pending;
    p.ms_per_window = elapsed.count() / windows;
    p.retried = m.tasks_retried;
    p.hedges_won = m.hedges_won;
    p.workers_lost = m.workers_lost;
    p.quarantined = m.nodes_quarantined;
    p.dropped = m.windows_dropped;
    return p;
}

void
maybeWriteJson(const std::vector<ScalePoint>& points)
{
    const char* path = std::getenv("CLITE_FLEET_JSON");
    if (path == nullptr || *path == '\0')
        return;
    std::ofstream out(path);
    out << "{\n  \"benchmark\": \"fleet_scaling\",\n  \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        const ScalePoint& p = points[i];
        char buf[768];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"mode\": \"%s\", \"nodes\": %d, \"jobs\": %d, "
            "\"qos_met_mean\": %.6f, \"qos_met_final\": %.6f, "
            "\"bg_perf_mean\": %.6f, \"evictions\": %d, \"parked\": %d, "
            "\"pending\": %d, \"ms_per_window\": %.3f, "
            "\"tasks_retried\": %llu, \"hedges_won\": %llu, "
            "\"workers_lost\": %llu, \"nodes_quarantined\": %llu, "
            "\"windows_dropped\": %llu}%s\n",
            p.mode, p.nodes, p.jobs, p.qos_met_mean, p.qos_met_final,
            p.bg_perf_mean, p.evictions, p.parked, p.pending,
            p.ms_per_window, (unsigned long long)p.retried,
            (unsigned long long)p.hedges_won,
            (unsigned long long)p.workers_lost,
            (unsigned long long)p.quarantined,
            (unsigned long long)p.dropped,
            i + 1 < points.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n}\n";
    std::cout << "[json written to " << path << "]\n";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::applyThreadFlag(argc, argv);
    printBanner(std::cout,
                "Fleet scaling: QoS-met fraction vs node count "
                "(2 jobs/node, 10% hot tenants; lockstep vs async)");

    const int windows = 12;
    std::vector<ScalePoint> points;
    for (int nodes : {1, 2, 4, 8, 16, 32, 64})
        points.push_back(runLockstep(nodes, windows));
    for (int nodes : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024})
        points.push_back(runAsync(nodes, windows));
    // DES rows: same fleet under the event-billed backend, fine-mode
    // searches vs the coarse default — the end-to-end windows/s win
    // of coarse search probes at fleet scale (gated by
    // compare_bench.py --mode fleet).
    for (int nodes : {256, 1024}) {
        points.push_back(runAsync(nodes, windows,
                                  harness::ModelBackend::Des, 0,
                                  "async-des-fine"));
        points.push_back(runAsync(nodes, windows,
                                  harness::ModelBackend::Des, 2000,
                                  "async-des-coarse"));
    }

    TextTable t({"Mode", "Nodes", "Jobs", "QoS met (mean)",
                 "QoS met (final)", "BG perf", "Evict", "Parked",
                 "Pending", "ms/window", "Retried", "HedgeW", "WLost",
                 "Quar", "Shed"});
    for (const ScalePoint& p : points)
        t.addRow({p.mode, std::to_string(p.nodes), std::to_string(p.jobs),
                  TextTable::percent(p.qos_met_mean, 1),
                  TextTable::percent(p.qos_met_final, 1),
                  TextTable::num(p.bg_perf_mean, 3),
                  std::to_string(p.evictions), std::to_string(p.parked),
                  std::to_string(p.pending),
                  TextTable::num(p.ms_per_window, 1),
                  std::to_string(p.retried),
                  std::to_string(p.hedges_won),
                  std::to_string(p.workers_lost),
                  std::to_string(p.quarantined),
                  std::to_string(p.dropped)});
    t.print(std::cout);
    bench::maybeWriteCsv(t, "fleet_scaling");
    maybeWriteJson(points);

    std::cout << "\nLarger fleets give evicted jobs more landing spots: "
                 "the final QoS-met fraction should not degrade with "
                 "node count in either mode, and the async engine must "
                 "absorb its injected worker churn (retries > 0, zero "
                 "lost jobs) without giving up QoS.\n";
    return 0;
}

/**
 * @file
 * Fleet scaling sweep: QoS-met fraction, BG performance and
 * scheduling activity as the cluster grows from 1 to 64 nodes.
 *
 * Every fleet size runs the same admission pressure per node (two
 * jobs per node, ~60% latency-critical, including a slice of hot
 * full-load tenants that are infeasible wherever they are
 * co-located), so the sweep isolates the effect of scale on the
 * scheduler: more nodes mean more rescheduling destinations and a
 * better chance of absorbing an unservable-in-place job. Wall time
 * per window is also reported — fleet windows fan node evaluations
 * out on the global thread pool (--threads=N, bit-identical results
 * at any worker count).
 *
 * With CLITE_FLEET_JSON=<path> the per-size series is also written as
 * JSON (like BENCH_components.json for the component benchmarks), so
 * scaling regressions are visible across commits.
 */

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>

#include "bench_util.h"
#include "cluster/fleet.h"
#include "common/table.h"
#include "workloads/catalog.h"

using namespace clite;

namespace {

struct ScalePoint
{
    int nodes = 0;
    int jobs = 0;
    double qos_met_mean = 0.0;
    double qos_met_final = 0.0;
    double bg_perf_mean = 0.0;
    int evictions = 0;
    int parked = 0;
    int pending = 0;
    double ms_per_window = 0.0;
};

ScalePoint
runFleet(int nodes, int windows)
{
    cluster::FleetOptions options;
    options.nodes = nodes;
    options.seed = 29;
    // Modest per-node search budgets: the sweep measures the fleet
    // layer, not per-node search quality.
    options.clite.max_iterations = 8;
    options.clite.acquisition_starts = 2;
    cluster::Fleet fleet(options);

    const std::vector<std::string>& lc = workloads::lcWorkloadNames();
    const std::vector<std::string>& bg = workloads::bgWorkloadNames();
    const int total_jobs = nodes * 2;

    // Admissions spread over the first half of the run: index-driven
    // mix, every 10th job a full-load masstree (unservable next to
    // anything — it must end up alone or parked).
    int admitted = 0;
    auto start = std::chrono::steady_clock::now();
    for (int w = 0; w < windows; ++w) {
        int target = std::min(total_jobs,
                              (w + 1) * (2 * total_jobs / windows + 1));
        for (; admitted < target; ++admitted) {
            if (admitted % 10 == 9)
                fleet.admit(workloads::lcJob("masstree", 1.0));
            else if (admitted % 3 == 2)
                fleet.admit(workloads::bgJob(
                    bg[size_t(admitted) % bg.size()]));
            else
                fleet.admit(workloads::lcJob(
                    lc[size_t(admitted) % lc.size()], 0.3));
        }
        fleet.tick();
    }
    auto elapsed = std::chrono::duration<double, std::milli>(
        std::chrono::steady_clock::now() - start);

    cluster::FleetSummary s = fleet.summarize();
    ScalePoint p;
    p.nodes = nodes;
    p.jobs = admitted;
    p.qos_met_mean = s.qos_met_fraction.mean();
    p.qos_met_final = fleet.history().back().qos_met_fraction;
    p.bg_perf_mean = s.bg_perf.mean();
    p.evictions = s.evictions;
    p.parked = s.jobs_parked;
    p.pending = s.jobs_pending;
    p.ms_per_window = elapsed.count() / windows;
    return p;
}

void
maybeWriteJson(const std::vector<ScalePoint>& points)
{
    const char* path = std::getenv("CLITE_FLEET_JSON");
    if (path == nullptr || *path == '\0')
        return;
    std::ofstream out(path);
    out << "{\n  \"benchmark\": \"fleet_scaling\",\n  \"points\": [\n";
    for (size_t i = 0; i < points.size(); ++i) {
        const ScalePoint& p = points[i];
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "    {\"nodes\": %d, \"jobs\": %d, \"qos_met_mean\": %.6f, "
            "\"qos_met_final\": %.6f, \"bg_perf_mean\": %.6f, "
            "\"evictions\": %d, \"parked\": %d, \"pending\": %d, "
            "\"ms_per_window\": %.3f}%s\n",
            p.nodes, p.jobs, p.qos_met_mean, p.qos_met_final,
            p.bg_perf_mean, p.evictions, p.parked, p.pending,
            p.ms_per_window, i + 1 < points.size() ? "," : "");
        out << buf;
    }
    out << "  ]\n}\n";
    std::cout << "[json written to " << path << "]\n";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::applyThreadFlag(argc, argv);
    printBanner(std::cout,
                "Fleet scaling: QoS-met fraction vs node count "
                "(2 jobs/node, 10% hot tenants)");

    const int windows = 12;
    std::vector<ScalePoint> points;
    for (int nodes : {1, 2, 4, 8, 16, 32, 64})
        points.push_back(runFleet(nodes, windows));

    TextTable t({"Nodes", "Jobs", "QoS met (mean)", "QoS met (final)",
                 "BG perf", "Evictions", "Parked", "Pending",
                 "ms/window"});
    for (const ScalePoint& p : points)
        t.addRow({std::to_string(p.nodes), std::to_string(p.jobs),
                  TextTable::percent(p.qos_met_mean, 1),
                  TextTable::percent(p.qos_met_final, 1),
                  TextTable::num(p.bg_perf_mean, 3),
                  std::to_string(p.evictions), std::to_string(p.parked),
                  std::to_string(p.pending),
                  TextTable::num(p.ms_per_window, 1)});
    t.print(std::cout);
    bench::maybeWriteCsv(t, "fleet_scaling");
    maybeWriteJson(points);

    std::cout << "\nLarger fleets give evicted jobs more landing spots: "
                 "the final QoS-met fraction should not degrade with "
                 "node count, and hot tenants end up alone or parked "
                 "instead of degrading a neighbor.\n";
    return 0;
}

/**
 * @file
 * Regenerates Figure 11: run-to-run variability (standard deviation
 * as % of the mean achieved LC performance) across repeated runs of
 * each scheme on the same job set. Paper result: CLITE < 7% in all
 * cases; PARTIES/GENETIC/RAND+ often > 20%.
 */

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "harness/analysis.h"
#include "workloads/catalog.h"

using namespace clite;

namespace {

void
runSet(const std::string& label, std::vector<workloads::JobSpec> jobs,
       int trials)
{
    std::cout << label << " (" << trials << " trials)\n";
    TextTable t({"Scheme", "Mean score", "Score std-dev (%)",
                 "Mean LC perf", "95% CI", "LC-perf std-dev (%)"});
    for (const char* scheme : {"clite", "parties", "genetic", "rand+"}) {
        harness::ServerSpec spec;
        spec.jobs = jobs;
        spec.seed = 1234;
        harness::VariabilityResult v =
            harness::runVariability(scheme, spec, trials);
        t.addRow({scheme, TextTable::num(v.mean_score, 3),
                  TextTable::num(v.score_cov_percent, 1) + "%",
                  TextTable::num(v.mean_perf, 3),
                  "[" + TextTable::num(v.perf_ci.lo, 3) + ", " +
                      TextTable::num(v.perf_ci.hi, 3) + "]",
                  TextTable::num(v.cov_percent, 1) + "%"});
    }
    t.print(std::cout);
    bench::maybeWriteCsv(t, "fig11_" + std::to_string(trials) + "trials_" + jobs[0].profile.name);
    std::cout << "\n";
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 11: variability of the chosen configuration's "
                "performance across repeated runs (lower is better)");
    const int trials = 6;
    runSet("img-dnn@30% + xapian@30% + memcached@30%",
           {workloads::lcJob("img-dnn", 0.3), workloads::lcJob("xapian", 0.3),
            workloads::lcJob("memcached", 0.3)},
           trials);
    runSet("specjbb@30% + masstree@30% + xapian@30%",
           {workloads::lcJob("specjbb", 0.3),
            workloads::lcJob("masstree", 0.3),
            workloads::lcJob("xapian", 0.3)},
           trials);
    // A mix with a BG job: here the competing schemes' stochastic
    // search shows its spread (the trial-and-error reallocation the
    // paper blames for PARTIES' variability needs contended BG
    // resources to surface in our noise model).
    runSet("img-dnn@40% + xapian@40% + memcached@40% + fluidanimate",
           {workloads::lcJob("img-dnn", 0.4),
            workloads::lcJob("xapian", 0.4),
            workloads::lcJob("memcached", 0.4),
            workloads::bgJob("fluidanimate")},
           trials);
    return 0;
}

/**
 * @file
 * Regenerates Table 1 (shared resources and isolation tools) and
 * Table 2 (testbed configuration) from the platform model, proving the
 * simulated server exposes the paper's inventory.
 */

#include <iostream>

#include "common/table.h"
#include "platform/resource.h"

using namespace clite;

int
main()
{
    platform::ServerConfig config =
        platform::ServerConfig::xeonSilver4114AllResources();

    printBanner(std::cout,
                "Table 1: Shared resources on the (simulated) CMP server");
    TextTable t1({"Shared Resource", "Allocation Method", "Isolation Tool",
                  "Units", "Unit Value"});
    for (const auto& spec : config.resources()) {
        t1.addRow({platform::resourceName(spec.kind),
                   platform::allocationMethod(spec.kind),
                   platform::isolationTool(spec.kind),
                   TextTable::num(static_cast<long long>(spec.units)),
                   TextTable::num(spec.unit_value, 1) + " " +
                       spec.unit_label});
    }
    t1.print(std::cout);

    printBanner(std::cout, "Table 2: Experimental testbed configuration");
    TextTable t2({"Component", "Specification"});
    t2.addRow({"CPU Model", config.cpu_model});
    t2.addRow({"Number of Sockets",
               TextTable::num(static_cast<long long>(config.sockets))});
    t2.addRow({"Processor Speed",
               TextTable::num(config.frequency_ghz, 2) + " GHz"});
    t2.addRow({"Physical Cores",
               TextTable::num(
                   static_cast<long long>(config.physical_cores))});
    t2.addRow({"Logical Cores",
               TextTable::num(
                   static_cast<long long>(config.logical_cores))});
    t2.addRow({"Shared L3 Cache",
               TextTable::num(config.l3_cache_kb, 0) + " KB (" +
                   TextTable::num(
                       static_cast<long long>(config.l3_ways)) +
                   "-way set associative)"});
    t2.addRow({"Memory Capacity",
               TextTable::num(config.memory_gb, 0) + " GB"});
    t2.addRow({"Peak Memory Bandwidth",
               TextTable::num(config.peak_mem_bw_mbps, 0) + " MB/s"});
    t2.addRow({"Disk Bandwidth",
               TextTable::num(config.disk_bw_mbps, 0) + " MB/s"});
    t2.addRow({"Network Bandwidth",
               TextTable::num(config.net_bw_mbps, 0) + " MB/s"});
    t2.addRow({"Operating System", config.os});
    t2.print(std::cout);

    printBanner(std::cout,
                "Search-space sizes (Sec. 2's N_conf formula)");
    TextTable t3({"Co-located jobs", "3-resource server",
                  "6-resource server"});
    platform::ServerConfig small = platform::ServerConfig::xeonSilver4114();
    for (int njobs = 2; njobs <= 6; ++njobs) {
        t3.addRow({TextTable::num(static_cast<long long>(njobs)),
                   TextTable::num(static_cast<long long>(
                       small.configurationCount(njobs))),
                   TextTable::num(static_cast<long long>(
                       config.configurationCount(njobs)))});
    }
    t3.print(std::cout);
    return 0;
}

/**
 * @file
 * Resilience sweep (beyond the paper): how gracefully does each
 * scheme degrade when the platform misbehaves?
 *
 * Runs CLITE and two search baselines on the Fig. 7 three-LC mix
 * (masstree + img-dnn + memcached, each at 45% load) under increasing fault rates: at
 * rate f, every apply() fails transiently with probability f, a
 * telemetry window drops or spikes with probability f/2, and counters
 * freeze with probability f/4 (see scaledFaultPlan()). Reported per
 * (scheme, rate): whether a configuration was found at all, the
 * noise-free ground-truth score and QoS state of the partition the
 * server was left running, the score degradation versus the scheme's
 * own fault-free run, and the windows wasted on faults.
 *
 * Expected shape: CLITE's fault-tolerant control path (retry with
 * back-off, sample quarantine, median/majority validation) keeps the
 * degradation small at 10-20% fault rates, while baselines that
 * ingest faulted samples verbatim lose score or fail outright.
 */

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "harness/resilience.h"
#include "workloads/catalog.h"

using namespace clite;

int
main()
{
    printBanner(std::cout,
                "Resilience: score degradation vs platform fault rate, "
                "three-LC mix (masstree + img-dnn + memcached)");

    harness::ServerSpec spec;
    spec.jobs = {
        workloads::lcJob("masstree", 0.45),
        workloads::lcJob("img-dnn", 0.45),
        workloads::lcJob("memcached", 0.45),
    };

    const std::vector<std::string> schemes = {"clite", "parties", "genetic"};
    const std::vector<double> rates = {0.0, 0.05, 0.10, 0.20};

    std::vector<harness::ResilienceSweepRow> rows =
        harness::faultRateSweep(schemes, spec, rates);

    TextTable table({"Scheme", "Fault rate", "Config found", "QoS (truth)",
                     "Truth score", "Degradation", "Samples", "Wasted",
                     "Viol. windows", "Fault events"});
    for (const auto& row : rows) {
        const harness::ResilienceOutcome& o = row.outcome;
        table.addRow({row.scheme, TextTable::percent(row.fault_rate, 0),
                      o.found_config ? "yes" : "NO",
                      o.found_config ? (o.truth_qos_met ? "met" : "VIOLATED")
                                     : "-",
                      TextTable::num(o.truth_score, 3),
                      TextTable::num(row.score_degradation, 3),
                      std::to_string(o.samples),
                      std::to_string(o.wasted_samples),
                      std::to_string(o.violation_windows),
                      std::to_string(o.fault_events)});
    }
    table.print(std::cout);
    bench::maybeWriteCsv(table, "fig_resilience");

    std::cout << "\nDegradation = scheme's own fault-free truth score minus "
                 "the faulted run's;\nWasted = quarantined samples + apply "
                 "retries (observation windows burnt on faults).\n";
    return 0;
}

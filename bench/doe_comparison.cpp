/**
 * @file
 * Regenerates the Sec. 5.2 design-space-exploration comparison:
 * static sampling designs (a 2-level fractional-factorial design and
 * a response-surface-method style centered design) with a fitted
 * quadratic response surface, against CLITE's adaptive BO, on the
 * 2 LC + 1 BG scenario the paper analyzes (58,320 configurations,
 * 9 factors).
 *
 * Paper finding: the static designs need 2-8x more samples than CLITE
 * and still produce lower-quality configurations, because the
 * response surface changes with the job mix and static designs cannot
 * steer sampling toward the feasibility boundary.
 */

#include <cmath>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "harness/analysis.h"
#include "linalg/cholesky.h"
#include "opt/projected_gradient.h"
#include "opt/simplex.h"
#include "stats/sampling.h"
#include "workloads/catalog.h"

using namespace clite;

namespace {

/** Quadratic feature map: [1, x_i, x_i * x_j (i<=j)]. */
linalg::Vector
quadraticFeatures(const std::vector<double>& x)
{
    linalg::Vector f;
    f.push_back(1.0);
    for (double v : x)
        f.push_back(v);
    for (size_t i = 0; i < x.size(); ++i)
        for (size_t j = i; j < x.size(); ++j)
            f.push_back(x[i] * x[j]);
    return f;
}

/** Ridge least-squares fit of the quadratic surface. */
linalg::Vector
fitSurface(const std::vector<std::vector<double>>& xs,
           const std::vector<double>& ys)
{
    const size_t p = quadraticFeatures(xs[0]).size();
    linalg::Matrix xtx(p, p, 0.0);
    linalg::Vector xty(p, 0.0);
    for (size_t n = 0; n < xs.size(); ++n) {
        linalg::Vector f = quadraticFeatures(xs[n]);
        for (size_t i = 0; i < p; ++i) {
            xty[i] += f[i] * ys[n];
            for (size_t j = 0; j <= i; ++j)
                xtx(i, j) += f[i] * f[j];
        }
    }
    for (size_t i = 0; i < p; ++i)
        for (size_t j = i + 1; j < p; ++j)
            xtx(i, j) = xtx(j, i);
    xtx.addDiagonal(1e-3); // ridge: designs are under-determined
    linalg::Cholesky chol(xtx);
    return chol.solve(xty);
}

double
surfaceAt(const linalg::Vector& beta, const std::vector<double>& x)
{
    linalg::Vector f = quadraticFeatures(x);
    return linalg::dot(f, beta);
}

/** Run one static design: sample, fit, optimize surface, evaluate. */
struct DesignResult
{
    int samples = 0;
    double truth_score = 0.0;
    bool qos_met = false;
};

DesignResult
runStaticDesign(const std::string& kind, int budget,
                platform::SimulatedServer& server, Rng& rng)
{
    const platform::ServerConfig& config = server.config();
    const size_t njobs = server.jobCount();
    const size_t nres = config.resourceCount();
    const size_t dim = njobs * nres;

    std::vector<std::vector<double>> xs;
    std::vector<double> ys;

    auto evaluate = [&](const platform::Allocation& a) {
        auto obs = server.evaluate(a);
        xs.push_back(a.flattenNormalized());
        ys.push_back(core::score(obs));
    };

    for (int s = 0; s < budget; ++s) {
        platform::Allocation a(njobs, config);
        for (size_t r = 0; r < nres; ++r) {
            int units = config.resource(r).units;
            std::vector<double> col(njobs);
            if (kind == "ffd2") {
                // 2-level design: each job's share is "low" or "high"
                // per a random fractional pattern, repaired onto the
                // simplex.
                for (size_t j = 0; j < njobs; ++j)
                    col[j] = rng.bernoulli(0.5) ? 0.8 * units : 0.2 * units;
            } else {
                // RSM-style centered design: center/edge/corner rings.
                double ring = (s % 3 == 0) ? 0.0 : (s % 3 == 1 ? 0.3 : 0.6);
                for (size_t j = 0; j < njobs; ++j)
                    col[j] = double(units) / double(njobs) +
                             (rng.bernoulli(0.5) ? ring : -ring) *
                                 double(units) / double(njobs);
            }
            std::vector<int> lo(njobs, 1), hi(njobs,
                                              units - int(njobs) + 1);
            std::vector<int> parts =
                opt::roundToIntegerComposition(col, units, lo, hi);
            for (size_t j = 0; j < njobs; ++j)
                a.set(j, r, parts[j]);
        }
        a.validate();
        evaluate(a);
    }

    // Fit the surface and maximize it over the Eq. 5-6 constraints.
    linalg::Vector beta = fitSurface(xs, ys);
    std::vector<opt::SimplexBlock> blocks;
    for (size_t r = 0; r < nres; ++r) {
        int units = config.resource(r).units;
        opt::SimplexBlock blk;
        blk.total = 1.0;
        for (size_t j = 0; j < njobs; ++j) {
            blk.indices.push_back(j * nres + r);
            blk.lo.push_back(1.0 / units);
            blk.hi.push_back(double(units - int(njobs) + 1) / units);
        }
        blocks.push_back(std::move(blk));
    }
    opt::ProjectedGradientOptimizer pg(blocks, dim);
    std::vector<std::vector<double>> starts;
    starts.push_back(
        platform::Allocation::equalShare(njobs, config)
            .flattenNormalized());
    for (int s = 0; s < 5; ++s) {
        platform::Allocation a(njobs, config);
        for (size_t r = 0; r < nres; ++r) {
            auto parts = stats::sampleComposition(
                config.resource(r).units, int(njobs), rng, 1);
            for (size_t j = 0; j < njobs; ++j)
                a.set(j, r, parts[j]);
        }
        starts.push_back(a.flattenNormalized());
    }
    opt::PgResult best = pg.maximizeMultiStart(
        [&](const std::vector<double>& x) { return surfaceAt(beta, x); },
        starts);

    platform::Allocation chosen = platform::Allocation::fromFlatNormalized(
        best.x, njobs, config);
    auto truth = core::scoreObservations(server.observeNoiseless(chosen));

    DesignResult out;
    out.samples = budget + 1; // design samples + the final validation
    out.truth_score = truth.score;
    out.qos_met = truth.all_qos_met;
    return out;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Sec. 5.2: static design-space exploration (FFD / RSM + "
                "quadratic response surface) vs CLITE "
                "(memcached@100%-load-scenario analogue: memcached@50% + "
                "xapian@10% + streamcluster; 58,320 configurations)");

    harness::ServerSpec spec;
    spec.jobs = {workloads::lcJob("memcached", 0.5),
                 workloads::lcJob("xapian", 0.1),
                 workloads::bgJob("streamcluster")};
    spec.seed = 2028;

    TextTable t({"Method", "Samples", "Truth score", "QoS met"});

    {
        Rng rng(5);
        platform::SimulatedServer server = harness::makeServer(spec);
        DesignResult r = runStaticDesign("ffd2", 48, server, rng);
        t.addRow({"2-level FFD + RSM fit (48 runs, paper's count)",
                  TextTable::num(static_cast<long long>(r.samples)),
                  TextTable::num(r.truth_score, 4),
                  r.qos_met ? "yes" : "NO"});
    }
    {
        Rng rng(7);
        platform::SimulatedServer server = harness::makeServer(spec);
        DesignResult r = runStaticDesign("rsm", 130, server, rng);
        t.addRow({"Box-Behnken-style RSM (130 runs, paper's count)",
                  TextTable::num(static_cast<long long>(r.samples)),
                  TextTable::num(r.truth_score, 4),
                  r.qos_met ? "yes" : "NO"});
    }
    for (const char* scheme : {"clite", "parties", "genetic"}) {
        harness::SchemeOutcome out =
            harness::runScheme(scheme, spec, 2028);
        t.addRow({scheme,
                  TextTable::num(
                      static_cast<long long>(out.result.samples)),
                  TextTable::num(out.truth.score, 4),
                  out.truth.all_qos_met ? "yes" : "NO"});
    }
    t.print(std::cout);
    return 0;
}

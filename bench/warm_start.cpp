/**
 * @file
 * Warm-start sweep: windows-to-all-QoS-met for a cold controller vs
 * one seeded from the profile store — an exact-hit prior (the same
 * mix learned before) and a similar-mix prior (the same jobs at
 * drifted load levels) — across several loaded mixes and seeds.
 *
 * One search sample is one observation window on the real system
 * (paper Sec. 4: "each sample takes one 2-second window"), so
 * "windows to all-QoS-met" is firstFeasibleSample()+1 of the initial
 * search: how long the node runs with at least one LC job violating
 * QoS before the controller first lands on a partition that meets
 * every target. The mixes are loaded enough that the equal-share
 * bootstrap point misses QoS — a cold start must actually search.
 *
 * Everything underneath is deterministic (seeded noise, seeded BO,
 * thread-count-invariant pool), so the emitted JSON is byte-stable
 * across machines: `--json=PATH` writes BENCH_warmstart.json, which
 * is committed and diffed in CI (bench/compare_bench.py --mode
 * warmstart). Regenerate after an intended behaviour change with:
 *
 *     ./bench/warm_start --json=BENCH_warmstart.json
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/monitor.h"
#include "store/profile_store.h"
#include "workloads/catalog.h"
#include "workloads/perf_model.h"

using namespace clite;

namespace {

struct Mix
{
    const char* label;
    double load0; ///< First LC job's load.
    double load1; ///< Second LC job's load.
};

// Loaded two-LC-plus-BG mixes: heavy enough that the equal share
// violates at least one QoS target, light enough to be feasible.
const Mix kMixes[] = {
    {"img-dnn+memcached+fluidanimate", 0.60, 0.70},
    {"xapian+memcached+canneal", 0.70, 0.70},
    {"img-dnn+xapian+canneal", 0.90, 0.50},
};

constexpr int kSeeds = 5;

std::vector<workloads::JobSpec>
makeJobs(const Mix& mix, double load_shift = 0.0)
{
    std::string lc0 = mix.label;
    std::string rest = lc0.substr(lc0.find('+') + 1);
    lc0 = lc0.substr(0, lc0.find('+'));
    std::string lc1 = rest.substr(0, rest.find('+'));
    std::string bg = rest.substr(rest.find('+') + 1);
    return {
        workloads::lcJob(lc0, mix.load0 + load_shift),
        workloads::lcJob(lc1, mix.load1 - load_shift),
        workloads::bgJob(bg),
    };
}

platform::SimulatedServer
makeServer(const Mix& mix, uint64_t seed, double load_shift = 0.0)
{
    return platform::SimulatedServer(
        platform::ServerConfig::xeonSilver4114(), makeJobs(mix, load_shift),
        std::make_unique<workloads::AnalyticModel>(), seed, 0.02);
}

core::CliteOptions
cliteOptions(uint64_t seed)
{
    core::CliteOptions o;
    o.seed = seed;
    return o;
}

struct RunStats
{
    double windows_sum = 0.0; ///< Windows to first all-QoS-met sample.
    double samples_sum = 0.0; ///< Total search samples spent.
    int feasible = 0;         ///< Runs that found a feasible partition.
    int runs = 0;

    void add(const core::ControllerResult& r)
    {
        int first = r.firstFeasibleSample();
        // A run that never met QoS burned its whole budget violating.
        windows_sum += first >= 0 ? first + 1 : r.samples;
        samples_sum += r.samples;
        feasible += r.feasible ? 1 : 0;
        ++runs;
    }
    double windowsMean() const { return runs ? windows_sum / runs : 0.0; }
    double samplesMean() const { return runs ? samples_sum / runs : 0.0; }
};

struct MixResult
{
    std::string label;
    RunStats cold, exact, similar;
};

MixResult
runMix(const Mix& mix)
{
    MixResult out;
    out.label = mix.label;
    for (int s = 0; s < kSeeds; ++s) {
        const uint64_t noise_seed = 100 + uint64_t(s);
        const uint64_t bo_seed = 200 + uint64_t(s);

        // Cold: no store.
        {
            auto server = makeServer(mix, noise_seed);
            core::OnlineManager manager(server, cliteOptions(bo_seed));
            out.cold.add(manager.initialize());
        }

        // Exact hit: a prior life of the SAME mix (different seeds)
        // taught the store; the measured run restores from it.
        {
            store::ProfileStore prior;
            auto teacher = makeServer(mix, noise_seed + 1000);
            core::OnlineManager teach(teacher, cliteOptions(bo_seed + 1000),
                                      {}, &prior);
            teach.initialize();
            teach.tick(); // settle one window so the phase is Steady

            auto server = makeServer(mix, noise_seed);
            core::OnlineManager manager(server, cliteOptions(bo_seed), {},
                                        &prior);
            out.exact.add(manager.initialize());
            if (std::string(manager.warmSource()) != "exact")
                std::cerr << "warning: expected exact hit for "
                          << mix.label << " seed " << s << ", got "
                          << manager.warmSource() << "\n";
        }

        // Similar mix: the prior was learned at drifted (lighter)
        // load levels, so only the nearest-mix lookup fires.
        {
            store::ProfileStore prior;
            auto teacher = makeServer(mix, noise_seed + 2000, -0.05);
            core::OnlineManager teach(teacher, cliteOptions(bo_seed + 2000),
                                      {}, &prior);
            teach.initialize();
            teach.tick();

            auto server = makeServer(mix, noise_seed);
            core::OnlineManager manager(server, cliteOptions(bo_seed), {},
                                        &prior);
            out.similar.add(manager.initialize());
            if (std::string(manager.warmSource()) != "similar")
                std::cerr << "warning: expected similar hit for "
                          << mix.label << " seed " << s << ", got "
                          << manager.warmSource() << "\n";
        }
    }
    return out;
}

std::string
g(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

void
writeJson(const std::vector<MixResult>& results, const std::string& path)
{
    RunStats cold, exact, similar;
    for (const MixResult& r : results) {
        cold.windows_sum += r.cold.windows_sum;
        cold.samples_sum += r.cold.samples_sum;
        cold.runs += r.cold.runs;
        exact.windows_sum += r.exact.windows_sum;
        exact.samples_sum += r.exact.samples_sum;
        exact.runs += r.exact.runs;
        similar.windows_sum += r.similar.windows_sum;
        similar.samples_sum += r.similar.samples_sum;
        similar.runs += r.similar.runs;
    }
    const double exact_improvement =
        1.0 - exact.windowsMean() / cold.windowsMean();
    const double similar_improvement =
        1.0 - similar.windowsMean() / cold.windowsMean();

    std::ofstream out(path, std::ios::trunc);
    if (!out.good()) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    out << "{\n  \"bench\": \"warm_start\",\n";
    out << "  \"windows_metric\": \"first all-QoS-met search sample + 1 "
           "(search budget on miss)\",\n";
    out << "  \"seeds_per_mix\": " << kSeeds << ",\n  \"mixes\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const MixResult& r = results[i];
        out << "    {\"mix\": \"" << r.label << "\",\n"
            << "     \"cold_windows_mean\": " << g(r.cold.windowsMean())
            << ", \"exact_windows_mean\": " << g(r.exact.windowsMean())
            << ", \"similar_windows_mean\": " << g(r.similar.windowsMean())
            << ",\n     \"cold_samples_mean\": " << g(r.cold.samplesMean())
            << ", \"exact_samples_mean\": " << g(r.exact.samplesMean())
            << ", \"similar_samples_mean\": " << g(r.similar.samplesMean())
            << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"overall\": {\n";
    out << "    \"cold_windows_mean\": " << g(cold.windowsMean()) << ",\n";
    out << "    \"exact_windows_mean\": " << g(exact.windowsMean())
        << ",\n";
    out << "    \"similar_windows_mean\": " << g(similar.windowsMean())
        << ",\n";
    out << "    \"exact_improvement\": " << g(exact_improvement) << ",\n";
    out << "    \"similar_improvement\": " << g(similar_improvement)
        << "\n  }\n}\n";
    std::cout << "[json written to " << path << "]\n";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::applyThreadFlag(argc, argv);
    std::string json_path;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;

    std::vector<MixResult> results;
    for (const Mix& mix : kMixes)
        results.push_back(runMix(mix));

    std::printf("%-34s %14s %14s %14s\n", "mix (windows to all-QoS-met)",
                "cold", "exact-hit", "similar-mix");
    RunStats cold, exact, similar;
    for (const MixResult& r : results) {
        std::printf("%-34s %14.2f %14.2f %14.2f\n", r.label.c_str(),
                    r.cold.windowsMean(), r.exact.windowsMean(),
                    r.similar.windowsMean());
        cold.windows_sum += r.cold.windows_sum;
        cold.runs += r.cold.runs;
        exact.windows_sum += r.exact.windows_sum;
        exact.runs += r.exact.runs;
        similar.windows_sum += r.similar.windows_sum;
        similar.runs += r.similar.runs;
    }
    std::printf("%-34s %14.2f %14.2f %14.2f\n", "overall",
                cold.windowsMean(), exact.windowsMean(),
                similar.windowsMean());
    std::printf("exact-hit improvement: %.1f%%   similar-mix: %.1f%%\n",
                100.0 * (1.0 - exact.windowsMean() / cold.windowsMean()),
                100.0 * (1.0 - similar.windowsMean() / cold.windowsMean()));

    if (!json_path.empty())
        writeJson(results, json_path);
    return 0;
}

/**
 * @file
 * Regenerates Figure 1: QoS-safe regions for three representative LC
 * jobs over two resources, demonstrating the "resource equivalence
 * class" property — multiple (cores, LLC ways) mixes meet QoS and
 * trade off against each other.
 *
 * Output: one ASCII region map per job ('#' = QoS-safe), plus a
 * summary of the equivalence property.
 */

#include <iostream>

#include "common/table.h"
#include "harness/qos_region.h"

using namespace clite;

namespace {

void
printRegion(const harness::QosRegion& region)
{
    std::cout << region.workload << " @ "
              << TextTable::percent(region.load_fraction, 0) << " load ("
              << platform::resourceName(region.res_a) << " x "
              << platform::resourceName(region.res_b) << ")\n";
    // Rows printed top-down with the largest b allocation first, as in
    // the paper's axes.
    for (size_t bi = region.b_units.size(); bi-- > 0;) {
        std::cout << "  " << (region.b_units[bi] < 10 ? " " : "")
                  << region.b_units[bi] << " |";
        for (size_t ai = 0; ai < region.a_units.size(); ++ai)
            std::cout << (region.safe[bi][ai] ? " #" : " .");
        std::cout << "\n";
    }
    std::cout << "      +";
    for (size_t ai = 0; ai < region.a_units.size(); ++ai)
        std::cout << "--";
    std::cout << "\n       ";
    for (int a : region.a_units)
        std::cout << (a < 10 ? " " + std::to_string(a)
                             : std::to_string(a % 100 / 10) +
                                   std::to_string(a % 10));
    std::cout << "   (" << platform::resourceName(region.res_a) << ")\n\n";
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 1: QoS-safe regions ('#' meets the p95 target)");

    TextTable summary({"Workload", "Load", "Safe configs",
                       "Equivalence trade-off"});
    // Loads high enough that the cores/ways boundary curves (at low
    // load the generous knee-derived targets admit almost anything).
    for (const auto& [name, load] :
         std::vector<std::pair<std::string, double>>{
             {"img-dnn", 0.8}, {"specjbb", 0.8}, {"memcached", 0.8}}) {
        harness::QosRegion region = harness::mapQosRegion(
            name, load, platform::Resource::Cores,
            platform::Resource::LlcWays);
        printRegion(region);
        summary.addRow(
            {name, TextTable::percent(load, 0),
             TextTable::num(static_cast<long long>(region.safeCount())),
             region.hasEquivalenceTradeoff() ? "yes" : "no"});
    }

    // The bandwidth dimension shows the same property for the
    // bandwidth-sensitive app.
    harness::QosRegion bw = harness::mapQosRegion(
        "masstree", 0.6, platform::Resource::LlcWays,
        platform::Resource::MemBandwidth);
    printRegion(bw);
    summary.addRow({"masstree (ways x bw)", "60%",
                    TextTable::num(
                        static_cast<long long>(bw.safeCount())),
                    bw.hasEquivalenceTradeoff() ? "yes" : "no"});

    summary.print(std::cout);
    return 0;
}

/**
 * @file
 * Shared helpers for the figure benches: heatmap rendering in the
 * paper's layout and the standard grid.
 */

#ifndef CLITE_BENCH_BENCH_UTIL_H
#define CLITE_BENCH_BENCH_UTIL_H

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "common/thread_pool.h"
#include "harness/maxload.h"

namespace clite {
namespace bench {

/**
 * Apply the --threads=N flag (the serial escape hatch is --threads=1)
 * to the global thread pool. Unrecognized arguments are ignored so
 * the figure binaries keep accepting none. The CLITE_THREADS
 * environment variable sets the default when the flag is absent.
 */
inline void
applyThreadFlag(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strncmp(arg, "--threads=", 10) == 0) {
            int n = std::atoi(arg + 10);
            if (n >= 1)
                setGlobalThreadCount(n);
            else
                std::cerr << "ignoring invalid " << arg << "\n";
        }
    }
}

/**
 * Write @p table as CSV into $CLITE_BENCH_CSV_DIR/<name>.csv when the
 * environment variable is set (so every figure's series can be
 * re-plotted); a no-op otherwise.
 */
inline void
maybeWriteCsv(const TextTable& table, const std::string& name)
{
    const char* dir = std::getenv("CLITE_BENCH_CSV_DIR");
    if (dir == nullptr || *dir == '\0')
        return;
    std::string path = std::string(dir) + "/" + name + ".csv";
    table.writeCsv(path);
    std::cout << "[csv written to " << path << "]\n";
}

/** The Figs. 7/8/12 load grid (kept coarse so the bench runs in
 *  minutes on one core; the paper uses 10% steps). */
inline std::vector<double>
standardGrid()
{
    return {0.1, 0.3, 0.5, 0.7, 0.9};
}

/** Build the Figs. 7/8 heatmap table (rows: y load descending). */
inline TextTable
heatmapTable(const harness::LoadHeatmap& map, const std::string& x_label,
             const std::string& y_label)
{
    std::vector<std::string> headers = {y_label + " \\ " + x_label};
    for (double x : map.x_loads)
        headers.push_back(TextTable::percent(x, 0));
    TextTable t(headers);
    for (size_t yi = map.y_loads.size(); yi-- > 0;) {
        std::vector<std::string> row = {
            TextTable::percent(map.y_loads[yi], 0)};
        for (size_t xi = 0; xi < map.x_loads.size(); ++xi) {
            double v = map.cell[yi][xi];
            row.push_back(v > 0.0 ? TextTable::percent(v, 0) : "X");
        }
        t.addRow(row);
    }
    return t;
}

/**
 * Print a max-load heatmap in the paper's layout: rows are the y job's
 * load (descending), columns the x job's load; cells show the max
 * probe load as a percentage, or X when co-location is impossible.
 */
inline void
printHeatmap(std::ostream& os, const harness::LoadHeatmap& map,
             const std::string& x_label, const std::string& y_label)
{
    os << map.scheme << "  (rows: " << y_label << " load, cols: " << x_label
       << " load; cell: max probe load, X = impossible)\n";
    TextTable t = heatmapTable(map, x_label, y_label);
    t.print(os);
    os << "\n";
}

/** Mean supported load over all cells (summary scalar per scheme). */
inline double
heatmapMean(const harness::LoadHeatmap& map)
{
    double sum = 0.0;
    size_t n = 0;
    for (const auto& row : map.cell)
        for (double v : row) {
            sum += v;
            ++n;
        }
    return n ? sum / double(n) : 0.0;
}

} // namespace bench
} // namespace clite

#endif // CLITE_BENCH_BENCH_UTIL_H

/**
 * @file
 * Traffic-policy sweep: reoptimization count and percentile-over-time
 * QoS under realistic load shapes (workloads/traffic), naive
 * reoptimize-on-every-blip monitoring vs the RideTransients policy.
 *
 * Three trace shapes (jittered diurnal, flash crowd, diurnal+crowd
 * composite) are replayed through the OnlineManager with two arms on
 * identical seeds:
 *
 *  - naive: ReoptPolicy::Immediate with patience 1 — every violating
 *    or drifting window immediately re-runs the search;
 *  - riding: ReoptPolicy::RideTransients — a streak must also outlast
 *    the transient-ride hysteresis, so flash crowds that decay within
 *    a few windows are ridden out on the incumbent.
 *
 * The headline gate (bench/compare_bench.py --mode traffic) is on the
 * flash-crowd shape: riding must avoid >= 50% of the naive arm's
 * re-optimizations while its violating-window fraction — the fraction
 * of fault-free monitoring windows in which some LC job missed p95 —
 * rises by at most 2 points. Riding a burst trades a couple of
 * violating windows (which the naive search would have spent
 * exploring anyway, at degraded service) for not thrashing the
 * partition twice per crowd.
 *
 * Everything underneath is deterministic (seeded traces, seeded
 * noise, seeded BO, thread-count-invariant pool), so the emitted JSON
 * is byte-stable across machines: `--json=PATH` writes
 * BENCH_traffic.json, which is committed and diffed in CI. Regenerate
 * after an intended behaviour change with:
 *
 *     ./bench/fig_traffic --json=BENCH_traffic.json
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "harness/dynamic.h"
#include "workloads/catalog.h"
#include "workloads/traffic/traffic.h"

using namespace clite;

namespace {

constexpr int kSeeds = 3;
constexpr double kDurationS = 120.0;
constexpr double kWindowS = 2.0;

const char* const kShapes[] = {"jittered-diurnal", "flash-crowd",
                               "composite"};

/** Surge knobs shared by the bursty shapes: crowds every ~30 s that
 *  decay within a couple of observation windows. */
workloads::traffic::SurgeProcess::Options
surgeOptions()
{
    workloads::traffic::SurgeProcess::Options o;
    o.horizon_seconds = kDurationS;
    o.mean_interarrival_s = 30.0;
    o.decay_seconds = 2.5;
    o.mean_magnitude = 0.35;
    return o;
}

std::unique_ptr<workloads::LoadTrace>
makeTrace(const std::string& shape, uint64_t seed)
{
    using namespace workloads::traffic;
    if (shape == "jittered-diurnal") {
        JitteredDiurnalTrace::Options o;
        o.base = 0.35;
        o.amplitude = 0.2;
        o.period_seconds = 80.0;
        o.jitter = 0.05;
        o.jitter_interval_s = 4.0;
        return std::make_unique<JitteredDiurnalTrace>(seed, o);
    }
    if (shape == "flash-crowd")
        return std::make_unique<FlashCrowdTrace>(seed, 0.25,
                                                 surgeOptions());
    // Composite: a slow diurnal swell carrying flash crowds.
    JitteredDiurnalTrace::Options d;
    d.base = 0.3;
    d.amplitude = 0.15;
    d.period_seconds = 80.0;
    d.jitter = 0.03;
    d.jitter_interval_s = 4.0;
    std::vector<CompositeTrace::Component> parts;
    parts.push_back({std::make_shared<JitteredDiurnalTrace>(seed, d), 1.0});
    parts.push_back(
        {std::make_shared<FlashCrowdTrace>(seed + 17, 0.01, surgeOptions()),
         1.0});
    return std::make_unique<CompositeTrace>(std::move(parts));
}

harness::ServerSpec
makeSpec(uint64_t seed)
{
    harness::ServerSpec spec;
    spec.jobs = {workloads::lcJob("memcached", 0.3),
                 workloads::lcJob("img-dnn", 0.1),
                 workloads::bgJob("swaptions")};
    spec.seed = seed;
    return spec;
}

core::CliteOptions
fastClite(uint64_t seed)
{
    core::CliteOptions o;
    o.seed = seed;
    o.max_iterations = 10;
    o.polish_iterations = 2;
    return o;
}

core::MonitorOptions
naiveOptions()
{
    core::MonitorOptions o;
    o.violation_patience = 1;
    o.drift_patience = 1;
    o.reopt_policy = core::ReoptPolicy::Immediate;
    return o;
}

core::MonitorOptions
ridingOptions()
{
    core::MonitorOptions o = naiveOptions();
    o.reopt_policy = core::ReoptPolicy::RideTransients;
    o.transient_ride_windows = 3;
    return o;
}

struct ArmStats
{
    double reopts_sum = 0.0;
    double violating_sum = 0.0; ///< Violating-window fractions.
    double qos_met_sum = 0.0;
    double ridden_sum = 0.0;
    double sustained_sum = 0.0;
    int runs = 0;

    double reoptsMean() const { return runs ? reopts_sum / runs : 0.0; }
    double violatingMean() const
    {
        return runs ? violating_sum / runs : 0.0;
    }
    double qosMetMean() const { return runs ? qos_met_sum / runs : 0.0; }
    double riddenMean() const { return runs ? ridden_sum / runs : 0.0; }
    double sustainedMean() const
    {
        return runs ? sustained_sum / runs : 0.0;
    }
};

struct ShapeResult
{
    std::string shape;
    ArmStats naive, riding;
};

void
accumulate(ArmStats& arm, const harness::TraceReplayResult& r)
{
    arm.reopts_sum += r.reoptimizations;
    arm.violating_sum += r.violating_window_fraction;
    arm.qos_met_sum += r.qos_met_fraction;
    arm.ridden_sum += r.transients_ridden;
    arm.sustained_sum += r.sustained_shifts;
    ++arm.runs;
}

ShapeResult
runShape(const std::string& shape)
{
    ShapeResult out;
    out.shape = shape;
    for (int s = 0; s < kSeeds; ++s) {
        const uint64_t trace_seed = 300 + uint64_t(s);
        const uint64_t noise_seed = 100 + uint64_t(s);
        const uint64_t bo_seed = 200 + uint64_t(s);
        std::unique_ptr<workloads::LoadTrace> trace =
            makeTrace(shape, trace_seed);

        // Both arms replay the identical trace on identically seeded
        // servers; only the reoptimization policy differs.
        accumulate(out.naive,
                   harness::replayLoadTrace(makeSpec(noise_seed), 0,
                                            *trace, kDurationS, kWindowS,
                                            fastClite(bo_seed),
                                            naiveOptions()));
        accumulate(out.riding,
                   harness::replayLoadTrace(makeSpec(noise_seed), 0,
                                            *trace, kDurationS, kWindowS,
                                            fastClite(bo_seed),
                                            ridingOptions()));
    }
    return out;
}

std::string
g(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

void
writeJson(const std::vector<ShapeResult>& results, const std::string& path)
{
    const ShapeResult* flash = nullptr;
    for (const ShapeResult& r : results)
        if (r.shape == "flash-crowd")
            flash = &r;

    std::ofstream out(path, std::ios::trunc);
    if (!out.good()) {
        std::cerr << "cannot write " << path << "\n";
        return;
    }
    out << "{\n  \"bench\": \"fig_traffic\",\n";
    out << "  \"metric\": \"reoptimizations and violating-window "
           "fraction, naive vs transient-riding policy\",\n";
    out << "  \"seeds_per_shape\": " << kSeeds << ",\n";
    out << "  \"duration_s\": " << g(kDurationS)
        << ", \"window_s\": " << g(kWindowS) << ",\n  \"shapes\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const ShapeResult& r = results[i];
        out << "    {\"shape\": \"" << r.shape << "\",\n"
            << "     \"naive_reopts_mean\": " << g(r.naive.reoptsMean())
            << ", \"riding_reopts_mean\": " << g(r.riding.reoptsMean())
            << ",\n     \"naive_violating_fraction\": "
            << g(r.naive.violatingMean())
            << ", \"riding_violating_fraction\": "
            << g(r.riding.violatingMean())
            << ",\n     \"naive_qos_met_fraction\": "
            << g(r.naive.qosMetMean())
            << ", \"riding_qos_met_fraction\": "
            << g(r.riding.qosMetMean())
            << ",\n     \"transients_ridden_mean\": "
            << g(r.riding.riddenMean())
            << ", \"sustained_shifts_mean\": "
            << g(r.riding.sustainedMean()) << ", \"runs\": "
            << r.riding.runs << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ],\n  \"flash_crowd\": {\n";
    if (flash != nullptr) {
        const double reduction =
            flash->naive.reoptsMean() > 0.0
                ? 1.0 - flash->riding.reoptsMean() /
                            flash->naive.reoptsMean()
                : 0.0;
        out << "    \"naive_reopts_mean\": "
            << g(flash->naive.reoptsMean()) << ",\n";
        out << "    \"riding_reopts_mean\": "
            << g(flash->riding.reoptsMean()) << ",\n";
        out << "    \"reopt_reduction\": " << g(reduction) << ",\n";
        out << "    \"violating_increase\": "
            << g(flash->riding.violatingMean() -
                 flash->naive.violatingMean())
            << ",\n";
        out << "    \"transients_ridden_mean\": "
            << g(flash->riding.riddenMean()) << "\n";
    }
    out << "  }\n}\n";
    std::cout << "[json written to " << path << "]\n";
}

} // namespace

int
main(int argc, char** argv)
{
    bench::applyThreadFlag(argc, argv);
    std::string json_path;
    for (int i = 1; i < argc; ++i)
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;

    std::vector<ShapeResult> results;
    for (const char* shape : kShapes)
        results.push_back(runShape(shape));

    std::printf("%-18s %8s %8s %10s %10s %10s %8s %8s\n", "shape",
                "n.reopt", "r.reopt", "n.violfr", "r.violfr", "reduction",
                "ridden", "sustain");
    for (const ShapeResult& r : results) {
        const double reduction =
            r.naive.reoptsMean() > 0.0
                ? 1.0 - r.riding.reoptsMean() / r.naive.reoptsMean()
                : 0.0;
        std::printf("%-18s %8.2f %8.2f %10.3f %10.3f %9.1f%% %8.2f %8.2f\n",
                    r.shape.c_str(), r.naive.reoptsMean(),
                    r.riding.reoptsMean(), r.naive.violatingMean(),
                    r.riding.violatingMean(), 100.0 * reduction,
                    r.riding.riddenMean(), r.riding.sustainedMean());
    }

    if (!json_path.empty())
        writeJson(results, json_path);
    return 0;
}

/**
 * @file
 * Regenerates Table 3 (the LC and BG workload set) along with the
 * calibrated load scales and QoS targets derived per the Sec. 5.1
 * methodology (knee of the isolated QPS-vs-p95 curve).
 */

#include <iostream>

#include "common/table.h"
#include "workloads/catalog.h"

using namespace clite;

int
main()
{
    printBanner(std::cout, "Table 3: Latency-Critical (LC) workloads");
    TextTable lc({"Workload", "Description", "Max load (QPS)",
                  "QoS p95 (ms)", "Parallelism ceiling"});
    for (const auto& name : workloads::lcWorkloadNames()) {
        workloads::WorkloadProfile p = workloads::lcWorkload(name);
        lc.addRow({p.name, p.description, TextTable::num(p.max_qps, 0),
                   TextTable::num(p.qos_p95_ms, 3),
                   TextTable::num(
                       static_cast<long long>(p.max_useful_cores))});
    }
    lc.print(std::cout);

    printBanner(std::cout, "Table 3: Background (BG) workloads");
    TextTable bg({"Workload", "Description", "Parallel frac.",
                  "LLC half-ways", "DRAM MB/s/core"});
    for (const auto& name : workloads::bgWorkloadNames()) {
        workloads::WorkloadProfile p = workloads::bgWorkload(name);
        bg.addRow({p.name, p.description,
                   TextTable::num(p.parallel_fraction, 2),
                   TextTable::num(p.llc_half_ways, 1),
                   TextTable::num(p.traffic_mbps_per_core, 0)});
    }
    bg.print(std::cout);
    return 0;
}

/**
 * @file
 * Regenerates Figure 14: multiple BG jobs co-located with multiple LC
 * jobs — per-BG-job performance and the mean, per scheme. Paper
 * result: CLITE reaches ~88% of ORACLE's BG performance on average
 * (its Eq. 3 objective maximizes the mean over ALL BG jobs); the next
 * best technique stays under 75%.
 */

#include <iostream>

#include "bench_util.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "harness/analysis.h"
#include "workloads/catalog.h"

using namespace clite;

namespace {

void
runMix(const std::string& label,
       const std::vector<std::string>& bg_names,
       const std::vector<workloads::JobSpec>& lc_jobs)
{
    std::cout << label << "\n";
    std::vector<std::string> headers = {"Scheme"};
    for (const auto& bg : bg_names)
        headers.push_back(bg);
    headers.push_back("mean");
    headers.push_back("QoS");
    TextTable t(headers);

    // The four schemes are independent seeded runs: fan out on the
    // pool, render rows in the fixed scheme order afterwards.
    const std::vector<std::string> schemes = {"oracle", "clite",
                                              "parties", "genetic"};
    std::vector<harness::SchemeOutcome> outs = globalPool().parallelMap(
        schemes.size(), [&](size_t s) {
            harness::ServerSpec spec;
            spec.jobs = lc_jobs;
            for (const auto& bg : bg_names)
                spec.jobs.push_back(workloads::bgJob(bg));
            spec.seed = 55;
            return harness::runScheme(schemes[s], spec, spec.seed);
        });

    for (size_t s = 0; s < schemes.size(); ++s) {
        const std::string& scheme = schemes[s];
        const harness::SchemeOutcome& out = outs[s];
        std::vector<std::string> row = {scheme};
        double sum = 0.0;
        int n = 0;
        for (const auto& ob : out.truth_obs) {
            if (ob.is_lc)
                continue;
            row.push_back(TextTable::percent(ob.perfNorm(), 0));
            sum += ob.perfNorm();
            ++n;
        }
        row.push_back(TextTable::percent(n ? sum / n : 0.0, 1));
        row.push_back(out.truth.all_qos_met ? "met" : "MISSED");
        t.addRow(row);
    }
    t.print(std::cout);
    std::cout << "\n";
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "Figure 14: multiple BG jobs with multiple LC jobs "
                "(per-BG performance vs isolated)");
    runMix("img-dnn@20% + memcached@20% + {BS, FA, SC}",
           {"blackscholes", "fluidanimate", "streamcluster"},
           {workloads::lcJob("img-dnn", 0.2),
            workloads::lcJob("memcached", 0.2)});
    runMix("masstree@20% + xapian@20% + {CN, FM, SW}",
           {"canneal", "freqmine", "swaptions"},
           {workloads::lcJob("masstree", 0.2),
            workloads::lcJob("xapian", 0.2)});
    return 0;
}

#include "store/warm_start.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "common/log.h"
#include "platform/server.h"

namespace clite {
namespace store {

namespace {

int64_t
quantize(double v)
{
    return llround(v * 1e6);
}

/** Canonical descriptor sort key (load last, as in the signature). */
std::tuple<std::string, bool, int64_t, std::string, int64_t>
jobKey(const SignatureJob& j)
{
    return {j.name, j.is_lc, quantize(j.qos_p95_ms), j.trace_kind,
            quantize(j.load_fraction)};
}

SignatureJob
describeJob(const workloads::JobSpec& spec)
{
    SignatureJob j;
    j.name = spec.profile.name;
    j.is_lc = spec.isLatencyCritical();
    j.qos_p95_ms = j.is_lc ? spec.profile.qos_p95_ms : 0.0;
    // Mirror MixSignature::of: trace-driven jobs are identified by
    // their trace kind and mean load, not the window's instantaneous
    // load, so checkpoints of a trace-driven mix key consistently.
    j.trace_kind = j.is_lc ? spec.trace_kind : std::string();
    j.load_fraction = !j.is_lc ? 0.0
                      : j.trace_kind.empty() ? spec.load_fraction
                                             : spec.trace_mean_load;
    return j;
}

/**
 * Map snapshot job indices onto server job indices: both descriptor
 * lists are sorted canonically and paired position-wise (the same
 * pairing the signature distance uses), so the mapping is total and
 * deterministic whenever the mixes are structurally compatible.
 * @return empty vector when they are not.
 */
std::vector<size_t>
jobPermutation(const std::vector<SignatureJob>& snap_jobs,
               const platform::SimulatedServer& server)
{
    if (snap_jobs.size() != server.jobCount())
        return {};
    std::vector<size_t> snap_order(snap_jobs.size());
    std::vector<size_t> server_order(snap_jobs.size());
    std::vector<SignatureJob> server_jobs;
    for (size_t j = 0; j < server.jobCount(); ++j)
        server_jobs.push_back(describeJob(server.job(j)));
    for (size_t i = 0; i < snap_jobs.size(); ++i)
        snap_order[i] = server_order[i] = i;
    std::sort(snap_order.begin(), snap_order.end(),
              [&](size_t a, size_t b) {
                  return jobKey(snap_jobs[a]) < jobKey(snap_jobs[b]);
              });
    std::sort(server_order.begin(), server_order.end(),
              [&](size_t a, size_t b) {
                  return jobKey(server_jobs[a]) < jobKey(server_jobs[b]);
              });
    std::vector<size_t> perm(snap_jobs.size());
    for (size_t i = 0; i < snap_order.size(); ++i) {
        const SignatureJob& a = snap_jobs[snap_order[i]];
        const SignatureJob& b = server_jobs[server_order[i]];
        // Load levels may differ (similar-mix priors); everything
        // else must match for the rows to be transferable.
        if (a.name != b.name || a.is_lc != b.is_lc ||
            quantize(a.qos_p95_ms) != quantize(b.qos_p95_ms))
            return {};
        perm[snap_order[i]] = server_order[i];
    }
    return perm;
}

/** Rebuild one allocation from snapshot cells, remapping job rows. */
std::optional<platform::Allocation>
allocationFromCells(const std::vector<int32_t>& cells,
                    const std::vector<size_t>& perm,
                    const platform::ServerConfig& config)
{
    const size_t njobs = perm.size();
    const size_t nres = config.resourceCount();
    if (cells.size() != njobs * nres)
        return std::nullopt;
    platform::Allocation alloc(njobs, config);
    for (size_t sj = 0; sj < njobs; ++sj)
        for (size_t r = 0; r < nres; ++r)
            alloc.set(perm[sj], r, cells[sj * nres + r]);
    if (!alloc.valid())
        return std::nullopt;
    return alloc;
}

} // namespace

core::WarmStart
warmStartFromSnapshot(const Snapshot& snap,
                      const platform::SimulatedServer& server,
                      const WarmStartOptions& options, bool exact)
{
    core::WarmStart warm;
    const platform::ServerConfig& config = server.config();

    // Knob spaces must agree knob-for-knob.
    if (snap.knob_kinds.size() != config.resourceCount())
        return warm;
    for (size_t r = 0; r < config.resourceCount(); ++r)
        if (snap.knob_kinds[r] != uint8_t(config.resource(r).kind) ||
            snap.knob_units[r] != config.resource(r).units)
            return warm;

    std::vector<size_t> perm = jobPermutation(snap.jobs, server);
    if (perm.empty())
        return warm;

    std::set<std::string> seen;
    if (!snap.incumbent.empty()) {
        std::optional<platform::Allocation> inc =
            allocationFromCells(snap.incumbent, perm, config);
        if (inc.has_value()) {
            seen.insert(inc->key());
            warm.incumbent = std::move(*inc);
        }
    }

    // Prior configurations ranked QoS-feasible-first, then by score,
    // with the original trace order as the deterministic tie-break.
    std::vector<size_t> order(snap.samples.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        const SnapshotSample& sa = snap.samples[a];
        const SnapshotSample& sb = snap.samples[b];
        if (sa.all_qos_met != sb.all_qos_met)
            return sa.all_qos_met;
        return sa.score > sb.score;
    });
    for (size_t idx : order) {
        if (int(warm.configs.size()) >= options.max_configs)
            break;
        std::optional<platform::Allocation> alloc =
            allocationFromCells(snap.samples[idx].cells, perm, config);
        if (!alloc.has_value() || !seen.insert(alloc->key()).second)
            continue;
        warm.configs.push_back(std::move(*alloc));
    }

    warm.trusted_feasible = exact && warm.incumbent.has_value() &&
                            snap.phase == ControllerPhase::Steady &&
                            snap.incumbent_qos_met;
    return warm;
}

Snapshot
captureSnapshot(const platform::SimulatedServer& server,
                const core::ControllerResult& result,
                const platform::Allocation& incumbent,
                ControllerPhase phase, bool incumbent_qos_met,
                uint64_t windows, size_t max_samples)
{
    Snapshot snap;
    const platform::ServerConfig& config = server.config();
    for (size_t j = 0; j < server.jobCount(); ++j)
        snap.jobs.push_back(describeJob(server.job(j)));
    for (size_t r = 0; r < config.resourceCount(); ++r) {
        snap.knob_kinds.push_back(uint8_t(config.resource(r).kind));
        snap.knob_units.push_back(config.resource(r).units);
    }

    const size_t njobs = server.jobCount();
    const size_t nres = config.resourceCount();
    auto flatten = [&](const platform::Allocation& a) {
        std::vector<int32_t> cells(njobs * nres);
        for (size_t j = 0; j < njobs; ++j)
            for (size_t r = 0; r < nres; ++r)
                cells[j * nres + r] = a.get(j, r);
        return cells;
    };

    // Best-score-first usable samples (trace order breaks ties), so a
    // capped snapshot keeps the configurations worth re-evaluating.
    std::vector<size_t> order;
    for (size_t i = 0; i < result.trace.size(); ++i)
        if (result.trace[i].usable() &&
            result.trace[i].alloc.jobs() == njobs &&
            result.trace[i].alloc.resources() == nres)
            order.push_back(i);
    std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return result.trace[a].score > result.trace[b].score;
    });
    if (order.size() > max_samples)
        order.resize(max_samples);
    for (size_t idx : order) {
        const core::SampleRecord& rec = result.trace[idx];
        SnapshotSample s;
        s.cells = flatten(rec.alloc);
        s.score = rec.score;
        s.all_qos_met = rec.all_qos_met;
        snap.samples.push_back(std::move(s));
    }

    if (incumbent.jobs() == njobs && incumbent.resources() == nres)
        snap.incumbent = flatten(incumbent);
    snap.phase = phase;
    snap.incumbent_qos_met = incumbent_qos_met;
    snap.windows = windows;
    return snap;
}

} // namespace store
} // namespace clite

/**
 * @file
 * Bridges between stored snapshots and the live controller: convert a
 * Snapshot into a core::WarmStart that seeds CLITE's bootstrap, and
 * capture a controller's learned state into a Snapshot for the store.
 *
 * Cold-start fallback contract: every conversion is defensive. A
 * snapshot whose shape does not match the server (job count, knob
 * kinds/units), or whose allocations do not validate, yields an EMPTY
 * WarmStart — the caller proceeds exactly as if no prior existed.
 * Decode failures never propagate past this layer.
 */

#ifndef CLITE_STORE_WARM_START_H
#define CLITE_STORE_WARM_START_H

#include "core/clite.h"
#include "core/controller.h"
#include "store/snapshot.h"

namespace clite {
namespace store {

/** Warm-start extraction knobs. */
struct WarmStartOptions
{
    /** Prior configurations (beyond the incumbent) to re-evaluate. */
    int max_configs = 3;
    /**
     * Maximum signature distance for a similar-mix prior (sum of
     * absolute load-level differences across jobs).
     */
    double max_distance = 0.35;
};

/**
 * Turn @p snap into a WarmStart for @p server's current mix.
 *
 * @param exact True when the snapshot's signature matched the mix
 *     exactly (enables trusted_feasible when the prior converged with
 *     all QoS met); false for a similar-mix prior, which only seeds
 *     configurations and keeps the full infeasibility bootstrap.
 * @return An empty WarmStart when the snapshot does not fit @p server.
 */
core::WarmStart warmStartFromSnapshot(
    const Snapshot& snap, const platform::SimulatedServer& server,
    const WarmStartOptions& options, bool exact);

/**
 * Capture controller state into a Snapshot: @p server's current mix
 * plus the usable samples of @p result (quarantined samples are
 * faulted telemetry — they never enter a snapshot), the incumbent the
 * manager is monitoring, and lifecycle metadata.
 *
 * Samples are stored best-score-first and capped at
 * @p max_samples so snapshots stay small; the incumbent is always
 * retained.
 */
Snapshot captureSnapshot(const platform::SimulatedServer& server,
                         const core::ControllerResult& result,
                         const platform::Allocation& incumbent,
                         ControllerPhase phase, bool incumbent_qos_met,
                         uint64_t windows, size_t max_samples = 64);

} // namespace store
} // namespace clite

#endif // CLITE_STORE_WARM_START_H

/**
 * @file
 * Versioned, CRC-checked binary snapshots of learned controller state.
 *
 * A Snapshot is the repo's first durable artifact: everything a CLITE
 * controller learned about one job mix — the GP training set
 * (evaluated configurations with their Eq. 3 scores and QoS
 * outcomes), the incumbent allocation, and the controller phase — in
 * a form another node or a restarted controller can warm-start from.
 *
 * Wire format (all integers little-endian):
 *
 *     u32 magic   "CLSP"
 *     u32 version (kSnapshotVersion)
 *     u32 payload_size
 *     u8  payload[payload_size]
 *     u32 crc32(payload)   — IEEE 802.3 polynomial
 *
 * Payload layout (version 1):
 *
 *     u32 njobs; njobs × { u16 name_len; u8 name[]; u8 is_lc;
 *                          f64 qos_p95_ms; f64 load_fraction }
 *     u32 nknobs; nknobs × { u8 kind; i32 units }
 *     u32 nsamples; nsamples × { (njobs·nknobs) × i32 cells;
 *                                f64 score; u8 all_qos_met }
 *     u8  has_incumbent; [ (njobs·nknobs) × i32 cells ]
 *     u8  phase; u8 incumbent_qos_met; u64 windows
 *
 * Jobs are stored in SERVER order (so cells map to server job
 * indices); the canonical signature is recomputed from the
 * descriptors on demand, which keeps the two definitions incapable of
 * drifting apart.
 *
 * Robustness contract: decode() never throws and never returns a
 * partially-filled snapshot. Any corruption — truncation, bit flips
 * (caught by the CRC), an unknown version, an oversized count, an
 * out-of-range enum — yields std::nullopt, which every consumer
 * treats as "no prior knowledge" (clean cold start). Doubles are
 * round-tripped bit-exactly (IEEE-754 bit patterns), so a snapshot
 * re-encoded on another node hashes identically.
 */

#ifndef CLITE_STORE_SNAPSHOT_H
#define CLITE_STORE_SNAPSHOT_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "store/signature.h"

namespace clite {
namespace store {

/** Snapshot format version written by encode(). */
constexpr uint32_t kSnapshotVersion = 1;

/** Magic bytes "CLSP" as a little-endian u32. */
constexpr uint32_t kSnapshotMagic = 0x50534C43u;

/** Where the controller was in its lifecycle when checkpointed. */
enum class ControllerPhase : uint8_t {
    Search = 0,  ///< Still searching (or search found nothing usable).
    Steady = 1,  ///< Converged; monitoring the incumbent.
    Degraded = 2,///< Watchdog demoted the incumbent to a fallback.
};

/** One evaluated configuration of the GP training set. */
struct SnapshotSample
{
    std::vector<int32_t> cells; ///< Allocation, job-major (njobs·nknobs).
    double score = 0.0;         ///< Eq. 3 score observed.
    bool all_qos_met = false;   ///< QoS outcome of the window.
};

/** Serialized controller state for one job mix. */
struct Snapshot
{
    std::vector<SignatureJob> jobs;  ///< Server-order job descriptors.
    std::vector<uint8_t> knob_kinds; ///< Per-resource kinds.
    std::vector<int32_t> knob_units; ///< Per-resource unit counts.
    std::vector<SnapshotSample> samples; ///< GP training set.
    std::vector<int32_t> incumbent;  ///< Incumbent cells (empty: none).
    ControllerPhase phase = ControllerPhase::Search;
    bool incumbent_qos_met = false;  ///< Last window met all QoS?
    uint64_t windows = 0;            ///< Windows observed on this mix.

    /** Canonical signature recomputed from the descriptors. */
    MixSignature signature() const;
};

/** IEEE CRC-32 (the zlib/PNG polynomial). */
uint32_t crc32(const uint8_t* data, size_t size);

/** Serialize to the wire format above. */
std::vector<uint8_t> encode(const Snapshot& snap);

/**
 * Parse a snapshot; std::nullopt on ANY corruption (see the
 * robustness contract in the file header). Never throws.
 */
std::optional<Snapshot> decode(const uint8_t* data, size_t size);

/** Convenience overload. */
std::optional<Snapshot> decode(const std::vector<uint8_t>& bytes);

/** Human-readable JSON debug dump (not a parse format). */
std::string toJson(const Snapshot& snap);

} // namespace store
} // namespace clite

#endif // CLITE_STORE_SNAPSHOT_H

#include "store/snapshot.h"

#include <cstdio>
#include <cstring>
#include <sstream>

namespace clite {
namespace store {

namespace {

// Sanity ceilings rejected at decode: corrupt length fields must not
// drive multi-gigabyte allocations before the CRC is even checked.
constexpr uint32_t kMaxJobs = 64;
constexpr uint32_t kMaxKnobs = 32;
constexpr uint32_t kMaxSamples = 65536;
constexpr uint32_t kMaxNameLen = 256;
constexpr uint32_t kMaxPayload = 1u << 26; // 64 MiB

class Writer
{
  public:
    void u8(uint8_t v) { out_.push_back(v); }
    void u16(uint16_t v)
    {
        for (int i = 0; i < 2; ++i)
            out_.push_back(uint8_t(v >> (8 * i)));
    }
    void u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            out_.push_back(uint8_t(v >> (8 * i)));
    }
    void u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            out_.push_back(uint8_t(v >> (8 * i)));
    }
    void i32(int32_t v) { u32(uint32_t(v)); }
    void f64(double v)
    {
        uint64_t bits;
        static_assert(sizeof bits == sizeof v);
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }
    void str(const std::string& s)
    {
        u16(uint16_t(s.size()));
        out_.insert(out_.end(), s.begin(), s.end());
    }
    std::vector<uint8_t> take() { return std::move(out_); }

  private:
    std::vector<uint8_t> out_;
};

/** Bounds-checked little-endian reader; every get reports success. */
class Reader
{
  public:
    Reader(const uint8_t* data, size_t size) : p_(data), n_(size) {}

    bool u8(uint8_t* v)
    {
        if (pos_ + 1 > n_)
            return false;
        *v = p_[pos_++];
        return true;
    }
    bool u16(uint16_t* v)
    {
        if (pos_ + 2 > n_)
            return false;
        *v = uint16_t(p_[pos_]) | uint16_t(p_[pos_ + 1]) << 8;
        pos_ += 2;
        return true;
    }
    bool u32(uint32_t* v)
    {
        if (pos_ + 4 > n_)
            return false;
        *v = 0;
        for (int i = 0; i < 4; ++i)
            *v |= uint32_t(p_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return true;
    }
    bool u64(uint64_t* v)
    {
        if (pos_ + 8 > n_)
            return false;
        *v = 0;
        for (int i = 0; i < 8; ++i)
            *v |= uint64_t(p_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return true;
    }
    bool i32(int32_t* v)
    {
        uint32_t u;
        if (!u32(&u))
            return false;
        *v = int32_t(u);
        return true;
    }
    bool f64(double* v)
    {
        uint64_t bits;
        if (!u64(&bits))
            return false;
        std::memcpy(v, &bits, sizeof bits);
        return true;
    }
    bool str(std::string* s, uint32_t max_len)
    {
        uint16_t len;
        if (!u16(&len) || len > max_len || pos_ + len > n_)
            return false;
        s->assign(reinterpret_cast<const char*>(p_ + pos_), len);
        pos_ += len;
        return true;
    }
    bool done() const { return pos_ == n_; }

  private:
    const uint8_t* p_;
    size_t n_;
    size_t pos_ = 0;
};

} // namespace

uint32_t
crc32(const uint8_t* data, size_t size)
{
    static const auto table = [] {
        std::vector<uint32_t> t(256);
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    uint32_t c = 0xFFFFFFFFu;
    for (size_t i = 0; i < size; ++i)
        c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

MixSignature
Snapshot::signature() const
{
    std::vector<int> units(knob_units.begin(), knob_units.end());
    return MixSignature::of(knob_kinds, units, jobs);
}

std::vector<uint8_t>
encode(const Snapshot& snap)
{
    Writer payload;
    payload.u32(uint32_t(snap.jobs.size()));
    for (const SignatureJob& j : snap.jobs) {
        payload.str(j.name);
        payload.u8(j.is_lc ? 1 : 0);
        payload.f64(j.qos_p95_ms);
        payload.f64(j.load_fraction);
    }
    payload.u32(uint32_t(snap.knob_kinds.size()));
    for (size_t r = 0; r < snap.knob_kinds.size(); ++r) {
        payload.u8(snap.knob_kinds[r]);
        payload.i32(snap.knob_units[r]);
    }
    payload.u32(uint32_t(snap.samples.size()));
    for (const SnapshotSample& s : snap.samples) {
        for (int32_t c : s.cells)
            payload.i32(c);
        payload.f64(s.score);
        payload.u8(s.all_qos_met ? 1 : 0);
    }
    payload.u8(snap.incumbent.empty() ? 0 : 1);
    for (int32_t c : snap.incumbent)
        payload.i32(c);
    payload.u8(uint8_t(snap.phase));
    payload.u8(snap.incumbent_qos_met ? 1 : 0);
    payload.u64(snap.windows);

    std::vector<uint8_t> body = payload.take();
    Writer out;
    out.u32(kSnapshotMagic);
    out.u32(kSnapshotVersion);
    out.u32(uint32_t(body.size()));
    std::vector<uint8_t> result = out.take();
    result.insert(result.end(), body.begin(), body.end());
    Writer tail;
    tail.u32(crc32(body.data(), body.size()));
    std::vector<uint8_t> crc = tail.take();
    result.insert(result.end(), crc.begin(), crc.end());
    return result;
}

std::optional<Snapshot>
decode(const uint8_t* data, size_t size)
{
    if (data == nullptr)
        return std::nullopt;
    Reader header(data, size);
    uint32_t magic, version, payload_size;
    if (!header.u32(&magic) || !header.u32(&version) ||
        !header.u32(&payload_size))
        return std::nullopt;
    if (magic != kSnapshotMagic || version != kSnapshotVersion ||
        payload_size > kMaxPayload)
        return std::nullopt;
    if (size != 12 + size_t(payload_size) + 4)
        return std::nullopt;
    const uint8_t* body = data + 12;
    Reader tail(data + 12 + payload_size, 4);
    uint32_t stored_crc;
    if (!tail.u32(&stored_crc) || stored_crc != crc32(body, payload_size))
        return std::nullopt;

    Reader r(body, payload_size);
    Snapshot snap;
    uint32_t njobs;
    if (!r.u32(&njobs) || njobs == 0 || njobs > kMaxJobs)
        return std::nullopt;
    snap.jobs.resize(njobs);
    for (SignatureJob& j : snap.jobs) {
        uint8_t lc;
        if (!r.str(&j.name, kMaxNameLen) || !r.u8(&lc) ||
            !r.f64(&j.qos_p95_ms) || !r.f64(&j.load_fraction) || lc > 1)
            return std::nullopt;
        j.is_lc = lc == 1;
    }
    uint32_t nknobs;
    if (!r.u32(&nknobs) || nknobs == 0 || nknobs > kMaxKnobs)
        return std::nullopt;
    snap.knob_kinds.resize(nknobs);
    snap.knob_units.resize(nknobs);
    for (uint32_t k = 0; k < nknobs; ++k) {
        if (!r.u8(&snap.knob_kinds[k]) || !r.i32(&snap.knob_units[k]) ||
            snap.knob_units[k] < 1)
            return std::nullopt;
    }
    const size_t ncells = size_t(njobs) * nknobs;
    uint32_t nsamples;
    if (!r.u32(&nsamples) || nsamples > kMaxSamples)
        return std::nullopt;
    snap.samples.resize(nsamples);
    for (SnapshotSample& s : snap.samples) {
        s.cells.resize(ncells);
        for (int32_t& c : s.cells)
            if (!r.i32(&c) || c < 1)
                return std::nullopt;
        uint8_t qos;
        if (!r.f64(&s.score) || !r.u8(&qos) || qos > 1)
            return std::nullopt;
        s.all_qos_met = qos == 1;
    }
    uint8_t has_incumbent;
    if (!r.u8(&has_incumbent) || has_incumbent > 1)
        return std::nullopt;
    if (has_incumbent) {
        snap.incumbent.resize(ncells);
        for (int32_t& c : snap.incumbent)
            if (!r.i32(&c) || c < 1)
                return std::nullopt;
    }
    uint8_t phase, qos_met;
    if (!r.u8(&phase) || phase > uint8_t(ControllerPhase::Degraded) ||
        !r.u8(&qos_met) || qos_met > 1 || !r.u64(&snap.windows))
        return std::nullopt;
    snap.phase = ControllerPhase(phase);
    snap.incumbent_qos_met = qos_met == 1;
    if (!r.done())
        return std::nullopt; // trailing garbage inside the payload
    return snap;
}

std::optional<Snapshot>
decode(const std::vector<uint8_t>& bytes)
{
    return decode(bytes.data(), bytes.size());
}

namespace {

std::string
g17(double v)
{
    char buf[64];
    snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

void
dumpCells(std::ostringstream& os, const std::vector<int32_t>& cells)
{
    os << "[";
    for (size_t i = 0; i < cells.size(); ++i)
        os << (i ? "," : "") << cells[i];
    os << "]";
}

} // namespace

std::string
toJson(const Snapshot& snap)
{
    std::ostringstream os;
    os << "{\n  \"version\": " << kSnapshotVersion << ",\n";
    os << "  \"signature\": \"" << snap.signature().key() << "\",\n";
    os << "  \"jobs\": [\n";
    for (size_t j = 0; j < snap.jobs.size(); ++j) {
        const SignatureJob& job = snap.jobs[j];
        os << "    {\"name\": \"" << job.name << "\", \"is_lc\": "
           << (job.is_lc ? "true" : "false") << ", \"qos_p95_ms\": "
           << g17(job.qos_p95_ms) << ", \"load_fraction\": "
           << g17(job.load_fraction) << "}"
           << (j + 1 < snap.jobs.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"knobs\": [";
    for (size_t r = 0; r < snap.knob_units.size(); ++r)
        os << (r ? "," : "") << "{\"kind\": " << int(snap.knob_kinds[r])
           << ", \"units\": " << snap.knob_units[r] << "}";
    os << "],\n  \"samples\": [\n";
    for (size_t s = 0; s < snap.samples.size(); ++s) {
        os << "    {\"cells\": ";
        dumpCells(os, snap.samples[s].cells);
        os << ", \"score\": " << g17(snap.samples[s].score)
           << ", \"all_qos_met\": "
           << (snap.samples[s].all_qos_met ? "true" : "false") << "}"
           << (s + 1 < snap.samples.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"incumbent\": ";
    dumpCells(os, snap.incumbent);
    os << ",\n  \"phase\": " << int(snap.phase)
       << ",\n  \"incumbent_qos_met\": "
       << (snap.incumbent_qos_met ? "true" : "false")
       << ",\n  \"windows\": " << snap.windows << "\n}\n";
    return os.str();
}

} // namespace store
} // namespace clite

/**
 * @file
 * The warm-start profile store: snapshots keyed by job-mix signature.
 *
 * A ProfileStore maps MixSignature hashes to the freshest Snapshot of
 * that mix. Lookups come in two flavors: find() (exact signature hit —
 * a recurring mix) and nearest() (k-nearest similar mixes by signature
 * distance — same jobs at drifted load levels). Entries live in an
 * ordered map and neighbors are ranked by (distance, hash), so every
 * query is deterministic regardless of insertion order.
 *
 * Thread-safety and determinism under the fleet's thread pool: all
 * methods are mutex-protected, so concurrent reads during the
 * parallel node-step phase are safe; writes are expected to happen in
 * the fleet's SERIAL aggregation phase in node-index order (see
 * cluster/fleet.cpp), which makes the stored content — and therefore
 * every later lookup — bit-identical between serial and parallel
 * runs. A standalone OnlineManager (auto-checkpoint mode) writes from
 * its own single thread.
 *
 * Persistence is explicit: saveDir()/loadDir() write one
 * "<hex-signature>.snap" file per entry. Corrupt files are skipped
 * (and counted), never fatal — losing a snapshot only costs the warm
 * start it would have provided.
 *
 * Lifecycle (fleet-month runs see far more mixes than are worth
 * keeping): an optional entry cap evicts the least-recently-PUT entry
 * — recency advances on writes only, never on reads, so concurrent
 * lookups from pool threads cannot perturb the eviction order and
 * serial-vs-parallel determinism is preserved. An optional staleness
 * bound decays trust: an entry not refreshed for more than
 * trust_staleness puts is served with its Steady phase demoted to
 * Search, so warmStartFromSnapshot() no longer grants it
 * trusted_feasible (the full infeasibility bootstrap runs again) while
 * its configurations still seed the search.
 */

#ifndef CLITE_STORE_PROFILE_STORE_H
#define CLITE_STORE_PROFILE_STORE_H

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "store/snapshot.h"

namespace clite {
namespace store {

/** A similar-mix lookup result. */
struct Neighbor
{
    Snapshot snapshot;     ///< The stored snapshot (copy).
    double distance = 0.0; ///< Signature distance to the query.
};

/** Store lifecycle knobs. */
struct ProfileStoreOptions
{
    /**
     * Entry cap; inserting past it evicts the least-recently-put
     * entry (ties: lowest signature hash). 0 = unbounded (the
     * pre-lifecycle behaviour).
     */
    size_t max_entries = 0;
    /**
     * Puts after which an unrefreshed entry's Steady phase is served
     * demoted to Search (decaying trusted_feasible). 0 = never decay.
     */
    uint64_t trust_staleness = 0;
};

/**
 * In-memory snapshot store with optional directory persistence.
 */
class ProfileStore
{
  public:
    ProfileStore() = default;
    explicit ProfileStore(ProfileStoreOptions options);

    // The mutex makes the store non-copyable; share by pointer.
    ProfileStore(const ProfileStore&) = delete;
    ProfileStore& operator=(const ProfileStore&) = delete;

    /** Insert or replace the entry for @p snap's signature. */
    void put(Snapshot snap);

    /** Exact-signature lookup. */
    std::optional<Snapshot> find(const MixSignature& sig) const;

    /**
     * The k nearest stored mixes by signature distance, closest
     * first, ties broken by signature hash. Entries at infinite
     * distance (structurally different mixes) are never returned;
     * an exact hit (distance 0) is included when present.
     */
    std::vector<Neighbor> nearest(const MixSignature& sig, size_t k) const;

    /** Number of stored entries. */
    size_t size() const;

    /** Drop every entry (tests). */
    void clear();

    /** Corrupt snapshot files skipped by loadDir() so far. */
    uint64_t corruptRejected() const;

    /** Entries evicted by the LRU cap so far. */
    uint64_t evictions() const;

    /** The lifecycle options in effect. */
    const ProfileStoreOptions& options() const { return options_; }

    /**
     * Load every "*.snap" file under @p dir (sorted by filename for
     * determinism). Corrupt or unreadable files are skipped and
     * counted in corruptRejected(). Missing directory loads nothing.
     * @return Number of snapshots loaded.
     */
    size_t loadDir(const std::string& dir);

    /**
     * Write every entry to "<dir>/<hex-signature>.snap", creating the
     * directory if needed.
     * @return Number of snapshots written.
     */
    size_t saveDir(const std::string& dir) const;

    /** Decode one snapshot file; nullopt on any error or corruption. */
    static std::optional<Snapshot> loadFile(const std::string& path);

    /** Encode one snapshot to @p path; false on I/O failure. */
    static bool saveFile(const std::string& path, const Snapshot& snap);

  private:
    /** One stored snapshot plus its write-recency stamp. */
    struct Entry
    {
        Snapshot snap;
        uint64_t last_put = 0; ///< put_clock_ value of the last put().
    };

    /** Apply the staleness decay to a copy being served (mu_ held). */
    Snapshot serve(const Entry& entry) const;

    ProfileStoreOptions options_;
    mutable std::mutex mu_;
    std::map<uint64_t, Entry> entries_; ///< keyed by signature hash
    uint64_t put_clock_ = 0;
    uint64_t corrupt_rejected_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace store
} // namespace clite

#endif // CLITE_STORE_PROFILE_STORE_H

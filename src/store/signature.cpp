#include "store/signature.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <tuple>

#include "common/error.h"
#include "platform/server.h"

namespace clite {
namespace store {

namespace {

/**
 * Load levels are hashed at micro-unit quantization: two mixes whose
 * loads differ below 1e-6 are the same mix (float round-trip jitter
 * must not split a recurring mix into distinct store keys), while any
 * real drift lands on the similarity path instead.
 */
int64_t
quantize(double v)
{
    return llround(v * 1e6);
}

/** Canonical sort key: everything but the load, then the load (the
    load must stay last so position-wise distance pairing is the
    optimal 1-D matching within equal-identity groups). */
std::tuple<std::string, bool, int64_t, std::string, int64_t>
jobKey(const SignatureJob& j)
{
    return {j.name, j.is_lc, quantize(j.qos_p95_ms), j.trace_kind,
            quantize(j.load_fraction)};
}

class Fnv1a
{
  public:
    void bytes(const void* data, size_t size)
    {
        const uint8_t* p = static_cast<const uint8_t*>(data);
        for (size_t i = 0; i < size; ++i) {
            h_ ^= p[i];
            h_ *= 0x100000001B3ull;
        }
    }
    void u64(uint64_t v)
    {
        uint8_t b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = uint8_t(v >> (8 * i));
        bytes(b, 8);
    }
    void i64(int64_t v) { u64(uint64_t(v)); }
    void str(const std::string& s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }
    uint64_t value() const { return h_; }

  private:
    uint64_t h_ = 0xCBF29CE484222325ull;
};

} // namespace

void
MixSignature::canonicalize()
{
    std::sort(jobs_.begin(), jobs_.end(),
              [](const SignatureJob& a, const SignatureJob& b) {
                  return jobKey(a) < jobKey(b);
              });
    Fnv1a h;
    h.u64(knob_kinds_.size());
    for (size_t r = 0; r < knob_kinds_.size(); ++r) {
        h.u64(knob_kinds_[r]);
        h.i64(knob_units_[r]);
    }
    h.u64(jobs_.size());
    for (const SignatureJob& j : jobs_) {
        h.str(j.name);
        h.u64(j.is_lc ? 1 : 0);
        h.i64(quantize(j.qos_p95_ms));
        h.i64(quantize(j.load_fraction));
        // Folded only when set: static mixes keep their pre-trace
        // hashes (store keys and goldens unchanged) while trace-driven
        // mixes get distinct keys per trace shape.
        if (!j.trace_kind.empty())
            h.str(j.trace_kind);
    }
    hash_ = h.value();
}

MixSignature
MixSignature::of(const platform::ServerConfig& config,
                 const std::vector<workloads::JobSpec>& jobs)
{
    MixSignature sig;
    for (size_t r = 0; r < config.resourceCount(); ++r) {
        sig.knob_kinds_.push_back(uint8_t(config.resource(r).kind));
        sig.knob_units_.push_back(config.resource(r).units);
    }
    for (const workloads::JobSpec& spec : jobs) {
        SignatureJob j;
        j.name = spec.profile.name;
        j.is_lc = spec.isLatencyCritical();
        j.qos_p95_ms = j.is_lc ? spec.profile.qos_p95_ms : 0.0;
        j.trace_kind = j.is_lc ? spec.trace_kind : std::string();
        // Trace-driven jobs hash the trace mean: the instantaneous
        // load varies every window and would shatter a recurring mix
        // into distinct store keys.
        j.load_fraction = !j.is_lc ? 0.0
                          : j.trace_kind.empty() ? spec.load_fraction
                                                 : spec.trace_mean_load;
        sig.jobs_.push_back(std::move(j));
    }
    sig.canonicalize();
    return sig;
}

MixSignature
MixSignature::of(const platform::SimulatedServer& server)
{
    std::vector<workloads::JobSpec> jobs;
    for (size_t j = 0; j < server.jobCount(); ++j)
        jobs.push_back(server.job(j));
    return of(server.config(), jobs);
}

MixSignature
MixSignature::of(const std::vector<uint8_t>& knob_kinds,
                 const std::vector<int>& knob_units,
                 const std::vector<SignatureJob>& jobs)
{
    CLITE_CHECK(knob_kinds.size() == knob_units.size(),
                "signature knob kind/unit shapes differ: "
                    << knob_kinds.size() << " vs " << knob_units.size());
    MixSignature sig;
    sig.knob_kinds_ = knob_kinds;
    sig.knob_units_ = knob_units;
    sig.jobs_ = jobs;
    sig.canonicalize();
    return sig;
}

std::string
MixSignature::key() const
{
    char buf[17];
    snprintf(buf, sizeof buf, "%016llx",
             static_cast<unsigned long long>(hash_));
    return buf;
}

std::string
MixSignature::describe() const
{
    std::ostringstream os;
    os << key() << " [";
    for (size_t i = 0; i < jobs_.size(); ++i) {
        if (i > 0)
            os << " + ";
        os << jobs_[i].name;
        if (jobs_[i].is_lc) {
            os << "@" << jobs_[i].load_fraction;
            if (!jobs_[i].trace_kind.empty())
                os << "~" << jobs_[i].trace_kind;
        }
    }
    os << "] knobs";
    for (size_t r = 0; r < knob_units_.size(); ++r)
        os << " " << knob_units_[r];
    return os.str();
}

double
MixSignature::distance(const MixSignature& a, const MixSignature& b)
{
    constexpr double inf = std::numeric_limits<double>::infinity();
    if (a.knob_kinds_ != b.knob_kinds_ || a.knob_units_ != b.knob_units_)
        return inf;
    if (a.jobs_.size() != b.jobs_.size())
        return inf;
    // Jobs are canonically sorted with the load as the last key, so
    // position-wise pairing is the minimum-cost matching of equal-name
    // groups and any structural mismatch shows up position-wise.
    double d = 0.0;
    for (size_t i = 0; i < a.jobs_.size(); ++i) {
        const SignatureJob& ja = a.jobs_[i];
        const SignatureJob& jb = b.jobs_[i];
        if (ja.name != jb.name || ja.is_lc != jb.is_lc ||
            quantize(ja.qos_p95_ms) != quantize(jb.qos_p95_ms) ||
            ja.trace_kind != jb.trace_kind)
            return inf;
        d += std::fabs(ja.load_fraction - jb.load_fraction);
    }
    return d;
}

bool
MixSignature::operator==(const MixSignature& other) const
{
    if (hash_ != other.hash_ || knob_kinds_ != other.knob_kinds_ ||
        knob_units_ != other.knob_units_ ||
        jobs_.size() != other.jobs_.size())
        return false;
    for (size_t i = 0; i < jobs_.size(); ++i) {
        const SignatureJob& a = jobs_[i];
        const SignatureJob& b = other.jobs_[i];
        if (jobKey(a) != jobKey(b))
            return false;
    }
    return true;
}

} // namespace store
} // namespace clite

/**
 * @file
 * Canonical job-mix signatures for the warm-start profile store.
 *
 * At warehouse scale the same co-location mixes recur constantly
 * across nodes and controller restarts. A MixSignature is the
 * order-independent identity of one mix: the multiset of job
 * descriptors (workload name, class, QoS target, load level) plus the
 * knob dimensions of the server (resource kinds and unit counts).
 * Snapshots in the ProfileStore are keyed by the signature hash;
 * exact-hit lookups warm-start a controller with everything a prior
 * run of the same mix learned, and the signature distance() supports
 * k-nearest similar-mix lookups (same jobs, drifted load levels).
 *
 * Determinism contract: the signature of a mix is a pure function of
 * the descriptors above — independent of job order on the server, of
 * the node that computed it, and of the thread it was computed on.
 */

#ifndef CLITE_STORE_SIGNATURE_H
#define CLITE_STORE_SIGNATURE_H

#include <cstdint>
#include <string>
#include <vector>

#include "platform/resource.h"
#include "workloads/profile.h"

namespace clite {
namespace platform {
class SimulatedServer;
}

namespace store {

/** One job's identity inside a signature (canonicalized). */
struct SignatureJob
{
    std::string name;          ///< Workload name.
    bool is_lc = false;        ///< Latency-critical?
    double qos_p95_ms = 0.0;   ///< QoS target (0 for BG jobs).
    /**
     * Offered load level (0 for BG jobs). For a trace-driven job this
     * is the trace MEAN load — the stable identity of a load that
     * varies window to window.
     */
    double load_fraction = 0.0;
    /**
     * LoadTrace kind driving the job's load ("" for a static load).
     * Folded into the hash only when non-empty, so every static-mix
     * signature is byte-identical to what it was before traces
     * existed — but a trace-driven mix can never alias a static
     * profile (or a different trace shape) as an exact hit.
     */
    std::string trace_kind;
};

/**
 * Order-independent identity of a job mix on a knob space.
 */
class MixSignature
{
  public:
    MixSignature() = default;

    /** Signature of the mix currently hosted by @p server. */
    static MixSignature of(const platform::SimulatedServer& server);

    /** Signature of @p jobs (any order) on @p config's knob space. */
    static MixSignature of(const platform::ServerConfig& config,
                           const std::vector<workloads::JobSpec>& jobs);

    /**
     * Signature from raw descriptors (the snapshot decode path):
     * per-knob resource kinds and unit counts, plus job descriptors in
     * any order.
     */
    static MixSignature of(const std::vector<uint8_t>& knob_kinds,
                           const std::vector<int>& knob_units,
                           const std::vector<SignatureJob>& jobs);

    /** 64-bit FNV-1a hash of the canonical byte encoding. */
    uint64_t hash() const { return hash_; }

    /** Canonically sorted job descriptors. */
    const std::vector<SignatureJob>& jobs() const { return jobs_; }

    /** Per-knob resource kinds (platform::Resource as uint8). */
    const std::vector<uint8_t>& knobKinds() const { return knob_kinds_; }

    /** Per-knob unit counts. */
    const std::vector<int>& knobUnits() const { return knob_units_; }

    /** Fixed-width hex key ("%016x" of hash), for filenames. */
    std::string key() const;

    /** Human-readable one-liner for logs and JSON dumps. */
    std::string describe() const;

    /**
     * Mix distance for the k-nearest similar-mix lookup: +infinity
     * when the knob spaces differ or the job multisets differ in
     * anything but load level; otherwise the sum of absolute
     * load-level differences over the canonical pairing (both sides
     * sorted, which is the optimal 1-D matching). Exact matches have
     * distance 0.
     */
    static double distance(const MixSignature& a, const MixSignature& b);

    /** Full structural equality (not just hash equality). */
    bool operator==(const MixSignature& other) const;

  private:
    std::vector<SignatureJob> jobs_;  ///< sorted canonical order
    std::vector<uint8_t> knob_kinds_; ///< per resource, server order
    std::vector<int> knob_units_;     ///< per resource, server order
    uint64_t hash_ = 0;

    void canonicalize();
};

} // namespace store
} // namespace clite

#endif // CLITE_STORE_SIGNATURE_H

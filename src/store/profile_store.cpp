#include "store/profile_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>

#include "common/log.h"

namespace clite {
namespace store {

void
ProfileStore::put(Snapshot snap)
{
    const uint64_t key = snap.signature().hash();
    std::lock_guard<std::mutex> lock(mu_);
    entries_[key] = std::move(snap); // last writer wins
}

std::optional<Snapshot>
ProfileStore::find(const MixSignature& sig) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(sig.hash());
    if (it == entries_.end())
        return std::nullopt;
    // Hash collisions are astronomically unlikely but cheap to rule
    // out: the stored signature must structurally match the query.
    if (!(it->second.signature() == sig))
        return std::nullopt;
    return it->second;
}

std::vector<Neighbor>
ProfileStore::nearest(const MixSignature& sig, size_t k) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<double, uint64_t>> ranked;
    for (const auto& [hash, snap] : entries_) {
        double d = MixSignature::distance(sig, snap.signature());
        if (d < std::numeric_limits<double>::infinity())
            ranked.emplace_back(d, hash);
    }
    std::sort(ranked.begin(), ranked.end());
    std::vector<Neighbor> out;
    for (size_t i = 0; i < ranked.size() && i < k; ++i) {
        Neighbor n;
        n.snapshot = entries_.at(ranked[i].second);
        n.distance = ranked[i].first;
        out.push_back(std::move(n));
    }
    return out;
}

size_t
ProfileStore::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
ProfileStore::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    corrupt_rejected_ = 0;
}

uint64_t
ProfileStore::corruptRejected() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return corrupt_rejected_;
}

std::optional<Snapshot>
ProfileStore::loadFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return std::nullopt;
    return decode(bytes);
}

bool
ProfileStore::saveFile(const std::string& path, const Snapshot& snap)
{
    std::vector<uint8_t> bytes = encode(snap);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              std::streamsize(bytes.size()));
    return out.good();
}

size_t
ProfileStore::loadDir(const std::string& dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return 0;
    std::vector<std::string> paths;
    for (const auto& entry : fs::directory_iterator(dir, ec))
        if (entry.is_regular_file() && entry.path().extension() == ".snap")
            paths.push_back(entry.path().string());
    std::sort(paths.begin(), paths.end());
    size_t loaded = 0;
    for (const std::string& path : paths) {
        std::optional<Snapshot> snap = loadFile(path);
        if (!snap.has_value()) {
            std::lock_guard<std::mutex> lock(mu_);
            ++corrupt_rejected_;
            CLITE_LOG_INFO("profile store: skipping corrupt snapshot "
                           << path);
            continue;
        }
        put(std::move(*snap));
        ++loaded;
    }
    return loaded;
}

size_t
ProfileStore::saveDir(const std::string& dir) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    std::map<uint64_t, Snapshot> copy;
    {
        std::lock_guard<std::mutex> lock(mu_);
        copy = entries_;
    }
    size_t written = 0;
    for (const auto& [hash, snap] : copy) {
        const std::string path =
            (fs::path(dir) / (snap.signature().key() + ".snap")).string();
        if (saveFile(path, snap))
            ++written;
    }
    return written;
}

} // namespace store
} // namespace clite

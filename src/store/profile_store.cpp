#include "store/profile_store.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <limits>

#include "common/log.h"

namespace clite {
namespace store {

ProfileStore::ProfileStore(ProfileStoreOptions options)
    : options_(options)
{
}

void
ProfileStore::put(Snapshot snap)
{
    const uint64_t key = snap.signature().hash();
    std::lock_guard<std::mutex> lock(mu_);
    Entry& e = entries_[key];
    e.snap = std::move(snap); // last writer wins
    e.last_put = ++put_clock_; // refresh = re-put; reads never touch this
    if (options_.max_entries > 0 &&
        entries_.size() > options_.max_entries) {
        // Evict the least-recently-put entry. The ordered map breaks
        // last_put ties (impossible with a monotone clock, but cheap
        // insurance) by lowest hash, keeping eviction deterministic.
        auto victim = entries_.begin();
        for (auto it = entries_.begin(); it != entries_.end(); ++it)
            if (it->second.last_put < victim->second.last_put)
                victim = it;
        entries_.erase(victim);
        ++evictions_;
    }
}

Snapshot
ProfileStore::serve(const Entry& entry) const
{
    Snapshot snap = entry.snap;
    if (options_.trust_staleness > 0 &&
        snap.phase == ControllerPhase::Steady &&
        put_clock_ - entry.last_put > options_.trust_staleness) {
        // Stale trust decay: the mix may have shifted since this was
        // learned, so serve it as "still searching" — its samples and
        // incumbent seed the bootstrap, but trusted_feasible (which
        // would skip the infeasibility extrema) is no longer granted.
        snap.phase = ControllerPhase::Search;
    }
    return snap;
}

std::optional<Snapshot>
ProfileStore::find(const MixSignature& sig) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(sig.hash());
    if (it == entries_.end())
        return std::nullopt;
    // Hash collisions are astronomically unlikely but cheap to rule
    // out: the stored signature must structurally match the query.
    if (!(it->second.snap.signature() == sig))
        return std::nullopt;
    return serve(it->second);
}

std::vector<Neighbor>
ProfileStore::nearest(const MixSignature& sig, size_t k) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::pair<double, uint64_t>> ranked;
    for (const auto& [hash, entry] : entries_) {
        double d = MixSignature::distance(sig, entry.snap.signature());
        if (d < std::numeric_limits<double>::infinity())
            ranked.emplace_back(d, hash);
    }
    std::sort(ranked.begin(), ranked.end());
    std::vector<Neighbor> out;
    for (size_t i = 0; i < ranked.size() && i < k; ++i) {
        Neighbor n;
        n.snapshot = serve(entries_.at(ranked[i].second));
        n.distance = ranked[i].first;
        out.push_back(std::move(n));
    }
    return out;
}

size_t
ProfileStore::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
}

void
ProfileStore::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    corrupt_rejected_ = 0;
    evictions_ = 0;
    put_clock_ = 0;
}

uint64_t
ProfileStore::corruptRejected() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return corrupt_rejected_;
}

uint64_t
ProfileStore::evictions() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evictions_;
}

std::optional<Snapshot>
ProfileStore::loadFile(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    if (!in.good() && !in.eof())
        return std::nullopt;
    return decode(bytes);
}

bool
ProfileStore::saveFile(const std::string& path, const Snapshot& snap)
{
    std::vector<uint8_t> bytes = encode(snap);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              std::streamsize(bytes.size()));
    return out.good();
}

size_t
ProfileStore::loadDir(const std::string& dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec))
        return 0;
    std::vector<std::string> paths;
    for (const auto& entry : fs::directory_iterator(dir, ec))
        if (entry.is_regular_file() && entry.path().extension() == ".snap")
            paths.push_back(entry.path().string());
    std::sort(paths.begin(), paths.end());
    size_t loaded = 0;
    for (const std::string& path : paths) {
        std::optional<Snapshot> snap = loadFile(path);
        if (!snap.has_value()) {
            std::lock_guard<std::mutex> lock(mu_);
            ++corrupt_rejected_;
            CLITE_LOG_INFO("profile store: skipping corrupt snapshot "
                           << path);
            continue;
        }
        put(std::move(*snap));
        ++loaded;
    }
    return loaded;
}

size_t
ProfileStore::saveDir(const std::string& dir) const
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(dir, ec);
    std::map<uint64_t, Entry> copy;
    {
        std::lock_guard<std::mutex> lock(mu_);
        copy = entries_;
    }
    size_t written = 0;
    for (const auto& [hash, entry] : copy) {
        const std::string path =
            (fs::path(dir) / (entry.snap.signature().key() + ".snap"))
                .string();
        if (saveFile(path, entry.snap))
            ++written;
    }
    return written;
}

} // namespace store
} // namespace clite

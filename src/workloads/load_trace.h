/**
 * @file
 * Time-varying load traces for latency-critical jobs.
 *
 * Production LC services see diurnal swings, step changes (deploys,
 * failovers) and short bursts; the paper's Fig. 16 exercises a step
 * trace. These trace generators drive the dynamic scenarios and the
 * OnlineManager: a trace maps simulated wall-clock time to a load
 * fraction of the job's max load.
 */

#ifndef CLITE_WORKLOADS_LOAD_TRACE_H
#define CLITE_WORKLOADS_LOAD_TRACE_H

#include <memory>
#include <string>
#include <vector>

namespace clite {
namespace workloads {

/**
 * Abstract load trace: time (seconds) -> load fraction in (0, 1].
 */
class LoadTrace
{
  public:
    virtual ~LoadTrace() = default;

    /** Load fraction at time @p t_seconds (clamped to (0, 1]). */
    virtual double loadAt(double t_seconds) const = 0;

    /** Trace kind for reporting. */
    virtual std::string name() const = 0;
};

/**
 * Piecewise-constant steps: the Fig. 16 pattern.
 */
class StepTrace : public LoadTrace
{
  public:
    /** One step: from @p at_seconds onward the load is @p load. */
    struct Step
    {
        double at_seconds = 0.0;
        double load = 0.1;
    };

    /**
     * @param steps Steps in non-decreasing time order; the first must
     *     be at time 0 (the initial load) and every load in (0, 1].
     * @throws clite::Error on an empty vector, a first step not at
     *     time 0, out-of-order times, or a load outside (0, 1].
     */
    explicit StepTrace(std::vector<Step> steps);

    /**
     * The load of the last step at or before @p t_seconds, returned
     * exactly as validated by the constructor (the (0, 1] contract).
     */
    double loadAt(double t_seconds) const override;
    std::string name() const override { return "step"; }

  private:
    std::vector<Step> steps_;
};

/**
 * Diurnal sine: base + amplitude * sin(2*pi*t/period + phase),
 * clamped to [floor, 1].
 */
class DiurnalTrace : public LoadTrace
{
  public:
    /**
     * @param base Mean load fraction.
     * @param amplitude Swing around the mean.
     * @param period_seconds Cycle length ("a day").
     * @param phase_radians Phase offset.
     */
    DiurnalTrace(double base, double amplitude, double period_seconds,
                 double phase_radians = 0.0);

    double loadAt(double t_seconds) const override;
    std::string name() const override { return "diurnal"; }

  private:
    double base_;
    double amplitude_;
    double period_s_;
    double phase_;
};

/**
 * Periodic burst: @p base load with rectangular bursts to
 * @p burst_load of @p burst_seconds duration every @p period_seconds.
 */
class BurstTrace : public LoadTrace
{
  public:
    BurstTrace(double base, double burst_load, double burst_seconds,
               double period_seconds);

    double loadAt(double t_seconds) const override;
    std::string name() const override { return "burst"; }

  private:
    double base_;
    double burst_load_;
    double burst_s_;
    double period_s_;
};

/**
 * Clamp helper shared by the *generator* traces (diurnal, burst,
 * traffic/): into [0.01, 1]. Generators whose math can stray outside
 * the contract clamp through this; traces replaying validated data
 * (StepTrace, CSV replay) return their values exactly instead.
 */
double clampLoadFraction(double load);

} // namespace workloads
} // namespace clite

#endif // CLITE_WORKLOADS_LOAD_TRACE_H

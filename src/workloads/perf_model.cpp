#include "workloads/perf_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "sim/queueing.h"
#include "stats/distributions.h"

namespace clite {
namespace workloads {

namespace {

/// Stall-time inflation per unit of bandwidth oversubscription.
constexpr double kBwPenalty = 2.0;
/// Ceiling on the bandwidth stall multiplier.
constexpr double kMaxBwStall = 8.0;
/// Service inflation per unit of memory-capacity oversubscription.
constexpr double kPagePenalty = 3.0;
/// Ceiling on the paging multiplier.
constexpr double kMaxPaging = 20.0;
/// Utilization beyond which the analytic LC model switches to the
/// linear overload extrapolation (the closed form diverges at rho=1).
constexpr double kRhoKnee = 0.995;

/** Miss-ratio curve of the profile at w allocated ways. */
double
missRatio(const WorkloadProfile& p, double ways)
{
    CLITE_ASSERT(ways >= 1.0, "ways allocation below 1");
    double floor = std::clamp(p.llc_miss_floor, 0.0, 1.0);
    double half = std::max(0.05, p.llc_half_ways);
    return floor + (1.0 - floor) * std::exp2(-(ways - 1.0) / half);
}

/** Amdahl speedup of c cores at parallel fraction p. */
double
amdahl(int cores, double parallel_fraction)
{
    double p = std::clamp(parallel_fraction, 0.0, 1.0);
    return 1.0 / ((1.0 - p) + p / double(cores));
}

/** Allocated physical value of resource @p kind, or @p fallback. */
double
allocatedPhysical(const platform::ServerConfig& config,
                  const std::vector<int>& units, platform::Resource kind,
                  double fallback)
{
    if (!config.has(kind))
        return fallback;
    size_t r = config.indexOf(kind);
    return double(units[r]) * config.resource(r).unit_value;
}

} // namespace

ServiceCost
deriveServiceCost(const JobSpec& job, const std::vector<int>& units,
                  const platform::ServerConfig& config, double offered_rate)
{
    CLITE_CHECK(units.size() == config.resourceCount(),
                "allocation has " << units.size() << " resources, server "
                                  << config.resourceCount());
    const WorkloadProfile& p = job.profile;

    ServiceCost cost;
    cost.cores = units[config.indexOf(platform::Resource::Cores)];
    CLITE_CHECK(cost.cores >= 1, "job allocated zero cores");
    // LC services cannot exploit cores beyond their internal
    // parallelism ceiling (see WorkloadProfile::max_useful_cores).
    if (p.isLatencyCritical())
        cost.cores = std::min(cost.cores, std::max(1, p.max_useful_cores));

    double ways = 1.0;
    if (config.has(platform::Resource::LlcWays))
        ways = double(units[config.indexOf(platform::Resource::LlcWays)]);
    cost.miss_ratio = missRatio(p, ways);

    // Bandwidth contention: demand is the job's DRAM traffic at its
    // offered rate, throttled against the MBA-style allocated share.
    double bw_alloc = allocatedPhysical(config, units,
                                        platform::Resource::MemBandwidth,
                                        config.peak_mem_bw_mbps);
    double demand_mbps;
    if (p.isLatencyCritical()) {
        // LC: bandwidth shortfall lengthens each query's memory stalls
        // (a latency effect).
        demand_mbps = p.traffic_mb_per_query * cost.miss_ratio *
                      std::max(0.0, offered_rate);
        double over = bw_alloc > 0.0 ? demand_mbps / bw_alloc - 1.0
                                     : kMaxBwStall;
        cost.bw_stall = std::clamp(1.0 + kBwPenalty * std::max(0.0, over),
                                   1.0, kMaxBwStall);
    } else {
        // BG: bandwidth caps throughput. Dividing the unstalled rate
        // by demand/alloc yields rate = alloc/bytes-per-op in the
        // bw-bound regime — flat (never decreasing) in extra cores,
        // matching how real streaming workloads saturate a memory
        // channel. The stall is NOT folded into service time here; the
        // model backends divide the rate by it.
        demand_mbps = p.traffic_mbps_per_core * cost.miss_ratio *
                      amdahl(cost.cores, p.parallel_fraction);
        double ratio = bw_alloc > 0.0 ? demand_mbps / bw_alloc
                                      : kMaxBwStall;
        cost.bw_stall = std::clamp(ratio, 1.0, kMaxBwStall);
    }

    // Memory-capacity pressure (paging knee).
    double cap_alloc = allocatedPhysical(config, units,
                                         platform::Resource::MemCapacity,
                                         config.memory_gb);
    double cap_over = cap_alloc > 0.0
                          ? p.mem_capacity_gb / cap_alloc - 1.0
                          : kMaxPaging;
    cost.paging = std::clamp(1.0 + kPagePenalty * std::max(0.0, cap_over),
                             1.0, kMaxPaging);

    // I/O time per query: bytes moved over the allocated share.
    double io_ms = 0.0;
    if (p.disk_mb_per_query > 0.0) {
        double disk_alloc = allocatedPhysical(
            config, units, platform::Resource::DiskBandwidth,
            config.disk_bw_mbps);
        io_ms += p.disk_mb_per_query / std::max(1e-9, disk_alloc) * 1000.0;
    }
    if (p.net_mb_per_query > 0.0) {
        double net_alloc = allocatedPhysical(
            config, units, platform::Resource::NetBandwidth,
            config.net_bw_mbps);
        io_ms += p.net_mb_per_query / std::max(1e-9, net_alloc) * 1000.0;
    }

    double mem_ms = p.mem_ms * cost.miss_ratio *
                    (p.isLatencyCritical() ? cost.bw_stall : 1.0);
    cost.service_ms = (p.cpu_ms + mem_ms + io_ms) * cost.paging;
    CLITE_ASSERT(cost.service_ms > 0.0, "non-positive service time");
    return cost;
}

JobMeasurement
PerformanceModel::measureJob(const std::vector<JobSpec>& jobs, size_t j,
                             const platform::Allocation& alloc,
                             const platform::ServerConfig& config,
                             Rng& rng) const
{
    CLITE_CHECK(j < jobs.size(), "job index " << j << " out of "
                                              << jobs.size());
    CLITE_CHECK(alloc.jobs() == jobs.size(),
                "allocation is for " << alloc.jobs() << " jobs, got "
                                     << jobs.size());
    std::vector<int> units(alloc.resources());
    for (size_t r = 0; r < alloc.resources(); ++r)
        units[r] = alloc.get(j, r);
    return measure(jobs[j], units, config, rng);
}

JobMeasurement
AnalyticModel::measure(const JobSpec& job, const std::vector<int>& units,
                       const platform::ServerConfig& config,
                       Rng& /* rng */) const
{
    ServiceCost cost = deriveServiceCost(job, units, config,
                                         job.isLatencyCritical()
                                             ? job.offeredQps()
                                             : 0.0);
    JobMeasurement m;
    m.service_ms = cost.service_ms;
    m.miss_ratio = cost.miss_ratio;
    m.bw_stall = cost.bw_stall;

    if (!job.isLatencyCritical()) {
        m.throughput = amdahl(cost.cores, job.profile.parallel_fraction) *
                       1000.0 / cost.service_ms / cost.bw_stall;
        return m;
    }

    const double lambda = job.offeredQps();
    const double mu = 1000.0 / cost.service_ms; // per-core service rate /s
    const double capacity = double(cost.cores) * mu;

    if (lambda <= 0.0) {
        m.p95_ms = cost.service_ms * 2.0; // lone-request tail estimate
        m.p99_ms = cost.service_ms * 2.0;
        m.mean_ms = cost.service_ms;
        m.throughput = 0.0;
        return m;
    }

    double rho = lambda / capacity;
    if (rho < kRhoKnee) {
        m.p95_ms = stats::mmcResponseQuantile(cost.cores, lambda, mu, 0.95)
                   * 1000.0;
        m.p99_ms = stats::mmcResponseQuantile(cost.cores, lambda, mu, 0.99)
                   * 1000.0;
        m.mean_ms = stats::mmcMeanResponse(cost.cores, lambda, mu) * 1000.0;
        m.throughput = lambda;
    } else {
        // Overload: extrapolate linearly from the knee so the score
        // surface stays finite and monotone (helps every optimizer,
        // not just CLITE).
        double lambda_knee = kRhoKnee * capacity;
        double p95_knee = stats::mmcResponseQuantile(cost.cores, lambda_knee,
                                                     mu, 0.95) * 1000.0;
        double p99_knee = stats::mmcResponseQuantile(cost.cores, lambda_knee,
                                                     mu, 0.99) * 1000.0;
        double overload = 1.0 + 25.0 * (rho - kRhoKnee);
        m.p95_ms = p95_knee * overload;
        m.p99_ms = p99_knee * overload;
        m.mean_ms = m.p95_ms * 0.6;
        m.throughput = capacity;
        m.saturated = true;
    }
    return m;
}

QueueingSimModel::QueueingSimModel(double warmup_s, double window_s,
                                   uint64_t event_budget)
    : warmup_s_(warmup_s), window_s_(window_s), event_budget_(event_budget)
{
    CLITE_CHECK(warmup_s_ >= 0.0, "warmup must be >= 0");
    CLITE_CHECK(window_s_ > 0.0, "window must be > 0");
}

JobMeasurement
QueueingSimModel::measure(const JobSpec& job, const std::vector<int>& units,
                          const platform::ServerConfig& config,
                          Rng& rng) const
{
    ServiceCost cost = deriveServiceCost(job, units, config,
                                         job.isLatencyCritical()
                                             ? job.offeredQps()
                                             : 0.0);
    JobMeasurement m;
    m.service_ms = cost.service_ms;
    m.miss_ratio = cost.miss_ratio;
    m.bw_stall = cost.bw_stall;

    if (!job.isLatencyCritical()) {
        // Throughput of a batch job over the window: rate plus a small
        // sampling wobble from per-op variability.
        double rate = amdahl(cost.cores, job.profile.parallel_fraction) *
                      1000.0 / cost.service_ms / cost.bw_stall;
        double ops = rate * window_s_;
        double wobble = (ops > 0.0) ? 1.0 / std::sqrt(ops) : 0.0;
        m.throughput = rate * rng.logNormalMean(1.0, wobble * 0.5);
        return m;
    }

    const double lambda = job.offeredQps();
    if (lambda <= 0.0) {
        m.p95_ms = cost.service_ms * 2.0;
        m.p99_ms = cost.service_ms * 2.0;
        m.mean_ms = cost.service_ms;
        return m;
    }

    sim::TailMeasurement tm;
    if (job.profile.service_distribution ==
        ServiceDistribution::BoundedPareto) {
        // Heavy-tailed service: the ServiceModel entry point (the
        // legacy sigma selector cannot carry two shape parameters).
        sim::ServiceModel service;
        service.kind = sim::ServiceModel::Kind::BoundedPareto;
        service.mean_service = cost.service_ms / 1000.0;
        service.pareto_alpha = job.profile.pareto_alpha;
        service.pareto_tail_ratio = job.profile.pareto_tail_ratio;
        tm = sim::measureStation(cost.cores, lambda, service, warmup_s_,
                                 window_s_, rng, event_budget_);
    } else {
        double sigma =
            job.profile.service_distribution == ServiceDistribution::LogNormal
                ? job.profile.service_sigma
                : -1.0; // exponential service (matches the analytic M/M/c)
        tm = sim::measureStation(cost.cores, lambda,
                                 cost.service_ms / 1000.0, sigma, warmup_s_,
                                 window_s_, rng, event_budget_);
    }
    m.p95_ms = tm.p95 * 1000.0;
    m.p99_ms = tm.p99 * 1000.0;
    m.mean_ms = tm.mean * 1000.0;
    m.throughput = tm.throughput;
    m.saturated = lambda > double(cost.cores) * 1000.0 / cost.service_ms;
    if (tm.completed == 0) {
        // Nothing completed in the window: report a saturated latency.
        m.p95_ms = (warmup_s_ + window_s_) * 1000.0;
        m.p99_ms = m.p95_ms;
        m.mean_ms = m.p95_ms;
        m.saturated = true;
    }
    return m;
}

} // namespace workloads
} // namespace clite

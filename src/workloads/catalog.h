/**
 * @file
 * Workload catalog — the Table 3 application set.
 *
 * Latency-critical profiles model the Tailbench applications the paper
 * drives (img-dnn, masstree, memcached, specjbb, xapian); background
 * profiles model the PARSEC applications (blackscholes, canneal,
 * fluidanimate, freqmine, streamcluster, swaptions). Parameters encode
 * each application's published resource character (e.g. streamcluster's
 * large LLC working set, masstree's bandwidth appetite, blackscholes'
 * CPU-bound scaling); see profile.h for the parameter semantics and
 * DESIGN.md for the substitution rationale.
 *
 * QoS targets follow the paper's methodology (Sec. 5.1 / Fig. 6): each
 * LC application's p95 target is the tail latency at the knee of its
 * isolated QPS-vs-p95 curve, and max_qps is the load at that knee. The
 * catalog computes the target from the analytic model at full isolated
 * allocation so target and model are always consistent.
 */

#ifndef CLITE_WORKLOADS_CATALOG_H
#define CLITE_WORKLOADS_CATALOG_H

#include <string>
#include <vector>

#include "workloads/profile.h"

namespace clite {
namespace workloads {

/** Names of the five latency-critical applications. */
const std::vector<std::string>& lcWorkloadNames();

/** Names of the six background applications. */
const std::vector<std::string>& bgWorkloadNames();

/**
 * Latency-critical profile by name, QoS target already derived.
 * @throws clite::Error for an unknown name.
 */
WorkloadProfile lcWorkload(const std::string& name);

/**
 * Background profile by name.
 * @throws clite::Error for an unknown name.
 */
WorkloadProfile bgWorkload(const std::string& name);

/** Either kind, by name. @throws clite::Error for an unknown name. */
WorkloadProfile workloadByName(const std::string& name);

/**
 * Convenience: an LC job spec at @p load_fraction of its max load.
 */
JobSpec lcJob(const std::string& name, double load_fraction);

/** Convenience: a BG job spec. */
JobSpec bgJob(const std::string& name);

} // namespace workloads
} // namespace clite

#endif // CLITE_WORKLOADS_CATALOG_H

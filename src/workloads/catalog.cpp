#include "workloads/catalog.h"

#include <algorithm>
#include <map>

#include "common/error.h"
#include "workloads/perf_model.h"

namespace clite {
namespace workloads {

namespace {

/**
 * Utilization of the application's own serving capacity (its
 * max_useful_cores worth of workers) that defines the 100% ("max")
 * load. The knee of the isolated QPS-vs-p95 curve sits where the
 * app's internal parallelism ceiling saturates — well below machine
 * saturation, which is what lets the paper co-locate load sums above
 * 100% (Figs. 7/8).
 */
constexpr double kKneeUtilization = 0.90;
/**
 * QoS-target margin over the isolated p95 at max load. The knee
 * latency already contains substantial queueing delay, so a modest
 * margin still leaves co-location headroom.
 */
constexpr double kQosMargin = 1.20;

/**
 * Calibrate the load scale and QoS target the way Sec. 5.1 / Fig. 6
 * do. The knee of the isolated QPS-vs-p95 curve sits where the machine
 * approaches saturation, so:
 *
 *  - max_qps (the 100% load) is set to kKneeUtilization of the
 *    whole-machine sustainable rate (fixed-point over the
 *    bandwidth-stall coupling),
 *  - qos_p95_ms is the isolated p95 at that load plus a margin.
 *
 * This keeps load scale, target, and performance model mutually
 * consistent by construction: loads <= 100% are feasible in isolation,
 * and latency explodes just past 100%, giving the knee shape.
 */
void
calibrateLoadAndQos(WorkloadProfile& p)
{
    platform::ServerConfig config =
        platform::ServerConfig::xeonSilver4114AllResources();
    std::vector<int> full(config.resourceCount());
    for (size_t r = 0; r < config.resourceCount(); ++r)
        full[r] = config.resource(r).units;
    int cores = std::min(full[config.indexOf(platform::Resource::Cores)],
                         p.max_useful_cores);

    // Fixed point: service time depends on the bandwidth demand, which
    // depends on the offered rate we are solving for.
    JobSpec probe{p, 1.0};
    double lambda = 0.0;
    for (int it = 0; it < 8; ++it) {
        ServiceCost cost = deriveServiceCost(probe, full, config, lambda);
        double capacity = double(cores) * 1000.0 / cost.service_ms;
        lambda = kKneeUtilization * capacity;
    }
    p.max_qps = lambda;

    JobSpec spec{p, 1.0};
    AnalyticModel model;
    Rng rng(0);
    JobMeasurement m = model.measure(spec, full, config, rng);
    CLITE_ASSERT(!m.saturated,
                 "workload " << p.name
                             << " saturates the whole machine at its own "
                                "max load; calibration failed");
    p.qos_p95_ms = kQosMargin * m.p95_ms;
}

std::map<std::string, WorkloadProfile>
buildLcCatalog()
{
    std::map<std::string, WorkloadProfile> cat;

    {
        WorkloadProfile p;
        p.name = "img-dnn";
        p.max_useful_cores = 4;
        p.description = "Image recognition (Tailbench)";
        p.job_class = JobClass::LatencyCritical;
        p.cpu_ms = 2.2;
        p.mem_ms = 1.2;
        p.llc_half_ways = 3.5;
        p.llc_miss_floor = 0.15;
        p.traffic_mb_per_query = 2.5;
        p.mem_capacity_gb = 3.0;
        p.max_qps = 3000.0;
        p.service_sigma = 0.40;
        calibrateLoadAndQos(p);
        cat[p.name] = p;
    }
    {
        WorkloadProfile p;
        p.name = "masstree";
        p.max_useful_cores = 5;
        p.description = "Key-value store (Tailbench)";
        p.job_class = JobClass::LatencyCritical;
        p.cpu_ms = 0.45;
        p.mem_ms = 0.55;
        p.llc_half_ways = 5.0;
        p.llc_miss_floor = 0.25;
        p.traffic_mb_per_query = 2.0;
        p.mem_capacity_gb = 8.0;
        p.max_qps = 12000.0;
        p.service_sigma = 0.50;
        calibrateLoadAndQos(p);
        cat[p.name] = p;
    }
    {
        WorkloadProfile p;
        p.name = "memcached";
        p.max_useful_cores = 5;
        p.description = "Key-value store with Mutilate load generator";
        p.job_class = JobClass::LatencyCritical;
        p.cpu_ms = 0.045;
        p.mem_ms = 0.030;
        p.llc_half_ways = 1.5;
        p.llc_miss_floor = 0.10;
        p.traffic_mb_per_query = 0.2;
        p.mem_capacity_gb = 6.0;
        p.net_mb_per_query = 0.01;
        p.max_qps = 120000.0;
        p.service_sigma = 0.50;
        calibrateLoadAndQos(p);
        cat[p.name] = p;
    }
    {
        WorkloadProfile p;
        p.name = "specjbb";
        p.max_useful_cores = 5;
        p.description = "Java middleware (Tailbench)";
        p.job_class = JobClass::LatencyCritical;
        p.cpu_ms = 1.0;
        p.mem_ms = 1.0;
        p.llc_half_ways = 4.5;
        p.llc_miss_floor = 0.20;
        p.traffic_mb_per_query = 2.5;
        p.mem_capacity_gb = 12.0;
        p.max_qps = 4500.0;
        p.service_sigma = 0.45;
        calibrateLoadAndQos(p);
        cat[p.name] = p;
    }
    {
        WorkloadProfile p;
        p.name = "xapian";
        p.max_useful_cores = 4;
        p.description = "Online search over English Wikipedia (Tailbench)";
        p.job_class = JobClass::LatencyCritical;
        p.cpu_ms = 1.3;
        p.mem_ms = 0.6;
        p.llc_half_ways = 2.5;
        p.llc_miss_floor = 0.20;
        p.traffic_mb_per_query = 1.5;
        p.mem_capacity_gb = 4.0;
        p.disk_mb_per_query = 0.05;
        p.max_qps = 5000.0;
        p.service_sigma = 0.45;
        calibrateLoadAndQos(p);
        cat[p.name] = p;
    }
    return cat;
}

std::map<std::string, WorkloadProfile>
buildBgCatalog()
{
    std::map<std::string, WorkloadProfile> cat;

    auto bg = [](const std::string& name, const std::string& desc,
                 double cpu_ms, double mem_ms, double half, double floor,
                 double traffic, double par, double ws_gb) {
        WorkloadProfile p;
        p.name = name;
        p.description = desc;
        p.job_class = JobClass::Background;
        p.cpu_ms = cpu_ms;
        p.mem_ms = mem_ms;
        p.llc_half_ways = half;
        p.llc_miss_floor = floor;
        p.traffic_mbps_per_core = traffic;
        p.parallel_fraction = par;
        p.mem_capacity_gb = ws_gb;
        return p;
    };

    // Sensitivity mix follows the PARSEC characterization literature:
    // blackscholes/swaptions CPU-bound and scalable; canneal memory-
    // latency bound; streamcluster and freqmine LLC-hungry;
    // fluidanimate in between.
    WorkloadProfile p;
    p = bg("blackscholes", "Option pricing with Black-Scholes PDE",
           1.0, 0.05, 0.8, 0.40, 100.0, 0.98, 0.6);
    cat[p.name] = p;
    p = bg("canneal", "Simulated cache-aware annealing for chip design",
           0.4, 1.2, 4.0, 0.45, 4000.0, 0.85, 8.0);
    cat[p.name] = p;
    p = bg("fluidanimate", "Fluid dynamics for animation (SPH)",
           0.7, 0.5, 2.5, 0.30, 1500.0, 0.92, 2.0);
    cat[p.name] = p;
    p = bg("freqmine", "Frequent itemset mining",
           0.6, 0.7, 5.0, 0.15, 1200.0, 0.80, 5.0);
    cat[p.name] = p;
    p = bg("streamcluster", "Online clustering of an input stream",
           0.35, 1.1, 6.0, 0.08, 3000.0, 0.90, 3.0);
    cat[p.name] = p;
    p = bg("swaptions", "Pricing of a portfolio of swaptions",
           1.0, 0.03, 0.6, 0.50, 50.0, 0.99, 0.3);
    cat[p.name] = p;
    return cat;
}

const std::map<std::string, WorkloadProfile>&
lcCatalog()
{
    static const std::map<std::string, WorkloadProfile> cat =
        buildLcCatalog();
    return cat;
}

const std::map<std::string, WorkloadProfile>&
bgCatalog()
{
    static const std::map<std::string, WorkloadProfile> cat =
        buildBgCatalog();
    return cat;
}

} // namespace

const std::vector<std::string>&
lcWorkloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> n;
        for (const auto& [name, prof] : lcCatalog())
            n.push_back(name);
        return n;
    }();
    return names;
}

const std::vector<std::string>&
bgWorkloadNames()
{
    static const std::vector<std::string> names = [] {
        std::vector<std::string> n;
        for (const auto& [name, prof] : bgCatalog())
            n.push_back(name);
        return n;
    }();
    return names;
}

WorkloadProfile
lcWorkload(const std::string& name)
{
    auto it = lcCatalog().find(name);
    CLITE_CHECK(it != lcCatalog().end(),
                "unknown latency-critical workload: " << name);
    return it->second;
}

WorkloadProfile
bgWorkload(const std::string& name)
{
    auto it = bgCatalog().find(name);
    CLITE_CHECK(it != bgCatalog().end(),
                "unknown background workload: " << name);
    return it->second;
}

WorkloadProfile
workloadByName(const std::string& name)
{
    if (auto it = lcCatalog().find(name); it != lcCatalog().end())
        return it->second;
    if (auto it = bgCatalog().find(name); it != bgCatalog().end())
        return it->second;
    CLITE_THROW("unknown workload: " << name);
}

JobSpec
lcJob(const std::string& name, double load_fraction)
{
    CLITE_CHECK(load_fraction > 0.0 && load_fraction <= 1.0,
                "LC load fraction must be in (0,1], got " << load_fraction);
    return JobSpec{lcWorkload(name), load_fraction};
}

JobSpec
bgJob(const std::string& name)
{
    return JobSpec{bgWorkload(name), 1.0};
}

} // namespace workloads
} // namespace clite

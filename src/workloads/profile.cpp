#include "workloads/profile.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace clite {
namespace workloads {

bool
WorkloadProfile::isLatencyCritical() const
{
    return job_class == JobClass::LatencyCritical;
}

double
JobSpec::offeredQps() const
{
    CLITE_CHECK(load_fraction >= 0.0, "load fraction must be >= 0, got "
                                          << load_fraction);
    return load_fraction * profile.max_qps;
}

bool
JobSpec::isLatencyCritical() const
{
    return profile.isLatencyCritical();
}

std::string
JobSpec::label() const
{
    std::ostringstream oss;
    oss << profile.name;
    if (isLatencyCritical())
        oss << "@" << std::lround(load_fraction * 100.0) << "%";
    return oss.str();
}

} // namespace workloads
} // namespace clite

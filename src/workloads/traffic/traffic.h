/**
 * @file
 * Deterministic traffic generators: the "millions of users" load
 * shapes production LC services actually see.
 *
 * The base load_trace.h layer covers the paper's Fig. 16 step pattern
 * plus clean sinusoids and rectangular bursts. This subsystem adds the
 * realistic shapes on top:
 *
 *  - JitteredDiurnalTrace — a diurnal sinusoid with seeded noise,
 *  - SurgeProcess / FlashCrowdTrace — flash crowds with Poisson onsets
 *    and exponential decay,
 *  - CorrelatedTrace — several jobs subscribing to one shared surge
 *    process (cross-job correlated spikes),
 *  - CompositeTrace — weighted sums of other traces,
 *  - CsvReplayTrace — replay of recorded "t,load" samples.
 *
 * Every generator is seed-reproducible and evaluation-order
 * independent: any randomness is either materialized at construction
 * (the surge timeline) or computed by a pure counter-keyed hash (the
 * jitter ribbon), so loadAt(t) is a pure function of t and the seed.
 * That is what makes trace-driven fleet runs bit-identical across
 * thread counts — the same contract the DES and the fleet engine obey.
 */

#ifndef CLITE_WORKLOADS_TRAFFIC_TRAFFIC_H
#define CLITE_WORKLOADS_TRAFFIC_TRAFFIC_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/load_trace.h"
#include "workloads/profile.h"

namespace clite {
namespace workloads {
namespace traffic {

/**
 * Pure counter-keyed uniform hash in [0, 1): SplitMix64 over
 * (seed, counter). Unlike a sequential Rng stream, the value at any
 * counter is independent of evaluation order — the property the
 * jittered generators need to stay bit-identical across thread counts.
 */
double hashUniform(uint64_t seed, uint64_t counter);

/**
 * A flash-crowd surge process: surge onsets arrive as a seeded Poisson
 * process over a fixed horizon; each surge has an exponentially
 * distributed peak magnitude and decays exponentially after onset:
 *
 *   surgeAt(t) = sum over onsets t_i <= t of m_i * exp(-(t - t_i)/decay)
 *
 * The whole timeline is generated at construction, so evaluation is a
 * pure function of t. Share one process between several
 * CorrelatedTrace subscribers to model crowds that hit multiple jobs
 * at once (a news event spiking search, feed and ads together).
 */
class SurgeProcess
{
  public:
    struct Options
    {
        /** Onsets are generated in [0, horizon). Queries past the
         *  horizon see only the decay of earlier surges. */
        double horizon_seconds = 3600.0;
        /** Mean Poisson inter-onset spacing. */
        double mean_interarrival_s = 240.0;
        /** Exponential decay time constant of each surge. */
        double decay_seconds = 30.0;
        /** Mean peak magnitude (load-fraction units). */
        double mean_magnitude = 0.5;
    };

    explicit SurgeProcess(uint64_t seed); ///< Default Options.
    SurgeProcess(uint64_t seed, Options options);

    /** Total surge height at @p t_seconds (>= 0). */
    double surgeAt(double t_seconds) const;

    /** Onset times in ascending order (for tests / reporting). */
    const std::vector<double>& onsets() const { return onset_s_; }

    /** Peak magnitudes parallel to onsets(). */
    const std::vector<double>& magnitudes() const { return magnitude_; }

    const Options& options() const { return options_; }

  private:
    Options options_;
    std::vector<double> onset_s_;
    std::vector<double> magnitude_;
};

/**
 * Diurnal sinusoid with seeded jitter: the DiurnalTrace sine plus a
 * piecewise-linear noise ribbon whose knots (one every
 * jitter_interval_s) are drawn from the counter-keyed hash. Clamped
 * into [0.01, 1] like the other generators.
 */
class JitteredDiurnalTrace : public LoadTrace
{
  public:
    struct Options
    {
        double base = 0.5;            ///< Mean load fraction.
        double amplitude = 0.3;       ///< Sine swing around the mean.
        double period_seconds = 600.0;///< Cycle length ("a day").
        double phase_radians = 0.0;   ///< Phase offset.
        double jitter = 0.05;         ///< Max |noise| added.
        double jitter_interval_s = 10.0; ///< Noise-knot spacing.
    };

    explicit JitteredDiurnalTrace(uint64_t seed); ///< Default Options.
    JitteredDiurnalTrace(uint64_t seed, Options options);

    double loadAt(double t_seconds) const override;
    std::string name() const override { return "jittered-diurnal"; }

    const Options& options() const { return options_; }

  private:
    uint64_t seed_;
    Options options_;
};

/**
 * Flash crowd: steady base load plus this trace's own SurgeProcess,
 * clamped into [0.01, 1].
 */
class FlashCrowdTrace : public LoadTrace
{
  public:
    /**
     * @param seed Seeds the surge timeline.
     * @param base Steady load between crowds, in (0, 1].
     * @param surge Surge process knobs.
     */
    FlashCrowdTrace(uint64_t seed, double base); ///< Default surge knobs.
    FlashCrowdTrace(uint64_t seed, double base,
                    SurgeProcess::Options surge);

    double loadAt(double t_seconds) const override;
    std::string name() const override { return "flash-crowd"; }

    const SurgeProcess& surge() const { return surge_; }

  private:
    double base_;
    SurgeProcess surge_;
};

/**
 * Correlated surge subscriber: a base trace plus gain * shared surge.
 * Every trace built on the same SurgeProcess spikes at the same
 * moments — the cross-job correlated crowds a per-job independent
 * generator cannot produce.
 */
class CorrelatedTrace : public LoadTrace
{
  public:
    /**
     * @param base The job's own baseline shape (non-null).
     * @param surge The shared surge process (non-null).
     * @param gain This job's sensitivity to the shared surge (>= 0).
     */
    CorrelatedTrace(std::shared_ptr<const LoadTrace> base,
                    std::shared_ptr<const SurgeProcess> surge,
                    double gain = 1.0);

    double loadAt(double t_seconds) const override;
    std::string name() const override { return "correlated"; }

  private:
    std::shared_ptr<const LoadTrace> base_;
    std::shared_ptr<const SurgeProcess> surge_;
    double gain_;
};

/**
 * Weighted sum of component traces, clamped into [0.01, 1]. Weights
 * need not sum to 1 — a composite of 0.6 * diurnal + 0.4 * flash-crowd
 * is the classic "daily cycle with breaking-news spikes".
 */
class CompositeTrace : public LoadTrace
{
  public:
    struct Component
    {
        std::shared_ptr<const LoadTrace> trace;
        double weight = 1.0;
    };

    explicit CompositeTrace(std::vector<Component> components);

    double loadAt(double t_seconds) const override;
    std::string name() const override { return "composite"; }

  private:
    std::vector<Component> components_;
};

/**
 * Replay of recorded samples: "t_seconds,load" rows, piecewise-linear
 * between samples, held flat before the first and after the last.
 * Sample loads are validated into (0, 1] at construction and replayed
 * exactly (interpolation between valid loads stays valid), matching
 * the StepTrace exact-contract behaviour.
 */
class CsvReplayTrace : public LoadTrace
{
  public:
    struct Sample
    {
        double t_seconds = 0.0;
        double load = 0.1;
    };

    /**
     * @param samples Samples in strictly increasing time order, at
     *     least one, every load in (0, 1].
     */
    explicit CsvReplayTrace(std::vector<Sample> samples);

    /**
     * Parse "t_seconds,load" lines. Blank lines and lines starting
     * with '#' are skipped; anything else must parse as two
     * comma-separated numbers.
     * @throws clite::Error naming the offending line on a parse error.
     */
    static CsvReplayTrace fromCsvString(const std::string& text);

    /** fromCsvString over a file's contents. */
    static CsvReplayTrace fromCsvFile(const std::string& path);

    /**
     * Serialize back to CSV with round-trip-exact (%.17g) formatting:
     * fromCsvString(toCsvString()) reproduces the trace bit-exactly.
     */
    std::string toCsvString() const;

    double loadAt(double t_seconds) const override;
    std::string name() const override { return "csv-replay"; }

    const std::vector<Sample>& samples() const { return samples_; }

  private:
    std::vector<Sample> samples_;
};

/**
 * Mean load of @p trace over [0, horizon_seconds), sampled every
 * @p step_seconds — the stable per-job identity load MixSignature
 * hashes for trace-driven mixes.
 */
double traceMeanLoad(const LoadTrace& trace, double horizon_seconds,
                     double step_seconds = 1.0);

/**
 * Stamp a JobSpec's trace identity: sets spec.trace_kind to
 * trace.name() and spec.trace_mean_load (and the initial
 * load_fraction) to the trace mean over the horizon.
 */
JobSpec withTrace(JobSpec spec, const LoadTrace& trace,
                  double horizon_seconds, double step_seconds = 1.0);

/**
 * Make a JobSpec's per-request service times heavy-tailed: switches
 * the profile to ServiceDistribution::BoundedPareto with the given
 * tail index and H/L support ratio. The DES keeps the profile's mean
 * service time; only the shape (and hence the p95/p99 tail) changes.
 */
JobSpec heavyTailed(JobSpec spec, double alpha = 1.5,
                    double tail_ratio = 100.0);

} // namespace traffic
} // namespace workloads
} // namespace clite

#endif // CLITE_WORKLOADS_TRAFFIC_TRAFFIC_H

#include "workloads/traffic/traffic.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"

namespace clite {
namespace workloads {
namespace traffic {

double
hashUniform(uint64_t seed, uint64_t counter)
{
    // SplitMix64 over the (seed, counter) pair; two steps decorrelate
    // neighbouring counters. 53 high bits -> [0, 1), like Rng::uniform.
    SplitMix64 h(seed ^ (counter * 0x9E3779B97F4A7C15ull));
    h.next();
    return double(h.next() >> 11) * 0x1.0p-53;
}

// ---------------------------------------------------------------------
// SurgeProcess

SurgeProcess::SurgeProcess(uint64_t seed) : SurgeProcess(seed, Options())
{
}

SurgeProcess::SurgeProcess(uint64_t seed, Options options)
    : options_(options)
{
    CLITE_CHECK(options_.horizon_seconds > 0.0,
                "surge horizon must be > 0, got "
                    << options_.horizon_seconds);
    CLITE_CHECK(options_.mean_interarrival_s > 0.0,
                "surge mean inter-arrival must be > 0, got "
                    << options_.mean_interarrival_s);
    CLITE_CHECK(options_.decay_seconds > 0.0,
                "surge decay must be > 0, got " << options_.decay_seconds);
    CLITE_CHECK(options_.mean_magnitude > 0.0,
                "surge mean magnitude must be > 0, got "
                    << options_.mean_magnitude);

    // Materialize the full Poisson timeline up front: loadAt stays a
    // pure function of t afterwards (no sequential RNG state), which
    // is what makes shared surge processes safe to read from any
    // thread in any order.
    Rng rng(seed);
    double t = rng.exponential(1.0 / options_.mean_interarrival_s);
    while (t < options_.horizon_seconds) {
        onset_s_.push_back(t);
        magnitude_.push_back(
            rng.exponential(1.0 / options_.mean_magnitude));
        t += rng.exponential(1.0 / options_.mean_interarrival_s);
    }
}

double
SurgeProcess::surgeAt(double t_seconds) const
{
    double total = 0.0;
    for (size_t i = 0;
         i < onset_s_.size() && onset_s_[i] <= t_seconds; ++i) {
        double age = t_seconds - onset_s_[i];
        // A surge older than ~37 decay constants contributes < 1e-16
        // of its peak; skipping it keeps long replays O(active surges).
        if (age > 37.0 * options_.decay_seconds)
            continue;
        total += magnitude_[i] * std::exp(-age / options_.decay_seconds);
    }
    return total;
}

// ---------------------------------------------------------------------
// JitteredDiurnalTrace

JitteredDiurnalTrace::JitteredDiurnalTrace(uint64_t seed)
    : JitteredDiurnalTrace(seed, Options())
{
}

JitteredDiurnalTrace::JitteredDiurnalTrace(uint64_t seed, Options options)
    : seed_(seed), options_(options)
{
    CLITE_CHECK(options_.period_seconds > 0.0,
                "diurnal period must be > 0, got "
                    << options_.period_seconds);
    CLITE_CHECK(options_.base > 0.0 && options_.base <= 1.0,
                "base load must be in (0,1], got " << options_.base);
    CLITE_CHECK(options_.amplitude >= 0.0,
                "amplitude must be >= 0, got " << options_.amplitude);
    CLITE_CHECK(options_.jitter >= 0.0,
                "jitter must be >= 0, got " << options_.jitter);
    CLITE_CHECK(options_.jitter_interval_s > 0.0,
                "jitter interval must be > 0, got "
                    << options_.jitter_interval_s);
}

double
JitteredDiurnalTrace::loadAt(double t_seconds) const
{
    double t = std::max(0.0, t_seconds);
    double v = options_.base +
               options_.amplitude *
                   std::sin(2.0 * M_PI * t / options_.period_seconds +
                            options_.phase_radians);
    if (options_.jitter > 0.0) {
        // Piecewise-linear ribbon between hash-keyed knots: knot k is
        // a pure function of (seed, k), so the value at any t is
        // independent of what was evaluated before it.
        double pos = t / options_.jitter_interval_s;
        uint64_t k = uint64_t(pos);
        double frac = pos - double(k);
        double j0 = (2.0 * hashUniform(seed_, k) - 1.0) * options_.jitter;
        double j1 =
            (2.0 * hashUniform(seed_, k + 1) - 1.0) * options_.jitter;
        v += j0 + (j1 - j0) * frac;
    }
    return clampLoadFraction(v);
}

// ---------------------------------------------------------------------
// FlashCrowdTrace

FlashCrowdTrace::FlashCrowdTrace(uint64_t seed, double base)
    : FlashCrowdTrace(seed, base, SurgeProcess::Options())
{
}

FlashCrowdTrace::FlashCrowdTrace(uint64_t seed, double base,
                                 SurgeProcess::Options surge)
    : base_(base), surge_(seed, surge)
{
    CLITE_CHECK(base_ > 0.0 && base_ <= 1.0,
                "flash-crowd base load must be in (0,1], got " << base_);
}

double
FlashCrowdTrace::loadAt(double t_seconds) const
{
    double t = std::max(0.0, t_seconds);
    return clampLoadFraction(base_ + surge_.surgeAt(t));
}

// ---------------------------------------------------------------------
// CorrelatedTrace

CorrelatedTrace::CorrelatedTrace(std::shared_ptr<const LoadTrace> base,
                                 std::shared_ptr<const SurgeProcess> surge,
                                 double gain)
    : base_(std::move(base)), surge_(std::move(surge)), gain_(gain)
{
    CLITE_CHECK(base_ != nullptr, "correlated trace needs a base trace");
    CLITE_CHECK(surge_ != nullptr,
                "correlated trace needs a surge process");
    CLITE_CHECK(gain_ >= 0.0, "surge gain must be >= 0, got " << gain_);
}

double
CorrelatedTrace::loadAt(double t_seconds) const
{
    double t = std::max(0.0, t_seconds);
    return clampLoadFraction(base_->loadAt(t) +
                             gain_ * surge_->surgeAt(t));
}

// ---------------------------------------------------------------------
// CompositeTrace

CompositeTrace::CompositeTrace(std::vector<Component> components)
    : components_(std::move(components))
{
    CLITE_CHECK(!components_.empty(),
                "composite trace needs at least one component");
    for (size_t i = 0; i < components_.size(); ++i) {
        CLITE_CHECK(components_[i].trace != nullptr,
                    "composite component " << i << " is null");
        CLITE_CHECK(components_[i].weight >= 0.0,
                    "composite component " << i
                        << " weight must be >= 0, got "
                        << components_[i].weight);
    }
}

double
CompositeTrace::loadAt(double t_seconds) const
{
    double v = 0.0;
    for (const auto& c : components_)
        v += c.weight * c.trace->loadAt(t_seconds);
    return clampLoadFraction(v);
}

// ---------------------------------------------------------------------
// CsvReplayTrace

CsvReplayTrace::CsvReplayTrace(std::vector<Sample> samples)
    : samples_(std::move(samples))
{
    CLITE_CHECK(!samples_.empty(),
                "CSV replay trace needs at least one sample");
    for (size_t i = 0; i < samples_.size(); ++i) {
        CLITE_CHECK(samples_[i].load > 0.0 && samples_[i].load <= 1.0,
                    "CSV sample " << i << " load must be in (0, 1], got "
                        << samples_[i].load);
        if (i > 0)
            CLITE_CHECK(
                samples_[i].t_seconds > samples_[i - 1].t_seconds,
                "CSV sample times must be strictly increasing: sample "
                    << i << " at " << samples_[i].t_seconds
                    << "s does not follow sample " << (i - 1) << " at "
                    << samples_[i - 1].t_seconds << "s");
    }
}

CsvReplayTrace
CsvReplayTrace::fromCsvString(const std::string& text)
{
    std::vector<Sample> samples;
    std::istringstream in(text);
    std::string line;
    size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        size_t first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        Sample s;
        char trailing = '\0';
        int fields = std::sscanf(line.c_str(), " %lf , %lf %c",
                                 &s.t_seconds, &s.load, &trailing);
        CLITE_CHECK(fields == 2,
                    "CSV line " << line_no
                        << " is not \"t_seconds,load\": '" << line
                        << "'");
        samples.push_back(s);
    }
    return CsvReplayTrace(std::move(samples));
}

CsvReplayTrace
CsvReplayTrace::fromCsvFile(const std::string& path)
{
    std::ifstream in(path);
    CLITE_CHECK(in.good(), "cannot open trace CSV '" << path << "'");
    std::ostringstream text;
    text << in.rdbuf();
    return fromCsvString(text.str());
}

std::string
CsvReplayTrace::toCsvString() const
{
    std::string out = "# t_seconds,load\n";
    char buf[80];
    for (const auto& s : samples_) {
        std::snprintf(buf, sizeof(buf), "%.17g,%.17g\n", s.t_seconds,
                      s.load);
        out += buf;
    }
    return out;
}

double
CsvReplayTrace::loadAt(double t_seconds) const
{
    if (t_seconds <= samples_.front().t_seconds)
        return samples_.front().load;
    if (t_seconds >= samples_.back().t_seconds)
        return samples_.back().load;
    auto it = std::upper_bound(
        samples_.begin(), samples_.end(), t_seconds,
        [](double t, const Sample& s) { return t < s.t_seconds; });
    const Sample& hi = *it;
    const Sample& lo = *std::prev(it);
    double frac = (t_seconds - lo.t_seconds) / (hi.t_seconds - lo.t_seconds);
    // Interpolation between validated loads stays in (0, 1]; replayed
    // data is returned exactly, like StepTrace.
    return lo.load + (hi.load - lo.load) * frac;
}

// ---------------------------------------------------------------------
// Helpers

double
traceMeanLoad(const LoadTrace& trace, double horizon_seconds,
              double step_seconds)
{
    CLITE_CHECK(horizon_seconds > 0.0,
                "horizon must be > 0, got " << horizon_seconds);
    CLITE_CHECK(step_seconds > 0.0,
                "step must be > 0, got " << step_seconds);
    size_t n = std::max<size_t>(
        1, size_t(std::ceil(horizon_seconds / step_seconds)));
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i)
        sum += trace.loadAt(double(i) * step_seconds);
    return sum / double(n);
}

JobSpec
withTrace(JobSpec spec, const LoadTrace& trace, double horizon_seconds,
          double step_seconds)
{
    spec.trace_kind = trace.name();
    spec.trace_mean_load =
        traceMeanLoad(trace, horizon_seconds, step_seconds);
    spec.load_fraction = spec.trace_mean_load;
    return spec;
}

JobSpec
heavyTailed(JobSpec spec, double alpha, double tail_ratio)
{
    CLITE_CHECK(alpha > 1.0,
                "heavy-tailed alpha must be > 1 (finite mean), got "
                    << alpha);
    CLITE_CHECK(tail_ratio > 1.0,
                "heavy-tailed tail ratio must be > 1, got "
                    << tail_ratio);
    spec.profile.service_distribution = ServiceDistribution::BoundedPareto;
    spec.profile.pareto_alpha = alpha;
    spec.profile.pareto_tail_ratio = tail_ratio;
    return spec;
}

} // namespace traffic
} // namespace workloads
} // namespace clite

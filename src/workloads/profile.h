/**
 * @file
 * Workload resource-sensitivity profiles.
 *
 * Each profile is a synthetic stand-in for one of the paper's Table 3
 * applications (Tailbench latency-critical apps, PARSEC background
 * apps). A profile captures, per unit of work:
 *
 *  - pure CPU time,
 *  - memory-stall time at a 100% LLC miss ratio,
 *  - the LLC working-set curve (miss ratio vs allocated ways),
 *  - DRAM traffic (drives bandwidth contention),
 *  - memory-capacity working set and disk/network demand,
 *  - core scalability (Amdahl parallel fraction, BG jobs).
 *
 * The performance model (perf_model.h) turns a profile plus a resource
 * allocation into service times, tail latencies and throughput. The
 * parameters are chosen so the paper's phenomenology emerges: each app
 * has a distinct sensitivity mix (e.g. streamcluster is LLC-hungry,
 * masstree bandwidth-bound, blackscholes CPU-bound), creating the
 * "resource equivalence class" trade-offs of Fig. 1.
 */

#ifndef CLITE_WORKLOADS_PROFILE_H
#define CLITE_WORKLOADS_PROFILE_H

#include <string>

namespace clite {
namespace workloads {

/** Latency-critical vs throughput-oriented background. */
enum class JobClass { LatencyCritical, Background };

/**
 * Per-query service-time distribution used by the DES backend.
 * Exponential matches the analytic M/M/c closed form (the default, so
 * the two backends cross-validate); LogNormal gives the lighter-tailed
 * service mix real request processing shows; BoundedPareto gives the
 * heavy-tailed mix (a few requests orders of magnitude costlier than
 * the median) that dominates warehouse tail latency.
 */
enum class ServiceDistribution { Exponential, LogNormal, BoundedPareto };

/**
 * Resource-sensitivity description of one application.
 */
struct WorkloadProfile
{
    std::string name;       ///< e.g. "memcached", "streamcluster".
    std::string description;///< Table 3 one-liner.
    JobClass job_class = JobClass::LatencyCritical;

    // --- LLC model -------------------------------------------------
    /**
     * Miss-ratio curve: miss(w) = floor + (1-floor) * 2^-((w-1)/half),
     * i.e. each additional `half` ways halves the over-floor misses.
     */
    double llc_half_ways = 3.0;  ///< Ways halving the miss ratio.
    double llc_miss_floor = 0.1; ///< Compulsory-miss floor in (0, 1].

    // --- service / op cost model ------------------------------------
    double cpu_ms = 1.0;  ///< CPU ms per query (LC) / per op (BG).
    double mem_ms = 0.5;  ///< Memory-stall ms per query at miss = 1.

    // --- DRAM traffic -----------------------------------------------
    /** MB of DRAM traffic per query at miss = 1 (LC jobs). */
    double traffic_mb_per_query = 1.0;
    /** MB/s of DRAM traffic per active core at miss = 1 (BG jobs). */
    double traffic_mbps_per_core = 200.0;

    // --- extended resources ------------------------------------------
    double mem_capacity_gb = 2.0;    ///< Resident working set.
    /** MB of disk I/O per query/op (0 for memory-resident apps). */
    double disk_mb_per_query = 0.0;
    /** MB of network traffic per query/op (0 for compute apps). */
    double net_mb_per_query = 0.0;

    // --- LC load model ------------------------------------------------
    /**
     * Request-serving parallelism ceiling (LC jobs): the number of
     * cores the service can keep busy before its internal bottleneck
     * (dispatch thread, locks, GC) caps throughput. This is what puts
     * the isolated QPS-vs-latency knee (Fig. 6) well below machine
     * saturation on the real testbed — and what makes co-located load
     * sums above 100% feasible (Figs. 7/8): a job at max load only
     * needs ~max_useful_cores, not the whole socket.
     */
    int max_useful_cores = 10;
    /** Offered QPS at 100% load (the Fig. 6 knee load). */
    double max_qps = 1000.0;
    /** p95 QoS target (ms); knee of the QPS-vs-p95 curve (Fig. 6). */
    double qos_p95_ms = 5.0;
    /** Service-time distribution for the DES backend. */
    ServiceDistribution service_distribution =
        ServiceDistribution::Exponential;
    /** Log-normal sigma of per-query service time (LogNormal only). */
    double service_sigma = 0.45;
    /**
     * Pareto tail index alpha (BoundedPareto only); must be > 1 so the
     * mean is finite and the lower bound can be solved from it. Lower
     * alpha = heavier tail (1.5 is the classic web-request shape).
     */
    double pareto_alpha = 1.5;
    /**
     * Upper/lower bound ratio H/L of the bounded Pareto support
     * (BoundedPareto only): the costliest request is tail_ratio times
     * the cheapest.
     */
    double pareto_tail_ratio = 100.0;

    // --- BG scaling ----------------------------------------------------
    /** Amdahl parallel fraction in [0, 1] (BG jobs). */
    double parallel_fraction = 0.95;

    /** True for latency-critical profiles. */
    bool isLatencyCritical() const;
};

/**
 * One co-located job: a profile plus its offered load.
 */
struct JobSpec
{
    WorkloadProfile profile; ///< Resource-sensitivity description.
    /** Load as a fraction of profile.max_qps (LC only; ignored for BG). */
    double load_fraction = 1.0;

    // --- trace identity (time-varying load) ---------------------------
    /**
     * LoadTrace::name() of the trace driving this job's load, or ""
     * for a static load. Purely descriptive at runtime (the harness
     * applies the trace), but folded into MixSignature so warm-start
     * lookups on trace-driven mixes never alias a static profile as an
     * exact hit.
     */
    std::string trace_kind;
    /**
     * Mean load of the driving trace (identity load for signatures;
     * meaningful only when trace_kind is non-empty). The instantaneous
     * load_fraction varies window to window, so the signature hashes
     * this stable summary instead.
     */
    double trace_mean_load = 0.0;

    /** Offered arrival rate in queries/second (LC). */
    double offeredQps() const;

    /** Convenience: profile.isLatencyCritical(). */
    bool isLatencyCritical() const;

    /** "name@load%" label used in harness tables. */
    std::string label() const;
};

} // namespace workloads
} // namespace clite

#endif // CLITE_WORKLOADS_PROFILE_H

/**
 * @file
 * Performance models: allocation -> (tail latency | throughput).
 *
 * This is the substitute for the paper's physical testbed (see
 * DESIGN.md Sec. 2). Two interchangeable backends implement the same
 * cost derivation:
 *
 *  - AnalyticModel: closed-form M/M/c queueing (Erlang-C) for LC tail
 *    latency and a rate equation for BG throughput. Fast enough for
 *    the ORACLE brute-force sweeps (~1 µs per evaluation).
 *  - QueueingSimModel: the discrete-event simulator of sim/ replays
 *    the same service-time model with log-normal service draws and
 *    Poisson arrivals over a warm-up + observation window (the paper's
 *    two-second measurement period) and reports the empirical p95.
 *
 * Cost derivation per job given its allocation (cores c, ways w,
 * bandwidth units b, optional capacity/disk/net units):
 *
 *   miss(w)    = floor + (1-floor) * 2^-((w-1)/half)
 *   bw_demand  = traffic * miss(w) * offered_rate
 *   bw_stall   = 1 + k_bw * max(0, bw_demand/bw_alloc - 1)   (capped)
 *   t_service  = [cpu + mem * miss(w) * bw_stall + io(disk,net)] * paging
 *   LC p95     = M/M/c response-time 95th percentile at (c, lambda,
 *                1/t_service)
 *   BG rate    = amdahl(c) / t_service (ops/s), amdahl(c) =
 *                1 / ((1-p) + p/c)
 *
 * The interaction structure the paper leans on is built in: ways
 * reduce misses which both shortens memory stalls AND sheds bandwidth
 * demand, so cache and bandwidth allocations are partially
 * interchangeable (the "resource equivalence class" property), while
 * cores trade against service-time inflation through queueing.
 */

#ifndef CLITE_WORKLOADS_PERF_MODEL_H
#define CLITE_WORKLOADS_PERF_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "platform/allocation.h"
#include "platform/resource.h"
#include "workloads/profile.h"

namespace clite {
namespace workloads {

/** Raw model output for one job under one allocation. */
struct JobMeasurement
{
    double p95_ms = 0.0;       ///< p95 response time (LC; 0 for BG).
    double p99_ms = 0.0;       ///< p99 response time (LC; 0 for BG).
    double mean_ms = 0.0;      ///< Mean response time (LC; 0 for BG).
    double throughput = 0.0;   ///< Completions/s (LC) or ops/s (BG).
    double service_ms = 0.0;   ///< Derived per-query/op service time.
    double miss_ratio = 0.0;   ///< LLC miss ratio at the allocation.
    double bw_stall = 1.0;     ///< Bandwidth-contention inflation.
    bool saturated = false;    ///< LC: offered load exceeds capacity.
};

/**
 * Intermediate service-cost derivation shared by both backends;
 * exposed for white-box tests of the interaction structure.
 */
struct ServiceCost
{
    double service_ms = 0.0; ///< Total per-query/op time.
    double miss_ratio = 0.0; ///< miss(w).
    double bw_stall = 1.0;   ///< Bandwidth stall multiplier.
    double paging = 1.0;     ///< Capacity-pressure multiplier.
    int cores = 1;           ///< Cores allocated.
};

/**
 * Derive the per-query/op service cost of @p job given the units of
 * each resource in @p units (aligned with @p config's resource order).
 *
 * @param job The job being modeled.
 * @param units Allocated units per resource.
 * @param config Server description (peak bandwidths etc.).
 * @param offered_rate Offered arrival rate for bandwidth-demand
 *     purposes: queries/s for LC; for BG pass 0 (the model uses the
 *     core count instead).
 */
ServiceCost deriveServiceCost(const JobSpec& job,
                              const std::vector<int>& units,
                              const platform::ServerConfig& config,
                              double offered_rate);

/**
 * Abstract performance model.
 */
class PerformanceModel
{
  public:
    virtual ~PerformanceModel() = default;

    /**
     * Measure @p job under the allocation @p units.
     *
     * @param job Job spec (profile + load).
     * @param units Allocated units, one per config resource.
     * @param config Server description.
     * @param rng Randomness for stochastic backends; unused by
     *     deterministic ones.
     */
    virtual JobMeasurement measure(const JobSpec& job,
                                   const std::vector<int>& units,
                                   const platform::ServerConfig& config,
                                   Rng& rng) const = 0;

    /** Backend name ("analytic" | "des"). */
    virtual std::string name() const = 0;

    /**
     * Switch the model's measurement event budget (coarse/fine mode,
     * docs/MODEL.md). Returns true when the backend honors budgets;
     * the default implementation refuses — deterministic closed-form
     * backends have no event bill to cap, and callers use the return
     * value to know whether coarse mode actually engaged.
     */
    virtual bool setEventBudget(uint64_t /*budget*/) { return false; }

    /** The active measurement event budget (0 = fine/unlimited). */
    virtual uint64_t eventBudget() const { return 0; }

    /**
     * Convenience: measure job @p j of @p jobs under a full Allocation.
     */
    JobMeasurement measureJob(const std::vector<JobSpec>& jobs, size_t j,
                              const platform::Allocation& alloc,
                              const platform::ServerConfig& config,
                              Rng& rng) const;
};

/**
 * Closed-form queueing backend (deterministic).
 */
class AnalyticModel : public PerformanceModel
{
  public:
    JobMeasurement measure(const JobSpec& job, const std::vector<int>& units,
                           const platform::ServerConfig& config,
                           Rng& rng) const override;
    std::string name() const override { return "analytic"; }
};

/**
 * Discrete-event-simulation backend.
 */
class QueueingSimModel : public PerformanceModel
{
  public:
    /**
     * @param warmup_s Transient discarded before measuring.
     * @param window_s Measured window (the paper's observation period
     *     is two seconds).
     * @param event_budget Cap on the expected number of measured
     *     requests per LC window; 0 (the default) simulates the full
     *     window. A positive budget shortens the measured span to
     *     min(window, budget / λ) — an unbiased but noisier estimate
     *     whose accuracy contract is documented in docs/MODEL.md and
     *     pinned by tests/sim/queueing_budget_test.cpp. The default
     *     stays unlimited so fine-budget results (and every golden
     *     that depends on them) are unchanged.
     */
    explicit QueueingSimModel(double warmup_s = 1.0, double window_s = 2.0,
                              uint64_t event_budget = 0);

    JobMeasurement measure(const JobSpec& job, const std::vector<int>& units,
                           const platform::ServerConfig& config,
                           Rng& rng) const override;
    std::string name() const override { return "des"; }

    /**
     * Re-budget the model in place: the controller flips one model
     * between coarse search probes and fine validation/monitoring
     * windows instead of rebuilding servers.
     */
    bool setEventBudget(uint64_t budget) override
    {
        event_budget_ = budget;
        return true;
    }

    /** The per-window measured-request cap (0 = unlimited). */
    uint64_t eventBudget() const override { return event_budget_; }

  private:
    double warmup_s_;
    double window_s_;
    uint64_t event_budget_;
};

} // namespace workloads
} // namespace clite

#endif // CLITE_WORKLOADS_PERF_MODEL_H

#include "workloads/load_trace.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace clite {
namespace workloads {

double
clampLoadFraction(double load)
{
    return std::clamp(load, 0.01, 1.0);
}

StepTrace::StepTrace(std::vector<Step> steps) : steps_(std::move(steps))
{
    CLITE_CHECK(!steps_.empty(),
                "StepTrace needs at least one step (an empty step "
                "vector has no initial load)");
    CLITE_CHECK(steps_.front().at_seconds == 0.0,
                "StepTrace must begin with a step at time 0, got first "
                "step at " << steps_.front().at_seconds << "s");
    for (size_t i = 1; i < steps_.size(); ++i)
        CLITE_CHECK(steps_[i].at_seconds >= steps_[i - 1].at_seconds,
                    "StepTrace steps must be in non-decreasing time "
                    "order: step " << i << " at "
                        << steps_[i].at_seconds << "s precedes step "
                        << (i - 1) << " at "
                        << steps_[i - 1].at_seconds << "s");
    for (size_t i = 0; i < steps_.size(); ++i)
        CLITE_CHECK(steps_[i].load > 0.0 && steps_[i].load <= 1.0,
                    "StepTrace step " << i
                        << " load must be in (0, 1], got "
                        << steps_[i].load);
}

double
StepTrace::loadAt(double t_seconds) const
{
    // First step whose time is strictly after t; the one before it is
    // in effect. The constructor validated every load into (0, 1], so
    // the value is returned exactly — no generator clamp, which would
    // silently distort documented-legal loads below the 0.01 floor.
    auto it = std::upper_bound(
        steps_.begin(), steps_.end(), t_seconds,
        [](double t, const Step& s) { return t < s.at_seconds; });
    if (it == steps_.begin())
        return steps_.front().load;
    return std::prev(it)->load;
}

DiurnalTrace::DiurnalTrace(double base, double amplitude,
                           double period_seconds, double phase_radians)
    : base_(base),
      amplitude_(amplitude),
      period_s_(period_seconds),
      phase_(phase_radians)
{
    CLITE_CHECK(period_s_ > 0.0, "diurnal period must be > 0");
    CLITE_CHECK(base_ > 0.0 && base_ <= 1.0, "base load must be in (0,1]");
    CLITE_CHECK(amplitude_ >= 0.0, "amplitude must be >= 0");
}

double
DiurnalTrace::loadAt(double t_seconds) const
{
    double v = base_ + amplitude_ *
                           std::sin(2.0 * M_PI * t_seconds / period_s_ +
                                    phase_);
    return clampLoadFraction(v);
}

BurstTrace::BurstTrace(double base, double burst_load, double burst_seconds,
                       double period_seconds)
    : base_(base),
      burst_load_(burst_load),
      burst_s_(burst_seconds),
      period_s_(period_seconds)
{
    CLITE_CHECK(period_s_ > 0.0, "burst period must be > 0");
    CLITE_CHECK(burst_s_ >= 0.0 && burst_s_ <= period_s_,
                "burst duration must be within the period");
    CLITE_CHECK(base_ > 0.0 && base_ <= 1.0, "base load must be in (0,1]");
    CLITE_CHECK(burst_load_ > 0.0 && burst_load_ <= 1.0,
                "burst load must be in (0,1]");
}

double
BurstTrace::loadAt(double t_seconds) const
{
    double t = std::fmod(std::max(0.0, t_seconds), period_s_);
    return clampLoadFraction(t < burst_s_ ? burst_load_ : base_);
}

} // namespace workloads
} // namespace clite

#include "baselines/random_plus.h"

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "stats/sampling.h"

namespace clite {
namespace baselines {

namespace {

double
distance(const std::vector<double>& a, const std::vector<double>& b)
{
    double d2 = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        d2 += (a[i] - b[i]) * (a[i] - b[i]);
    return std::sqrt(d2);
}

} // namespace

RandomPlusController::RandomPlusController(RandomPlusOptions options)
    : options_(options)
{
    CLITE_CHECK(options_.budget >= 1, "RAND+ needs budget >= 1");
    CLITE_CHECK(options_.min_distance >= 0.0,
                "RAND+ distance filter must be >= 0");
}

core::ControllerResult
RandomPlusController::run(platform::SimulatedServer& server)
{
    const platform::ServerConfig& config = server.config();
    const size_t njobs = server.jobCount();
    Rng rng(options_.seed);

    std::vector<core::SampleRecord> trace;
    std::vector<std::vector<double>> sampled;

    while (int(trace.size()) < options_.budget) {
        platform::Allocation cand(njobs, config);
        bool accepted = false;
        for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
            for (size_t r = 0; r < config.resourceCount(); ++r) {
                std::vector<int> parts = stats::sampleComposition(
                    config.resource(r).units, int(njobs), rng, 1);
                for (size_t j = 0; j < njobs; ++j)
                    cand.set(j, r, parts[j]);
            }
            std::vector<double> flat = cand.flattenNormalized();
            bool too_close = false;
            for (const auto& prev : sampled) {
                if (distance(flat, prev) < options_.min_distance) {
                    too_close = true;
                    break;
                }
            }
            if (!too_close) {
                sampled.push_back(std::move(flat));
                accepted = true;
                break;
            }
        }
        if (!accepted) {
            // Filter saturated the reachable space: accept the draw
            // anyway so the budget completes.
            sampled.push_back(cand.flattenNormalized());
        }
        cand.validate();
        trace.push_back(core::evaluateSample(server, cand));
    }

    return core::finalizeResult(server, std::move(trace));
}

} // namespace baselines
} // namespace clite

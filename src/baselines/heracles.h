/**
 * @file
 * Heracles baseline (Lo et al., ISCA 2015), as characterized in the
 * paper's evaluation: a controller designed for exactly ONE
 * latency-critical job co-located with best-effort work. It grows the
 * primary LC job's share of each resource until that job's QoS is met;
 * every other job — including any additional LC jobs — is treated as
 * best-effort and receives only the leftovers. Consequently it cannot
 * co-locate multiple LC jobs (Fig. 7a: Heracles supports no memcached
 * load once img-dnn and masstree are also latency-critical).
 */

#ifndef CLITE_BASELINES_HERACLES_H
#define CLITE_BASELINES_HERACLES_H

#include "core/controller.h"

namespace clite {
namespace baselines {

/** Heracles tuning knobs. */
struct HeraclesOptions
{
    int max_samples = 60;  ///< Adjustment budget.
    int stable_rounds = 2; ///< Quiet rounds before declaring done.
};

/**
 * The Heracles policy (1-LC/N-BG).
 */
class HeraclesController : public core::Controller
{
  public:
    explicit HeraclesController(HeraclesOptions options = {});

    std::string name() const override { return "heracles"; }

    /**
     * The primary LC job is the first latency-critical job in the
     * server's job list; all others are best-effort.
     */
    core::ControllerResult run(platform::SimulatedServer& server) override;

  private:
    HeraclesOptions options_;
};

} // namespace baselines
} // namespace clite

#endif // CLITE_BASELINES_HERACLES_H

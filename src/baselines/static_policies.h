/**
 * @file
 * Static (non-searching) reference policies.
 *
 * EqualShareController programs the equal division of every resource
 * and stops — the configuration an operator gets from naive fair
 * sharing, and the starting point of PARTIES/Heracles. It provides
 * the zero-search-cost floor the adaptive policies must beat, and the
 * bootstrap sanity reference used in tests.
 */

#ifndef CLITE_BASELINES_STATIC_POLICIES_H
#define CLITE_BASELINES_STATIC_POLICIES_H

#include "core/controller.h"

namespace clite {
namespace baselines {

/**
 * Equal division of every resource; one observation, no search.
 */
class EqualShareController : public core::Controller
{
  public:
    std::string name() const override { return "equal-share"; }

    core::ControllerResult run(platform::SimulatedServer& server) override;
};

} // namespace baselines
} // namespace clite

#endif // CLITE_BASELINES_STATIC_POLICIES_H

/**
 * @file
 * GENETIC baseline (Sec. 5.1): genetic-algorithm-inspired search.
 *
 * Starts from a random population of configurations; each generation
 * selects the two highest-scoring parents, produces children by
 * per-resource crossover (each child takes each resource's partition
 * row from one parent at random), then mutates them (move one unit of
 * one resource between two jobs). A preset total sample budget is
 * consumed and the best configuration by Eq. 3 score wins.
 */

#ifndef CLITE_BASELINES_GENETIC_H
#define CLITE_BASELINES_GENETIC_H

#include <cstdint>

#include "core/controller.h"

namespace clite {
namespace baselines {

/** GENETIC tuning knobs. */
struct GeneticOptions
{
    int budget = 50;        ///< Total configurations to evaluate.
    int population = 8;     ///< Initial random population size.
    int children_per_gen = 4; ///< Offspring evaluated per generation.
    double mutation_prob = 0.6; ///< Probability a child is mutated.
    int mutation_moves = 2; ///< Unit moves per mutation.
    uint64_t seed = 17;     ///< RNG seed.
};

/**
 * The GENETIC policy.
 */
class GeneticController : public core::Controller
{
  public:
    explicit GeneticController(GeneticOptions options = {});

    std::string name() const override { return "genetic"; }

    core::ControllerResult run(platform::SimulatedServer& server) override;

  private:
    GeneticOptions options_;
};

} // namespace baselines
} // namespace clite

#endif // CLITE_BASELINES_GENETIC_H

#include "baselines/static_policies.h"

namespace clite {
namespace baselines {

core::ControllerResult
EqualShareController::run(platform::SimulatedServer& server)
{
    platform::Allocation equal = platform::Allocation::equalShare(
        server.jobCount(), server.config());
    std::vector<core::SampleRecord> trace;
    trace.push_back(core::evaluateSample(server, equal));
    return core::finalizeResult(server, std::move(trace));
}

} // namespace baselines
} // namespace clite

/**
 * @file
 * PARTIES baseline (Chen, Delimitrou & Martínez, ASPLOS 2019), the
 * coordinate-descent comparison point of the paper (Sec. 5.1).
 *
 * PARTIES monitors each latency-critical job's QoS slack and makes
 * incremental single-resource adjustments through a per-job finite
 * state machine:
 *
 *  - If a job violates QoS, "upsize" it: move one unit of the FSM's
 *    current resource to it from the job with the most slack (or a
 *    background job). If the adjustment does not improve the victim's
 *    latency, the FSM advances to the next resource.
 *  - If every job has ample slack, "downsize" the slackest job and
 *    donate the unit to the background jobs.
 *
 * PARTIES stops as soon as QoS is met and stable — it does not
 * optimize BG performance further (the paper's main criticism), and
 * its trial-and-error exploration can get stuck cycling through its
 * FSM without finding feasible configurations that joint
 * multi-resource moves would reach (Fig. 9b).
 */

#ifndef CLITE_BASELINES_PARTIES_H
#define CLITE_BASELINES_PARTIES_H

#include <cstdint>

#include "core/controller.h"

namespace clite {
namespace baselines {

/** PARTIES tuning knobs. */
struct PartiesOptions
{
    int max_samples = 100;       ///< Adjustment budget (Fig. 9b uses 100).
    double up_threshold = 0.0;   ///< Slack below this = violation.
    double down_threshold = 0.3; ///< Slack above this = donate resources.
    /** Relative latency improvement required to keep trying a resource. */
    double improve_epsilon = 0.02;
    int stable_rounds = 3;       ///< Quiet rounds before declaring done.
    uint64_t seed = 11;          ///< Tie-break randomness.
};

/**
 * The PARTIES policy.
 */
class PartiesController : public core::Controller
{
  public:
    explicit PartiesController(PartiesOptions options = {});

    std::string name() const override { return "parties"; }

    core::ControllerResult run(platform::SimulatedServer& server) override;

  private:
    PartiesOptions options_;
};

} // namespace baselines
} // namespace clite

#endif // CLITE_BASELINES_PARTIES_H

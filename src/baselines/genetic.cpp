#include "baselines/genetic.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "stats/sampling.h"

namespace clite {
namespace baselines {

namespace {

/** Uniformly random valid allocation. */
platform::Allocation
randomAllocation(size_t njobs, const platform::ServerConfig& config,
                 Rng& rng)
{
    platform::Allocation a(njobs, config);
    for (size_t r = 0; r < config.resourceCount(); ++r) {
        std::vector<int> parts = stats::sampleComposition(
            config.resource(r).units, int(njobs), rng, 1);
        for (size_t j = 0; j < njobs; ++j)
            a.set(j, r, parts[j]);
    }
    a.validate();
    return a;
}

} // namespace

GeneticController::GeneticController(GeneticOptions options)
    : options_(options)
{
    CLITE_CHECK(options_.population >= 2, "GENETIC needs population >= 2");
    CLITE_CHECK(options_.budget >= options_.population,
                "GENETIC budget must cover the initial population");
    CLITE_CHECK(options_.children_per_gen >= 1,
                "GENETIC needs >= 1 child per generation");
}

core::ControllerResult
GeneticController::run(platform::SimulatedServer& server)
{
    const platform::ServerConfig& config = server.config();
    const size_t njobs = server.jobCount();
    const size_t nres = config.resourceCount();
    Rng rng(options_.seed);

    std::vector<core::SampleRecord> trace;

    // Initial population.
    for (int i = 0; i < options_.population; ++i)
        trace.push_back(core::evaluateSample(
            server, randomAllocation(njobs, config, rng)));

    while (int(trace.size()) < options_.budget) {
        // Selection: the two highest-scoring samples so far.
        size_t p1 = 0, p2 = 1;
        if (trace[p2].score > trace[p1].score)
            std::swap(p1, p2);
        for (size_t i = 2; i < trace.size(); ++i) {
            if (trace[i].score > trace[p1].score) {
                p2 = p1;
                p1 = i;
            } else if (trace[i].score > trace[p2].score) {
                p2 = i;
            }
        }

        int kids = std::min(options_.children_per_gen,
                            options_.budget - int(trace.size()));
        for (int k = 0; k < kids; ++k) {
            // Crossover: inherit each resource's whole partition row
            // from one parent (keeps per-resource sums valid).
            platform::Allocation child(njobs, config);
            for (size_t r = 0; r < nres; ++r) {
                const platform::Allocation& src =
                    rng.bernoulli(0.5) ? trace[p1].alloc : trace[p2].alloc;
                for (size_t j = 0; j < njobs; ++j)
                    child.set(j, r, src.get(j, r));
            }
            // Mutation: move units of random resources between jobs.
            if (rng.bernoulli(options_.mutation_prob)) {
                for (int m = 0; m < options_.mutation_moves; ++m) {
                    size_t r = size_t(rng.uniformInt(0, int64_t(nres) - 1));
                    size_t from =
                        size_t(rng.uniformInt(0, int64_t(njobs) - 1));
                    size_t to =
                        size_t(rng.uniformInt(0, int64_t(njobs) - 1));
                    if (from != to)
                        child.transferUnit(r, from, to);
                }
            }
            child.validate();
            trace.push_back(core::evaluateSample(server, child));
        }
    }

    return core::finalizeResult(server, std::move(trace));
}

} // namespace baselines
} // namespace clite

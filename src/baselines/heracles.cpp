#include "baselines/heracles.h"

#include "common/error.h"

namespace clite {
namespace baselines {

HeraclesController::HeraclesController(HeraclesOptions options)
    : options_(options)
{
    CLITE_CHECK(options_.max_samples >= 1, "Heracles needs >= 1 sample");
}

core::ControllerResult
HeraclesController::run(platform::SimulatedServer& server)
{
    const size_t njobs = server.jobCount();
    const size_t nres = server.config().resourceCount();

    std::vector<size_t> lc = server.lcJobs();
    CLITE_CHECK(!lc.empty(), "Heracles needs at least one LC job");
    const size_t primary = lc.front();

    std::vector<core::SampleRecord> trace;
    platform::Allocation current =
        platform::Allocation::equalShare(njobs, server.config());

    size_t fsm = 0; // resource to grow next
    int quiet = 0;
    while (int(trace.size()) < options_.max_samples) {
        trace.push_back(core::evaluateSample(server, current));
        const auto& obs = trace.back().observations;

        const auto& pob = obs[primary];
        if (pob.qosMet()) {
            // Primary satisfied; Heracles holds the partition.
            if (++quiet >= options_.stable_rounds)
                break;
            continue;
        }
        quiet = 0;

        // Grow the primary by one unit of the FSM resource, taken from
        // the best-effort job holding the most of it.
        bool moved = false;
        for (size_t attempt = 0; attempt < nres && !moved; ++attempt) {
            size_t r = fsm;
            int victim = -1;
            int most = 1;
            for (size_t j = 0; j < njobs; ++j) {
                if (j == primary)
                    continue;
                if (current.get(j, r) > most) {
                    most = current.get(j, r);
                    victim = int(j);
                }
            }
            if (victim >= 0)
                moved = current.transferUnit(r, size_t(victim), primary);
            fsm = (fsm + 1) % nres;
        }
        if (!moved)
            break; // primary owns everything and still misses QoS
    }

    // Heracles keeps the final configuration; "feasible" in the
    // multi-LC sense requires every LC job's QoS, which it does not
    // manage — finalizeResult computes that from the trace honestly.
    core::ControllerResult result;
    result.samples = int(trace.size());
    int last_ok = -1;
    for (size_t i = 0; i < trace.size(); ++i)
        if (trace[i].all_qos_met)
            last_ok = int(i);
    size_t pick = last_ok >= 0 ? size_t(last_ok) : trace.size() - 1;
    result.best = trace[pick].alloc;
    result.best_score = trace[pick].score;
    result.feasible = last_ok >= 0;
    result.trace = std::move(trace);
    server.apply(*result.best);
    return result;
}

} // namespace baselines
} // namespace clite

#include "baselines/parties.h"

#include <algorithm>
#include <limits>

#include "common/error.h"
#include "common/rng.h"

namespace clite {
namespace baselines {

namespace {

/** QoS slack of one observation: (target - p95)/target; BG = +inf. */
double
slack(const platform::JobObservation& ob)
{
    if (!ob.is_lc)
        return std::numeric_limits<double>::infinity();
    if (ob.qos_target_ms <= 0.0)
        return 0.0;
    return (ob.qos_target_ms - ob.p95_ms) / ob.qos_target_ms;
}

} // namespace

PartiesController::PartiesController(PartiesOptions options)
    : options_(options)
{
    CLITE_CHECK(options_.max_samples >= 1, "PARTIES needs >= 1 sample");
}

core::ControllerResult
PartiesController::run(platform::SimulatedServer& server)
{
    const size_t njobs = server.jobCount();
    const size_t nres = server.config().resourceCount();
    Rng rng(options_.seed);

    std::vector<core::SampleRecord> trace;
    platform::Allocation current =
        platform::Allocation::equalShare(njobs, server.config());

    // Per-job FSM pointer: which resource to adjust next.
    std::vector<size_t> fsm(njobs, 0);
    // Latency of each LC job at its previous measurement, to judge
    // whether the last upsize helped.
    std::vector<double> last_p95(njobs, -1.0);
    int last_upsized = -1;
    // Jobs whose last downsize caused a QoS violation are not donated
    // from again: this is PARTIES' stabilization — without it the
    // donate/reclaim pair cycles until the sample budget is gone.
    std::vector<bool> donate_blocked(njobs, false);
    int last_downsized = -1;

    int quiet_rounds = 0;
    while (int(trace.size()) < options_.max_samples) {
        trace.push_back(core::evaluateSample(server, current));
        const auto& obs = trace.back().observations;

        // Did the previous upsize help its job? If not, advance FSM.
        if (last_upsized >= 0) {
            double before = last_p95[size_t(last_upsized)];
            double after = obs[size_t(last_upsized)].p95_ms;
            if (before > 0.0 &&
                after > before * (1.0 - options_.improve_epsilon))
                fsm[size_t(last_upsized)] =
                    (fsm[size_t(last_upsized)] + 1) % nres;
        }
        // Did the previous downsize break its donor's QoS? Freeze it.
        if (last_downsized >= 0 &&
            !obs[size_t(last_downsized)].qosMet())
            donate_blocked[size_t(last_downsized)] = true;
        last_downsized = -1;

        for (size_t j = 0; j < njobs; ++j)
            if (obs[j].is_lc)
                last_p95[j] = obs[j].p95_ms;
        last_upsized = -1;

        // Find the most violating LC job (min slack < up_threshold).
        int violator = -1;
        double worst = options_.up_threshold;
        for (size_t j = 0; j < njobs; ++j) {
            double s = slack(obs[j]);
            if (obs[j].is_lc && s < worst) {
                worst = s;
                violator = int(j);
            }
        }

        if (violator >= 0) {
            quiet_rounds = 0;
            // Upsize: move one unit of the FSM resource to the
            // violator, taken from the job with the most slack that
            // can spare a unit (BG jobs count as infinite slack).
            bool moved = false;
            for (size_t attempt = 0; attempt < nres && !moved; ++attempt) {
                size_t r = fsm[size_t(violator)];
                int victim = -1;
                double best_slack = -std::numeric_limits<double>::infinity();
                for (size_t j = 0; j < njobs; ++j) {
                    if (int(j) == violator || current.get(j, r) <= 1)
                        continue;
                    double s = slack(obs[j]);
                    if (s > best_slack) {
                        best_slack = s;
                        victim = int(j);
                    }
                }
                if (victim >= 0) {
                    moved = current.transferUnit(r, size_t(victim),
                                                 size_t(violator));
                    if (moved)
                        last_upsized = violator;
                }
                if (!moved)
                    fsm[size_t(violator)] =
                        (fsm[size_t(violator)] + 1) % nres;
            }
            if (!moved) {
                // Nothing left to take anywhere: PARTIES concludes the
                // co-location cannot be satisfied.
                break;
            }
            continue;
        }

        // All LC jobs fine. Downsize the slackest LC job and donate to
        // a background job (PARTIES reclaims best-effort resources).
        int donor = -1;
        double most = options_.down_threshold;
        for (size_t j = 0; j < njobs; ++j) {
            double s = slack(obs[j]);
            if (obs[j].is_lc && !donate_blocked[j] && s > most) {
                most = s;
                donor = int(j);
            }
        }
        std::vector<size_t> bg;
        for (size_t j = 0; j < njobs; ++j)
            if (!obs[j].is_lc)
                bg.push_back(j);

        bool acted = false;
        if (donor >= 0 && !bg.empty()) {
            size_t r = fsm[size_t(donor)];
            size_t target = bg[size_t(rng.uniformInt(
                0, int64_t(bg.size()) - 1))];
            acted = current.transferUnit(r, size_t(donor), target);
            fsm[size_t(donor)] = (fsm[size_t(donor)] + 1) % nres;
            if (acted)
                last_downsized = donor;
        }
        if (!acted) {
            if (++quiet_rounds >= options_.stable_rounds)
                break; // converged: QoS met and nothing to reclaim
        } else {
            quiet_rounds = 0;
        }
    }

    // PARTIES keeps the last QoS-satisfying configuration it reached,
    // not the best-scoring one (it does not track scores); model that
    // by preferring the LAST all-QoS-met sample, falling back to the
    // best score when none met QoS.
    core::ControllerResult result;
    result.samples = int(trace.size());
    int last_ok = -1;
    for (size_t i = 0; i < trace.size(); ++i)
        if (trace[i].all_qos_met)
            last_ok = int(i);
    size_t pick;
    if (last_ok >= 0) {
        pick = size_t(last_ok);
        result.feasible = true;
    } else {
        pick = 0;
        for (size_t i = 1; i < trace.size(); ++i)
            if (trace[i].score > trace[pick].score)
                pick = i;
    }
    result.best = trace[pick].alloc;
    result.best_score = trace[pick].score;
    result.trace = std::move(trace);
    server.apply(*result.best);
    return result;
}

} // namespace baselines
} // namespace clite

/**
 * @file
 * RAND+ baseline (Sec. 5.1): stochastic search that draws
 * configurations uniformly from the space of valid partitions and
 * discards draws that are too close (Euclidean distance in normalized
 * coordinates) to already-sampled configurations, to avoid wasting
 * samples on near-duplicates. A preset budget of configurations is
 * collected and the best by Eq. 3 score wins.
 */

#ifndef CLITE_BASELINES_RANDOM_PLUS_H
#define CLITE_BASELINES_RANDOM_PLUS_H

#include <cstdint>

#include "core/controller.h"

namespace clite {
namespace baselines {

/** RAND+ tuning knobs. */
struct RandomPlusOptions
{
    /**
     * Preset sample budget; the paper sets it above CLITE's average
     * so the evolutionary baselines are competitive on quality even
     * at higher overhead (Fig. 15a).
     */
    int budget = 50;
    /** Minimum normalized Euclidean distance to prior samples. */
    double min_distance = 0.08;
    /** Draw attempts per accepted sample before relaxing the filter. */
    int max_attempts = 50;
    uint64_t seed = 13; ///< RNG seed.
};

/**
 * The RAND+ policy.
 */
class RandomPlusController : public core::Controller
{
  public:
    explicit RandomPlusController(RandomPlusOptions options = {});

    std::string name() const override { return "rand+"; }

    core::ControllerResult run(platform::SimulatedServer& server) override;

  private:
    RandomPlusOptions options_;
};

} // namespace baselines
} // namespace clite

#endif // CLITE_BASELINES_RANDOM_PLUS_H

/**
 * @file
 * ORACLE brute-force policy (Sec. 5.1).
 *
 * Enumerates every valid resource-partition configuration (the full
 * N_conf product of per-resource compositions), scores each with the
 * noise-free model, and returns the global optimum of Eq. 3. As in the
 * paper this is an offline yardstick — it samples thousands to millions
 * of configurations and is infeasible online — used to normalize every
 * other policy's result quality.
 */

#ifndef CLITE_BASELINES_ORACLE_H
#define CLITE_BASELINES_ORACLE_H

#include <cstdint>

#include "core/controller.h"

namespace clite {
namespace baselines {

/** ORACLE options. */
struct OracleOptions
{
    /**
     * Safety cap on enumerated configurations; the search throws if
     * the space is larger (raise deliberately for big sweeps).
     */
    uint64_t max_configurations = 20'000'000;
};

/**
 * Exhaustive-search policy.
 */
class OracleController : public core::Controller
{
  public:
    explicit OracleController(OracleOptions options = {});

    std::string name() const override { return "oracle"; }

    /**
     * Enumerate and score every configuration. The returned trace
     * contains ONLY the best configuration (storing millions of
     * samples is pointless); `samples` reports the number enumerated.
     */
    core::ControllerResult run(platform::SimulatedServer& server) override;

  private:
    OracleOptions options_;
};

} // namespace baselines
} // namespace clite

#endif // CLITE_BASELINES_ORACLE_H

#include "baselines/oracle.h"

#include <cmath>
#include <functional>

#include "common/error.h"
#include "stats/sampling.h"

namespace clite {
namespace baselines {

namespace {

/**
 * Per-job score ingredients for one units tuple, precomputed so the
 * exhaustive enumeration costs a table lookup per job instead of a
 * model evaluation. Valid because a job's performance under
 * partitioning-enforced isolation depends only on its own allocation,
 * and the oracle view is the deterministic noise-free model.
 */
struct JobCell
{
    double qos_ratio = 1.0;  ///< min(1, target/p95)   (LC)
    double perf_norm = 1.0;  ///< min(1, perf/iso)     (LC & BG)
    bool qos_met = true;     ///< LC only; BG always true.
};

/** Per-job lookup table over every feasible units tuple. */
class JobTable
{
  public:
    JobTable(const platform::SimulatedServer& server, size_t job,
             size_t njobs)
        : config_(server.config())
    {
        const size_t nres = config_.resourceCount();
        extents_.resize(nres);
        strides_.resize(nres);
        size_t total = 1;
        for (size_t r = 0; r < nres; ++r) {
            extents_[r] = config_.resource(r).units - int(njobs) + 1;
            strides_[r] = total;
            total *= size_t(extents_[r]);
        }
        cells_.resize(total);

        // Probe the model through a one-off allocation per tuple by
        // reusing the server's noise-free observer on a scratch
        // allocation where the other jobs absorb the remaining units.
        std::vector<int> units(nres, 1);
        fillRec(server, job, njobs, units, 0);
    }

    const JobCell&
    cell(const platform::Allocation& alloc, size_t job) const
    {
        size_t idx = 0;
        for (size_t r = 0; r < strides_.size(); ++r)
            idx += strides_[r] * size_t(alloc.get(job, r) - 1);
        return cells_[idx];
    }

  private:
    void
    fillRec(const platform::SimulatedServer& server, size_t job,
            size_t njobs, std::vector<int>& units, size_t r)
    {
        const size_t nres = config_.resourceCount();
        if (r == nres) {
            // Build a scratch allocation: this job gets `units`, the
            // remainder is spread validly across the other jobs.
            platform::Allocation scratch(njobs, config_);
            for (size_t rr = 0; rr < nres; ++rr) {
                int rest = config_.resource(rr).units - units[rr];
                int others = int(njobs) - 1;
                for (size_t j = 0, k = 0; j < njobs; ++j) {
                    if (j == job) {
                        scratch.set(j, rr, units[rr]);
                    } else {
                        int share = rest / others +
                                    (int(k) < rest % others ? 1 : 0);
                        scratch.set(j, rr, share);
                        ++k;
                    }
                }
            }
            scratch.validate();
            std::vector<platform::JobObservation> obs =
                server.observeNoiseless(scratch);
            const platform::JobObservation& ob = obs[job];

            size_t idx = 0;
            for (size_t rr = 0; rr < nres; ++rr)
                idx += strides_[rr] * size_t(units[rr] - 1);
            JobCell& c = cells_[idx];
            c.qos_met = ob.qosMet();
            c.perf_norm = ob.perfNorm();
            c.qos_ratio = std::clamp(ob.qosRatio(), 1e-6, 1.0);
            return;
        }
        for (int u = 1; u <= extents_[r]; ++u) {
            units[r] = u;
            fillRec(server, job, njobs, units, r + 1);
        }
    }

    const platform::ServerConfig& config_;
    std::vector<int> extents_;
    std::vector<size_t> strides_;
    std::vector<JobCell> cells_;
};

} // namespace

OracleController::OracleController(OracleOptions options)
    : options_(options)
{
}

core::ControllerResult
OracleController::run(platform::SimulatedServer& server)
{
    const platform::ServerConfig& config = server.config();
    const size_t njobs = server.jobCount();
    const size_t nres = config.resourceCount();

    uint64_t space = config.configurationCount(int(njobs));
    CLITE_CHECK(space <= options_.max_configurations,
                "ORACLE would enumerate " << space
                    << " configurations, above the cap of "
                    << options_.max_configurations);

    // Precompute per-job score ingredients.
    std::vector<JobTable> tables;
    tables.reserve(njobs);
    std::vector<size_t> lc_jobs = server.lcJobs();
    std::vector<size_t> bg_jobs = server.bgJobs();
    for (size_t j = 0; j < njobs; ++j)
        tables.emplace_back(server, j, njobs);
    // Mode 2 averages BG performance, or LC performance when no BG
    // jobs are co-located (N_BG -> N_LC).
    const std::vector<size_t>& perf_jobs =
        bg_jobs.empty() ? lc_jobs : bg_jobs;

    platform::Allocation current(njobs, config);
    platform::Allocation best(njobs, config);
    double best_score = -1.0;
    uint64_t enumerated = 0;

    auto score_current = [&]() {
        // Mirrors core::scoreObservations (Eq. 3, arithmetic means).
        bool met = true;
        double ratio_sum = 0.0;
        for (size_t j : lc_jobs) {
            const JobCell& c = tables[j].cell(current, j);
            met = met && c.qos_met;
            ratio_sum += c.qos_ratio;
        }
        if (!met) {
            double m = lc_jobs.empty()
                           ? 1.0
                           : ratio_sum / double(lc_jobs.size());
            return 0.5 * m;
        }
        double perf_sum = 0.0;
        for (size_t j : perf_jobs)
            perf_sum += tables[j].cell(current, j).perf_norm;
        double m = perf_jobs.empty()
                       ? 1.0
                       : perf_sum / double(perf_jobs.size());
        return 0.5 + 0.5 * m;
    };

    std::function<void(size_t)> recurse = [&](size_t r) {
        if (r == nres) {
            ++enumerated;
            double s = score_current();
            if (s > best_score) {
                best_score = s;
                best = current;
            }
            return;
        }
        stats::forEachComposition(
            config.resource(r).units, int(njobs),
            [&](const std::vector<int>& parts) {
                for (size_t j = 0; j < njobs; ++j)
                    current.set(j, r, parts[j]);
                recurse(r + 1);
                return true;
            },
            1);
    };
    recurse(0);
    CLITE_ASSERT(enumerated == space,
                 "enumerated " << enumerated << " of " << space
                               << " configurations");

    // Re-observe the winner through the full path for the trace.
    std::vector<platform::JobObservation> best_obs =
        server.observeNoiseless(best);
    core::ScoreBreakdown sb = core::scoreObservations(best_obs);

    core::ControllerResult result;
    result.samples = int(enumerated);
    result.best = best;
    result.best_score = sb.score;
    result.feasible = sb.all_qos_met;
    result.trace.emplace_back(best, sb.score, sb.all_qos_met,
                              std::move(best_obs));
    server.apply(best);
    return result;
}

} // namespace baselines
} // namespace clite

/**
 * @file
 * Discrete-event simulation core.
 *
 * A classic calendar/event-queue simulator: events are (time, callback)
 * pairs processed in non-decreasing time order with FIFO tie-breaking.
 * The queueing stations in sim/queueing.h are built on this, and it is
 * the substrate that stands in for "running the system for the two
 * second observation period" on the paper's physical testbed.
 *
 * Storage layout: the pending set is a binary min-heap of POD entries
 * (time, seq, slot) over a slab of callback slots recycled through a
 * free list. Heap sift operations therefore move 24-byte PODs instead
 * of std::function objects, and neither the heap nor the slab ever
 * shrinks — a simulator reused across measurement windows (clear() +
 * reserve()) reaches a steady state with zero allocations per window.
 * The pop order is exactly the (time, seq) order of the previous
 * std::priority_queue implementation; seq is unique per event, so the
 * order is total and independent of the container
 * (tests/sim/event_queue_test.cpp pins this against a reference
 * priority queue across random schedules).
 */

#ifndef CLITE_SIM_EVENT_QUEUE_H
#define CLITE_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <vector>

namespace clite {
namespace sim {

/** Simulated time in seconds. */
using SimTime = double;

/**
 * Event-driven simulator with a monotonically advancing clock.
 */
class Simulator
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Number of events processed so far. */
    uint64_t eventsProcessed() const { return processed_; }

    /** Number of events currently pending. */
    size_t pendingEvents() const { return heap_.size(); }

    /**
     * Schedule @p fn to run @p delay seconds from now.
     * @pre delay >= 0
     */
    void schedule(SimTime delay, Callback fn);

    /**
     * Schedule @p fn at absolute time @p when.
     * @pre when >= now()
     */
    void scheduleAt(SimTime when, Callback fn);

    /**
     * Run events until the queue empties or the clock would pass
     * @p until. Events scheduled exactly at @p until are processed.
     *
     * @return Simulated time reached.
     */
    SimTime runUntil(SimTime until);

    /** Run until the event queue is empty. @return final time. */
    SimTime runToCompletion();

    /** Drop all pending events (clock is unchanged). */
    void clearPending();

    /**
     * Reset to a freshly constructed simulator — clock at 0, no
     * pending events, counters zeroed — while keeping the heap and
     * callback-slab capacity. This is the reuse hook for drivers that
     * run many simulations back to back (QueueingSimModel's
     * observation windows): clear() + reserve() once, then every
     * subsequent window schedules into recycled storage.
     */
    void clear();

    /**
     * Pre-size the heap and the callback slab for @p events
     * simultaneously pending events. Never shrinks.
     */
    void reserve(size_t events);

  private:
    /**
     * One pending event. The callback lives in slots_[slot]; the heap
     * only shuffles these PODs. Order: (time, seq) ascending, seq
     * being the schedule sequence number (FIFO tie-break).
     */
    struct HeapEntry
    {
        SimTime time;
        uint64_t seq;
        uint32_t slot;
    };

    /** True when @p a must be processed before @p b. */
    static bool
    before(const HeapEntry& a, const HeapEntry& b)
    {
        if (a.time != b.time)
            return a.time < b.time;
        return a.seq < b.seq;
    }

    /** Move heap_[pos] up to its place. */
    void siftUp(size_t pos);

    /** Move heap_[pos] down to its place. */
    void siftDown(size_t pos);

    std::vector<HeapEntry> heap_;      ///< binary min-heap of pending events
    std::vector<Callback> slots_;      ///< callback slab indexed by slot
    std::vector<uint32_t> free_slots_; ///< recycled slab indices
    SimTime now_ = 0.0;
    uint64_t next_seq_ = 0;
    uint64_t processed_ = 0;
};

} // namespace sim
} // namespace clite

#endif // CLITE_SIM_EVENT_QUEUE_H

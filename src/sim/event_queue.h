/**
 * @file
 * Discrete-event simulation core.
 *
 * A classic calendar/event-queue simulator: events are (time, callback)
 * pairs processed in non-decreasing time order with FIFO tie-breaking.
 * The queueing stations in sim/queueing.h are built on this, and it is
 * the substrate that stands in for "running the system for the two
 * second observation period" on the paper's physical testbed.
 */

#ifndef CLITE_SIM_EVENT_QUEUE_H
#define CLITE_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace clite {
namespace sim {

/** Simulated time in seconds. */
using SimTime = double;

/**
 * Event-driven simulator with a monotonically advancing clock.
 */
class Simulator
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    SimTime now() const { return now_; }

    /** Number of events processed so far. */
    uint64_t eventsProcessed() const { return processed_; }

    /** Number of events currently pending. */
    size_t pendingEvents() const { return queue_.size(); }

    /**
     * Schedule @p fn to run @p delay seconds from now.
     * @pre delay >= 0
     */
    void schedule(SimTime delay, Callback fn);

    /**
     * Schedule @p fn at absolute time @p when.
     * @pre when >= now()
     */
    void scheduleAt(SimTime when, Callback fn);

    /**
     * Run events until the queue empties or the clock would pass
     * @p until. Events scheduled exactly at @p until are processed.
     *
     * @return Simulated time reached.
     */
    SimTime runUntil(SimTime until);

    /** Run until the event queue is empty. @return final time. */
    SimTime runToCompletion();

    /** Drop all pending events (clock is unchanged). */
    void clearPending();

  private:
    struct Event
    {
        SimTime time;
        uint64_t seq; // FIFO tie-break
        Callback fn;
    };
    struct Later
    {
        bool
        operator()(const Event& a, const Event& b) const
        {
            if (a.time != b.time)
                return a.time > b.time;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    SimTime now_ = 0.0;
    uint64_t next_seq_ = 0;
    uint64_t processed_ = 0;
};

} // namespace sim
} // namespace clite

#endif // CLITE_SIM_EVENT_QUEUE_H

/**
 * @file
 * Multi-server queueing station on the discrete-event core.
 *
 * Models one latency-critical service the way the paper's testbed does:
 * a load generator (Poisson arrivals at the offered QPS) feeding c
 * worker cores; each request holds one core for a sampled service time.
 * Requests queue FIFO when all cores are busy. Response times
 * (queueing + service) are recorded so the harness can report the p95
 * tail latency over an observation window, exactly the quantity CLITE's
 * score function consumes.
 *
 * Two drivers produce the windowed measurement:
 *
 *  - measureStation() — the production path. A specialized M/G/c loop
 *    that tracks the one pending arrival and the <= c in-service
 *    departures directly (no generic event queue, no std::function
 *    samplers) and reuses thread-local buffers across calls, so a
 *    QueueingSimModel window allocates nothing in steady state. Its
 *    event processing order and RNG draw order replicate the generic
 *    simulator exactly, so every field of the result is bit-identical
 *    to measureStationReference (pinned per seed by
 *    tests/sim/queueing_fast_test.cpp).
 *  - measureStationReference() — the same measurement through
 *    QueueingStation on the generic Simulator: the readable oracle the
 *    fast path is verified against.
 */

#ifndef CLITE_SIM_QUEUEING_H
#define CLITE_SIM_QUEUEING_H

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"

namespace clite {
namespace sim {

/**
 * A c-server FIFO queueing station driven by Poisson arrivals.
 */
class QueueingStation
{
  public:
    /** Sampler for one request's service time (seconds). */
    using ServiceSampler = std::function<double(Rng&)>;

    /**
     * @param simulator Event core; must outlive the station.
     * @param servers Number of servers c (>= 1).
     * @param arrival_rate Poisson arrival rate λ in requests/second
     *     (0 disables arrivals).
     * @param sampler Service-time sampler.
     * @param rng Randomness; must outlive the station.
     */
    QueueingStation(Simulator& simulator, int servers, double arrival_rate,
                    ServiceSampler sampler, Rng& rng);

    /** Begin generating arrivals (schedules the first arrival). */
    void start();

    /**
     * Drop response times recorded so far — used to discard warm-up
     * transients before the measured observation window.
     */
    void resetMeasurements();

    /** Response times (seconds) completed since the last reset. */
    const std::vector<double>& responseTimes() const { return response_; }

    /** Requests completed since the last reset. */
    size_t completedCount() const { return response_.size(); }

    /** Requests currently waiting (excludes in-service). */
    size_t queuedCount() const { return waiting_.size(); }

    /** Servers currently busy. */
    int busyServers() const { return busy_; }

  private:
    /** Handle one arrival: enter service or queue. */
    void onArrival();

    /** Start service for the request that arrived at @p arrival_time. */
    void beginService(SimTime arrival_time);

    /** A server finished the request that arrived at @p arrival_time. */
    void onDeparture(SimTime arrival_time);

    Simulator& sim_;
    int servers_;
    double arrival_rate_;
    ServiceSampler sampler_;
    Rng& rng_;

    int busy_ = 0;
    std::deque<SimTime> waiting_; // arrival times of queued requests
    std::vector<double> response_;
};

/** Result of a windowed tail-latency measurement. */
struct TailMeasurement
{
    double p50 = 0.0;      ///< Median response time (seconds).
    double p95 = 0.0;      ///< 95th-percentile response time (seconds).
    double p99 = 0.0;      ///< 99th-percentile response time (seconds).
    double mean = 0.0;     ///< Mean response time (seconds).
    size_t completed = 0;  ///< Requests completed in the window.
    double throughput = 0.0; ///< Completions per second in the window.
};

/**
 * Smallest request budget effectiveWindow() will honor: below this the
 * percentile estimates are all noise, so tighter budgets are clamped.
 */
constexpr uint64_t kMinEventBudget = 64;

/**
 * Measured window implied by an event budget: the span of
 * min(window, budget / λ) seconds (budget clamped to kMinEventBudget)
 * that keeps the expected number of measured requests at or under
 * @p event_budget. 0 means unlimited — the full window. A budgeted
 * measurement is bit-identical to an unbudgeted measurement over this
 * shorter window, so it is an unbiased estimate whose sampling error
 * shrinks as the budget grows (accuracy contract in docs/MODEL.md;
 * tolerance pinned by tests/sim/queueing_budget_test.cpp).
 */
double effectiveWindow(double window, double arrival_rate,
                       uint64_t event_budget);

/**
 * Convenience driver: simulate an M/G/c station with log-normal service
 * times for @p warmup + @p window seconds and summarize the measured
 * window (the paper's two-second observation period).
 *
 * @param servers Number of servers c.
 * @param arrival_rate Offered load λ (requests/second).
 * @param mean_service Mean service time (seconds).
 * @param service_sigma Service distribution selector: > 0 gives
 *     log-normal service with that sigma, 0 deterministic service,
 *     < 0 exponential service (the M/M/c case).
 * @param warmup Transient to discard (seconds).
 * @param window Measured window (seconds).
 * @param rng Randomness.
 * @param event_budget Cap on the expected number of measured requests;
 *     0 (the default) measures the full window. See effectiveWindow().
 */
TailMeasurement measureStation(int servers, double arrival_rate,
                               double mean_service, double service_sigma,
                               double warmup, double window, Rng& rng,
                               uint64_t event_budget = 0);

/**
 * Explicit service-time distribution for the ServiceModel overload of
 * measureStation — the extensible successor to the legacy sigma-sign
 * selector (which cannot express distributions with more than one
 * shape parameter, like the bounded Pareto).
 */
struct ServiceModel
{
    enum class Kind {
        Exponential,  ///< M/M/c (the analytic cross-check case).
        LogNormal,    ///< Light-tailed real request mix.
        Fixed,        ///< Deterministic service (M/D/c).
        BoundedPareto ///< Heavy-tailed: rare requests dominate the tail.
    };

    Kind kind = Kind::Exponential;
    /** Mean service time in seconds (all kinds). */
    double mean_service = 0.001;
    /** Log-sigma (LogNormal only; must be > 0). */
    double sigma = 0.45;
    /** Tail index (BoundedPareto only; > 1 so the mean is finite). */
    double pareto_alpha = 1.5;
    /** Support ratio H/L (BoundedPareto only; > 1). */
    double pareto_tail_ratio = 100.0;
};

/**
 * measureStation with an explicit ServiceModel. For Exponential,
 * LogNormal and Fixed this delegates to the legacy sigma-selector
 * entry point (same RNG stream, bit-identical results — pinned by
 * tests/sim/queueing_pareto_test.cpp); BoundedPareto runs the same
 * specialized loop with a bounded-Pareto inverse-CDF sampler (one
 * uniform draw per request), parameterized so the distribution mean
 * equals service.mean_service.
 */
TailMeasurement measureStation(int servers, double arrival_rate,
                               const ServiceModel& service, double warmup,
                               double window, Rng& rng,
                               uint64_t event_budget = 0);

/**
 * Pre-size the CALLING thread's measurement scratch — the pooled
 * per-thread slab measureStation() runs out of — so a node's first
 * observation window pays no growth reallocations (first-window
 * jitter). Reserves the in-service heap for @p max_servers and the
 * response/waiting/sort buffers for @p expected_requests completions
 * (≈ λ · window for the hottest co-located job). thread_local state
 * is reachable only from its own thread: to warm a pool's workers,
 * run this under ThreadPool::broadcast(). Idempotent and monotone —
 * repeat calls only ever grow the reservation.
 */
void prewarmMeasurementScratch(int max_servers, size_t expected_requests);

/**
 * Reference implementation of measureStation through QueueingStation
 * on the generic (pooled-heap) Simulator — same parameters, same
 * result, bit for bit. Kept as the oracle for the fast path's
 * determinism tests and for readers who want the measurement spelled
 * out in simulation primitives.
 */
TailMeasurement measureStationReference(int servers, double arrival_rate,
                                        double mean_service,
                                        double service_sigma, double warmup,
                                        double window, Rng& rng,
                                        uint64_t event_budget = 0);

/** measureStationReference with an explicit ServiceModel (the oracle
    for the ServiceModel fast path, including BoundedPareto). */
TailMeasurement measureStationReference(int servers, double arrival_rate,
                                        const ServiceModel& service,
                                        double warmup, double window,
                                        Rng& rng,
                                        uint64_t event_budget = 0);

} // namespace sim
} // namespace clite

#endif // CLITE_SIM_QUEUEING_H

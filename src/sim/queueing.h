/**
 * @file
 * Multi-server queueing station on the discrete-event core.
 *
 * Models one latency-critical service the way the paper's testbed does:
 * a load generator (Poisson arrivals at the offered QPS) feeding c
 * worker cores; each request holds one core for a sampled service time.
 * Requests queue FIFO when all cores are busy. Response times
 * (queueing + service) are recorded so the harness can report the p95
 * tail latency over an observation window, exactly the quantity CLITE's
 * score function consumes.
 */

#ifndef CLITE_SIM_QUEUEING_H
#define CLITE_SIM_QUEUEING_H

#include <deque>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"

namespace clite {
namespace sim {

/**
 * A c-server FIFO queueing station driven by Poisson arrivals.
 */
class QueueingStation
{
  public:
    /** Sampler for one request's service time (seconds). */
    using ServiceSampler = std::function<double(Rng&)>;

    /**
     * @param simulator Event core; must outlive the station.
     * @param servers Number of servers c (>= 1).
     * @param arrival_rate Poisson arrival rate λ in requests/second
     *     (0 disables arrivals).
     * @param sampler Service-time sampler.
     * @param rng Randomness; must outlive the station.
     */
    QueueingStation(Simulator& simulator, int servers, double arrival_rate,
                    ServiceSampler sampler, Rng& rng);

    /** Begin generating arrivals (schedules the first arrival). */
    void start();

    /**
     * Drop response times recorded so far — used to discard warm-up
     * transients before the measured observation window.
     */
    void resetMeasurements();

    /** Response times (seconds) completed since the last reset. */
    const std::vector<double>& responseTimes() const { return response_; }

    /** Requests completed since the last reset. */
    size_t completedCount() const { return response_.size(); }

    /** Requests currently waiting (excludes in-service). */
    size_t queuedCount() const { return waiting_.size(); }

    /** Servers currently busy. */
    int busyServers() const { return busy_; }

  private:
    /** Handle one arrival: enter service or queue. */
    void onArrival();

    /** Start service for the request that arrived at @p arrival_time. */
    void beginService(SimTime arrival_time);

    /** A server finished the request that arrived at @p arrival_time. */
    void onDeparture(SimTime arrival_time);

    Simulator& sim_;
    int servers_;
    double arrival_rate_;
    ServiceSampler sampler_;
    Rng& rng_;

    int busy_ = 0;
    std::deque<SimTime> waiting_; // arrival times of queued requests
    std::vector<double> response_;
};

/** Result of a windowed tail-latency measurement. */
struct TailMeasurement
{
    double p50 = 0.0;      ///< Median response time (seconds).
    double p95 = 0.0;      ///< 95th-percentile response time (seconds).
    double p99 = 0.0;      ///< 99th-percentile response time (seconds).
    double mean = 0.0;     ///< Mean response time (seconds).
    size_t completed = 0;  ///< Requests completed in the window.
    double throughput = 0.0; ///< Completions per second in the window.
};

/**
 * Convenience driver: simulate an M/G/c station with log-normal service
 * times for @p warmup + @p window seconds and summarize the measured
 * window (the paper's two-second observation period).
 *
 * @param servers Number of servers c.
 * @param arrival_rate Offered load λ (requests/second).
 * @param mean_service Mean service time (seconds).
 * @param service_sigma Service distribution selector: > 0 gives
 *     log-normal service with that sigma, 0 deterministic service,
 *     < 0 exponential service (the M/M/c case).
 * @param warmup Transient to discard (seconds).
 * @param window Measured window (seconds).
 * @param rng Randomness.
 */
TailMeasurement measureStation(int servers, double arrival_rate,
                               double mean_service, double service_sigma,
                               double warmup, double window, Rng& rng);

} // namespace sim
} // namespace clite

#endif // CLITE_SIM_QUEUEING_H

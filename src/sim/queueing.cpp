#include "sim/queueing.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <utility>

#include "common/error.h"
#include <limits>

#include "stats/distributions.h"
#include "stats/summary.h"

namespace clite {
namespace sim {

QueueingStation::QueueingStation(Simulator& simulator, int servers,
                                 double arrival_rate, ServiceSampler sampler,
                                 Rng& rng)
    : sim_(simulator),
      servers_(servers),
      arrival_rate_(arrival_rate),
      sampler_(std::move(sampler)),
      rng_(rng)
{
    CLITE_CHECK(servers_ >= 1, "station needs >= 1 server, got " << servers_);
    CLITE_CHECK(arrival_rate_ >= 0.0, "arrival rate must be >= 0");
    CLITE_CHECK(sampler_ != nullptr, "station needs a service sampler");
}

void
QueueingStation::start()
{
    if (arrival_rate_ <= 0.0)
        return;
    sim_.schedule(rng_.exponential(arrival_rate_), [this] { onArrival(); });
}

void
QueueingStation::resetMeasurements()
{
    response_.clear();
}

void
QueueingStation::onArrival()
{
    // Schedule the next arrival first (renewal process).
    sim_.schedule(rng_.exponential(arrival_rate_), [this] { onArrival(); });

    SimTime arrival = sim_.now();
    if (busy_ < servers_)
        beginService(arrival);
    else
        waiting_.push_back(arrival);
}

void
QueueingStation::beginService(SimTime arrival_time)
{
    ++busy_;
    double service = sampler_(rng_);
    CLITE_ASSERT(service >= 0.0, "negative service time sampled");
    sim_.schedule(service,
                  [this, arrival_time] { onDeparture(arrival_time); });
}

void
QueueingStation::onDeparture(SimTime arrival_time)
{
    --busy_;
    response_.push_back(sim_.now() - arrival_time);
    if (!waiting_.empty()) {
        SimTime next = waiting_.front();
        waiting_.pop_front();
        beginService(next);
    }
}

namespace {

/**
 * The order statistic sorted(v)[k], by selection instead of a full
 * sort. @p frontier is the number of leading positions already fixed
 * at their sorted values by earlier calls; ranks must be requested in
 * non-decreasing order so each nth_element runs on the tail partition
 * the previous one left behind (any rank below the frontier was itself
 * requested before, so v[k] already holds the exact order statistic).
 */
double
orderStat(std::vector<double>& v, size_t k, size_t& frontier)
{
    if (k >= frontier) {
        std::nth_element(v.begin() + ptrdiff_t(frontier),
                         v.begin() + ptrdiff_t(k), v.end());
        frontier = k + 1;
    }
    return v[k];
}

/**
 * stats::percentileSorted(sorted(v), q) without sorting v: the order
 * statistics it reads are selected exactly (nth_element places the
 * same element a sort would) and the interpolation arithmetic below is
 * the same expression, so the value is bit-identical. Quantiles must
 * be requested in ascending order (see orderStat).
 */
double
selectPercentile(std::vector<double>& v, double q, size_t& frontier)
{
    const size_t n = v.size();
    double pos = q * double(n - 1);
    size_t lo = size_t(pos);
    size_t hi = std::min(lo + 1, n - 1);
    double frac = pos - double(lo);
    double vlo = orderStat(v, lo, frontier);
    double vhi = orderStat(v, hi, frontier);
    return vlo * (1.0 - frac) + vhi * frac;
}

/**
 * Window summary shared by both measureStation implementations: mean
 * through RunningStats in recording order, percentiles through rank
 * selection on one scratch copy — bit-identical to three separate
 * stats::percentile calls (selection places the exact elements a full
 * sort would at the ranks the interpolation reads; pinned against
 * stats::percentile by tests/sim/queueing_fast_test.cpp).
 */
TailMeasurement
summarizeWindow(const std::vector<double>& rt, double window,
                std::vector<double>& sort_buf)
{
    TailMeasurement out;
    out.completed = rt.size();
    out.throughput = double(rt.size()) / window;
    if (!rt.empty()) {
        // Four-way unrolled summation for the mean: the field is
        // diagnostic (nothing downstream consumes it bit-for-bit), and
        // independent accumulators break the serial dependency chain a
        // streaming update would force through every sample.
        const size_t n = rt.size();
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        size_t i = 0;
        for (; i + 4 <= n; i += 4) {
            s0 += rt[i];
            s1 += rt[i + 1];
            s2 += rt[i + 2];
            s3 += rt[i + 3];
        }
        for (; i < n; ++i)
            s0 += rt[i];
        out.mean = ((s0 + s1) + (s2 + s3)) / double(n);
        sort_buf.assign(rt.begin(), rt.end());
        size_t frontier = 0;
        out.p50 = selectPercentile(sort_buf, 0.50, frontier);
        out.p95 = selectPercentile(sort_buf, 0.95, frontier);
        out.p99 = selectPercentile(sort_buf, 0.99, frontier);
    }
    return out;
}

/** An in-service request: departure event plus its arrival stamp. */
struct Departure
{
    SimTime time;
    uint64_t seq;
    SimTime arrival;
};

/** Event order of the generic simulator: (time, seq) ascending. */
inline bool
departsBefore(const Departure& a, const Departure& b)
{
    if (a.time != b.time)
        return a.time < b.time;
    return a.seq < b.seq;
}

/**
 * Per-thread buffers of the fast path, reused across calls: a
 * QueueingSimModel window in steady state touches only this warm
 * storage.
 */
struct StationScratch
{
    std::vector<Departure> in_service; ///< unsorted, size <= c
    size_t min_idx = 0;                ///< index of the next departure
    std::vector<SimTime> waiting;      ///< FIFO ring (head index below)
    size_t waiting_head = 0;
    std::vector<double> response;
    std::vector<double> sort_buf;
};

thread_local StationScratch t_scratch;

/** Head-of-queue sentinel when no departure is pending: any finite
    arrival time sorts before it, so the loop needs no empty check. */
constexpr double kNoDeparture = std::numeric_limits<double>::infinity();

/**
 * The in-service set is an unsorted array with a tracked minimum: at
 * <= c entries a push costs one comparison and a pop one linear
 * rescan, beating a binary heap's sift moves at station sizes. The
 * minimum's (time, seq) is mirrored into caller-held locals so the
 * hot loop compares against registers, not memory. The (time, seq)
 * minimum is unique (seq never repeats), so any structure that pops
 * the exact minimum replays the generic simulator's event order — the
 * choice of structure cannot affect bit-identity.
 */
inline void
pushService(StationScratch& s, const Departure& d, double& head_time,
            uint64_t& head_seq)
{
    if (d.time < head_time || (d.time == head_time && d.seq < head_seq)) {
        s.min_idx = s.in_service.size();
        head_time = d.time;
        head_seq = d.seq;
    }
    s.in_service.push_back(d);
}

/** Remove the tracked minimum and rescan for the next one. */
inline void
popService(StationScratch& s, double& head_time, uint64_t& head_seq)
{
    s.in_service[s.min_idx] = s.in_service.back();
    s.in_service.pop_back();
    if (s.in_service.empty()) {
        s.min_idx = 0;
        head_time = kNoDeparture;
        return;
    }
    size_t best = 0;
    for (size_t i = 1; i < s.in_service.size(); ++i)
        if (departsBefore(s.in_service[i], s.in_service[best]))
            best = i;
    s.min_idx = best;
    head_time = s.in_service[best].time;
    head_seq = s.in_service[best].seq;
}

/**
 * Service samplers the event loop is specialized on (one instantiation
 * per distribution hoists the per-draw dispatch and the constant parts
 * of each draw out of the loop).
 *
 * LogNormalService inlines Rng::logNormalMean with mu precomputed:
 * logNormalMean(mean, sigma) computes mu = log(mean) - sigma^2/2 from
 * the same operands on every call and returns exp(normal(mu, sigma))
 * = exp(mu + sigma * normal()), so the hoisted form draws the same
 * stream and returns the same bits. ExponentialService hoists the
 * identical-every-call 1/mean rate the same way.
 */
struct LogNormalService
{
    double mu;
    double sigma;
    double operator()(Rng& rng) const
    {
        return std::exp(mu + sigma * rng.normal());
    }
};

struct ExponentialService
{
    double rate;
    double operator()(Rng& rng) const { return rng.exponential(rate); }
};

struct FixedService
{
    double service;
    double operator()(Rng&) const { return service; }
};

/**
 * Bounded-Pareto inverse-CDF sampler with the constant parts hoisted:
 * x = L * (1 - u * (1 - (L/H)^alpha))^(-1/alpha), one uniform draw per
 * request. ratio_term caches 1 - (L/H)^alpha (computed as
 * 1 - ratio^-alpha) and neg_inv_alpha caches -1/alpha; the reference
 * path's lambda evaluates the identical expression from the identical
 * hoisted operands, so the two paths stay bit-identical.
 */
struct BoundedParetoService
{
    double lower;
    double ratio_term;
    double neg_inv_alpha;
    double operator()(Rng& rng) const
    {
        return lower *
               std::pow(1.0 - rng.uniform() * ratio_term, neg_inv_alpha);
    }
};

/** Hoisted bounded-Pareto sampler parameters from a ServiceModel. */
BoundedParetoService
makeParetoSampler(const ServiceModel& service)
{
    CLITE_CHECK(service.pareto_alpha > 1.0,
                "bounded Pareto service needs alpha > 1, got "
                    << service.pareto_alpha);
    CLITE_CHECK(service.pareto_tail_ratio > 1.0,
                "bounded Pareto service needs tail ratio > 1, got "
                    << service.pareto_tail_ratio);
    const double lower = stats::boundedParetoLowerForMean(
        service.mean_service, service.pareto_alpha,
        service.pareto_tail_ratio);
    const double ratio_term =
        1.0 - std::pow(service.pareto_tail_ratio, -service.pareto_alpha);
    return BoundedParetoService{lower, ratio_term,
                                -1.0 / service.pareto_alpha};
}

/**
 * The specialized M/G/c event loop. Exactly one arrival event is ever
 * pending (the renewal process schedules its successor first), so the
 * generic event queue collapses to one (time, seq) pair plus the <= c
 * entry in-service set. Sequence numbers are assigned in the same
 * order the generic path calls schedule(), and the next event is
 * chosen by the same (time, seq) order, so the RNG draw order — and
 * therefore every response time — is bit-identical to
 * measureStationReference.
 */
template <typename Sampler>
TailMeasurement
runStationLoop(int servers, double arrival_rate, double warmup, double span,
               Sampler sample, Rng& rng)
{
    StationScratch& scratch = t_scratch;
    const double end = warmup + span;
    uint64_t next_seq = 0;
    double next_arrival = rng.exponential(arrival_rate);
    uint64_t arrival_seq = next_seq++;
    double head_time = kNoDeparture;
    uint64_t head_seq = 0;
    int busy = 0;
    size_t queued = 0;

    for (;;) {
        const bool arrival_first =
            next_arrival < head_time ||
            (next_arrival == head_time && arrival_seq < head_seq);
        if (arrival_first) {
            const double now = next_arrival;
            if (now > end)
                break;
            // Renewal: draw the next arrival before anything else.
            next_arrival = now + rng.exponential(arrival_rate);
            arrival_seq = next_seq++;
            if (busy < servers) {
                ++busy;
                double service = sample(rng);
                CLITE_ASSERT(service >= 0.0,
                             "negative service time sampled");
                pushService(scratch,
                            Departure{now + service, next_seq++, now},
                            head_time, head_seq);
            } else {
                scratch.waiting.push_back(now);
                ++queued;
            }
        } else {
            // The mirrored head (time, seq) is the pending minimum, so
            // only the arrival stamp needs a memory load.
            const double now = head_time;
            if (now > end)
                break;
            const double dep_arrival =
                scratch.in_service[scratch.min_idx].arrival;
            popService(scratch, head_time, head_seq);
            --busy;
            // The reference clears warm-up responses at t == warmup,
            // so only strictly later departures are measured.
            if (now > warmup)
                scratch.response.push_back(now - dep_arrival);
            if (queued > 0) {
                --queued;
                const double arrived =
                    scratch.waiting[scratch.waiting_head++];
                if (scratch.waiting_head == scratch.waiting.size()) {
                    scratch.waiting.clear();
                    scratch.waiting_head = 0;
                }
                ++busy;
                double service = sample(rng);
                CLITE_ASSERT(service >= 0.0,
                             "negative service time sampled");
                pushService(scratch,
                            Departure{now + service, next_seq++, arrived},
                            head_time, head_seq);
            }
        }
    }
    return summarizeWindow(scratch.response, span, scratch.sort_buf);
}

} // namespace

double
effectiveWindow(double window, double arrival_rate, uint64_t event_budget)
{
    if (event_budget == 0 || arrival_rate <= 0.0)
        return window;
    uint64_t budget = std::max(event_budget, kMinEventBudget);
    return std::min(window, double(budget) / arrival_rate);
}

TailMeasurement
measureStation(int servers, double arrival_rate, double mean_service,
               double service_sigma, double warmup, double window, Rng& rng,
               uint64_t event_budget)
{
    CLITE_CHECK(servers >= 1, "station needs >= 1 server, got " << servers);
    CLITE_CHECK(arrival_rate >= 0.0, "arrival rate must be >= 0");
    CLITE_CHECK(mean_service > 0.0, "mean service time must be > 0");
    CLITE_CHECK(window > 0.0, "measurement window must be > 0");

    const double span = effectiveWindow(window, arrival_rate, event_budget);
    StationScratch& scratch = t_scratch;
    scratch.in_service.clear();
    scratch.min_idx = 0;
    scratch.waiting.clear();
    scratch.waiting_head = 0;
    scratch.response.clear();

    if (arrival_rate <= 0.0)
        return summarizeWindow(scratch.response, span, scratch.sort_buf);

    if (service_sigma > 0.0) {
        // Hoisted logNormalMean(mean, sigma): see LogNormalService.
        const double mu = std::log(mean_service) -
                          0.5 * service_sigma * service_sigma;
        return runStationLoop(servers, arrival_rate, warmup, span,
                              LogNormalService{mu, service_sigma}, rng);
    }
    if (service_sigma < 0.0)
        return runStationLoop(servers, arrival_rate, warmup, span,
                              ExponentialService{1.0 / mean_service}, rng);
    return runStationLoop(servers, arrival_rate, warmup, span,
                          FixedService{mean_service}, rng);
}

TailMeasurement
measureStation(int servers, double arrival_rate, const ServiceModel& service,
               double warmup, double window, Rng& rng, uint64_t event_budget)
{
    switch (service.kind) {
    case ServiceModel::Kind::LogNormal:
        CLITE_CHECK(service.sigma > 0.0,
                    "log-normal service needs sigma > 0, got "
                        << service.sigma);
        return measureStation(servers, arrival_rate, service.mean_service,
                              service.sigma, warmup, window, rng,
                              event_budget);
    case ServiceModel::Kind::Exponential:
        return measureStation(servers, arrival_rate, service.mean_service,
                              -1.0, warmup, window, rng, event_budget);
    case ServiceModel::Kind::Fixed:
        return measureStation(servers, arrival_rate, service.mean_service,
                              0.0, warmup, window, rng, event_budget);
    case ServiceModel::Kind::BoundedPareto:
        break;
    }

    CLITE_CHECK(servers >= 1, "station needs >= 1 server, got " << servers);
    CLITE_CHECK(arrival_rate >= 0.0, "arrival rate must be >= 0");
    CLITE_CHECK(service.mean_service > 0.0,
                "mean service time must be > 0");
    CLITE_CHECK(window > 0.0, "measurement window must be > 0");

    const double span = effectiveWindow(window, arrival_rate, event_budget);
    StationScratch& scratch = t_scratch;
    scratch.in_service.clear();
    scratch.min_idx = 0;
    scratch.waiting.clear();
    scratch.waiting_head = 0;
    scratch.response.clear();

    if (arrival_rate <= 0.0)
        return summarizeWindow(scratch.response, span, scratch.sort_buf);

    return runStationLoop(servers, arrival_rate, warmup, span,
                          makeParetoSampler(service), rng);
}

void
prewarmMeasurementScratch(int max_servers, size_t expected_requests)
{
    StationScratch& scratch = t_scratch;
    if (max_servers > 0 &&
        scratch.in_service.capacity() < size_t(max_servers))
        scratch.in_service.reserve(size_t(max_servers));
    if (expected_requests > 0) {
        if (scratch.response.capacity() < expected_requests)
            scratch.response.reserve(expected_requests);
        if (scratch.sort_buf.capacity() < expected_requests)
            scratch.sort_buf.reserve(expected_requests);
        // The FIFO ring holds the backlog, a fraction of the
        // completions even near saturation; a quarter is generous.
        const size_t backlog = expected_requests / 4 + 64;
        if (scratch.waiting.capacity() < backlog)
            scratch.waiting.reserve(backlog);
    }
}

TailMeasurement
measureStationReference(int servers, double arrival_rate, double mean_service,
                        double service_sigma, double warmup, double window,
                        Rng& rng, uint64_t event_budget)
{
    CLITE_CHECK(mean_service > 0.0, "mean service time must be > 0");
    CLITE_CHECK(window > 0.0, "measurement window must be > 0");

    const double span = effectiveWindow(window, arrival_rate, event_budget);
    // Pooled-simulator reuse: clear() resets to a fresh clock but keeps
    // the heap and callback-slab capacity, so repeated measurements on
    // one thread stop re-growing the event storage from zero.
    thread_local Simulator simulator;
    simulator.clear();
    simulator.reserve(size_t(servers) + 2);
    QueueingStation::ServiceSampler sampler;
    if (service_sigma > 0.0) {
        sampler = [mean_service, service_sigma](Rng& r) {
            return r.logNormalMean(mean_service, service_sigma);
        };
    } else if (service_sigma < 0.0) {
        // Exponential service: the M/M/c case of the analytic model.
        sampler = [mean_service](Rng& r) {
            return r.exponential(1.0 / mean_service);
        };
    } else {
        sampler = [mean_service](Rng&) { return mean_service; };
    }

    QueueingStation station(simulator, servers, arrival_rate, sampler, rng);
    station.start();
    simulator.runUntil(warmup);
    station.resetMeasurements();
    simulator.runUntil(warmup + span);

    std::vector<double> sort_buf;
    return summarizeWindow(station.responseTimes(), span, sort_buf);
}

TailMeasurement
measureStationReference(int servers, double arrival_rate,
                        const ServiceModel& service, double warmup,
                        double window, Rng& rng, uint64_t event_budget)
{
    if (service.kind != ServiceModel::Kind::BoundedPareto) {
        double sigma = 0.0;
        if (service.kind == ServiceModel::Kind::LogNormal) {
            CLITE_CHECK(service.sigma > 0.0,
                        "log-normal service needs sigma > 0, got "
                            << service.sigma);
            sigma = service.sigma;
        } else if (service.kind == ServiceModel::Kind::Exponential) {
            sigma = -1.0;
        }
        return measureStationReference(servers, arrival_rate,
                                       service.mean_service, sigma, warmup,
                                       window, rng, event_budget);
    }

    CLITE_CHECK(service.mean_service > 0.0,
                "mean service time must be > 0");
    CLITE_CHECK(window > 0.0, "measurement window must be > 0");

    const double span = effectiveWindow(window, arrival_rate, event_budget);
    thread_local Simulator simulator;
    simulator.clear();
    simulator.reserve(size_t(servers) + 2);
    // The same hoisted operands and expression as BoundedParetoService,
    // so the reference stream is bit-identical to the fast path.
    const BoundedParetoService pareto = makeParetoSampler(service);
    QueueingStation::ServiceSampler sampler = [pareto](Rng& r) {
        return pareto(r);
    };

    QueueingStation station(simulator, servers, arrival_rate, sampler, rng);
    station.start();
    simulator.runUntil(warmup);
    station.resetMeasurements();
    simulator.runUntil(warmup + span);

    std::vector<double> sort_buf;
    return summarizeWindow(station.responseTimes(), span, sort_buf);
}

} // namespace sim
} // namespace clite

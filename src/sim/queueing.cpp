#include "sim/queueing.h"

#include <utility>

#include "common/error.h"
#include "stats/summary.h"

namespace clite {
namespace sim {

QueueingStation::QueueingStation(Simulator& simulator, int servers,
                                 double arrival_rate, ServiceSampler sampler,
                                 Rng& rng)
    : sim_(simulator),
      servers_(servers),
      arrival_rate_(arrival_rate),
      sampler_(std::move(sampler)),
      rng_(rng)
{
    CLITE_CHECK(servers_ >= 1, "station needs >= 1 server, got " << servers_);
    CLITE_CHECK(arrival_rate_ >= 0.0, "arrival rate must be >= 0");
    CLITE_CHECK(sampler_ != nullptr, "station needs a service sampler");
}

void
QueueingStation::start()
{
    if (arrival_rate_ <= 0.0)
        return;
    sim_.schedule(rng_.exponential(arrival_rate_), [this] { onArrival(); });
}

void
QueueingStation::resetMeasurements()
{
    response_.clear();
}

void
QueueingStation::onArrival()
{
    // Schedule the next arrival first (renewal process).
    sim_.schedule(rng_.exponential(arrival_rate_), [this] { onArrival(); });

    SimTime arrival = sim_.now();
    if (busy_ < servers_)
        beginService(arrival);
    else
        waiting_.push_back(arrival);
}

void
QueueingStation::beginService(SimTime arrival_time)
{
    ++busy_;
    double service = sampler_(rng_);
    CLITE_ASSERT(service >= 0.0, "negative service time sampled");
    sim_.schedule(service,
                  [this, arrival_time] { onDeparture(arrival_time); });
}

void
QueueingStation::onDeparture(SimTime arrival_time)
{
    --busy_;
    response_.push_back(sim_.now() - arrival_time);
    if (!waiting_.empty()) {
        SimTime next = waiting_.front();
        waiting_.pop_front();
        beginService(next);
    }
}

TailMeasurement
measureStation(int servers, double arrival_rate, double mean_service,
               double service_sigma, double warmup, double window, Rng& rng)
{
    CLITE_CHECK(mean_service > 0.0, "mean service time must be > 0");
    CLITE_CHECK(window > 0.0, "measurement window must be > 0");

    Simulator simulator;
    QueueingStation::ServiceSampler sampler;
    if (service_sigma > 0.0) {
        sampler = [mean_service, service_sigma](Rng& r) {
            return r.logNormalMean(mean_service, service_sigma);
        };
    } else if (service_sigma < 0.0) {
        // Exponential service: the M/M/c case of the analytic model.
        sampler = [mean_service](Rng& r) {
            return r.exponential(1.0 / mean_service);
        };
    } else {
        sampler = [mean_service](Rng&) { return mean_service; };
    }

    QueueingStation station(simulator, servers, arrival_rate, sampler, rng);
    station.start();
    simulator.runUntil(warmup);
    station.resetMeasurements();
    simulator.runUntil(warmup + window);

    TailMeasurement out;
    const auto& rt = station.responseTimes();
    out.completed = rt.size();
    out.throughput = double(rt.size()) / window;
    if (!rt.empty()) {
        stats::RunningStats rs;
        for (double t : rt)
            rs.add(t);
        out.mean = rs.mean();
        out.p50 = stats::percentile(rt, 0.50);
        out.p95 = stats::percentile(rt, 0.95);
        out.p99 = stats::percentile(rt, 0.99);
    }
    return out;
}

} // namespace sim
} // namespace clite

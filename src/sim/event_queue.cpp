#include "sim/event_queue.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/error.h"

namespace clite {
namespace sim {

void
Simulator::schedule(SimTime delay, Callback fn)
{
    CLITE_CHECK(delay >= 0.0, "cannot schedule into the past (delay "
                                  << delay << ")");
    scheduleAt(now_ + delay, std::move(fn));
}

void
Simulator::scheduleAt(SimTime when, Callback fn)
{
    CLITE_CHECK(when >= now_, "cannot schedule at " << when
                                  << ", clock is already at " << now_);
    queue_.push(Event{when, next_seq_++, std::move(fn)});
}

SimTime
Simulator::runUntil(SimTime until)
{
    while (!queue_.empty() && queue_.top().time <= until) {
        // Copy out before pop: the callback may schedule new events.
        Event ev = queue_.top();
        queue_.pop();
        now_ = ev.time;
        ++processed_;
        ev.fn();
    }
    if (std::isfinite(until))
        now_ = std::max(now_, until);
    return now_;
}

SimTime
Simulator::runToCompletion()
{
    return runUntil(std::numeric_limits<SimTime>::infinity());
}

void
Simulator::clearPending()
{
    while (!queue_.empty())
        queue_.pop();
}

} // namespace sim
} // namespace clite

#include "sim/event_queue.h"

#include <cmath>
#include <limits>
#include <utility>

#include "common/error.h"

namespace clite {
namespace sim {

void
Simulator::schedule(SimTime delay, Callback fn)
{
    CLITE_CHECK(delay >= 0.0, "cannot schedule into the past (delay "
                                  << delay << ")");
    scheduleAt(now_ + delay, std::move(fn));
}

void
Simulator::scheduleAt(SimTime when, Callback fn)
{
    CLITE_CHECK(when >= now_, "cannot schedule at " << when
                                  << ", clock is already at " << now_);
    uint32_t slot;
    if (!free_slots_.empty()) {
        slot = free_slots_.back();
        free_slots_.pop_back();
        slots_[slot] = std::move(fn);
    } else {
        slot = uint32_t(slots_.size());
        slots_.push_back(std::move(fn));
    }
    heap_.push_back(HeapEntry{when, next_seq_++, slot});
    siftUp(heap_.size() - 1);
}

void
Simulator::siftUp(size_t pos)
{
    HeapEntry e = heap_[pos];
    while (pos > 0) {
        size_t parent = (pos - 1) / 2;
        if (!before(e, heap_[parent]))
            break;
        heap_[pos] = heap_[parent];
        pos = parent;
    }
    heap_[pos] = e;
}

void
Simulator::siftDown(size_t pos)
{
    const size_t n = heap_.size();
    HeapEntry e = heap_[pos];
    for (;;) {
        size_t child = 2 * pos + 1;
        if (child >= n)
            break;
        if (child + 1 < n && before(heap_[child + 1], heap_[child]))
            ++child;
        if (!before(heap_[child], e))
            break;
        heap_[pos] = heap_[child];
        pos = child;
    }
    heap_[pos] = e;
}

SimTime
Simulator::runUntil(SimTime until)
{
    while (!heap_.empty() && heap_[0].time <= until) {
        const HeapEntry top = heap_[0];
        // Pop: move the last entry to the root and sift it down.
        heap_[0] = heap_.back();
        heap_.pop_back();
        if (!heap_.empty())
            siftDown(0);
        // Move the callback out of its slot and recycle the slot
        // before invoking, so a callback that schedules new events
        // (the common case) reuses warm storage immediately.
        Callback fn = std::move(slots_[top.slot]);
        slots_[top.slot] = nullptr;
        free_slots_.push_back(top.slot);
        now_ = top.time;
        ++processed_;
        fn();
    }
    if (std::isfinite(until))
        now_ = std::max(now_, until);
    return now_;
}

SimTime
Simulator::runToCompletion()
{
    return runUntil(std::numeric_limits<SimTime>::infinity());
}

void
Simulator::clearPending()
{
    for (const HeapEntry& e : heap_) {
        slots_[e.slot] = nullptr;
        free_slots_.push_back(e.slot);
    }
    heap_.clear();
}

void
Simulator::clear()
{
    clearPending();
    now_ = 0.0;
    next_seq_ = 0;
    processed_ = 0;
}

void
Simulator::reserve(size_t events)
{
    heap_.reserve(events);
    free_slots_.reserve(events);
    if (slots_.size() < events) {
        // Materialize the slab up front (empty std::functions) so the
        // free list can hand out warm slots without growth.
        size_t old = slots_.size();
        slots_.resize(events);
        for (size_t s = events; s-- > old;)
            free_slots_.push_back(uint32_t(s));
    }
}

} // namespace sim
} // namespace clite

#include "bo/bayes_opt.h"

#include <algorithm>

#include "common/error.h"
#include "stats/sampling.h"

namespace clite {
namespace bo {

BayesOpt::BayesOpt(linalg::Vector lo, linalg::Vector hi,
                   std::unique_ptr<Acquisition> acquisition,
                   BayesOptOptions options)
    : lo_(std::move(lo)),
      hi_(std::move(hi)),
      acquisition_(std::move(acquisition)),
      options_(options)
{
    CLITE_CHECK(!lo_.empty(), "BayesOpt needs at least one dimension");
    CLITE_CHECK(lo_.size() == hi_.size(), "bound dimension mismatch");
    for (size_t d = 0; d < lo_.size(); ++d)
        CLITE_CHECK(lo_[d] < hi_[d], "bounds inverted in dimension " << d);
    CLITE_CHECK(acquisition_ != nullptr, "BayesOpt needs an acquisition");
    CLITE_CHECK(options_.initial_samples >= 2,
                "need at least 2 initial samples");
    CLITE_CHECK(options_.candidates >= 1,
                "need at least 1 acquisition candidate");
}

BayesOptResult
BayesOpt::maximize(const Objective& f, Rng& rng) const
{
    const size_t dims = lo_.size();
    BayesOptResult result;

    const size_t capacity =
        size_t(options_.initial_samples) + size_t(options_.max_iterations);
    std::vector<linalg::Vector> xs;
    std::vector<double> ys;
    xs.reserve(capacity);
    ys.reserve(capacity);
    result.history.reserve(capacity);

    // Running incumbent: maintained as samples arrive instead of
    // rescanning ys every iteration (and once more at the end).
    size_t best_idx = 0;
    double best_y = 0.0;
    auto record = [&](linalg::Vector x, double y) {
        result.history.push_back({x, y});
        xs.push_back(std::move(x));
        ys.push_back(y);
        if (ys.size() == 1 || y > best_y) {
            best_y = y;
            best_idx = ys.size() - 1;
        }
    };

    // Seed via Latin hypercube (Algorithm 1's S_init).
    auto unit = stats::latinHypercube(size_t(options_.initial_samples),
                                      dims, rng);
    for (const auto& u : unit) {
        linalg::Vector x(dims);
        for (size_t d = 0; d < dims; ++d)
            x[d] = lo_[d] + u[d] * (hi_[d] - lo_[d]);
        double y = f(x);
        record(std::move(x), y);
    }

    gp::GaussianProcess surrogate(
        std::make_unique<gp::Matern52Kernel>(dims), 1e-4);

    // Candidate and acquisition buffers reused across iterations.
    std::vector<linalg::Vector> cands(size_t(options_.candidates),
                                      linalg::Vector(dims));
    std::vector<double> acq(size_t(options_.candidates));

    for (int iter = 0; iter < options_.max_iterations; ++iter) {
        result.iterations = iter + 1;

        // Step 3: update the surrogate model — full fit once, then
        // O(n²) Cholesky rank-appends for each new observation.
        if (iter == 0)
            surrogate.fit(xs, ys);
        else
            surrogate.addSample(xs.back(), ys.back());
        if (options_.fit_hyperparameters &&
            iter % std::max(1, options_.hyper_fit_every) == 0) {
            gp::GpFitOptions fo;
            fo.restarts = 1;
            fo.max_iters = 40;
            surrogate.optimizeHyperparameters(rng, fo);
        }

        const double incumbent = best_y;

        // Steps 4-5: compute the acquisition, pick the next sample.
        // Candidates are drawn serially (so the RNG stream is
        // identical to a serial run), then scored through the batched
        // engine — one GP posterior per candidate *block*, fanned out
        // block-per-task on the pool (or inline when the round is too
        // small to amortize dispatch; see bo::scoreCandidates). The
        // argmax scan keeps the serial first-wins tie-break, so
        // best_x / best_y are bit-identical to --threads=1.
        for (auto& cand : cands)
            for (size_t d = 0; d < dims; ++d)
                cand[d] = rng.uniform(lo_[d], hi_[d]);
        scoreCandidates(*acquisition_, surrogate, cands, incumbent,
                        acq.data());
        size_t best_cand = 0;
        for (size_t c = 1; c < cands.size(); ++c)
            if (acq[c] > acq[best_cand])
                best_cand = c;

        // Step 8: termination condition on the expected improvement.
        if (acq[best_cand] < options_.ei_termination) {
            result.terminated_early = true;
            break;
        }

        // Steps 6-7: run the system, observe, extend the sample set.
        double y = f(cands[best_cand]);
        record(cands[best_cand], y);
    }

    // Step 9: output the best configuration (tracked running best).
    result.best_x = xs[best_idx];
    result.best_y = best_y;
    return result;
}

} // namespace bo
} // namespace clite

#include "bo/bayes_opt.h"

#include <algorithm>

#include "common/error.h"
#include "stats/sampling.h"

namespace clite {
namespace bo {

BayesOpt::BayesOpt(linalg::Vector lo, linalg::Vector hi,
                   std::unique_ptr<Acquisition> acquisition,
                   BayesOptOptions options)
    : lo_(std::move(lo)),
      hi_(std::move(hi)),
      acquisition_(std::move(acquisition)),
      options_(options)
{
    CLITE_CHECK(!lo_.empty(), "BayesOpt needs at least one dimension");
    CLITE_CHECK(lo_.size() == hi_.size(), "bound dimension mismatch");
    for (size_t d = 0; d < lo_.size(); ++d)
        CLITE_CHECK(lo_[d] < hi_[d], "bounds inverted in dimension " << d);
    CLITE_CHECK(acquisition_ != nullptr, "BayesOpt needs an acquisition");
    CLITE_CHECK(options_.initial_samples >= 2,
                "need at least 2 initial samples");
}

BayesOptResult
BayesOpt::maximize(const Objective& f, Rng& rng) const
{
    const size_t dims = lo_.size();
    BayesOptResult result;

    // Seed via Latin hypercube (Algorithm 1's S_init).
    auto unit = stats::latinHypercube(size_t(options_.initial_samples),
                                      dims, rng);
    std::vector<linalg::Vector> xs;
    std::vector<double> ys;
    for (const auto& u : unit) {
        linalg::Vector x(dims);
        for (size_t d = 0; d < dims; ++d)
            x[d] = lo_[d] + u[d] * (hi_[d] - lo_[d]);
        double y = f(x);
        result.history.push_back({x, y});
        xs.push_back(std::move(x));
        ys.push_back(y);
    }

    gp::GaussianProcess surrogate(
        std::make_unique<gp::Matern52Kernel>(dims), 1e-4);

    for (int iter = 0; iter < options_.max_iterations; ++iter) {
        result.iterations = iter + 1;

        // Step 3: update the surrogate model.
        surrogate.fit(xs, ys);
        if (options_.fit_hyperparameters &&
            iter % std::max(1, options_.hyper_fit_every) == 0) {
            gp::GpFitOptions fo;
            fo.restarts = 1;
            fo.max_iters = 40;
            surrogate.optimizeHyperparameters(rng, fo);
        }

        double incumbent = *std::max_element(ys.begin(), ys.end());

        // Steps 4-5: compute the acquisition, pick the next sample.
        linalg::Vector best_cand;
        double best_acq = -1.0;
        for (int c = 0; c < options_.candidates; ++c) {
            linalg::Vector cand(dims);
            for (size_t d = 0; d < dims; ++d)
                cand[d] = rng.uniform(lo_[d], hi_[d]);
            double a = acquisition_->evaluate(surrogate, cand, incumbent);
            if (a > best_acq) {
                best_acq = a;
                best_cand = std::move(cand);
            }
        }

        // Step 8: termination condition on the expected improvement.
        if (best_acq < options_.ei_termination) {
            result.terminated_early = true;
            break;
        }

        // Steps 6-7: run the system, observe, extend the sample set.
        double y = f(best_cand);
        result.history.push_back({best_cand, y});
        xs.push_back(std::move(best_cand));
        ys.push_back(y);
    }

    // Step 9: output the best configuration.
    size_t best = 0;
    for (size_t i = 1; i < ys.size(); ++i)
        if (ys[i] > ys[best])
            best = i;
    result.best_x = xs[best];
    result.best_y = ys[best];
    return result;
}

} // namespace bo
} // namespace clite

/**
 * @file
 * Acquisition functions for Bayesian optimization.
 *
 * CLITE uses Expected Improvement augmented with an exploration factor
 * ζ (paper Eq. 2, following Lizotte): with z = (μ(x) − x̂ − ζ)/σ(x),
 *
 *   EI(x) = (μ(x) − x̂ − ζ)Φ(z) + σ(x)φ(z)   if σ(x) > 0
 *         = 0                                 if σ(x) = 0
 *
 * where x̂ is the incumbent best objective value. Probability of
 * Improvement and Upper Confidence Bound are provided for the
 * acquisition ablation (the paper discusses both as rejected
 * alternatives: PI under-explores, entropy/UCB variants cost too much
 * for CLITE's online setting).
 */

#ifndef CLITE_BO_ACQUISITION_H
#define CLITE_BO_ACQUISITION_H

#include <memory>
#include <string>

#include "gp/gaussian_process.h"

namespace clite {
namespace bo {

/**
 * Abstract acquisition function over a fitted GP surrogate. All
 * acquisitions are formulated for MAXIMIZATION of the objective.
 */
class Acquisition
{
  public:
    virtual ~Acquisition() = default;

    /**
     * Acquisition value at @p x.
     *
     * @param gp Fitted surrogate.
     * @param x Query point.
     * @param incumbent Best observed objective value x̂ so far.
     */
    virtual double evaluate(const gp::GaussianProcess& gp,
                            const linalg::Vector& x,
                            double incumbent) const = 0;

    /**
     * Batched acquisition: out[i] = evaluate(gp, xs[begin+i],
     * incumbent) for i < count, bit-identically (the batch-vs-scalar
     * tests pin it). The base implementation loops the scalar
     * evaluate(); EI/PI/UCB override it to run one
     * GaussianProcess::predictBatch per block — amortizing the
     * triangular solves into a single blocked TRSM — and then apply
     * the closed form per candidate in the scalar operation order.
     */
    virtual void evaluateBatch(const gp::GaussianProcess& gp,
                               const std::vector<linalg::Vector>& xs,
                               size_t begin, size_t count,
                               double incumbent, double* out) const;

    /** Name for configuration/reporting. */
    virtual std::string name() const = 0;
};

/**
 * Candidates per batched-engine block. 64 keeps the working panel of a
 * 256-sample GP (~128 KiB) L2-resident while still amortizing the
 * factor traffic, and gives the pool enough blocks to balance at the
 * usual 512-candidate rounds.
 */
constexpr size_t kAcquisitionBlock = 64;

/**
 * Score every candidate of a round: out[i] = acq.evaluate(gp, xs[i],
 * incumbent), computed block-wise through evaluateBatch and fanned out
 * over the global pool one *block* (not one candidate) per task.
 *
 * Granularity fallback: when the round is too small to amortize pool
 * dispatch — fewer candidates than 2× the pool's thread count, or a
 * single-threaded pool — the blocks run inline on the caller, which
 * benchmarked strictly faster at the n=16/64 round sizes where
 * per-candidate fan-out used to be a wash. Results are bit-identical
 * on every path (each block writes only its own output slots).
 *
 * @param out Result array of xs.size() entries.
 * @param block Block size (candidates per task); 0 means
 *     kAcquisitionBlock.
 */
void scoreCandidates(const Acquisition& acq, const gp::GaussianProcess& gp,
                     const std::vector<linalg::Vector>& xs,
                     double incumbent, double* out, size_t block = 0);

/**
 * Expected Improvement with exploration factor ζ (paper Eq. 2).
 */
class ExpectedImprovement : public Acquisition
{
  public:
    /**
     * @param zeta Exploration bonus; the paper reports ζ ≈ 0.01 works
     *     well in practice.
     */
    explicit ExpectedImprovement(double zeta = 0.01);

    double evaluate(const gp::GaussianProcess& gp, const linalg::Vector& x,
                    double incumbent) const override;
    void evaluateBatch(const gp::GaussianProcess& gp,
                       const std::vector<linalg::Vector>& xs, size_t begin,
                       size_t count, double incumbent,
                       double* out) const override;
    std::string name() const override { return "ei"; }

    /** The exploration factor ζ. */
    double zeta() const { return zeta_; }

  private:
    double zeta_;
};

/**
 * Probability of Improvement: Φ((μ − x̂ − ζ)/σ).
 */
class ProbabilityOfImprovement : public Acquisition
{
  public:
    explicit ProbabilityOfImprovement(double zeta = 0.01);

    double evaluate(const gp::GaussianProcess& gp, const linalg::Vector& x,
                    double incumbent) const override;
    void evaluateBatch(const gp::GaussianProcess& gp,
                       const std::vector<linalg::Vector>& xs, size_t begin,
                       size_t count, double incumbent,
                       double* out) const override;
    std::string name() const override { return "pi"; }

  private:
    double zeta_;
};

/**
 * GP Upper Confidence Bound: μ + κσ.
 */
class UpperConfidenceBound : public Acquisition
{
  public:
    explicit UpperConfidenceBound(double kappa = 2.0);

    double evaluate(const gp::GaussianProcess& gp, const linalg::Vector& x,
                    double incumbent) const override;
    void evaluateBatch(const gp::GaussianProcess& gp,
                       const std::vector<linalg::Vector>& xs, size_t begin,
                       size_t count, double incumbent,
                       double* out) const override;
    std::string name() const override { return "ucb"; }

  private:
    double kappa_;
};

/**
 * Factory by name ("ei" | "pi" | "ucb").
 * @throws clite::Error for an unknown name.
 */
std::unique_ptr<Acquisition> makeAcquisition(const std::string& name,
                                             double param = 0.01);

} // namespace bo
} // namespace clite

#endif // CLITE_BO_ACQUISITION_H

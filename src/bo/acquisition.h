/**
 * @file
 * Acquisition functions for Bayesian optimization.
 *
 * CLITE uses Expected Improvement augmented with an exploration factor
 * ζ (paper Eq. 2, following Lizotte): with z = (μ(x) − x̂ − ζ)/σ(x),
 *
 *   EI(x) = (μ(x) − x̂ − ζ)Φ(z) + σ(x)φ(z)   if σ(x) > 0
 *         = 0                                 if σ(x) = 0
 *
 * where x̂ is the incumbent best objective value. Probability of
 * Improvement and Upper Confidence Bound are provided for the
 * acquisition ablation (the paper discusses both as rejected
 * alternatives: PI under-explores, entropy/UCB variants cost too much
 * for CLITE's online setting).
 */

#ifndef CLITE_BO_ACQUISITION_H
#define CLITE_BO_ACQUISITION_H

#include <memory>
#include <string>

#include "gp/gaussian_process.h"

namespace clite {
namespace bo {

/**
 * Abstract acquisition function over a fitted GP surrogate. All
 * acquisitions are formulated for MAXIMIZATION of the objective.
 */
class Acquisition
{
  public:
    virtual ~Acquisition() = default;

    /**
     * Acquisition value at @p x.
     *
     * @param gp Fitted surrogate.
     * @param x Query point.
     * @param incumbent Best observed objective value x̂ so far.
     */
    virtual double evaluate(const gp::GaussianProcess& gp,
                            const linalg::Vector& x,
                            double incumbent) const = 0;

    /** Name for configuration/reporting. */
    virtual std::string name() const = 0;
};

/**
 * Expected Improvement with exploration factor ζ (paper Eq. 2).
 */
class ExpectedImprovement : public Acquisition
{
  public:
    /**
     * @param zeta Exploration bonus; the paper reports ζ ≈ 0.01 works
     *     well in practice.
     */
    explicit ExpectedImprovement(double zeta = 0.01);

    double evaluate(const gp::GaussianProcess& gp, const linalg::Vector& x,
                    double incumbent) const override;
    std::string name() const override { return "ei"; }

    /** The exploration factor ζ. */
    double zeta() const { return zeta_; }

  private:
    double zeta_;
};

/**
 * Probability of Improvement: Φ((μ − x̂ − ζ)/σ).
 */
class ProbabilityOfImprovement : public Acquisition
{
  public:
    explicit ProbabilityOfImprovement(double zeta = 0.01);

    double evaluate(const gp::GaussianProcess& gp, const linalg::Vector& x,
                    double incumbent) const override;
    std::string name() const override { return "pi"; }

  private:
    double zeta_;
};

/**
 * GP Upper Confidence Bound: μ + κσ.
 */
class UpperConfidenceBound : public Acquisition
{
  public:
    explicit UpperConfidenceBound(double kappa = 2.0);

    double evaluate(const gp::GaussianProcess& gp, const linalg::Vector& x,
                    double incumbent) const override;
    std::string name() const override { return "ucb"; }

  private:
    double kappa_;
};

/**
 * Factory by name ("ei" | "pi" | "ucb").
 * @throws clite::Error for an unknown name.
 */
std::unique_ptr<Acquisition> makeAcquisition(const std::string& name,
                                             double param = 0.01);

} // namespace bo
} // namespace clite

#endif // CLITE_BO_ACQUISITION_H

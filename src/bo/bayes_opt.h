/**
 * @file
 * Generic Bayesian-optimization driver (paper Algorithm 1).
 *
 * This is the textbook loop the CLITE controller specializes: seed with
 * initial samples, then repeatedly (1) update the surrogate, (2) compute
 * the acquisition, (3) pick the next sample, (4) evaluate the objective,
 * (5) check termination. The driver optimizes over a continuous box;
 * callers needing CLITE's partition constraints use core/ which shares
 * the same surrogate/acquisition types but optimizes over the
 * simplex-box lattice. The generic driver powers the Fig. 3/4
 * illustration bench and the substrate tests.
 *
 * Hot-path structure: the surrogate is fit once and then extended per
 * iteration with an O(n²) Cholesky rank-append (GaussianProcess::
 * addSample) rather than refit from scratch, and the per-iteration
 * acquisition candidates are scored through the batched posterior
 * engine (bo::scoreCandidates): one GaussianProcess::predictBatch per
 * candidate block, parallelized block-per-task on the global pool
 * with an inline fallback for rounds too small to amortize dispatch.
 * Candidates are drawn serially from the caller's RNG and the argmax
 * keeps the serial tie-break, so the result is bit-identical to a
 * single-threaded run (see common/thread_pool.h).
 */

#ifndef CLITE_BO_BAYES_OPT_H
#define CLITE_BO_BAYES_OPT_H

#include <functional>
#include <memory>
#include <vector>

#include "bo/acquisition.h"
#include "common/rng.h"
#include "gp/gaussian_process.h"

namespace clite {
namespace bo {

/** One (input, objective) observation. */
struct Observation
{
    linalg::Vector x;   ///< Sampled input.
    double y = 0.0;     ///< Observed objective value.
};

/** Options for the generic BO driver. */
struct BayesOptOptions
{
    int initial_samples = 4;   ///< Latin-hypercube seed size.
    int max_iterations = 30;   ///< Hard cap on BO iterations (N_iter).
    int candidates = 512;      ///< Acquisition candidates per iteration.
    double ei_termination = 0.0; ///< Stop when max acquisition < this.
    bool fit_hyperparameters = true; ///< Re-fit GP params each round.
    int hyper_fit_every = 4;   ///< Refit cadence (iterations).
};

/** Result of a BO run. */
struct BayesOptResult
{
    linalg::Vector best_x;      ///< Best input found.
    double best_y = 0.0;        ///< Best observed objective.
    std::vector<Observation> history; ///< Every evaluated sample in order.
    int iterations = 0;         ///< BO iterations (excluding seeding).
    bool terminated_early = false; ///< True if the EI threshold fired.
};

/**
 * Generic BO maximizer over a box [lo, hi]^d with random-candidate
 * acquisition optimization.
 */
class BayesOpt
{
  public:
    using Objective = std::function<double(const linalg::Vector&)>;

    /**
     * @param lo Per-dimension lower bounds.
     * @param hi Per-dimension upper bounds (element-wise > lo).
     * @param acquisition Acquisition function (owned).
     * @param options Driver knobs.
     */
    BayesOpt(linalg::Vector lo, linalg::Vector hi,
             std::unique_ptr<Acquisition> acquisition,
             BayesOptOptions options = {});

    /**
     * Run the loop of Algorithm 1 against @p f.
     *
     * @param f Objective to maximize.
     * @param rng Randomness for seeding and candidates.
     */
    BayesOptResult maximize(const Objective& f, Rng& rng) const;

  private:
    linalg::Vector lo_, hi_;
    std::unique_ptr<Acquisition> acquisition_;
    BayesOptOptions options_;
};

} // namespace bo
} // namespace clite

#endif // CLITE_BO_BAYES_OPT_H

/**
 * @file
 * Cost-aware, budget-bounded search policy (Lynceus-style).
 *
 * Every CLITE sample costs a real observation window (~2 s) at
 * degraded service, yet the EI-threshold controller treats samples as
 * free. BudgetPolicy makes the tuning *budget* first-class, in units
 * of window-seconds:
 *
 *  - **Budget accounting.** Each full observation window charges
 *    `window_seconds`; an early-aborted window charges exactly its
 *    elapsed fraction. Charges are clamped so the charged total can
 *    NEVER exceed the configured budget (property-tested invariant),
 *    and windows whose jobs violated QoS accumulate separately as
 *    QoS-violating sample-seconds — the production metric the budget
 *    sweep (bench/budget_sweep) gates on.
 *
 *  - **Cost-normalized acquisition.** Expected *useful* improvement
 *    per expected window cost. A candidate the surrogate predicts to
 *    be QoS-violating is cheap (its window aborts at
 *    `abort_check_fraction`) but nearly worthless: an aborted sample
 *    can never win the search, so the expected improvement of
 *    launching the probe is EI(x)·(1 − p_violate(x)). Dividing plain
 *    EI by the cost alone would do the opposite — actively steer
 *    probes INTO the violating region because they are cheap. The
 *    acquisition objective is therefore
 *        acq(x) = EI(x)·(1 − p_violate(x)) / E[cost(x)],
 *    E[cost] = W·(f·p_violate + (1 − p_violate)), with p_violate the
 *    surrogate's posterior mass below the mode-1/mode-2 score
 *    boundary (feasibility-weighted EI in the constrained-BO sense).
 *
 *  - **Lookahead cutoff.** Long-sighted "can any remaining probe
 *    still beat the incumbent?" test: with n = ⌊remaining/W⌋ full
 *    windows left, the optimistic total improvement n·maxEI must
 *    clear `lookahead_min_gain`, else the search terminates — the
 *    residual budget cannot pay for a probe that matters.
 *
 *  - **Mid-window early-abort predicate.** The platform's counters
 *    expose partial tail latency mid-window; a window whose partial
 *    p95 already exceeds target·abort_margin is clearly infeasible
 *    and is cancelled, charged only its elapsed cost. The predicate
 *    is deliberately conservative: a partial p95 may overshoot the
 *    final full-window value by at most kMaxPartialOvershoot (the
 *    deterministic-replay bound the fuzz suite pins), so any
 *    abort_margin ≥ that bound can never cancel a window that would
 *    have ended feasible. Non-finite or nonsensical counters (NaN,
 *    zero load, negative targets) never trigger an abort.
 *
 * The policy is INERT unless the budget is finite and positive:
 * budget_seconds ≤ 0 or ∞ reproduces the EI-threshold stopping
 * decisions bit-for-bit (property-tested across seeds), which keeps
 * every unbudgeted golden byte-identical.
 */

#ifndef CLITE_BO_BUDGET_H
#define CLITE_BO_BUDGET_H

#include <vector>

namespace clite {
namespace bo {

/**
 * Upper bound on how far a partial-window p95 may overshoot the
 * final full-window p95 (multiplicative). Partial percentiles are
 * computed from fewer queries, so they are noisier; the platform's
 * partial-window model inflates measurement noise by 1/√fraction,
 * which at the default abort_check_fraction and noise levels stays
 * within this factor with overwhelming margin. The fuzz suite feeds
 * partial values anywhere inside this bound for feasible windows and
 * asserts the predicate never aborts them.
 */
constexpr double kMaxPartialOvershoot = 1.3;

/** Budget-bounded search knobs. */
struct BudgetOptions
{
    /**
     * Total search budget in window-seconds. ≤ 0 (the default) or
     * non-finite means unlimited: the policy is inert and the search
     * reproduces the EI-threshold baseline bit-for-bit.
     */
    double budget_seconds = 0.0;
    /** Cost of one full observation window (paper: ~2 s). */
    double window_seconds = 2.0;
    /** Divide the acquisition by the expected window cost. */
    bool cost_normalized = true;
    /** Enable the lookahead cutoff. */
    bool lookahead = true;
    /** Enable mid-window early-abort of clearly infeasible windows. */
    bool early_abort = true;
    /**
     * Fraction of the window at which partial counters are read for
     * the abort decision (and the cost an aborted window is charged).
     */
    double abort_check_fraction = 0.25;
    /**
     * A partial p95 must exceed target·abort_margin to abort. Must be
     * ≥ kMaxPartialOvershoot for the never-abort-feasible guarantee.
     */
    double abort_margin = 1.5;
    /**
     * Minimum elapsed fraction before the predicate may fire: too few
     * queries make the partial percentile meaningless.
     */
    double abort_min_fraction = 0.05;
    /**
     * Lookahead floor: terminate when (remaining windows)·maxEI drops
     * below this optimistic total improvement (score-scale units).
     */
    double lookahead_min_gain = 1e-3;

    /** True when the budget is finite and positive (policy active). */
    bool enabled() const;
};

/**
 * One job's mid-window partial tail-latency reading, decoupled from
 * the platform's JobObservation so the predicate (and its fuzz
 * harness) stay platform-independent.
 */
struct PartialTailSample
{
    double p95_ms = 0.0;     ///< Partial-window p95 (LC).
    double target_ms = 0.0;  ///< QoS target.
    bool is_lc = true;       ///< BG samples never trigger aborts.
    bool valid = true;       ///< False: counters lost, distrust.
    double fraction = 0.0;   ///< Elapsed fraction of the window.
};

/**
 * Budget accounting + stopping/normalization decisions for one
 * search. Not thread-safe; one policy per search, used from the
 * (serial) controller loop.
 */
class BudgetPolicy
{
  public:
    explicit BudgetPolicy(BudgetOptions options = {});

    /** The options in effect. */
    const BudgetOptions& options() const { return options_; }

    /** True when the budget is finite and positive. */
    bool active() const { return options_.enabled(); }

    /** The configured budget (+∞ when inactive). */
    double budget() const;

    /** Window-seconds charged so far (monotone, ≤ budget()). */
    double charged() const { return charged_; }

    /** Remaining budget (+∞ when inactive). */
    double remaining() const;

    /** Window-seconds charged while some LC job violated QoS. */
    double violatingSeconds() const { return violating_; }

    /** Full windows aborted mid-measurement so far. */
    int abortedWindows() const { return aborted_windows_; }

    /**
     * Can one more FULL window be paid for? Always true when
     * inactive. The controller must consult this before starting a
     * window; together with clamped charging it guarantees charged()
     * never exceeds budget().
     */
    bool canAffordWindow() const;

    /**
     * Charge one full observation window (clamped to the remaining
     * budget). @param qos_met The window's QoS outcome: violating
     * windows accumulate into violatingSeconds().
     */
    void chargeWindow(bool qos_met);

    /**
     * Charge an early-aborted window exactly its elapsed cost,
     * fraction·window_seconds (clamped to the remaining budget; the
     * fraction itself is clamped to [0, 1]). Aborted windows are by
     * definition QoS-violating.
     */
    void chargeAborted(double fraction);

    /**
     * Expected cost of one probe window given the surrogate's
     * violation probability at the candidate: with early-abort on,
     * W·(f·p + (1 − p)); plain W otherwise. @p p_violate is clamped
     * to [0, 1]; non-finite reads as 0 (no discount).
     */
    double expectedWindowCost(double p_violate) const;

    /**
     * Cost-normalize an acquisition value: value / expected cost in
     * window-seconds. Identity when the policy is inactive or
     * cost_normalized is off (the inert-at-∞ guarantee).
     */
    double normalize(double acquisition_value,
                     double expected_cost_seconds) const;

    /**
     * The full cost-aware acquisition transform (header formula):
     * feasibility-weighted, cost-normalized EI,
     * ei·(1 − p_violate) / expectedWindowCost(p_violate). The weight
     * is what keeps the normalization from chasing cheap-but-doomed
     * probes: an aborted window can never improve the incumbent.
     * Identity when the policy is inactive or cost_normalized is off;
     * non-finite @p p_violate reads as 0 (plain EI / full window).
     */
    double costAwareAcquisition(double ei, double p_violate) const;

    /**
     * Lookahead cutoff: true when no remaining probe can still
     * improve the incumbent within the residual budget — either no
     * full window is affordable, or ⌊remaining/W⌋·max_ei falls below
     * lookahead_min_gain. Always false when inactive or lookahead is
     * off.
     */
    bool lookaheadExhausted(double max_ei) const;

    /**
     * The mid-window early-abort predicate: true when some valid LC
     * sample's partial p95 already exceeds target·abort_margin at a
     * trustworthy elapsed fraction. Pure and total: any stream —
     * NaN/∞ counters, zero loads, empty input — returns a decision
     * without crashing, and non-finite values never justify an abort.
     */
    static bool shouldAbort(const std::vector<PartialTailSample>& partial,
                            const BudgetOptions& options);

  private:
    /** Add @p seconds, clamped so charged_ never exceeds the budget. */
    void charge(double seconds, bool violating);

    BudgetOptions options_;
    double charged_ = 0.0;
    double violating_ = 0.0;
    int aborted_windows_ = 0;
};

} // namespace bo
} // namespace clite

#endif // CLITE_BO_BUDGET_H

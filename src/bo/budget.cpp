#include "bo/budget.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace clite {
namespace bo {

bool
BudgetOptions::enabled() const
{
    return std::isfinite(budget_seconds) && budget_seconds > 0.0;
}

BudgetPolicy::BudgetPolicy(BudgetOptions options) : options_(options)
{
    CLITE_CHECK(options_.window_seconds > 0.0 &&
                    std::isfinite(options_.window_seconds),
                "window_seconds must be finite and > 0");
    CLITE_CHECK(options_.abort_check_fraction > 0.0 &&
                    options_.abort_check_fraction < 1.0,
                "abort_check_fraction must be in (0,1)");
    CLITE_CHECK(options_.abort_margin >= kMaxPartialOvershoot,
                "abort_margin " << options_.abort_margin
                                << " below the partial-overshoot bound "
                                << kMaxPartialOvershoot
                                << " could cancel feasible windows");
    CLITE_CHECK(options_.abort_min_fraction >= 0.0,
                "abort_min_fraction must be >= 0");
    CLITE_CHECK(options_.lookahead_min_gain >= 0.0,
                "lookahead_min_gain must be >= 0");
}

double
BudgetPolicy::budget() const
{
    return active() ? options_.budget_seconds
                    : std::numeric_limits<double>::infinity();
}

double
BudgetPolicy::remaining() const
{
    if (!active())
        return std::numeric_limits<double>::infinity();
    return std::max(0.0, options_.budget_seconds - charged_);
}

bool
BudgetPolicy::canAffordWindow() const
{
    if (!active())
        return true;
    return remaining() >= options_.window_seconds;
}

void
BudgetPolicy::charge(double seconds, bool violating)
{
    if (!(seconds > 0.0)) // NaN or non-positive: nothing to charge
        return;
    if (active())
        seconds = std::min(seconds, remaining());
    charged_ += seconds;
    if (violating)
        violating_ += seconds;
}

void
BudgetPolicy::chargeWindow(bool qos_met)
{
    charge(options_.window_seconds, !qos_met);
}

void
BudgetPolicy::chargeAborted(double fraction)
{
    if (!std::isfinite(fraction))
        fraction = 0.0;
    fraction = std::clamp(fraction, 0.0, 1.0);
    ++aborted_windows_;
    charge(fraction * options_.window_seconds, /*violating=*/true);
}

double
BudgetPolicy::expectedWindowCost(double p_violate) const
{
    const double w = options_.window_seconds;
    if (!active() || !options_.early_abort)
        return w;
    if (!std::isfinite(p_violate))
        p_violate = 0.0;
    p_violate = std::clamp(p_violate, 0.0, 1.0);
    return w * (options_.abort_check_fraction * p_violate +
                (1.0 - p_violate));
}

double
BudgetPolicy::normalize(double acquisition_value,
                        double expected_cost_seconds) const
{
    if (!active() || !options_.cost_normalized)
        return acquisition_value;
    // Floor the divisor at the cheapest possible window (an aborted
    // one) so a degenerate cost estimate cannot blow the value up.
    const double floor_cost =
        options_.abort_check_fraction * options_.window_seconds;
    if (!std::isfinite(expected_cost_seconds) ||
        expected_cost_seconds < floor_cost)
        expected_cost_seconds = floor_cost;
    return acquisition_value / expected_cost_seconds;
}

double
BudgetPolicy::costAwareAcquisition(double ei, double p_violate) const
{
    if (!active() || !options_.cost_normalized)
        return ei;
    if (!std::isfinite(p_violate))
        p_violate = 0.0;
    p_violate = std::clamp(p_violate, 0.0, 1.0);
    return normalize(ei * (1.0 - p_violate),
                     expectedWindowCost(p_violate));
}

bool
BudgetPolicy::lookaheadExhausted(double max_ei) const
{
    if (!active() || !options_.lookahead)
        return false;
    // An improving probe is feasible and therefore runs (and pays
    // for) a full window: the residual budget buys at most n of them.
    const double n = std::floor(remaining() / options_.window_seconds);
    if (n <= 0.0)
        return true;
    if (!std::isfinite(max_ei))
        return false; // a broken EI estimate must not end the search
    return max_ei * n < options_.lookahead_min_gain;
}

bool
BudgetPolicy::shouldAbort(const std::vector<PartialTailSample>& partial,
                          const BudgetOptions& options)
{
    if (!options.early_abort)
        return false;
    for (const PartialTailSample& s : partial) {
        if (!s.is_lc || !s.valid)
            continue;
        // Every comparison is written so NaN fails it: a poisoned
        // counter can never justify cancelling a window.
        if (!std::isfinite(s.p95_ms) || s.p95_ms <= 0.0)
            continue;
        if (!std::isfinite(s.target_ms) || s.target_ms <= 0.0)
            continue;
        if (!std::isfinite(s.fraction) ||
            s.fraction < options.abort_min_fraction)
            continue;
        if (s.p95_ms > s.target_ms * options.abort_margin)
            return true;
    }
    return false;
}

} // namespace bo
} // namespace clite

#include "bo/acquisition.h"

#include <cmath>

#include "common/error.h"
#include "stats/distributions.h"

namespace clite {
namespace bo {

ExpectedImprovement::ExpectedImprovement(double zeta) : zeta_(zeta)
{
    CLITE_CHECK(zeta >= 0.0, "EI zeta must be >= 0, got " << zeta);
}

double
ExpectedImprovement::evaluate(const gp::GaussianProcess& gp,
                              const linalg::Vector& x,
                              double incumbent) const
{
    gp::Prediction p = gp.predict(x);
    double sigma = p.stddev();
    if (sigma <= 0.0)
        return 0.0; // Eq. 2: EI = 0 when sigma(x) = 0
    double improve = p.mean - incumbent - zeta_;
    double z = improve / sigma;
    return improve * stats::normalCdf(z) + sigma * stats::normalPdf(z);
}

ProbabilityOfImprovement::ProbabilityOfImprovement(double zeta)
    : zeta_(zeta)
{
    CLITE_CHECK(zeta >= 0.0, "PI zeta must be >= 0, got " << zeta);
}

double
ProbabilityOfImprovement::evaluate(const gp::GaussianProcess& gp,
                                   const linalg::Vector& x,
                                   double incumbent) const
{
    gp::Prediction p = gp.predict(x);
    double sigma = p.stddev();
    if (sigma <= 0.0)
        return p.mean > incumbent + zeta_ ? 1.0 : 0.0;
    return stats::normalCdf((p.mean - incumbent - zeta_) / sigma);
}

UpperConfidenceBound::UpperConfidenceBound(double kappa) : kappa_(kappa)
{
    CLITE_CHECK(kappa >= 0.0, "UCB kappa must be >= 0, got " << kappa);
}

double
UpperConfidenceBound::evaluate(const gp::GaussianProcess& gp,
                               const linalg::Vector& x,
                               double /* incumbent */) const
{
    gp::Prediction p = gp.predict(x);
    return p.mean + kappa_ * p.stddev();
}

std::unique_ptr<Acquisition>
makeAcquisition(const std::string& name, double param)
{
    if (name == "ei")
        return std::make_unique<ExpectedImprovement>(param);
    if (name == "pi")
        return std::make_unique<ProbabilityOfImprovement>(param);
    if (name == "ucb")
        return std::make_unique<UpperConfidenceBound>(
            param > 0.0 ? param : 2.0);
    CLITE_THROW("unknown acquisition name: " << name);
}

} // namespace bo
} // namespace clite

#include "bo/acquisition.h"

#include <algorithm>
#include <cmath>

#include "common/arena.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "stats/distributions.h"

namespace clite {
namespace bo {

void
Acquisition::evaluateBatch(const gp::GaussianProcess& gp,
                           const std::vector<linalg::Vector>& xs,
                           size_t begin, size_t count, double incumbent,
                           double* out) const
{
    // Generic fallback for acquisitions without a batched closed form.
    for (size_t i = 0; i < count; ++i)
        out[i] = evaluate(gp, xs[begin + i], incumbent);
}

ExpectedImprovement::ExpectedImprovement(double zeta) : zeta_(zeta)
{
    CLITE_CHECK(zeta >= 0.0, "EI zeta must be >= 0, got " << zeta);
}

double
ExpectedImprovement::evaluate(const gp::GaussianProcess& gp,
                              const linalg::Vector& x,
                              double incumbent) const
{
    gp::Prediction p = gp.predict(x);
    double sigma = p.stddev();
    if (sigma <= 0.0)
        return 0.0; // Eq. 2: EI = 0 when sigma(x) = 0
    double improve = p.mean - incumbent - zeta_;
    double z = improve / sigma;
    return improve * stats::normalCdf(z) + sigma * stats::normalPdf(z);
}

void
ExpectedImprovement::evaluateBatch(const gp::GaussianProcess& gp,
                                   const std::vector<linalg::Vector>& xs,
                                   size_t begin, size_t count,
                                   double incumbent, double* out) const
{
    ScratchArena& arena = ScratchArena::forCurrentThread();
    ScratchArena::Frame frame(arena);
    double* mean = arena.doubles(count);
    double* var = arena.doubles(count);
    gp.predictBatch(xs, begin, count, mean, var);
    for (size_t i = 0; i < count; ++i) {
        double sigma = std::sqrt(std::max(0.0, var[i]));
        if (sigma <= 0.0) {
            out[i] = 0.0;
            continue;
        }
        double improve = mean[i] - incumbent - zeta_;
        double z = improve / sigma;
        out[i] = improve * stats::normalCdf(z) +
                 sigma * stats::normalPdf(z);
    }
}

ProbabilityOfImprovement::ProbabilityOfImprovement(double zeta)
    : zeta_(zeta)
{
    CLITE_CHECK(zeta >= 0.0, "PI zeta must be >= 0, got " << zeta);
}

double
ProbabilityOfImprovement::evaluate(const gp::GaussianProcess& gp,
                                   const linalg::Vector& x,
                                   double incumbent) const
{
    gp::Prediction p = gp.predict(x);
    double sigma = p.stddev();
    if (sigma <= 0.0)
        return p.mean > incumbent + zeta_ ? 1.0 : 0.0;
    return stats::normalCdf((p.mean - incumbent - zeta_) / sigma);
}

void
ProbabilityOfImprovement::evaluateBatch(
    const gp::GaussianProcess& gp, const std::vector<linalg::Vector>& xs,
    size_t begin, size_t count, double incumbent, double* out) const
{
    ScratchArena& arena = ScratchArena::forCurrentThread();
    ScratchArena::Frame frame(arena);
    double* mean = arena.doubles(count);
    double* var = arena.doubles(count);
    gp.predictBatch(xs, begin, count, mean, var);
    for (size_t i = 0; i < count; ++i) {
        double sigma = std::sqrt(std::max(0.0, var[i]));
        if (sigma <= 0.0)
            out[i] = mean[i] > incumbent + zeta_ ? 1.0 : 0.0;
        else
            out[i] =
                stats::normalCdf((mean[i] - incumbent - zeta_) / sigma);
    }
}

UpperConfidenceBound::UpperConfidenceBound(double kappa) : kappa_(kappa)
{
    CLITE_CHECK(kappa >= 0.0, "UCB kappa must be >= 0, got " << kappa);
}

double
UpperConfidenceBound::evaluate(const gp::GaussianProcess& gp,
                               const linalg::Vector& x,
                               double /* incumbent */) const
{
    gp::Prediction p = gp.predict(x);
    return p.mean + kappa_ * p.stddev();
}

void
UpperConfidenceBound::evaluateBatch(const gp::GaussianProcess& gp,
                                    const std::vector<linalg::Vector>& xs,
                                    size_t begin, size_t count,
                                    double /* incumbent */,
                                    double* out) const
{
    ScratchArena& arena = ScratchArena::forCurrentThread();
    ScratchArena::Frame frame(arena);
    double* mean = arena.doubles(count);
    double* var = arena.doubles(count);
    gp.predictBatch(xs, begin, count, mean, var);
    for (size_t i = 0; i < count; ++i)
        out[i] = mean[i] + kappa_ * std::sqrt(std::max(0.0, var[i]));
}

void
scoreCandidates(const Acquisition& acq, const gp::GaussianProcess& gp,
                const std::vector<linalg::Vector>& xs, double incumbent,
                double* out, size_t block)
{
    const size_t n = xs.size();
    if (n == 0)
        return;
    if (block == 0)
        block = kAcquisitionBlock;
    const size_t nblocks = (n + block - 1) / block;
    ThreadPool& pool = globalPool();
    // Granularity fallback: dispatching to the pool only pays off with
    // enough candidates to keep every thread busy past the wake-up
    // cost; below that the round runs inline (same block order, same
    // results).
    const bool serial = pool.threadCount() <= 1 || nblocks < 2 ||
                        n < 2 * size_t(pool.threadCount());
    auto run_block = [&](size_t b) {
        const size_t begin = b * block;
        const size_t count = std::min(block, n - begin);
        acq.evaluateBatch(gp, xs, begin, count, incumbent, out + begin);
    };
    if (serial) {
        for (size_t b = 0; b < nblocks; ++b)
            run_block(b);
    } else {
        pool.parallelFor(nblocks, run_block);
    }
}

std::unique_ptr<Acquisition>
makeAcquisition(const std::string& name, double param)
{
    if (name == "ei")
        return std::make_unique<ExpectedImprovement>(param);
    if (name == "pi")
        return std::make_unique<ProbabilityOfImprovement>(param);
    if (name == "ucb")
        return std::make_unique<UpperConfidenceBound>(
            param > 0.0 ? param : 2.0);
    CLITE_THROW("unknown acquisition name: " << name);
}

} // namespace bo
} // namespace clite

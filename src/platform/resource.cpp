#include "platform/resource.h"

#include <limits>

#include "common/error.h"
#include "stats/sampling.h"

namespace clite {
namespace platform {

std::string
resourceName(Resource r)
{
    switch (r) {
      case Resource::Cores: return "cores";
      case Resource::LlcWays: return "llc_ways";
      case Resource::MemBandwidth: return "mem_bw";
      case Resource::MemCapacity: return "mem_cap";
      case Resource::DiskBandwidth: return "disk_bw";
      case Resource::NetBandwidth: return "net_bw";
    }
    return "?";
}

std::string
isolationTool(Resource r)
{
    switch (r) {
      case Resource::Cores: return "taskset";
      case Resource::LlcWays: return "Intel CAT";
      case Resource::MemBandwidth: return "Intel MBA";
      case Resource::MemCapacity: return "Linux memory cgroups";
      case Resource::DiskBandwidth: return "Linux blkio cgroups";
      case Resource::NetBandwidth: return "Linux qdisc";
    }
    return "?";
}

std::string
allocationMethod(Resource r)
{
    switch (r) {
      case Resource::Cores: return "Core Affinity";
      case Resource::LlcWays: return "Way Partitioning";
      case Resource::MemBandwidth: return "Bandwidth Limiting";
      case Resource::MemCapacity: return "Capacity Division";
      case Resource::DiskBandwidth: return "I/O Bandwidth Limiting";
      case Resource::NetBandwidth: return "Network B/w Limiting";
    }
    return "?";
}

ServerConfig::ServerConfig(std::vector<ResourceSpec> resources)
    : resources_(std::move(resources))
{
    CLITE_CHECK(!resources_.empty(), "server needs >= 1 resource");
    for (size_t i = 0; i < resources_.size(); ++i) {
        CLITE_CHECK(resources_[i].units >= 1,
                    "resource " << resourceName(resources_[i].kind)
                                << " needs >= 1 unit");
        for (size_t j = 0; j < i; ++j)
            CLITE_CHECK(resources_[j].kind != resources_[i].kind,
                        "duplicate resource "
                            << resourceName(resources_[i].kind));
    }
}

ServerConfig
ServerConfig::xeonSilver4114()
{
    // 10 physical cores at 1-core granularity; 11 LLC ways at 1-way
    // granularity (Intel CAT); memory bandwidth in 10 MBA-style 10%
    // steps of the 20 GB/s peak.
    std::vector<ResourceSpec> res = {
        {Resource::Cores, 10, 1.0, "core"},
        {Resource::LlcWays, 11, 1280.0, "KB"},
        {Resource::MemBandwidth, 10, 2000.0, "MB/s"},
    };
    return ServerConfig(std::move(res));
}

ServerConfig
ServerConfig::xeonSilver4114AllResources()
{
    std::vector<ResourceSpec> res = {
        {Resource::Cores, 10, 1.0, "core"},
        {Resource::LlcWays, 11, 1280.0, "KB"},
        {Resource::MemBandwidth, 10, 2000.0, "MB/s"},
        {Resource::MemCapacity, 10, 4.6, "GB"},
        {Resource::DiskBandwidth, 10, 50.0, "MB/s"},
        {Resource::NetBandwidth, 10, 125.0, "MB/s"},
    };
    return ServerConfig(std::move(res));
}

const ResourceSpec&
ServerConfig::resource(size_t r) const
{
    CLITE_CHECK(r < resources_.size(), "resource index " << r << " out of "
                                           << resources_.size());
    return resources_[r];
}

size_t
ServerConfig::indexOf(Resource kind) const
{
    for (size_t i = 0; i < resources_.size(); ++i)
        if (resources_[i].kind == kind)
            return i;
    CLITE_THROW("server does not expose resource " << resourceName(kind));
}

bool
ServerConfig::has(Resource kind) const
{
    for (const auto& r : resources_)
        if (r.kind == kind)
            return true;
    return false;
}

double
ServerConfig::physicalTotal(size_t r) const
{
    const ResourceSpec& spec = resource(r);
    return double(spec.units) * spec.unit_value;
}

uint64_t
ServerConfig::configurationCount(int njobs) const
{
    CLITE_CHECK(njobs >= 1, "configurationCount needs njobs >= 1");
    uint64_t total = 1;
    for (const auto& spec : resources_) {
        uint64_t per = stats::compositionCount(spec.units, njobs, 1);
        if (per == 0)
            return 0;
        if (total > std::numeric_limits<uint64_t>::max() / per)
            return std::numeric_limits<uint64_t>::max();
        total *= per;
    }
    return total;
}

} // namespace platform
} // namespace clite

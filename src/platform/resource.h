/**
 * @file
 * Shared-resource inventory of the simulated server.
 *
 * Mirrors Table 1 (shared resources, allocation methods, isolation
 * tools) and Table 2 (the Xeon Silver 4114 testbed) of the paper. Each
 * partitionable resource has an integral number of allocation units
 * (e.g. 11 LLC ways allocatable at single-way granularity, memory
 * bandwidth in 10% MBA steps); a configuration assigns every unit of
 * every resource to exactly one co-located job.
 */

#ifndef CLITE_PLATFORM_RESOURCE_H
#define CLITE_PLATFORM_RESOURCE_H

#include <cstdint>
#include <string>
#include <vector>

namespace clite {
namespace platform {

/** Kinds of partitionable shared resources (Table 1). */
enum class Resource {
    Cores,         ///< CPU cores (core affinity / taskset).
    LlcWays,       ///< Last-level-cache ways (Intel CAT).
    MemBandwidth,  ///< Memory bandwidth (Intel MBA).
    MemCapacity,   ///< Memory capacity (memory cgroups).
    DiskBandwidth, ///< Disk I/O bandwidth (blkio cgroups).
    NetBandwidth,  ///< Network bandwidth (qdisc).
};

/** Short lower-case name ("cores", "llc_ways", ...). */
std::string resourceName(Resource r);

/** The isolation tool the real testbed would use (Table 1). */
std::string isolationTool(Resource r);

/** The allocation method description (Table 1). */
std::string allocationMethod(Resource r);

/** One partitionable resource on the server. */
struct ResourceSpec
{
    Resource kind = Resource::Cores; ///< What resource this is.
    int units = 0;                   ///< Number of allocation units.
    double unit_value = 1.0;         ///< Physical value of one unit.
    std::string unit_label;          ///< e.g. "core", "way", "GB/s".
};

/**
 * Full server description (Table 2) plus the active partitionable
 * resource set. The default reproduces the paper's testbed: 10
 * physical cores, 11-way 14080 KB L3, and memory bandwidth in 10
 * MBA-style units; the extended config adds memory capacity, disk and
 * network bandwidth for the N-resource experiments.
 */
class ServerConfig
{
  public:
    /** The paper's testbed with the 3 primary resources. */
    static ServerConfig xeonSilver4114();

    /** Same server exposing all 6 Table-1 resources. */
    static ServerConfig xeonSilver4114AllResources();

    /**
     * A custom server.
     * @param resources Partitionable resources; each with units >= 1.
     */
    explicit ServerConfig(std::vector<ResourceSpec> resources);

    /** Number of partitionable resources. */
    size_t resourceCount() const { return resources_.size(); }

    /** Spec of resource @p r. */
    const ResourceSpec& resource(size_t r) const;

    /** All resource specs. */
    const std::vector<ResourceSpec>& resources() const { return resources_; }

    /**
     * Index of the resource of kind @p kind.
     * @throws clite::Error when the server does not expose it.
     */
    size_t indexOf(Resource kind) const;

    /** True when the server exposes resource @p kind. */
    bool has(Resource kind) const;

    /** Total physical value of resource @p r (units * unit_value). */
    double physicalTotal(size_t r) const;

    /**
     * Number of distinct partition configurations for @p njobs
     * co-located jobs (each job gets >= 1 unit of each resource) —
     * the paper's N_conf = ∏_r C(N_units(r) − 1, N_jobs − 1).
     * Saturates at UINT64_MAX.
     */
    uint64_t configurationCount(int njobs) const;

    // Table 2 descriptive fields (informational).
    std::string cpu_model = "Intel(R) Xeon(R) Silver 4114 (simulated)";
    int sockets = 1;                ///< Number of sockets.
    double frequency_ghz = 2.2;     ///< Processor speed.
    int physical_cores = 10;        ///< Physical core count.
    int logical_cores = 20;         ///< Logical (SMT) core count.
    double l3_cache_kb = 14080.0;   ///< Shared L3 size.
    int l3_ways = 11;               ///< L3 associativity.
    double memory_gb = 46.0;        ///< DRAM capacity.
    double peak_mem_bw_mbps = 20000.0; ///< Peak DRAM bandwidth (MB/s).
    double disk_bw_mbps = 500.0;    ///< SSD bandwidth (MB/s).
    double net_bw_mbps = 1250.0;    ///< NIC bandwidth (MB/s).
    std::string os = "Ubuntu 18.04.1 LTS (simulated)";

  private:
    std::vector<ResourceSpec> resources_;
};

} // namespace platform
} // namespace clite

#endif // CLITE_PLATFORM_RESOURCE_H

#include "platform/faults.h"

#include "common/error.h"
#include "common/rng.h"

namespace clite {
namespace platform {

const char*
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::MeasurementDropout:
        return "measurement-dropout";
      case FaultKind::FrozenCounters:
        return "frozen-counters";
      case FaultKind::LatencySpike:
        return "latency-spike";
      case FaultKind::ApplyFailure:
        return "apply-failure";
      case FaultKind::KnobLoss:
        return "knob-loss";
      case FaultKind::JobCrash:
        return "job-crash";
      case FaultKind::WorkerLoss:
        return "worker-loss";
      case FaultKind::TaskFailure:
        return "task-failure";
    }
    return "unknown";
}

bool
FaultPlan::any() const
{
    return dropout_prob > 0.0 || freeze_prob > 0.0 || spike_prob > 0.0 ||
           apply_fail_prob > 0.0 || crash_prob > 0.0 ||
           !knob_losses.empty() || !crashes.empty() ||
           worker_loss_prob > 0.0 || task_fail_prob > 0.0 ||
           !worker_deaths.empty() || !node_breaks.empty();
}

void
FaultPlan::validate() const
{
    auto check_prob = [](double p, const char* name) {
        CLITE_CHECK(p >= 0.0 && p <= 1.0,
                    name << " must be in [0,1], got " << p);
    };
    check_prob(dropout_prob, "dropout_prob");
    check_prob(freeze_prob, "freeze_prob");
    check_prob(spike_prob, "spike_prob");
    check_prob(apply_fail_prob, "apply_fail_prob");
    check_prob(crash_prob, "crash_prob");
    check_prob(worker_loss_prob, "worker_loss_prob");
    check_prob(task_fail_prob, "task_fail_prob");
    CLITE_CHECK(spike_factor >= 1.0,
                "spike_factor must be >= 1, got " << spike_factor);
    CLITE_CHECK(crash_down_windows >= 1,
                "crash_down_windows must be >= 1, got "
                    << crash_down_windows);
    for (const auto& c : crashes)
        CLITE_CHECK(c.down_windows >= 1,
                    "scripted crash down_windows must be >= 1, got "
                        << c.down_windows);
}

FaultInjector::FaultInjector(FaultPlan plan, uint64_t seed)
    : plan_(std::move(plan)), seed_(seed)
{
    plan_.validate();
}

double
FaultInjector::hash01(FaultKind kind, uint64_t a, uint64_t b) const
{
    // Counter-keyed hash: mix the seed, the kind tag and the event
    // coordinates through SplitMix64 so each decision is independent
    // of every other and of query order.
    SplitMix64 mix(seed_ ^ (uint64_t(kind) + 1) * 0x9E3779B97F4A7C15ull);
    uint64_t h = mix.next() ^ (a * 0xBF58476D1CE4E5B9ull);
    SplitMix64 mix2(h ^ (b * 0x94D049BB133111EBull));
    uint64_t v = mix2.next();
    return double(v >> 11) * 0x1.0p-53; // 53-bit mantissa in [0,1)
}

bool
FaultInjector::applyFails(uint64_t apply_index) const
{
    return plan_.apply_fail_prob > 0.0 &&
           hash01(FaultKind::ApplyFailure, apply_index, 0) <
               plan_.apply_fail_prob;
}

bool
FaultInjector::resourceDead(size_t r, uint64_t apply_index) const
{
    for (const auto& kl : plan_.knob_losses)
        if (kl.resource == r && apply_index >= kl.after_apply)
            return true;
    return false;
}

bool
FaultInjector::windowDropout(uint64_t window) const
{
    return plan_.dropout_prob > 0.0 &&
           hash01(FaultKind::MeasurementDropout, window, 0) <
               plan_.dropout_prob;
}

bool
FaultInjector::windowFrozen(uint64_t window) const
{
    return plan_.freeze_prob > 0.0 &&
           hash01(FaultKind::FrozenCounters, window, 0) < plan_.freeze_prob;
}

bool
FaultInjector::latencySpike(uint64_t window, size_t job) const
{
    return plan_.spike_prob > 0.0 &&
           hash01(FaultKind::LatencySpike, window, job + 1) <
               plan_.spike_prob;
}

bool
FaultInjector::jobDown(uint64_t window, size_t job) const
{
    for (const auto& c : plan_.crashes)
        if (c.job == job && window >= c.at_window &&
            window < c.at_window + uint64_t(c.down_windows))
            return true;
    if (plan_.crash_prob > 0.0) {
        // Down if a probabilistic crash started in any of the last
        // crash_down_windows windows (including this one).
        uint64_t span = uint64_t(plan_.crash_down_windows);
        uint64_t first = window >= span - 1 ? window - (span - 1) : 0;
        for (uint64_t w0 = first; w0 <= window; ++w0)
            if (hash01(FaultKind::JobCrash, w0, job + 1) <
                plan_.crash_prob)
                return true;
    }
    return false;
}

bool
FaultInjector::workerLost(uint64_t assignment, size_t worker) const
{
    if (workerDeathScripted(assignment, worker))
        return true;
    return plan_.worker_loss_prob > 0.0 &&
           hash01(FaultKind::WorkerLoss, assignment, worker + 1) <
               plan_.worker_loss_prob;
}

bool
FaultInjector::workerDeathScripted(uint64_t assignment, size_t worker) const
{
    for (const auto& d : plan_.worker_deaths)
        if (d.worker == worker && assignment >= d.at_assignment)
            return true;
    return false;
}

bool
FaultInjector::taskFails(size_t node, uint64_t epoch, int attempt) const
{
    for (const auto& b : plan_.node_breaks)
        if (b.node == node && epoch >= b.after_epoch)
            return true;
    // Keying by (epoch, node, attempt) lets a retry of the same
    // window succeed where the first attempt failed — transient node
    // trouble, the common case.
    return plan_.task_fail_prob > 0.0 &&
           hash01(FaultKind::TaskFailure,
                  epoch * 1000003ull + uint64_t(attempt),
                  node + 1) < plan_.task_fail_prob;
}

void
FaultInjector::record(FaultKind kind, uint64_t index, size_t subject)
{
    events_.push_back(FaultEvent{kind, index, subject});
}

uint64_t
FaultInjector::count(FaultKind kind) const
{
    uint64_t n = 0;
    for (const auto& e : events_)
        if (e.kind == kind)
            ++n;
    return n;
}

} // namespace platform
} // namespace clite

#include "platform/allocation.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "common/error.h"
#include "opt/simplex.h"

namespace clite {
namespace platform {

Allocation::Allocation(size_t njobs, const ServerConfig& config)
    : njobs_(njobs)
{
    CLITE_CHECK(njobs_ >= 1, "allocation needs >= 1 job");
    units_per_resource_.reserve(config.resourceCount());
    for (size_t r = 0; r < config.resourceCount(); ++r) {
        int units = config.resource(r).units;
        CLITE_CHECK(size_t(units) >= njobs_,
                    "resource " << resourceName(config.resource(r).kind)
                                << " has " << units << " units, cannot give "
                                << njobs_ << " jobs one each");
        units_per_resource_.push_back(units);
    }
    cells_.assign(njobs_ * units_per_resource_.size(), 1);
}

Allocation
Allocation::equalShare(size_t njobs, const ServerConfig& config)
{
    Allocation a(njobs, config);
    for (size_t r = 0; r < a.resources(); ++r) {
        int units = a.units_per_resource_[r];
        int base = units / int(njobs);
        int extra = units % int(njobs);
        for (size_t j = 0; j < njobs; ++j)
            a.set(j, r, base + (int(j) < extra ? 1 : 0));
    }
    a.validate();
    return a;
}

Allocation
Allocation::maxFor(size_t favoured, size_t njobs, const ServerConfig& config)
{
    CLITE_CHECK(favoured < njobs, "favoured job " << favoured << " out of "
                                      << njobs);
    Allocation a(njobs, config);
    for (size_t r = 0; r < a.resources(); ++r) {
        int units = a.units_per_resource_[r];
        for (size_t j = 0; j < njobs; ++j)
            a.set(j, r, j == favoured ? units - int(njobs) + 1 : 1);
    }
    a.validate();
    return a;
}

int
Allocation::get(size_t j, size_t r) const
{
    CLITE_CHECK(j < njobs_ && r < resources(),
                "allocation index (" << j << "," << r << ") out of "
                                     << njobs_ << "x" << resources());
    return cells_[j * resources() + r];
}

void
Allocation::set(size_t j, size_t r, int units)
{
    CLITE_CHECK(j < njobs_ && r < resources(),
                "allocation index (" << j << "," << r << ") out of "
                                     << njobs_ << "x" << resources());
    cells_[j * resources() + r] = units;
}

int
Allocation::resourceUnits(size_t r) const
{
    CLITE_CHECK(r < resources(), "resource index " << r << " out of "
                                     << resources());
    return units_per_resource_[r];
}

int
Allocation::columnSum(size_t r) const
{
    int sum = 0;
    for (size_t j = 0; j < njobs_; ++j)
        sum += get(j, r);
    return sum;
}

bool
Allocation::valid() const
{
    for (size_t r = 0; r < resources(); ++r) {
        if (columnSum(r) != units_per_resource_[r])
            return false;
        for (size_t j = 0; j < njobs_; ++j)
            if (get(j, r) < 1)
                return false;
    }
    return true;
}

void
Allocation::validate() const
{
    for (size_t r = 0; r < resources(); ++r) {
        CLITE_CHECK(columnSum(r) == units_per_resource_[r],
                    "resource " << r << " allocates " << columnSum(r)
                                << " of " << units_per_resource_[r]
                                << " units");
        for (size_t j = 0; j < njobs_; ++j)
            CLITE_CHECK(get(j, r) >= 1, "job " << j << " has "
                                               << get(j, r)
                                               << " units of resource "
                                               << r);
    }
}

bool
Allocation::transferUnit(size_t r, size_t from, size_t to)
{
    if (get(from, r) <= 1)
        return false;
    set(from, r, get(from, r) - 1);
    set(to, r, get(to, r) + 1);
    return true;
}

Allocation
Allocation::withJobAdded() const
{
    const size_t old_jobs = njobs_;
    const size_t new_jobs = old_jobs + 1;
    Allocation out = *this;
    out.njobs_ = new_jobs;
    out.cells_.resize(new_jobs * resources(), 0);

    for (size_t r = 0; r < resources(); ++r) {
        int units = units_per_resource_[r];
        CLITE_CHECK(size_t(units) >= new_jobs,
                    "resource " << r << " has " << units
                                << " units, cannot host " << new_jobs
                                << " jobs");
        // The newcomer's fair share, but never so much that a donor
        // would drop below 1 unit.
        int want = std::max(1, units / int(new_jobs));
        int have = 0;
        while (have < want) {
            size_t richest = 0;
            for (size_t j = 1; j < old_jobs; ++j)
                if (out.get(j, r) > out.get(richest, r))
                    richest = j;
            if (out.get(richest, r) <= 1)
                break;
            out.set(richest, r, out.get(richest, r) - 1);
            ++have;
        }
        CLITE_CHECK(have >= 1, "resource " << r
                                           << " cannot give the new job a "
                                              "unit");
        out.set(old_jobs, r, have);
    }
    out.validate();
    return out;
}

Allocation
Allocation::withJobRemoved(size_t j) const
{
    CLITE_CHECK(njobs_ >= 2, "cannot remove the only job");
    CLITE_CHECK(j < njobs_, "job " << j << " out of " << njobs_);
    const size_t new_jobs = njobs_ - 1;
    Allocation out = *this;
    out.njobs_ = new_jobs;
    out.cells_.clear();
    out.cells_.reserve(new_jobs * resources());
    for (size_t jj = 0; jj < njobs_; ++jj) {
        if (jj == j)
            continue;
        for (size_t r = 0; r < resources(); ++r)
            out.cells_.push_back(get(jj, r));
    }
    // Hand the departed job's units to the currently poorest survivors
    // (ties to the lowest index), keeping the shape balanced.
    for (size_t r = 0; r < resources(); ++r) {
        int freed = get(j, r);
        while (freed-- > 0) {
            size_t poorest = 0;
            for (size_t jj = 1; jj < new_jobs; ++jj)
                if (out.get(jj, r) < out.get(poorest, r))
                    poorest = jj;
            out.set(poorest, r, out.get(poorest, r) + 1);
        }
    }
    out.validate();
    return out;
}

std::vector<double>
Allocation::flattenNormalized() const
{
    std::vector<double> flat(flatSize());
    for (size_t j = 0; j < njobs_; ++j)
        for (size_t r = 0; r < resources(); ++r)
            flat[j * resources() + r] =
                double(get(j, r)) / double(units_per_resource_[r]);
    return flat;
}

Allocation
Allocation::fromFlatNormalized(const std::vector<double>& flat, size_t njobs,
                               const ServerConfig& config)
{
    Allocation a(njobs, config);
    CLITE_CHECK(flat.size() == a.flatSize(),
                "flat vector of length " << flat.size() << ", expected "
                                         << a.flatSize());
    const size_t nres = a.resources();
    for (size_t r = 0; r < nres; ++r) {
        int units = a.units_per_resource_[r];
        std::vector<double> col(njobs);
        std::vector<int> lo(njobs, 1);
        std::vector<int> hi(njobs, units - int(njobs) + 1);
        for (size_t j = 0; j < njobs; ++j)
            col[j] = flat[j * nres + r] * double(units);
        std::vector<int> rounded =
            opt::roundToIntegerComposition(col, units, lo, hi);
        for (size_t j = 0; j < njobs; ++j)
            a.set(j, r, rounded[j]);
    }
    a.validate();
    return a;
}

std::string
Allocation::key() const
{
    std::ostringstream oss;
    for (size_t j = 0; j < njobs_; ++j) {
        if (j)
            oss << '|';
        for (size_t r = 0; r < resources(); ++r) {
            if (r)
                oss << ',';
            oss << get(j, r);
        }
    }
    return oss.str();
}

bool
Allocation::operator==(const Allocation& other) const
{
    return njobs_ == other.njobs_ &&
           units_per_resource_ == other.units_per_resource_ &&
           cells_ == other.cells_;
}

} // namespace platform
} // namespace clite

#include "platform/server.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/log.h"

namespace clite {
namespace platform {

bool
JobObservation::qosMet() const
{
    if (!is_lc)
        return true;
    return p95_ms <= qos_target_ms;
}

double
JobObservation::perfNorm() const
{
    if (is_lc) {
        if (p95_ms <= 0.0)
            return 1.0;
        return std::min(1.0, std::max(1e-6, iso_p95_ms / p95_ms));
    }
    if (iso_throughput <= 0.0)
        return 1.0;
    return std::min(1.0, std::max(1e-6, throughput / iso_throughput));
}

double
JobObservation::qosRatio() const
{
    if (!is_lc || p95_ms <= 0.0)
        return 1.0;
    return qos_target_ms / p95_ms;
}

SimulatedServer::SimulatedServer(
    ServerConfig config, std::vector<workloads::JobSpec> jobs,
    std::unique_ptr<workloads::PerformanceModel> model, uint64_t seed,
    double noise_sigma)
    : config_(std::move(config)),
      jobs_(std::move(jobs)),
      model_(std::move(model)),
      noise_rng_(seed),
      model_rng_(seed ^ 0xABCDEF0123456789ull),
      noise_sigma_(noise_sigma)
{
    CLITE_CHECK(!jobs_.empty(), "server needs >= 1 co-located job");
    CLITE_CHECK(model_ != nullptr, "server needs a performance model");
    CLITE_CHECK(noise_sigma_ >= 0.0, "noise sigma must be >= 0");
    for (size_t r = 0; r < config_.resourceCount(); ++r)
        CLITE_CHECK(size_t(config_.resource(r).units) >= jobs_.size(),
                    "resource " << resourceName(config_.resource(r).kind)
                                << " cannot give each of " << jobs_.size()
                                << " jobs one unit");
    for (const auto& spec : config_.resources())
        drivers_.push_back(makeDriver(spec));

    iso_cache_value_.assign(jobs_.size(), 0.0);
    iso_cache_load_.assign(jobs_.size(), -1.0);
    iso_cache_valid_.assign(jobs_.size(), false);

    // Start from the equal-share partition, as an operator would.
    apply(Allocation::equalShare(jobs_.size(), config_));
    apply_count_ = 0; // the initial programming is not a decision sample
    apply_latency_ms_ = 0.0;
}

const workloads::JobSpec&
SimulatedServer::job(size_t j) const
{
    CLITE_CHECK(j < jobs_.size(), "job " << j << " out of " << jobs_.size());
    return jobs_[j];
}

std::vector<size_t>
SimulatedServer::lcJobs() const
{
    std::vector<size_t> out;
    for (size_t j = 0; j < jobs_.size(); ++j)
        if (jobs_[j].isLatencyCritical())
            out.push_back(j);
    return out;
}

std::vector<size_t>
SimulatedServer::bgJobs() const
{
    std::vector<size_t> out;
    for (size_t j = 0; j < jobs_.size(); ++j)
        if (!jobs_[j].isLatencyCritical())
            out.push_back(j);
    return out;
}

void
SimulatedServer::applyInternal(const Allocation& alloc)
{
    for (size_t r = 0; r < drivers_.size(); ++r) {
        drivers_[r]->apply(alloc, r);
        apply_latency_ms_ += drivers_[r]->applyLatencyMs();
    }
    current_ = std::make_unique<Allocation>(alloc);
    ++apply_count_;
    last_apply_ok_ = true;
}

void
SimulatedServer::apply(const Allocation& alloc)
{
    CLITE_CHECK(alloc.jobs() == jobs_.size(),
                "allocation for " << alloc.jobs() << " jobs, server has "
                                  << jobs_.size());
    CLITE_CHECK(alloc.resources() == config_.resourceCount(),
                "allocation has " << alloc.resources()
                                  << " resources, server has "
                                  << config_.resourceCount());
    alloc.validate();
    if (!faultsEnabled()) {
        applyInternal(alloc);
        return;
    }

    const uint64_t idx = apply_count_;
    if (faults_->applyFails(idx)) {
        // Transient failure: the tool returned an error, nothing got
        // programmed. The attempt still counts toward the overhead
        // accounting; latency does not (the call failed fast).
        faults_->record(FaultKind::ApplyFailure, idx);
        last_apply_ok_ = false;
        ++apply_count_;
        return;
    }

    // Dead knobs keep their last programmed column; every live knob
    // is programmed as requested, so current_ records what actually
    // runs, not what was asked for.
    Allocation programmed = alloc;
    std::vector<char> dead(drivers_.size(), 0);
    if (current_ != nullptr && current_->jobs() == alloc.jobs()) {
        for (size_t r = 0; r < drivers_.size(); ++r) {
            if (!faults_->resourceDead(r, idx))
                continue;
            dead[r] = 1;
            for (size_t j = 0; j < jobs_.size(); ++j)
                programmed.set(j, r, current_->get(j, r));
        }
    }
    for (size_t r = 0; r < drivers_.size(); ++r) {
        if (dead[r])
            continue; // knob untouched: old driver state, no latency
        drivers_[r]->apply(programmed, r);
        apply_latency_ms_ += drivers_[r]->applyLatencyMs();
    }
    current_ = std::make_unique<Allocation>(programmed);
    ++apply_count_;
    last_apply_ok_ = true;
}

void
SimulatedServer::setFaultInjector(std::shared_ptr<FaultInjector> faults)
{
    faults_ = std::move(faults);
    last_apply_ok_ = true;
    last_window_.clear();
}

std::vector<size_t>
SimulatedServer::deadResources() const
{
    std::vector<size_t> out;
    if (!faultsEnabled())
        return out;
    for (size_t r = 0; r < config_.resourceCount(); ++r)
        if (faults_->resourceDead(r, apply_count_))
            out.push_back(r);
    return out;
}

const Allocation&
SimulatedServer::currentAllocation() const
{
    CLITE_ASSERT(current_ != nullptr, "no allocation applied yet");
    return *current_;
}

workloads::JobMeasurement
SimulatedServer::isolationBaseline(size_t j) const
{
    CLITE_CHECK(j < jobs_.size(), "job " << j << " out of " << jobs_.size());
    if (!iso_cache_valid_[j] ||
        iso_cache_load_[j] != jobs_[j].load_fraction) {
        // Max-allocation extremum: job j gets everything except one
        // unit per other job (the bootstrap sample of Sec. 4).
        Allocation iso = Allocation::maxFor(j, jobs_.size(), config_);
        std::vector<int> units(config_.resourceCount());
        for (size_t r = 0; r < config_.resourceCount(); ++r)
            units[r] = iso.get(j, r);
        Rng iso_rng(0x15015015ull + j); // fixed: baseline is noise-free
        workloads::JobMeasurement m =
            model_->measure(jobs_[j], units, config_, iso_rng);
        iso_cache_value_[j] = jobs_[j].isLatencyCritical() ? m.p95_ms
                                                           : m.throughput;
        iso_cache_load_[j] = jobs_[j].load_fraction;
        iso_cache_valid_[j] = true;
    }
    workloads::JobMeasurement m;
    if (jobs_[j].isLatencyCritical())
        m.p95_ms = iso_cache_value_[j];
    else
        m.throughput = iso_cache_value_[j];
    return m;
}

std::vector<JobObservation>
SimulatedServer::observe()
{
    CLITE_CHECK(current_ != nullptr, "observe() before any apply()");
    const uint64_t window = observe_count_;
    ++observe_count_;

    std::vector<JobObservation> out;
    out.reserve(jobs_.size());
    for (size_t j = 0; j < jobs_.size(); ++j) {
        std::vector<int> units(config_.resourceCount());
        for (size_t r = 0; r < config_.resourceCount(); ++r)
            units[r] = current_->get(j, r);
        workloads::JobMeasurement m =
            model_->measure(jobs_[j], units, config_, model_rng_);

        double noise = noise_sigma_ > 0.0
                           ? noise_rng_.logNormalMean(1.0, noise_sigma_)
                           : 1.0;

        JobObservation ob;
        ob.job_name = jobs_[j].profile.name;
        ob.is_lc = jobs_[j].isLatencyCritical();
        ob.load_fraction = jobs_[j].load_fraction;
        if (ob.is_lc) {
            // The p99 rides the same noise multiplier as the p95 —
            // one draw per job keeps the noise stream (and every
            // golden depending on it) unchanged.
            ob.p95_ms = m.p95_ms * noise;
            ob.p99_ms = m.p99_ms * noise;
            ob.qos_target_ms = jobs_[j].profile.qos_p95_ms;
            ob.throughput = m.throughput;
            ob.iso_p95_ms = isolationBaseline(j).p95_ms;
        } else {
            ob.throughput = m.throughput * noise;
            ob.iso_throughput = isolationBaseline(j).throughput;
        }
        out.push_back(std::move(ob));
    }
    if (!faultsEnabled())
        return out;

    // Frozen counters: the window repeats the previously delivered
    // telemetry (the measurement above still happened — the system
    // ran — only its readout is lost).
    if (faults_->windowFrozen(window) && last_window_.size() == out.size()) {
        std::vector<JobObservation> frozen = last_window_;
        for (auto& ob : frozen)
            ob.stale = true;
        faults_->record(FaultKind::FrozenCounters, window);
        return frozen;
    }
    for (size_t j = 0; j < out.size(); ++j) {
        if (faults_->jobDown(window, j)) {
            JobObservation& ob = out[j];
            ob.crashed = true;
            ob.throughput = 0.0;
            if (ob.is_lc) {
                ob.p95_ms = 1e9; // no service: unbounded tail
                ob.p99_ms = 1e9;
            }
            faults_->record(FaultKind::JobCrash, window, j);
        } else if (out[j].is_lc && faults_->latencySpike(window, j)) {
            out[j].p95_ms *= faults_->plan().spike_factor;
            out[j].p99_ms *= faults_->plan().spike_factor;
            faults_->record(FaultKind::LatencySpike, window, j);
        }
    }
    if (faults_->windowDropout(window)) {
        for (auto& ob : out)
            ob.valid = false;
        faults_->record(FaultKind::MeasurementDropout, window);
        return out;
    }
    last_window_ = out;
    return out;
}

std::vector<JobObservation>
SimulatedServer::observePartialWindow(double fraction)
{
    CLITE_CHECK(current_ != nullptr,
                "observePartialWindow() before any apply()");
    CLITE_CHECK(fraction > 0.0 && fraction <= 1.0,
                "window fraction must be in (0,1], got " << fraction);
    ++partial_observe_count_;

    // Derived stream: a hash of the window index, the programmed
    // allocation, and the peek count keeps the peek deterministic
    // while leaving the full-window noise/model streams untouched —
    // a search that never aborts stays bit-identical to one that
    // never peeked.
    uint64_t h = 1469598103934665603ull ^ (observe_count_ * 0x9E3779B97F4A7C15ull);
    for (char c : current_->key())
        h = (h ^ uint64_t(uint8_t(c))) * 1099511628211ull;
    h ^= partial_observe_count_ * 0xD1B54A32D192ED03ull;
    Rng peek_rng(h);

    // Fewer queries observed so far -> noisier percentile estimate.
    const double partial_sigma = noise_sigma_ / std::sqrt(fraction);

    std::vector<JobObservation> out;
    out.reserve(jobs_.size());
    for (size_t j = 0; j < jobs_.size(); ++j) {
        std::vector<int> units(config_.resourceCount());
        for (size_t r = 0; r < config_.resourceCount(); ++r)
            units[r] = current_->get(j, r);
        workloads::JobMeasurement m =
            model_->measure(jobs_[j], units, config_, peek_rng);

        double noise = noise_sigma_ > 0.0
                           ? peek_rng.logNormalMean(1.0, partial_sigma)
                           : 1.0;

        JobObservation ob;
        ob.job_name = jobs_[j].profile.name;
        ob.is_lc = jobs_[j].isLatencyCritical();
        ob.load_fraction = jobs_[j].load_fraction;
        ob.window_fraction = fraction;
        if (ob.is_lc) {
            ob.p95_ms = m.p95_ms * noise;
            ob.p99_ms = m.p99_ms * noise;
            ob.qos_target_ms = jobs_[j].profile.qos_p95_ms;
            ob.throughput = m.throughput;
            ob.iso_p95_ms = isolationBaseline(j).p95_ms;
        } else {
            ob.throughput = m.throughput * noise;
            ob.iso_throughput = isolationBaseline(j).throughput;
        }
        out.push_back(std::move(ob));
    }
    if (!faultsEnabled())
        return out;

    // Read-only view of this window's fault state: lost telemetry is
    // visible at the peek (valid=false) but nothing is recorded —
    // the full observe() owns the window's fault accounting.
    const uint64_t window = observe_count_;
    if (faults_->windowDropout(window))
        for (auto& ob : out)
            ob.valid = false;
    for (size_t j = 0; j < out.size(); ++j)
        if (faults_->jobDown(window, j)) {
            out[j].crashed = true;
            out[j].throughput = 0.0;
            if (out[j].is_lc) {
                out[j].p95_ms = 1e9;
                out[j].p99_ms = 1e9;
            }
        }
    return out;
}

std::vector<JobObservation>
SimulatedServer::evaluate(const Allocation& alloc)
{
    apply(alloc);
    return observe();
}

std::vector<JobObservation>
SimulatedServer::observeNoiseless(const Allocation& alloc) const
{
    CLITE_CHECK(alloc.jobs() == jobs_.size(),
                "allocation for " << alloc.jobs() << " jobs, server has "
                                  << jobs_.size());
    alloc.validate();

    // Deterministic per-configuration stream so stochastic backends
    // (DES) return a stable ground truth for the same configuration.
    uint64_t h = 1469598103934665603ull;
    for (char c : alloc.key())
        h = (h ^ uint64_t(uint8_t(c))) * 1099511628211ull;
    Rng local(h);

    std::vector<JobObservation> out;
    out.reserve(jobs_.size());
    for (size_t j = 0; j < jobs_.size(); ++j) {
        std::vector<int> units(config_.resourceCount());
        for (size_t r = 0; r < config_.resourceCount(); ++r)
            units[r] = alloc.get(j, r);
        workloads::JobMeasurement m =
            model_->measure(jobs_[j], units, config_, local);

        JobObservation ob;
        ob.job_name = jobs_[j].profile.name;
        ob.is_lc = jobs_[j].isLatencyCritical();
        ob.load_fraction = jobs_[j].load_fraction;
        if (ob.is_lc) {
            ob.p95_ms = m.p95_ms;
            ob.p99_ms = m.p99_ms;
            ob.qos_target_ms = jobs_[j].profile.qos_p95_ms;
            ob.throughput = m.throughput;
            ob.iso_p95_ms = isolationBaseline(j).p95_ms;
        } else {
            ob.throughput = m.throughput;
            ob.iso_throughput = isolationBaseline(j).throughput;
        }
        out.push_back(std::move(ob));
    }
    return out;
}

void
SimulatedServer::setLoad(size_t j, double load_fraction)
{
    CLITE_CHECK(j < jobs_.size(), "job " << j << " out of " << jobs_.size());
    CLITE_CHECK(jobs_[j].isLatencyCritical(),
                "setLoad only applies to latency-critical jobs");
    CLITE_CHECK(load_fraction > 0.0 && load_fraction <= 1.0,
                "load fraction must be in (0,1], got " << load_fraction);
    jobs_[j].load_fraction = load_fraction;
    CLITE_LOG_INFO("load of " << jobs_[j].profile.name << " set to "
                              << load_fraction * 100.0 << "%");
}

size_t
SimulatedServer::addJob(const workloads::JobSpec& job)
{
    for (size_t r = 0; r < config_.resourceCount(); ++r)
        CLITE_CHECK(size_t(config_.resource(r).units) > jobs_.size(),
                    "resource " << resourceName(config_.resource(r).kind)
                                << " cannot give " << jobs_.size() + 1
                                << " jobs one unit each");
    jobs_.push_back(job);
    iso_cache_value_.push_back(0.0);
    iso_cache_load_.push_back(-1.0);
    iso_cache_valid_.push_back(false);
    // Slot reconfiguration is an offline operation: it bypasses fault
    // injection so drivers, current_ and jobs_ never disagree on shape.
    applyInternal(Allocation::equalShare(jobs_.size(), config_));
    last_window_.clear();
    CLITE_LOG_INFO("job " << job.profile.name << " arrived; "
                          << jobs_.size() << " jobs co-located");
    return jobs_.size() - 1;
}

void
SimulatedServer::removeJob(size_t j)
{
    CLITE_CHECK(j < jobs_.size(), "job " << j << " out of "
                                         << jobs_.size());
    CLITE_CHECK(jobs_.size() > 1, "cannot remove the last job");
    CLITE_LOG_INFO("job " << jobs_[j].profile.name << " departed");
    jobs_.erase(jobs_.begin() + long(j));
    iso_cache_value_.erase(iso_cache_value_.begin() + long(j));
    iso_cache_load_.erase(iso_cache_load_.begin() + long(j));
    iso_cache_valid_.erase(iso_cache_valid_.begin() + long(j));
    applyInternal(Allocation::equalShare(jobs_.size(), config_));
    last_window_.clear();
}

std::vector<std::string>
SimulatedServer::isolationSettings(size_t j) const
{
    CLITE_CHECK(j < jobs_.size(), "job " << j << " out of " << jobs_.size());
    CLITE_CHECK(current_ != nullptr, "no allocation applied yet");
    std::vector<std::string> out;
    for (const auto& d : drivers_)
        out.push_back(d->settingFor(j));
    return out;
}

} // namespace platform
} // namespace clite

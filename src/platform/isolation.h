/**
 * @file
 * Simulated resource-isolation drivers (Table 1).
 *
 * On the paper's testbed each shared resource is partitioned through a
 * concrete tool: taskset pins cores, Intel CAT programs LLC way
 * bitmasks, Intel MBA throttles memory bandwidth in 10% steps, and
 * cgroups/qdisc bound memory capacity and disk/network bandwidth. The
 * drivers here mirror those interfaces faithfully enough to be tested:
 * given an Allocation they compute the per-job programmed state (core
 * lists, way masks, MBA percentages, byte limits) with the real tools'
 * invariants (disjoint core sets, disjoint contiguous way masks,
 * percentages in steps of the unit granularity), and model the small
 * reprogramming latency the paper measures at <100 ms per decision.
 */

#ifndef CLITE_PLATFORM_ISOLATION_H
#define CLITE_PLATFORM_ISOLATION_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "platform/allocation.h"
#include "platform/resource.h"

namespace clite {
namespace platform {

/**
 * Abstract isolation driver for one shared resource.
 */
class IsolationDriver
{
  public:
    virtual ~IsolationDriver() = default;

    /** The resource this driver partitions. */
    virtual Resource resource() const = 0;

    /** The real-world tool being mimicked ("taskset", "Intel CAT", ...). */
    std::string tool() const { return isolationTool(resource()); }

    /**
     * Program the partition for resource column @p r of @p alloc.
     * @pre alloc.valid()
     */
    virtual void apply(const Allocation& alloc, size_t r) = 0;

    /** Human-readable programmed setting for job @p j ("cores 0-3"). */
    virtual std::string settingFor(size_t j) const = 0;

    /** Number of jobs in the last applied partition (0 before apply). */
    virtual size_t jobCount() const = 0;

    /** Modeled reprogramming latency of one apply() in milliseconds. */
    virtual double applyLatencyMs() const = 0;
};

/**
 * taskset-style core affinity: each job gets a contiguous, disjoint
 * core range covering all cores.
 */
class CoreAffinityDriver : public IsolationDriver
{
  public:
    Resource resource() const override { return Resource::Cores; }
    void apply(const Allocation& alloc, size_t r) override;
    std::string settingFor(size_t j) const override;
    size_t jobCount() const override { return first_core_.size(); }
    double applyLatencyMs() const override { return 4.0; }

    /** First core of job @p j's range. */
    int firstCore(size_t j) const;
    /** Number of cores in job @p j's range. */
    int coreCount(size_t j) const;

  private:
    std::vector<int> first_core_;
    std::vector<int> count_;
};

/**
 * Intel CAT-style way partitioning: each job gets a contiguous,
 * disjoint way bitmask (real CAT requires contiguous masks).
 */
class CacheWayDriver : public IsolationDriver
{
  public:
    Resource resource() const override { return Resource::LlcWays; }
    void apply(const Allocation& alloc, size_t r) override;
    std::string settingFor(size_t j) const override;
    size_t jobCount() const override { return masks_.size(); }
    double applyLatencyMs() const override { return 8.0; }

    /** Programmed way bitmask for job @p j. */
    uint32_t mask(size_t j) const;

  private:
    std::vector<uint32_t> masks_;
};

/**
 * Intel MBA-style bandwidth throttling: per-job percentage in steps of
 * the unit granularity.
 */
class MembwDriver : public IsolationDriver
{
  public:
    Resource resource() const override { return Resource::MemBandwidth; }
    void apply(const Allocation& alloc, size_t r) override;
    std::string settingFor(size_t j) const override;
    size_t jobCount() const override { return percent_.size(); }
    double applyLatencyMs() const override { return 12.0; }

    /** Programmed throttle percentage for job @p j. */
    int percent(size_t j) const;

  private:
    std::vector<int> percent_;
};

/**
 * cgroup/qdisc-style limits for memory capacity, disk bandwidth and
 * network bandwidth: per-job absolute limit in the resource's unit.
 */
class LimitDriver : public IsolationDriver
{
  public:
    /**
     * @param kind MemCapacity, DiskBandwidth or NetBandwidth.
     * @param unit_value Physical value of one allocation unit.
     * @param unit_label Unit suffix for settingFor ("GB", "MB/s").
     */
    LimitDriver(Resource kind, double unit_value, std::string unit_label);

    Resource resource() const override { return kind_; }
    void apply(const Allocation& alloc, size_t r) override;
    std::string settingFor(size_t j) const override;
    size_t jobCount() const override { return limit_.size(); }
    double applyLatencyMs() const override { return 6.0; }

    /** Programmed limit for job @p j in physical units. */
    double limit(size_t j) const;

  private:
    Resource kind_;
    double unit_value_;
    std::string unit_label_;
    std::vector<double> limit_;
};

/**
 * Driver factory for a resource spec.
 */
std::unique_ptr<IsolationDriver> makeDriver(const ResourceSpec& spec);

} // namespace platform
} // namespace clite

#endif // CLITE_PLATFORM_ISOLATION_H

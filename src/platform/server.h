/**
 * @file
 * The simulated co-location server.
 *
 * SimulatedServer is the substitute for the paper's Xeon testbed: it
 * owns a set of co-located jobs, programs resource partitions through
 * the Table-1 isolation drivers, and "runs" the system for an
 * observation window by querying a performance model, adding
 * multiplicative measurement noise. Controllers (CLITE and every
 * baseline) interact with it only through apply()/observe()/evaluate(),
 * exactly the black-box interface the paper's controllers have to the
 * real machine. Sample and reprogram counters feed the overhead
 * analysis of Fig. 15.
 */

#ifndef CLITE_PLATFORM_SERVER_H
#define CLITE_PLATFORM_SERVER_H

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "platform/allocation.h"
#include "platform/faults.h"
#include "platform/isolation.h"
#include "platform/resource.h"
#include "workloads/perf_model.h"
#include "workloads/profile.h"

namespace clite {
namespace platform {

/**
 * One job's measured behaviour during an observation window, plus the
 * isolation baselines needed to normalize it (the paper's Iso-Perf,
 * sampled during initialization).
 */
struct JobObservation
{
    std::string job_name;     ///< Workload name.
    bool is_lc = false;       ///< Latency-critical?
    double load_fraction = 0; ///< Offered load (LC).

    double p95_ms = 0.0;      ///< Measured p95 tail latency (LC).
    double p99_ms = 0.0;      ///< Measured p99 tail latency (LC).
    double qos_target_ms = 0; ///< QoS target (LC).
    double throughput = 0.0;  ///< Measured throughput.

    double iso_p95_ms = 0.0;     ///< p95 under maximum allocation (LC).
    double iso_throughput = 0.0; ///< Throughput under max allocation (BG).

    /**
     * False when the window's telemetry was lost (measurement
     * dropout): the numeric fields are meaningless and the sample must
     * not be trusted. Detectable online — the monitoring agent knows
     * it received no data.
     */
    bool valid = true;
    /**
     * True when the telemetry repeats the previous window (frozen
     * counters). Detectable online through the sample's unchanged
     * timestamp.
     */
    bool stale = false;
    /**
     * True while the job is crashed (down): zero throughput, p95 far
     * beyond any target. Detectable online — the process is gone.
     */
    bool crashed = false;
    /**
     * Elapsed fraction of the observation window this reading covers.
     * 1 for a full window (observe()); < 1 for a mid-window peek at
     * the partial counters (observePartialWindow()), whose percentiles
     * are computed from proportionally fewer queries and are noisier.
     */
    double window_fraction = 1.0;

    /** True when the job is BG or its p95 is within target. */
    bool qosMet() const;

    /**
     * Normalized performance in (0, 1]: BG throughput / isolated
     * throughput; for LC jobs iso_p95 / p95 (capped at 1) — the
     * Colo-Perf/Iso-Perf ratio of Eq. 3.
     */
    double perfNorm() const;

    /** QoS headroom target/p95 (LC; > 1 means met). */
    double qosRatio() const;
};

/**
 * The simulated server hosting a fixed set of co-located jobs.
 */
class SimulatedServer
{
  public:
    /**
     * @param config Hardware description.
     * @param jobs Co-located jobs (>= 1, and at most
     *     min_r units(r) so each can own a unit of everything).
     * @param model Performance model backend (owned).
     * @param seed Seed for measurement noise (and DES randomness).
     * @param noise_sigma Log-normal sigma of measurement noise
     *     (0 disables noise).
     */
    SimulatedServer(ServerConfig config, std::vector<workloads::JobSpec> jobs,
                    std::unique_ptr<workloads::PerformanceModel> model,
                    uint64_t seed = 1, double noise_sigma = 0.03);

    /** Hardware description. */
    const ServerConfig& config() const { return config_; }

    /** Number of co-located jobs. */
    size_t jobCount() const { return jobs_.size(); }

    /** Job @p j's spec. */
    const workloads::JobSpec& job(size_t j) const;

    /** Indices of the latency-critical jobs. */
    std::vector<size_t> lcJobs() const;

    /** Indices of the background jobs. */
    std::vector<size_t> bgJobs() const;

    /**
     * Program @p alloc through the isolation drivers.
     *
     * Under fault injection an apply attempt can transiently fail
     * (drivers and currentAllocation() keep their previous state;
     * lastApplyOk() turns false) and dead knobs keep their last
     * programmed column, so currentAllocation() reflects what is
     * actually programmed, not what was requested.
     *
     * @pre alloc.valid() with matching shape.
     */
    void apply(const Allocation& alloc);

    /**
     * Attach (or detach, with nullptr) a fault injector. Without one —
     * or with a plan that injects nothing — every code path is
     * identical to the fault-free server.
     */
    void setFaultInjector(std::shared_ptr<FaultInjector> faults);

    /** The attached fault injector (nullptr when none). */
    FaultInjector* faultInjector() const { return faults_.get(); }

    /** True when an injector with a non-trivial plan is attached. */
    bool faultsEnabled() const
    {
        return faults_ != nullptr && faults_->plan().any();
    }

    /**
     * Did the most recent apply() program the drivers? Mirrors the
     * error code a real isolation tool returns, so controllers can
     * retry. Always true on a fault-free server.
     */
    bool lastApplyOk() const { return last_apply_ok_; }

    /**
     * Resources whose knob is permanently dead at the current apply
     * index (empty on a fault-free server). A dead knob keeps its
     * last programmed partition; controllers should collapse the
     * dimension.
     */
    std::vector<size_t> deadResources() const;

    /** The currently programmed allocation. */
    const Allocation& currentAllocation() const;

    /**
     * Observe every job for one observation window under the current
     * allocation (applies measurement noise).
     */
    std::vector<JobObservation> observe();

    /**
     * Peek at the partial counters @p fraction of the way into the
     * CURRENT observation window — the real platform's perf counters
     * expose tail latency continuously, so a controller can decide
     * mid-window whether the window is worth finishing (the budget
     * layer's early-abort, bo/budget.h).
     *
     * The peek is side-effect-free with respect to the full-window
     * streams: it advances neither observe_count_ nor the noise/model
     * RNGs (its randomness derives from a hash of the window index
     * and allocation), so a run that never aborts is bit-identical to
     * one that never peeked. Partial percentiles come from
     * proportionally fewer queries, so measurement noise is inflated
     * by 1/sqrt(fraction); each returned observation carries
     * window_fraction = fraction. Under fault injection a window
     * whose telemetry is dropped reports valid = false (read-only:
     * no fault is recorded against the window).
     *
     * @param fraction Elapsed fraction of the window, in (0, 1].
     */
    std::vector<JobObservation> observePartialWindow(double fraction);

    /** Number of mid-window partial peeks so far. */
    uint64_t partialObserveCount() const { return partial_observe_count_; }

    /** apply() followed by observe(). */
    std::vector<JobObservation> evaluate(const Allocation& alloc);

    /**
     * Noise-free, side-effect-free evaluation of @p alloc: does not
     * reprogram the drivers and does not advance the sample counters.
     * This is the "offline" oracle view of a configuration (and the
     * harness's ground-truth reporter); online controllers must use
     * evaluate() instead.
     */
    std::vector<JobObservation> observeNoiseless(
        const Allocation& alloc) const;

    /**
     * Change job @p j's offered load (Fig. 16 dynamic scenario).
     * Invalidates nothing: iso baselines are per-load and recomputed
     * lazily.
     */
    void setLoad(size_t j, double load_fraction);

    /**
     * Co-locate an additional job (Sec. 4: "if ... the job mix
     * changes, CLITE can be reinvoked"). The current partition is
     * re-programmed to the equal share of the new job count; the
     * caller is expected to re-run its controller.
     *
     * @return The new job's index.
     * @throws clite::Error when some resource cannot give every job a
     *     unit any more.
     */
    size_t addJob(const workloads::JobSpec& job);

    /**
     * Remove job @p j from the co-location; remaining jobs keep their
     * relative order. The current partition is re-programmed to the
     * equal share of the remaining jobs.
     */
    void removeJob(size_t j);

    /** The per-job programmed isolation settings (driver state). */
    std::vector<std::string> isolationSettings(size_t j) const;

    /** Number of apply() calls so far (Fig. 15 overhead). */
    uint64_t applyCount() const { return apply_count_; }

    /** Number of observe() windows so far. */
    uint64_t observeCount() const { return observe_count_; }

    /** Total modeled reprogramming latency spent in apply() (ms). */
    double totalApplyLatencyMs() const { return apply_latency_ms_; }

    /** Model backend name. */
    std::string modelName() const { return model_->name(); }

    /**
     * Switch the backing model between coarse (event-budgeted) and
     * fine measurement mode (docs/MODEL.md). Returns true when the
     * model honors budgets (the DES backend); the analytic backend
     * refuses and stays exact. The controller sets a budget around
     * its search probes and restores 0 before validation, so
     * monitoring windows and checkpoints always measure fine.
     */
    bool setMeasurementEventBudget(uint64_t budget)
    {
        return model_->setEventBudget(budget);
    }

    /** The model's active measurement event budget (0 = fine). */
    uint64_t measurementEventBudget() const
    {
        return model_->eventBudget();
    }

    /**
     * Noise-free isolated baseline of job @p j (max-allocation
     * extremum): p95 for LC, throughput for BG. Cached per load.
     */
    workloads::JobMeasurement isolationBaseline(size_t j) const;

  private:
    /**
     * Program @p alloc unconditionally, bypassing fault injection —
     * construction and job arrival/departure reconfigure the slots as
     * an offline operation that cannot be left half-done.
     */
    void applyInternal(const Allocation& alloc);

    ServerConfig config_;
    std::vector<workloads::JobSpec> jobs_;
    std::unique_ptr<workloads::PerformanceModel> model_;
    Rng noise_rng_;
    Rng model_rng_;
    double noise_sigma_;

    std::vector<std::unique_ptr<IsolationDriver>> drivers_;
    std::unique_ptr<Allocation> current_;

    std::shared_ptr<FaultInjector> faults_;
    bool last_apply_ok_ = true;
    std::vector<JobObservation> last_window_; // for frozen counters

    mutable std::vector<double> iso_cache_value_;
    mutable std::vector<double> iso_cache_load_;
    mutable std::vector<bool> iso_cache_valid_;

    uint64_t apply_count_ = 0;
    uint64_t observe_count_ = 0;
    uint64_t partial_observe_count_ = 0;
    double apply_latency_ms_ = 0.0;
};

} // namespace platform
} // namespace clite

#endif // CLITE_PLATFORM_SERVER_H

/**
 * @file
 * Deterministic fault injection for the simulated server.
 *
 * The paper's controller runs *online* on a real machine, where
 * telemetry is noisy and the isolation knobs of Table 1 are ordinary
 * system tools that can fail: perf counters drop or freeze, a tail
 * latency sample can spike for reasons unrelated to the partition,
 * `pqos`/cgroup writes transiently return errors, a knob can die for
 * the rest of the run, and jobs crash and restart. FaultInjector
 * reproduces those adversities deterministically so that any
 * controller can be exercised under a declarative FaultPlan without
 * code changes, and the same seed + plan always yields the identical
 * fault sequence (the basis of the resilience bench and of regression
 * tests).
 *
 * Every probabilistic decision is a pure function of (seed, fault
 * kind, event counter): a counter-keyed hash rather than a shared
 * stateful stream. This makes the sequence independent of call order
 * and of how often a decision is re-queried — retries see the same
 * world they failed in, and two runs with the same plan diverge only
 * through the controller's own choices.
 */

#ifndef CLITE_PLATFORM_FAULTS_H
#define CLITE_PLATFORM_FAULTS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace clite {
namespace platform {

/** The injectable fault kinds. */
enum class FaultKind
{
    MeasurementDropout, ///< A whole observation window returns no data.
    FrozenCounters,     ///< A window repeats the previous telemetry.
    LatencySpike,       ///< One LC job's p95 is multiplied by a factor.
    ApplyFailure,       ///< One apply() transiently fails to program.
    KnobLoss,           ///< A resource knob dies for the rest of the run.
    JobCrash,           ///< A job crashes and restarts windows later.
    WorkerLoss,         ///< A fleet worker dies mid-task (engine level).
    TaskFailure,        ///< A dispatched window task fails at its node.
};

/** Printable name of a fault kind ("apply-failure", ...). */
const char* faultKindName(FaultKind kind);

/**
 * Declarative fault schedule: per-event probabilities for the
 * transient kinds plus scripted schedules for permanent knob loss and
 * job crashes. All probabilities are per-event (per observation
 * window, per apply attempt, per window x LC job for spikes).
 */
struct FaultPlan
{
    /** P(an observe() window returns no valid measurement). */
    double dropout_prob = 0.0;
    /** P(an observe() window repeats the previous window's telemetry). */
    double freeze_prob = 0.0;
    /** P(one LC job's p95 spikes in a window), per job. */
    double spike_prob = 0.0;
    /** Multiplier applied to a spiked p95. */
    double spike_factor = 8.0;
    /** P(an apply() attempt transiently fails), per attempt. */
    double apply_fail_prob = 0.0;
    /** P(a job crashes in a window), per window x job. */
    double crash_prob = 0.0;
    /** Down-time of a probabilistic crash, in observation windows. */
    int crash_down_windows = 3;

    /** Permanent loss of one resource knob. */
    struct KnobLoss
    {
        /** The knob is dead for every apply with index >= this. */
        uint64_t after_apply = 0;
        /** Resource column that can no longer be reprogrammed. */
        size_t resource = 0;
    };
    std::vector<KnobLoss> knob_losses;

    /** Scripted job crash/restart. */
    struct JobCrash
    {
        uint64_t at_window = 0; ///< First down window (observe index).
        size_t job = 0;         ///< Crashing job.
        int down_windows = 3;   ///< Windows the job stays down.
    };
    std::vector<JobCrash> crashes;

    // ----- Fleet-engine fault kinds (cluster::AsyncFleetEngine) -----
    // The kinds above hit one server's telemetry and knobs; these two
    // hit the manager-worker layer that drives many servers: a worker
    // can die while holding a window task (the task's lease expires
    // and the manager resubmits it), and a task can fail at its node
    // (bad telemetry, a wedged agent) without the worker dying.

    /** P(the assigned worker dies during a task), per assignment. */
    double worker_loss_prob = 0.0;
    /** P(a dispatched window task fails at its node), per attempt. */
    double task_fail_prob = 0.0;

    /** Scripted permanent worker death. */
    struct WorkerDeath
    {
        /** The worker dies on its first assignment index >= this. */
        uint64_t at_assignment = 0;
        size_t worker = 0; ///< Which worker.
    };
    std::vector<WorkerDeath> worker_deaths;

    /** Scripted node breakage: every window task fails from then on. */
    struct NodeBreak
    {
        size_t node = 0;          ///< Broken node.
        uint64_t after_epoch = 0; ///< Tasks with epoch >= this fail.
    };
    std::vector<NodeBreak> node_breaks;

    /** True when the plan can inject at least one fault. */
    bool any() const;

    /** @throws clite::Error on out-of-range fields. */
    void validate() const;
};

/** One injected fault, for reporting and tests. */
struct FaultEvent
{
    FaultKind kind;     ///< What was injected.
    uint64_t index = 0; ///< Observe-window or apply index it hit.
    size_t subject = 0; ///< Job or resource concerned (0 if n/a).
};

/**
 * Seeded, deterministic fault source. Decision methods are pure
 * (const, counter-keyed); the event log records what the server
 * actually injected.
 */
class FaultInjector
{
  public:
    /**
     * @param plan The fault schedule (validated).
     * @param seed Seed of the counter-keyed hash; same seed + plan
     *     produce the identical decision sequence.
     */
    explicit FaultInjector(FaultPlan plan, uint64_t seed = 0xFA5715EEDull);

    /** The plan in effect. */
    const FaultPlan& plan() const { return plan_; }

    /** The seed in effect. */
    uint64_t seed() const { return seed_; }

    /** Does apply attempt @p apply_index transiently fail? */
    bool applyFails(uint64_t apply_index) const;

    /** Is resource @p r's knob dead at apply index @p apply_index? */
    bool resourceDead(size_t r, uint64_t apply_index) const;

    /** Does observation window @p window drop entirely? */
    bool windowDropout(uint64_t window) const;

    /** Does window @p window repeat the previous telemetry? */
    bool windowFrozen(uint64_t window) const;

    /** Does job @p job's p95 spike in window @p window? */
    bool latencySpike(uint64_t window, size_t job) const;

    /**
     * Is job @p job down (crashed, not yet restarted) in window
     * @p window? Combines the scripted crashes with probabilistic
     * ones of plan().crash_down_windows duration.
     */
    bool jobDown(uint64_t window, size_t job) const;

    /**
     * Does worker @p worker die while holding assignment
     * @p assignment? Combines the probabilistic worker_loss_prob with
     * the scripted deaths.
     */
    bool workerLost(uint64_t assignment, size_t worker) const;

    /**
     * Is worker @p worker's death at @p assignment scripted (and
     * therefore permanent — it never rejoins)? Probabilistic losses
     * are transient: the engine revives the worker after its
     * configured down time.
     */
    bool workerDeathScripted(uint64_t assignment, size_t worker) const;

    /**
     * Does attempt @p attempt of node @p node's window task for epoch
     * @p epoch fail at the node? Combines task_fail_prob with the
     * scripted node breaks.
     */
    bool taskFails(size_t node, uint64_t epoch, int attempt) const;

    /** Record an injected fault (called by the server). */
    void record(FaultKind kind, uint64_t index, size_t subject = 0);

    /** Every fault injected so far, in injection order. */
    const std::vector<FaultEvent>& events() const { return events_; }

    /** Number of injected events of @p kind. */
    uint64_t count(FaultKind kind) const;

    /** Forget the event log (decisions are unaffected). */
    void clearEvents() { events_.clear(); }

  private:
    /** Uniform [0,1) hash of (seed, kind, a, b). */
    double hash01(FaultKind kind, uint64_t a, uint64_t b) const;

    FaultPlan plan_;
    uint64_t seed_;
    std::vector<FaultEvent> events_;
};

} // namespace platform
} // namespace clite

#endif // CLITE_PLATFORM_FAULTS_H

/**
 * @file
 * A resource-partition configuration: the integer matrix x(j, r) of
 * Eq. 4–6 assigning every unit of every shared resource to exactly one
 * co-located job. This is the "configuration"/"sample point" the whole
 * paper optimizes over.
 */

#ifndef CLITE_PLATFORM_ALLOCATION_H
#define CLITE_PLATFORM_ALLOCATION_H

#include <string>
#include <vector>

#include "platform/resource.h"

namespace clite {
namespace platform {

/**
 * Integer job x resource allocation matrix with the paper's validity
 * invariants: every entry >= 1 and every resource column sums to that
 * resource's unit count.
 */
class Allocation
{
  public:
    /**
     * Construct with every job getting 1 unit of everything and the
     * remainder unassigned — callers must distribute the rest before
     * validate() passes; prefer the factories below.
     */
    Allocation(size_t njobs, const ServerConfig& config);

    /** Equal division of every resource (bootstrap sample type 1). */
    static Allocation equalShare(size_t njobs, const ServerConfig& config);

    /**
     * Extremum: job @p favoured gets the maximum possible allocation of
     * every resource, every other job gets exactly 1 unit (bootstrap
     * sample type 2).
     */
    static Allocation maxFor(size_t favoured, size_t njobs,
                             const ServerConfig& config);

    /** Number of co-located jobs. */
    size_t jobs() const { return njobs_; }

    /** Number of resources. */
    size_t resources() const { return units_per_resource_.size(); }

    /** Units of resource @p r owned by job @p j. */
    int get(size_t j, size_t r) const;

    /** Set the units of resource @p r owned by job @p j. */
    void set(size_t j, size_t r, int units);

    /** Total units of resource @p r on the server. */
    int resourceUnits(size_t r) const;

    /** Sum of column @p r across jobs. */
    int columnSum(size_t r) const;

    /**
     * True when every entry is >= 1 and every column sums to the
     * resource's unit count.
     */
    bool valid() const;

    /** Throwing variant of valid() with a diagnostic message. */
    void validate() const;

    /**
     * Move one unit of resource @p r from job @p from to job @p to.
     * @return false (and change nothing) if @p from is at 1 unit.
     */
    bool transferUnit(size_t r, size_t from, size_t to);

    /**
     * Shape-adapt to one more job (appended at the end, matching
     * SimulatedServer::addJob): the newcomer receives roughly its
     * equal share of every resource, taken one unit at a time from
     * whichever incumbent job currently holds the most (ties to the
     * lowest index), so the relative partition the search converged on
     * is preserved as a warm start for the next optimization.
     *
     * @throws clite::Error when some resource cannot give the new job
     *     a unit (every incumbent already at 1).
     */
    Allocation withJobAdded() const;

    /**
     * Shape-adapt to the removal of job @p j (remaining jobs keep
     * their relative order, matching SimulatedServer::removeJob): the
     * departed job's units are redistributed one at a time to
     * whichever remaining job currently holds the least (ties to the
     * lowest index).
     *
     * @pre jobs() >= 2 and j < jobs().
     */
    Allocation withJobRemoved(size_t j) const;

    /**
     * Flatten to doubles in job-major order [x(0,0), x(0,1), ..,
     * x(J-1,R-1)], normalized by each resource's unit count so the GP
     * operates on [0, 1] coordinates.
     */
    std::vector<double> flattenNormalized() const;

    /** Dimension of the flattened vector: jobs() * resources(). */
    size_t flatSize() const { return njobs_ * resources(); }

    /**
     * Rebuild from a normalized flat vector (values are denormalized,
     * rounded sum-preservingly per resource, and clamped to validity).
     */
    static Allocation fromFlatNormalized(const std::vector<double>& flat,
                                         size_t njobs,
                                         const ServerConfig& config);

    /** Canonical string key ("3,4,2|5,5,1|..."), for dedup sets. */
    std::string key() const;

    /** Element-wise equality. */
    bool operator==(const Allocation& other) const;

  private:
    size_t njobs_;
    std::vector<int> units_per_resource_;
    std::vector<int> cells_; // job-major
};

} // namespace platform
} // namespace clite

#endif // CLITE_PLATFORM_ALLOCATION_H

#include "platform/isolation.h"

#include <sstream>

#include "common/error.h"

namespace clite {
namespace platform {

namespace {

/** Common validation for every driver's apply(). */
void
checkApply(const Allocation& alloc, size_t r, Resource expected)
{
    CLITE_CHECK(r < alloc.resources(), "resource column " << r << " out of "
                                           << alloc.resources());
    alloc.validate();
    (void)expected;
}

} // namespace

void
CoreAffinityDriver::apply(const Allocation& alloc, size_t r)
{
    checkApply(alloc, r, Resource::Cores);
    first_core_.assign(alloc.jobs(), 0);
    count_.assign(alloc.jobs(), 0);
    int next = 0;
    for (size_t j = 0; j < alloc.jobs(); ++j) {
        first_core_[j] = next;
        count_[j] = alloc.get(j, r);
        next += count_[j];
    }
}

std::string
CoreAffinityDriver::settingFor(size_t j) const
{
    CLITE_CHECK(j < first_core_.size(), "job " << j << " not programmed");
    std::ostringstream oss;
    oss << "taskset -c " << first_core_[j] << "-"
        << first_core_[j] + count_[j] - 1;
    return oss.str();
}

int
CoreAffinityDriver::firstCore(size_t j) const
{
    CLITE_CHECK(j < first_core_.size(), "job " << j << " not programmed");
    return first_core_[j];
}

int
CoreAffinityDriver::coreCount(size_t j) const
{
    CLITE_CHECK(j < count_.size(), "job " << j << " not programmed");
    return count_[j];
}

void
CacheWayDriver::apply(const Allocation& alloc, size_t r)
{
    checkApply(alloc, r, Resource::LlcWays);
    CLITE_CHECK(alloc.resourceUnits(r) <= 32,
                "way mask driver supports at most 32 ways");
    masks_.assign(alloc.jobs(), 0);
    int next = 0;
    for (size_t j = 0; j < alloc.jobs(); ++j) {
        int ways = alloc.get(j, r);
        uint32_t mask = ((ways >= 32) ? ~uint32_t{0}
                                      : ((uint32_t{1} << ways) - 1))
                        << next;
        masks_[j] = mask;
        next += ways;
    }
}

std::string
CacheWayDriver::settingFor(size_t j) const
{
    CLITE_CHECK(j < masks_.size(), "job " << j << " not programmed");
    std::ostringstream oss;
    oss << "pqos CAT mask 0x" << std::hex << masks_[j];
    return oss.str();
}

uint32_t
CacheWayDriver::mask(size_t j) const
{
    CLITE_CHECK(j < masks_.size(), "job " << j << " not programmed");
    return masks_[j];
}

void
MembwDriver::apply(const Allocation& alloc, size_t r)
{
    checkApply(alloc, r, Resource::MemBandwidth);
    percent_.assign(alloc.jobs(), 0);
    int units = alloc.resourceUnits(r);
    for (size_t j = 0; j < alloc.jobs(); ++j)
        percent_[j] = alloc.get(j, r) * 100 / units;
}

std::string
MembwDriver::settingFor(size_t j) const
{
    CLITE_CHECK(j < percent_.size(), "job " << j << " not programmed");
    std::ostringstream oss;
    oss << "pqos MBA " << percent_[j] << "%";
    return oss.str();
}

int
MembwDriver::percent(size_t j) const
{
    CLITE_CHECK(j < percent_.size(), "job " << j << " not programmed");
    return percent_[j];
}

LimitDriver::LimitDriver(Resource kind, double unit_value,
                         std::string unit_label)
    : kind_(kind), unit_value_(unit_value), unit_label_(std::move(unit_label))
{
    CLITE_CHECK(kind == Resource::MemCapacity ||
                    kind == Resource::DiskBandwidth ||
                    kind == Resource::NetBandwidth,
                "LimitDriver does not handle " << resourceName(kind));
    CLITE_CHECK(unit_value > 0.0, "unit value must be > 0");
}

void
LimitDriver::apply(const Allocation& alloc, size_t r)
{
    checkApply(alloc, r, kind_);
    limit_.assign(alloc.jobs(), 0.0);
    for (size_t j = 0; j < alloc.jobs(); ++j)
        limit_[j] = double(alloc.get(j, r)) * unit_value_;
}

std::string
LimitDriver::settingFor(size_t j) const
{
    CLITE_CHECK(j < limit_.size(), "job " << j << " not programmed");
    std::ostringstream oss;
    switch (kind_) {
      case Resource::MemCapacity:
        oss << "cgroup memory.limit " << limit_[j] << " " << unit_label_;
        break;
      case Resource::DiskBandwidth:
        oss << "cgroup blkio.throttle " << limit_[j] << " " << unit_label_;
        break;
      default:
        oss << "qdisc rate " << limit_[j] << " " << unit_label_;
        break;
    }
    return oss.str();
}

double
LimitDriver::limit(size_t j) const
{
    CLITE_CHECK(j < limit_.size(), "job " << j << " not programmed");
    return limit_[j];
}

std::unique_ptr<IsolationDriver>
makeDriver(const ResourceSpec& spec)
{
    switch (spec.kind) {
      case Resource::Cores:
        return std::make_unique<CoreAffinityDriver>();
      case Resource::LlcWays:
        return std::make_unique<CacheWayDriver>();
      case Resource::MemBandwidth:
        return std::make_unique<MembwDriver>();
      case Resource::MemCapacity:
      case Resource::DiskBandwidth:
      case Resource::NetBandwidth:
        return std::make_unique<LimitDriver>(spec.kind, spec.unit_value,
                                             spec.unit_label);
    }
    CLITE_THROW("no driver for resource kind");
}

} // namespace platform
} // namespace clite

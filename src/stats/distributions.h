/**
 * @file
 * Scalar distribution functions used by the BO acquisition math and the
 * queueing models: standard normal PDF/CDF/quantile, Erlang-C, and the
 * tail quantiles of M/M/c response times.
 */

#ifndef CLITE_STATS_DISTRIBUTIONS_H
#define CLITE_STATS_DISTRIBUTIONS_H

namespace clite {
namespace stats {

/** Standard normal probability density φ(z). */
double normalPdf(double z);

/**
 * Standard normal cumulative distribution Φ(z), computed via erfc for
 * full double accuracy across the tails.
 */
double normalCdf(double z);

/**
 * Standard normal quantile Φ⁻¹(p) (Acklam's rational approximation with
 * one Halley refinement step; |relative error| < 1e-9).
 *
 * @param p Probability in (0, 1).
 * @throws clite::Error if p is outside (0, 1).
 */
double normalQuantile(double p);

/**
 * Erlang-C: probability an arriving customer must queue in an M/M/c
 * system.
 *
 * @param servers Number of servers c (>= 1).
 * @param offered_load a = λ/μ (Erlangs); must satisfy a < c for a
 *     stable queue — callers handle saturation before calling.
 * @return P(wait > 0) in [0, 1].
 */
double erlangC(int servers, double offered_load);

/**
 * The q-quantile of the response (sojourn) time of an M/M/c queue.
 *
 * Uses the standard decomposition: with probability Pq (Erlang-C) the
 * customer waits an Exp(cμ − λ) time, then a service time Exp(μ); the
 * quantile of the mixture is computed numerically (bisection on the
 * closed-form CDF).
 *
 * @param servers Number of servers c.
 * @param arrival_rate λ (> 0).
 * @param service_rate μ per server (> 0).
 * @param q Quantile in (0, 1), e.g. 0.95 for the paper's p95.
 * @return Response-time quantile, or +infinity when λ >= cμ (unstable).
 */
double mmcResponseQuantile(int servers, double arrival_rate,
                           double service_rate, double q);

/** Mean response time of an M/M/c queue (+infinity when unstable). */
double mmcMeanResponse(int servers, double arrival_rate,
                       double service_rate);

/**
 * Quantile (inverse CDF) of the bounded Pareto(alpha, L, H)
 * distribution: x = L * (1 - u * (1 - (L/H)^alpha))^(-1/alpha).
 *
 * @param u Probability in [0, 1); u = 0 gives L, u -> 1 approaches H.
 * @param alpha Tail index (> 0); smaller = heavier tail.
 * @param lower Support lower bound L (> 0).
 * @param upper Support upper bound H (> lower).
 */
double boundedParetoQuantile(double u, double alpha, double lower,
                             double upper);

/** Mean of the bounded Pareto(alpha, L, H) distribution. */
double boundedParetoMean(double alpha, double lower, double upper);

/**
 * The lower bound L such that bounded Pareto(alpha, L, tail_ratio * L)
 * has the given mean; the DES uses this to parameterize a heavy-tailed
 * service distribution from a profile's mean service time.
 *
 * @param mean Desired distribution mean (> 0).
 * @param alpha Tail index (> 1 so the scaling is well-conditioned).
 * @param tail_ratio H/L (> 1).
 */
double boundedParetoLowerForMean(double mean, double alpha,
                                 double tail_ratio);

} // namespace stats
} // namespace clite

#endif // CLITE_STATS_DISTRIBUTIONS_H

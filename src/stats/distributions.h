/**
 * @file
 * Scalar distribution functions used by the BO acquisition math and the
 * queueing models: standard normal PDF/CDF/quantile, Erlang-C, and the
 * tail quantiles of M/M/c response times.
 */

#ifndef CLITE_STATS_DISTRIBUTIONS_H
#define CLITE_STATS_DISTRIBUTIONS_H

namespace clite {
namespace stats {

/** Standard normal probability density φ(z). */
double normalPdf(double z);

/**
 * Standard normal cumulative distribution Φ(z), computed via erfc for
 * full double accuracy across the tails.
 */
double normalCdf(double z);

/**
 * Standard normal quantile Φ⁻¹(p) (Acklam's rational approximation with
 * one Halley refinement step; |relative error| < 1e-9).
 *
 * @param p Probability in (0, 1).
 * @throws clite::Error if p is outside (0, 1).
 */
double normalQuantile(double p);

/**
 * Erlang-C: probability an arriving customer must queue in an M/M/c
 * system.
 *
 * @param servers Number of servers c (>= 1).
 * @param offered_load a = λ/μ (Erlangs); must satisfy a < c for a
 *     stable queue — callers handle saturation before calling.
 * @return P(wait > 0) in [0, 1].
 */
double erlangC(int servers, double offered_load);

/**
 * The q-quantile of the response (sojourn) time of an M/M/c queue.
 *
 * Uses the standard decomposition: with probability Pq (Erlang-C) the
 * customer waits an Exp(cμ − λ) time, then a service time Exp(μ); the
 * quantile of the mixture is computed numerically (bisection on the
 * closed-form CDF).
 *
 * @param servers Number of servers c.
 * @param arrival_rate λ (> 0).
 * @param service_rate μ per server (> 0).
 * @param q Quantile in (0, 1), e.g. 0.95 for the paper's p95.
 * @return Response-time quantile, or +infinity when λ >= cμ (unstable).
 */
double mmcResponseQuantile(int servers, double arrival_rate,
                           double service_rate, double q);

/** Mean response time of an M/M/c queue (+infinity when unstable). */
double mmcMeanResponse(int servers, double arrival_rate,
                       double service_rate);

} // namespace stats
} // namespace clite

#endif // CLITE_STATS_DISTRIBUTIONS_H

#include "stats/summary.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace clite {
namespace stats {

void
RunningStats::add(double x)
{
    ++n_;
    double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / double(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::coefficientOfVariation() const
{
    if (mean_ == 0.0 || n_ == 0)
        return 0.0;
    return stddev() / std::fabs(mean_);
}

void
RunningStats::merge(const RunningStats& other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    size_t total = n_ + other.n_;
    m2_ += other.m2_ +
           delta * delta * double(n_) * double(other.n_) / double(total);
    mean_ += delta * double(other.n_) / double(total);
    n_ = total;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
percentile(std::vector<double> samples, double q)
{
    std::sort(samples.begin(), samples.end());
    return percentileSorted(samples, q);
}

double
percentileSorted(const std::vector<double>& sorted, double q)
{
    CLITE_CHECK(q >= 0.0 && q <= 1.0, "quantile must be in [0,1], got " << q);
    if (sorted.empty())
        return std::numeric_limits<double>::quiet_NaN();
    double pos = q * double(sorted.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, sorted.size() - 1);
    double frac = pos - double(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

ConfidenceInterval
bootstrapMeanCI(const std::vector<double>& samples, double confidence,
                int resamples, uint64_t seed)
{
    CLITE_CHECK(samples.size() >= 2, "bootstrap needs >= 2 samples");
    CLITE_CHECK(confidence > 0.0 && confidence < 1.0,
                "confidence must be in (0,1), got " << confidence);
    CLITE_CHECK(resamples >= 10, "need >= 10 bootstrap resamples");

    Rng rng(seed);
    const size_t n = samples.size();
    std::vector<double> means;
    means.resize(size_t(resamples));
    for (int b = 0; b < resamples; ++b) {
        double sum = 0.0;
        for (size_t i = 0; i < n; ++i)
            sum += samples[size_t(rng.uniformInt(0, int64_t(n) - 1))];
        means[size_t(b)] = sum / double(n);
    }

    double alpha = 1.0 - confidence;
    ConfidenceInterval ci;
    ci.lo = percentile(means, alpha / 2.0);
    ci.hi = percentile(means, 1.0 - alpha / 2.0);
    double total = 0.0;
    for (double s : samples)
        total += s;
    ci.point = total / double(n);
    return ci;
}

double
geometricMean(const std::vector<double>& values)
{
    if (values.empty())
        return 1.0;
    double log_sum = 0.0;
    for (double v : values) {
        CLITE_CHECK(v > 0.0, "geometricMean requires positive values, got "
                                 << v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / double(values.size()));
}

} // namespace stats
} // namespace clite

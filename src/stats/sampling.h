/**
 * @file
 * Space sampling utilities for the optimizers and the RAND+/GENETIC
 * baselines: Latin-hypercube sampling of continuous boxes, and uniform
 * sampling / enumeration of bounded integer compositions (the
 * "stars-and-bars" sets that resource partitions live in, Sec. 2's
 * N_conf formula).
 */

#ifndef CLITE_STATS_SAMPLING_H
#define CLITE_STATS_SAMPLING_H

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"

namespace clite {
namespace stats {

/**
 * Latin-hypercube sample of @p count points in the unit hypercube of
 * dimension @p dims: each dimension is split into count strata and each
 * stratum is hit exactly once.
 *
 * @return count vectors of length dims with entries in [0, 1).
 */
std::vector<std::vector<double>> latinHypercube(size_t count, size_t dims,
                                                Rng& rng);

/**
 * Number of compositions of @p total into @p parts parts, each part at
 * least @p min_per_part: C(total - parts*min + parts - 1, parts - 1).
 * This is the per-resource factor of the paper's N_conf formula.
 *
 * @return The count, saturating at UINT64_MAX on overflow.
 */
uint64_t compositionCount(int total, int parts, int min_per_part = 1);

/**
 * Uniformly sample a composition of @p total into @p parts parts with
 * each part >= @p min_per_part. Uses the bars-uniform construction
 * (random distinct bar positions), which is exactly uniform over
 * compositions.
 */
std::vector<int> sampleComposition(int total, int parts, Rng& rng,
                                   int min_per_part = 1);

/**
 * Enumerate every composition of @p total into @p parts parts (each
 * >= @p min_per_part), invoking @p visit for each. Enumeration order is
 * lexicographic. Used by the ORACLE brute-force search.
 *
 * @param visit Callback receiving the composition; return false to stop
 *     the enumeration early.
 * @return true if the enumeration ran to completion.
 */
bool forEachComposition(int total, int parts,
                        const std::function<bool(const std::vector<int>&)>&
                            visit,
                        int min_per_part = 1);

} // namespace stats
} // namespace clite

#endif // CLITE_STATS_SAMPLING_H

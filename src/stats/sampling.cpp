#include "stats/sampling.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "common/error.h"

namespace clite {
namespace stats {

std::vector<std::vector<double>>
latinHypercube(size_t count, size_t dims, Rng& rng)
{
    CLITE_CHECK(count > 0, "latinHypercube needs count > 0");
    CLITE_CHECK(dims > 0, "latinHypercube needs dims > 0");

    std::vector<std::vector<double>> points(count,
                                            std::vector<double>(dims));
    std::vector<size_t> perm(count);
    for (size_t d = 0; d < dims; ++d) {
        std::iota(perm.begin(), perm.end(), size_t{0});
        rng.shuffle(perm);
        for (size_t i = 0; i < count; ++i) {
            double stratum = double(perm[i]);
            points[i][d] = (stratum + rng.uniform()) / double(count);
        }
    }
    return points;
}

uint64_t
compositionCount(int total, int parts, int min_per_part)
{
    CLITE_CHECK(parts >= 1, "compositionCount needs parts >= 1");
    CLITE_CHECK(min_per_part >= 0, "min_per_part must be >= 0");
    int free_units = total - parts * min_per_part;
    if (free_units < 0)
        return 0;
    // C(free_units + parts - 1, parts - 1) with overflow saturation.
    uint64_t n = uint64_t(free_units) + uint64_t(parts) - 1;
    uint64_t k = uint64_t(parts) - 1;
    if (k > n - k)
        k = n - k;
    uint64_t result = 1;
    for (uint64_t i = 1; i <= k; ++i) {
        // result *= (n - k + i) / i, keeping exactness by dividing first
        // where possible.
        uint64_t num = n - k + i;
        uint64_t g = std::gcd(result, i);
        uint64_t r = result / g;
        uint64_t den = i / g;
        uint64_t g2 = std::gcd(num, den);
        num /= g2;
        den /= g2;
        CLITE_ASSERT(den == 1, "binomial accumulation must stay integral");
        if (r > std::numeric_limits<uint64_t>::max() / num)
            return std::numeric_limits<uint64_t>::max();
        result = r * num;
    }
    return result;
}

std::vector<int>
sampleComposition(int total, int parts, Rng& rng, int min_per_part)
{
    CLITE_CHECK(parts >= 1, "sampleComposition needs parts >= 1");
    int free_units = total - parts * min_per_part;
    CLITE_CHECK(free_units >= 0,
                "cannot split " << total << " units into " << parts
                                << " parts of at least " << min_per_part);

    if (parts == 1)
        return {total};

    // Choose parts-1 distinct bar positions among free_units + parts - 1
    // slots; gaps between bars are the free units per part.
    int slots = free_units + parts - 1;
    std::vector<int> bars;
    bars.reserve(parts - 1);
    // Floyd's algorithm for distinct sampling without replacement.
    for (int j = slots - (parts - 1); j < slots; ++j) {
        int t = int(rng.uniformInt(0, j));
        if (std::find(bars.begin(), bars.end(), t) == bars.end())
            bars.push_back(t);
        else
            bars.push_back(j);
    }
    std::sort(bars.begin(), bars.end());

    std::vector<int> out(parts);
    int prev = -1;
    for (int i = 0; i < parts - 1; ++i) {
        out[i] = bars[i] - prev - 1 + min_per_part;
        prev = bars[i];
    }
    out[parts - 1] = slots - 1 - prev + min_per_part;
    return out;
}

namespace {

bool
enumerateRec(int remaining, int part, std::vector<int>& current,
             const std::function<bool(const std::vector<int>&)>& visit,
             int min_per_part)
{
    int parts = int(current.size());
    if (part == parts - 1) {
        current[part] = remaining;
        return visit(current);
    }
    int parts_after = parts - part - 1;
    int max_here = remaining - parts_after * min_per_part;
    for (int v = min_per_part; v <= max_here; ++v) {
        current[part] = v;
        if (!enumerateRec(remaining - v, part + 1, current, visit,
                          min_per_part))
            return false;
    }
    return true;
}

} // namespace

bool
forEachComposition(int total, int parts,
                   const std::function<bool(const std::vector<int>&)>& visit,
                   int min_per_part)
{
    CLITE_CHECK(parts >= 1, "forEachComposition needs parts >= 1");
    if (total < parts * min_per_part)
        return true; // empty set: trivially complete
    std::vector<int> current(parts);
    return enumerateRec(total, 0, current, visit, min_per_part);
}

} // namespace stats
} // namespace clite

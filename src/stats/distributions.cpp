#include "stats/distributions.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace clite {
namespace stats {

namespace {

constexpr double kSqrt2Pi = 2.5066282746310002;

/**
 * CDF of the M/M/c sojourn time T = W + S where W is 0 with probability
 * (1 - pq) and Exp(a) with probability pq, and S ~ Exp(mu).
 */
double
mmcSojournCdf(double t, double pq, double a, double mu)
{
    if (t <= 0.0)
        return 0.0;
    double no_wait = (1.0 - pq) * (1.0 - std::exp(-mu * t));
    double waited;
    if (std::fabs(a - mu) < 1e-12 * (a + mu)) {
        // Erlang-2 with rate mu.
        waited = pq * (1.0 - std::exp(-mu * t) * (1.0 + mu * t));
    } else {
        waited = pq * (1.0 - (a * std::exp(-mu * t) - mu * std::exp(-a * t))
                                 / (a - mu));
    }
    return no_wait + waited;
}

} // namespace

double
normalPdf(double z)
{
    return std::exp(-0.5 * z * z) / kSqrt2Pi;
}

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

double
normalQuantile(double p)
{
    CLITE_CHECK(p > 0.0 && p < 1.0,
                "normalQuantile requires p in (0,1), got " << p);

    // Acklam's rational approximation.
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00, 2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double plow = 0.02425;
    double x;
    if (p < plow) {
        double q = std::sqrt(-2.0 * std::log(p));
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    } else if (p <= 1.0 - plow) {
        double q = p - 0.5;
        double r = q * q;
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
             a[5]) *
            q /
            (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
             1.0);
    } else {
        double q = std::sqrt(-2.0 * std::log(1.0 - p));
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
              c[5]) /
            ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }

    // One Halley refinement step against the exact CDF.
    double e = normalCdf(x) - p;
    double u = e * kSqrt2Pi * std::exp(0.5 * x * x);
    x = x - u / (1.0 + 0.5 * x * u);
    return x;
}

double
erlangC(int servers, double offered_load)
{
    CLITE_CHECK(servers >= 1, "erlangC needs servers >= 1, got " << servers);
    CLITE_CHECK(offered_load >= 0.0,
                "erlangC offered load must be >= 0, got " << offered_load);
    if (offered_load == 0.0)
        return 0.0;
    if (offered_load >= servers)
        return 1.0;

    // Iterative Erlang-B, then convert to Erlang-C; numerically stable
    // for large server counts.
    double inv_b = 1.0;
    for (int k = 1; k <= servers; ++k)
        inv_b = 1.0 + inv_b * double(k) / offered_load;
    double erlang_b = 1.0 / inv_b;
    double rho = offered_load / servers;
    return erlang_b / (1.0 - rho + rho * erlang_b);
}

double
mmcResponseQuantile(int servers, double arrival_rate, double service_rate,
                    double q)
{
    CLITE_CHECK(arrival_rate >= 0.0, "arrival rate must be >= 0");
    CLITE_CHECK(service_rate > 0.0, "service rate must be > 0");
    CLITE_CHECK(q > 0.0 && q < 1.0, "quantile must be in (0,1), got " << q);

    const double c = double(servers);
    if (arrival_rate >= c * service_rate - 1e-12 * service_rate)
        return std::numeric_limits<double>::infinity();

    double a_load = arrival_rate / service_rate;
    double pq = erlangC(servers, a_load);
    double drain = c * service_rate - arrival_rate; // wait rate parameter

    // Bracket the quantile: service-only lower bound; expand upper bound.
    double lo = 0.0;
    double hi = 10.0 / service_rate + 10.0 / drain;
    while (mmcSojournCdf(hi, pq, drain, service_rate) < q)
        hi *= 2.0;
    for (int it = 0; it < 200; ++it) {
        double mid = 0.5 * (lo + hi);
        if (mmcSojournCdf(mid, pq, drain, service_rate) < q)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-12 * hi)
            break;
    }
    return 0.5 * (lo + hi);
}

double
mmcMeanResponse(int servers, double arrival_rate, double service_rate)
{
    CLITE_CHECK(service_rate > 0.0, "service rate must be > 0");
    const double c = double(servers);
    if (arrival_rate >= c * service_rate)
        return std::numeric_limits<double>::infinity();
    double pq = erlangC(servers, arrival_rate / service_rate);
    double wq = pq / (c * service_rate - arrival_rate);
    return wq + 1.0 / service_rate;
}

double
boundedParetoQuantile(double u, double alpha, double lower, double upper)
{
    CLITE_CHECK(u >= 0.0 && u < 1.0,
                "bounded Pareto quantile needs u in [0,1), got " << u);
    CLITE_CHECK(alpha > 0.0, "Pareto alpha must be > 0, got " << alpha);
    CLITE_CHECK(lower > 0.0 && upper > lower,
                "bounded Pareto needs 0 < lower < upper, got ["
                    << lower << ", " << upper << "]");
    double ratio_term = 1.0 - std::pow(lower / upper, alpha);
    return lower * std::pow(1.0 - u * ratio_term, -1.0 / alpha);
}

double
boundedParetoMean(double alpha, double lower, double upper)
{
    CLITE_CHECK(alpha > 0.0, "Pareto alpha must be > 0, got " << alpha);
    CLITE_CHECK(lower > 0.0 && upper > lower,
                "bounded Pareto needs 0 < lower < upper, got ["
                    << lower << ", " << upper << "]");
    double r = upper / lower;
    double denom = 1.0 - std::pow(r, -alpha);
    if (std::fabs(alpha - 1.0) < 1e-12)
        // alpha -> 1 limit of (1 - r^(1-alpha)) / (alpha - 1).
        return lower * std::log(r) / denom;
    return lower * (alpha / (alpha - 1.0)) *
           (1.0 - std::pow(r, 1.0 - alpha)) / denom;
}

double
boundedParetoLowerForMean(double mean, double alpha, double tail_ratio)
{
    CLITE_CHECK(mean > 0.0, "mean must be > 0, got " << mean);
    CLITE_CHECK(alpha > 1.0,
                "bounded Pareto mean scaling needs alpha > 1, got "
                    << alpha);
    CLITE_CHECK(tail_ratio > 1.0,
                "tail ratio must be > 1, got " << tail_ratio);
    // The mean scales linearly in L, so solve against the L = 1 mean.
    return mean / boundedParetoMean(alpha, 1.0, tail_ratio);
}

} // namespace stats
} // namespace clite

/**
 * @file
 * Streaming and batch summary statistics.
 *
 * RunningStats implements Welford's online mean/variance; percentile()
 * implements the linear-interpolation quantile estimator (matching
 * numpy's default) used to extract p95 tail latencies from the
 * discrete-event simulator's response-time samples, and the
 * run-to-run variability metric of Fig. 11 (stddev as % of mean).
 */

#ifndef CLITE_STATS_SUMMARY_H
#define CLITE_STATS_SUMMARY_H

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace clite {
namespace stats {

/**
 * Welford online accumulator for mean / variance / min / max.
 */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Number of observations so far. */
    size_t count() const { return n_; }

    /** Sample mean (0 when empty). */
    double mean() const { return n_ ? mean_ : 0.0; }

    /** Unbiased sample variance (0 when fewer than 2 samples). */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /**
     * Coefficient of variation: stddev as a fraction of the mean
     * (the Fig. 11 variability metric). Returns 0 when the mean is 0.
     */
    double coefficientOfVariation() const;

    /** Minimum observation (+inf when empty). */
    double min() const { return min_; }

    /** Maximum observation (-inf when empty). */
    double max() const { return max_; }

    /** Merge another accumulator into this one (parallel Welford). */
    void merge(const RunningStats& other);

  private:
    size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Linear-interpolation quantile of a sample (numpy 'linear' method).
 *
 * @param samples Observations; copied and sorted internally.
 * @param q Quantile in [0, 1].
 * @return The q-quantile; NaN for an empty sample.
 */
double percentile(std::vector<double> samples, double q);

/**
 * percentile() for a sample that is already sorted ascending — the
 * multi-quantile fast path: sort once, interpolate many times. For a
 * sorted input this is bit-identical to percentile() (same
 * interpolation code; percentile() delegates here after sorting).
 *
 * @param sorted Observations in ascending order.
 * @param q Quantile in [0, 1].
 * @return The q-quantile; NaN for an empty sample.
 */
double percentileSorted(const std::vector<double>& sorted, double q);

/**
 * Geometric mean of strictly positive values.
 *
 * @param values Values; each must be > 0.
 * @return (∏ v_i)^(1/n); 1.0 for an empty list (neutral element).
 */
double geometricMean(const std::vector<double>& values);

/** A two-sided confidence interval. */
struct ConfidenceInterval
{
    double lo = 0.0;     ///< Lower bound.
    double hi = 0.0;     ///< Upper bound.
    double point = 0.0;  ///< The point estimate (sample statistic).
};

/**
 * Percentile-bootstrap confidence interval for the mean of a sample —
 * the error bars behind the repeated-trials comparisons (Fig. 11):
 * with a handful of trials, normal-theory intervals are unreliable.
 *
 * @param samples Observations (>= 2).
 * @param confidence Coverage in (0, 1), e.g. 0.95.
 * @param resamples Bootstrap resamples (>= 100 recommended).
 * @param seed RNG seed for the resampling.
 */
ConfidenceInterval bootstrapMeanCI(const std::vector<double>& samples,
                                   double confidence = 0.95,
                                   int resamples = 2000,
                                   uint64_t seed = 0x9E3779B9ull);

} // namespace stats
} // namespace clite

#endif // CLITE_STATS_SUMMARY_H

/**
 * @file
 * Blocked triangular panel solves (TRSM-style) for the batched GP
 * posterior engine.
 *
 * The scalar posterior path runs one forward substitution
 * (Cholesky::solveLower) per query — B independent O(n²) solves that
 * each stream the whole factor L through the cache and pay an
 * out-of-line, bounds-checked element access per multiply. The panel
 * solver here processes all B right-hand sides of a candidate block at
 * once: L is walked a row at a time (raw row pointers, streamed once
 * per block instead of once per candidate) and the inner loop runs
 * contiguously across the B columns of the panel, which the compiler
 * auto-vectorizes.
 *
 * Bit-exactness contract: for every column c the arithmetic performed
 * on that column is the exact operation sequence of the scalar
 * recurrence
 *
 *     y[i] = (b[i] − Σ_{k<i} L(i,k)·y[k]) / L(i,i),   k ascending,
 *
 * only the loop nesting differs (k blocks ascending, k ascending
 * within a block, one subtraction at a time into the same
 * accumulator). Columns never mix, so the panel result equals B
 * independent solveLower calls to the last ULP — the property the
 * %.17g GP-posterior golden and the batch-vs-scalar tests pin.
 */

#ifndef CLITE_LINALG_TRSM_H
#define CLITE_LINALG_TRSM_H

#include <cstddef>

#include "linalg/matrix.h"

namespace clite {
namespace linalg {

/**
 * In-place blocked forward substitution with multiple right-hand
 * sides: overwrite @p panel (row-major, n rows × @p ncols columns,
 * row i contiguous) with Y where L·Y = panel, treating each column as
 * an independent system solved in the exact scalar operation order.
 *
 * @param l Lower-triangular factor (n × n); only the lower triangle
 *     including the diagonal is read.
 * @param panel n × ncols right-hand sides, overwritten with Y.
 * @param ncols Number of columns (candidates) in the panel.
 */
void solveLowerPanel(const Matrix& l, double* panel, size_t ncols);

/**
 * Strided overload: @p l points at row-major factor storage with
 * leading dimension @p ldl >= @p n (only the lower triangle including
 * the diagonal is read). This is the zero-copy entry point for
 * Cholesky::lowerData()/stride(), whose buffer keeps spare capacity
 * for in-place appends; arithmetic is identical to the Matrix
 * overload, which forwards here with ldl == n.
 */
void solveLowerPanel(const double* l, size_t ldl, size_t n, double* panel,
                     size_t ncols);

/**
 * Fused panel products for the posterior: given the cross-covariance
 * panel K* (n rows × ncols, row-major, column c = candidate c) and α,
 * write out[c] = Σ_i K*(i,c)·α[i] with the i-ascending accumulation
 * order of linalg::dot — bit-identical to per-candidate dot(k*_c, α).
 */
void panelDotRows(const double* panel, size_t n, size_t ncols,
                  const double* alpha, double* out);

/**
 * Column-wise squared norms of an n × ncols row-major panel:
 * out[c] = Σ_i panel(i,c)², i ascending — bit-identical to
 * per-candidate dot(v_c, v_c).
 */
void panelColumnSquaredNorms(const double* panel, size_t n, size_t ncols,
                             double* out);

} // namespace linalg
} // namespace clite

#endif // CLITE_LINALG_TRSM_H

#include "linalg/cholesky.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace clite {
namespace linalg {

Cholesky::Cholesky(const Matrix& a, double jitter, double max_jitter)
{
    refactor(a, jitter, max_jitter);
}

void
Cholesky::refactor(const Matrix& a, double jitter, double max_jitter)
{
    CLITE_CHECK(a.rows() == a.cols(),
                "Cholesky requires a square matrix, got " << a.rows() << "x"
                                                          << a.cols());
    if (tryFactor(a, 0.0)) {
        applied_jitter_ = 0.0;
        return;
    }
    for (double j = jitter; j <= max_jitter; j *= 10.0) {
        if (tryFactor(a, j)) {
            applied_jitter_ = j;
            return;
        }
    }
    CLITE_THROW("matrix is not positive definite even with jitter "
                << max_jitter);
}

void
Cholesky::ensureCapacity(size_t n)
{
    if (cap_ >= n)
        return;
    const size_t cap = std::max(n, 2 * cap_);
    std::vector<double> grown(cap * cap, 0.0);
    // Repack the existing rows onto the wider stride (lower triangle
    // only — nothing above the diagonal is ever read).
    for (size_t i = 0; i < n_; ++i)
        std::copy(data_.begin() + i * cap_, data_.begin() + i * cap_ + i + 1,
                  grown.begin() + i * cap);
    data_.swap(grown);
    cap_ = cap;
}

bool
Cholesky::tryFactor(const Matrix& a, double jitter)
{
    const size_t n = a.rows();
    ensureCapacity(n);
    n_ = n;
    l_fresh_ = false;
    double* L = data_.data();
    const size_t ld = cap_;
    // Left-looking, column by column: finish the pivot of column j,
    // then fill its subdiagonal four rows at a time with independent
    // accumulator chains. Every element's dot product still runs over
    // k in ascending order as a single chain, exactly like the classic
    // row-major loop, so each L entry is bit-identical to that loop —
    // interleaving whole chains only buys instruction-level
    // parallelism, it never reassociates one sum.
    for (size_t j = 0; j < n; ++j) {
        const double* lj = L + j * ld;
        double diag = a(j, j) + jitter;
        for (size_t k = 0; k < j; ++k)
            diag -= lj[k] * lj[k];
        if (diag <= 0.0 || !std::isfinite(diag))
            return false;
        const double pivot = std::sqrt(diag);
        L[j * ld + j] = pivot;
        size_t i = j + 1;
        for (; i + 4 <= n; i += 4) {
            const double* l0 = L + (i + 0) * ld;
            const double* l1 = L + (i + 1) * ld;
            const double* l2 = L + (i + 2) * ld;
            const double* l3 = L + (i + 3) * ld;
            double s0 = a(i + 0, j);
            double s1 = a(i + 1, j);
            double s2 = a(i + 2, j);
            double s3 = a(i + 3, j);
            for (size_t k = 0; k < j; ++k) {
                const double ljk = lj[k];
                s0 -= l0[k] * ljk;
                s1 -= l1[k] * ljk;
                s2 -= l2[k] * ljk;
                s3 -= l3[k] * ljk;
            }
            L[(i + 0) * ld + j] = s0 / pivot;
            L[(i + 1) * ld + j] = s1 / pivot;
            L[(i + 2) * ld + j] = s2 / pivot;
            L[(i + 3) * ld + j] = s3 / pivot;
        }
        for (; i < n; ++i) {
            const double* li = L + i * ld;
            double sum = a(i, j);
            for (size_t k = 0; k < j; ++k)
                sum -= li[k] * lj[k];
            L[i * ld + j] = sum / pivot;
        }
    }
    return true;
}

bool
Cholesky::appendRow(const Vector& b, double c)
{
    const size_t n = n_;
    CLITE_CHECK(b.size() == n,
                "appendRow expects " << n << " covariances, got "
                                     << b.size());
    // New off-diagonal row: L l₁₂ = b, exactly the recurrence the full
    // factorization would run for row n.
    Vector l12 = solveLower(b);
    double pivot = c + applied_jitter_ - dot(l12, l12);
    if (pivot <= 0.0 || !std::isfinite(pivot))
        return false;

    ensureCapacity(n + 1);
    double* row = data_.data() + n * cap_;
    std::copy(l12.begin(), l12.end(), row);
    row[n] = std::sqrt(pivot);
    ++n_;
    l_fresh_ = false;
    return true;
}

const Matrix&
Cholesky::factor() const
{
    if (!l_fresh_) {
        l_.reshape(n_, n_, 0.0);
        for (size_t i = 0; i < n_; ++i) {
            const double* src = data_.data() + i * cap_;
            for (size_t j = 0; j <= i; ++j)
                l_(i, j) = src[j];
        }
        l_fresh_ = true;
    }
    return l_;
}

Vector
Cholesky::solveLower(const Vector& b) const
{
    const size_t n = n_;
    CLITE_CHECK(b.size() == n, "solveLower size mismatch: " << b.size()
                                   << " vs " << n);
    const double* L = data_.data();
    Vector y(n);
    for (size_t i = 0; i < n; ++i) {
        const double* li = L + i * cap_;
        double sum = b[i];
        for (size_t k = 0; k < i; ++k)
            sum -= li[k] * y[k];
        y[i] = sum / li[i];
    }
    return y;
}

Vector
Cholesky::solveUpper(const Vector& b) const
{
    const size_t n = n_;
    CLITE_CHECK(b.size() == n, "solveUpper size mismatch: " << b.size()
                                   << " vs " << n);
    const double* L = data_.data();
    Vector x(n);
    for (size_t ii = n; ii-- > 0;) {
        double sum = b[ii];
        for (size_t k = ii + 1; k < n; ++k)
            sum -= L[k * cap_ + ii] * x[k];
        x[ii] = sum / L[ii * cap_ + ii];
    }
    return x;
}

Vector
Cholesky::solve(const Vector& b) const
{
    return solveUpper(solveLower(b));
}

void
Cholesky::solveInPlace(Vector& b) const
{
    const size_t n = n_;
    CLITE_CHECK(b.size() == n, "solveInPlace size mismatch: " << b.size()
                                   << " vs " << n);
    const double* L = data_.data();
    // Forward substitution: b[k] for k < i has already been replaced
    // by y[k] when row i consumes it — the in-place update performs
    // exactly the operation sequence of solveLower.
    for (size_t i = 0; i < n; ++i) {
        const double* li = L + i * cap_;
        double sum = b[i];
        for (size_t k = 0; k < i; ++k)
            sum -= li[k] * b[k];
        b[i] = sum / li[i];
    }
    // Backward substitution, same argument in reverse.
    for (size_t ii = n; ii-- > 0;) {
        double sum = b[ii];
        for (size_t k = ii + 1; k < n; ++k)
            sum -= L[k * cap_ + ii] * b[k];
        b[ii] = sum / L[ii * cap_ + ii];
    }
}

double
Cholesky::logDet() const
{
    double acc = 0.0;
    for (size_t i = 0; i < n_; ++i)
        acc += std::log(data_[i * cap_ + i]);
    return 2.0 * acc;
}

} // namespace linalg
} // namespace clite
